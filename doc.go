// Package zipflm is a from-scratch Go reproduction of "Language Modeling at
// Scale" (Patwary, Chabbi, Jun, Huang, Diamos, Church — IPPS 2019,
// arXiv:1810.10045): scaling RNN language-model training across many GPUs by
// exploiting Zipf's law in the embedding-layer gradient exchange.
//
// The system lives in internal/ packages (see DESIGN.md for the inventory),
// is exercised by the runnable programs in cmd/ and examples/, and
// regenerates every table and figure of the paper's evaluation through
// cmd/zipflm-bench and the benchmarks in bench_test.go.
//
// # Communication substrate: zero-copy rings, pooled buffers, overlap
//
// The simulated collectives (internal/collective) are engineered like the
// production stacks the paper measures against:
//
//   - The ring all-reduce is zero-copy and allocation-free at steady state:
//     each hop sends the chunk subslice itself over a channel, and a
//     closing barrier keeps a rank from rewriting its buffer while a
//     peer's in-flight hop still aliases it. Blackboard buffers for
//     gathers and broadcasts come from a communicator-wide sync.Pool arena
//     and are recycled across steps. testing.AllocsPerRun guards both
//     paths against regression.
//
//   - Comm.AllReduceAsync adds a Horovod/DDP-style bucket queue: tensors
//     submitted as backpropagation produces them coalesce into
//     deterministic buckets (closed by cumulative size, a wire-precision
//     change, or FlushAsync) and reduce on a dedicated channel set while
//     the submitting rank keeps computing. Because buckets chunk each
//     member tensor with exactly the synchronous bounds, reduced values
//     and Stats byte accounting are bit-identical to per-tensor AllReduce
//     calls — asserted by the tests.
//
//   - trainer.Config.Overlap threads the async path through the training
//     step: a backward hook starts reducing a dense layer the moment that
//     layer finishes backpropagating, and the sparse §III-A exchange then
//     runs with the dense rings still in flight. Replicas stay
//     bit-identical to the synchronous mode; only wall-clock changes.
//     The exchange engines themselves reuse per-rank core.Workspace
//     scratch (dedup maps, locally-reduced rows) across steps.
//
// The "overlap" experiment (zipflm-bench -exp overlap) and the
// BenchmarkStep* benchmarks in bench_test.go measure what this buys per
// training step.
//
// # Serving layer: dynamic batching, admission control, Zipf caching
//
// internal/serve turns the trained models into a production-shaped
// inference service (cmd/zipflm-serve): per-worker replicas run a
// continuous dynamic batcher over model.Stepper — a zero-allocation
// batched generation path whose rows are computed independently, so every
// response is bit-identical to sequential model.Generate for the same
// request seed regardless of batch composition. A bounded admission queue
// sheds under overload instead of accumulating goroutines, deadlines are
// enforced at service start, and two LRU caches exploit the Zipf shape of
// request popularity: a result cache for exact repeats and a prefix cache
// snapshotting post-prompt recurrent states. The "serving" experiment
// (zipflm-bench -exp serving) drives it with a closed-loop Zipf load
// generator and fits the issued load with internal/powerlaw; the
// BenchmarkServe* benchmarks in internal/serve compare batched and
// sequential throughput.
//
// # Quantized & speculative decode: int8 kernels, draft-verified lookahead
//
// Two optimizations attack the serving hot path's per-token cost without
// loosening any determinism contract. LM.Quantize builds a serving replica
// whose output embedding and recurrent weights are stored as per-chunk
// scaled int8 (tensor.QMatrix, the same round-to-nearest grid as
// compress.Quant8); the MatMulABTStreamQ8/MatVecQ8 kernels dequantize
// in-register, on amd64 through an SSE4.1 assembly inner loop whose
// accumulation order is exactly the portable definition's, so quantized
// results are bit-identical across Serial, Parallel, worker counts, and
// the asm/Go boundary. Speculative decoding (model.SpecDecoder,
// serve.Config.Draft) has a small same-vocabulary draft propose k greedy
// lookahead tokens which the target verifies in one batched Stepper step,
// rolling back at the first mismatch; every emitted token is sampled from
// the target's own logits at its true prefix, so output is bit-identical
// to sequential model.Generate at every temperature — the draft only
// changes the cost per token. Both surface on zipflm-serve and
// zipflm-generate (-quantized, -draft, -draft-k), /v1/stats reports the
// acceptance rate, /v1/reload swaps target and draft atomically, and the
// serving experiment's second table measures tok/s and acceptance for a
// trained target/draft pairing.
//
// # Fault tolerance: checkpoints, deterministic resume, failure injection
//
// internal/ckpt makes the training and serving stacks crash-safe the way
// the paper's tens-of-hours epochs demand. A checkpoint captures the
// complete training state — model weights (deterministic name-sorted
// encoding), optimizer moments, global step and LR-schedule position,
// per-rank RNG streams, carried RNN state — in CRC-framed, atomically
// written files under a retention-managed store, and trainer.Resume
// restores it so exactly that checkpoint-then-resume is bit-identical to
// never having stopped: replicas, wire-byte counters, and validation loss
// all match an uninterrupted run across every optimizer × exchange ×
// precision × overlap combination (the resume tests enforce this).
// On the virtual clock, a seeded ckpt.FaultPlan kills ranks at simulated
// times; the trainer rolls back to its last checkpoint, replays, and the
// "faults" experiment (zipflm-bench -exp faults) sweeps checkpoint
// interval against failure rate to trace goodput, with the measured
// optimum landing on the Young/Daly √(2δM) prediction. On the serving
// side, serve.Server.Reload swaps worker replicas between batch steps
// with zero dropped requests — in-flight sequences finish on the weights
// that admitted them, caches are generation-tagged — and zipflm-serve
// wires it to POST /v1/reload, a checkpoint-directory watcher (-watch),
// and graceful SIGINT/SIGTERM drain.
//
// # Multicore backend: goroutine-tiled kernels, bit-identical at any width
//
// internal/tensor hides every matmul the models compute behind a pluggable
// Backend: Serial (the reference kernels) and Parallel, which tiles each
// kernel's output across a persistent goroutine pool. Tile boundaries are
// a pure function of shape and worker count, each tile writes a disjoint
// output range in the serial kernel's exact operation order, and no
// reduction ever crosses a tile (the transposed-accumulate kernel
// partitions output rows, not the reduction axis), so results are
// bit-identical to Serial at every worker count — which is what lets one
// knob accelerate training, validation, and serving without perturbing any
// of the repository's exact-bits contracts. Dispatch is allocation-free
// and small products fall back to the serial kernel. The knob surfaces as
// zipflm-train -workers / trainer.Config.Workers (rank replicas share one
// backend), zipflm-serve -compute-workers / serve.Config.ComputeWorkers,
// zipflm-bench -workers, and the ZIPFLM_WORKERS environment variable,
// which CI uses to run the whole suite through the tiled backend. Speedup
// requires GOMAXPROCS > 1; on a single-core host the tiled counts measure
// dispatch overhead (the BenchmarkStepWorkers* names carry the GOMAXPROCS
// suffix, so artifacts record which case they measured).
//
// # Gradient compression: top-k error feedback, 8-bit quantization
//
// internal/compress multiplies the wire savings of §III-A and §III-C on
// the dense gradient side. The collective layer's wire precision is now an
// interface (collective.Wire) rather than the FP16 scaler alone, so
// compress.Quant8 — 8-bit quantization with per-chunk scales and
// deterministic stochastic rounding — rides the zero-copy ring all-reduce
// exactly where FP16 does, at 4× under FP32 for any cluster size. Top-k
// sparsification with momentum-corrected error feedback travels a new
// compressed all-reduce (collective.AllReduceCompressed): per-rank opaque
// payloads all-gather and every rank decode-sums them in rank order, which
// keeps replicas bit-identical while Stats records the real compressed
// bytes and the virtual clock prices them. A Zipf-aware policy leaves
// small tensors uncompressed and tunes embedding-class ratios from the
// corpus's own type–token law (powerlaw.FitRankFrequency); per-rank
// residual state rides in version-2 checkpoints so compressed runs resume
// bit-identically. The "compress" experiment (zipflm-bench -exp compress)
// measures bytes and loss deltas on a real run and reprices the
// weak-scaling step model with compressed payloads.
//
// # Observability: unified telemetry, Prometheus, virtual-clock tracing
//
// internal/telemetry gives every subsystem one metrics and tracing layer
// built for nanosecond hot paths: atomic counters and gauges, lock-free
// log-scale histograms (32 sub-buckets per octave, ≤1.6% relative quantile
// error) with p50/p99/p999, all zero-allocation on record and no-ops when
// nil — telemetry off costs one branch. A Registry exports Prometheus text
// exposition (labeled families like
// zipflm_collective_bytes_total{op="allreduce",wire="fp16"}) and JSON
// snapshots; telemetry.Tracer records bounded span/instant timelines as
// Chrome trace_event JSON whose simulated-cluster spans carry the virtual
// clock next to wall time — summing a trace's per-phase virtual durations
// reproduces the trainer's SimComputeSeconds/SimSyncSeconds bitwise. The
// instrumented paths (collective.Comm per-op/per-wire traffic, trainer
// step phases and fault counters, ckpt.Dir save/load, the whole serving
// snapshot — /v1/stats reads from the registry) observe without
// perturbing: the bit-identity suites rerun with telemetry on and assert
// identical weights, losses and tokens. Surfaces: zipflm-serve GET
// /metrics and -debug-addr (net/http/pprof), zipflm-train -metrics-addr
// and -trace, zipflm-bench -trace, and examples/observability.
//
// Three analysis layers sit on top. Traces carry per-rank and
// per-collective spans, and internal/traceview computes the per-step
// critical path on the virtual clock — straggler rank, wire vs sync-wait
// seconds, per-rank utilization — with totals that reconcile bitwise
// against the trainer's accounting through the JSON file; cmd/zipflm-trace
// is the CLI (summary, top spans, -diff with a nonzero exit on
// regression). telemetry.SLO evaluates declared objectives (p99 latency,
// availability) straight off the registry's histograms and counters with
// multi-window error-budget burn rates, published as zipflm_slo_* gauges
// and on the serving /v1/stats snapshot. telemetry.Flight is an always-on
// lock-free ring of pre-rendered log/slog records — the last N anomalies
// — dumped on trainer fault rollback, serve overload shed, or SIGQUIT.
// All three inherit the layer's contract: the bit-identity suites run
// with tracing, SLOs and flight recording enabled simultaneously.
package zipflm
