// Package zipflm is a from-scratch Go reproduction of "Language Modeling at
// Scale" (Patwary, Chabbi, Jun, Huang, Diamos, Church — IPPS 2019,
// arXiv:1810.10045): scaling RNN language-model training across many GPUs by
// exploiting Zipf's law in the embedding-layer gradient exchange.
//
// The system lives in internal/ packages (see DESIGN.md for the inventory),
// is exercised by the runnable programs in cmd/ and examples/, and
// regenerates every table and figure of the paper's evaluation through
// cmd/zipflm-bench and the benchmarks in bench_test.go.
package zipflm
