// Serving example: stand up the batched inference server over a model,
// drive it with the closed-loop Zipf load generator, and verify the
// subsystem's headline properties in one run — responses bit-identical
// to sequential Generate, a hot-prompt cache absorbing most of a
// power-law workload, int8 decode beating FP32 on the same load, and
// speculative decoding preserving bit-identity while reporting its
// acceptance rate.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/serve"
)

func main() {
	m := model.NewLM(model.Config{
		Vocab: 2000, Dim: 64, Hidden: 96, RNN: model.KindLSTM, Seed: 11,
	})

	srv := serve.New(m, serve.Config{
		Workers:       1,
		MaxBatch:      16,
		QueueDepth:    16,
		CacheEntries:  256,
		PrefixEntries: 64,
	})
	defer srv.Close()

	// One request, checked against the sequential path: the serving
	// contract is that batching and caching never change a single bit.
	req := serve.Request{
		Prompt: []int{1, 42, 7},
		N:      12,
		Opts:   sampling.DecodeOpts{Temperature: 0.8, TopK: 50},
		Seed:   99,
	}
	res, err := srv.Submit(req)
	if err != nil {
		log.Fatal(err)
	}
	want := m.GenerateOpts(req.Prompt, req.N, req.Opts, rng.New(req.Seed))
	fmt.Printf("served:     %v\n", res.Tokens)
	fmt.Printf("sequential: %v\n", want)
	for i := range want {
		if res.Tokens[i] != want[i] {
			log.Fatalf("bit-identity violated at token %d", i)
		}
	}
	fmt.Println("bit-identical ✓")

	// Closed-loop Zipf load: 8 clients, popularity ∝ 1/rank^1.1. Hot
	// prompts repeat, so the result cache absorbs most of the traffic.
	rep := serve.RunLoad(srv, serve.LoadConfig{
		Clients:  8,
		Requests: 300,
		Vocab:    m.Cfg.Vocab,
		Tokens:   16,
		Opts:     sampling.DecodeOpts{Temperature: 0.8},
		Seed:     7,
	})
	snap := srv.Stats()
	fmt.Printf("\nclosed-loop load: %d requests in %v\n", rep.Completed, rep.Wall.Round(time.Millisecond))
	fmt.Printf("throughput:  %.0f tok/s (%.1f req/s)\n", rep.TokensPerSecond(), rep.RequestsPerSecond())
	fmt.Printf("latency:     p50 %v  p99 %v\n", snap.LatencyP50.Round(10*time.Microsecond), snap.LatencyP99.Round(10*time.Microsecond))
	fmt.Printf("mean batch:  %.2f sequences per step\n", snap.MeanBatch)
	fmt.Printf("cache:       %.0f%% hit rate (%d hits, %d prefix hits), %d shed\n",
		100*snap.HitRate(), rep.CacheHits, rep.PrefixHits, rep.Shed+rep.Expired)

	// Quantized leg: same model, int8 weights, single-stream load with the
	// caches off so the per-token decode cost is what's measured. The q8
	// kernels dequantize in-register and beat FP32 where decode is
	// memory-bound; output is deterministic against m.Quantize().
	singleStream := serve.LoadConfig{
		Clients:  1,
		Requests: 64,
		Vocab:    m.Cfg.Vocab,
		Tokens:   16,
		Opts:     sampling.DecodeOpts{Temperature: 0.8},
		Seed:     7,
	}
	legTokS := func(cfg serve.Config) float64 {
		s := serve.New(m, cfg)
		defer s.Close()
		return serve.RunLoad(s, singleStream).TokensPerSecond()
	}
	fp32TokS := legTokS(serve.Config{MaxBatch: 1, QueueDepth: 4})
	q8TokS := legTokS(serve.Config{MaxBatch: 1, QueueDepth: 4, Quantized: true})
	fmt.Printf("\nquantized single-stream: fp32 %.0f tok/s → int8 %.0f tok/s (%.2fx)\n",
		fp32TokS, q8TokS, q8TokS/fp32TokS)

	// Speculative leg: a small draft proposes lookahead tokens, the target
	// verifies them in one batched step. Output stays bit-identical to
	// sequential Generate at every temperature; with an untrained draft the
	// acceptance rate is just chance, so the print is about the contract
	// and the accounting, not a speedup.
	draft := model.NewLM(model.Config{
		Vocab: m.Cfg.Vocab, Dim: 16, Hidden: 24, RNN: model.KindRHN, RHNDepth: 2, Seed: 33,
	})
	spec := serve.New(m, serve.Config{MaxBatch: 1, QueueDepth: 4, Draft: draft, DraftK: 4})
	defer spec.Close()
	res, err = spec.Submit(req)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if res.Tokens[i] != want[i] {
			log.Fatalf("speculative bit-identity violated at token %d", i)
		}
	}
	specRep := serve.RunLoad(spec, singleStream)
	specSnap := spec.Stats()
	fmt.Printf("speculative k=%d:         %.0f tok/s, %.0f%% acceptance over %d rounds (bit-identical ✓)\n",
		specSnap.DraftK, specRep.TokensPerSecond(), 100*specSnap.SpecAcceptanceRate(), specSnap.SpecRounds)
}
