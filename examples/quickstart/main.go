// Quickstart: train a small word language model on a synthetic Zipfian
// corpus across four simulated GPUs using the paper's unique exchange, and
// watch validation perplexity fall.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func main() {
	// 1. A corpus. Real text works too (corpus.Tokenize +
	//    corpus.BuildVocabulary); here we synthesize 60K Zipf-distributed
	//    tokens over a 500-word vocabulary.
	gen := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    499,
		ZipfExponent: 1.2,
		Seed:         1,
	})
	stream := gen.Stream(60_000)
	train, valid := corpus.Split(stream, 10, 100, 1)

	// 2. A distributed trainer: 4 simulated GPUs, each with a replica of a
	//    small LSTM LM, synchronized with the paper's uniqueness exchange
	//    and Zipf's-freq sampled-softmax seeding.
	cfg := trainer.Config{
		Model: model.Config{
			Vocab: 500, Dim: 24, Hidden: 32,
			RNN: model.KindLSTM, Sampled: 32,
		},
		Ranks:        4,
		BatchPerRank: 2,
		SeqLen:       16,
		LR:           0.3,
		Exchange:     core.UniqueExchange{},
		SeedStrategy: sampling.ZipfFreq,
		BaseSeed:     1,
	}
	tr, err := trainer.New(cfg, train, valid)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train two epochs, evaluating twice per epoch.
	res, err := tr.Run(2, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range res.Evals {
		fmt.Printf("epoch %.1f: validation perplexity %.2f\n", ev.Epoch, ev.Perplexity)
	}
	fmt.Printf("\nper-rank exchange traffic: %.2f MB\n", float64(res.Stats.WireBytesPerRank)/1e6)
	fmt.Printf("avg unique words per step: %.0f input, %.0f output (of %d tokens per global batch)\n",
		res.Stats.AvgInputUnique(), res.Stats.AvgOutputUnique(),
		cfg.Ranks*cfg.BatchPerRank*cfg.SeqLen)
	if err := tr.ReplicasInSync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all replicas in sync — the §II-B invariant holds")
}
