// Checkpoint example: the full fault-tolerance story in one run —
// train with periodic full-state checkpoints, "crash" mid-run, resume in a
// fresh trainer, prove the resumed trajectory is bit-identical to an
// uninterrupted one, then serve the result and hot-reload newer weights
// with zero dropped requests.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"os"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/model"
	"zipflm/internal/optim"
	"zipflm/internal/sampling"
	"zipflm/internal/serve"
	"zipflm/internal/trainer"
)

func main() {
	// A small Zipfian corpus and a word-LM-shaped run: Adam (so the
	// checkpoint has real optimizer moments to carry) over the unique
	// exchange on 4 simulated GPUs.
	gen := corpus.NewGenerator(corpus.GeneratorConfig{VocabSize: 199, ZipfExponent: 1.2, Seed: 7})
	stream := gen.Stream(20000)
	train, valid := corpus.Split(stream, 10, 100, 7)

	dir, err := os.MkdirTemp("", "zipflm-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := trainer.Config{
		Model:        model.Config{Vocab: 200, Dim: 16, Hidden: 24, RNN: model.KindLSTM, Sampled: 16},
		Ranks:        4,
		BatchPerRank: 2,
		SeqLen:       10,
		LR:           0.1,
		LRDecay:      0.9,
		Exchange:     core.UniqueExchange{},
		SeedStrategy: sampling.ZipfFreq,
		NewOptimizer: func() optim.Optimizer { return optim.NewAdam(1e-5) },
		BaseSeed:     7,
	}

	const leg = 60 // steps before the "crash" and after the resume

	// The uninterrupted twin: 2·leg steps straight through.
	full, err := trainer.New(cfg, train, valid)
	if err != nil {
		log.Fatal(err)
	}
	if err := full.Steps(2 * leg); err != nil {
		log.Fatal(err)
	}

	// The crashing run: checkpoint every 20 steps, then "kill -9" (drop
	// the trainer on the floor — the checkpoints on disk are all that
	// survives, exactly like a real rank failure).
	ck := cfg
	ck.CheckpointEvery = 20
	ck.CheckpointDir = dir
	crashing, err := trainer.New(ck, train, valid)
	if err != nil {
		log.Fatal(err)
	}
	if err := crashing.Steps(leg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d steps, %d full-state checkpoints in %s — crashing now\n",
		crashing.Step(), crashing.FaultStats().Checkpoints, dir)
	crashing = nil // the "crash"

	// Resume in a fresh trainer (a fresh process in real life): weights,
	// Adam moments, step counter, LR schedule and RNG streams all come
	// back from disk.
	resumed, err := trainer.Resume(ck, dir, train, valid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed at step %d\n", resumed.Step())
	if err := resumed.Steps(leg); err != nil {
		log.Fatal(err)
	}

	// The contract: resume is bit-identical, not approximately equal.
	lossFull, lossResumed := full.Validate(), resumed.Validate()
	fmt.Printf("validation loss: uninterrupted %.9f, crash+resume %.9f\n", lossFull, lossResumed)
	if lossFull != lossResumed {
		log.Fatal("resume diverged from the uninterrupted run")
	}
	a, b := full.Model(0).DenseParams(), resumed.Model(0).DenseParams()
	for pi := range a {
		for i := range a[pi].Value {
			if a[pi].Value[i] != b[pi].Value[i] {
				log.Fatalf("parameter %s differs at %d", a[pi].Name, i)
			}
		}
	}
	fmt.Println("bit-identical: every parameter of every replica matches the uninterrupted run")

	// Serve the resumed model, then train further and hot-reload: the
	// request issued before the reload answers on v1 weights, the one
	// after on v2 — zero downtime, zero sheds.
	srv := serve.New(resumed.Model(0), serve.Config{MaxBatch: 8, CacheEntries: 64})
	defer srv.Close()
	req := serve.Request{Prompt: []int{2, 5, 9}, N: 10, Opts: sampling.DecodeOpts{Temperature: 0.8}, Seed: 3}
	before, err := srv.Submit(req)
	if err != nil {
		log.Fatal(err)
	}
	if err := resumed.Steps(200); err != nil { // training continues while serving
		log.Fatal(err)
	}
	v, err := srv.Reload(resumed.Model(0))
	if err != nil {
		log.Fatal(err)
	}
	after, err := srv.Submit(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served on weights v%d: %v\n", before.WeightsVersion, before.Tokens)
	fmt.Printf("hot-reloaded to v%d\n", v)
	fmt.Printf("served on weights v%d: %v\n", after.WeightsVersion, after.Tokens)
	snap := srv.Stats()
	fmt.Printf("reloads %d, shed %d — nothing dropped across the swap\n", snap.Reloads, snap.Shed)
}
