// Word-LM strategy shoot-out: train the same model under the baseline
// ALLGATHER exchange and the paper's unique exchange (±FP16 compression)
// and compare accuracy, traffic, and scratch memory — §V-A in miniature.
//
//	go run ./examples/wordlm
package main

import (
	"fmt"
	"log"

	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/half"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func main() {
	gen := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    799,
		ZipfExponent: 1.2,
		Seed:         7,
	})
	stream := gen.Stream(80_000)
	train, valid := corpus.Split(stream, 10, 100, 7)

	type variant struct {
		name string
		ex   core.Exchanger
		wire collective.Wire
	}
	variants := []variant{
		{"baseline allgather (FP32)", core.BaselineAllGather{}, nil},
		{"unique exchange (FP32)", core.UniqueExchange{}, nil},
		{"unique exchange (FP16 wire)", core.UniqueExchange{}, half.NewScaler(512)},
	}

	tab := metrics.NewTable("Word LM, 4 ranks, 2 epochs — exchange strategies:",
		"strategy", "final ppl", "wire/rank", "peak scratch", "avg U_g")
	for _, v := range variants {
		cfg := trainer.Config{
			Model: model.Config{
				Vocab: 800, Dim: 24, Hidden: 32,
				RNN: model.KindLSTM, Sampled: 48,
			},
			Ranks:        4,
			BatchPerRank: 2,
			SeqLen:       16,
			LR:           0.3,
			Exchange:     v.ex,
			Wire:         v.wire,
			SeedStrategy: sampling.ZipfFreq,
			BaseSeed:     7,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tr.Run(2, 1)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(v.name,
			fmt.Sprintf("%.2f", res.Evals[len(res.Evals)-1].Perplexity),
			metrics.HumanBytes(res.Stats.WireBytesPerRank),
			metrics.HumanBytes(res.Stats.PeakMemory),
			fmt.Sprintf("%.0f", res.Stats.AvgInputUnique()))
	}
	fmt.Print(tab)
	fmt.Println(`
all three reach identical accuracy — the uniqueness technique "only changes
the flow of computation" (§V-A) — and FP16 halves the wire volume. At this
toy scale the dense-parameter all-reduce dominates traffic and the baseline's
Θ(G·K·D) gather is still affordable; run 'zipflm-bench -exp tab3' and
'-exp mem' to see the exchange dominate (and the baseline OOM) at the
paper's 8–64 GPU configuration.`)
}
