// Gradient-compression example — bytes on the wire, before and after.
//
// The paper already shrinks the *embedding* exchange with uniqueness
// (§III-A) and halves everything with FP16 (§III-C); internal/compress is
// the next multiplier, aimed at the *dense* RNN/projection gradients. This
// walkthrough trains the same small word LM four ways — dense FP32, dense
// FP16, 8-bit quantized ring, and top-k with error feedback — and prints
// what each puts on the wire per rank next to what it costs in validation
// loss. The top-k run's embedding-class ratio is tuned from the corpus's
// own type–token law (the same Figure-1 fit the sparse exchanges exploit),
// and a rerun asserts the compressed training is bit-deterministic.
//
//	go run ./examples/compress
package main

import (
	"fmt"
	"log"

	"zipflm/internal/collective"
	"zipflm/internal/compress"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/half"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func main() {
	const ranks = 4
	gen := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    299,
		ZipfExponent: 1.1,
		Seed:         7,
	})
	stream := gen.Stream(50_000)
	train, valid := corpus.Split(stream, 20, 100, 7)
	mc := model.Config{Vocab: 300, Dim: 24, Hidden: 32, RNN: model.KindLSTM}
	batch, seqLen := 4, 12

	// Zipf-aware policy: fit the type–token law on the training stream and
	// let it pick the embedding-class top-k ratio — a V×D embedding
	// gradient only has non-zero rows for the global batch's unique words.
	topk := compress.Config{Method: compress.MethodTopK, Ratio: 0.02, Momentum: 0.9, MinElems: 256}
	if err := topk.ZipfTune(train, mc.Vocab, ranks*batch*seqLen); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("type-token fit picks embedding ratio %.3f (rank-frequency α = %.2f)\n\n",
		topk.EmbedRatio, topk.RankAlpha)

	run := func(wire collective.Wire, cc *compress.Config) (int64, float64, *trainer.Trainer) {
		if cc != nil {
			copied := *cc
			cc = &copied
		}
		tr, err := trainer.New(trainer.Config{
			Model: mc, Ranks: ranks, BatchPerRank: batch, SeqLen: seqLen,
			LR: 0.3, Exchange: core.UniqueExchange{},
			SeedStrategy: sampling.ZipfFreq, BaseSeed: 7,
			Wire: wire, Compress: cc,
		}, train, valid)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tr.Run(2, 1)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.ReplicasInSync(); err != nil {
			log.Fatal(err)
		}
		return tr.Comm().MaxStats().AllReduceBytes, res.FinalLoss, tr
	}

	q8 := &compress.Config{Method: compress.MethodQuant8, Stochastic: true, MinElems: 256}
	tab := metrics.NewTable("Dense-gradient wire bytes per rank, 4 ranks × 2 epochs:",
		"wire", "dense bytes/rank", "vs FP32", "val loss")
	var base int64
	var baseLoss, lossA float64
	var trA *trainer.Trainer
	for _, v := range []struct {
		name string
		wire collective.Wire
		cc   *compress.Config
	}{
		{"FP32", nil, nil},
		{"FP16 (§III-C)", half.NewScaler(512), nil},
		{"q8 per-chunk stochastic", nil, q8},
		{"topk + error feedback", nil, &topk},
	} {
		bytes, loss, tr := run(v.wire, v.cc)
		if v.wire == nil && v.cc == nil {
			base, baseLoss = bytes, loss
		}
		if v.cc == &topk {
			// Reused below as determinism run A.
			lossA, trA = loss, tr
		}
		tab.AddRow(v.name, metrics.HumanBytes(bytes),
			fmt.Sprintf("%.2fx", float64(bytes)/float64(base)),
			fmt.Sprintf("%.4f (%+.4f)", loss, loss-baseLoss))
	}
	fmt.Print(tab)

	// Determinism: the compressed trajectory must be a pure function of
	// the seed — rerun the topk row and compare replicas bit for bit.
	_, lossB, trB := run(nil, &topk)
	identical := lossA == lossB
	a, b := trA.Model(0).DenseParams(), trB.Model(0).DenseParams()
	for pi := range a {
		for i := range a[pi].Value {
			if a[pi].Value[i] != b[pi].Value[i] {
				identical = false
			}
		}
	}
	fmt.Printf("\ncompressed rerun bit-identical: %v\n", identical)
}
