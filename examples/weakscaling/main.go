// Weak-scaling example — Table V in miniature: grow the cluster and the
// corpus together (1 → 4 → 8 ranks, data ∝ ranks) so each configuration
// runs the same number of steps, and watch accuracy improve with data while
// per-epoch step counts stay flat.
//
//	go run ./examples/weakscaling
package main

import (
	"fmt"
	"log"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func main() {
	const perRank = 20_000
	d, err := corpus.DatasetByName("tieba")
	if err != nil {
		log.Fatal(err)
	}

	tab := metrics.NewTable("Weak scaling (Chinese-style char LM, sampled softmax + Zipf's-freq seeding):",
		"ranks", "train tokens", "steps/epoch", "final ppl", "improvement")
	var basePPL float64
	for _, ranks := range []int{1, 4, 8} {
		gen := corpus.NewGenerator(corpus.GeneratorConfig{
			VocabSize:    299,
			ZipfExponent: d.ZipfExponent,
			Seed:         9,
		})
		stream := gen.Stream(perRank*ranks + perRank/2)
		train, valid := corpus.Split(stream, 10, 100, 9)

		cfg := trainer.Config{
			Model: model.Config{
				Vocab: 300, Dim: 16, Hidden: 24,
				RNN: model.KindRHN, RHNDepth: 2, Sampled: 32,
			},
			Ranks:        ranks,
			BatchPerRank: 2,
			SeqLen:       16,
			LR:           0.15,
			Exchange:     core.UniqueExchange{},
			SeedStrategy: sampling.ZipfFreq,
			BaseSeed:     9,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tr.Run(2, 1)
		if err != nil {
			log.Fatal(err)
		}
		ppl := res.Evals[len(res.Evals)-1].Perplexity
		if basePPL == 0 {
			basePPL = ppl
		}
		tab.AddRow(fmt.Sprint(ranks), fmt.Sprint(len(train)),
			fmt.Sprint(tr.StepsPerEpoch()),
			fmt.Sprintf("%.2f", ppl),
			fmt.Sprintf("%.0f%%", 100*metrics.AccuracyImprovement(basePPL, ppl)))
	}
	fmt.Print(tab)
	fmt.Println("\npaper (Table V): 32× more data + GPUs costs only 1.25× more wall-clock")
	fmt.Println("yet improves Tieba perplexity 35% (17.06 → 11.1).")
}
