// Weak-scaling example — Table V in miniature: grow the cluster and the
// corpus together (1 → 4 → 8 ranks, data ∝ ranks) so each configuration
// runs the same number of steps, and watch accuracy improve with data while
// per-epoch step counts stay flat.
//
// The run is wired through the simulated-clock API (trainer.Config.Hardware):
// every collective advances per-rank virtual clocks by α + bytes/β on the
// Table II links, compute and embedding updates charge the same clocks, and
// the table prints the predicted epoch hours next to the measured wire
// bytes — the same machinery the weakscale experiment uses to reproduce the
// Tables III/IV story end to end.
//
//	go run ./examples/weakscaling
package main

import (
	"fmt"
	"log"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/perfmodel"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func main() {
	const perRank = 20_000
	d, err := corpus.DatasetByName("tieba")
	if err != nil {
		log.Fatal(err)
	}
	hw := perfmodel.TitanX()

	tab := metrics.NewTable("Weak scaling (Chinese-style char LM, sampled softmax + Zipf's-freq seeding, virtual clock on Titan X):",
		"ranks", "train tokens", "steps/epoch", "final ppl", "improvement",
		"wire/rank", "pred s/step", "pred epoch hrs")
	mc := model.Config{
		Vocab: 300, Dim: 16, Hidden: 24,
		RNN: model.KindRHN, RHNDepth: 2, Sampled: 32,
		Seed: 9,
	}
	batch, seqLen := 2, 16
	// Modeled per-rank compute: the standard ~6 FLOPs per dense parameter
	// per token (forward 2, backward 4), at the paper's char-LM achieved
	// fraction of peak. The count is architecture-only, so one throwaway
	// replica suffices.
	var denseParams int64
	for _, p := range model.NewLM(mc).DenseParams() {
		denseParams += int64(len(p.Value))
	}

	var basePPL float64
	for _, ranks := range []int{1, 4, 8} {
		gen := corpus.NewGenerator(corpus.GeneratorConfig{
			VocabSize:    299,
			ZipfExponent: d.ZipfExponent,
			Seed:         9,
		})
		stream := gen.Stream(perRank*ranks + perRank/2)
		train, valid := corpus.Split(stream, 10, 100, 9)

		cfg := trainer.Config{
			Model:           mc,
			Ranks:           ranks,
			BatchPerRank:    batch,
			SeqLen:          seqLen,
			LR:              0.15,
			Exchange:        core.UniqueExchange{},
			SeedStrategy:    sampling.ZipfFreq,
			BaseSeed:        9,
			Hardware:        &hw,
			SimFLOPsPerStep: float64(6 * denseParams * int64(batch*seqLen)),
			SimAchievedFrac: 0.64,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tr.Run(2, 1)
		if err != nil {
			log.Fatal(err)
		}
		ppl := res.Evals[len(res.Evals)-1].Perplexity
		if basePPL == 0 {
			basePPL = ppl
		}
		stepSec := res.Stats.SimStepSeconds()
		tab.AddRow(fmt.Sprint(ranks), fmt.Sprint(len(train)),
			fmt.Sprint(tr.StepsPerEpoch()),
			fmt.Sprintf("%.2f", ppl),
			fmt.Sprintf("%.0f%%", 100*metrics.AccuracyImprovement(basePPL, ppl)),
			metrics.HumanBytes(res.Stats.WireBytesPerRank),
			fmt.Sprintf("%.2e", stepSec),
			fmt.Sprintf("%.2e", float64(tr.StepsPerEpoch())*stepSec/3600))
	}
	fmt.Print(tab)
	fmt.Println("\nweak scaling in both senses: steps/epoch stay flat as data and GPUs")
	fmt.Println("grow together, and the virtual clock prices each configuration's step.")
	fmt.Println("\npaper (Table V): 32× more data + GPUs costs only 1.25× more wall-clock")
	fmt.Println("yet improves Tieba perplexity 35% (17.06 → 11.1).")
}
