// Generation example: train a stateful word LM on a Markov-Zipf corpus,
// checkpoint it, reload the checkpoint, and sample continuations at several
// temperatures — the inference workflow a downstream user of the library
// runs.
//
//	go run ./examples/generate
package main

import (
	"bytes"
	"fmt"
	"log"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/trainer"
)

func main() {
	// A corpus with learnable sequential structure.
	gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize:    199,
		Branching:    8,
		ZipfExponent: 1.1,
		Seed:         21,
	})
	stream := gen.Stream(60_000)
	train, valid := corpus.Split(stream, 10, 100, 21)

	cfg := trainer.Config{
		Model: model.Config{
			Vocab: 200, Dim: 16, Hidden: 24,
			RNN: model.KindLSTM, Stateful: true,
		},
		Ranks:        2,
		BatchPerRank: 2,
		SeqLen:       16,
		LR:           0.4,
		ClipNorm:     1.0,
		Exchange:     core.UniqueExchange{},
		BaseSeed:     21,
	}
	tr, err := trainer.New(cfg, train, valid)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Run(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: validation perplexity %.2f (vocab 200)\n\n", res.Evals[len(res.Evals)-1].Perplexity)

	// Round-trip through a checkpoint, as an inference service would.
	var buf bytes.Buffer
	if err := tr.Model(0).Save(&buf); err != nil {
		log.Fatal(err)
	}
	ckptBytes := buf.Len()
	m, err := model.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint round trip: %d bytes\n\n", ckptBytes)

	prompt := train[:6]
	fmt.Printf("prompt: %v\n", prompt)
	for _, temp := range []float64{0, 0.7, 1.2} {
		out := m.Generate(prompt, 16, temp, rng.New(5))
		fmt.Printf("T=%.1f: %v\n", temp, out)
	}
	fmt.Printf("\nmodel scores the validation stream at %.3f nats/token\n", m.Score(valid[:2000], 16))
}
