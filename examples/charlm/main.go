// Char-LM example: train the paper's character-model architecture (a
// recurrent highway network with full softmax, §IV-B) on a synthetic
// English-character corpus and report bits per character, the §V-D metric.
//
//	go run ./examples/charlm
package main

import (
	"fmt"
	"log"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/optim"
	"zipflm/internal/trainer"
)

func main() {
	// The Amazon-review stand-in: 98-character vocabulary (§IV-A).
	d, err := corpus.DatasetByName("ar")
	if err != nil {
		log.Fatal(err)
	}
	stream := d.CharGenerator(3).Stream(90_000)
	train, valid := corpus.Split(stream, 10, 100, 3)

	cfg := trainer.Config{
		Model: model.Config{
			// RHN, scaled down from depth 10 × 1792 cells.
			Vocab: d.CharVocab + 1, Dim: 16, Hidden: 28,
			RNN: model.KindRHN, RHNDepth: 3,
		},
		Ranks:        4,
		BatchPerRank: 2,
		SeqLen:       24,
		LR:           0.012,
		Exchange:     core.UniqueExchange{},
		// §IV-B: "we use Adam with weight decay … for optimizing the
		// character cross-entropy loss using a full softmax layer."
		NewOptimizer: func() optim.Optimizer { return optim.NewAdam(1e-5) },
		BaseSeed:     3,
	}
	tr, err := trainer.New(cfg, train, valid)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Run(3, 1)
	if err != nil {
		log.Fatal(err)
	}

	tab := metrics.NewTable("Char LM (RHN + full softmax), 4 ranks:",
		"epoch", "perplexity", "bits/char")
	for _, ev := range res.Evals {
		tab.AddRow(fmt.Sprintf("%.1f", ev.Epoch),
			fmt.Sprintf("%.2f", ev.Perplexity),
			fmt.Sprintf("%.3f", metrics.BPC(ev.Loss)))
	}
	fmt.Print(tab)
	fmt.Println("\nnote: with a ~98-char vocabulary the unique-word count saturates at |V|")
	fmt.Printf("      (avg U_g per step: %.0f), so the input-embedding exchange is tiny —\n",
		res.Stats.AvgInputUnique())
	fmt.Println("      the paper's char LM wins come from uniqueness + compression (§V-B).")
}
