// Observability example: one telemetry registry shared by a training run
// and a serving instance, scraped over HTTP in Prometheus text format,
// plus a Chrome trace_event timeline of the training run carrying both
// wall time and the simulated cluster's virtual clock.
//
//	go run ./examples/observability
//
// The walkthrough demonstrates the layer's contract: telemetry is purely
// observational — the instrumented training run produces bit-identical
// weights to an uninstrumented one, and every served response stays
// bit-identical to sequential Generate.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/model"
	"zipflm/internal/perfmodel"
	"zipflm/internal/sampling"
	"zipflm/internal/serve"
	"zipflm/internal/telemetry"
	"zipflm/internal/traceview"
	"zipflm/internal/trainer"
)

func main() {
	// One registry for everything; one tracer for the training timeline.
	// zipflm-train and zipflm-serve wire these up behind -metrics-addr /
	// -trace and /metrics; here we do it by hand to show the pieces.
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)

	// --- Train with telemetry on, over a virtual-clocked cluster. -------
	gen := corpus.NewGenerator(corpus.GeneratorConfig{VocabSize: 499, ZipfExponent: 1.1, Seed: 7})
	stream := gen.Stream(24000)
	train, valid := corpus.Split(stream, 10, 100, 7)
	hw := perfmodel.TitanX()
	cfg := trainer.Config{
		Model:           model.Config{Vocab: 500, Dim: 24, Hidden: 32, RNN: model.KindLSTM, Sampled: 32},
		Ranks:           4,
		BatchPerRank:    2,
		SeqLen:          10,
		LR:              0.1,
		Exchange:        core.UniqueExchange{},
		SeedStrategy:    sampling.ZipfFreq,
		BaseSeed:        7,
		Hardware:        &hw,
		SimFLOPsPerStep: 2e9,
		SimAchievedFrac: 0.4,
		Telemetry:       reg,
		Trace:           tracer,
	}
	tr, err := trainer.New(cfg, train, valid)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Run(1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d steps (final loss %.4f), virtual cluster time %.2f s\n",
		res.Stats.Steps, res.FinalLoss, tr.SimSeconds())

	// The trace's per-phase virtual durations reproduce the trainer's
	// accounting exactly — the acceptance contract of the tracer. Only the
	// aggregate "train" spans count: the per-rank spans (cat "rank") carry
	// the same names and would double-count.
	var vCompute float64
	for _, e := range tracer.Events() {
		if e.Cat == "train" && e.Name == "compute" {
			vCompute += e.VDur
		}
	}
	fmt.Printf("trace: %d events; compute vclock sum %.6f s == SimComputeSeconds %.6f s: %v\n",
		tracer.Len(), vCompute, res.Stats.SimComputeSeconds,
		vCompute == res.Stats.SimComputeSeconds)

	if err := writeTrace(tracer, "trace.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote trace.json — open it in chrome://tracing or https://ui.perfetto.dev")

	// --- Analyze the trace we just wrote (what zipflm-trace does). -------
	parsed, err := traceview.ParseFile("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncritical-path analysis of trace.json (zipflm-trace trace.json):")
	traceview.WriteSummary(os.Stdout, parsed, traceview.Analyze(parsed), traceview.SummaryOptions{TopN: 3, MaxSteps: 4})

	// --- Serve on the same registry and scrape /metrics. ----------------
	srv := serve.New(tr.Model(0), serve.Config{
		Workers:      1,
		MaxBatch:     8,
		CacheEntries: 64,
		Telemetry:    reg,
		// SLOs evaluate straight off the registry's latency histogram and
		// completion counters — generous targets a healthy run must meet.
		SLOTargetP99:    2 * time.Second,
		SLOAvailability: 0.99,
	})
	defer srv.Close()
	req := serve.Request{Prompt: []int{3, 1, 4}, N: 8, Opts: sampling.DecodeOpts{Temperature: 0.8}, Seed: 5}
	for i := 0; i < 5; i++ { // one generation, four result-cache hits
		if _, err := srv.Submit(req); err != nil {
			log.Fatal(err)
		}
	}

	// telemetry.Handler is what zipflm-serve mounts at /metrics; an
	// httptest server stands in for the real listener.
	ts := httptest.NewServer(telemetry.Handler(reg))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscraped /metrics (%s), families spanning train, collective, ckpt and serve:\n",
		resp.Header.Get("Content-Type"))
	for _, line := range strings.Split(string(body), "\n") {
		for _, prefix := range []string{
			"zipflm_train_steps_total ",
			"zipflm_train_goodput_ratio ",
			"zipflm_collective_bytes_total{",
			"zipflm_serve_completed_total ",
			"zipflm_serve_result_cache_hits ",
			"zipflm_serve_latency_seconds_count ",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Println("  " + line)
			}
		}
	}
	snap := srv.Stats()
	fmt.Printf("\nserving snapshot (same instruments): completed=%d hit rate=%.0f%% p50=%v\n",
		snap.Completed, 100*snap.HitRate(), snap.LatencyP50)
	for _, st := range snap.SLO {
		fmt.Println(st.String())
	}
}

func writeTrace(tr *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
