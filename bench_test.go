package zipflm

// One benchmark per table and figure of the paper's evaluation (§V). Each
// bench regenerates the corresponding artifact end to end through the
// experiments harness — the same code `zipflm-bench -exp <id>` runs — so
// `go test -bench=.` doubles as a smoke-reproduction of the entire
// evaluation. Training-based artifacts run in Quick mode to keep bench
// iterations bounded; run `zipflm-bench` (without -quick) for the
// full-fidelity numbers recorded in EXPERIMENTS.md.

import (
	"testing"

	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/experiments"
	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
	"zipflm/internal/trainer"
)

// benchExperiment runs one experiment id per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.Options{Quick: true, Seed: 42}
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkFig1TypeToken regenerates Figure 1 (types vs tokens, U ∝ N^0.64).
func BenchmarkFig1TypeToken(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkTable1Datasets regenerates Table I (dataset catalog + stand-ins).
func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTable3WordLMScaling regenerates Table III (word-LM epoch hours,
// parallel efficiency, baseline OOM at 32 GPUs).
func BenchmarkTable3WordLMScaling(b *testing.B) { benchExperiment(b, "tab3") }

// BenchmarkTable4CharLMScaling regenerates Table IV (char-LM epoch hours).
func BenchmarkTable4CharLMScaling(b *testing.B) { benchExperiment(b, "tab4") }

// BenchmarkTable5TiebaWeakScaling regenerates Table V (6→192 GPU weak
// scaling: time model plus real scaled-down training).
func BenchmarkTable5TiebaWeakScaling(b *testing.B) { benchExperiment(b, "tab5") }

// BenchmarkWeakScaleOnline regenerates the online virtual-clock weak-scaling
// sweep (baseline vs unique predicted step time).
func BenchmarkWeakScaleOnline(b *testing.B) { benchExperiment(b, "weakscale") }

// BenchmarkFig5WordLMAccuracy regenerates Figure 5 (word-LM perplexity vs
// epoch across cluster sizes; real training).
func BenchmarkFig5WordLMAccuracy(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6SpeedupBreakdown regenerates Figure 6 (cumulative speedup of
// uniqueness/seeding/compression at 16 and 24 GPUs).
func BenchmarkFig6SpeedupBreakdown(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7SeedingAccuracy regenerates Figure 7 (seeding strategies vs
// accuracy; real training under every strategy).
func BenchmarkFig7SeedingAccuracy(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8CharLMAccuracy regenerates Figure 8 (char-LM perplexity vs
// epoch across cluster sizes; real training).
func BenchmarkFig8CharLMAccuracy(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkMemoryFootprint regenerates the §V-A/§III-A memory narrative
// (baseline linear growth + OOM vs flat ~1.2 GB; 35.2 GB → 0.137 GB example).
func BenchmarkMemoryFootprint(b *testing.B) { benchExperiment(b, "mem") }

// BenchmarkBPCComparison regenerates the §V-D bits-per-character comparison.
func BenchmarkBPCComparison(b *testing.B) { benchExperiment(b, "bpc") }

// BenchmarkAblationHierarchical regenerates the flat-vs-hierarchical
// inter-node traffic ablation.
func BenchmarkAblationHierarchical(b *testing.B) { benchExperiment(b, "abl-hier") }

// BenchmarkAblationFP16Scaling regenerates the compression-scaling sweep.
func BenchmarkAblationFP16Scaling(b *testing.B) { benchExperiment(b, "abl-fp16") }

// BenchmarkAblationSeeding regenerates the seeding-strategy U_g sweep.
func BenchmarkAblationSeeding(b *testing.B) { benchExperiment(b, "abl-seed") }

// BenchmarkAblationSampler regenerates the candidate-distribution ablation.
func BenchmarkAblationSampler(b *testing.B) { benchExperiment(b, "abl-sampler") }

// --- Micro-benchmarks of the core exchange engines themselves, so the
// --- asymptotic difference is visible in ns/op and B/op, not just in the
// --- modeled tables.

func benchExchange(b *testing.B, ex core.Exchanger, g, k, d, vocab int) {
	b.Helper()
	grads := make([]core.SparseGrad, g)
	root := rng.New(1)
	for r := 0; r < g; r++ {
		rr := root.Fork()
		z := rng.NewZipf(rr, vocab, 1.2)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = z.Next()
		}
		rows := tensor.NewMatrix(k, d)
		rows.RandomizeNormal(rr, 1)
		grads[r] = core.SparseGrad{Indices: idx, Rows: rows}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runExchangeOnce(b, ex, grads)
	}
}

func runExchangeOnce(b *testing.B, ex core.Exchanger, grads []core.SparseGrad) {
	b.Helper()
	g := len(grads)
	comm := newComm(g)
	done := make(chan error, g)
	for r := 0; r < g; r++ {
		go func(rank int) {
			ctx := &core.Ctx{Rank: rank, Comm: comm}
			_, _, err := ex.Exchange(ctx, grads[rank])
			done <- err
		}(r)
	}
	for r := 0; r < g; r++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchangeBaseline8x256 measures the Θ(G·K·D) baseline engine.
func BenchmarkExchangeBaseline8x256(b *testing.B) {
	benchExchange(b, core.BaselineAllGather{}, 8, 256, 64, 1000)
}

// BenchmarkExchangeUnique8x256 measures the Θ(G·K + U_g·D) unique engine on
// the same workload.
func BenchmarkExchangeUnique8x256(b *testing.B) {
	benchExchange(b, core.UniqueExchange{}, 8, 256, 64, 1000)
}

// newComm is a local alias so the benches read naturally.
func newComm(g int) *collective.Comm { return collective.New(g) }

// --- Step benchmarks over the full training loop, in the regime the
// --- paper's techniques target: communication and synchronization overhead
// --- comparable to compute (small per-rank batch, non-trivial dense
// --- parameter volume). BenchmarkStepSync8 vs BenchmarkStepOverlap8 is the
// --- synchronous-vs-overlapped comparison; both run on the pooled
// --- collective substrate.

// benchStep times full training steps at the given rank count.
func benchStep(b *testing.B, ranks int, overlap bool) {
	b.Helper()
	gen := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    999,
		ZipfExponent: 1.1,
		Seed:         42,
	})
	stream := gen.Stream(ranks*4000 + 1000)
	train, valid := corpus.Split(stream, 50, 100, 42)
	cfg := trainer.Config{
		Model: model.Config{
			Vocab: 1000, Dim: 64, Hidden: 256, RNN: model.KindLSTM, Sampled: 64,
		},
		Ranks:        ranks,
		BatchPerRank: 1,
		SeqLen:       4,
		LR:           0.1,
		Exchange:     core.UniqueExchange{},
		SeedStrategy: sampling.ZipfFreq,
		BaseSeed:     42,
		Overlap:      overlap,
	}
	tr, err := trainer.New(cfg, train, valid)
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Steps(2); err != nil { // warm pools and caches
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := tr.Steps(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStepSync8 is one synchronous training step at G=8: backprop,
// then per-tensor dense ring all-reduce, then the sparse exchange.
func BenchmarkStepSync8(b *testing.B) { benchStep(b, 8, false) }

// BenchmarkStepOverlap8 is the same step with the bucketed asynchronous
// dense reduction overlapping backprop and the sparse exchange.
func BenchmarkStepOverlap8(b *testing.B) { benchStep(b, 8, true) }

// BenchmarkStepSync2 / BenchmarkStepOverlap2 pin the small-cluster end.
func BenchmarkStepSync2(b *testing.B) { benchStep(b, 2, false) }

// BenchmarkStepOverlap2 is the overlapped counterpart of BenchmarkStepSync2.
func BenchmarkStepOverlap2(b *testing.B) { benchStep(b, 2, true) }

// BenchmarkOverlapExperiment regenerates the overlap ablation table like
// the other experiment benches.
func BenchmarkOverlapExperiment(b *testing.B) { benchExperiment(b, "overlap") }
