// Command zipflm-serve exposes a checkpoint as a batched-inference HTTP
// service (internal/serve): dynamic batching over per-worker replicas,
// bounded-queue admission control, Zipf-aware result/prefix caches, and
// zero-downtime weight reloads.
//
// Usage:
//
//	zipflm-train -input book.txt -save model.ckpt -save-vocab vocab.ckpt ...
//	zipflm-serve -model model.ckpt -vocab vocab.ckpt -addr :8080
//	curl -s localhost:8080/v1/generate -d '{"prompt":"the cat","n":24,"temperature":0.8,"seed":7}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//	curl -s -X POST localhost:8080/v1/reload -d '{"path":"model-v2.ckpt"}'
//
// /metrics serves the shared telemetry registry in Prometheus text format
// (?format=json for a JSON snapshot); -debug-addr exposes net/http/pprof
// on a separate listener for CPU/heap profiling under load.
//
// -model also accepts a full-state checkpoint file or a checkpoint
// *directory* written by zipflm-train -ckpt-dir; with -watch the server
// polls that directory and hot-reloads whenever training publishes a newer
// checkpoint — in-flight generations finish on the weights that admitted
// them, new requests get the new weights, nothing is dropped.
//
// On SIGINT/SIGTERM the server shuts down gracefully: admissions stop,
// queued and in-flight generations drain through the serve layer's
// ErrShutdown path (clean 503s, no severed connections), and the process
// exits 0.
//
// With -loadgen N the command skips HTTP entirely and drives the server
// in-process with the closed-loop Zipf load generator, printing the
// resulting throughput/latency/cache table — the quickest way to see the
// serving layer work.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers pprof handlers on DefaultServeMux (-debug-addr only)
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"zipflm/internal/ckpt"
	"zipflm/internal/corpus"
	"zipflm/internal/dash"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/serve"
	"zipflm/internal/telemetry"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model checkpoint, full-state checkpoint, or checkpoint directory (required)")
		vocabPath = flag.String("vocab", "", "vocabulary file (enables text prompts and word responses)")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", 1, "model replicas (one batcher each)")
		computeW  = flag.Int("compute-workers", 0, "goroutines per matmul (0: ZIPFLM_WORKERS or serial; results identical at any value)")
		maxBatch  = flag.Int("max-batch", 16, "max sequences per batched step")
		queue     = flag.Int("queue", 64, "admission queue depth (full queue sheds)")
		cache     = flag.Int("cache", 1024, "result cache entries (0 disables)")
		prefixes  = flag.Int("prefix-cache", 256, "prefix cache entries (0 disables)")
		window    = flag.Duration("batch-window", 0, "linger this long assembling a fresh batch")
		quantized = flag.Bool("quantized", false, "serve on int8 weights (deterministic; faster memory-bound decode)")
		draftPath = flag.String("draft", "", "draft model checkpoint enabling speculative decoding (same vocabulary)")
		draftK    = flag.Int("draft-k", 4, "speculative lookahead tokens per round (with -draft)")
		watch     = flag.Duration("watch", 0, "poll the -model checkpoint directory at this interval and hot-reload new checkpoints (0 disables)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof profiling endpoints on this address (empty disables)")
		dashboard = flag.Bool("dashboard", false, "render a live ANSI dashboard of the in-process registry on stdout (same renderer as zipflm-top)")
		histCap   = flag.Int("history", telemetry.DefaultHistorySamples, "in-process metrics-history ring capacity, sampled every -history-interval and served at /metrics/history (0 disables)")
		histEvery = flag.Duration("history-interval", telemetry.DefaultHistoryInterval, "metrics-history sampling interval")
		profDir   = flag.String("profile-dir", "", "continuously capture CPU+heap pprof profiles into this directory on -profile-interval, indexed by profiles.json (empty disables)")
		profEvery = flag.Duration("profile-interval", time.Minute, "continuous-profiling capture interval (with -profile-dir)")
		tracePath = flag.String("trace", "", "write per-request Chrome trace spans here on shutdown (view in Perfetto or zipflm-trace)")
		flightCap = flag.Int("flight", telemetry.DefaultFlightEvents, "flight-recorder ring capacity (0 disables; dumps on overload or SIGQUIT)")
		sloP99    = flag.Duration("slo-p99", 500*time.Millisecond, "p99 latency SLO target (0 disables the latency objective)")
		sloAvail  = flag.Float64("slo-availability", 0.99, "availability SLO target in (0,1) (0 disables)")
		loadN     = flag.Int("loadgen", 0, "run N closed-loop requests in-process instead of serving HTTP")
		clients   = flag.Int("clients", 8, "loadgen concurrency")
		tokens    = flag.Int("tokens", 24, "loadgen tokens per request")
		zipfS     = flag.Float64("zipf", 1.1, "loadgen prompt-popularity exponent")
		seed      = flag.Uint64("seed", 42, "loadgen seed")
	)
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "zipflm-serve: -model is required")
		os.Exit(1)
	}
	m, step, err := loadWeights(*modelPath)
	if err != nil {
		fatal(err)
	}

	var vocab *corpus.Vocabulary
	if *vocabPath != "" {
		vf, err := os.Open(*vocabPath)
		if err != nil {
			fatal(err)
		}
		vocab, err = corpus.LoadVocabulary(vf)
		vf.Close()
		if err != nil {
			fatal(err)
		}
		if vocab.Size() != m.Cfg.Vocab {
			fatal(fmt.Errorf("vocabulary size %d does not match model vocabulary %d", vocab.Size(), m.Cfg.Vocab))
		}
	}

	var draft *model.LM
	if *draftPath != "" {
		draft, _, err = loadWeights(*draftPath)
		if err != nil {
			fatal(fmt.Errorf("draft: %w", err))
		}
		if draft.Cfg.Vocab != m.Cfg.Vocab {
			fatal(fmt.Errorf("draft vocabulary %d does not match model vocabulary %d", draft.Cfg.Vocab, m.Cfg.Vocab))
		}
	}

	reg := telemetry.NewRegistry()
	build := telemetry.PublishBuildInfo(reg)
	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = telemetry.NewTracer(0)
		reg.ObserveTracer(tracer)
	}
	var flight *telemetry.Flight
	if *flightCap > 0 {
		flight = telemetry.NewFlight(*flightCap)
		defer flight.ArmSIGQUIT()()
	}
	srv := serve.New(m, serve.Config{
		Workers:         *workers,
		ComputeWorkers:  *computeW,
		MaxBatch:        *maxBatch,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		PrefixEntries:   *prefixes,
		BatchWindow:     *window,
		Quantized:       *quantized,
		Draft:           draft,
		DraftK:          *draftK,
		Telemetry:       reg,
		Tracer:          tracer,
		Flight:          flight,
		SLOTargetP99:    *sloP99,
		SLOAvailability: *sloAvail,
	})
	defer srv.Close()
	defer writeTrace(tracer, *tracePath)

	// The performance observatory: periodic registry sampling into a ring
	// (served at /metrics/history), scheduled pprof capture, and the live
	// in-process dashboard. All three only read instruments — generated
	// tokens are bit-identical with every one of them enabled.
	var history *telemetry.History
	if *histCap > 0 {
		history = telemetry.NewHistory(reg, telemetry.HistoryConfig{Capacity: *histCap, Interval: *histEvery})
		defer history.Start()()
	}
	if *profDir != "" {
		prof, err := telemetry.NewProfiler(telemetry.ProfilerConfig{Dir: *profDir, Interval: *profEvery, Heap: true})
		if err != nil {
			fatal(err)
		}
		prof.Start()
		defer prof.Stop()
		fmt.Fprintf(os.Stderr, "zipflm-serve: profiling to %s every %s\n", *profDir, *profEvery)
	}
	if *dashboard {
		stopDash := make(chan struct{})
		defer close(stopDash)
		go dash.Run(os.Stdout, "zipflm-serve "+*addr, time.Second, dash.DefaultWidth, true, reg.Snapshot, stopDash)
	}

	if *debugAddr != "" {
		// The pprof import registers only on DefaultServeMux, which the
		// main listener never serves — profiling stays on its own port.
		go func() {
			fmt.Fprintf(os.Stderr, "zipflm-serve: pprof on %s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "zipflm-serve: debug listener: %v\n", err)
			}
		}()
	}

	if *loadN > 0 {
		runLoadgen(srv, m, *loadN, *clients, *tokens, *zipfS, *seed)
		return
	}

	weights := &weightsInfo{source: *modelPath, step: step, at: time.Now()}

	if *watch > 0 {
		if fi, err := os.Stat(*modelPath); err != nil || !fi.IsDir() {
			fatal(fmt.Errorf("-watch needs -model to be a checkpoint directory"))
		}
		d, err := ckpt.NewDir(*modelPath, 0, 0)
		if err != nil {
			fatal(err)
		}
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go watchLoop(srv, weights, d, *watch, stopWatch)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(statsJSON(srv.Stats(), weights, build))
	})
	mux.Handle("/metrics", telemetry.Handler(reg))
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, _ *http.Request) {
		if history == nil {
			http.Error(w, "history disabled (-history 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		history.Sample(time.Now()) // fold the current instant in, so a scrape is never stale
		history.WriteJSON(w)
	})
	mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) {
		handleGenerate(w, r, srv, vocab)
	})
	mux.HandleFunc("/v1/reload", func(w http.ResponseWriter, r *http.Request) {
		handleReload(w, r, srv, weights)
	})

	mode := "fp32"
	if *quantized {
		mode = "int8"
	}
	if draft != nil {
		mode += fmt.Sprintf(", speculative k=%d", *draftK)
	}
	fmt.Fprintf(os.Stderr, "zipflm-serve: listening on %s (vocab %d, %d workers × batch %d, queue %d, %s)\n",
		*addr, m.Cfg.Vocab, *workers, *maxBatch, *queue, mode)

	// Graceful shutdown: stop admitting, drain in-flight generations
	// through the serve layer's ErrShutdown path (handlers answer their
	// callers with clean 503s), then let the HTTP server finish writing
	// those responses and exit 0.
	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "zipflm-serve: %v: draining in-flight requests\n", sig)
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "zipflm-serve: drained, clean shutdown")
}

// loadWeights loads serving weights from a bare model checkpoint, a
// full-state checkpoint, or a checkpoint directory (newest checkpoint).
// The returned step is -1 when the source carries no training step.
func loadWeights(path string) (*model.LM, int, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		d, err := ckpt.NewDir(path, 0, 0)
		if err != nil {
			return nil, 0, err
		}
		st, err := d.Latest()
		if err != nil {
			return nil, 0, err
		}
		m, err := st.LM()
		return m, st.Step, err
	}
	if st, err := ckpt.Open(path); err == nil {
		m, err := st.LM()
		return m, st.Step, err
	} else if !errors.Is(err, ckpt.ErrNotCheckpoint) {
		return nil, 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	m, err := model.Load(f)
	return m, -1, err
}

// weightsInfo tracks the provenance of the currently-served weights for
// /v1/stats (the weights version itself comes from the serve layer's
// Snapshot).
type weightsInfo struct {
	mu     sync.Mutex
	source string
	step   int // training step of the checkpoint, -1 if unknown
	at     time.Time
}

func (wi *weightsInfo) set(source string, step int) {
	wi.mu.Lock()
	defer wi.mu.Unlock()
	wi.source, wi.step, wi.at = source, step, time.Now()
}

func (wi *weightsInfo) get() (string, int, time.Time) {
	wi.mu.Lock()
	defer wi.mu.Unlock()
	return wi.source, wi.step, wi.at
}

// watchLoop polls a checkpoint directory and hot-reloads whenever a newer
// step appears — the serving side of continuous training.
func watchLoop(srv *serve.Server, weights *weightsInfo, d *ckpt.Dir, every time.Duration, stop <-chan struct{}) {
	_, lastStep, _ := weights.get()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		st, err := d.Latest()
		if err != nil || st.Step <= lastStep {
			continue
		}
		m, err := st.LM()
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-serve: watch: checkpoint step %d unreadable: %v\n", st.Step, err)
			continue
		}
		v, err := srv.Reload(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-serve: watch: reload rejected: %v\n", err)
			continue
		}
		lastStep = st.Step
		weights.set(d.Path(), st.Step)
		fmt.Fprintf(os.Stderr, "zipflm-serve: hot-reloaded checkpoint step %d (weights v%d)\n", st.Step, v)
	}
}

// genRequest is the /v1/generate request body.
type genRequest struct {
	Prompt      string  `json:"prompt,omitempty"`
	PromptIDs   []int   `json:"prompt_ids,omitempty"`
	N           int     `json:"n"`
	Temperature float64 `json:"temperature"`
	TopK        int     `json:"top_k,omitempty"`
	TopP        float64 `json:"top_p,omitempty"`
	Seed        uint64  `json:"seed"`
	TimeoutMS   int     `json:"timeout_ms,omitempty"`
}

// genResponse is the /v1/generate response body.
type genResponse struct {
	Tokens         []int  `json:"tokens"`
	Text           string `json:"text,omitempty"`
	CacheHit       bool   `json:"cache_hit"`
	PrefixHit      bool   `json:"prefix_hit"`
	LatencyMS      int64  `json:"latency_ms"`
	WeightsVersion uint64 `json:"weights_version"`
}

func handleGenerate(w http.ResponseWriter, r *http.Request, srv *serve.Server, vocab *corpus.Vocabulary) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var in genRequest
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	prompt := in.PromptIDs
	if in.Prompt != "" {
		if vocab == nil {
			http.Error(w, "text prompt needs the server started with -vocab; use prompt_ids", http.StatusBadRequest)
			return
		}
		prompt = vocab.Encode(corpus.Tokenize(in.Prompt))
	}
	if in.N == 0 {
		in.N = 24
	}
	req := serve.Request{
		Prompt: prompt,
		N:      in.N,
		Opts:   sampling.DecodeOpts{Temperature: in.Temperature, TopK: in.TopK, TopP: in.TopP},
		Seed:   in.Seed,
	}
	if in.TimeoutMS > 0 {
		req.Deadline = time.Now().Add(time.Duration(in.TimeoutMS) * time.Millisecond)
	}

	res, err := srv.Submit(req)
	switch {
	case err == nil:
	case err == serve.ErrOverloaded:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err == serve.ErrDeadlineExceeded:
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case err == serve.ErrShutdown:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	out := genResponse{
		Tokens:         res.Tokens,
		CacheHit:       res.CacheHit,
		PrefixHit:      res.PrefixHit,
		LatencyMS:      res.Latency.Milliseconds(),
		WeightsVersion: res.WeightsVersion,
	}
	if vocab != nil {
		words := make([]string, len(res.Tokens))
		for i, id := range res.Tokens {
			words[i] = vocab.Word(id)
		}
		out.Text = strings.Join(words, " ")
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// reloadRequest is the /v1/reload request body; an empty path re-reads the
// currently-served source (e.g. a republished file or directory). draft_path,
// on a speculative server, swaps the draft weights in the same reload so the
// target/draft pair installs atomically.
type reloadRequest struct {
	Path      string `json:"path,omitempty"`
	DraftPath string `json:"draft_path,omitempty"`
}

func handleReload(w http.ResponseWriter, r *http.Request, srv *serve.Server, weights *weightsInfo) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var in reloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	source, _, _ := weights.get()
	if in.Path != "" {
		source = in.Path
	}
	m, step, err := loadWeights(source)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var draft *model.LM
	if in.DraftPath != "" {
		if draft, _, err = loadWeights(in.DraftPath); err != nil {
			http.Error(w, "draft: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	v, err := srv.ReloadWithDraft(m, draft)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	weights.set(source, step)
	fmt.Fprintf(os.Stderr, "zipflm-serve: reloaded %s (weights v%d)\n", source, v)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"weights_version": v,
		"source":          source,
		"checkpoint_step": step,
	})
}

// statsJSON flattens a Snapshot plus checkpoint and build metadata for
// /v1/stats.
func statsJSON(s serve.Snapshot, weights *weightsInfo, build telemetry.BuildInfo) map[string]any {
	source, step, at := weights.get()
	return map[string]any{
		"build":             build,
		"uptime_s":          s.Uptime.Seconds(),
		"accepted":          s.Accepted,
		"completed":         s.Completed,
		"shed":              s.Shed,
		"expired":           s.Expired,
		"expired_in_flight": s.ExpiredInFlight,
		"discarded_tokens":  s.DiscardedTokens,
		"tokens":            s.Tokens,
		"latency_p50_ms":    float64(s.LatencyP50) / float64(time.Millisecond),
		"latency_p99_ms":    float64(s.LatencyP99) / float64(time.Millisecond),
		"latency_mean_ms":   float64(s.LatencyMean) / float64(time.Millisecond),
		"mean_batch":        s.MeanBatch,
		"batch_dist":        s.BatchDist,
		"result_hits":       s.ResultHits,
		"result_misses":     s.ResultMisses,
		"result_entries":    s.ResultEntries,
		"prefix_hits":       s.PrefixHits,
		"prefix_misses":     s.PrefixMisses,
		"prefix_entries":    s.PrefixEntries,
		"hit_rate":          s.HitRate(),
		"weights_version":   s.WeightsVersion,
		"reloads":           s.Reloads,
		"quantized":         s.Quantized,
		"draft_k":           s.DraftK,
		"spec_rounds":       s.SpecRounds,
		"draft_proposed":    s.DraftProposed,
		"draft_accepted":    s.DraftAccepted,
		"draft_steps":       s.DraftSteps,
		"acceptance_rate":   s.SpecAcceptanceRate(),
		"slo":               s.SLO,
		"checkpoint": map[string]any{
			"source":    source,
			"step":      step,
			"loaded_at": at.UTC().Format(time.RFC3339),
		},
	}
}

// runLoadgen drives the server in-process and prints the serving table.
func runLoadgen(srv *serve.Server, m *model.LM, requests, clients, tokens int, zipfS float64, seed uint64) {
	rep := serve.RunLoad(srv, serve.LoadConfig{
		Clients:  clients,
		Requests: requests,
		Vocab:    m.Cfg.Vocab,
		Tokens:   tokens,
		ZipfS:    zipfS,
		Opts:     sampling.DecodeOpts{Temperature: 0.8},
		Seed:     seed,
	})
	snap := srv.Stats()
	tab := metrics.NewTable(fmt.Sprintf("Closed-loop load: %d requests, %d clients:", requests, clients),
		"completed", "shed", "throughput", "rate", "p50", "p99", "mean batch", "hit rate")
	tab.SetUnits("", "", "tok/s", "req/s", "ms", "ms", "seq/step", "%")
	tab.AddRow(
		fmt.Sprintf("%d", rep.Completed),
		fmt.Sprintf("%d", rep.Shed+rep.Expired),
		fmt.Sprintf("%.0f", rep.TokensPerSecond()),
		fmt.Sprintf("%.1f", rep.RequestsPerSecond()),
		fmt.Sprintf("%.2f", float64(snap.LatencyP50)/float64(time.Millisecond)),
		fmt.Sprintf("%.2f", float64(snap.LatencyP99)/float64(time.Millisecond)),
		fmt.Sprintf("%.2f", snap.MeanBatch),
		fmt.Sprintf("%.0f", 100*snap.HitRate()),
	)
	fmt.Print(tab)
}

// writeTrace dumps the per-request spans collected over the server's
// lifetime (runs on shutdown, after the serve layer drained).
func writeTrace(tracer *telemetry.Tracer, path string) {
	if tracer == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zipflm-serve: trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := tracer.WriteChromeTrace(f); err != nil {
		fmt.Fprintf(os.Stderr, "zipflm-serve: trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "zipflm-serve: wrote %d trace events to %s\n", tracer.Len(), path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zipflm-serve: %v\n", err)
	os.Exit(1)
}
