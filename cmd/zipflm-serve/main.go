// Command zipflm-serve exposes a checkpoint as a batched-inference HTTP
// service (internal/serve): dynamic batching over per-worker replicas,
// bounded-queue admission control, and Zipf-aware result/prefix caches.
//
// Usage:
//
//	zipflm-train -input book.txt -save model.ckpt -save-vocab vocab.ckpt ...
//	zipflm-serve -model model.ckpt -vocab vocab.ckpt -addr :8080
//	curl -s localhost:8080/v1/generate -d '{"prompt":"the cat","n":24,"temperature":0.8,"seed":7}'
//	curl -s localhost:8080/v1/stats
//
// With -loadgen N the command skips HTTP entirely and drives the server
// in-process with the closed-loop Zipf load generator, printing the
// resulting throughput/latency/cache table — the quickest way to see the
// serving layer work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model checkpoint (required)")
		vocabPath = flag.String("vocab", "", "vocabulary file (enables text prompts and word responses)")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", 1, "model replicas (one batcher each)")
		maxBatch  = flag.Int("max-batch", 16, "max sequences per batched step")
		queue     = flag.Int("queue", 64, "admission queue depth (full queue sheds)")
		cache     = flag.Int("cache", 1024, "result cache entries (0 disables)")
		prefixes  = flag.Int("prefix-cache", 256, "prefix cache entries (0 disables)")
		window    = flag.Duration("batch-window", 0, "linger this long assembling a fresh batch")
		loadN     = flag.Int("loadgen", 0, "run N closed-loop requests in-process instead of serving HTTP")
		clients   = flag.Int("clients", 8, "loadgen concurrency")
		tokens    = flag.Int("tokens", 24, "loadgen tokens per request")
		zipfS     = flag.Float64("zipf", 1.1, "loadgen prompt-popularity exponent")
		seed      = flag.Uint64("seed", 42, "loadgen seed")
	)
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "zipflm-serve: -model is required")
		os.Exit(1)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	m, err := model.Load(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	var vocab *corpus.Vocabulary
	if *vocabPath != "" {
		vf, err := os.Open(*vocabPath)
		if err != nil {
			fatal(err)
		}
		vocab, err = corpus.LoadVocabulary(vf)
		vf.Close()
		if err != nil {
			fatal(err)
		}
		if vocab.Size() != m.Cfg.Vocab {
			fatal(fmt.Errorf("vocabulary size %d does not match model vocabulary %d", vocab.Size(), m.Cfg.Vocab))
		}
	}

	srv := serve.New(m, serve.Config{
		Workers:       *workers,
		MaxBatch:      *maxBatch,
		QueueDepth:    *queue,
		CacheEntries:  *cache,
		PrefixEntries: *prefixes,
		BatchWindow:   *window,
	})
	defer srv.Close()

	if *loadN > 0 {
		runLoadgen(srv, m, *loadN, *clients, *tokens, *zipfS, *seed)
		return
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(statsJSON(srv.Stats()))
	})
	mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) {
		handleGenerate(w, r, srv, m, vocab)
	})

	fmt.Fprintf(os.Stderr, "zipflm-serve: listening on %s (vocab %d, %d workers × batch %d, queue %d)\n",
		*addr, m.Cfg.Vocab, *workers, *maxBatch, *queue)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

// genRequest is the /v1/generate request body.
type genRequest struct {
	Prompt      string  `json:"prompt,omitempty"`
	PromptIDs   []int   `json:"prompt_ids,omitempty"`
	N           int     `json:"n"`
	Temperature float64 `json:"temperature"`
	TopK        int     `json:"top_k,omitempty"`
	TopP        float64 `json:"top_p,omitempty"`
	Seed        uint64  `json:"seed"`
	TimeoutMS   int     `json:"timeout_ms,omitempty"`
}

// genResponse is the /v1/generate response body.
type genResponse struct {
	Tokens    []int  `json:"tokens"`
	Text      string `json:"text,omitempty"`
	CacheHit  bool   `json:"cache_hit"`
	PrefixHit bool   `json:"prefix_hit"`
	LatencyMS int64  `json:"latency_ms"`
}

func handleGenerate(w http.ResponseWriter, r *http.Request, srv *serve.Server, m *model.LM, vocab *corpus.Vocabulary) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var in genRequest
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	prompt := in.PromptIDs
	if in.Prompt != "" {
		if vocab == nil {
			http.Error(w, "text prompt needs the server started with -vocab; use prompt_ids", http.StatusBadRequest)
			return
		}
		prompt = vocab.Encode(corpus.Tokenize(in.Prompt))
	}
	if in.N == 0 {
		in.N = 24
	}
	req := serve.Request{
		Prompt: prompt,
		N:      in.N,
		Opts:   sampling.DecodeOpts{Temperature: in.Temperature, TopK: in.TopK, TopP: in.TopP},
		Seed:   in.Seed,
	}
	if in.TimeoutMS > 0 {
		req.Deadline = time.Now().Add(time.Duration(in.TimeoutMS) * time.Millisecond)
	}

	res, err := srv.Submit(req)
	switch {
	case err == nil:
	case err == serve.ErrOverloaded:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err == serve.ErrDeadlineExceeded:
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case err == serve.ErrShutdown:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	out := genResponse{
		Tokens:    res.Tokens,
		CacheHit:  res.CacheHit,
		PrefixHit: res.PrefixHit,
		LatencyMS: res.Latency.Milliseconds(),
	}
	if vocab != nil {
		words := make([]string, len(res.Tokens))
		for i, id := range res.Tokens {
			words[i] = vocab.Word(id)
		}
		out.Text = strings.Join(words, " ")
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// statsJSON flattens a Snapshot for the /v1/stats endpoint.
func statsJSON(s serve.Snapshot) map[string]any {
	return map[string]any{
		"uptime_s":        s.Uptime.Seconds(),
		"accepted":        s.Accepted,
		"completed":       s.Completed,
		"shed":            s.Shed,
		"expired":         s.Expired,
		"tokens":          s.Tokens,
		"latency_p50_ms":  float64(s.LatencyP50) / float64(time.Millisecond),
		"latency_p99_ms":  float64(s.LatencyP99) / float64(time.Millisecond),
		"latency_mean_ms": float64(s.LatencyMean) / float64(time.Millisecond),
		"mean_batch":      s.MeanBatch,
		"batch_dist":      s.BatchDist,
		"result_hits":     s.ResultHits,
		"result_misses":   s.ResultMisses,
		"result_entries":  s.ResultEntries,
		"prefix_hits":     s.PrefixHits,
		"prefix_misses":   s.PrefixMisses,
		"prefix_entries":  s.PrefixEntries,
		"hit_rate":        s.HitRate(),
	}
}

// runLoadgen drives the server in-process and prints the serving table.
func runLoadgen(srv *serve.Server, m *model.LM, requests, clients, tokens int, zipfS float64, seed uint64) {
	rep := serve.RunLoad(srv, serve.LoadConfig{
		Clients:  clients,
		Requests: requests,
		Vocab:    m.Cfg.Vocab,
		Tokens:   tokens,
		ZipfS:    zipfS,
		Opts:     sampling.DecodeOpts{Temperature: 0.8},
		Seed:     seed,
	})
	snap := srv.Stats()
	tab := metrics.NewTable(fmt.Sprintf("Closed-loop load: %d requests, %d clients:", requests, clients),
		"completed", "shed", "tok/s", "req/s", "p50 ms", "p99 ms", "mean batch", "hit rate")
	tab.AddRow(
		fmt.Sprintf("%d", rep.Completed),
		fmt.Sprintf("%d", rep.Shed+rep.Expired),
		fmt.Sprintf("%.0f", rep.TokensPerSecond()),
		fmt.Sprintf("%.1f", rep.RequestsPerSecond()),
		fmt.Sprintf("%.2f", float64(snap.LatencyP50)/float64(time.Millisecond)),
		fmt.Sprintf("%.2f", float64(snap.LatencyP99)/float64(time.Millisecond)),
		fmt.Sprintf("%.2f", snap.MeanBatch),
		fmt.Sprintf("%.0f%%", 100*snap.HitRate()),
	)
	fmt.Print(tab)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zipflm-serve: %v\n", err)
	os.Exit(1)
}
