// Command zipflm-train trains a word- or character-level language model on
// a text file (or a synthetic corpus) across a simulated GPU cluster, with
// the paper's exchange strategies selectable from the command line.
//
// Usage:
//
//	zipflm-train -input corpus.txt -level word -ranks 8 -epochs 2
//	zipflm-train -synthetic 200000 -level char -ranks 4 -exchange baseline
//	zipflm-train -synthetic 100000 -sampled 64 -seeding zipf -fp16
//
// Observability: -metrics-addr serves the run's telemetry registry at
// /metrics (Prometheus text format) while training; -trace FILE writes a
// Chrome trace_event JSON timeline (load it in chrome://tracing or
// Perfetto) whose spans carry both wall time and the simulated cluster's
// virtual clock; -flight N keeps a bounded in-memory ring of the last N
// anomaly log records, dumped to stderr on fault rollback or SIGQUIT.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"zipflm/internal/collective"
	"zipflm/internal/compress"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/dash"
	"zipflm/internal/half"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/optim"
	"zipflm/internal/sampling"
	"zipflm/internal/telemetry"
	"zipflm/internal/trainer"
)

func main() {
	var (
		input     = flag.String("input", "", "path to a UTF-8 text file (omit to use -synthetic)")
		synthetic = flag.Int("synthetic", 0, "generate this many synthetic Zipfian tokens instead of reading a file")
		level     = flag.String("level", "word", "tokenization level: word or char")
		vocabSize = flag.Int("vocab", 2000, "vocabulary cap (most frequent tokens)")
		ranks     = flag.Int("ranks", 4, "simulated GPU count")
		batch     = flag.Int("batch", 4, "sequences per rank per step")
		seqLen    = flag.Int("seq", 20, "tokens per sequence")
		dim       = flag.Int("dim", 32, "embedding dimension D")
		hidden    = flag.Int("hidden", 48, "RNN cells")
		rnn       = flag.String("rnn", "lstm", "recurrent core: lstm or rhn")
		rhnDepth  = flag.Int("rhn-depth", 3, "RHN micro-layer depth")
		sampled   = flag.Int("sampled", 0, "sampled-softmax negatives per step (0 = full softmax)")
		exchange  = flag.String("exchange", "unique", "embedding exchange: unique or baseline")
		seeding   = flag.String("seeding", "zipf", "sampled-softmax seeds: g, same, log2, loge, log10, zipf")
		fp16      = flag.Bool("fp16", false, "FP16 wire compression with compression-scaling")
		scale     = flag.Float64("scale", 512, "compression-scaling factor F")
		compFlag  = flag.String("compress", "none", "dense-gradient compression: none, topk (error-feedback sparsification) or q8 (8-bit stochastic quant)")
		compRatio = flag.Float64("compress-ratio", 0.01, "top-k fraction of entries sent per tensor per step")
		compMom   = flag.Float64("compress-momentum", 0.9, "DGC momentum correction for top-k (0 disables)")
		compZipf  = flag.Bool("compress-zipf", false, "tune the embedding-class top-k ratio from the corpus's type-token law")
		lr        = flag.Float64("lr", 0.2, "base learning rate (scaled by ln(nodes) per the paper)")
		lrDecay   = flag.Float64("lr-decay", 0.9, "per-epoch learning-rate decay (paper: 0.85-0.95; 1 disables)")
		epochs    = flag.Int("epochs", 2, "training epochs")
		adam      = flag.Bool("adam", false, "use Adam instead of SGD for dense parameters")
		stateful  = flag.Bool("stateful", false, "carry RNN state across batches (truncated BPTT)")
		dropout   = flag.Float64("dropout", 0, "training dropout probability on RNN outputs")
		savePath  = flag.String("save", "", "write the trained model checkpoint to this file")
		saveVocab = flag.String("save-vocab", "", "write the vocabulary to this file (for zipflm-generate -prompt)")
		ckptDir   = flag.String("ckpt-dir", "", "write full-state checkpoints (weights, optimizer moments, step, RNG streams) into this directory")
		ckptEvery = flag.Int("ckpt-every", 0, "checkpoint every N global steps into -ckpt-dir (0 disables)")
		ckptKeep  = flag.Int("ckpt-keep", 3, "retention: keep the most recent N checkpoints")
		resume    = flag.String("resume", "", "resume full training state from the newest checkpoint in this directory (corpus flags and -seed must match the checkpointing run)")
		seed      = flag.Uint64("seed", 42, "reproducibility seed")
		workers   = flag.Int("workers", 0, "goroutines per matmul (0: ZIPFLM_WORKERS or serial; losses and weights identical at any value)")
		metricsAt = flag.String("metrics-addr", "", "serve Prometheus /metrics on this address during training (empty disables)")
		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file on exit (empty disables)")
		flightCap = flag.Int("flight", telemetry.DefaultFlightEvents, "flight-recorder ring capacity; dumped on fault rollback or SIGQUIT (0 disables)")
		dashboard = flag.Bool("dashboard", false, "render a live ANSI dashboard of training telemetry on stderr (stdout keeps the tables)")
		histPath  = flag.String("history", "", "sample the telemetry registry every -history-interval into a ring and write the series as JSON to this file on exit")
		histEvery = flag.Duration("history-interval", telemetry.DefaultHistoryInterval, "metrics-history sampling interval (with -history)")
		profDir   = flag.String("profile-dir", "", "continuously capture CPU+heap pprof profiles into this directory on -profile-interval, indexed by profiles.json")
		profEvery = flag.Duration("profile-interval", 30*time.Second, "continuous-profiling capture interval (with -profile-dir)")
	)
	flag.Parse()

	stream, vocab, vv, err := loadStream(*input, *synthetic, *level, *vocabSize, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
		os.Exit(1)
	}
	train, valid := corpus.Split(stream, 10, 100, *seed)
	fmt.Printf("tokens: %d train / %d valid, vocabulary %d\n", len(train), len(valid), vocab)

	kind := model.KindLSTM
	if *rnn == "rhn" {
		kind = model.KindRHN
	}
	strat, err := parseSeeding(*seeding)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
		os.Exit(1)
	}
	var ex core.Exchanger = core.UniqueExchange{}
	if *exchange == "baseline" {
		ex = core.BaselineAllGather{}
	}
	var wire collective.Wire
	if *fp16 {
		wire = half.NewScaler(float32(*scale))
	}
	sched := optim.Schedule{Base: *lr, GPUsPerNode: 8, Decay: 0.9}

	cfg := trainer.Config{
		Model: model.Config{
			Vocab: vocab, Dim: *dim, Hidden: *hidden,
			RNN: kind, RHNDepth: *rhnDepth, Sampled: *sampled,
			Stateful: *stateful, Dropout: *dropout,
		},
		Ranks:        *ranks,
		BatchPerRank: *batch,
		SeqLen:       *seqLen,
		LR:           sched.LR(*ranks, 0),
		LRDecay:      *lrDecay,
		Exchange:     ex,
		Wire:         wire,
		SeedStrategy: strat,
		BaseSeed:     *seed,
		Workers:      *workers,
	}
	if *adam {
		cfg.NewOptimizer = func() optim.Optimizer { return optim.NewAdam(1e-5) }
	}
	switch *compFlag {
	case "none":
	case "topk", "q8":
		cc := &compress.Config{Ratio: *compRatio, Momentum: *compMom}
		if *compFlag == "topk" {
			cc.Method = compress.MethodTopK
		} else {
			cc.Method = compress.MethodQuant8
			cc.Stochastic = true
		}
		if *compZipf {
			if cc.Method != compress.MethodTopK {
				// The Zipf-derived ratio only steers top-k selection;
				// quantization has no per-tensor ratio to tune, so
				// pretending the flag applied would be misleading.
				fmt.Fprintln(os.Stderr, "zipflm-train: -compress-zipf only applies to -compress topk")
				os.Exit(1)
			}
			globalBatch := *ranks * *batch * *seqLen
			if err := cc.ZipfTune(train, vocab, globalBatch); err != nil {
				fmt.Fprintf(os.Stderr, "zipflm-train: -compress-zipf: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("compression: zipf-tuned embedding ratio %.3f (rank-frequency α = %.2f)\n",
				cc.EmbedRatio, cc.RankAlpha)
		}
		cfg.Compress = cc
	default:
		fmt.Fprintf(os.Stderr, "zipflm-train: unknown -compress %q (none, topk, q8)\n", *compFlag)
		os.Exit(1)
	}
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEvery
	cfg.CheckpointKeepLast = *ckptKeep
	if *ckptEvery > 0 && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "zipflm-train: -ckpt-every needs -ckpt-dir")
		os.Exit(1)
	}

	var tracer *telemetry.Tracer
	if *metricsAt != "" || *tracePath != "" || *dashboard || *histPath != "" {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.Telemetry != nil {
		telemetry.PublishBuildInfo(cfg.Telemetry)
	}
	if *tracePath != "" {
		tracer = telemetry.NewTracer(0)
		cfg.Trace = tracer
		if cfg.Telemetry != nil {
			cfg.Telemetry.ObserveTracer(tracer)
		}
	}
	if *flightCap > 0 {
		cfg.Flight = telemetry.NewFlight(*flightCap)
		defer cfg.Flight.ArmSIGQUIT()()
	}
	if *metricsAt != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "zipflm-train: metrics on http://%s/metrics\n", *metricsAt)
			if err := http.ListenAndServe(*metricsAt, telemetry.Handler(cfg.Telemetry)); err != nil {
				fmt.Fprintf(os.Stderr, "zipflm-train: metrics listener: %v\n", err)
			}
		}()
	}

	// The performance observatory: metrics history on both clocks (the
	// virtual axis reads the simulated cluster's clock gauge), scheduled
	// pprof capture, and the live dashboard on stderr. Purely
	// observational — losses and weights are bit-identical with all of
	// them enabled.
	var history *telemetry.History
	if *histPath != "" {
		simClock := cfg.Telemetry.Gauge("zipflm_train_sim_seconds")
		history = telemetry.NewHistory(cfg.Telemetry, telemetry.HistoryConfig{
			Interval: *histEvery,
			VClock:   simClock.Value,
		})
		stopHistory := history.Start()
		defer func() {
			stopHistory()
			f, err := os.Create(*histPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "zipflm-train: history: %v\n", err)
				return
			}
			defer f.Close()
			if err := history.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "zipflm-train: history: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "zipflm-train: wrote %d history samples to %s\n", history.Len(), *histPath)
		}()
	}
	if *profDir != "" {
		prof, err := telemetry.NewProfiler(telemetry.ProfilerConfig{Dir: *profDir, Interval: *profEvery, Heap: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		prof.Start()
		defer prof.Stop()
		fmt.Fprintf(os.Stderr, "zipflm-train: profiling to %s every %s\n", *profDir, *profEvery)
	}
	if *dashboard {
		stopDash := make(chan struct{})
		defer close(stopDash)
		go dash.Run(os.Stderr, "zipflm-train", time.Second, dash.DefaultWidth, true, cfg.Telemetry.Snapshot, stopDash)
	}

	var tr *trainer.Trainer
	if *resume != "" {
		tr, err = trainer.Resume(cfg, *resume, train, valid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("resumed from step %d (%s)\n", tr.Step(), *resume)
	} else {
		tr, err = trainer.New(cfg, train, valid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("training: %d ranks × (%d seq × %d tokens), exchange=%s, lr=%.3f, %d steps/epoch\n",
		*ranks, *batch, *seqLen, ex.Name(), cfg.LR, tr.StepsPerEpoch())

	res, err := tr.Run(*epochs, 4)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events)\n", *tracePath, tracer.Len())
	}
	tab := metrics.NewTable("validation:", "epoch", "loss (nats)", "perplexity", "BPC")
	for _, ev := range res.Evals {
		tab.AddRow(fmt.Sprintf("%.2f", ev.Epoch),
			fmt.Sprintf("%.4f", ev.Loss),
			fmt.Sprintf("%.2f", ev.Perplexity),
			fmt.Sprintf("%.3f", metrics.BPC(ev.Loss)))
	}
	fmt.Print(tab)
	fmt.Printf("exchange traffic per rank: %s; avg unique words per step: input %.0f",
		metrics.HumanBytes(res.Stats.WireBytesPerRank), res.Stats.AvgInputUnique())
	if *sampled > 0 {
		fmt.Printf(", output %.0f", res.Stats.AvgOutputUnique())
	}
	fmt.Println()
	if err := tr.ReplicasInSync(); err != nil {
		fmt.Fprintf(os.Stderr, "zipflm-train: replica divergence: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("replicas in sync: ok")
	if *ckptEvery > 0 {
		fmt.Printf("full-state checkpoints: %d written to %s (resume with -resume %s)\n",
			tr.FaultStats().Checkpoints, *ckptDir, *ckptDir)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		if err := tr.Model(0).Save(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}
	if *saveVocab != "" {
		f, err := os.Create(*saveVocab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		if err := vv.Save(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("vocabulary written to %s\n", *saveVocab)
	}
}

// loadStream builds the token stream either from a file or synthetically,
// returning the ids, vocabulary size, and the vocabulary itself.
func loadStream(path string, synthetic int, level string, vocabCap int, seed uint64) ([]int, int, *corpus.Vocabulary, error) {
	if path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, nil, err
		}
		var toks []string
		if level == "char" {
			toks = corpus.CharTokens(string(raw))
		} else {
			toks = corpus.Tokenize(string(raw))
		}
		if len(toks) < 1000 {
			return nil, 0, nil, fmt.Errorf("input has only %d tokens; need at least 1000", len(toks))
		}
		v := corpus.BuildVocabulary(toks, vocabCap)
		ids := v.Encode(toks)
		fmt.Printf("coverage of %d-token vocabulary: %.1f%%\n", v.Size(), 100*v.CoverageOf(ids))
		return ids, v.Size(), v, nil
	}
	if synthetic <= 0 {
		return nil, 0, nil, fmt.Errorf("provide -input FILE or -synthetic N")
	}
	exp := 1.2
	vocab := vocabCap
	if level == "char" {
		exp = 1.0
		if vocab > 99 {
			vocab = 99
		}
	}
	gen := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    vocab - 1,
		ZipfExponent: exp,
		Seed:         seed,
	})
	return gen.Stream(synthetic), vocab, corpus.SyntheticVocabulary(vocab - 1), nil
}

func parseSeeding(s string) (sampling.Strategy, error) {
	switch s {
	case "g":
		return sampling.AllDifferent, nil
	case "same":
		return sampling.AllSame, nil
	case "log2":
		return sampling.Log2G, nil
	case "loge":
		return sampling.LogEG, nil
	case "log10":
		return sampling.Log10G, nil
	case "zipf":
		return sampling.ZipfFreq, nil
	}
	return 0, fmt.Errorf("unknown seeding strategy %q", s)
}
