package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var small = filepath.Join("..", "..", "internal", "traceview", "testdata", "small.json")
var golden = filepath.Join("..", "..", "internal", "traceview", "testdata", "small.golden")

func TestSummaryMatchesGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{small}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("CLI output drifted from traceview golden:\n%s", out.String())
	}
}

func TestDiffSameTraceExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-diff", small, small}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Fatalf("diff of a trace against itself:\n%s", out.String())
	}
}

func TestUsageAndParseErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("no-args exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("no usage on stderr: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"does-not-exist.json"}, &out, &errb); code != 1 {
		t.Fatalf("missing-file exit %d, want 1", code)
	}
	errb.Reset()
	if code := run([]string{"-diff", small}, &out, &errb); code != 1 {
		t.Fatalf("-diff with one arg exit %d, want 1", code)
	}
}
