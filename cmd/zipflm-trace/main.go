// Command zipflm-trace analyzes Chrome-format traces written by zipflm's
// telemetry tracer (zipflm-train -trace, zipflm-serve -trace,
// zipflm-bench -trace) on the virtual clock: per-step critical path
// (compute vs wire vs sync-wait), straggler attribution, per-rank
// utilization, and collective-op totals.
//
// Usage:
//
//	zipflm-trace [-top N] [-steps N] trace.json
//	zipflm-trace -diff baseline.json candidate.json
//
// Because the virtual clock is deterministic for a fixed seed, -diff of
// two same-seed runs prints an exactly-zero delta; any nonzero delta is a
// real behavioral change. Exit status: 0 on success, 1 on usage or parse
// errors, 2 when -diff detects a critical-path regression.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"zipflm/internal/traceview"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zipflm-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	diff := fs.Bool("diff", false, "compare two traces (baseline candidate); exit 2 on regression")
	topN := fs.Int("top", 10, "show the top N spans by virtual duration (0 disables)")
	steps := fs.Int("steps", 12, "bound the per-step table (negative: all steps)")
	fs.Usage = func() {
		fmt.Fprintf(stderr,
			"usage: zipflm-trace [-top N] [-steps N] trace.json\n"+
				"       zipflm-trace -diff baseline.json candidate.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *diff {
		if fs.NArg() != 2 {
			fs.Usage()
			return 1
		}
		a, err := traceview.AnalyzeFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "zipflm-trace:", err)
			return 1
		}
		b, err := traceview.AnalyzeFile(fs.Arg(1))
		if err != nil {
			fmt.Fprintln(stderr, "zipflm-trace:", err)
			return 1
		}
		if traceview.WriteDiff(stdout, a, b) {
			return 2
		}
		return 0
	}

	if fs.NArg() != 1 {
		fs.Usage()
		return 1
	}
	tr, err := traceview.ParseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "zipflm-trace:", err)
		return 1
	}
	a := traceview.Analyze(tr)
	traceview.WriteSummary(stdout, tr, a, traceview.SummaryOptions{TopN: *topN, MaxSteps: *steps})
	return 0
}
