// Command zipflm-corpus generates synthetic Zipfian corpora and prints
// Table-I-style statistics and type-token curves.
//
// Usage:
//
//	zipflm-corpus -dataset 1b -tokens 1000000            # stats
//	zipflm-corpus -dataset ar -curve -tokens 5000000     # Figure 1 curve
//	zipflm-corpus -list                                  # catalog
package main

import (
	"flag"
	"fmt"
	"os"

	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/powerlaw"
)

func main() {
	var (
		name   = flag.String("dataset", "1b", "dataset short name (1b, gb, cc, ar, tieba)")
		tokens = flag.Int("tokens", 1_000_000, "sample size in tokens")
		curve  = flag.Bool("curve", false, "print the type-token curve and power-law fit")
		chars  = flag.Bool("chars", false, "use the character-level generator")
		list   = flag.Bool("list", false, "print the dataset catalog and exit")
		seed   = flag.Uint64("seed", 42, "generator seed")
	)
	flag.Parse()

	if *list {
		tab := metrics.NewTable("Dataset catalog (Table I + Common Crawl):",
			"name", "full name", "language", "paper bytes", "word vocab", "char vocab", "zipf s")
		for _, d := range corpus.Catalog() {
			tab.AddRow(d.Name, d.FullName, d.Language,
				metrics.HumanBytes(d.PaperBytes),
				fmt.Sprint(d.WordVocab), fmt.Sprint(d.CharVocab),
				fmt.Sprintf("%.2f", d.ZipfExponent))
		}
		fmt.Print(tab)
		return
	}

	d, err := corpus.DatasetByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zipflm-corpus: %v\n", err)
		os.Exit(1)
	}
	gen := d.WordGenerator(*seed)
	if *chars || d.Kind != corpus.WordLevel {
		gen = d.CharGenerator(*seed)
	}

	if *curve {
		var checkpoints []int
		for n := 500; n <= *tokens; n *= 10 {
			checkpoints = append(checkpoints, n)
		}
		points := gen.TypeTokenCurve(checkpoints)
		tab := metrics.NewTable(fmt.Sprintf("Type-token curve, %s:", d.FullName),
			"tokens N", "types U", "N/U")
		xs := make([]float64, len(points))
		ys := make([]float64, len(points))
		for i, p := range points {
			tab.AddRow(fmt.Sprint(p.Tokens), fmt.Sprint(p.Types),
				fmt.Sprintf("%.1f", float64(p.Tokens)/float64(p.Types)))
			xs[i], ys[i] = float64(p.Tokens), float64(p.Types)
		}
		fmt.Print(tab)
		if fit, err := powerlaw.FitXY(xs, ys); err == nil {
			fmt.Printf("power-law fit: %s (paper: y = 7.02x^0.64, R² = 1.00)\n", fit)
		}
		return
	}

	stream := gen.Stream(*tokens)
	types := corpus.CountTypes(stream)
	fmt.Printf("dataset:        %s (%s, %s)\n", d.Name, d.FullName, d.Language)
	fmt.Printf("sample tokens:  %d\n", len(stream))
	fmt.Printf("types:          %d\n", types)
	fmt.Printf("tokens/type:    %.1f\n", float64(len(stream))/float64(types))
	fmt.Printf("est. bytes:     %s\n", metrics.HumanBytes(int64(float64(*tokens)*d.BytesPerToken())))
}
