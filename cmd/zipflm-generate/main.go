// Command zipflm-generate loads a model checkpoint written by zipflm-train
// (plus, optionally, the matching vocabulary) and samples continuations.
//
// Usage:
//
//	zipflm-train -input book.txt -save model.ckpt -save-vocab vocab.ckpt ...
//	zipflm-generate -model model.ckpt -vocab vocab.ckpt -prompt "the cat" -n 30
//	zipflm-generate -model model.ckpt -prompt-ids 4,7,1 -temperature 0.8 -topk 40
//	zipflm-generate -model model.ckpt -prompt-ids 4,7,1 -topp 0.9
//	zipflm-generate -model model.ckpt -prompt-ids 4,7,1 -quantized -draft draft.ckpt -draft-k 4
//
// -quantized runs inference on int8 weights (deterministic, faster on
// memory-bound models; output differs from FP32 by design). -draft enables
// speculative decoding with a small same-vocabulary draft model — output is
// bit-identical to plain generation at every temperature; the draft only
// changes the cost per token, and the acceptance rate is printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"zipflm/internal/corpus"
	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model checkpoint (required)")
		vocabPath = flag.String("vocab", "", "vocabulary file (enables -prompt text)")
		prompt    = flag.String("prompt", "", "text prompt (requires -vocab)")
		promptIDs = flag.String("prompt-ids", "", "comma-separated token ids as the prompt")
		n         = flag.Int("n", 40, "tokens to generate")
		temp      = flag.Float64("temperature", 1.0, "sampling temperature (0 = greedy)")
		topK      = flag.Int("topk", 0, "restrict sampling to the K most probable tokens (0 = off)")
		topP      = flag.Float64("topp", 0, "nucleus sampling mass in (0,1) (0 = off)")
		seed      = flag.Uint64("seed", 1, "sampling seed")
		quantized = flag.Bool("quantized", false, "run inference on int8 weights")
		draftPath = flag.String("draft", "", "draft model checkpoint enabling speculative decoding")
		draftK    = flag.Int("draft-k", 4, "speculative lookahead tokens per round (with -draft)")
	)
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "zipflm-generate: -model is required")
		os.Exit(1)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	defer mf.Close()
	m, err := model.Load(mf)
	if err != nil {
		fatal(err)
	}

	var vocab *corpus.Vocabulary
	if *vocabPath != "" {
		vf, err := os.Open(*vocabPath)
		if err != nil {
			fatal(err)
		}
		vocab, err = corpus.LoadVocabulary(vf)
		vf.Close()
		if err != nil {
			fatal(err)
		}
		if vocab.Size() != m.Cfg.Vocab {
			fatal(fmt.Errorf("vocabulary size %d does not match model vocabulary %d", vocab.Size(), m.Cfg.Vocab))
		}
	}

	ids, err := buildPrompt(*prompt, *promptIDs, vocab, m.Cfg.Vocab)
	if err != nil {
		fatal(err)
	}

	opts := sampling.DecodeOpts{Temperature: *temp, TopK: *topK, TopP: *topP}
	if err := opts.Validate(); err != nil {
		fatal(err)
	}
	if *quantized {
		m.QuantizeWeights()
	}
	var out []int
	if *draftPath != "" {
		df, err := os.Open(*draftPath)
		if err != nil {
			fatal(err)
		}
		draft, err := model.Load(df)
		df.Close()
		if err != nil {
			fatal(err)
		}
		if draft.Cfg.Vocab != m.Cfg.Vocab {
			fatal(fmt.Errorf("draft vocabulary %d does not match model vocabulary %d", draft.Cfg.Vocab, m.Cfg.Vocab))
		}
		sd := model.NewSpecDecoder(m, draft, *draftK)
		out = sd.Generate(ids, *n, opts, rng.New(*seed))
		st := sd.Stats()
		fmt.Fprintf(os.Stderr, "zipflm-generate: speculative k=%d: %d rounds, %d/%d proposals accepted (%.0f%%), %d draft steps\n",
			*draftK, st.Rounds, st.Accepted, st.Proposed, 100*st.AcceptanceRate(), st.DraftSteps)
	} else {
		out = m.GenerateOpts(ids, *n, opts, rng.New(*seed))
	}
	if vocab != nil {
		words := make([]string, len(out))
		for i, id := range out {
			words[i] = vocab.Word(id)
		}
		fmt.Println(strings.Join(words, " "))
		return
	}
	strs := make([]string, len(out))
	for i, id := range out {
		strs[i] = strconv.Itoa(id)
	}
	fmt.Println(strings.Join(strs, ","))
}

func buildPrompt(text, idCSV string, vocab *corpus.Vocabulary, modelVocab int) ([]int, error) {
	switch {
	case text != "" && vocab == nil:
		return nil, fmt.Errorf("-prompt needs -vocab; use -prompt-ids without one")
	case text != "":
		ids := vocab.Encode(corpus.Tokenize(text))
		if len(ids) == 0 {
			return nil, fmt.Errorf("prompt tokenized to nothing")
		}
		return ids, nil
	case idCSV != "":
		parts := strings.Split(idCSV, ",")
		ids := make([]int, 0, len(parts))
		for _, p := range parts {
			id, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("bad prompt id %q: %w", p, err)
			}
			if id < 0 || id >= modelVocab {
				return nil, fmt.Errorf("prompt id %d outside model vocabulary %d", id, modelVocab)
			}
			ids = append(ids, id)
		}
		return ids, nil
	default:
		// Default prompt: the most frequent real word (id 1).
		return []int{1 % modelVocab}, nil
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zipflm-generate: %v\n", err)
	os.Exit(1)
}
