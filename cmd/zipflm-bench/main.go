// Command zipflm-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	zipflm-bench -list
//	zipflm-bench -exp tab3
//	zipflm-bench -exp compress,weakscale
//	zipflm-bench -exp all [-quick] [-seed 42]
//	zipflm-bench -exp weakscale -json BENCH_weakscale.json
//
// -list prints the registered experiment ids; an unknown -exp id fails
// before anything runs and prints the same enumeration.
//
// Every experiment prints paper-reported values alongside the values this
// reproduction measures or models, so discrepancies are visible in place.
// With -json, the same reports are additionally written as machine-readable
// JSON (experiment id, table headers/rows carrying the metrics — predicted
// times, wire bytes — plus notes), so performance trajectories can be
// tracked across commits as BENCH_*.json artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"zipflm/internal/experiments"
	"zipflm/internal/telemetry"
	"zipflm/internal/tensor"
)

// jsonTable is one experiment table in machine-readable form.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Units   []string   `json:"units,omitempty"`
	Rows    [][]string `json:"rows"`
}

// jsonReport mirrors experiments.Report for serialization.
type jsonReport struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Tables []jsonTable `json:"tables"`
	Notes  []string    `json:"notes"`
}

// jsonOutput is the top-level -json document. Host metadata (go version,
// GOMAXPROCS, CPU count, commit) rides along so a checked-in BENCH_*.json
// records where its numbers came from — zipflm-perf reads the same shape
// when diffing runs across machines.
type jsonOutput struct {
	Seed    uint64              `json:"seed"`
	Quick   bool                `json:"quick"`
	Host    telemetry.BuildInfo `json:"host"`
	Reports []jsonReport        `json:"reports"`
}

func toJSONReport(rep *experiments.Report) jsonReport {
	out := jsonReport{ID: rep.ID, Title: rep.Title, Notes: rep.Notes}
	for _, t := range rep.Tables {
		out.Tables = append(out.Tables, jsonTable{
			Title:   t.Title,
			Headers: t.Headers(),
			Units:   t.Units(),
			Rows:    t.Rows(),
		})
	}
	return out
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id(s) to run, comma-separated, or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		quick      = flag.Bool("quick", false, "shrink training-based experiments for a fast smoke run")
		seed       = flag.Uint64("seed", 42, "reproducibility seed")
		jsonPath   = flag.String("json", "", "also write machine-readable results to this path")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON timeline of the simulated-cluster experiments to this path")
		flightCap  = flag.Int("flight", 0, "flight-recorder ring capacity for training-based experiments; dumped on fault rollback or SIGQUIT (0 disables)")
		profileDir = flag.String("profile-dir", "", "capture a CPU profile per experiment (plus a heap snapshot at each experiment's end) into this directory, indexed by profiles.json")
		workers    = flag.Int("workers", 0, "goroutines per matmul in training-based experiments (0: ZIPFLM_WORKERS or serial; results identical at any value)")
	)
	flag.Parse()

	if *workers > 0 {
		tensor.SetDefaultWorkers(*workers)
	}

	if *list {
		width := 0
		for _, id := range experiments.IDs() {
			if len(id) > width {
				width = len(id)
			}
		}
		for _, id := range experiments.IDs() {
			fmt.Printf("%-*s %s\n", width, id, experiments.Title(id))
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if *tracePath != "" {
		opts.Trace = telemetry.NewTracer(0)
	}
	if *flightCap > 0 {
		opts.Flight = telemetry.NewFlight(*flightCap)
		defer opts.Flight.ArmSIGQUIT()()
	}
	if *profileDir != "" {
		prof, err := telemetry.NewProfiler(telemetry.ProfilerConfig{Dir: *profileDir, Heap: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: %v\n", err)
			os.Exit(1)
		}
		opts.Profile = prof
		defer func() {
			prof.Stop()
			fmt.Fprintf(os.Stderr, "zipflm-bench: wrote %d profile(s) to %s\n", len(prof.Manifest()), prof.Dir())
		}()
	}
	ids := experiments.IDs()
	if *exp != "all" {
		// Validate every requested id before running anything, so a typo
		// late in a comma-separated list cannot waste the earlier runs —
		// and the error enumerates what is available.
		known := make(map[string]bool, len(ids))
		for _, id := range ids {
			known[id] = true
		}
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if id == "all" {
				ids = append(ids, experiments.IDs()...)
				continue
			}
			if !known[id] {
				fmt.Fprintf(os.Stderr, "zipflm-bench: unknown experiment %q; registered experiments are:\n", id)
				for _, k := range experiments.IDs() {
					fmt.Fprintf(os.Stderr, "  %s\n", k)
				}
				os.Exit(1)
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "zipflm-bench: -exp named no experiments (use -list to see ids)")
			os.Exit(1)
		}
	}
	out := jsonOutput{Seed: *seed, Quick: *quick, Host: telemetry.CollectBuildInfo()}
	for _, id := range ids {
		rep, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		out.Reports = append(out.Reports, toJSONReport(rep))
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: encoding json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "zipflm-bench: wrote %d report(s) to %s\n", len(out.Reports), *jsonPath)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: %v\n", err)
			os.Exit(1)
		}
		if err := opts.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "zipflm-bench: writing %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "zipflm-bench: wrote %d trace events to %s\n", opts.Trace.Len(), *tracePath)
	}
}
