// Command zipflm-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	zipflm-bench -list
//	zipflm-bench -exp tab3
//	zipflm-bench -exp all [-quick] [-seed 42]
//
// Every experiment prints paper-reported values alongside the values this
// reproduction measures or models, so discrepancies are visible in place.
package main

import (
	"flag"
	"fmt"
	"os"

	"zipflm/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id to run, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		quick = flag.Bool("quick", false, "shrink training-based experiments for a fast smoke run")
		seed  = flag.Uint64("seed", 42, "reproducibility seed")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, experiments.Title(id))
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		rep, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}
}
