// Command zipflm-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	zipflm-bench -list
//	zipflm-bench -exp tab3
//	zipflm-bench -exp all [-quick] [-seed 42]
//	zipflm-bench -exp weakscale -json BENCH_weakscale.json
//
// Every experiment prints paper-reported values alongside the values this
// reproduction measures or models, so discrepancies are visible in place.
// With -json, the same reports are additionally written as machine-readable
// JSON (experiment id, table headers/rows carrying the metrics — predicted
// times, wire bytes — plus notes), so performance trajectories can be
// tracked across commits as BENCH_*.json artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"zipflm/internal/experiments"
)

// jsonTable is one experiment table in machine-readable form.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// jsonReport mirrors experiments.Report for serialization.
type jsonReport struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Tables []jsonTable `json:"tables"`
	Notes  []string    `json:"notes"`
}

// jsonOutput is the top-level -json document.
type jsonOutput struct {
	Seed    uint64       `json:"seed"`
	Quick   bool         `json:"quick"`
	Reports []jsonReport `json:"reports"`
}

func toJSONReport(rep *experiments.Report) jsonReport {
	out := jsonReport{ID: rep.ID, Title: rep.Title, Notes: rep.Notes}
	for _, t := range rep.Tables {
		out.Tables = append(out.Tables, jsonTable{
			Title:   t.Title,
			Headers: t.Headers(),
			Rows:    t.Rows(),
		})
	}
	return out
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id to run, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "shrink training-based experiments for a fast smoke run")
		seed     = flag.Uint64("seed", 42, "reproducibility seed")
		jsonPath = flag.String("json", "", "also write machine-readable results to this path")
	)
	flag.Parse()

	if *list {
		width := 0
		for _, id := range experiments.IDs() {
			if len(id) > width {
				width = len(id)
			}
		}
		for _, id := range experiments.IDs() {
			fmt.Printf("%-*s %s\n", width, id, experiments.Title(id))
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	out := jsonOutput{Seed: *seed, Quick: *quick}
	for _, id := range ids {
		rep, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		out.Reports = append(out.Reports, toJSONReport(rep))
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: encoding json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "zipflm-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "zipflm-bench: wrote %d report(s) to %s\n", len(out.Reports), *jsonPath)
	}
}
