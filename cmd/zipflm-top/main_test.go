package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"zipflm/internal/telemetry"
)

// TestOncePollsLiveEndpoint runs a full -once cycle against a live
// telemetry.Handler: two polls through the Accept-negotiated JSON view,
// one rendered frame, exit 0 — exactly what the CI dashboard smoke runs.
func TestOncePollsLiveEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("zipflm_serve_tokens_total").Add(5000)
	reg.Gauge("zipflm_serve_queue_depth").SetInt(3)
	reg.Duration("zipflm_serve_latency_seconds").Record(int64(12e6))
	srv := httptest.NewServer(telemetry.Handler(reg))
	defer srv.Close()

	var out, errb bytes.Buffer
	code := run([]string{"-addr", srv.URL, "-interval", "10ms", "-once"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	frame := out.String()
	if strings.Contains(frame, "\x1b") {
		t.Error("-once frame must be plain text")
	}
	if !strings.Contains(frame, "zipflm-top") || !strings.Contains(frame, "2 samples") {
		t.Errorf("frame header wrong:\n%s", frame)
	}
	if !strings.Contains(frame, "queue depth") {
		t.Errorf("frame missing gauge panel:\n%s", frame)
	}
}

func TestUsageAndConnectErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("no-args exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("no usage on stderr: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-addr", "127.0.0.1:1", "-once"}, &out, &errb); code != 1 {
		t.Fatalf("unreachable-endpoint exit %d, want 1", code)
	}
}
