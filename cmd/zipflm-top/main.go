// Command zipflm-top is a live terminal dashboard over any zipflm process
// exporting /metrics: it polls the endpoint's JSON snapshot (selected via
// Accept-header content negotiation) and renders sparkline trends for
// throughput, latency, queue depth, cache hit rate and SLO burn — plain
// ANSI, no dependencies, usable over ssh.
//
// Usage:
//
//	zipflm-serve -model model.ckpt -addr :8080 &
//	zipflm-top -addr localhost:8080
//
//	zipflm-train -synthetic 200000 -metrics-addr :9090 &
//	zipflm-top -addr localhost:9090
//
// -once polls two samples one interval apart, prints a single plain-text
// frame, and exits — the CI smoke mode. The same renderer backs the
// -dashboard flag on zipflm-serve and zipflm-train, which reads the
// in-process registry instead of polling HTTP.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zipflm/internal/dash"
	"zipflm/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("zipflm-top", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr     = fs.String("addr", "", "host:port of a zipflm /metrics endpoint (required)")
		interval = fs.Duration("interval", time.Second, "poll interval")
		width    = fs.Int("width", dash.DefaultWidth, "sparkline width in cells")
		once     = fs.Bool("once", false, "poll two samples one interval apart, print one plain frame, exit")
		plain    = fs.Bool("plain", false, "plain text frames (no ANSI cursor control), one per poll")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *addr == "" {
		fmt.Fprintln(errOut, "usage: zipflm-top -addr host:port [-interval 1s] [-once] [-plain]")
		return 1
	}
	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/metrics"
	client := &http.Client{Timeout: 10 * time.Second}

	poll := func() (telemetry.Snapshot, error) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return telemetry.Snapshot{}, err
		}
		// Content negotiation: one endpoint, Accept picks the JSON view.
		req.Header.Set("Accept", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return telemetry.Snapshot{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return telemetry.Snapshot{}, fmt.Errorf("%s: %s", url, resp.Status)
		}
		var snap telemetry.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return telemetry.Snapshot{}, fmt.Errorf("decoding %s: %w", url, err)
		}
		return snap, nil
	}

	title := "zipflm-top — " + *addr
	board := dash.New(*width)

	snap, err := poll()
	if err != nil {
		fmt.Fprintf(errOut, "zipflm-top: %v\n", err)
		return 1
	}
	board.Observe(time.Now(), snap)

	if *once {
		time.Sleep(*interval)
		snap, err := poll()
		if err != nil {
			fmt.Fprintf(errOut, "zipflm-top: %v\n", err)
			return 1
		}
		board.Observe(time.Now(), snap)
		fmt.Fprint(out, board.Frame(title, false))
		return 0
	}

	ansi := !*plain
	fmt.Fprint(out, board.Frame(title, ansi))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	misses := 0
	for {
		select {
		case <-sigs:
			fmt.Fprintln(out)
			return 0
		case now := <-ticker.C:
			snap, err := poll()
			if err != nil {
				// A restarting server should not kill the dashboard;
				// persistent failure should.
				if misses++; misses >= 5 {
					fmt.Fprintf(errOut, "zipflm-top: %v (5 consecutive failures)\n", err)
					return 1
				}
				continue
			}
			misses = 0
			board.Observe(now, snap)
			fmt.Fprint(out, board.Frame(title, ansi))
		}
	}
}
