package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zipflm/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

func td(name string) string { return filepath.Join("testdata", name) }

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := td(name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n%s", path, got)
	}
}

// TestDiffInjectedRegressionExitsNonzero is the ISSUE acceptance
// criterion: a synthetically regressed bench run against the checked-in
// baseline must exit nonzero, and the report is pinned by a golden file.
func TestDiffInjectedRegressionExitsNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-diff", td("baseline.json"), td("bench_regressed.txt")}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s\nstdout:\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("report missing REGRESSION banner:\n%s", out.String())
	}
	checkGolden(t, "diff_regressed.golden", out.String())
}

func TestDiffWithinThresholdExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-diff", td("baseline.json"), td("bench_ok.txt")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout:\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Fatalf("report missing verdict:\n%s", out.String())
	}
	checkGolden(t, "diff_ok.golden", out.String())
}

// TestNoiseWidensAllowedBand: with spread recorded in both runs, a delta
// beyond -threshold but inside 2·spread must not regress.
func TestNoiseWidensAllowedBand(t *testing.T) {
	base := &Baseline{Metrics: map[string]Metric{
		"BenchmarkNoisy ns/op": {Value: 100, Unit: "ns/op", N: 3, Spread: 0.4},
	}}
	cur := map[string]Metric{
		"BenchmarkNoisy ns/op": {Value: 150, Unit: "ns/op", N: 1},
	}
	rows := diff(base, cur, 0.15)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	// +50% exceeds the 15% threshold, but 2·0.4 = 80% allows it.
	if rows[0].verdict != vOK {
		t.Errorf("noisy metric verdict = %s, want ok (allowed %.0f%%)", rows[0].verdict, 100*rows[0].allowed)
	}
	// The same delta on a quiet metric regresses.
	base.Metrics["BenchmarkNoisy ns/op"] = Metric{Value: 100, Unit: "ns/op", N: 3, Spread: 0.01}
	if rows := diff(base, cur, 0.15); rows[0].verdict != vRegressed {
		t.Errorf("quiet metric verdict = %s, want REGRESSED", rows[0].verdict)
	}
}

// TestDirectionByUnit: tok/s regresses downward, ns/op upward, unknown
// units never gate.
func TestDirectionByUnit(t *testing.T) {
	base := &Baseline{Metrics: map[string]Metric{
		"a tok/s": {Value: 1000, Unit: "tok/s"},
		"b ns/op": {Value: 1000, Unit: "ns/op"},
		"c nats":  {Value: 1000, Unit: "nats"},
	}}
	cur := map[string]Metric{
		"a tok/s": {Value: 500, Unit: "tok/s"},
		"b ns/op": {Value: 500, Unit: "ns/op"},
		"c nats":  {Value: 500, Unit: "nats"},
	}
	verdicts := map[string]string{}
	for _, r := range diff(base, cur, 0.15) {
		verdicts[r.name] = r.verdict
	}
	if verdicts["a tok/s"] != vRegressed {
		t.Errorf("halved tok/s = %s, want REGRESSED", verdicts["a tok/s"])
	}
	if verdicts["b ns/op"] != vImproved {
		t.Errorf("halved ns/op = %s, want improved", verdicts["b ns/op"])
	}
	if verdicts["c nats"] != vInfo {
		t.Errorf("unknown unit = %s, want info", verdicts["c nats"])
	}
}

// TestBaselineRoundTrip: -baseline writes a file with host metadata that
// -diff accepts; a run against its own baseline has no regression.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path, td("bench_base.txt")}, &out, &errb); code != 0 {
		t.Fatalf("baseline exit %d, stderr: %s", code, errb.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		t.Fatal(err)
	}
	if b.Host == nil || b.Host.Go == "" || b.Host.GOMAXPROCS <= 0 {
		t.Errorf("baseline host metadata incomplete: %+v", b.Host)
	}
	if len(b.Metrics) != 8 {
		t.Errorf("baseline has %d metrics, want 8", len(b.Metrics))
	}
	m := b.Metrics["BenchmarkStepWorkers1 ns/op"]
	if m.Value != 51000000 || m.N != 2 || m.Spread == 0 {
		t.Errorf("aggregated metric = %+v, want mean 51e6 over 2 runs with spread", m)
	}

	out.Reset()
	if code := run([]string{"-diff", path, td("bench_base.txt")}, &out, &errb); code != 0 {
		t.Fatalf("self-diff exit %d:\n%s", code, out.String())
	}
}

// TestParseTest2JSONAndReport: extraction mode reads test2json streams
// and zipflm-bench -json reports.
func TestParseTest2JSONAndReport(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{td("bench_test2json.txt")}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "BenchmarkBatchedDecode ns/op") {
		t.Errorf("test2json stream not parsed:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{filepath.Join("..", "..", "BENCH_serving.json")}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "serving/sequential/tok/s") {
		t.Errorf("zipflm-bench report not parsed:\n%s", out.String())
	}
}

// TestHostMismatchWarning: a baseline recorded on a different host shape
// notes the mismatch in the diff report.
func TestHostMismatchWarning(t *testing.T) {
	cur := telemetry.CollectBuildInfo()
	other := cur
	other.GOMAXPROCS = cur.GOMAXPROCS + 7
	b := Baseline{Host: &other, Metrics: map[string]Metric{
		"BenchmarkX ns/op": {Value: 100, Unit: "ns/op"},
	}}
	buf, _ := json.Marshal(&b)
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(src, []byte("BenchmarkX-1 10 100 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-diff", path, src}, &out, &errb); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "host differs from baseline") {
		t.Errorf("missing host-mismatch note:\n%s", out.String())
	}
}

func TestUsageAndInputErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("no-args exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("no usage on stderr: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"missing.txt"}, &out, &errb); code != 1 {
		t.Fatalf("missing-file exit %d, want 1", code)
	}
	errb.Reset()
	if code := run([]string{"-baseline", "x", "-diff", "y", "in.txt"}, &out, &errb); code != 1 {
		t.Fatalf("conflicting modes exit %d, want 1", code)
	}
	errb.Reset()
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{empty}, &out, &errb); code != 1 {
		t.Fatalf("metric-free input exit %d, want 1", code)
	}
}
