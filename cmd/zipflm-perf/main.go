// Command zipflm-perf is the bench/regression observatory: it parses
// performance numbers out of `go test -bench` output (plain text or
// `-json` test2json streams) and zipflm-bench -json reports, maintains
// checked-in baselines stamped with host metadata, and diffs runs against
// a baseline with noise-aware thresholds — exiting nonzero on regression,
// which is what makes it a CI gate.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkStep -count 3 . > bench.txt
//	zipflm-perf -baseline BENCH_step.json bench.txt     # record a baseline
//	zipflm-perf -diff BENCH_step.json bench_new.txt     # gate a new run
//	zipflm-perf bench.txt                               # list extracted metrics
//
// A diff compares every metric present in both the baseline and the
// current inputs. Direction comes from the unit (ns/op, B/op, allocs/op
// regress upward; tok/s, req/s, MB/s regress downward; unknown units are
// reported but never gate). The allowed delta per metric is
// max(-threshold, 2·spread): when a benchmark ran multiple times
// (-count), the observed relative spread across runs widens the bound, so
// a noisy benchmark cannot flap the gate. Exit codes: 0 no regression,
// 2 regression, 1 usage or input error — the same convention as
// zipflm-trace -diff.
//
// Updating a baseline when a performance change is intentional is the
// same command that created it: rerun -baseline and commit the file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"zipflm/internal/metrics"
	"zipflm/internal/telemetry"
)

// Metric is one measured quantity: the mean over however many runs the
// inputs held, with the relative spread across those runs retained so the
// diff can tell noise from signal.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// N is how many runs were aggregated; Spread is (max−min)/mean across
	// them (0 for a single run).
	N      int     `json:"n,omitempty"`
	Spread float64 `json:"spread,omitempty"`
}

// Baseline is the checked-in file format.
type Baseline struct {
	Created time.Time            `json:"created"`
	Host    *telemetry.BuildInfo `json:"host,omitempty"`
	Metrics map[string]Metric    `json:"metrics"`
}

// sample accumulates one metric's runs before reduction.
type sample struct {
	unit   string
	values []float64
}

// collection gathers metrics from any number of input files.
type collection struct {
	samples map[string]*sample
}

func newCollection() *collection { return &collection{samples: map[string]*sample{}} }

func (c *collection) add(name, unit string, v float64) {
	key := name + " " + unit
	s, ok := c.samples[key]
	if !ok {
		s = &sample{unit: unit}
		c.samples[key] = s
	}
	s.values = append(s.values, v)
}

// reduce folds runs into Metrics: mean value, relative spread.
func (c *collection) reduce() map[string]Metric {
	out := make(map[string]Metric, len(c.samples))
	for key, s := range c.samples {
		var sum, lo, hi float64
		for i, v := range s.values {
			sum += v
			if i == 0 || v < lo {
				lo = v
			}
			if i == 0 || v > hi {
				hi = v
			}
		}
		mean := sum / float64(len(s.values))
		m := Metric{Value: mean, Unit: s.unit, N: len(s.values)}
		if mean != 0 && len(s.values) > 1 {
			m.Spread = (hi - lo) / math.Abs(mean)
		}
		out[key] = m
	}
	return out
}

// parseFile dispatches on content: a JSON object with "reports" is a
// zipflm-bench report, a stream of JSON lines with "Action" is test2json,
// anything else is treated as `go test -bench` text.
func (c *collection) parseFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trimmed := strings.TrimLeft(string(buf), " \t\r\n")
	if strings.HasPrefix(trimmed, "{") {
		var rep benchReportFile
		if err := json.Unmarshal(buf, &rep); err == nil && len(rep.Reports) > 0 {
			c.addReport(&rep)
			return nil
		}
	}
	return c.parseBenchText(buf)
}

// benchReportFile mirrors the zipflm-bench -json document (host metadata
// and seed/quick ride along but only the tables carry metrics).
type benchReportFile struct {
	Reports []struct {
		ID     string `json:"id"`
		Tables []struct {
			Title   string     `json:"title"`
			Headers []string   `json:"headers"`
			Units   []string   `json:"units"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	} `json:"reports"`
}

// addReport extracts every numeric cell: the metric name is
// "<experiment>/<row label>/<column header>", the unit the table's
// declared column unit.
func (c *collection) addReport(rep *benchReportFile) {
	for _, r := range rep.Reports {
		for _, t := range r.Tables {
			for _, row := range t.Rows {
				if len(row) == 0 {
					continue
				}
				label := row[0]
				for col := 1; col < len(row) && col < len(t.Headers); col++ {
					cell := strings.TrimSuffix(strings.TrimSpace(row[col]), "%")
					v, err := strconv.ParseFloat(cell, 64)
					if err != nil {
						continue
					}
					unit := ""
					if col < len(t.Units) {
						unit = t.Units[col]
					}
					c.add(fmt.Sprintf("%s/%s/%s", r.ID, label, t.Headers[col]), unit, v)
				}
			}
		}
	}
}

// parseBenchText reads `go test -bench` output, accepting both the plain
// text form and -json (test2json) streams whose Output lines carry the
// same text.
func (c *collection) parseBenchText(buf []byte) error {
	sc := bufio.NewScanner(strings.NewReader(string(buf)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			var ev struct {
				Action string `json:"action"`
				Output string `json:"output"`
			}
			// test2json uses capitalized keys; json.Unmarshal matches
			// case-insensitively.
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				line = strings.TrimSuffix(ev.Output, "\n")
			}
		}
		c.parseBenchLine(line)
	}
	return sc.Err()
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 unit1  v2 unit2 …`
// line; anything else is ignored. The trailing -P GOMAXPROCS suffix is
// stripped so metric names compare across hosts (the host difference
// itself lives in the baseline metadata).
func (c *collection) parseBenchLine(line string) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return
		}
		c.add(name, fields[i+1], v)
	}
}

// Direction by unit: the gate only fires on units whose better-direction
// is known; everything else is informational.
var lowerIsBetter = map[string]bool{
	"ns/op": true, "B/op": true, "allocs/op": true,
	"ms": true, "s": true, "us": true, "µs": true, "s/step": true,
	"bytes": true, "B": true, "MB": true, "GB": true, "h": true,
}
var higherIsBetter = map[string]bool{
	"MB/s": true, "tok/s": true, "req/s": true, "ops/s": true, "steps/s": true,
}

// verdicts
const (
	vOK         = "ok"
	vRegressed  = "REGRESSED"
	vImproved   = "improved"
	vInfo       = "info"
	vNoBaseline = "new"
	vGone       = "missing"
)

// diffRow is one metric's comparison.
type diffRow struct {
	name    string
	unit    string
	base    Metric
	cur     Metric
	rel     float64 // (cur-base)/base
	allowed float64 // threshold actually applied
	verdict string
}

// diff compares current metrics against a baseline with the given base
// threshold.
func diff(base *Baseline, cur map[string]Metric, threshold float64) []diffRow {
	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	for name := range cur {
		if _, ok := base.Metrics[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	rows := make([]diffRow, 0, len(names))
	for _, name := range names {
		b, okB := base.Metrics[name]
		c, okC := cur[name]
		row := diffRow{name: name, unit: b.Unit, base: b, cur: c}
		switch {
		case !okB:
			row.unit = c.Unit
			row.verdict = vNoBaseline
		case !okC:
			row.verdict = vGone
		case b.Value == 0:
			row.verdict = vInfo
		default:
			row.rel = (c.Value - b.Value) / math.Abs(b.Value)
			// Noise awareness: the observed run-to-run spread (of either
			// side) widens the allowed band, so a benchmark whose own
			// variance exceeds the threshold cannot flap the gate.
			spread := b.Spread
			if c.Spread > spread {
				spread = c.Spread
			}
			row.allowed = threshold
			if 2*spread > row.allowed {
				row.allowed = 2 * spread
			}
			switch {
			case lowerIsBetter[b.Unit]:
				switch {
				case row.rel > row.allowed:
					row.verdict = vRegressed
				case row.rel < -row.allowed:
					row.verdict = vImproved
				default:
					row.verdict = vOK
				}
			case higherIsBetter[b.Unit]:
				switch {
				case row.rel < -row.allowed:
					row.verdict = vRegressed
				case row.rel > row.allowed:
					row.verdict = vImproved
				default:
					row.verdict = vOK
				}
			default:
				row.verdict = vInfo
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// hostLine renders build/host metadata one-line.
func hostLine(h *telemetry.BuildInfo) string {
	if h == nil {
		return "(no host metadata)"
	}
	return fmt.Sprintf("%s %s/%s gomaxprocs=%d numcpu=%d commit=%s",
		h.Go, h.GOOS, h.GOARCH, h.GOMAXPROCS, h.NumCPU, h.Commit)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("zipflm-perf", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		baselineOut = fs.String("baseline", "", "write a baseline with host metadata to this path from the input files")
		diffBase    = fs.String("diff", "", "diff the input files against this baseline; exit 2 on regression")
		threshold   = fs.Float64("threshold", 0.15, "base allowed relative delta before a known-direction metric regresses (noise spread can widen it)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	inputs := fs.Args()
	if len(inputs) == 0 || (*baselineOut != "" && *diffBase != "") {
		fmt.Fprintln(errOut, "usage: zipflm-perf [-baseline OUT | -diff BASELINE [-threshold 0.15]] input.txt|BENCH_*.json ...")
		return 1
	}

	col := newCollection()
	for _, path := range inputs {
		if err := col.parseFile(path); err != nil {
			fmt.Fprintf(errOut, "zipflm-perf: %s: %v\n", path, err)
			return 1
		}
	}
	cur := col.reduce()
	if len(cur) == 0 {
		fmt.Fprintln(errOut, "zipflm-perf: no metrics found in inputs")
		return 1
	}

	switch {
	case *baselineOut != "":
		host := telemetry.CollectBuildInfo()
		b := Baseline{Created: time.Now().UTC().Truncate(time.Second), Host: &host, Metrics: cur}
		buf, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintf(errOut, "zipflm-perf: %v\n", err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*baselineOut, buf, 0o644); err != nil {
			fmt.Fprintf(errOut, "zipflm-perf: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "baseline: %d metrics → %s\n  host: %s\n", len(cur), *baselineOut, hostLine(&host))
		return 0

	case *diffBase != "":
		buf, err := os.ReadFile(*diffBase)
		if err != nil {
			fmt.Fprintf(errOut, "zipflm-perf: %v\n", err)
			return 1
		}
		var base Baseline
		if err := json.Unmarshal(buf, &base); err != nil {
			fmt.Fprintf(errOut, "zipflm-perf: %s: %v\n", *diffBase, err)
			return 1
		}
		rows := diff(&base, cur, *threshold)

		fmt.Fprintf(out, "baseline: %s (%s)\n", *diffBase, hostLine(base.Host))
		if warn := hostMismatch(base.Host); warn != "" {
			fmt.Fprintf(out, "note: %s\n", warn)
		}
		tab := metrics.NewTable("perf diff:", "metric", "unit", "baseline", "current", "delta", "allowed", "verdict")
		regressions, gated := 0, 0
		for _, r := range rows {
			switch r.verdict {
			case vRegressed:
				regressions++
				gated++
			case vOK, vImproved:
				gated++
			}
			baseS, curS, deltaS, allowedS := "-", "-", "-", "-"
			if r.verdict != vNoBaseline {
				baseS = formatMetric(r.base.Value)
			}
			if r.verdict != vGone {
				curS = formatMetric(r.cur.Value)
			}
			if r.verdict != vNoBaseline && r.verdict != vGone {
				deltaS = fmt.Sprintf("%+.1f%%", 100*r.rel)
			}
			if r.allowed > 0 {
				allowedS = fmt.Sprintf("±%.0f%%", 100*r.allowed)
			}
			tab.AddRow(r.name, r.unit, baseS, curS, deltaS, allowedS, r.verdict)
		}
		fmt.Fprint(out, tab)
		fmt.Fprintf(out, "gated %d metric(s), %d regression(s)\n", gated, regressions)
		if regressions > 0 {
			fmt.Fprintf(out, "REGRESSION: %d metric(s) beyond their allowed delta\n", regressions)
			return 2
		}
		fmt.Fprintln(out, "no regression")
		return 0

	default:
		// Extraction mode: list what the inputs contain.
		names := make([]string, 0, len(cur))
		for name := range cur {
			names = append(names, name)
		}
		sort.Strings(names)
		tab := metrics.NewTable("extracted metrics:", "metric", "unit", "value", "runs", "spread")
		for _, name := range names {
			m := cur[name]
			tab.AddRow(name, m.Unit, formatMetric(m.Value), strconv.Itoa(m.N), fmt.Sprintf("%.1f%%", 100*m.Spread))
		}
		fmt.Fprint(out, tab)
		return 0
	}
}

// hostMismatch warns when the diffing host differs from the baseline's in
// a way that makes absolute numbers incomparable.
func hostMismatch(base *telemetry.BuildInfo) string {
	if base == nil {
		return ""
	}
	cur := telemetry.CollectBuildInfo()
	var diffs []string
	if base.GOMAXPROCS != cur.GOMAXPROCS {
		diffs = append(diffs, fmt.Sprintf("gomaxprocs %d→%d", base.GOMAXPROCS, cur.GOMAXPROCS))
	}
	if base.NumCPU != cur.NumCPU {
		diffs = append(diffs, fmt.Sprintf("numcpu %d→%d", base.NumCPU, cur.NumCPU))
	}
	if base.Go != cur.Go {
		diffs = append(diffs, fmt.Sprintf("go %s→%s", base.Go, cur.Go))
	}
	if base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH {
		diffs = append(diffs, fmt.Sprintf("platform %s/%s→%s/%s", base.GOOS, base.GOARCH, cur.GOOS, cur.GOARCH))
	}
	if len(diffs) == 0 {
		return ""
	}
	return "host differs from baseline (" + strings.Join(diffs, ", ") + "); absolute deltas may reflect the machine, not the code"
}

// formatMetric renders a value compactly without losing precision where
// it matters.
func formatMetric(v float64) string {
	switch {
	case v == float64(int64(v)) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	case math.Abs(v) >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	default:
		return strconv.FormatFloat(v, 'g', 6, 64)
	}
}
