module zipflm

go 1.21
