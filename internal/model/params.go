// Package model implements the RNN language models of §IV-B in pure Go:
// input/output embeddings, an LSTM layer (word LM) and a recurrent highway
// network layer (char LM, after Hestness et al.), a linear projection, and
// full plus sampled softmax losses, all with exact analytic backward passes
// (verified against numerical gradients in the tests).
//
// The layers follow a single convention: Forward caches whatever Backward
// needs, so exactly one Forward may be outstanding per layer at a time —
// the pattern a data-parallel trainer uses, where each rank owns a private
// model replica.
package model

// Param is one named dense parameter tensor with its gradient accumulator.
// Value and Grad always have equal length; optimizers walk these pairs.
type Param struct {
	Name  string
	Value []float32
	Grad  []float32
}

// Layer is anything that owns dense parameters.
type Layer interface {
	// Params returns the layer's parameters; gradients accumulate into
	// the returned Grad slices across Backward calls until ZeroGrads.
	Params() []Param
	// ZeroGrads clears all gradient accumulators.
	ZeroGrads()
}

// zeroAll clears each gradient slice.
func zeroAll(ps []Param) {
	for _, p := range ps {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// NumParams sums parameter counts over layers (the "213 million parameters"
// style accounting of §IV-B).
func NumParams(layers ...Layer) int {
	n := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			n += len(p.Value)
		}
	}
	return n
}
