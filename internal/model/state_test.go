package model

import (
	"math"
	"testing"

	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// randSeq builds T random B×D inputs.
func randSeq(r *rng.RNG, t, b, d int) []*tensor.Matrix {
	xs := make([]*tensor.Matrix, t)
	for i := range xs {
		x := tensor.NewMatrix(b, d)
		x.RandomizeNormal(r, 1)
		xs[i] = x
	}
	return xs
}

// TestLSTMCarryEqualsConcat: running two carried chunks must reproduce the
// hidden states of one run over the concatenated sequence exactly.
func TestLSTMCarryEqualsConcat(t *testing.T) {
	r := rng.New(1)
	whole := NewLSTM(4, 6, rng.New(9))
	chunked := NewLSTM(4, 6, rng.New(9))
	chunked.SetCarry(true)

	xs := randSeq(r, 8, 3, 4)
	want := whole.Forward(xs)

	got1 := chunked.Forward(xs[:5])
	got2 := chunked.Forward(xs[5:])
	got := append(append([]*tensor.Matrix{}, got1...), got2...)
	for step := range want {
		for i := range want[step].Data {
			if want[step].Data[i] != got[step].Data[i] {
				t.Fatalf("step %d elem %d: %v vs %v", step, i, want[step].Data[i], got[step].Data[i])
			}
		}
	}
}

// TestRHNCarryEqualsConcat is the RHN counterpart.
func TestRHNCarryEqualsConcat(t *testing.T) {
	r := rng.New(2)
	whole := NewRHN(4, 5, 3, rng.New(11))
	chunked := NewRHN(4, 5, 3, rng.New(11))
	chunked.SetCarry(true)

	xs := randSeq(r, 6, 2, 4)
	want := whole.Forward(xs)
	got1 := chunked.Forward(xs[:2])
	got2 := chunked.Forward(xs[2:])
	got := append(append([]*tensor.Matrix{}, got1...), got2...)
	for step := range want {
		for i := range want[step].Data {
			if want[step].Data[i] != got[step].Data[i] {
				t.Fatalf("step %d elem %d: %v vs %v", step, i, want[step].Data[i], got[step].Data[i])
			}
		}
	}
}

func TestResetStateRestoresZeroStart(t *testing.T) {
	r := rng.New(3)
	l := NewLSTM(4, 6, rng.New(5))
	l.SetCarry(true)
	xs := randSeq(r, 4, 2, 4)
	first := l.Forward(xs)
	firstCopy := make([]float32, len(first[0].Data))
	copy(firstCopy, first[0].Data)

	l.Forward(xs) // state now non-zero
	l.ResetState()
	again := l.Forward(xs)
	for i := range firstCopy {
		if again[0].Data[i] != firstCopy[i] {
			t.Fatal("ResetState did not restore zero-state behaviour")
		}
	}
}

func TestSnapshotRestoreState(t *testing.T) {
	r := rng.New(4)
	l := NewRHN(3, 4, 2, rng.New(6))
	l.SetCarry(true)
	xs := randSeq(r, 3, 2, 3)
	l.Forward(xs)
	snap := l.SnapshotState()

	// Perturb the state, then restore.
	other := randSeq(r, 3, 2, 3)
	l.Forward(other)
	afterPerturb := l.Forward(xs)[0].Clone()
	l.RestoreState(snap)
	afterRestore := l.Forward(xs)[0]

	same := true
	for i := range afterRestore.Data {
		if afterRestore.Data[i] != afterPerturb.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("snapshot/restore had no effect (states identical by accident?)")
	}

	// Restoring the snapshot again must reproduce afterRestore exactly.
	l.RestoreState(snap)
	again := l.Forward(xs)[0]
	for i := range again.Data {
		if again.Data[i] != afterRestore.Data[i] {
			t.Fatal("RestoreState not reproducible")
		}
	}
}

func TestDisablingCarryClearsState(t *testing.T) {
	r := rng.New(5)
	l := NewLSTM(3, 4, rng.New(7))
	l.SetCarry(true)
	xs := randSeq(r, 3, 2, 3)
	zeroStart := l.Forward(xs)[0].Clone()
	l.SetCarry(false)
	l.SetCarry(true)
	fresh := l.Forward(xs)[0]
	for i := range fresh.Data {
		if fresh.Data[i] != zeroStart.Data[i] {
			t.Fatal("SetCarry(false) did not clear carried state")
		}
	}
}

// TestStatefulEvalDoesNotDisturbTraining: EvalLoss must snapshot and restore
// the carried state around its own forwards.
func TestStatefulEvalDoesNotDisturbTraining(t *testing.T) {
	cfg := Config{Vocab: 30, Dim: 6, Hidden: 8, RNN: KindLSTM, Stateful: true, Seed: 2}
	m := NewLM(cfg)
	inputs := [][]int{{1, 2}, {3, 4}, {5, 6}}
	targets := [][]int{{2, 3}, {4, 5}, {6, 7}}
	m.ZeroGrads()
	m.ForwardBackward(inputs, targets, nil) // leaves carried state

	stream := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	l1, _ := m.EvalLoss(stream, 4)

	// Running the same step again must produce the same result whether or
	// not an eval happened in between (state restored).
	ref := NewLM(cfg)
	ref.CopyWeightsFrom(m)
	ref.ZeroGrads()
	ref.ForwardBackward(inputs, targets, nil)
	refStep := ref.ForwardBackward(inputs, targets, nil)

	m.ZeroGrads()
	_ = l1
	mStep := m.ForwardBackward(inputs, targets, nil)
	if math.Abs(mStep.LossSum-refStep.LossSum) > 1e-9 {
		t.Fatalf("eval disturbed training state: %v vs %v", mStep.LossSum, refStep.LossSum)
	}
}

// TestStatefulEvalCarriesWithinStream: with carry enabled, evaluating a
// predictable stream in small chunks must beat chunk-isolated evaluation on
// context that crosses chunk boundaries. We check it runs and returns
// finite loss over minimal chunks.
func TestStatefulEvalChunked(t *testing.T) {
	cfg := Config{Vocab: 20, Dim: 5, Hidden: 6, RNN: KindRHN, RHNDepth: 2, Stateful: true, Seed: 3}
	m := NewLM(cfg)
	stream := make([]int, 60)
	for i := range stream {
		stream[i] = i % 20
	}
	loss, count := m.EvalLoss(stream, 3)
	if count != 59 || math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("chunked stateful eval: loss=%v count=%d", loss, count)
	}
}
