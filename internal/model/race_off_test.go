//go:build !race

package model

// raceEnabled: see race_on_test.go.
const raceEnabled = false
