package model

import (
	"math"
	"testing"

	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

// TestParallelBackendBitIdenticalStep is the model-layer statement of the
// backend contract: an identical replica computing through the goroutine-
// tiled backend produces the same loss, the same dense gradients, and the
// same sparse embedding gradients — to the bit — as the serial reference,
// for both architectures and both softmax modes.
func TestParallelBackendBitIdenticalStep(t *testing.T) {
	configs := map[string]Config{
		"lstm-full":    {Vocab: 80, Dim: 12, Hidden: 16, RNN: KindLSTM, Seed: 21},
		"rhn-full":     {Vocab: 80, Dim: 12, Hidden: 16, RNN: KindRHN, RHNDepth: 2, Seed: 22},
		"lstm-sampled": {Vocab: 80, Dim: 12, Hidden: 16, RNN: KindLSTM, Sampled: 12, Seed: 23},
	}
	for name, cfg := range configs {
		for _, workers := range []int{2, 4, 7} {
			serial := NewLM(cfg)
			serial.SetBackend(tensor.Serial{})
			tiled := NewLM(cfg)
			be := tensor.NewParallel(workers)
			tiled.SetBackend(be)

			r := rng.New(5)
			const T, B = 4, 3
			inputs, targets := make([][]int, T), make([][]int, T)
			for s := 0; s < T; s++ {
				inputs[s], targets[s] = make([]int, B), make([]int, B)
				for b := 0; b < B; b++ {
					inputs[s][b] = r.Intn(cfg.Vocab)
					targets[s][b] = r.Intn(cfg.Vocab)
				}
			}
			var samplerA, samplerB sampling.CandidateSampler
			if cfg.Sampled > 0 {
				samplerA = sampling.NewSampler(cfg.Vocab, 31)
				samplerB = sampling.NewSampler(cfg.Vocab, 31)
			}

			ra := serial.ForwardBackward(inputs, targets, samplerA)
			rb := tiled.ForwardBackward(inputs, targets, samplerB)

			if ra.LossSum != rb.LossSum || ra.Count != rb.Count {
				t.Fatalf("%s workers=%d: loss %v/%d != serial %v/%d",
					name, workers, rb.LossSum, rb.Count, ra.LossSum, ra.Count)
			}
			pa, pb := serial.DenseParams(), tiled.DenseParams()
			for i := range pa {
				for j := range pa[i].Grad {
					if math.Float32bits(pa[i].Grad[j]) != math.Float32bits(pb[i].Grad[j]) {
						t.Fatalf("%s workers=%d: %s grad[%d] %v != serial %v",
							name, workers, pa[i].Name, j, pb[i].Grad[j], pa[i].Grad[j])
					}
				}
			}
			for _, pair := range []struct {
				name string
				a, b *tensor.Matrix
			}{{"input", ra.InputGrad.Rows, rb.InputGrad.Rows}, {"output", ra.OutputGrad.Rows, rb.OutputGrad.Rows}} {
				if (pair.a == nil) != (pair.b == nil) {
					t.Fatalf("%s workers=%d: %s sparse grad presence differs", name, workers, pair.name)
				}
				if pair.a == nil {
					continue
				}
				for j := range pair.a.Data {
					if math.Float32bits(pair.a.Data[j]) != math.Float32bits(pair.b.Data[j]) {
						t.Fatalf("%s workers=%d: %s sparse grad[%d] %v != serial %v",
							name, workers, pair.name, j, pair.b.Data[j], pair.a.Data[j])
					}
				}
			}

			// Validation path too: EvalLoss runs the full softmax without
			// gradients through the same backend.
			stream := make([]int, 120)
			for i := range stream {
				stream[i] = r.Intn(cfg.Vocab)
			}
			la, ca := serial.EvalLoss(stream, 10)
			lb, cb := tiled.EvalLoss(stream, 10)
			if la != lb || ca != cb {
				t.Fatalf("%s workers=%d: EvalLoss %v/%d != serial %v/%d", name, workers, lb, cb, la, ca)
			}
			be.Close()
		}
	}
}

// TestParallelBackendBitIdenticalStepper checks the serving path: Stepper
// logits through the tiled backend match the serial ones exactly, so
// generated token streams cannot diverge.
func TestParallelBackendBitIdenticalStepper(t *testing.T) {
	cfg := Config{Vocab: 90, Dim: 12, Hidden: 16, RNN: KindLSTM, Seed: 33}
	serial := NewLM(cfg)
	tiled := NewLM(cfg)
	be := tensor.NewParallel(3)
	defer be.Close()
	tiled.SetBackend(be)

	prompt := []int{3, 14, 15, 9, 2}
	opts := sampling.DecodeOpts{Temperature: 0.9}
	ga := serial.GenerateOpts(prompt, 32, opts, rng.New(11))
	gb := tiled.GenerateOpts(prompt, 32, opts, rng.New(11))
	if len(ga) != len(gb) {
		t.Fatalf("generated %d tokens, serial %d", len(gb), len(ga))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("token %d: tiled backend generated %d, serial %d", i, gb[i], ga[i])
		}
	}
}
