package model

import (
	"testing"

	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

func testConfigs() map[string]Config {
	return map[string]Config{
		"lstm": {Vocab: 120, Dim: 16, Hidden: 24, RNN: KindLSTM, Seed: 5},
		"rhn":  {Vocab: 90, Dim: 12, Hidden: 20, RNN: KindRHN, RHNDepth: 3, Seed: 6},
	}
}

func randomPrompt(r *rng.RNG, vocab, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = r.Intn(vocab)
	}
	return p
}

// TestBatchedStepBitIdentical is the serving layer's core contract at the
// model level: advancing B ragged sequences together through one Stepper
// must produce, for every sequence, exactly the tokens the sequential
// Generate path produces — same prompts, same per-sequence RNGs, any batch
// composition.
func TestBatchedStepBitIdentical(t *testing.T) {
	for name, cfg := range testConfigs() {
		for _, temp := range []float64{0, 0.8} {
			m := NewLM(cfg)
			r := rng.New(99)
			const nSeq, nTok = 7, 12
			opts := sampling.DecodeOpts{Temperature: temp}

			// Ragged prompts, one RNG per sequence.
			prompts := make([][]int, nSeq)
			for i := range prompts {
				prompts[i] = randomPrompt(r, cfg.Vocab, 1+i%5)
			}
			want := make([][]int, nSeq)
			for i := range prompts {
				want[i] = m.GenerateOpts(prompts[i], nTok, opts, rng.New(uint64(i)+1))
			}

			// Batched: all sequences advance in lockstep through one
			// Stepper; a sequence samples once its prompt is consumed.
			st := m.NewStepper(nSeq)
			dec := sampling.NewDecoder(cfg.Vocab)
			states := make([]*GenState, nSeq)
			rngs := make([]*rng.RNG, nSeq)
			fed := make([]int, nSeq)
			got := make([][]int, nSeq)
			for i := range states {
				states[i] = m.NewGenState()
				rngs[i] = rng.New(uint64(i) + 1)
			}
			for {
				var ids []int
				var sts []*GenState
				var rows []int
				for i := range prompts {
					if len(got[i]) == nTok {
						continue
					}
					var tok int
					if fed[i] < len(prompts[i]) {
						tok = prompts[i][fed[i]]
					} else {
						tok = got[i][fed[i]-len(prompts[i])]
					}
					ids = append(ids, tok)
					sts = append(sts, states[i])
					rows = append(rows, i)
				}
				if len(ids) == 0 {
					break
				}
				lg := st.Step(ids, sts)
				for row, i := range rows {
					fed[i]++
					if fed[i] >= len(prompts[i]) {
						got[i] = append(got[i], dec.Sample(lg.Row(row), opts, rngs[i]))
					}
				}
			}

			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("%s temp=%v seq %d: got %d tokens, want %d", name, temp, i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s temp=%v seq %d token %d: batched %d != sequential %d",
							name, temp, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestStepperVaryingBatchSize: the same sequence must produce identical
// tokens no matter what other sequences share its batches (here: alone, and
// padded with 1..max-1 decoy sequences).
func TestStepperVaryingBatchSize(t *testing.T) {
	cfg := testConfigs()["lstm"]
	m := NewLM(cfg)
	prompt := []int{3, 1, 4, 1, 5}
	const nTok = 8
	opts := sampling.DecodeOpts{Temperature: 0.7}
	want := m.GenerateOpts(prompt, nTok, opts, rng.New(42))

	for pad := 1; pad <= 4; pad++ {
		st := m.NewStepper(pad + 1)
		dec := sampling.NewDecoder(cfg.Vocab)
		r := rng.New(42)
		states := make([]*GenState, pad+1)
		ids := make([]int, pad+1)
		for i := range states {
			states[i] = m.NewGenState()
		}
		var lg []float32
		feed := func(tok int) {
			ids[0] = tok
			for i := 1; i <= pad; i++ {
				ids[i] = (tok + i) % cfg.Vocab // decoys
			}
			lg = st.Step(ids, states).Row(0)
		}
		for _, tok := range prompt {
			feed(tok)
		}
		for j := 0; j < nTok; j++ {
			next := dec.Sample(lg, opts, r)
			if next != want[j] {
				t.Fatalf("pad=%d token %d: %d != sequential %d", pad, j, next, want[j])
			}
			if j < nTok-1 {
				feed(next)
			}
		}
	}
}

// TestGenerateOptsFilters exercises top-k and nucleus decoding: outputs stay
// in range, are deterministic given the seed, and top-k=1 collapses to
// greedy regardless of temperature.
func TestGenerateOptsFilters(t *testing.T) {
	cfg := testConfigs()["lstm"]
	m := NewLM(cfg)
	prompt := []int{2, 7}
	for _, opts := range []sampling.DecodeOpts{
		{Temperature: 1.0, TopK: 5},
		{Temperature: 0.9, TopP: 0.8},
		{Temperature: 1.1, TopK: 12, TopP: 0.95},
	} {
		a := m.GenerateOpts(prompt, 10, opts, rng.New(7))
		b := m.GenerateOpts(prompt, 10, opts, rng.New(7))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("opts %+v not deterministic", opts)
			}
			if a[i] < 0 || a[i] >= cfg.Vocab {
				t.Fatalf("opts %+v produced out-of-range token %d", opts, a[i])
			}
		}
	}

	greedy := m.GenerateOpts(prompt, 10, sampling.DecodeOpts{Temperature: 0}, rng.New(1))
	top1 := m.GenerateOpts(prompt, 10, sampling.DecodeOpts{Temperature: 1.3, TopK: 1}, rng.New(2))
	for i := range greedy {
		if greedy[i] != top1[i] {
			t.Fatalf("top-k=1 diverged from greedy at token %d: %d vs %d", i, top1[i], greedy[i])
		}
	}
}

// TestGenerateAllocFlat is the per-token allocation-churn guard: generating
// 10× the tokens must not allocate a single extra object, because all step
// scratch lives in the Stepper and the Decoder. (The old Generate allocated
// fresh matrices every token; this pins the fix.)
func TestGenerateAllocFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation guards are not meaningful under -race")
	}
	for name, cfg := range testConfigs() {
		m := NewLM(cfg)
		prompt := []int{1, 2, 3}
		for _, opts := range []sampling.DecodeOpts{
			{Temperature: 0},
			{Temperature: 0.8},
		} {
			short := testing.AllocsPerRun(10, func() {
				m.GenerateOpts(prompt, 8, opts, rng.New(3))
			})
			long := testing.AllocsPerRun(10, func() {
				m.GenerateOpts(prompt, 80, opts, rng.New(3))
			})
			// Only the result slice may differ (append growth): allow a
			// couple of objects of slack, not the ~6 per token of old.
			if long-short > 4 {
				t.Errorf("%s opts %+v: 80-token run allocates %.0f more objects than 8-token run, want ≤ 4",
					name, opts, long-short)
			}
		}
	}
}

// TestGenerateDoesNotDisturbTraining: inference between two training steps
// must not change what the second step computes (state is explicit now, but
// keep the old guarantee pinned).
func TestGenerateDoesNotDisturbTraining(t *testing.T) {
	cfg := testConfigs()["lstm"]
	cfg.Stateful = true
	mkBatch := func(r *rng.RNG) ([][]int, [][]int) {
		const tt, bb = 4, 2
		in := make([][]int, tt)
		tg := make([][]int, tt)
		for s := 0; s < tt; s++ {
			in[s] = randomPrompt(r, cfg.Vocab, bb)
			tg[s] = randomPrompt(r, cfg.Vocab, bb)
		}
		return in, tg
	}

	run := func(generateBetween bool) float64 {
		m := NewLM(cfg)
		r := rng.New(33)
		in1, tg1 := mkBatch(r)
		in2, tg2 := mkBatch(r)
		m.ForwardBackward(in1, tg1, nil)
		if generateBetween {
			m.Generate([]int{1, 2}, 6, 0.9, rng.New(4))
		}
		res := m.ForwardBackward(in2, tg2, nil)
		return res.LossSum
	}

	if a, b := run(false), run(true); a != b {
		t.Fatalf("Generate disturbed training state: loss %v vs %v", a, b)
	}
}
