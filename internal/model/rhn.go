package model

import (
	"fmt"
	"math"

	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// RHN is a recurrent highway network layer (Zilly et al.), the architecture
// of the paper's character model (§IV-B: "a recurrent highway network (RHN)
// layer of depth 10, each with 1792 cells", after Hestness et al.).
//
// Each timestep applies Depth micro-layers to the recurrent state s with a
// coupled carry gate:
//
//	h_l = tanh(Wh·x·[l=1] + Rh_l·s_{l-1} + bh_l)
//	t_l = σ   (Wt·x·[l=1] + Rt_l·s_{l-1} + bt_l)
//	s_l = h_l⊙t_l + s_{l-1}⊙(1−t_l)
//
// The input projects in only at the first micro-layer; the layer output at
// step t is s_Depth, which becomes s_0 of step t+1.
type RHN struct {
	In, Hidden, Depth int

	// Wh, Wt project the input at micro-layer 1 (H×In).
	Wh, Wt *tensor.Matrix
	// Rh, Rt are the per-micro-layer recurrent weights (each H×H).
	Rh, Rt []*tensor.Matrix
	// Bh, Bt are per-micro-layer biases (each H). Bt starts negative so
	// the carry gate initially dominates (standard highway init).
	Bh, Bt [][]float32

	// qwh/qwt/qrh/qrt are the int8 shadows of the corresponding weights
	// (see quantize.go); non-nil routes stepInfer through the quantized
	// kernels.
	qwh, qwt *tensor.QMatrix
	qrh, qrt []*tensor.QMatrix

	gwh, gwt *tensor.Matrix
	grh, grt []*tensor.Matrix
	gbh, gbt [][]float32

	be tensor.Backend

	// forward caches
	xs []*tensor.Matrix
	// sStates[t][l] is s_l at step t, l in [0, Depth]; sStates[t][0] is
	// the incoming state.
	sStates [][]*tensor.Matrix
	hGate   [][]*tensor.Matrix // h_l per step/micro-layer
	tGate   [][]*tensor.Matrix // t_l per step/micro-layer

	// stateful training (see state.go)
	carry   bool
	carried *carriedState
}

// NewRHN returns an RHN layer with Xavier-uniform weights and carry-biased
// transform gates.
func NewRHN(in, hidden, depth int, r *rng.RNG) *RHN {
	if depth <= 0 {
		panic("model: RHN depth must be positive")
	}
	l := &RHN{
		In: in, Hidden: hidden, Depth: depth,
		Wh:  tensor.NewMatrix(hidden, in),
		Wt:  tensor.NewMatrix(hidden, in),
		gwh: tensor.NewMatrix(hidden, in),
		gwt: tensor.NewMatrix(hidden, in),
		be:  tensor.Serial{},
	}
	bound := math.Sqrt(6 / float64(in+hidden))
	l.Wh.RandomizeUniform(r, bound)
	l.Wt.RandomizeUniform(r, bound)
	rBound := math.Sqrt(6 / float64(2*hidden))
	for d := 0; d < depth; d++ {
		rh := tensor.NewMatrix(hidden, hidden)
		rt := tensor.NewMatrix(hidden, hidden)
		rh.RandomizeUniform(r, rBound)
		rt.RandomizeUniform(r, rBound)
		l.Rh = append(l.Rh, rh)
		l.Rt = append(l.Rt, rt)
		l.grh = append(l.grh, tensor.NewMatrix(hidden, hidden))
		l.grt = append(l.grt, tensor.NewMatrix(hidden, hidden))
		bh := make([]float32, hidden)
		bt := make([]float32, hidden)
		for i := range bt {
			bt[i] = -1 // bias toward carry at init
		}
		l.Bh = append(l.Bh, bh)
		l.Bt = append(l.Bt, bt)
		l.gbh = append(l.gbh, make([]float32, hidden))
		l.gbt = append(l.gbt, make([]float32, hidden))
	}
	return l
}

func (l *RHN) setBackend(be tensor.Backend) { l.be = be }

// Forward runs the layer over xs (T matrices of B×In) from a zero initial
// state, returning the T output states (B×H each).
func (l *RHN) Forward(xs []*tensor.Matrix) []*tensor.Matrix {
	t := len(xs)
	if t == 0 {
		return nil
	}
	batch := xs[0].Rows
	h := l.Hidden

	l.xs = xs
	l.sStates = make([][]*tensor.Matrix, t)
	l.hGate = make([][]*tensor.Matrix, t)
	l.tGate = make([][]*tensor.Matrix, t)

	sPrev, _ := initialState(l.carry, l.carried, batch, h, false)
	outs := make([]*tensor.Matrix, t)

	zxh := tensor.NewMatrix(batch, h)
	zxt := tensor.NewMatrix(batch, h)
	zrh := tensor.NewMatrix(batch, h)
	zrt := tensor.NewMatrix(batch, h)
	for step := 0; step < t; step++ {
		l.be.MatMulABT(zxh, xs[step], l.Wh)
		l.be.MatMulABT(zxt, xs[step], l.Wt)
		states := make([]*tensor.Matrix, l.Depth+1)
		hs := make([]*tensor.Matrix, l.Depth)
		ts := make([]*tensor.Matrix, l.Depth)
		states[0] = sPrev
		s := sPrev
		for d := 0; d < l.Depth; d++ {
			l.be.MatMulABT(zrh, s, l.Rh[d])
			l.be.MatMulABT(zrt, s, l.Rt[d])
			hg := tensor.NewMatrix(batch, h)
			tg := tensor.NewMatrix(batch, h)
			sNext := tensor.NewMatrix(batch, h)
			for b := 0; b < batch; b++ {
				var xh, xt []float32
				if d == 0 {
					xh, xt = zxh.Row(b), zxt.Row(b)
				}
				sr := s.Row(b)
				for j := 0; j < h; j++ {
					zh := float64(zrh.Row(b)[j] + l.Bh[d][j])
					zt := float64(zrt.Row(b)[j] + l.Bt[d][j])
					if d == 0 {
						zh += float64(xh[j])
						zt += float64(xt[j])
					}
					hv := math.Tanh(zh)
					tv := 1 / (1 + math.Exp(-zt))
					hg.Row(b)[j] = float32(hv)
					tg.Row(b)[j] = float32(tv)
					sNext.Row(b)[j] = float32(hv*tv + float64(sr[j])*(1-tv))
				}
			}
			hs[d], ts[d] = hg, tg
			states[d+1] = sNext
			s = sNext
		}
		l.sStates[step], l.hGate[step], l.tGate[step] = states, hs, ts
		outs[step] = s
		sPrev = s
	}
	if l.carry {
		// Detach the final state for the next batch (truncated BPTT).
		l.carried = &carriedState{H: sPrev.Clone()}
	}
	return outs
}

// Backward consumes dLoss/ds_Depth per timestep, returns dLoss/dx per
// timestep, and accumulates weight gradients.
func (l *RHN) Backward(dhs []*tensor.Matrix) []*tensor.Matrix {
	t := len(dhs)
	if t != len(l.sStates) {
		panic(fmt.Sprintf("model: RHN.Backward got %d steps, Forward ran %d", t, len(l.sStates)))
	}
	if t == 0 {
		return nil
	}
	batch := dhs[0].Rows
	h := l.Hidden

	dxs := make([]*tensor.Matrix, t)
	dsNext := tensor.NewMatrix(batch, h) // recurrent gradient from step+1
	dzh := tensor.NewMatrix(batch, h)
	dzt := tensor.NewMatrix(batch, h)
	tmp := tensor.NewMatrix(batch, h)

	for step := t - 1; step >= 0; step-- {
		ds := tensor.NewMatrix(batch, h)
		tensor.AddInPlace(ds.Data, dhs[step].Data)
		tensor.AddInPlace(ds.Data, dsNext.Data)

		dx := tensor.NewMatrix(batch, l.In)
		for d := l.Depth - 1; d >= 0; d-- {
			sIn := l.sStates[step][d]
			hg, tg := l.hGate[step][d], l.tGate[step][d]
			dsIn := tensor.NewMatrix(batch, h)
			for b := 0; b < batch; b++ {
				dsr := ds.Row(b)
				for j := 0; j < h; j++ {
					dsl := float64(dsr[j])
					hv := float64(hg.Row(b)[j])
					tv := float64(tg.Row(b)[j])
					sv := float64(sIn.Row(b)[j])

					dhv := dsl * tv
					dtv := dsl * (hv - sv)
					dsIn.Row(b)[j] = float32(dsl * (1 - tv))

					dzh.Row(b)[j] = float32(dhv * (1 - hv*hv))
					dzt.Row(b)[j] = float32(dtv * tv * (1 - tv))
				}
			}

			// Recurrent weight gradients and state gradient.
			l.be.MatMulATBAcc(l.grh[d], dzh, sIn)
			l.be.MatMulATBAcc(l.grt[d], dzt, sIn)
			for b := 0; b < batch; b++ {
				tensor.AddInPlace(l.gbh[d], dzh.Row(b))
				tensor.AddInPlace(l.gbt[d], dzt.Row(b))
			}
			l.be.MatMul(tmp, dzh, l.Rh[d])
			tensor.AddInPlace(dsIn.Data, tmp.Data)
			l.be.MatMul(tmp, dzt, l.Rt[d])
			tensor.AddInPlace(dsIn.Data, tmp.Data)

			// Input projection contributes at micro-layer 0 only.
			if d == 0 {
				l.be.MatMulATBAcc(l.gwh, dzh, l.xs[step])
				l.be.MatMulATBAcc(l.gwt, dzt, l.xs[step])
				dxTmp := tensor.NewMatrix(batch, l.In)
				l.be.MatMul(dxTmp, dzh, l.Wh)
				tensor.AddInPlace(dx.Data, dxTmp.Data)
				l.be.MatMul(dxTmp, dzt, l.Wt)
				tensor.AddInPlace(dx.Data, dxTmp.Data)
			}
			ds = dsIn
		}
		dxs[step] = dx
		dsNext = ds
	}
	return dxs
}

// stepInfer advances one inference timestep in place: x is the B×In input,
// s the B×H recurrent state (updated through all Depth micro-layers), and
// zxh/zxt/zrh/zrt are B×H scratch. Like the LSTM counterpart it writes no
// backward caches, allocates nothing, repeats Forward's arithmetic exactly,
// and keeps every row independent so batched and single-sequence stepping
// are bit-identical.
func (l *RHN) stepInfer(x, s, zxh, zxt, zrh, zrt *tensor.Matrix) {
	batch := x.Rows
	h := l.Hidden
	qmul(l.be, zxh, x, l.Wh, l.qwh)
	qmul(l.be, zxt, x, l.Wt, l.qwt)
	for d := 0; d < l.Depth; d++ {
		var qrh, qrt *tensor.QMatrix
		if l.qrh != nil {
			qrh, qrt = l.qrh[d], l.qrt[d]
		}
		qmul(l.be, zrh, s, l.Rh[d], qrh)
		qmul(l.be, zrt, s, l.Rt[d], qrt)
		for b := 0; b < batch; b++ {
			var xh, xt []float32
			if d == 0 {
				xh, xt = zxh.Row(b), zxt.Row(b)
			}
			sr := s.Row(b)
			for j := 0; j < h; j++ {
				zh := float64(zrh.Row(b)[j] + l.Bh[d][j])
				zt := float64(zrt.Row(b)[j] + l.Bt[d][j])
				if d == 0 {
					zh += float64(xh[j])
					zt += float64(xt[j])
				}
				hv := math.Tanh(zh)
				tv := 1 / (1 + math.Exp(-zt))
				sr[j] = float32(hv*tv + float64(sr[j])*(1-tv))
			}
		}
	}
}

// Params implements Layer.
func (l *RHN) Params() []Param {
	ps := []Param{
		{Name: "rhn.Wh", Value: l.Wh.Data, Grad: l.gwh.Data},
		{Name: "rhn.Wt", Value: l.Wt.Data, Grad: l.gwt.Data},
	}
	for d := 0; d < l.Depth; d++ {
		ps = append(ps,
			Param{Name: fmt.Sprintf("rhn.Rh%d", d), Value: l.Rh[d].Data, Grad: l.grh[d].Data},
			Param{Name: fmt.Sprintf("rhn.Rt%d", d), Value: l.Rt[d].Data, Grad: l.grt[d].Data},
			Param{Name: fmt.Sprintf("rhn.bh%d", d), Value: l.Bh[d], Grad: l.gbh[d]},
			Param{Name: fmt.Sprintf("rhn.bt%d", d), Value: l.Bt[d], Grad: l.gbt[d]},
		)
	}
	return ps
}

// ZeroGrads implements Layer.
func (l *RHN) ZeroGrads() { zeroAll(l.Params()) }
