package model

import (
	"fmt"
	"math"

	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

// FullSoftmaxLoss scores every vocabulary word: logits = h·Eᵀ over the
// output embedding E (V×D), then cross-entropy against the targets. The
// paper's character model uses this (§V-B: "full softmax was used instead
// of sampled softmax layer" because the vocabulary is tiny), and validation
// perplexity always does.
//
// Returns the summed cross-entropy (nats), token count, dLoss/dh (nil when
// computeGrad is false) and the dense dLoss/dE (nil likewise). Gradients
// are for the *mean* loss over the batch.
//
// be selects the compute backend for the logits and gradient products — the
// largest matmuls of a training step; nil means the serial reference.
func FullSoftmaxLoss(be tensor.Backend, h *tensor.Matrix, outEmb *tensor.Matrix, targets []int, computeGrad bool) (lossSum float64, count int, dh, dEmb *tensor.Matrix) {
	if be == nil {
		be = tensor.Serial{}
	}
	if h.Rows != len(targets) {
		panic(fmt.Sprintf("model: %d hidden rows, %d targets", h.Rows, len(targets)))
	}
	v := outEmb.Rows
	logits := tensor.NewMatrix(h.Rows, v)
	be.MatMulABT(logits, h, outEmb)

	count = len(targets)
	var dlogits *tensor.Matrix
	if computeGrad {
		dlogits = tensor.NewMatrix(h.Rows, v)
	}
	invCount := float32(1)
	if count > 0 {
		invCount = float32(1.0 / float64(count))
	}
	for b, target := range targets {
		if target < 0 || target >= v {
			panic(fmt.Sprintf("model: target %d outside vocabulary %d", target, v))
		}
		row := logits.Row(b)
		lse := tensor.LogSumExpRow(row)
		lossSum += lse - float64(row[target])
		if computeGrad {
			dr := dlogits.Row(b)
			for j, l := range row {
				p := float32(math.Exp(float64(l) - lse))
				dr[j] = p * invCount
			}
			dr[target] -= invCount
		}
	}
	if !computeGrad {
		return lossSum, count, nil, nil
	}
	dh = tensor.NewMatrix(h.Rows, h.Cols)
	be.MatMul(dh, dlogits, outEmb)
	dEmb = tensor.NewMatrix(v, h.Cols)
	be.MatMulATB(dEmb, dlogits, h)
	return lossSum, count, dh, dEmb
}

// SampledSoftmaxResult carries what a sampled-softmax step produces.
type SampledSoftmaxResult struct {
	// LossSum is the summed sampled cross-entropy (nats) over the batch.
	LossSum float64
	// Count is the number of scored tokens.
	Count int
	// DH is dLoss/dh for the mean loss (B×D).
	DH *tensor.Matrix
	// Candidates are the scored vocabulary ids (unique, targets included).
	Candidates []int
	// DEmb is the len(Candidates)×D gradient of the output embedding rows
	// — exactly the SparseGrad the §III exchange engines consume.
	DEmb *tensor.Matrix
}

// SampledSoftmaxLoss scores only the candidate set drawn by the rank's
// sampler (§II-A): S negatives from the log-uniform distribution plus the
// batch's target words, with the standard log-expected-count logit
// correction so the sampled loss estimates the full loss. be selects the
// compute backend (nil: the serial reference).
func SampledSoftmaxLoss(be tensor.Backend, h *tensor.Matrix, outEmb *tensor.Matrix, targets []int, s sampling.CandidateSampler, nSamples int) SampledSoftmaxResult {
	if be == nil {
		be = tensor.Serial{}
	}
	if h.Rows != len(targets) {
		panic(fmt.Sprintf("model: %d hidden rows, %d targets", h.Rows, len(targets)))
	}
	candidates := s.Sample(nSamples, targets)
	nc := len(candidates)
	candPos := make(map[int]int, nc)
	for i, c := range candidates {
		candPos[c] = i
	}

	// Candidate embedding block (nc×D) and logits (B×nc).
	candEmb := tensor.NewMatrix(nc, outEmb.Cols)
	tensor.GatherRows(candEmb, outEmb, candidates)
	logits := tensor.NewMatrix(h.Rows, nc)
	be.MatMulABT(logits, h, candEmb)

	// Subtract log(S·Q(c)) per candidate column.
	corr := make([]float32, nc)
	for i, c := range candidates {
		corr[i] = float32(s.LogExpectedCount(nSamples, c))
	}
	for b := 0; b < logits.Rows; b++ {
		row := logits.Row(b)
		for j := range row {
			row[j] -= corr[j]
		}
	}

	res := SampledSoftmaxResult{Count: len(targets), Candidates: candidates}
	dlogits := tensor.NewMatrix(h.Rows, nc)
	invCount := float32(1.0 / float64(len(targets)))
	for b, target := range targets {
		pos, ok := candPos[target]
		if !ok {
			panic("model: target missing from candidate set")
		}
		row := logits.Row(b)
		lse := tensor.LogSumExpRow(row)
		res.LossSum += lse - float64(row[pos])
		dr := dlogits.Row(b)
		for j, l := range row {
			p := float32(math.Exp(float64(l) - lse))
			dr[j] = p * invCount
		}
		dr[pos] -= invCount
	}

	res.DH = tensor.NewMatrix(h.Rows, h.Cols)
	be.MatMul(res.DH, dlogits, candEmb)
	res.DEmb = tensor.NewMatrix(nc, outEmb.Cols)
	be.MatMulATB(res.DEmb, dlogits, h)
	return res
}

// Perplexity converts a mean cross-entropy in nats to perplexity, the
// accuracy metric of Figures 5, 7, 8 and Table V.
func Perplexity(meanNats float64) float64 { return math.Exp(meanNats) }

// BitsPerChar converts a mean cross-entropy in nats to bits per character,
// the §V-D comparison metric (BPC = log2 perplexity).
func BitsPerChar(meanNats float64) float64 { return meanNats / math.Ln2 }

// CompressionRatio computes the §V-C metric: corpus bytes divided by
// (bits-per-char · chars / 8). The paper reports 6.3 for Tieba (perplexity
// 11.1 at 2.71 bytes/char) against 6.8 for the Amazon SOTA.
func CompressionRatio(bytesPerChar, bpc float64) float64 {
	return bytesPerChar * 8 / bpc
}
