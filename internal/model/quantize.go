package model

import "zipflm/internal/tensor"

// Quantized serving replicas. A trained checkpoint's weights are converted
// once — deterministically, round-to-nearest, per-chunk scales (the same
// scheme compress.Quant8 ships gradients with) — and the inference step path
// (Stepper, Generate, the serve batcher) switches to the int8 kernels.
// Single-token RNN decode is memory-bandwidth bound, so 4× smaller weight
// reads are a direct tok/s multiplier; §IV-B's Zipf argument for the wire
// applies unchanged to the serving memory bus.
//
// Quantization shadows the FP32 weights rather than replacing them: training
// and evaluation paths (Forward/Backward/EvalLoss) keep full precision, and
// only the inference kernels consult the shadows. The input embedding stays
// FP32 — it is gathered, never multiplied, so quantizing it would cost
// accuracy and buy no bandwidth on the matmul path.

// qmul computes dst = x·Wᵀ on the quantized kernels when qw is non-nil and
// the FP32 stream kernel otherwise. Batch-1 inputs route through MatVecQ8;
// the two q8 kernels are bit-identical per row (the tensor package's
// TestQ8KernelBitIdentity contract), so the routing never changes results.
func qmul(be tensor.Backend, dst, x *tensor.Matrix, w *tensor.Matrix, qw *tensor.QMatrix) {
	switch {
	case qw == nil:
		be.MatMulABTStream(dst, x, w)
	case x.Rows == 1:
		be.MatVecQ8(dst.Row(0), qw, x.Row(0))
	default:
		be.MatMulABTStreamQ8(dst, x, qw)
	}
}

// quantizeWeights builds the Linear layer's int8 shadow.
func (l *Linear) quantizeWeights(chunk int) {
	l.qw = tensor.QuantizeMatrix(l.W, chunk)
}

// quantizeWeights builds the LSTM's int8 shadows (input and recurrent
// projections; biases stay FP32 — they are O(H), not worth a scale block).
func (l *LSTM) quantizeWeights(chunk int) {
	l.qwx = tensor.QuantizeMatrix(l.Wx, chunk)
	l.qwh = tensor.QuantizeMatrix(l.Wh, chunk)
}

// quantizeWeights builds the RHN's int8 shadows (input projections plus
// every micro-layer's recurrent pair).
func (l *RHN) quantizeWeights(chunk int) {
	l.qwh = tensor.QuantizeMatrix(l.Wh, chunk)
	l.qwt = tensor.QuantizeMatrix(l.Wt, chunk)
	l.qrh = make([]*tensor.QMatrix, l.Depth)
	l.qrt = make([]*tensor.QMatrix, l.Depth)
	for d := 0; d < l.Depth; d++ {
		l.qrh[d] = tensor.QuantizeMatrix(l.Rh[d], chunk)
		l.qrt[d] = tensor.QuantizeMatrix(l.Rt[d], chunk)
	}
}

// QuantizeWeights converts this replica's inference path to int8 weights in
// place: the RNN, the projection and the output embedding gain quantized
// shadows that Stepper/Generate use from now on. Quantization is a pure
// function of the FP32 weights (round-to-nearest, tensor.DefaultQChunk-sized
// scale blocks), so a given checkpoint always yields the same q8 bytes.
// Training and evaluation are unaffected.
func (m *LM) QuantizeWeights() {
	m.qOutEmb = tensor.QuantizeMatrix(m.OutEmb, 0)
	m.proj.quantizeWeights(0)
	m.rnn.quantizeWeights(0)
}

// IsQuantized reports whether this replica's inference path runs on int8
// weights.
func (m *LM) IsQuantized() bool { return m.qOutEmb != nil }

// Quantize returns a new serving replica with this model's weights and a
// quantized inference path. The receiver is untouched, so a process can keep
// the FP32 model for evaluation while serving from the q8 copy.
func (m *LM) Quantize() *LM {
	q := NewLM(m.Cfg)
	q.CopyWeightsFrom(m)
	q.SetBackend(m.be)
	q.QuantizeWeights()
	return q
}
