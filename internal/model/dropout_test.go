package model

import (
	"math"
	"testing"

	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

func TestDropoutZeroIsNoop(t *testing.T) {
	d := newDropout(0, 1)
	x := tensor.NewMatrixFrom(1, 4, []float32{1, 2, 3, 4})
	d.Apply(x)
	for i, v := range x.Data {
		if v != float32(i+1) {
			t.Fatal("p=0 dropout modified data")
		}
	}
	dx := tensor.NewMatrixFrom(1, 4, []float32{1, 1, 1, 1})
	d.Backward(dx) // must not panic with nil mask
}

func TestDropoutRate(t *testing.T) {
	d := newDropout(0.3, 2)
	x := tensor.NewMatrix(100, 100)
	x.Fill(1)
	d.Apply(x)
	zeros := 0
	var sum float64
	for _, v := range x.Data {
		if v == 0 {
			zeros++
		}
		sum += float64(v)
	}
	rate := float64(zeros) / float64(len(x.Data))
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("drop rate = %v, want ~0.3", rate)
	}
	// Inverted scaling keeps the expected sum.
	if math.Abs(sum-float64(len(x.Data))) > 0.03*float64(len(x.Data)) {
		t.Errorf("expected activation mass not preserved: %v", sum)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := newDropout(0.5, 3)
	x := tensor.NewMatrix(1, 1000)
	x.Fill(1)
	d.Apply(x)
	dx := tensor.NewMatrix(1, 1000)
	dx.Fill(1)
	d.Backward(dx)
	for i := range x.Data {
		// Gradient must be zero exactly where the activation was dropped
		// and scaled identically where it survived.
		if (x.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatalf("mask mismatch at %d: x=%v dx=%v", i, x.Data[i], dx.Data[i])
		}
		if x.Data[i] != 0 && dx.Data[i] != x.Data[i] {
			t.Fatalf("scale mismatch at %d", i)
		}
	}
}

func TestDropoutPanics(t *testing.T) {
	for _, f := range []func(){
		func() { newDropout(-0.1, 1) },
		func() { newDropout(1.0, 1) },
		func() {
			d := newDropout(0.5, 1)
			x := tensor.NewMatrix(1, 4)
			d.Apply(x)
			d.Backward(tensor.NewMatrix(1, 5))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestDropoutTrainingStillConverges: an LM with dropout must still learn,
// and evaluation (unmasked) must be deterministic.
func TestDropoutTrainingStillConverges(t *testing.T) {
	cfg := Config{Vocab: 15, Dim: 8, Hidden: 10, RNN: KindLSTM, Dropout: 0.2, Seed: 1}
	m := NewLM(cfg)
	inputs := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	targets := [][]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}}
	var first, last float64
	for iter := 0; iter < 200; iter++ {
		m.ZeroGrads()
		res := m.ForwardBackward(inputs, targets, nil)
		mean := res.LossSum / float64(res.Count)
		if iter == 0 {
			first = mean
		}
		last = mean
		for _, p := range m.DenseParams() {
			for i := range p.Value {
				p.Value[i] -= 0.3 * p.Grad[i]
			}
		}
		for i, w := range res.InputGrad.Indices {
			tensor.Axpy(-0.3, m.InEmb.Row(w), res.InputGrad.Rows.Row(i))
		}
		for i, w := range res.OutputGrad.Indices {
			tensor.Axpy(-0.3, m.OutEmb.Row(w), res.OutputGrad.Rows.Row(i))
		}
	}
	if last > first*0.7 {
		t.Errorf("dropout training did not reduce loss: %v -> %v", first, last)
	}
	// Eval path is mask-free and deterministic.
	s := []int{0, 1, 2, 3, 4, 5}
	a, _ := m.EvalLoss(s, 3)
	b, _ := m.EvalLoss(s, 3)
	if a != b {
		t.Error("evaluation not deterministic under dropout config")
	}
	_ = rng.New(0) // keep import if future cases need it
}
