package model

import (
	"math"

	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// LSTM is a single-layer long short-term memory RNN processing a whole
// sequence with full backpropagation through time. It is the recurrent core
// of the paper's word language model (§IV-B: "one LSTM layer with 2048
// cells").
//
// Gate layout inside the fused 4H dimension: input, forget, cell (g),
// output.
type LSTM struct {
	In, Hidden int
	// Wx is 4H×In, Wh is 4H×H, B is 4H (forget-gate slice initialized
	// to 1, the standard trick for gradient flow early in training).
	Wx, Wh *tensor.Matrix
	B      []float32

	// qwx, qwh are the int8 shadows of Wx/Wh (see quantize.go); non-nil
	// routes stepInfer through the quantized kernels.
	qwx, qwh *tensor.QMatrix

	gwx, gwh *tensor.Matrix
	gb       []float32

	be tensor.Backend

	// forward caches, one entry per timestep
	xs, hs, cs      []*tensor.Matrix // inputs, hidden states, cell states
	gi, gf, gg, go_ []*tensor.Matrix // post-activation gates
	h0, c0          *tensor.Matrix

	// stateful training (see state.go)
	carry   bool
	carried *carriedState
}

// NewLSTM returns an LSTM with Xavier-uniform weights and forget bias 1.
func NewLSTM(in, hidden int, r *rng.RNG) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wx:  tensor.NewMatrix(4*hidden, in),
		Wh:  tensor.NewMatrix(4*hidden, hidden),
		B:   make([]float32, 4*hidden),
		gwx: tensor.NewMatrix(4*hidden, in),
		gwh: tensor.NewMatrix(4*hidden, hidden),
		gb:  make([]float32, 4*hidden),
		be:  tensor.Serial{},
	}
	l.Wx.RandomizeUniform(r, math.Sqrt(6/float64(in+4*hidden)))
	l.Wh.RandomizeUniform(r, math.Sqrt(6/float64(hidden+4*hidden)))
	for i := hidden; i < 2*hidden; i++ {
		l.B[i] = 1 // forget gate bias
	}
	return l
}

func (l *LSTM) setBackend(be tensor.Backend) { l.be = be }

// Forward runs the layer over xs (T matrices of B×In), starting from zero
// initial state, and returns the T hidden states (B×H each).
func (l *LSTM) Forward(xs []*tensor.Matrix) []*tensor.Matrix {
	t := len(xs)
	if t == 0 {
		return nil
	}
	batch := xs[0].Rows
	h := l.Hidden

	l.xs = xs
	l.hs = make([]*tensor.Matrix, t)
	l.cs = make([]*tensor.Matrix, t)
	l.gi = make([]*tensor.Matrix, t)
	l.gf = make([]*tensor.Matrix, t)
	l.gg = make([]*tensor.Matrix, t)
	l.go_ = make([]*tensor.Matrix, t)
	l.h0, l.c0 = initialState(l.carry, l.carried, batch, h, true)

	hPrev, cPrev := l.h0, l.c0
	zx := tensor.NewMatrix(batch, 4*h)
	zh := tensor.NewMatrix(batch, 4*h)
	for step := 0; step < t; step++ {
		// z = x Wxᵀ + h_prev Whᵀ + b
		l.be.MatMulABT(zx, xs[step], l.Wx)
		l.be.MatMulABT(zh, hPrev, l.Wh)
		gi := tensor.NewMatrix(batch, h)
		gf := tensor.NewMatrix(batch, h)
		gg := tensor.NewMatrix(batch, h)
		gout := tensor.NewMatrix(batch, h)
		ht := tensor.NewMatrix(batch, h)
		ct := tensor.NewMatrix(batch, h)
		for b := 0; b < batch; b++ {
			zxr, zhr := zx.Row(b), zh.Row(b)
			cpr := cPrev.Row(b)
			for j := 0; j < h; j++ {
				zi := float64(zxr[j] + zhr[j] + l.B[j])
				zf := float64(zxr[h+j] + zhr[h+j] + l.B[h+j])
				zg := float64(zxr[2*h+j] + zhr[2*h+j] + l.B[2*h+j])
				zo := float64(zxr[3*h+j] + zhr[3*h+j] + l.B[3*h+j])
				i := 1 / (1 + math.Exp(-zi))
				f := 1 / (1 + math.Exp(-zf))
				g := math.Tanh(zg)
				o := 1 / (1 + math.Exp(-zo))
				c := f*float64(cpr[j]) + i*g
				gi.Row(b)[j] = float32(i)
				gf.Row(b)[j] = float32(f)
				gg.Row(b)[j] = float32(g)
				gout.Row(b)[j] = float32(o)
				ct.Row(b)[j] = float32(c)
				ht.Row(b)[j] = float32(o * math.Tanh(c))
			}
		}
		l.gi[step], l.gf[step], l.gg[step], l.go_[step] = gi, gf, gg, gout
		l.hs[step], l.cs[step] = ht, ct
		hPrev, cPrev = ht, ct
	}
	if l.carry {
		// Detach the final state for the next batch (truncated BPTT).
		l.carried = &carriedState{H: hPrev.Clone(), C: cPrev.Clone()}
	}
	return l.hs
}

// Backward consumes dLoss/dh per timestep and returns dLoss/dx per
// timestep, accumulating weight gradients.
func (l *LSTM) Backward(dhs []*tensor.Matrix) []*tensor.Matrix {
	t := len(dhs)
	if t != len(l.hs) {
		panic("model: LSTM.Backward length mismatch with Forward")
	}
	if t == 0 {
		return nil
	}
	batch := dhs[0].Rows
	h := l.Hidden

	dxs := make([]*tensor.Matrix, t)
	dhNext := tensor.NewMatrix(batch, h) // gradient flowing from step+1's h
	dcNext := tensor.NewMatrix(batch, h)
	dz := tensor.NewMatrix(batch, 4*h)

	for step := t - 1; step >= 0; step-- {
		cPrev := l.c0
		hPrev := l.h0
		if step > 0 {
			cPrev = l.cs[step-1]
			hPrev = l.hs[step-1]
		}
		gi, gf, gg, gout := l.gi[step], l.gf[step], l.gg[step], l.go_[step]
		ct := l.cs[step]

		for b := 0; b < batch; b++ {
			dhr := dhs[step].Row(b)
			dhn := dhNext.Row(b)
			dcn := dcNext.Row(b)
			dzr := dz.Row(b)
			for j := 0; j < h; j++ {
				dh := float64(dhr[j] + dhn[j])
				c := float64(ct.Row(b)[j])
				tc := math.Tanh(c)
				i := float64(gi.Row(b)[j])
				f := float64(gf.Row(b)[j])
				g := float64(gg.Row(b)[j])
				o := float64(gout.Row(b)[j])

				do := dh * tc
				dc := float64(dcn[j]) + dh*o*(1-tc*tc)
				di := dc * g
				dg := dc * i
				df := dc * float64(cPrev.Row(b)[j])

				dzr[j] = float32(di * i * (1 - i))
				dzr[h+j] = float32(df * f * (1 - f))
				dzr[2*h+j] = float32(dg * (1 - g*g))
				dzr[3*h+j] = float32(do * o * (1 - o))

				dcn[j] = float32(dc * f)
			}
		}

		// Parameter gradients: gWx += dzᵀ x_t ; gWh += dzᵀ h_{t-1} ;
		// gb += colsum dz.
		l.be.MatMulATBAcc(l.gwx, dz, l.xs[step])
		l.be.MatMulATBAcc(l.gwh, dz, hPrev)
		for b := 0; b < batch; b++ {
			tensor.AddInPlace(l.gb, dz.Row(b))
		}

		// Input and recurrent gradients.
		dx := tensor.NewMatrix(batch, l.In)
		l.be.MatMul(dx, dz, l.Wx)
		dxs[step] = dx
		l.be.MatMul(dhNext, dz, l.Wh)
	}
	return dxs
}

// stepInfer advances one inference timestep in place: x is the B×In input,
// h and c the B×H recurrent state (updated to the new state), zx and zh B×4H
// scratch. No backward caches are written and nothing is allocated, so the
// serving hot loop can call it per token at zero cost beyond the math. The
// per-element arithmetic is exactly Forward's (same float64 intermediate
// precision, same order), and every row depends only on that row's input
// and state, so a batched step is bit-identical to B independent
// single-sequence steps.
func (l *LSTM) stepInfer(x, h, c, zx, zh *tensor.Matrix) {
	batch := x.Rows
	hd := l.Hidden
	qmul(l.be, zx, x, l.Wx, l.qwx)
	qmul(l.be, zh, h, l.Wh, l.qwh)
	for b := 0; b < batch; b++ {
		zxr, zhr := zx.Row(b), zh.Row(b)
		hr, cr := h.Row(b), c.Row(b)
		for j := 0; j < hd; j++ {
			zi := float64(zxr[j] + zhr[j] + l.B[j])
			zf := float64(zxr[hd+j] + zhr[hd+j] + l.B[hd+j])
			zg := float64(zxr[2*hd+j] + zhr[2*hd+j] + l.B[2*hd+j])
			zo := float64(zxr[3*hd+j] + zhr[3*hd+j] + l.B[3*hd+j])
			i := 1 / (1 + math.Exp(-zi))
			f := 1 / (1 + math.Exp(-zf))
			g := math.Tanh(zg)
			o := 1 / (1 + math.Exp(-zo))
			cNew := f*float64(cr[j]) + i*g
			cr[j] = float32(cNew)
			hr[j] = float32(o * math.Tanh(cNew))
		}
	}
}

// Params implements Layer.
func (l *LSTM) Params() []Param {
	return []Param{
		{Name: "lstm.Wx", Value: l.Wx.Data, Grad: l.gwx.Data},
		{Name: "lstm.Wh", Value: l.Wh.Data, Grad: l.gwh.Data},
		{Name: "lstm.b", Value: l.B, Grad: l.gb},
	}
}

// ZeroGrads implements Layer.
func (l *LSTM) ZeroGrads() { zeroAll(l.Params()) }
