package model

import (
	"fmt"

	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

// Speculative decoding (Leviathan et al. style, adapted to RNNs). A small
// draft model proposes up to k tokens by greedy argmax; the big target model
// verifies them and emission stops at the first position where the target's
// own draw disagrees with the next proposal. An RNN cannot batch the
// verification across time — the recurrence serializes the cell — but the
// cell is the cheap part: the V×D logits product dominates single-token
// decode, and that part has no recurrence. So verification runs j cheap
// serial cell steps (StepCells) and then ONE batched LogitsFor over all j
// positions, turning j memory-bound vector-matrix products into one
// matrix-matrix product.
//
// Exactness: every emitted token is drawn by sampling.Decoder.Sample from
// the target's true-prefix logits — row t of the batched call is
// bit-identical to the logits a sequential Step would produce after the same
// tokens (the Stepper per-row contract) — and Sample draws exactly the
// sequential schedule's variates (one per emitted token at temperature > 0,
// none at 0) because draft proposals are RNG-free argmax. Output is
// therefore bit-identical to GenerateOpts at EVERY temperature and filter
// setting, not only at temperature 0; what the draft model changes is the
// cost per token, never the tokens. The paper's Zipf skew is what makes the
// trade favorable: most next-token draws are head tokens a small model
// predicts as well as a large one, so acceptance rates stay high.

// SpecStats counts speculative-decoding work. Proposed/Accepted measure
// draft quality; DraftSteps measures overhead (draft model forward steps,
// including state-tracking steps that propose nothing).
type SpecStats struct {
	// Rounds is the number of verify rounds.
	Rounds int
	// Proposed is the number of draft proposals offered to the target.
	Proposed int
	// Accepted is the number of proposals the target accepted.
	Accepted int
	// DraftSteps is the total number of draft model steps.
	DraftSteps int
}

// AcceptanceRate returns Accepted/Proposed (0 before any proposal).
func (s SpecStats) AcceptanceRate() float64 {
	if s.Proposed == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Proposed)
}

// Add accumulates other into s (serving aggregates per-round stats with it).
func (s *SpecStats) Add(other SpecStats) {
	s.Rounds += other.Rounds
	s.Proposed += other.Proposed
	s.Accepted += other.Accepted
	s.DraftSteps += other.DraftSteps
}

// SpecDecoder generates from a target model with draft-assisted speculative
// decoding. All scratch is allocated at construction; it is not safe for
// concurrent use (the serving layer gives each worker its own).
type SpecDecoder struct {
	target, draft *LM
	k             int

	tst, dst *Stepper
	dec      *sampling.Decoder
	hStack   *tensor.Matrix // (k+1)×H verified-position hidden rows
	dh       *tensor.Matrix // 1×H draft StepCells sink for proposal-free steps
	tState   *GenState
	dState   *GenState
	tSnaps   []*GenState // tSnaps[t]: target state after consuming feed[0..t]
	dSnaps   []*GenState // dSnaps[t]: draft state after consuming feed[0..t]
	feed     []int       // feed[0] = last emitted/prompt token, feed[1..] = proposals
	ids      []int       // batch-1 scratch
	tIDs     []int
	tStates  []*GenState
	dStates  []*GenState

	stats SpecStats
}

// NewSpecDecoder pairs a target model with a draft that proposes k tokens
// per round. The models must share a vocabulary (they need not share an
// architecture — the intended pairing is a small RHN drafting for the big
// LSTM). k must be at least 1.
func NewSpecDecoder(target, draft *LM, k int) *SpecDecoder {
	if k < 1 {
		panic("model: speculative lookahead k must be at least 1")
	}
	if target.Cfg.Vocab != draft.Cfg.Vocab {
		panic(fmt.Sprintf("model: target vocab %d != draft vocab %d", target.Cfg.Vocab, draft.Cfg.Vocab))
	}
	sd := &SpecDecoder{
		target: target, draft: draft, k: k,
		tst:    target.NewStepper(k + 1),
		dst:    draft.NewStepper(1),
		dec:    sampling.NewDecoder(target.Cfg.Vocab),
		hStack: tensor.NewMatrix(k+1, target.Cfg.Hidden),
		dh:     tensor.NewMatrix(1, draft.Cfg.Hidden),
		tState: target.NewGenState(),
		dState: draft.NewGenState(),
		feed:   make([]int, k+1),
		ids:    make([]int, 1),
	}
	for t := 0; t <= k; t++ {
		sd.tSnaps = append(sd.tSnaps, target.NewGenState())
		sd.dSnaps = append(sd.dSnaps, draft.NewGenState())
	}
	sd.tIDs = make([]int, 1)
	sd.tStates = []*GenState{sd.tState}
	sd.dStates = []*GenState{sd.dState}
	return sd
}

// K returns the configured lookahead.
func (sd *SpecDecoder) K() int { return sd.k }

// Stats returns cumulative counters across every Generate call.
func (sd *SpecDecoder) Stats() SpecStats { return sd.stats }

// argmaxRow returns the index of the largest logit, first index winning
// ties — exactly sampling.Decoder's greedy rule, and RNG-free, which is what
// keeps the target's variate schedule sequential.
func argmaxRow(lg []float32) int {
	bi, bv := 0, lg[0]
	for i, v := range lg {
		if v > bv {
			bi, bv = i, v
		}
	}
	return bi
}

// Generate is a drop-in replacement for LM.GenerateOpts on the target model:
// same arguments, bitwise-identical output, fewer target logits products
// when the draft guesses well.
func (sd *SpecDecoder) Generate(prompt []int, n int, opts sampling.DecodeOpts, r *rng.RNG) []int {
	if len(prompt) == 0 {
		panic("model: Generate needs a non-empty prompt")
	}
	if err := opts.Validate(); err != nil {
		panic("model: " + err.Error())
	}
	for _, id := range prompt {
		if id < 0 || id >= sd.target.Cfg.Vocab {
			panic(fmt.Sprintf("model: prompt token %d outside vocabulary", id))
		}
	}

	sd.tState.Reset()
	sd.dState.Reset()

	// Warm both models on all prompt tokens but the last; the round
	// invariant below is "both models have consumed everything up to but
	// not including the newest token". Cell-only steps suffice — warm-up
	// logits are discarded.
	viewRows(sd.hStack, sd.k+1)
	for _, tok := range prompt[:len(prompt)-1] {
		sd.stepTarget(tok, 0)
		sd.stepDraft(tok)
	}

	out := make([]int, 0, n)
	last := prompt[len(prompt)-1]
	for len(out) < n {
		rem := n - len(out)
		j := sd.k + 1
		if rem < j {
			j = rem
		}

		// Draft phase: j-1 proposals by argmax, snapshotting the draft
		// state after each consumed token for rollback.
		sd.feed[0] = last
		for i := 1; i < j; i++ {
			sd.ids[0] = sd.feed[i-1]
			dlg := sd.dst.Step(sd.ids, sd.dStates)
			sd.dSnaps[i-1].CopyFrom(sd.dState)
			sd.feed[i] = argmaxRow(dlg.Row(0))
			sd.stats.DraftSteps++
		}

		// Verify phase: j serial cell steps through the target (cheap),
		// then one batched logits product over all j positions (the part
		// that was the whole cost of sequential decode).
		for t := 0; t < j; t++ {
			sd.stepTarget(sd.feed[t], t)
			sd.tSnaps[t].CopyFrom(sd.tState)
		}
		viewRows(sd.hStack, j)
		lg := sd.tst.LogitsFor(sd.hStack)
		viewRows(sd.hStack, sd.k+1)

		// Emission: row t holds the target's true logits after the prefix
		// plus the t accepted proposals. Draw with the sequential RNG
		// schedule; stop at the first draw that contradicts the next
		// proposal and roll both models back to that point.
		mismatch := -1
		emitted := 0
		for t := 0; t < j; t++ {
			next := sd.dec.Sample(lg.Row(t), opts, r)
			out = append(out, next)
			emitted++
			if t+1 < j && next != sd.feed[t+1] {
				mismatch = t
				break
			}
		}
		if mismatch >= 0 {
			sd.tState.CopyFrom(sd.tSnaps[mismatch])
			sd.dState.CopyFrom(sd.dSnaps[mismatch])
		} else if len(out) < n {
			// Full accept: the draft is one token behind the invariant
			// (it never consumed the round's final fed token).
			sd.stepDraft(sd.feed[j-1])
		}
		last = out[len(out)-1]

		sd.stats.Rounds++
		sd.stats.Proposed += j - 1
		sd.stats.Accepted += emitted - 1
	}
	return out
}

// stepTarget advances the target one cell step on tok, writing the hidden
// row into hStack[row].
func (sd *SpecDecoder) stepTarget(tok, row int) {
	sd.tIDs[0] = tok
	sd.tst.StepCells(sd.tIDs, sd.tStates, sd.hStack, row)
}

// stepDraft advances the draft one cell step on tok without proposing.
func (sd *SpecDecoder) stepDraft(tok int) {
	sd.ids[0] = tok
	sd.dst.StepCells(sd.ids, sd.dStates, sd.dh, 0)
	sd.stats.DraftSteps++
}
