package model

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"zipflm/internal/rng"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Vocab: 30, Dim: 6, Hidden: 8, RNN: KindLSTM, Sampled: 8, Seed: 5}
	m := NewLM(cfg)
	// Perturb weights away from the seed-determined init.
	m.InEmb.Data[3] = 42
	m.DenseParams()[0].Value[0] = -7

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != cfg {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.Cfg, cfg)
	}
	if loaded.InEmb.Data[3] != 42 {
		t.Error("input embedding not restored")
	}
	if loaded.DenseParams()[0].Value[0] != -7 {
		t.Error("dense parameter not restored")
	}

	// The restored model must behave identically.
	stream := []int{1, 2, 3, 4, 5, 6, 7, 8}
	la, ca := m.EvalLoss(stream, 4)
	lb, cb := loaded.EvalLoss(stream, 4)
	if la != lb || ca != cb {
		t.Fatalf("loaded model behaves differently: %v/%d vs %v/%d", la, ca, lb, cb)
	}
}

func TestCheckpointRHN(t *testing.T) {
	cfg := Config{Vocab: 20, Dim: 4, Hidden: 6, RNN: KindRHN, RHNDepth: 3, Stateful: true, Seed: 2}
	m := NewLM(cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Cfg.Stateful || loaded.Cfg.RHNDepth != 3 {
		t.Error("config fields lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Vocab: 25, Dim: 6, Hidden: 8, RNN: KindLSTM, Seed: 7}
	m := NewLM(cfg)
	a := m.Generate([]int{1, 2, 3}, 20, 1.0, rng.New(9))
	b := m.Generate([]int{1, 2, 3}, 20, 1.0, rng.New(9))
	if len(a) != 20 {
		t.Fatalf("generated %d tokens", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic for equal RNG seeds")
		}
		if a[i] < 0 || a[i] >= cfg.Vocab {
			t.Fatalf("token %d outside vocabulary", a[i])
		}
	}
}

func TestGenerateGreedyIsArgmax(t *testing.T) {
	cfg := Config{Vocab: 15, Dim: 5, Hidden: 6, RNN: KindRHN, RHNDepth: 2, Seed: 3}
	m := NewLM(cfg)
	a := m.Generate([]int{4}, 10, 0, rng.New(1))
	b := m.Generate([]int{4}, 10, 0, rng.New(99)) // RNG must not matter
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy generation depends on RNG")
		}
	}
}

// TestGenerateLearnsPattern: after training on a deterministic cycle the
// greedy continuation must follow the cycle.
func TestGenerateLearnsPattern(t *testing.T) {
	cfg := Config{Vocab: 10, Dim: 8, Hidden: 12, RNN: KindLSTM, Seed: 1}
	m := NewLM(cfg)
	const T, B = 8, 4
	inputs := make([][]int, T)
	targets := make([][]int, T)
	for step := 0; step < T; step++ {
		inputs[step] = make([]int, B)
		targets[step] = make([]int, B)
		for b := 0; b < B; b++ {
			inputs[step][b] = (step + b) % 10
			targets[step][b] = (step + b + 1) % 10
		}
	}
	for iter := 0; iter < 400; iter++ {
		m.ZeroGrads()
		res := m.ForwardBackward(inputs, targets, nil)
		for _, p := range m.DenseParams() {
			for i := range p.Value {
				p.Value[i] -= 0.5 * p.Grad[i]
			}
		}
		for i, w := range res.InputGrad.Indices {
			for c, v := range res.InputGrad.Rows.Row(i) {
				m.InEmb.Row(w)[c] -= 0.5 * v
			}
		}
		for i, w := range res.OutputGrad.Indices {
			for c, v := range res.OutputGrad.Rows.Row(i) {
				m.OutEmb.Row(w)[c] -= 0.5 * v
			}
		}
	}
	out := m.Generate([]int{0, 1, 2}, 5, 0, rng.New(1))
	want := []int{3, 4, 5, 6, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("greedy continuation %v, want %v", out, want)
		}
	}
}

func TestGenerateDoesNotDisturbState(t *testing.T) {
	cfg := Config{Vocab: 20, Dim: 5, Hidden: 6, RNN: KindLSTM, Stateful: true, Seed: 4}
	m := NewLM(cfg)
	inputs := [][]int{{1, 2}, {3, 4}}
	targets := [][]int{{2, 3}, {4, 5}}
	m.ZeroGrads()
	m.ForwardBackward(inputs, targets, nil)

	ref := NewLM(cfg)
	ref.CopyWeightsFrom(m)
	ref.ZeroGrads()
	ref.ForwardBackward(inputs, targets, nil)
	want := ref.ForwardBackward(inputs, targets, nil).LossSum

	m.Generate([]int{1, 2, 3}, 10, 1.0, rng.New(5))
	m.ZeroGrads()
	got := m.ForwardBackward(inputs, targets, nil).LossSum
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("generation disturbed training state: %v vs %v", got, want)
	}
}

func TestGeneratePanics(t *testing.T) {
	m := NewLM(Config{Vocab: 10, Dim: 4, Hidden: 4, RNN: KindLSTM, Seed: 1})
	for _, f := range []func(){
		func() { m.Generate(nil, 5, 1, rng.New(1)) },
		func() { m.Generate([]int{99}, 5, 1, rng.New(1)) },
		func() { m.Generate([]int{1}, 5, -1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestScore(t *testing.T) {
	m := NewLM(Config{Vocab: 12, Dim: 4, Hidden: 5, RNN: KindLSTM, Seed: 6})
	s := m.Score([]int{1, 2, 3, 4, 5}, 2)
	if math.IsNaN(s) || s <= 0 {
		t.Fatalf("Score = %v", s)
	}
	if got := m.Score([]int{1}, 2); !math.IsNaN(got) {
		t.Fatalf("Score on too-short stream = %v, want NaN", got)
	}
}
