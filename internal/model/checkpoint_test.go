package model

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"

	"zipflm/internal/rng"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Vocab: 30, Dim: 6, Hidden: 8, RNN: KindLSTM, Sampled: 8, Seed: 5}
	m := NewLM(cfg)
	// Perturb weights away from the seed-determined init.
	m.InEmb.Data[3] = 42
	m.DenseParams()[0].Value[0] = -7

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != cfg {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.Cfg, cfg)
	}
	if loaded.InEmb.Data[3] != 42 {
		t.Error("input embedding not restored")
	}
	if loaded.DenseParams()[0].Value[0] != -7 {
		t.Error("dense parameter not restored")
	}

	// The restored model must behave identically.
	stream := []int{1, 2, 3, 4, 5, 6, 7, 8}
	la, ca := m.EvalLoss(stream, 4)
	lb, cb := loaded.EvalLoss(stream, 4)
	if la != lb || ca != cb {
		t.Fatalf("loaded model behaves differently: %v/%d vs %v/%d", la, ca, lb, cb)
	}
}

func TestCheckpointRHN(t *testing.T) {
	cfg := Config{Vocab: 20, Dim: 4, Hidden: 6, RNN: KindRHN, RHNDepth: 3, Stateful: true, Seed: 2}
	m := NewLM(cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Cfg.Stateful || loaded.Cfg.RHNDepth != 3 {
		t.Error("config fields lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

// TestSaveDeterministicBytes: saving one model twice, and saving a
// separately-constructed identical model, must produce byte-identical
// files — the property the ckpt store's CRC/content-hash layer relies on
// (and what the sorted dense-parameter encoding fixed: the old map-based
// format serialized in random gob order).
func TestSaveDeterministicBytes(t *testing.T) {
	cfg := Config{Vocab: 30, Dim: 6, Hidden: 8, RNN: KindRHN, RHNDepth: 3, Seed: 11}
	var a, b, c bytes.Buffer
	m := NewLM(cfg)
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	twin := NewLM(cfg)
	if err := twin.Save(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same model differ")
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("saves of identically-constructed models differ")
	}
}

// TestLoadRejectsDamagedCheckpoints is the fuzz-style table over damaged
// model files: truncations and version skew must error, and no damaged
// input of any kind — including arbitrary bit flips, which gob cannot
// always detect — may panic or yield a half-initialized model.
func TestLoadRejectsDamagedCheckpoints(t *testing.T) {
	m := NewLM(Config{Vocab: 25, Dim: 5, Hidden: 6, RNN: KindLSTM, Sampled: 4, Seed: 8})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	tryLoad := func(name string, raw []byte, mustErr bool) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Load panicked: %v", name, r)
			}
		}()
		lm, err := Load(bytes.NewReader(raw))
		if mustErr && err == nil {
			t.Errorf("%s: Load accepted damaged input", name)
		}
		if (lm == nil) == (err == nil) {
			t.Errorf("%s: Load returned model=%v err=%v", name, lm != nil, err)
		}
	}

	for _, n := range []int{0, 1, 7, len(good) / 3, len(good) / 2, len(good) - 1} {
		tryLoad("truncated", good[:n], true)
	}
	// Version skew: a well-formed future-version file must be refused.
	var future bytes.Buffer
	if err := gob.NewEncoder(&future).Encode(checkpointFile{Version: checkpointVersion + 1}); err != nil {
		t.Fatal(err)
	}
	tryLoad("future-version", future.Bytes(), true)
	var zero bytes.Buffer
	if err := gob.NewEncoder(&zero).Encode(checkpointFile{Version: 0}); err != nil {
		t.Fatal(err)
	}
	tryLoad("version-zero", zero.Bytes(), true)
	// Bit flips: gob has no checksum, so a flip may or may not decode — the
	// contract is only no-panic and no half-state (full-state integrity is
	// the ckpt package's CRC framing).
	for off := 0; off < len(good); off += 13 {
		raw := append([]byte(nil), good...)
		raw[off] ^= 0x40
		tryLoad("bitflip", raw, false)
	}
}

// TestLoadAcceptsVersion1Map: files written by the old map-based format
// must keep loading.
func TestLoadAcceptsVersion1Map(t *testing.T) {
	cfg := Config{Vocab: 20, Dim: 4, Hidden: 5, RNN: KindLSTM, Seed: 6}
	m := NewLM(cfg)
	m.InEmb.Data[0] = 3.5
	v1 := checkpointFile{
		Version: 1,
		Cfg:     cfg,
		InEmb:   m.InEmb.Data,
		OutEmb:  m.OutEmb.Data,
		Dense:   map[string][]float32{},
	}
	for _, p := range m.DenseParams() {
		v1.Dense[p.Name] = p.Value
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v1); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.InEmb.Data[0] != 3.5 {
		t.Fatal("v1 checkpoint did not restore weights")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Vocab: 25, Dim: 6, Hidden: 8, RNN: KindLSTM, Seed: 7}
	m := NewLM(cfg)
	a := m.Generate([]int{1, 2, 3}, 20, 1.0, rng.New(9))
	b := m.Generate([]int{1, 2, 3}, 20, 1.0, rng.New(9))
	if len(a) != 20 {
		t.Fatalf("generated %d tokens", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic for equal RNG seeds")
		}
		if a[i] < 0 || a[i] >= cfg.Vocab {
			t.Fatalf("token %d outside vocabulary", a[i])
		}
	}
}

func TestGenerateGreedyIsArgmax(t *testing.T) {
	cfg := Config{Vocab: 15, Dim: 5, Hidden: 6, RNN: KindRHN, RHNDepth: 2, Seed: 3}
	m := NewLM(cfg)
	a := m.Generate([]int{4}, 10, 0, rng.New(1))
	b := m.Generate([]int{4}, 10, 0, rng.New(99)) // RNG must not matter
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy generation depends on RNG")
		}
	}
}

// TestGenerateLearnsPattern: after training on a deterministic cycle the
// greedy continuation must follow the cycle.
func TestGenerateLearnsPattern(t *testing.T) {
	cfg := Config{Vocab: 10, Dim: 8, Hidden: 12, RNN: KindLSTM, Seed: 1}
	m := NewLM(cfg)
	const T, B = 8, 4
	inputs := make([][]int, T)
	targets := make([][]int, T)
	for step := 0; step < T; step++ {
		inputs[step] = make([]int, B)
		targets[step] = make([]int, B)
		for b := 0; b < B; b++ {
			inputs[step][b] = (step + b) % 10
			targets[step][b] = (step + b + 1) % 10
		}
	}
	for iter := 0; iter < 400; iter++ {
		m.ZeroGrads()
		res := m.ForwardBackward(inputs, targets, nil)
		for _, p := range m.DenseParams() {
			for i := range p.Value {
				p.Value[i] -= 0.5 * p.Grad[i]
			}
		}
		for i, w := range res.InputGrad.Indices {
			for c, v := range res.InputGrad.Rows.Row(i) {
				m.InEmb.Row(w)[c] -= 0.5 * v
			}
		}
		for i, w := range res.OutputGrad.Indices {
			for c, v := range res.OutputGrad.Rows.Row(i) {
				m.OutEmb.Row(w)[c] -= 0.5 * v
			}
		}
	}
	out := m.Generate([]int{0, 1, 2}, 5, 0, rng.New(1))
	want := []int{3, 4, 5, 6, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("greedy continuation %v, want %v", out, want)
		}
	}
}

func TestGenerateDoesNotDisturbState(t *testing.T) {
	cfg := Config{Vocab: 20, Dim: 5, Hidden: 6, RNN: KindLSTM, Stateful: true, Seed: 4}
	m := NewLM(cfg)
	inputs := [][]int{{1, 2}, {3, 4}}
	targets := [][]int{{2, 3}, {4, 5}}
	m.ZeroGrads()
	m.ForwardBackward(inputs, targets, nil)

	ref := NewLM(cfg)
	ref.CopyWeightsFrom(m)
	ref.ZeroGrads()
	ref.ForwardBackward(inputs, targets, nil)
	want := ref.ForwardBackward(inputs, targets, nil).LossSum

	m.Generate([]int{1, 2, 3}, 10, 1.0, rng.New(5))
	m.ZeroGrads()
	got := m.ForwardBackward(inputs, targets, nil).LossSum
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("generation disturbed training state: %v vs %v", got, want)
	}
}

func TestGeneratePanics(t *testing.T) {
	m := NewLM(Config{Vocab: 10, Dim: 4, Hidden: 4, RNN: KindLSTM, Seed: 1})
	for _, f := range []func(){
		func() { m.Generate(nil, 5, 1, rng.New(1)) },
		func() { m.Generate([]int{99}, 5, 1, rng.New(1)) },
		func() { m.Generate([]int{1}, 5, -1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestScore(t *testing.T) {
	m := NewLM(Config{Vocab: 12, Dim: 4, Hidden: 5, RNN: KindLSTM, Seed: 6})
	s := m.Score([]int{1, 2, 3, 4, 5}, 2)
	if math.IsNaN(s) || s <= 0 {
		t.Fatalf("Score = %v", s)
	}
	if got := m.Score([]int{1}, 2); !math.IsNaN(got) {
		t.Fatalf("Score on too-short stream = %v, want NaN", got)
	}
}
