package model

import "zipflm/internal/tensor"

// Stateful training support. Real LM training feeds each batch lane a
// contiguous slice of the corpus and carries the RNN state across batches
// (truncated BPTT): gradients stop at the batch boundary but the forward
// state flows on, so the model can exploit context longer than one
// sequence. The recurrent layers implement this with a carried-state flag:
//
//	layer.SetCarry(true)
//	out1 := layer.Forward(batch1) // from zero state
//	out2 := layer.Forward(batch2) // from batch1's final state (detached)
//
// Backward never propagates into the carried state — the standard
// truncation. ResetState returns to a zero initial state (used at epoch
// boundaries); Snapshot/Restore let evaluation borrow the layer without
// disturbing training state.

// carriedState is the detached recurrent state shared by LSTM (h and c) and
// RHN (s only; C stays nil).
type carriedState struct {
	H, C *tensor.Matrix
}

func cloneMat(m *tensor.Matrix) *tensor.Matrix {
	if m == nil {
		return nil
	}
	return m.Clone()
}

// clone deep-copies the state.
func (s *carriedState) clone() *carriedState {
	if s == nil {
		return nil
	}
	return &carriedState{H: cloneMat(s.H), C: cloneMat(s.C)}
}

// SetCarry enables or disables state carry-over on the LSTM. Disabling also
// clears any held state.
func (l *LSTM) SetCarry(on bool) {
	l.carry = on
	if !on {
		l.carried = nil
	}
}

// ResetState zeroes the carried state (the next Forward starts fresh).
func (l *LSTM) ResetState() { l.carried = nil }

// SnapshotState returns an opaque copy of the carried state.
func (l *LSTM) SnapshotState() any { return l.carried.clone() }

// RestoreState reinstates a state from SnapshotState.
func (l *LSTM) RestoreState(s any) {
	if s == nil {
		l.carried = nil
		return
	}
	l.carried = s.(*carriedState).clone()
}

// SetCarry enables or disables state carry-over on the RHN.
func (l *RHN) SetCarry(on bool) {
	l.carry = on
	if !on {
		l.carried = nil
	}
}

// ResetState zeroes the carried state.
func (l *RHN) ResetState() { l.carried = nil }

// SnapshotState returns an opaque copy of the carried state.
func (l *RHN) SnapshotState() any { return l.carried.clone() }

// RestoreState reinstates a state from SnapshotState.
func (l *RHN) RestoreState(s any) {
	if s == nil {
		l.carried = nil
		return
	}
	l.carried = s.(*carriedState).clone()
}

// initialState returns the starting (h0, c0) for a forward pass of the
// given batch size: the carried state when enabled and shape-compatible,
// zeros otherwise. The returned matrices are owned by the caller.
func initialState(carry bool, carried *carriedState, batch, hidden int, needC bool) (h0, c0 *tensor.Matrix) {
	if carry && carried != nil && carried.H != nil && carried.H.Rows == batch && carried.H.Cols == hidden {
		h0 = carried.H.Clone()
		if needC && carried.C != nil {
			c0 = carried.C.Clone()
		}
	}
	if h0 == nil {
		h0 = tensor.NewMatrix(batch, hidden)
	}
	if needC && c0 == nil {
		c0 = tensor.NewMatrix(batch, hidden)
	}
	return h0, c0
}
