package model

import (
	"fmt"

	"zipflm/internal/core"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

// RNNKind selects the recurrent architecture.
type RNNKind int

const (
	// KindLSTM is the word-LM architecture (§IV-B).
	KindLSTM RNNKind = iota
	// KindRHN is the char-LM architecture (§IV-B).
	KindRHN
)

// Config describes a language model. Dimensions are free so the
// reproduction can train paper-shaped models at laptop scale.
type Config struct {
	// Vocab is |V| including <unk>.
	Vocab int
	// Dim is the embedding dimension D (input and output embeddings
	// share it, as §II-B notes is standard).
	Dim int
	// Hidden is the RNN cell count.
	Hidden int
	// RNN selects LSTM (word LM) or RHN (char LM).
	RNN RNNKind
	// RHNDepth is the micro-layer count for KindRHN (paper: 10).
	RHNDepth int
	// Sampled is the number of softmax samples per step; 0 selects the
	// full softmax (char LM).
	Sampled int
	// Stateful carries the RNN state across batches (truncated BPTT), the
	// way production LM training feeds contiguous corpus lanes.
	Stateful bool
	// Dropout is the training-time dropout probability on the RNN outputs
	// (§IV-B: the char model uses "Adam with weight decay and dropout");
	// 0 disables it. Evaluation and generation are never masked.
	Dropout float64
	// Seed initializes parameters deterministically.
	Seed uint64
}

// recurrent is the common interface of LSTM and RHN.
type recurrent interface {
	Layer
	Forward(xs []*tensor.Matrix) []*tensor.Matrix
	Backward(dhs []*tensor.Matrix) []*tensor.Matrix
	setBackend(tensor.Backend)
	// quantizeWeights builds int8 shadows for the inference step path
	// (see quantize.go).
	quantizeWeights(chunk int)
	// Stateful-training hooks (see state.go).
	SetCarry(bool)
	ResetState()
	SnapshotState() any
	RestoreState(any)
}

// LM is a full language model replica: input embedding → RNN → projection →
// output embedding + softmax. One replica lives on each simulated rank.
type LM struct {
	Cfg Config
	// InEmb and OutEmb are the V×D embedding matrices whose gradient
	// exchange the paper optimizes.
	InEmb, OutEmb *tensor.Matrix
	rnn           recurrent
	proj          *Linear
	drop          *dropout
	be            tensor.Backend
	// qOutEmb is the int8 shadow of OutEmb for the quantized inference
	// path (see quantize.go); nil on an FP32 replica.
	qOutEmb *tensor.QMatrix

	// caches from ForwardBackward
	flatIDs []int
}

// NewLM builds a model from cfg with deterministic initialization.
func NewLM(cfg Config) *LM {
	if cfg.Vocab <= 0 || cfg.Dim <= 0 || cfg.Hidden <= 0 {
		panic("model: Vocab, Dim and Hidden must be positive")
	}
	r := rng.New(cfg.Seed)
	m := &LM{
		Cfg:    cfg,
		InEmb:  tensor.NewMatrix(cfg.Vocab, cfg.Dim),
		OutEmb: tensor.NewMatrix(cfg.Vocab, cfg.Dim),
	}
	m.InEmb.RandomizeNormal(r, 0.05)
	m.OutEmb.RandomizeNormal(r, 0.05)
	switch cfg.RNN {
	case KindLSTM:
		m.rnn = NewLSTM(cfg.Dim, cfg.Hidden, r)
	case KindRHN:
		depth := cfg.RHNDepth
		if depth == 0 {
			depth = 2
		}
		m.rnn = NewRHN(cfg.Dim, cfg.Hidden, depth, r)
	default:
		panic(fmt.Sprintf("model: unknown RNN kind %d", cfg.RNN))
	}
	m.proj = NewLinear(cfg.Hidden, cfg.Dim, r)
	m.rnn.SetCarry(cfg.Stateful)
	m.drop = newDropout(cfg.Dropout, cfg.Seed^0x5bd1e995)
	m.SetBackend(tensor.Default())
	return m
}

// SetBackend routes every matmul of this replica — forward, backward, and
// the batched inference Stepper — through be (nil restores the serial
// reference). The backend is a runtime property, deliberately outside
// Config: checkpoints gob-encode Config and Resume compares it exactly, and
// a resumed run must be free to use a different worker count while staying
// bit-identical — which every backend guarantees. Existing Steppers keep
// the backend they were built with; construct them after SetBackend.
func (m *LM) SetBackend(be tensor.Backend) {
	if be == nil {
		be = tensor.Serial{}
	}
	m.be = be
	m.rnn.setBackend(be)
	m.proj.setBackend(be)
}

// Backend returns the compute backend this replica currently uses.
func (m *LM) Backend() tensor.Backend { return m.be }

// DenseLayers returns the layers whose gradients synchronize with a plain
// ALLREDUCE (the RNN and projection — §II-B: "to update the RNN parameters,
// the models perform an ALLREDUCE").
func (m *LM) DenseLayers() []Layer { return []Layer{m.rnn, m.proj} }

// DenseParams flattens DenseLayers' parameters.
func (m *LM) DenseParams() []Param {
	var ps []Param
	for _, l := range m.DenseLayers() {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all dense gradient accumulators.
func (m *LM) ZeroGrads() {
	for _, l := range m.DenseLayers() {
		l.ZeroGrads()
	}
}

// StepResult is one training step's losses and embedding gradients. Dense
// layer gradients accumulate inside the layers (DenseParams).
type StepResult struct {
	// LossSum is the summed training cross-entropy in nats; Count the
	// token count (mean loss = LossSum/Count).
	LossSum float64
	Count   int
	// InputGrad is the input-embedding sparse gradient (one row per
	// token) for the §III exchange.
	InputGrad core.SparseGrad
	// OutputGrad is the output-embedding sparse gradient. For the full
	// softmax it covers every vocabulary row (dense in sparse clothing);
	// for sampled softmax it covers the candidate set only.
	OutputGrad core.SparseGrad
}

// BackwardHook observes backpropagation progress: the trainer's overlap
// path registers one to start reducing a dense layer's gradients the moment
// that layer's Backward finishes, while earlier layers are still
// backpropagating. The hook is called once per dense layer, in backward
// order (projection first, RNN last); when it fires, every Param of that
// layer holds its final gradient for this step.
type BackwardHook func(layer Layer)

// ForwardBackward runs one training step on a batch laid out as
// inputs[t][b] / targets[t][b] (T timesteps × B sequences). For sampled
// softmax pass the rank's sampler; with sampler == nil (or cfg.Sampled == 0)
// the full softmax is used.
func (m *LM) ForwardBackward(inputs, targets [][]int, sampler sampling.CandidateSampler) StepResult {
	return m.ForwardBackwardHooked(inputs, targets, sampler, nil)
}

// ForwardBackwardHooked is ForwardBackward with a per-layer gradient-ready
// callback (see BackwardHook); hook may be nil.
func (m *LM) ForwardBackwardHooked(inputs, targets [][]int, sampler sampling.CandidateSampler, hook BackwardHook) StepResult {
	t := len(inputs)
	if t == 0 || len(targets) != t {
		panic("model: inputs/targets must have equal positive length")
	}
	batch := len(inputs[0])

	// Input embedding lookup per timestep.
	xs := make([]*tensor.Matrix, t)
	flatIDs := make([]int, 0, t*batch)
	for step := 0; step < t; step++ {
		if len(inputs[step]) != batch || len(targets[step]) != batch {
			panic("model: ragged batch")
		}
		x := tensor.NewMatrix(batch, m.Cfg.Dim)
		tensor.GatherRows(x, m.InEmb, inputs[step])
		xs[step] = x
		flatIDs = append(flatIDs, inputs[step]...)
	}
	m.flatIDs = flatIDs

	// RNN, then the projection applied to all timesteps stacked into one
	// (T·B)×H block so the Linear layer holds a single forward cache.
	hs := m.rnn.Forward(xs)
	hStacked := tensor.NewMatrix(t*batch, m.Cfg.Hidden)
	flatTargets := make([]int, 0, t*batch)
	for step := 0; step < t; step++ {
		copy(hStacked.Data[step*batch*m.Cfg.Hidden:], hs[step].Data)
		flatTargets = append(flatTargets, targets[step]...)
	}
	m.drop.Apply(hStacked)
	pStacked := m.proj.Forward(hStacked)

	res := StepResult{}
	var dp *tensor.Matrix
	if m.Cfg.Sampled > 0 && sampler != nil {
		out := SampledSoftmaxLoss(m.be, pStacked, m.OutEmb, flatTargets, sampler, m.Cfg.Sampled)
		res.LossSum, res.Count = out.LossSum, out.Count
		dp = out.DH
		res.OutputGrad = core.SparseGrad{Indices: out.Candidates, Rows: out.DEmb}
	} else {
		lossSum, count, dh, dEmb := FullSoftmaxLoss(m.be, pStacked, m.OutEmb, flatTargets, true)
		res.LossSum, res.Count = lossSum, count
		dp = dh
		allIdx := make([]int, m.Cfg.Vocab)
		for i := range allIdx {
			allIdx[i] = i
		}
		res.OutputGrad = core.SparseGrad{Indices: allIdx, Rows: dEmb}
	}

	// Backward through projection, dropout, RNN, embedding.
	dhStacked := m.proj.Backward(dp)
	if hook != nil {
		hook(m.proj)
	}
	m.drop.Backward(dhStacked)
	dhs := make([]*tensor.Matrix, t)
	for step := 0; step < t; step++ {
		dh := tensor.NewMatrix(batch, m.Cfg.Hidden)
		copy(dh.Data, dhStacked.Data[step*batch*m.Cfg.Hidden:(step+1)*batch*m.Cfg.Hidden])
		dhs[step] = dh
	}
	dxs := m.rnn.Backward(dhs)
	if hook != nil {
		hook(m.rnn)
	}

	inRows := tensor.NewMatrix(t*batch, m.Cfg.Dim)
	for step := 0; step < t; step++ {
		copy(inRows.Data[step*batch*m.Cfg.Dim:], dxs[step].Data)
	}
	res.InputGrad = core.SparseGrad{Indices: flatIDs, Rows: inRows}
	return res
}

// EvalLoss computes the full-softmax cross-entropy (nats, summed) over a
// token stream without touching gradients — the validation perplexity of
// Figures 5, 7 and 8. The stream is chunked into length-seqLen sequences.
func (m *LM) EvalLoss(stream []int, seqLen int) (lossSum float64, count int) {
	if seqLen <= 0 {
		panic("model: seqLen must be positive")
	}
	// Borrow the RNN without disturbing training state; within the
	// evaluation the state carries across chunks so long-range context is
	// scored fairly.
	saved := m.rnn.SnapshotState()
	m.rnn.ResetState()
	defer m.rnn.RestoreState(saved)
	for lo := 0; lo+1 < len(stream); lo += seqLen {
		hi := lo + seqLen
		if hi+1 > len(stream) {
			hi = len(stream) - 1
		}
		t := hi - lo
		if t == 0 {
			break
		}
		inputs := make([][]int, t)
		targets := make([][]int, t)
		for step := 0; step < t; step++ {
			inputs[step] = []int{stream[lo+step]}
			targets[step] = []int{stream[lo+step+1]}
		}
		xs := make([]*tensor.Matrix, t)
		for step := 0; step < t; step++ {
			x := tensor.NewMatrix(1, m.Cfg.Dim)
			tensor.GatherRows(x, m.InEmb, inputs[step])
			xs[step] = x
		}
		hs := m.rnn.Forward(xs)
		hStacked := tensor.NewMatrix(t, m.Cfg.Hidden)
		flatTargets := make([]int, t)
		for step := 0; step < t; step++ {
			copy(hStacked.Data[step*m.Cfg.Hidden:], hs[step].Data)
			flatTargets[step] = targets[step][0]
		}
		p := m.proj.Forward(hStacked)
		l, c, _, _ := FullSoftmaxLoss(m.be, p, m.OutEmb, flatTargets, false)
		// Clear the projection's forward cache (no backward follows).
		m.proj.x = nil
		lossSum += l
		count += c
	}
	return lossSum, count
}

// ResetRNNState zeroes the carried recurrent state (used at epoch
// boundaries in stateful training).
func (m *LM) ResetRNNState() { m.rnn.ResetState() }

// RNGState returns the model's private RNG stream state (the dropout mask
// generator — the only stochastic consumer inside a training step). The
// checkpoint subsystem persists it per rank so a resumed run draws the
// exact masks the uninterrupted run would have drawn.
func (m *LM) RNGState() [4]uint64 { return m.drop.r.State() }

// SetRNGState restores a stream captured by RNGState.
func (m *LM) SetRNGState(s [4]uint64) { m.drop.r.SetState(s) }

// CarriedState is the serializable form of the stateful-training recurrent
// state (truncated-BPTT carry). A zero value (nil H) means "no carried
// state": the next forward pass starts from zeros.
type CarriedState struct {
	// H and C are the carried hidden/cell matrices in row-major order
	// (C is nil for RHN, which has no cell state).
	H, C []float32
	// Rows and Cols are the matrix shape (batch × hidden).
	Rows, Cols int
}

// CarriedRNNState exports the current carried recurrent state.
func (m *LM) CarriedRNNState() CarriedState {
	snap, _ := m.rnn.SnapshotState().(*carriedState)
	if snap == nil || snap.H == nil {
		return CarriedState{}
	}
	cs := CarriedState{
		H:    append([]float32(nil), snap.H.Data...),
		Rows: snap.H.Rows,
		Cols: snap.H.Cols,
	}
	if snap.C != nil {
		cs.C = append([]float32(nil), snap.C.Data...)
	}
	return cs
}

// SetCarriedRNNState restores a state exported by CarriedRNNState. A zero
// value clears the carry (equivalent to ResetRNNState).
func (m *LM) SetCarriedRNNState(cs CarriedState) error {
	if cs.H == nil {
		m.rnn.ResetState()
		return nil
	}
	if cs.Rows <= 0 || cs.Cols <= 0 || len(cs.H) != cs.Rows*cs.Cols {
		return fmt.Errorf("model: carried state %d×%d does not match %d hidden values", cs.Rows, cs.Cols, len(cs.H))
	}
	if cs.C != nil && len(cs.C) != cs.Rows*cs.Cols {
		return fmt.Errorf("model: carried cell state has %d values, want %d", len(cs.C), cs.Rows*cs.Cols)
	}
	st := &carriedState{H: tensor.NewMatrix(cs.Rows, cs.Cols)}
	copy(st.H.Data, cs.H)
	if cs.C != nil {
		st.C = tensor.NewMatrix(cs.Rows, cs.Cols)
		copy(st.C.Data, cs.C)
	}
	m.rnn.RestoreState(st)
	return nil
}

// CopyWeightsFrom copies every parameter of src into m (used to give all
// ranks identical replicas at initialization, the §II-B invariant "the
// model parameters on all GPUs are the same").
func (m *LM) CopyWeightsFrom(src *LM) {
	copy(m.InEmb.Data, src.InEmb.Data)
	copy(m.OutEmb.Data, src.OutEmb.Data)
	dst := m.DenseParams()
	from := src.DenseParams()
	if len(dst) != len(from) {
		panic("model: replica shape mismatch")
	}
	for i := range dst {
		if dst[i].Name != from[i].Name || len(dst[i].Value) != len(from[i].Value) {
			panic("model: replica parameter mismatch at " + dst[i].Name)
		}
		copy(dst[i].Value, from[i].Value)
	}
}
