package model

import (
	"math"
	"testing"

	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

// numGradCheck compares analytic parameter gradients against central
// differences of the scalar loss function. loss() must be a pure function
// of the current parameter values; backward() must populate grads for the
// mean loss.
func numGradCheck(t *testing.T, name string, params []Param, loss func() float64, tol float64) {
	t.Helper()
	const eps = 1e-2
	for _, p := range params {
		stride := len(p.Value)/7 + 1 // probe a spread of coordinates
		for i := 0; i < len(p.Value); i += stride {
			orig := p.Value[i]
			p.Value[i] = orig + eps
			up := loss()
			p.Value[i] = orig - eps
			down := loss()
			p.Value[i] = orig
			want := (up - down) / (2 * eps)
			got := float64(p.Grad[i])
			diff := math.Abs(got - want)
			scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
			if diff/scale > tol {
				t.Errorf("%s %s[%d]: analytic %v vs numeric %v", name, p.Name, i, got, want)
			}
		}
	}
}

func TestLinearGradient(t *testing.T) {
	r := rng.New(1)
	l := NewLinear(3, 4, r)
	x := tensor.NewMatrix(5, 3)
	x.RandomizeNormal(r, 1)
	target := tensor.NewMatrix(5, 4)
	target.RandomizeNormal(r, 1)

	// Loss: mean squared distance to a fixed target.
	loss := func() float64 {
		y := l.Forward(x)
		l.x = nil
		var sum float64
		for i := range y.Data {
			d := float64(y.Data[i] - target.Data[i])
			sum += d * d
		}
		return sum / float64(len(y.Data))
	}
	y := l.Forward(x)
	dy := tensor.NewMatrix(5, 4)
	for i := range dy.Data {
		dy.Data[i] = 2 * (y.Data[i] - target.Data[i]) / float32(len(y.Data))
	}
	l.ZeroGrads()
	dx := l.Backward(dy)
	numGradCheck(t, "linear", l.Params(), loss, 2e-2)

	// Input gradient via the same check on one input coordinate.
	const eps = 1e-2
	orig := x.Data[0]
	x.Data[0] = orig + eps
	up := loss()
	x.Data[0] = orig - eps
	down := loss()
	x.Data[0] = orig
	want := (up - down) / (2 * eps)
	if math.Abs(float64(dx.Data[0])-want) > 2e-2*math.Max(1, math.Abs(want)) {
		t.Errorf("linear dx[0]: analytic %v vs numeric %v", dx.Data[0], want)
	}
}

// lmMeanLoss is a helper computing the current mean loss of an LM on a
// fixed batch with the full softmax (pure function of weights).
func lmMeanLoss(m *LM, inputs, targets [][]int) float64 {
	t := len(inputs)
	batch := len(inputs[0])
	xs := make([]*tensor.Matrix, t)
	for step := 0; step < t; step++ {
		x := tensor.NewMatrix(batch, m.Cfg.Dim)
		tensor.GatherRows(x, m.InEmb, inputs[step])
		xs[step] = x
	}
	hs := m.rnn.Forward(xs)
	hStacked := tensor.NewMatrix(t*batch, m.Cfg.Hidden)
	flat := make([]int, 0, t*batch)
	for step := 0; step < t; step++ {
		copy(hStacked.Data[step*batch*m.Cfg.Hidden:], hs[step].Data)
		flat = append(flat, targets[step]...)
	}
	p := m.proj.Forward(hStacked)
	m.proj.x = nil
	lossSum, count, _, _ := FullSoftmaxLoss(nil, p, m.OutEmb, flat, false)
	return lossSum / float64(count)
}

func gradCheckLM(t *testing.T, kind RNNKind, depth int) {
	t.Helper()
	cfg := Config{Vocab: 11, Dim: 5, Hidden: 6, RNN: kind, RHNDepth: depth, Seed: 3}
	m := NewLM(cfg)
	r := rng.New(9)
	const T, B = 4, 3
	inputs := make([][]int, T)
	targets := make([][]int, T)
	for step := 0; step < T; step++ {
		inputs[step] = make([]int, B)
		targets[step] = make([]int, B)
		for b := 0; b < B; b++ {
			inputs[step][b] = r.Intn(cfg.Vocab)
			targets[step][b] = r.Intn(cfg.Vocab)
		}
	}

	m.ZeroGrads()
	res := m.ForwardBackward(inputs, targets, nil)
	if res.Count != T*B {
		t.Fatalf("count = %d, want %d", res.Count, T*B)
	}

	loss := func() float64 { return lmMeanLoss(m, inputs, targets) }
	numGradCheck(t, "lm-dense", m.DenseParams(), loss, 5e-2)

	// Input-embedding gradient: accumulate sparse rows per word (the rows
	// carry mean-loss scaling already, flowing from the mean-scaled
	// dlogits), compare against numerical derivatives.
	accum := make(map[int][]float64)
	for i, w := range res.InputGrad.Indices {
		row := accum[w]
		if row == nil {
			row = make([]float64, cfg.Dim)
			accum[w] = row
		}
		for c, v := range res.InputGrad.Rows.Row(i) {
			row[c] += float64(v)
		}
	}
	const eps = 1e-2
	checked := 0
	for w, row := range accum {
		for c := 0; c < cfg.Dim; c += 2 {
			orig := m.InEmb.At(w, c)
			m.InEmb.Set(w, c, orig+eps)
			up := loss()
			m.InEmb.Set(w, c, orig-eps)
			down := loss()
			m.InEmb.Set(w, c, orig)
			want := (up - down) / (2 * eps)
			scale := math.Max(math.Abs(want), math.Max(math.Abs(row[c]), 0.02))
			if math.Abs(row[c]-want) > 0.1*scale {
				t.Errorf("inEmb[%d,%d]: analytic %v vs numeric %v", w, c, row[c], want)
			}
		}
		checked++
		if checked == 3 {
			break
		}
	}

	// Output-embedding gradient (full softmax → covers all rows).
	og := res.OutputGrad
	for i, w := range og.Indices[:3] {
		c := 1
		orig := m.OutEmb.At(w, c)
		m.OutEmb.Set(w, c, orig+eps)
		up := loss()
		m.OutEmb.Set(w, c, orig-eps)
		down := loss()
		m.OutEmb.Set(w, c, orig)
		want := (up - down) / (2 * eps)
		got := float64(og.Rows.At(i, c))
		if math.Abs(got-want) > 5e-2*math.Max(1, math.Abs(want)) {
			t.Errorf("outEmb[%d,%d]: analytic %v vs numeric %v", w, c, got, want)
		}
	}
}

func TestLSTMLMGradient(t *testing.T) { gradCheckLM(t, KindLSTM, 0) }
func TestRHNLMGradient(t *testing.T)  { gradCheckLM(t, KindRHN, 3) }

func TestSampledSoftmaxGradient(t *testing.T) {
	r := rng.New(5)
	const B, D, V, S = 4, 5, 40, 12
	h := tensor.NewMatrix(B, D)
	h.RandomizeNormal(r, 1)
	emb := tensor.NewMatrix(V, D)
	emb.RandomizeNormal(r, 0.5)
	targets := []int{3, 17, 3, 29}

	// The candidate set must be identical across numerical probes, so the
	// sampler is re-seeded per evaluation.
	loss := func() float64 {
		s := sampling.NewSampler(V, 77)
		res := SampledSoftmaxLoss(nil, h, emb, targets, s, S)
		return res.LossSum / float64(res.Count)
	}
	s := sampling.NewSampler(V, 77)
	res := SampledSoftmaxLoss(nil, h, emb, targets, s, S)

	const eps = 1e-3
	// dH check.
	for _, i := range []int{0, 7, 13} {
		orig := h.Data[i]
		h.Data[i] = orig + eps
		up := loss()
		h.Data[i] = orig - eps
		down := loss()
		h.Data[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(float64(res.DH.Data[i])-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Errorf("dH[%d]: analytic %v vs numeric %v", i, res.DH.Data[i], want)
		}
	}
	// dEmb check on candidate rows.
	for ci, w := range res.Candidates[:4] {
		c := 2
		orig := emb.At(w, c)
		emb.Set(w, c, orig+eps)
		up := loss()
		emb.Set(w, c, orig-eps)
		down := loss()
		emb.Set(w, c, orig)
		want := (up - down) / (2 * eps)
		got := float64(res.DEmb.At(ci, c))
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Errorf("dEmb[%d,%d]: analytic %v vs numeric %v", w, c, got, want)
		}
	}
}

func TestSampledLossApproximatesFullLoss(t *testing.T) {
	r := rng.New(6)
	const B, D, V = 8, 6, 50
	h := tensor.NewMatrix(B, D)
	h.RandomizeNormal(r, 0.5)
	emb := tensor.NewMatrix(V, D)
	emb.RandomizeNormal(r, 0.3)
	targets := make([]int, B)
	for i := range targets {
		targets[i] = r.Intn(V)
	}
	fullSum, fullCount, _, _ := FullSoftmaxLoss(nil, h, emb, targets, false)
	full := fullSum / float64(fullCount)

	// The sampled loss is a Jensen-biased *under*-estimate of the full
	// loss (fewer competitors in the partition function); the bias must
	// shrink as S grows toward |V|.
	meanSampled := func(nSamples int) float64 {
		var acc float64
		const trials = 40
		for i := 0; i < trials; i++ {
			s := sampling.NewSampler(V, uint64(1000+i))
			res := SampledSoftmaxLoss(nil, h, emb, targets, s, nSamples)
			acc += res.LossSum / float64(res.Count)
		}
		return acc / trials
	}
	small := meanSampled(10)
	large := meanSampled(45)
	if small > full+0.05 || large > full+0.05 {
		t.Errorf("sampled loss exceeds full loss: S=10 %v, S=45 %v, full %v", small, large, full)
	}
	if full-large > 0.3 {
		t.Errorf("near-full sampling still far off: %v vs %v", large, full)
	}
	if full-large > full-small {
		t.Errorf("bias did not shrink with S: S=10 gap %v, S=45 gap %v", full-small, full-large)
	}
}

func TestFullSoftmaxGradSumsToZeroPerRow(t *testing.T) {
	r := rng.New(7)
	h := tensor.NewMatrix(3, 4)
	h.RandomizeNormal(r, 1)
	emb := tensor.NewMatrix(10, 4)
	emb.RandomizeNormal(r, 1)
	_, _, _, dEmb := FullSoftmaxLoss(nil, h, emb, []int{1, 5, 9}, true)
	// Column sums of dEmb equal sum_b (p_b - onehot_b) ᵀ h_b summed; each
	// softmax row's probability sums to 1, so Σ_w dlogits[b][w] = 0 and
	// the total embedding gradient projected on any h direction vanishes.
	for c := 0; c < 4; c++ {
		var sum float64
		for w := 0; w < 10; w++ {
			sum += float64(dEmb.At(w, c))
		}
		if math.Abs(sum) > 1e-4 {
			t.Errorf("col %d of dEmb sums to %v, want ~0", c, sum)
		}
	}
}

func TestLMTrainingReducesLoss(t *testing.T) {
	cfg := Config{Vocab: 20, Dim: 8, Hidden: 12, RNN: KindLSTM, Seed: 1}
	m := NewLM(cfg)
	r := rng.New(2)
	const T, B = 6, 4
	inputs := make([][]int, T)
	targets := make([][]int, T)
	for step := 0; step < T; step++ {
		inputs[step] = make([]int, B)
		targets[step] = make([]int, B)
		for b := 0; b < B; b++ {
			// A deterministic pattern the model can learn.
			inputs[step][b] = (step + b) % cfg.Vocab
			targets[step][b] = (step + b + 1) % cfg.Vocab
		}
	}
	_ = r
	first := -1.0
	var last float64
	const lr = 0.5
	for iter := 0; iter < 300; iter++ {
		m.ZeroGrads()
		res := m.ForwardBackward(inputs, targets, nil)
		mean := res.LossSum / float64(res.Count)
		if first < 0 {
			first = mean
		}
		last = mean
		// Plain SGD on all parts.
		for _, p := range m.DenseParams() {
			for i := range p.Value {
				p.Value[i] -= lr * p.Grad[i]
			}
		}
		// Embedding gradients already carry the mean-loss 1/Count factor.
		for i, w := range res.InputGrad.Indices {
			tensor.Axpy(-lr, m.InEmb.Row(w), res.InputGrad.Rows.Row(i))
		}
		for i, w := range res.OutputGrad.Indices {
			tensor.Axpy(-lr, m.OutEmb.Row(w), res.OutputGrad.Rows.Row(i))
		}
	}
	// The pattern is deterministic (target = input+1 mod V), so training
	// must drive the loss far below the ln(V) ≈ 3.0 starting point.
	if last > first*0.35 {
		t.Errorf("training did not reduce loss: %v -> %v", first, last)
	}
}

func TestEvalLoss(t *testing.T) {
	cfg := Config{Vocab: 15, Dim: 6, Hidden: 8, RNN: KindLSTM, Seed: 4}
	m := NewLM(cfg)
	stream := make([]int, 101)
	r := rng.New(3)
	for i := range stream {
		stream[i] = r.Intn(cfg.Vocab)
	}
	lossSum, count := m.EvalLoss(stream, 10)
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	mean := lossSum / float64(count)
	// Untrained model on uniform data: mean loss ≈ ln(V).
	if math.Abs(mean-math.Log(15)) > 0.5 {
		t.Errorf("untrained eval loss %v, want ≈ %v", mean, math.Log(15))
	}
}

func TestCopyWeightsProducesIdenticalReplicas(t *testing.T) {
	cfg := Config{Vocab: 12, Dim: 4, Hidden: 5, RNN: KindRHN, RHNDepth: 2, Seed: 1}
	a := NewLM(cfg)
	cfg2 := cfg
	cfg2.Seed = 999
	b := NewLM(cfg2)
	b.CopyWeightsFrom(a)
	stream := []int{1, 2, 3, 4, 5, 6, 7, 8}
	la, ca := a.EvalLoss(stream, 4)
	lb, cb := b.EvalLoss(stream, 4)
	if la != lb || ca != cb {
		t.Errorf("replicas differ after copy: %v/%d vs %v/%d", la, ca, lb, cb)
	}
}

func TestMetricsConversions(t *testing.T) {
	if math.Abs(Perplexity(math.Log(11.1))-11.1) > 1e-9 {
		t.Error("Perplexity(ln 11.1) != 11.1")
	}
	// Paper §V-C: perplexity 11.1 → BPC log2(11.1) ≈ 3.47.
	bpc := BitsPerChar(math.Log(11.1))
	if math.Abs(bpc-math.Log2(11.1)) > 1e-9 {
		t.Errorf("BPC = %v", bpc)
	}
	// Paper §V-C: 2.71 bytes/char at that BPC gives compression ≈ 6.3.
	cr := CompressionRatio(2.71, bpc)
	if math.Abs(cr-6.3) > 0.15 {
		t.Errorf("compression ratio = %v, paper says ≈ 6.3", cr)
	}
	// And [21]'s 1.11 BPC on 1 byte/char Amazon text gives ≈ 6.8... no:
	// paper derives 6.8 from " bit per character of 1.11" with ~1.06
	// bytes/char effective; check the stated 6.8 within broad tolerance.
	cr21 := CompressionRatio(0.95, 1.11)
	if cr21 < 6.0 || cr21 > 7.5 {
		t.Errorf("SOTA compression ratio = %v, paper cites 6.8", cr21)
	}
}

func TestNumParams(t *testing.T) {
	r := rng.New(1)
	l := NewLinear(3, 4, r)
	if got := NumParams(l); got != 3*4+4 {
		t.Errorf("NumParams = %d, want 16", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	cfg := Config{Vocab: 10, Dim: 4, Hidden: 4, RNN: KindLSTM, Seed: 1}
	m := NewLM(cfg)
	for _, f := range []func(){
		func() { NewLM(Config{}) },
		func() { m.ForwardBackward(nil, nil, nil) },
		func() { m.ForwardBackward([][]int{{1}}, [][]int{{1}, {2}}, nil) },
		func() { m.EvalLoss([]int{1, 2}, 0) },
		func() {
			h := tensor.NewMatrix(2, 4)
			FullSoftmaxLoss(nil, h, m.OutEmb, []int{1}, false)
		},
		func() {
			h := tensor.NewMatrix(1, 4)
			FullSoftmaxLoss(nil, h, m.OutEmb, []int{99}, false)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
