//go:build race

package model

// raceEnabled reports that this test binary was built with -race, under
// which allocation guards are meaningless (the detector's instrumentation
// allocates).
const raceEnabled = true
