package model

import (
	"fmt"

	"zipflm/internal/tensor"
)

// Batched inference. Training forwards whole sequences with backward caches;
// serving instead advances many independent sequences one token at a time.
// GenState makes a sequence's recurrent state an explicit, caller-owned
// value (so sequences can join and leave a batch freely — continuous
// batching), and Stepper runs one B×Dim forward step over a batch of states
// with zero allocation at steady state.
//
// The correctness contract the serving layer builds on: every kernel in the
// step path (MatMulABTStream, the per-element gate math, the projection and
// logits products) computes each batch row independently, with the same
// operations in the same order as a batch-1 step. A token generated for a
// request inside any batch is therefore bit-identical to the token the
// sequential Generate path produces for that request alone.

// GenState is one sequence's recurrent inference state (h and c for the
// LSTM, the highway state for the RHN). The zero state from NewGenState
// corresponds to the start of a fresh sequence.
type GenState struct {
	h []float32
	c []float32 // nil for RHN
}

// NewGenState returns a zeroed state for sequences of this model.
func (m *LM) NewGenState() *GenState {
	s := &GenState{h: make([]float32, m.Cfg.Hidden)}
	if m.Cfg.RNN == KindLSTM {
		s.c = make([]float32, m.Cfg.Hidden)
	}
	return s
}

// Reset zeroes the state in place.
func (s *GenState) Reset() {
	for i := range s.h {
		s.h[i] = 0
	}
	for i := range s.c {
		s.c[i] = 0
	}
}

// Clone returns an independent copy (the prefix cache snapshots post-prompt
// states with this).
func (s *GenState) Clone() *GenState {
	out := &GenState{h: append([]float32(nil), s.h...)}
	if s.c != nil {
		out.c = append([]float32(nil), s.c...)
	}
	return out
}

// CopyFrom overwrites s with src (same model required). Speculative decoding
// snapshots and rolls back states with this on every round, so unlike Clone
// it never allocates.
func (s *GenState) CopyFrom(src *GenState) {
	copy(s.h, src.h)
	if s.c != nil {
		copy(s.c, src.c)
	}
}

// Stepper advances batches of sequences through a model one token at a
// time. All scratch is allocated once at construction for the maximum batch
// size; Step itself performs zero heap allocations, which the
// TestGenerateAllocFlat guard enforces through Generate. A Stepper is not
// safe for concurrent use; the serving layer gives each worker its own.
type Stepper struct {
	m   *LM
	max int

	x, h, c *tensor.Matrix // B×Dim input, B×H state views
	p       *tensor.Matrix // B×Dim projection output
	logits  *tensor.Matrix // B×V
	s1, s2  *tensor.Matrix // recurrent scratch (LSTM: B×4H zx/zh; RHN: B×H zxh/zxt)
	s3, s4  *tensor.Matrix // RHN only: B×H zrh/zrt
	isLSTM  bool
	stepRNN func()
}

// NewStepper returns a Stepper able to advance up to maxBatch sequences per
// call.
func (m *LM) NewStepper(maxBatch int) *Stepper {
	if maxBatch <= 0 {
		panic("model: NewStepper needs a positive batch bound")
	}
	st := &Stepper{
		m:      m,
		max:    maxBatch,
		x:      tensor.NewMatrix(maxBatch, m.Cfg.Dim),
		h:      tensor.NewMatrix(maxBatch, m.Cfg.Hidden),
		p:      tensor.NewMatrix(maxBatch, m.Cfg.Dim),
		logits: tensor.NewMatrix(maxBatch, m.Cfg.Vocab),
	}
	switch rnn := m.rnn.(type) {
	case *LSTM:
		st.isLSTM = true
		st.c = tensor.NewMatrix(maxBatch, m.Cfg.Hidden)
		st.s1 = tensor.NewMatrix(maxBatch, 4*m.Cfg.Hidden)
		st.s2 = tensor.NewMatrix(maxBatch, 4*m.Cfg.Hidden)
		st.stepRNN = func() {
			rnn.stepInfer(st.x, st.h, st.c, st.s1, st.s2)
		}
	case *RHN:
		st.s1 = tensor.NewMatrix(maxBatch, m.Cfg.Hidden)
		st.s2 = tensor.NewMatrix(maxBatch, m.Cfg.Hidden)
		st.s3 = tensor.NewMatrix(maxBatch, m.Cfg.Hidden)
		st.s4 = tensor.NewMatrix(maxBatch, m.Cfg.Hidden)
		st.stepRNN = func() {
			rnn.stepInfer(st.x, st.h, st.s1, st.s2, st.s3, st.s4)
		}
	default:
		panic("model: unknown recurrent kind in NewStepper")
	}
	return st
}

// MaxBatch returns the batch bound the Stepper was built for.
func (st *Stepper) MaxBatch() int { return st.max }

// viewRows shrinks (or re-grows, within capacity) a scratch matrix to the
// current batch size.
func viewRows(m *tensor.Matrix, rows int) {
	m.Rows = rows
	m.Data = m.Data[:rows*m.Cols]
}

// stepCells advances the recurrent cell for a batch: gather embeddings and
// states, run the cell, scatter states back. st.h holds the new hidden rows
// when it returns.
func (st *Stepper) stepCells(ids []int, states []*GenState) {
	b := len(ids)
	if b == 0 || b > st.max {
		panic(fmt.Sprintf("model: Step batch %d outside [1, %d]", b, st.max))
	}
	if len(states) != b {
		panic("model: Step ids/states length mismatch")
	}
	m := st.m
	for i, id := range ids {
		if id < 0 || id >= m.Cfg.Vocab {
			panic(fmt.Sprintf("model: Step token %d outside vocabulary", id))
		}
		if len(states[i].h) != m.Cfg.Hidden || st.isLSTM != (states[i].c != nil) {
			panic("model: Step state does not match this model")
		}
	}

	viewRows(st.x, b)
	viewRows(st.h, b)
	viewRows(st.s1, b)
	viewRows(st.s2, b)
	if st.isLSTM {
		viewRows(st.c, b)
	} else {
		viewRows(st.s3, b)
		viewRows(st.s4, b)
	}

	// Gather: embedding rows and per-sequence states into the batch.
	tensor.GatherRows(st.x, m.InEmb, ids)
	for i, gs := range states {
		copy(st.h.Row(i), gs.h)
		if st.isLSTM {
			copy(st.c.Row(i), gs.c)
		}
	}

	st.stepRNN()

	// Scatter the advanced states back to their owners.
	for i, gs := range states {
		copy(gs.h, st.h.Row(i))
		if st.isLSTM {
			copy(gs.c, st.c.Row(i))
		}
	}
}

// Step feeds token ids[i] to the sequence whose state is states[i] (state
// updated in place) and returns the B×V next-token logits; Row(i) belongs
// to sequence i. The returned matrix is scratch owned by the Stepper — it
// is overwritten by the next Step, so sample from it (or copy it) first.
func (st *Stepper) Step(ids []int, states []*GenState) *tensor.Matrix {
	st.stepCells(ids, states)
	return st.LogitsFor(st.h)
}

// StepCells advances the recurrent cell only — no projection, no logits —
// writing the new hidden rows into hOut at rows rowBase..rowBase+len(ids)-1
// (states still updated in place). Speculative decoding uses it to run the
// cheap serial cell steps token by token while deferring the expensive V×D
// logits product, which LogitsFor then computes for every verified position
// in one batched call.
func (st *Stepper) StepCells(ids []int, states []*GenState, hOut *tensor.Matrix, rowBase int) {
	if hOut.Cols != st.m.Cfg.Hidden || rowBase < 0 || rowBase+len(ids) > hOut.Rows {
		panic("model: StepCells output rows out of range")
	}
	st.stepCells(ids, states)
	for i := range ids {
		copy(hOut.Row(rowBase+i), st.h.Row(i))
	}
}

// LogitsFor computes projection + output-embedding logits for R ≤ MaxBatch
// rows of hidden state, returning the R×V logits (Stepper-owned scratch,
// overwritten by the next call). Each row is computed independently with the
// batch-1 operation order, so Row(i) is bit-identical to the logits a
// single-sequence Step would produce from the same hidden state — the
// property that lets speculative decoding verify k positions in one call.
func (st *Stepper) LogitsFor(h *tensor.Matrix) *tensor.Matrix {
	if h.Rows == 0 || h.Rows > st.max {
		panic(fmt.Sprintf("model: LogitsFor batch %d outside [1, %d]", h.Rows, st.max))
	}
	if h.Cols != st.m.Cfg.Hidden {
		panic("model: LogitsFor hidden width does not match this model")
	}
	m := st.m
	viewRows(st.p, h.Rows)
	viewRows(st.logits, h.Rows)
	m.proj.ForwardInto(st.p, h)
	qmul(m.be, st.logits, st.p, m.OutEmb, m.qOutEmb)
	return st.logits
}
