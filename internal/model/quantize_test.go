package model

import (
	"bytes"
	"math"
	"testing"

	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

func sameQ(t *testing.T, name string, a, b *tensor.QMatrix) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: missing quantized shadow", name)
	}
	if a.Rows != b.Rows || a.Cols != b.Cols || a.Chunk != b.Chunk {
		t.Fatalf("%s: shape mismatch", name)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: q8 code %d differs: %d vs %d", name, i, a.Data[i], b.Data[i])
		}
	}
	for i := range a.Scales {
		if math.Float32bits(a.Scales[i]) != math.Float32bits(b.Scales[i]) {
			t.Fatalf("%s: scale %d differs", name, i)
		}
	}
}

// TestQuantizeDeterministicBytes is the reproducibility half of the
// quantized-serving contract: loading the same checkpoint twice and
// quantizing both replicas yields byte-identical q8 weights, so a serving
// fleet built from one checkpoint file is homogeneous.
func TestQuantizeDeterministicBytes(t *testing.T) {
	for name, cfg := range testConfigs() {
		m := NewLM(cfg)
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		m1, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		m2, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		m1.QuantizeWeights()
		m2.QuantizeWeights()
		if !m1.IsQuantized() || !m2.IsQuantized() {
			t.Fatalf("%s: QuantizeWeights left the replica unquantized", name)
		}
		sameQ(t, name+".outEmb", m1.qOutEmb, m2.qOutEmb)
		sameQ(t, name+".proj", m1.proj.qw, m2.proj.qw)
		switch r1 := m1.rnn.(type) {
		case *LSTM:
			r2 := m2.rnn.(*LSTM)
			sameQ(t, name+".wx", r1.qwx, r2.qwx)
			sameQ(t, name+".wh", r1.qwh, r2.qwh)
		case *RHN:
			r2 := m2.rnn.(*RHN)
			sameQ(t, name+".wh", r1.qwh, r2.qwh)
			sameQ(t, name+".wt", r1.qwt, r2.qwt)
			for d := range r1.qrh {
				sameQ(t, name+".rh", r1.qrh[d], r2.qrh[d])
				sameQ(t, name+".rt", r1.qrt[d], r2.qrt[d])
			}
		}
	}
}

// TestQuantizeLeavesTrainingPathAlone: the shadows live beside the FP32
// weights, so evaluation on a quantized replica is bit-identical to the
// source model — only the inference step path changes.
func TestQuantizeLeavesTrainingPathAlone(t *testing.T) {
	for name, cfg := range testConfigs() {
		m := NewLM(cfg)
		q := m.Quantize()
		if !q.IsQuantized() || m.IsQuantized() {
			t.Fatalf("%s: Quantize should convert the copy, not the source", name)
		}
		r := rng.New(11)
		stream := randomPrompt(r, cfg.Vocab, 60)
		wantLoss, wantN := m.EvalLoss(stream, 10)
		gotLoss, gotN := q.EvalLoss(stream, 10)
		if wantLoss != gotLoss || wantN != gotN {
			t.Fatalf("%s: quantized EvalLoss %v/%d != FP32 %v/%d", name, gotLoss, gotN, wantLoss, wantN)
		}
	}
}

// TestQuantizedStepBitIdentical extends the serving bit-identity contract to
// the q8 path: on a quantized replica, batched stepping and every worker
// count reproduce the sequential quantized Generate exactly. (The q8 output
// differs from FP32 output by design; the contract is determinism of the
// quantized path itself.)
func TestQuantizedStepBitIdentical(t *testing.T) {
	for name, cfg := range testConfigs() {
		for _, temp := range []float64{0, 0.8} {
			m := NewLM(cfg)
			opts := sampling.DecodeOpts{Temperature: temp}
			r := rng.New(21)
			const nSeq, nTok = 3, 10
			prompts := make([][]int, nSeq)
			for i := range prompts {
				prompts[i] = randomPrompt(r, cfg.Vocab, 4)
			}

			q := m.Quantize()
			want := make([][]int, nSeq)
			for i := range prompts {
				want[i] = q.GenerateOpts(prompts[i], nTok, opts, rng.New(uint64(i)+1))
			}

			for _, workers := range []int{1, 4} {
				be := tensor.New(workers)
				qw := m.Quantize()
				qw.SetBackend(be)

				// Batched lockstep over equal-length prompts.
				st := qw.NewStepper(nSeq)
				dec := sampling.NewDecoder(cfg.Vocab)
				states := make([]*GenState, nSeq)
				rngs := make([]*rng.RNG, nSeq)
				ids := make([]int, nSeq)
				got := make([][]int, nSeq)
				for i := range states {
					states[i] = qw.NewGenState()
					rngs[i] = rng.New(uint64(i) + 1)
				}
				for step := 0; ; step++ {
					for i := range prompts {
						if step < len(prompts[i]) {
							ids[i] = prompts[i][step]
						} else {
							ids[i] = got[i][step-len(prompts[i])]
						}
					}
					lg := st.Step(ids, states)
					done := true
					for i := range prompts {
						if step >= len(prompts[i])-1 && len(got[i]) < nTok {
							got[i] = append(got[i], dec.Sample(lg.Row(i), opts, rngs[i]))
						}
						if len(got[i]) < nTok {
							done = false
						}
					}
					if done {
						break
					}
				}
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("%s temp=%v workers=%d seq %d token %d: batched %d != sequential %d",
								name, temp, workers, i, j, got[i][j], want[i][j])
						}
					}
				}
				if p, ok := be.(*tensor.Parallel); ok {
					p.Close()
				}
			}
		}
	}
}
