package model

import (
	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// dropout implements inverted dropout: during training each activation is
// zeroed with probability p and survivors are scaled by 1/(1−p), so
// evaluation needs no rescaling (and EvalLoss/Generate simply skip the
// mask). The paper's character model trains with dropout (§IV-B).
type dropout struct {
	p    float64
	r    *rng.RNG
	mask []float32 // cached mask of the last Apply, for Backward
}

func newDropout(p float64, seed uint64) *dropout {
	if p < 0 || p >= 1 {
		panic("model: dropout probability must be in [0, 1)")
	}
	return &dropout{p: p, r: rng.New(seed)}
}

// Apply masks x in place and caches the mask. A zero probability is a
// no-op.
func (d *dropout) Apply(x *tensor.Matrix) {
	if d.p == 0 {
		d.mask = nil
		return
	}
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float32, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	keep := float32(1 / (1 - d.p))
	for i := range x.Data {
		if d.r.Float64() < d.p {
			d.mask[i] = 0
			x.Data[i] = 0
		} else {
			d.mask[i] = keep
			x.Data[i] *= keep
		}
	}
}

// Backward scales the incoming gradient by the cached mask in place.
func (d *dropout) Backward(dx *tensor.Matrix) {
	if d.p == 0 || d.mask == nil {
		return
	}
	if len(d.mask) != len(dx.Data) {
		panic("model: dropout Backward shape mismatch with Apply")
	}
	for i := range dx.Data {
		dx.Data[i] *= d.mask[i]
	}
}
