package model

import (
	"math"

	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// Linear is a fully connected layer y = x Wᵀ + b. The paper's word model
// uses one as the 2048→512 projection between the LSTM and the output
// embedding (§IV-B: "the projection dimension we used is 512").
type Linear struct {
	In, Out int
	// W is Out×In (one row per output unit); B is the bias.
	W *tensor.Matrix
	B []float32
	// qw is the int8 shadow of W (see quantize.go); non-nil routes
	// ForwardInto through the quantized kernels.
	qw *tensor.QMatrix

	gw *tensor.Matrix
	gb []float32

	be tensor.Backend

	// forward cache
	x *tensor.Matrix
}

// NewLinear returns a Linear layer with Xavier-uniform weights.
func NewLinear(in, out int, r *rng.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:  tensor.NewMatrix(out, in),
		B:  make([]float32, out),
		gw: tensor.NewMatrix(out, in),
		gb: make([]float32, out),
		be: tensor.Serial{},
	}
	l.W.RandomizeUniform(r, math.Sqrt(6/float64(in+out)))
	return l
}

func (l *Linear) setBackend(be tensor.Backend) { l.be = be }

// Forward computes y = x Wᵀ + b for a B×In input, caching x for Backward.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.NewMatrix(x.Rows, l.Out)
	l.be.MatMulABT(y, x, l.W)
	for r := 0; r < y.Rows; r++ {
		tensor.AddInPlace(y.Row(r), l.B)
	}
	l.x = x
	return y
}

// ForwardInto computes y = x Wᵀ + b into a caller-owned matrix without
// caching x — the inference path, which must neither allocate nor disturb a
// training step's backward state. On an FP32 layer values are bit-identical
// to Forward's; a quantized layer runs the int8 kernels instead.
func (l *Linear) ForwardInto(y, x *tensor.Matrix) {
	qmul(l.be, y, x, l.W, l.qw)
	for r := 0; r < y.Rows; r++ {
		tensor.AddInPlace(y.Row(r), l.B)
	}
}

// Backward consumes dLoss/dy, accumulates parameter gradients, and returns
// dLoss/dx.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if l.x == nil {
		panic("model: Linear.Backward before Forward")
	}
	// gW += dyᵀ @ x ; gb += column sums of dy ; dx = dy @ W.
	l.be.MatMulATBAcc(l.gw, dy, l.x)
	for r := 0; r < dy.Rows; r++ {
		tensor.AddInPlace(l.gb, dy.Row(r))
	}
	dx := tensor.NewMatrix(dy.Rows, l.In)
	l.be.MatMul(dx, dy, l.W)
	l.x = nil
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: "linear.W", Value: l.W.Data, Grad: l.gw.Data},
		{Name: "linear.b", Value: l.B, Grad: l.gb},
	}
}

// ZeroGrads implements Layer.
func (l *Linear) ZeroGrads() { zeroAll(l.Params()) }
