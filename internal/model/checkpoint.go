package model

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpointing. A checkpoint captures a model's configuration and every
// parameter tensor, so long training runs (the paper's epochs are tens of
// hours) can stop and resume, and trained models can ship to inference
// users. The format is encoding/gob with a version header; the carried RNN
// state is deliberately excluded (a resumed run starts its lanes fresh,
// like an epoch boundary).

// checkpointVersion guards the wire format.
const checkpointVersion = 1

// checkpointFile is the serialized form.
type checkpointFile struct {
	Version int
	Cfg     Config
	InEmb   []float32
	OutEmb  []float32
	// Dense holds DenseParams values keyed by parameter name.
	Dense map[string][]float32
}

// Save writes the model's configuration and parameters to w.
func (m *LM) Save(w io.Writer) error {
	ck := checkpointFile{
		Version: checkpointVersion,
		Cfg:     m.Cfg,
		InEmb:   m.InEmb.Data,
		OutEmb:  m.OutEmb.Data,
		Dense:   make(map[string][]float32),
	}
	for _, p := range m.DenseParams() {
		ck.Dense[p.Name] = p.Value
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	return nil
}

// Load reads a checkpoint written by Save and returns a fresh model with
// those weights. The embedded Config fully determines the architecture.
func Load(r io.Reader) (*LM, error) {
	var ck checkpointFile
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("model: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	m := NewLM(ck.Cfg)
	if len(ck.InEmb) != len(m.InEmb.Data) || len(ck.OutEmb) != len(m.OutEmb.Data) {
		return nil, fmt.Errorf("model: checkpoint embedding size mismatch")
	}
	copy(m.InEmb.Data, ck.InEmb)
	copy(m.OutEmb.Data, ck.OutEmb)
	for _, p := range m.DenseParams() {
		v, ok := ck.Dense[p.Name]
		if !ok {
			return nil, fmt.Errorf("model: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != len(p.Value) {
			return nil, fmt.Errorf("model: checkpoint parameter %q has %d values, want %d",
				p.Name, len(v), len(p.Value))
		}
		copy(p.Value, v)
	}
	return m, nil
}
