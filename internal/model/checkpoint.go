package model

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// Checkpointing. A checkpoint captures a model's configuration and every
// parameter tensor, so long training runs (the paper's epochs are tens of
// hours) can stop and resume, and trained models can ship to inference
// users. The format is encoding/gob with a version header; the carried RNN
// state is deliberately excluded (a resumed run starts its lanes fresh,
// like an epoch boundary — the full-state trainer checkpoints in
// internal/ckpt carry it separately).

// checkpointVersion guards the wire format. Version 2 replaced the dense
// parameter map with name-sorted parallel slices: gob iterates maps in
// random order, so two saves of the same model produced different bytes —
// fatal for the content-hash/CRC layer internal/ckpt builds on top.
const checkpointVersion = 2

// checkpointFile is the serialized form.
type checkpointFile struct {
	Version int
	Cfg     Config
	InEmb   []float32
	OutEmb  []float32
	// DenseNames/DenseValues hold DenseParams sorted by parameter name
	// (version ≥ 2): a deterministic encoding, so identical models produce
	// byte-identical files.
	DenseNames  []string
	DenseValues [][]float32
	// Dense is the version-1 map encoding, retained so old checkpoints
	// still load.
	Dense map[string][]float32
}

// Save writes the model's configuration and parameters to w. The encoding
// is deterministic: saving the same model twice produces identical bytes.
func (m *LM) Save(w io.Writer) error {
	ck := checkpointFile{
		Version: checkpointVersion,
		Cfg:     m.Cfg,
		InEmb:   m.InEmb.Data,
		OutEmb:  m.OutEmb.Data,
	}
	params := m.DenseParams()
	sort.Slice(params, func(i, j int) bool { return params[i].Name < params[j].Name })
	for _, p := range params {
		ck.DenseNames = append(ck.DenseNames, p.Name)
		ck.DenseValues = append(ck.DenseValues, p.Value)
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	return nil
}

// Load reads a checkpoint written by Save and returns a fresh model with
// those weights. The embedded Config fully determines the architecture.
// Corrupt, truncated, or future-version inputs return an error; Load never
// returns a half-initialized model.
func Load(r io.Reader) (*LM, error) {
	var ck checkpointFile
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	if ck.Version < 1 || ck.Version > checkpointVersion {
		return nil, fmt.Errorf("model: checkpoint version %d, this build reads 1..%d", ck.Version, checkpointVersion)
	}
	dense := make(map[string][]float32)
	if ck.Version == 1 {
		dense = ck.Dense
	} else {
		if len(ck.DenseNames) != len(ck.DenseValues) {
			return nil, fmt.Errorf("model: checkpoint has %d parameter names but %d tensors",
				len(ck.DenseNames), len(ck.DenseValues))
		}
		for i, name := range ck.DenseNames {
			dense[name] = ck.DenseValues[i]
		}
	}
	if ck.Cfg.Vocab <= 0 || ck.Cfg.Dim <= 0 || ck.Cfg.Hidden <= 0 {
		return nil, fmt.Errorf("model: checkpoint config is invalid: %+v", ck.Cfg)
	}
	if ck.Cfg.RNN != KindLSTM && ck.Cfg.RNN != KindRHN {
		return nil, fmt.Errorf("model: checkpoint has unknown RNN kind %d", ck.Cfg.RNN)
	}
	if ck.Cfg.RHNDepth < 0 || ck.Cfg.Dropout < 0 || ck.Cfg.Dropout >= 1 || ck.Cfg.Sampled < 0 {
		return nil, fmt.Errorf("model: checkpoint config is invalid: %+v", ck.Cfg)
	}
	m := NewLM(ck.Cfg)
	if len(ck.InEmb) != len(m.InEmb.Data) || len(ck.OutEmb) != len(m.OutEmb.Data) {
		return nil, fmt.Errorf("model: checkpoint embedding size mismatch")
	}
	copy(m.InEmb.Data, ck.InEmb)
	copy(m.OutEmb.Data, ck.OutEmb)
	for _, p := range m.DenseParams() {
		v, ok := dense[p.Name]
		if !ok {
			return nil, fmt.Errorf("model: checkpoint missing parameter %q", p.Name)
		}
		if len(v) != len(p.Value) {
			return nil, fmt.Errorf("model: checkpoint parameter %q has %d values, want %d",
				p.Name, len(v), len(p.Value))
		}
		copy(p.Value, v)
	}
	return m, nil
}
