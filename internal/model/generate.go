package model

import (
	"fmt"
	"math"

	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// Generate samples a continuation of the prompt from the model: the prompt
// is consumed to warm the recurrent state, then n tokens are drawn one at a
// time from the full softmax at the given temperature (1 = the model's
// distribution, <1 sharper, >1 flatter; 0 = greedy argmax). Generation is
// deterministic given r.
//
// The model's training state is untouched — generation snapshots and
// restores the carried RNN state around itself.
func (m *LM) Generate(prompt []int, n int, temperature float64, r *rng.RNG) []int {
	if len(prompt) == 0 {
		panic("model: Generate needs a non-empty prompt")
	}
	if temperature < 0 {
		panic("model: negative temperature")
	}
	for _, id := range prompt {
		if id < 0 || id >= m.Cfg.Vocab {
			panic(fmt.Sprintf("model: prompt token %d outside vocabulary", id))
		}
	}

	saved := m.rnn.SnapshotState()
	m.rnn.SetCarry(true)
	m.rnn.ResetState()
	defer func() {
		m.rnn.SetCarry(m.Cfg.Stateful)
		m.rnn.RestoreState(saved)
	}()

	// step feeds one token and returns the next-token logits.
	logits := make([]float32, m.Cfg.Vocab)
	step := func(id int) []float32 {
		x := tensor.NewMatrix(1, m.Cfg.Dim)
		tensor.GatherRows(x, m.InEmb, []int{id})
		h := m.rnn.Forward([]*tensor.Matrix{x})
		p := m.proj.Forward(h[0])
		m.proj.x = nil
		out := tensor.NewMatrixFrom(1, m.Cfg.Vocab, logits)
		tensor.MatMulABT(out, p, m.OutEmb)
		return logits
	}

	// Warm up on the prompt (the last call's logits feed the first draw).
	var lg []float32
	for _, id := range prompt {
		lg = step(id)
	}

	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		next := sampleLogits(lg, temperature, r)
		out = append(out, next)
		if i < n-1 {
			lg = step(next)
		}
	}
	return out
}

// sampleLogits draws one index from softmax(logits/temperature); zero
// temperature is argmax.
func sampleLogits(logits []float32, temperature float64, r *rng.RNG) int {
	if temperature == 0 {
		bi, bv := 0, logits[0]
		for i, v := range logits {
			if v > bv {
				bi, bv = i, v
			}
		}
		return bi
	}
	scaled := make([]float32, len(logits))
	inv := float32(1 / temperature)
	for i, v := range logits {
		scaled[i] = v * inv
	}
	tensor.SoftmaxRow(scaled)
	u := r.Float64()
	var cum float64
	for i, p := range scaled {
		cum += float64(p)
		if u < cum {
			return i
		}
	}
	return len(scaled) - 1 // numerical tail
}

// Score returns the model's mean cross-entropy (nats/token) on a stream —
// a convenience wrapper over EvalLoss for inference users.
func (m *LM) Score(stream []int, seqLen int) float64 {
	lossSum, count := m.EvalLoss(stream, seqLen)
	if count == 0 {
		return math.NaN()
	}
	return lossSum / float64(count)
}
