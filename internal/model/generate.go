package model

import (
	"fmt"
	"math"

	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

// Generate samples a continuation of the prompt from the model: the prompt
// is consumed to warm the recurrent state, then n tokens are drawn one at a
// time from the full softmax at the given temperature (1 = the model's
// distribution, <1 sharper, >1 flatter; 0 = greedy argmax). Generation is
// deterministic given r.
//
// The model's training state is untouched — inference runs on an explicit
// GenState, never on the layers' carried training state.
func (m *LM) Generate(prompt []int, n int, temperature float64, r *rng.RNG) []int {
	return m.GenerateOpts(prompt, n, sampling.DecodeOpts{Temperature: temperature}, r)
}

// GenerateOpts is Generate with full decoding control (temperature plus
// top-k and nucleus filtering). All scratch — the step matrices, the
// decoder's sort buffers — is allocated once up front, so cost per token is
// pure arithmetic: the allocation-flatness test guards that generating 10×
// more tokens allocates no more objects.
func (m *LM) GenerateOpts(prompt []int, n int, opts sampling.DecodeOpts, r *rng.RNG) []int {
	if len(prompt) == 0 {
		panic("model: Generate needs a non-empty prompt")
	}
	if err := opts.Validate(); err != nil {
		panic("model: " + err.Error())
	}
	for _, id := range prompt {
		if id < 0 || id >= m.Cfg.Vocab {
			panic(fmt.Sprintf("model: prompt token %d outside vocabulary", id))
		}
	}

	st := m.NewStepper(1)
	gs := m.NewGenState()
	dec := sampling.NewDecoder(m.Cfg.Vocab)
	states := []*GenState{gs}
	id := make([]int, 1)

	// Warm up on the prompt (the last call's logits feed the first draw).
	var lg []float32
	for _, tok := range prompt {
		id[0] = tok
		lg = st.Step(id, states).Row(0)
	}

	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		next := dec.Sample(lg, opts, r)
		out = append(out, next)
		if i < n-1 {
			id[0] = next
			lg = st.Step(id, states).Row(0)
		}
	}
	return out
}

// Score returns the model's mean cross-entropy (nats/token) on a stream —
// a convenience wrapper over EvalLoss for inference users.
func (m *LM) Score(stream []int, seqLen int) float64 {
	lossSum, count := m.EvalLoss(stream, seqLen)
	if count == 0 {
		return math.NaN()
	}
	return lossSum / float64(count)
}
