package model

import (
	"testing"

	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

func draftConfigFor(cfg Config) Config {
	return Config{Vocab: cfg.Vocab, Dim: 8, Hidden: 12, RNN: KindRHN, RHNDepth: 2, Seed: 77}
}

// TestSpeculativeBitIdentical is the speculative-decoding contract:
// draft-assisted generation reproduces sequential GenerateOpts bitwise — for
// LSTM and RHN targets, FP32 and quantized, greedy/top-k/top-p decoding,
// serial and parallel backends, across seeds and prompt lengths. The draft
// is a cold (untrained, differently-seeded) model, so plenty of rejections
// and rollbacks are exercised, not just the happy path.
func TestSpeculativeBitIdentical(t *testing.T) {
	optsList := map[string]sampling.DecodeOpts{
		"greedy": {},
		"topk":   {Temperature: 0.8, TopK: 8},
		"topp":   {Temperature: 0.9, TopP: 0.9},
	}
	for name, cfg := range testConfigs() {
		for _, quantized := range []bool{false, true} {
			src := NewLM(cfg)
			for optName, opts := range optsList {
				for _, workers := range []int{1, 4} {
					be := tensor.New(workers)
					target := src
					if quantized {
						target = src.Quantize()
					}
					target.SetBackend(be)
					draft := NewLM(draftConfigFor(cfg))
					draft.SetBackend(be)
					sd := NewSpecDecoder(target, draft, 3)

					pr := rng.New(31)
					for seed := uint64(1); seed <= 3; seed++ {
						prompt := randomPrompt(pr, cfg.Vocab, 1+int(seed)*2)
						n := 15
						want := target.GenerateOpts(prompt, n, opts, rng.New(seed))
						got := sd.Generate(prompt, n, opts, rng.New(seed))
						if len(got) != len(want) {
							t.Fatalf("%s q=%v %s workers=%d seed=%d: got %d tokens, want %d",
								name, quantized, optName, workers, seed, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("%s q=%v %s workers=%d seed=%d token %d: speculative %d != sequential %d",
									name, quantized, optName, workers, seed, i, got[i], want[i])
							}
						}
					}
					st := sd.Stats()
					if st.Accepted > st.Proposed || st.Accepted < 0 {
						t.Fatalf("%s: inconsistent stats %+v", name, st)
					}
					if st.Rounds == 0 || st.DraftSteps == 0 {
						t.Fatalf("%s: speculative path did not run: %+v", name, st)
					}
					target.SetBackend(nil)
					if p, ok := be.(*tensor.Parallel); ok {
						p.Close()
					}
				}
			}
		}
	}
}

// TestSpeculativeFullAcceptance: with the draft sharing the target's weights
// and greedy decoding, every proposal matches the target's own argmax, so
// acceptance is total and each round emits k+1 tokens.
func TestSpeculativeFullAcceptance(t *testing.T) {
	cfg := testConfigs()["lstm"]
	m := NewLM(cfg)
	d := NewLM(cfg)
	d.CopyWeightsFrom(m)
	const k, n = 3, 16
	sd := NewSpecDecoder(m, d, k)
	prompt := randomPrompt(rng.New(5), cfg.Vocab, 4)

	want := m.GenerateOpts(prompt, n, sampling.DecodeOpts{}, rng.New(9))
	got := sd.Generate(prompt, n, sampling.DecodeOpts{}, rng.New(9))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: %d != %d", i, got[i], want[i])
		}
	}
	st := sd.Stats()
	if st.Accepted != st.Proposed {
		t.Fatalf("identical draft rejected: %+v", st)
	}
	if st.AcceptanceRate() != 1 {
		t.Fatalf("acceptance rate %v, want 1", st.AcceptanceRate())
	}
	// n=16, k+1=4 per round: exactly ceil(16/4) = 4 rounds.
	if st.Rounds != (n+k)/(k+1) {
		t.Fatalf("%d rounds for %d tokens at k=%d, want %d", st.Rounds, n, k, (n+k)/(k+1))
	}
}

// TestSpecDecoderValidation: mismatched vocabularies and degenerate k are
// construction-time errors.
func TestSpecDecoderValidation(t *testing.T) {
	cfg := testConfigs()["lstm"]
	m := NewLM(cfg)
	bad := cfg
	bad.Vocab++
	for name, fn := range map[string]func(){
		"vocab mismatch": func() { NewSpecDecoder(m, NewLM(bad), 2) },
		"k zero":         func() { NewSpecDecoder(m, NewLM(cfg), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
