package perfmodel

import (
	"math"
	"testing"
)

func TestTitanXMatchesTableII(t *testing.T) {
	h := TitanX()
	if h.PeakFLOPS != 6.1e12 {
		t.Error("Titan X peak must be 6.1 TFLOP/s")
	}
	if h.MemBytes != 12<<30 {
		t.Error("Titan X memory must be 12 GB")
	}
	if h.GPUsPerNode != 8 {
		t.Error("8 GPUs per node per Table II")
	}
}

func TestRingBWCrossesNodeBoundary(t *testing.T) {
	h := TitanX()
	if h.RingBW(8) != h.IntraBW {
		t.Error("8-rank ring must stay on PCIe")
	}
	if h.RingBW(16) != h.InterBW {
		t.Error("16-rank ring must hit the InfiniBand boundary")
	}
	if h.InterBW >= h.IntraBW {
		t.Error("inter-node bandwidth must be below intra-node")
	}
}

func TestStepTimeComputeOnly(t *testing.T) {
	h := TitanX()
	// §V-A: 136 GFLOP/iter at 40% of peak = 2.44 TFLOP/s → 55.7 ms.
	c := StepCost{ComputeFLOPs: 136e9, AchievedFrac: 0.40}
	got := h.StepTime(8, c)
	want := 136e9 / 2.44e12
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("compute time = %v, want %v", got, want)
	}
}

func TestStepTimeAdditive(t *testing.T) {
	h := TitanX()
	c := StepCost{
		ComputeFLOPs: 1e9, AchievedFrac: 0.5,
		WireBytes: 1e8, WireHops: 14,
		UpdateRows: 1000, UpdateDim: 512, UpdateSerialization: 2,
		OverheadSec: 0.01,
	}
	full := h.StepTime(16, c)
	var sum float64
	sum += 1e9 / (h.PeakFLOPS * 0.5)
	sum += 1e8/h.InterBW + 14*h.HopLatency
	sum += 2 * 1000 * 512 * 4 * 2 / h.MemBW
	sum += 0.01
	if math.Abs(full-sum)/sum > 1e-12 {
		t.Errorf("step time %v, want sum of parts %v", full, sum)
	}
}

func TestSingleRankSkipsComm(t *testing.T) {
	h := TitanX()
	c := StepCost{WireBytes: 1e12, WireHops: 100}
	if h.StepTime(1, c) != 0 {
		t.Error("single rank must not pay communication")
	}
}

func TestSerializationFloorsAtOne(t *testing.T) {
	h := TitanX()
	a := h.StepTime(1, StepCost{UpdateRows: 100, UpdateDim: 10, UpdateSerialization: 0})
	b := h.StepTime(1, StepCost{UpdateRows: 100, UpdateDim: 10, UpdateSerialization: 1})
	if a != b {
		t.Error("serialization factor below 1 must clamp to 1")
	}
}

func TestEpochTime(t *testing.T) {
	h := TitanX()
	c := StepCost{OverheadSec: 0.1} // 0.1 s/step exactly
	// 1e6 tokens, 10 ranks × 100 tokens → 1000 steps → 100 s.
	got := h.EpochTime(10, 100, 1_000_000, c)
	want := 100.0 / 3600
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("epoch time %v h, want %v h", got, want)
	}
}

// TestEpochTimeShrinksWithG: with per-rank cost held fixed, doubling ranks
// halves steps and thus epoch time — weak scaling's ideal.
func TestEpochTimeShrinksWithG(t *testing.T) {
	h := TitanX()
	c := StepCost{ComputeFLOPs: 1e11, AchievedFrac: 0.5}
	t8 := h.EpochTime(8, 640, 1e9, c)
	t16 := h.EpochTime(16, 640, 1e9, c)
	if math.Abs(t16*2-t8)/t8 > 1e-9 {
		t.Errorf("ideal scaling violated: t8=%v t16=%v", t8, t16)
	}
}

func TestParallelEfficiency(t *testing.T) {
	// Table III "with our technique": 14.6 h at 8 GPUs → 8.1 h at 16 GPUs
	// is reported as 90% efficiency.
	eff := ParallelEfficiency(14.6, 8, 8.1, 16)
	if math.Abs(eff-0.90) > 0.005 {
		t.Errorf("efficiency = %v, Table III says 90%%", eff)
	}
	// And 4.5 h at 64 GPUs is 40%.
	eff64 := ParallelEfficiency(14.6, 8, 4.5, 64)
	if math.Abs(eff64-0.40) > 0.01 {
		t.Errorf("efficiency = %v, Table III says 40%%", eff64)
	}
}

func TestSpeedup(t *testing.T) {
	// §V-A: "Compared to the 8 GPUs run without our techniques, the
	// speedup becomes 7.7×" (35.1 h → 4.5 h).
	if s := Speedup(35.1, 4.5); math.Abs(s-7.8) > 0.1 {
		t.Errorf("speedup = %v, paper says 7.7–7.8×", s)
	}
}

func TestV100FasterThanTitanX(t *testing.T) {
	// §V-D: "41X less powerful infrastructure" (16 PFLOP/s vs 0.39
	// PFLOP/s for the whole clusters) — per GPU, 125/6.1 ≈ 20×.
	ratio := V100().PeakFLOPS / TitanX().PeakFLOPS
	if ratio < 19 || ratio > 22 {
		t.Errorf("V100/TitanX peak ratio = %v", ratio)
	}
}
