// Package perfmodel estimates wall-clock training time on the paper's
// hardware (Table II: 50 nodes × 8 GeForce GTX Titan X, PCIe 32 GB/s
// bidirectional per GPU, FDR InfiniBand 15 GB/s bidirectional per node)
// from the byte and FLOP counts the simulator measures.
//
// The model is an α–β (latency–bandwidth) communication model combined
// with an achieved-FLOPs compute model and a memory-bandwidth model for the
// embedding scatter-add update. Absolute times depend on a small number of
// calibration constants anchored to the paper's own measurements (§V-A:
// 2.44 TFLOP/s achieved for word LM; §V-B: 3.95 TFLOP/s for char LM;
// the 8-GPU epoch hours of Tables III and IV); the *scaling behaviour*
// across GPU counts comes entirely from the measured volumes.
package perfmodel

// Hardware describes one GPU cluster profile.
type Hardware struct {
	// Name for reports.
	Name string
	// PeakFLOPS is per-GPU single-precision peak.
	PeakFLOPS float64
	// MemBytes is per-GPU memory capacity.
	MemBytes int64
	// IntraBW is effective per-GPU unidirectional bandwidth for ring
	// traffic inside one node (PCIe), bytes/s.
	IntraBW float64
	// InterBW is effective per-GPU unidirectional bandwidth once the ring
	// spans nodes (InfiniBand boundary links), bytes/s.
	InterBW float64
	// MemBW is effective device-memory bandwidth for the embedding
	// update's scatter-add traffic, bytes/s.
	MemBW float64
	// GPUsPerNode sets where rings start crossing the interconnect.
	GPUsPerNode int
	// HopLatency is the per-collective-step latency α, seconds.
	HopLatency float64
}

// TitanX returns the Table II cluster profile. Effective bandwidths are
// derated well below the quoted link peaks (32 GB/s PCIe bidirectional,
// 15 GB/s FDR bidirectional) to the throughput a TF-1.4 cuda-aware-MPI
// stack actually sustained on many medium-sized tensors — the derating is
// part of the calibration documented in EXPERIMENTS.md.
func TitanX() Hardware {
	return Hardware{
		Name:        "TitanX-FDR",
		PeakFLOPS:   6.1e12,
		MemBytes:    12 << 30,
		IntraBW:     8e9,
		InterBW:     3e9,
		MemBW:       150e9,
		GPUsPerNode: 8,
		HopLatency:  20e-6,
	}
}

// V100 returns the §V-D comparison profile ([21]: 128 Volta GPUs, 125
// TFLOP/s tensor peak, 16 GB, NVLink).
func V100() Hardware {
	return Hardware{
		Name:        "V100-NVLink",
		PeakFLOPS:   125e12,
		MemBytes:    16 << 30,
		IntraBW:     130e9,
		InterBW:     22e9,
		MemBW:       900e9,
		GPUsPerNode: 8,
		HopLatency:  10e-6,
	}
}

// RingBW returns the effective per-rank ring bandwidth for a ring of g
// ranks: PCIe while the ring stays inside one node, the InfiniBand node
// boundary once it spans nodes.
func (h Hardware) RingBW(g int) float64 {
	if g <= h.GPUsPerNode {
		return h.IntraBW
	}
	return h.InterBW
}

// StepCost aggregates everything one training step costs on one rank.
type StepCost struct {
	// ComputeFLOPs executed on the rank.
	ComputeFLOPs float64
	// AchievedFrac is the fraction of peak the kernels reach
	// (paper: 0.40 word LM, 0.64 char LM).
	AchievedFrac float64
	// WireBytes is per-rank collective traffic this step.
	WireBytes int64
	// WireHops is the number of latency-bound collective stages
	// (a ring all-reduce contributes 2(G−1), a gather G−1).
	WireHops int
	// UpdateRows is the number of embedding rows scatter-added into the
	// local embedding matrices after the exchange.
	UpdateRows int64
	// UpdateDim is the embedding row width D.
	UpdateDim int
	// UpdateSerialization ≥ 1 models duplicate-row lock contention in the
	// baseline update (§II-B: rows under update are locked; §III-A: "no
	// serialization bottleneck" for the unique engine, factor 1).
	UpdateSerialization float64
	// OverheadSec is the fixed per-step framework cost (input pipeline,
	// kernel launch, host sync) calibrated per model family.
	OverheadSec float64
}

// StepTime returns the modeled duration of one synchronous training step on
// a cluster of g ranks. Compute, communication and the embedding update are
// serialized, as in the paper's TF-1.4 synchronous workflow.
func (h Hardware) StepTime(g int, c StepCost) float64 {
	compute := 0.0
	if c.ComputeFLOPs > 0 {
		frac := c.AchievedFrac
		if frac <= 0 {
			frac = 1
		}
		compute = c.ComputeFLOPs / (h.PeakFLOPS * frac)
	}
	comm := 0.0
	if g > 1 {
		comm = float64(c.WireBytes)/h.RingBW(g) + float64(c.WireHops)*h.HopLatency
	}
	update := 0.0
	if c.UpdateRows > 0 {
		ser := c.UpdateSerialization
		if ser < 1 {
			ser = 1
		}
		// Read-modify-write: 2× row bytes through memory.
		update = 2 * float64(c.UpdateRows) * float64(c.UpdateDim) * 4 * ser / h.MemBW
	}
	return compute + comm + update + c.OverheadSec
}

// EpochTime returns hours per epoch given tokens per epoch and the global
// batch (g ranks × k tokens each).
func (h Hardware) EpochTime(g, kPerRank int, tokensPerEpoch int64, c StepCost) float64 {
	steps := float64(tokensPerEpoch) / float64(int64(g)*int64(kPerRank))
	return steps * h.StepTime(g, c) / 3600
}

// ParallelEfficiency is the Tables III/IV metric: speedup relative to a
// baseline configuration divided by the resource ratio.
//
//	eff = (t_base · g_base) / (t · g)
func ParallelEfficiency(tBase float64, gBase int, t float64, g int) float64 {
	return tBase * float64(gBase) / (t * float64(g))
}

// Speedup is t_base / t.
func Speedup(tBase, t float64) float64 { return tBase / t }
