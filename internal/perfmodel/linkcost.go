package perfmodel

import "math/bits"

// This file is the online half of the package: where perfmodel.go distills a
// finished run's aggregate byte/FLOP counts into epoch hours, the types here
// hand the *live* simulator per-operation costs. A Hardware profile exposes
// its links as LinkCost values (α–β pairs); the collective layer charges
// every ring hop, gather and broadcast through them as the operations
// execute, and the cluster layer charges compute and memory traffic, so a
// run's virtual clocks accumulate predicted wall-clock online.

// LinkCost is the α–β cost of one interconnect link: a message of b bytes
// occupies the link for Alpha + b/BytesPerSec seconds. It is the per-link
// unit the collective layer's CostModel charges hops with.
type LinkCost struct {
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// BytesPerSec is the sustained link bandwidth.
	BytesPerSec float64
}

// HopSeconds returns the time one message of b bytes spends on the link.
func (l LinkCost) HopSeconds(b int64) float64 {
	return l.Alpha + float64(b)/l.BytesPerSec
}

// RingAllReduceSeconds returns the duration of a ring all-reduce over g
// ranks of a payload of elems elements at elemBytes each: 2(g−1) steps, each
// bounded by the largest chunk in flight (⌈elems/g⌉ elements).
func (l LinkCost) RingAllReduceSeconds(g, elems, elemBytes int) float64 {
	if elems <= 0 {
		return 0
	}
	return l.RingAllReduceSecondsBytes(g, int64((elems+g-1)/g)*int64(elemBytes))
}

// RingAllReduceSecondsBytes is the byte-denominated form of
// RingAllReduceSeconds for wire formats whose footprint is not a whole
// number of bytes per element (8-bit quantization carries per-chunk scales):
// 2(g−1) steps of one chunkBytes message each.
func (l LinkCost) RingAllReduceSecondsBytes(g int, chunkBytes int64) float64 {
	if g <= 1 || chunkBytes <= 0 {
		return 0
	}
	return float64(2*(g-1)) * l.HopSeconds(chunkBytes)
}

// RingAllGatherSeconds returns the duration of a ring all-gather over g
// ranks where the largest per-rank contribution is maxLocalBytes: g−1 steps,
// each forwarding one rank's payload.
func (l LinkCost) RingAllGatherSeconds(g int, maxLocalBytes int64) float64 {
	if g <= 1 {
		return 0
	}
	return float64(g-1) * l.HopSeconds(maxLocalBytes)
}

// TreeBroadcastSeconds returns the duration of a binomial-tree broadcast of
// b bytes to g ranks: ⌈log₂ g⌉ stages, each forwarding the full payload.
func (l LinkCost) TreeBroadcastSeconds(g int, b int64) float64 {
	if g <= 1 {
		return 0
	}
	stages := bits.Len(uint(g - 1))
	return float64(stages) * l.HopSeconds(b)
}

// IntraLink returns the cost of one intra-node (PCIe) link.
func (h Hardware) IntraLink() LinkCost {
	return LinkCost{Alpha: h.HopLatency, BytesPerSec: h.IntraBW}
}

// InterLink returns the cost of one inter-node (InfiniBand boundary) link.
func (h Hardware) InterLink() LinkCost {
	return LinkCost{Alpha: h.HopLatency, BytesPerSec: h.InterBW}
}

// RingLink returns the cost of the bottleneck link of a flat ring over g
// ranks: PCIe while the ring stays inside one node, the InfiniBand node
// boundary once it spans nodes (the LinkCost analogue of RingBW).
func (h Hardware) RingLink(g int) LinkCost {
	return LinkCost{Alpha: h.HopLatency, BytesPerSec: h.RingBW(g)}
}

// ComputeSeconds returns the time flops floating-point operations take at
// the given achieved fraction of peak (frac ≤ 0 means peak).
func (h Hardware) ComputeSeconds(flops, frac float64) float64 {
	if flops <= 0 {
		return 0
	}
	if frac <= 0 {
		frac = 1
	}
	return flops / (h.PeakFLOPS * frac)
}

// MemorySeconds returns the time b bytes of device-memory traffic take at
// the profile's effective memory bandwidth.
func (h Hardware) MemorySeconds(b int64) float64 {
	if b <= 0 {
		return 0
	}
	return float64(b) / h.MemBW
}
