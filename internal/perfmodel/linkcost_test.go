package perfmodel

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestHopSeconds(t *testing.T) {
	l := LinkCost{Alpha: 1e-5, BytesPerSec: 1e9}
	if got := l.HopSeconds(1e6); !almostEq(got, 1e-5+1e-3) {
		t.Fatalf("HopSeconds = %v", got)
	}
}

func TestRingAllReduceSeconds(t *testing.T) {
	l := LinkCost{Alpha: 2e-5, BytesPerSec: 8e9}
	// g=4, 1000 elems of 4 bytes: chunk = ceil(1000/4)*4 = 1000 B,
	// 6 steps.
	want := 6 * (2e-5 + 1000/8e9)
	if got := l.RingAllReduceSeconds(4, 1000, 4); !almostEq(got, want) {
		t.Fatalf("RingAllReduceSeconds = %v, want %v", got, want)
	}
	if l.RingAllReduceSeconds(1, 1000, 4) != 0 {
		t.Fatal("single rank must cost nothing")
	}
	if l.RingAllReduceSeconds(4, 0, 4) != 0 {
		t.Fatal("empty payload must cost nothing")
	}
}

func TestRingAllReduceSecondsBytes(t *testing.T) {
	l := LinkCost{Alpha: 2e-5, BytesPerSec: 8e9}
	// The element-denominated form must agree with the byte-denominated
	// one at whole elements — the equivalence the Wire-generalized cost
	// charging in internal/collective relies on.
	if a, b := l.RingAllReduceSeconds(4, 1000, 4), l.RingAllReduceSecondsBytes(4, 1000); !almostEq(a, b) {
		t.Fatalf("element form %v != byte form %v", a, b)
	}
	// A quantized chunk (1 byte/elem + scales) prices below FP16.
	q8 := l.RingAllReduceSecondsBytes(4, 250+4)
	fp16 := l.RingAllReduceSeconds(4, 1000, 2)
	if q8 >= fp16 {
		t.Fatalf("q8 chunk %v not below fp16 %v", q8, fp16)
	}
	if l.RingAllReduceSecondsBytes(1, 1000) != 0 {
		t.Fatal("single rank must cost nothing")
	}
	if l.RingAllReduceSecondsBytes(4, 0) != 0 {
		t.Fatal("empty chunk must cost nothing")
	}
}

func TestRingAllGatherSeconds(t *testing.T) {
	l := LinkCost{Alpha: 1e-5, BytesPerSec: 1e9}
	want := 3 * (1e-5 + 4096/1e9)
	if got := l.RingAllGatherSeconds(4, 4096); !almostEq(got, want) {
		t.Fatalf("RingAllGatherSeconds = %v, want %v", got, want)
	}
	if l.RingAllGatherSeconds(1, 4096) != 0 {
		t.Fatal("single rank must cost nothing")
	}
}

func TestTreeBroadcastSeconds(t *testing.T) {
	l := LinkCost{Alpha: 1e-5, BytesPerSec: 1e9}
	// g=8 → 3 stages; g=5 → 3 stages; g=2 → 1 stage.
	if got := l.TreeBroadcastSeconds(8, 1000); !almostEq(got, 3*(1e-5+1000/1e9)) {
		t.Fatalf("g=8: %v", got)
	}
	if got := l.TreeBroadcastSeconds(5, 1000); !almostEq(got, 3*(1e-5+1000/1e9)) {
		t.Fatalf("g=5: %v", got)
	}
	if got := l.TreeBroadcastSeconds(2, 1000); !almostEq(got, 1*(1e-5+1000/1e9)) {
		t.Fatalf("g=2: %v", got)
	}
	if l.TreeBroadcastSeconds(1, 1000) != 0 {
		t.Fatal("single rank must cost nothing")
	}
}

// TestHardwareLinks checks the profile → LinkCost projection and that
// RingLink switches fabrics exactly where RingBW does.
func TestHardwareLinks(t *testing.T) {
	hw := TitanX()
	if got := hw.IntraLink(); got.Alpha != hw.HopLatency || got.BytesPerSec != hw.IntraBW {
		t.Fatalf("IntraLink = %+v", got)
	}
	if got := hw.InterLink(); got.Alpha != hw.HopLatency || got.BytesPerSec != hw.InterBW {
		t.Fatalf("InterLink = %+v", got)
	}
	if got := hw.RingLink(hw.GPUsPerNode); got.BytesPerSec != hw.IntraBW {
		t.Fatalf("ring within one node must use PCIe, got %v B/s", got.BytesPerSec)
	}
	if got := hw.RingLink(hw.GPUsPerNode + 1); got.BytesPerSec != hw.InterBW {
		t.Fatalf("ring across nodes must use InfiniBand, got %v B/s", got.BytesPerSec)
	}
}

func TestComputeAndMemorySeconds(t *testing.T) {
	hw := TitanX()
	if got := hw.ComputeSeconds(hw.PeakFLOPS, 1); !almostEq(got, 1) {
		t.Fatalf("peak for one second = %v", got)
	}
	if got := hw.ComputeSeconds(hw.PeakFLOPS, 0.5); !almostEq(got, 2) {
		t.Fatalf("half efficiency = %v", got)
	}
	if hw.ComputeSeconds(0, 0.5) != 0 {
		t.Fatal("zero FLOPs must cost nothing")
	}
	if got := hw.MemorySeconds(int64(hw.MemBW)); !almostEq(got, 1) {
		t.Fatalf("MemBW bytes = %v", got)
	}
	if hw.MemorySeconds(0) != 0 {
		t.Fatal("zero bytes must cost nothing")
	}
}

// TestStepTimeMatchesLinkDecomposition ties the offline aggregate model to
// the online providers: for a pure-communication StepCost, StepTime must
// equal what the per-link α–β decomposition gives.
func TestStepTimeMatchesLinkDecomposition(t *testing.T) {
	hw := TitanX()
	g := 16
	c := StepCost{WireBytes: 1 << 20, WireHops: 2 * (g - 1)}
	want := hw.RingLink(g).HopSeconds(0)*float64(c.WireHops) + float64(c.WireBytes)/hw.RingBW(g)
	if got := hw.StepTime(g, c); !almostEq(got, want) {
		t.Fatalf("StepTime = %v, link decomposition = %v", got, want)
	}
}
