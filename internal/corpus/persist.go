package corpus

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Vocabulary persistence: a trained model is useless without the id↔word
// mapping it was trained with, so vocabularies serialize alongside model
// checkpoints (gob, versioned like model checkpoints).

const vocabVersion = 1

type vocabFile struct {
	Version int
	Words   []string
	Freq    []int64
}

// Save writes the vocabulary to w.
func (v *Vocabulary) Save(w io.Writer) error {
	f := vocabFile{Version: vocabVersion, Words: v.words, Freq: v.freq}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("corpus: save vocabulary: %w", err)
	}
	return nil
}

// LoadVocabulary reads a vocabulary written by Save.
func LoadVocabulary(r io.Reader) (*Vocabulary, error) {
	var f vocabFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("corpus: load vocabulary: %w", err)
	}
	if f.Version != vocabVersion {
		return nil, fmt.Errorf("corpus: vocabulary version %d, want %d", f.Version, vocabVersion)
	}
	if len(f.Words) == 0 || len(f.Words) != len(f.Freq) {
		return nil, fmt.Errorf("corpus: malformed vocabulary (%d words, %d freqs)", len(f.Words), len(f.Freq))
	}
	if f.Words[0] != unknownToken {
		return nil, fmt.Errorf("corpus: vocabulary missing <unk> at id 0")
	}
	v := &Vocabulary{
		words: f.Words,
		freq:  f.Freq,
		index: make(map[string]int, len(f.Words)),
	}
	for id, w := range f.Words {
		v.index[w] = id
	}
	return v, nil
}

// FreqWeights returns the recorded frequencies as float64 weights aligned
// with ids — the input sampling.NewUnigramSampler expects.
func (v *Vocabulary) FreqWeights() []float64 {
	out := make([]float64, len(v.freq))
	for i, f := range v.freq {
		out[i] = float64(f)
		if out[i] <= 0 {
			out[i] = 0.5 // <unk> or unseen: keep sampleable
		}
	}
	return out
}
