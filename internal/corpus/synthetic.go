package corpus

import (
	"zipflm/internal/rng"
)

// GeneratorConfig describes a synthetic Zipfian corpus.
type GeneratorConfig struct {
	// VocabSize is the number of distinct types the generator can emit.
	VocabSize int
	// ZipfExponent is the rank-frequency exponent s (freq ∝ rank^-s).
	// For s > 1 the expected type-token curve follows Heaps' law
	// U ∝ N^(1/s) until it saturates at VocabSize; the paper measures
	// U ∝ N^0.64, i.e. an effective s of about 1/0.64 ≈ 1.56.
	ZipfExponent float64
	// Seed makes the stream reproducible.
	Seed uint64
}

// TypeTokenExponentTarget is the exponent the paper fits across its four
// datasets (Figure 1: U ∝ N^0.64).
const TypeTokenExponentTarget = 0.64

// DefaultWordExponent is the Zipf exponent whose Heaps'-law image matches
// the paper's measured 0.64 type-token exponent.
const DefaultWordExponent = 1.0 / TypeTokenExponentTarget

// Generator produces an endless reproducible stream of token ids in
// [1, VocabSize] (id 0 is reserved for <unk> and never generated).
type Generator struct {
	cfg  GeneratorConfig
	zipf *rng.Zipf
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.VocabSize <= 0 {
		panic("corpus: generator needs positive VocabSize")
	}
	if cfg.ZipfExponent <= 0 {
		panic("corpus: generator needs positive ZipfExponent")
	}
	r := rng.New(cfg.Seed)
	return &Generator{cfg: cfg, zipf: rng.NewZipf(r, cfg.VocabSize, cfg.ZipfExponent)}
}

// Next returns the next token id in [1, VocabSize].
func (g *Generator) Next() int { return g.zipf.Next() + 1 }

// Stream generates n token ids.
func (g *Generator) Stream(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// TypeTokenPoint is one measurement of the Figure 1 curve: after reading N
// tokens, U distinct types had appeared.
type TypeTokenPoint struct {
	Tokens int
	Types  int
}

// TypeTokenCurve streams tokens from the generator and records the number of
// distinct types at each checkpoint (checkpoints must be ascending). It is
// the measurement behind Figure 1.
func (g *Generator) TypeTokenCurve(checkpoints []int) []TypeTokenPoint {
	seen := make([]bool, g.cfg.VocabSize+1)
	points := make([]TypeTokenPoint, 0, len(checkpoints))
	types := 0
	n := 0
	for _, cp := range checkpoints {
		for n < cp {
			id := g.Next()
			if !seen[id] {
				seen[id] = true
				types++
			}
			n++
		}
		points = append(points, TypeTokenPoint{Tokens: n, Types: types})
	}
	return points
}

// CountTypes returns the number of distinct values in ids — the U of a
// single training step's global batch, the quantity §III-A's uniqueness
// optimization lives off.
func CountTypes(ids []int) int {
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		seen[id] = struct{}{}
	}
	return len(seen)
}

// Split partitions a token stream into train and validation sets by blocks,
// keeping 1 block in valid for every (ratio-1) blocks in train — the paper
// splits 99:1 (1b, gb) and 1000:1 (ar, tieba) "by sampling without
// replacement and a fixed random seed" (§IV-A). Blocks preserve local token
// order so sequences remain trainable.
func Split(ids []int, ratio int, blockLen int, seed uint64) (train, valid []int) {
	if ratio < 2 {
		panic("corpus: split ratio must be >= 2")
	}
	if blockLen <= 0 {
		panic("corpus: split blockLen must be positive")
	}
	nBlocks := (len(ids) + blockLen - 1) / blockLen
	r := rng.New(seed)
	validBlocks := make(map[int]struct{})
	// Choose floor(nBlocks/ratio) distinct blocks for validation.
	want := nBlocks / ratio
	for len(validBlocks) < want {
		validBlocks[r.Intn(nBlocks)] = struct{}{}
	}
	train = make([]int, 0, len(ids))
	valid = make([]int, 0, len(ids)/ratio+blockLen)
	for b := 0; b < nBlocks; b++ {
		lo := b * blockLen
		hi := lo + blockLen
		if hi > len(ids) {
			hi = len(ids)
		}
		if _, ok := validBlocks[b]; ok {
			valid = append(valid, ids[lo:hi]...)
		} else {
			train = append(train, ids[lo:hi]...)
		}
	}
	return train, valid
}
