package corpus

import "fmt"

// DatasetKind distinguishes word-level from character-level corpora.
type DatasetKind int

const (
	// WordLevel corpora tokenize into words (large vocabulary).
	WordLevel DatasetKind = iota
	// CharLevelEN corpora tokenize into English characters (vocab ~98).
	CharLevelEN
	// CharLevelZH corpora tokenize into Chinese characters (vocab ~15K).
	CharLevelZH
)

// Dataset describes one corpus from the paper's Table I together with the
// synthetic generator parameters that stand in for it. Paper-scale counts
// are retained so Table I can be printed; generators are scaled down.
type Dataset struct {
	// Name is the short name used throughout the paper (1b, gb, cc, ar, tieba).
	Name string
	// FullName is the citation-style name.
	FullName string
	// Language of the corpus.
	Language string
	// Kind selects word vs char tokenization for the headline experiments.
	Kind DatasetKind
	// PaperChars, PaperWords, PaperBytes are Table I's paper-scale counts
	// (0 where the paper lists NA).
	PaperChars, PaperWords, PaperBytes int64
	// WordVocab is the modeling vocabulary used in experiments (§IV-A:
	// 100K most frequent words; char vocab 98 EN / 15437 ZH).
	WordVocab int
	// CharVocab is the character vocabulary size.
	CharVocab int
	// ZipfExponent parameterizes the synthetic generator for this corpus.
	ZipfExponent float64
	// SplitRatio is train:valid (99 means 99:1, 1000 means 1000:1).
	SplitRatio int
}

// Catalog returns the datasets of Table I plus Common Crawl (which appears
// in Figure 1 only), keyed in paper order.
func Catalog() []Dataset {
	return []Dataset{
		{
			Name: "1b", FullName: "1-Billion Word", Language: "English", Kind: WordLevel,
			PaperChars: 4_190_000_000, PaperWords: 780_000_000, PaperBytes: 3_940_000_000,
			WordVocab: 100_000, CharVocab: 98, ZipfExponent: DefaultWordExponent, SplitRatio: 99,
		},
		{
			Name: "gb", FullName: "Gutenberg", Language: "English", Kind: WordLevel,
			PaperChars: 8_900_000_000, PaperWords: 1_810_000_000, PaperBytes: 8_290_000_000,
			WordVocab: 100_000, CharVocab: 98, ZipfExponent: 1.52, SplitRatio: 99,
		},
		{
			Name: "cc", FullName: "Common Crawl", Language: "English", Kind: WordLevel,
			// Figure 1 only; Table I does not list it.
			PaperChars: 0, PaperWords: 0, PaperBytes: 0,
			WordVocab: 100_000, CharVocab: 98, ZipfExponent: 1.60, SplitRatio: 99,
		},
		{
			Name: "ar", FullName: "Amazon Review", Language: "English", Kind: CharLevelEN,
			PaperChars: 38_760_000_000, PaperWords: 7_010_000_000, PaperBytes: 37_040_000_000,
			WordVocab: 100_000, CharVocab: 98, ZipfExponent: 1.58, SplitRatio: 1000,
		},
		{
			Name: "tieba", FullName: "Baidu Tieba", Language: "Chinese", Kind: CharLevelZH,
			PaperChars: 34_360_000_000, PaperWords: 0, PaperBytes: 93_120_000_000,
			WordVocab: 0, CharVocab: 15_437, ZipfExponent: 1.10, SplitRatio: 1000,
		},
	}
}

// DatasetByName looks a dataset up by its short name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("corpus: unknown dataset %q", name)
}

// WordGenerator returns the synthetic word-id generator standing in for this
// dataset's word-level stream.
func (d Dataset) WordGenerator(seed uint64) *Generator {
	vocab := d.WordVocab
	if vocab == 0 {
		vocab = d.CharVocab
	}
	return NewGenerator(GeneratorConfig{
		VocabSize:    vocab,
		ZipfExponent: d.ZipfExponent,
		Seed:         seed,
	})
}

// CharGenerator returns the synthetic character-id generator. Character
// unigram distributions are much flatter than word distributions, so the
// exponent is fixed near 1 regardless of the word exponent; the vocabulary
// is tiny (98 EN) or mid-sized (15437 ZH).
func (d Dataset) CharGenerator(seed uint64) *Generator {
	vocab := d.CharVocab
	if vocab <= 0 {
		vocab = 98
	}
	return NewGenerator(GeneratorConfig{
		VocabSize:    vocab,
		ZipfExponent: 1.0,
		Seed:         seed,
	})
}

// BytesPerToken estimates storage bytes per token for Table I style
// accounting: English words average ~5 bytes + separator, English chars 1
// byte, Chinese chars ~2.7 bytes in UTF-8 (Table I: 93.12 GB / 34.36 B chars).
func (d Dataset) BytesPerToken() float64 {
	switch d.Kind {
	case CharLevelZH:
		return 2.71
	case CharLevelEN:
		return 1.0
	default:
		if d.PaperWords > 0 && d.PaperBytes > 0 {
			return float64(d.PaperBytes) / float64(d.PaperWords)
		}
		return 5.1
	}
}
