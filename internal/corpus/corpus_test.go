package corpus

import (
	"math"
	"testing"
	"testing/quick"

	"zipflm/internal/powerlaw"
)

func TestBuildVocabularyOrdering(t *testing.T) {
	tokens := []string{"a", "b", "a", "c", "a", "b"}
	v := BuildVocabulary(tokens, 0)
	if v.Size() != 4 { // <unk> + a,b,c
		t.Fatalf("size = %d, want 4", v.Size())
	}
	if v.Word(1) != "a" || v.Word(2) != "b" || v.Word(3) != "c" {
		t.Errorf("frequency ordering wrong: %q %q %q", v.Word(1), v.Word(2), v.Word(3))
	}
	if v.Freq(1) != 3 || v.Freq(2) != 2 || v.Freq(3) != 1 {
		t.Errorf("frequencies wrong: %d %d %d", v.Freq(1), v.Freq(2), v.Freq(3))
	}
}

func TestVocabularyMaxSize(t *testing.T) {
	tokens := []string{"a", "a", "b", "b", "c", "d"}
	v := BuildVocabulary(tokens, 2)
	if v.Size() != 3 { // <unk> + top 2
		t.Fatalf("size = %d, want 3", v.Size())
	}
	if v.ID("c") != UnknownID || v.ID("d") != UnknownID {
		t.Error("truncated words must map to <unk>")
	}
	if v.ID("a") == UnknownID || v.ID("b") == UnknownID {
		t.Error("retained words must not map to <unk>")
	}
}

func TestVocabularyDeterministicTieBreak(t *testing.T) {
	a := BuildVocabulary([]string{"x", "y", "z"}, 0)
	b := BuildVocabulary([]string{"z", "y", "x"}, 0)
	for id := 1; id < a.Size(); id++ {
		if a.Word(id) != b.Word(id) {
			t.Fatalf("tie-break not deterministic: %q vs %q at id %d", a.Word(id), b.Word(id), id)
		}
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	tokens := []string{"the", "cat", "sat", "the"}
	v := BuildVocabulary(tokens, 0)
	ids := v.Encode(tokens)
	for i, id := range ids {
		if v.Word(id) != tokens[i] {
			t.Errorf("round trip of %q failed", tokens[i])
		}
	}
	if cov := v.CoverageOf(ids); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}
	oov := v.Encode([]string{"zebra"})
	if oov[0] != UnknownID {
		t.Error("OOV must encode to UnknownID")
	}
}

func TestCoverageEmpty(t *testing.T) {
	v := SyntheticVocabulary(5)
	if v.CoverageOf(nil) != 0 {
		t.Error("coverage of empty stream must be 0")
	}
}

func TestSyntheticVocabulary(t *testing.T) {
	v := SyntheticVocabulary(100)
	if v.Size() != 101 {
		t.Fatalf("size = %d, want 101", v.Size())
	}
	// Frequencies must be non-increasing in id (Zipf layout).
	for id := 2; id < v.Size(); id++ {
		if v.Freq(id) > v.Freq(id-1) {
			t.Fatalf("freq not monotone at id %d", id)
		}
	}
	if v.ID(v.Word(50)) != 50 {
		t.Error("index inconsistent")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The cat, sat!  On THE mat2.")
	want := []string{"the", "cat", ",", "sat", "!", "on", "the", "mat2", "."}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCharTokens(t *testing.T) {
	got := CharTokens("ab白")
	if len(got) != 3 || got[2] != "白" {
		t.Errorf("CharTokens = %v", got)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := GeneratorConfig{VocabSize: 1000, ZipfExponent: 1.2, Seed: 5}
	a := NewGenerator(cfg).Stream(500)
	b := NewGenerator(cfg).Stream(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestGeneratorRange(t *testing.T) {
	g := NewGenerator(GeneratorConfig{VocabSize: 50, ZipfExponent: 1.0, Seed: 1})
	for _, id := range g.Stream(5000) {
		if id < 1 || id > 50 {
			t.Fatalf("id %d out of [1,50]", id)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for _, cfg := range []GeneratorConfig{
		{VocabSize: 0, ZipfExponent: 1},
		{VocabSize: 10, ZipfExponent: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewGenerator(cfg)
		}()
	}
}

// TestTypeTokenExponent is the reproduction of the paper's key empirical
// claim (Figure 1): the type-token curve of a Zipfian corpus follows
// U ∝ N^α with α ≈ 0.64.
func TestTypeTokenExponent(t *testing.T) {
	g := NewGenerator(GeneratorConfig{
		VocabSize:    2_000_000,
		ZipfExponent: DefaultWordExponent,
		Seed:         7,
	})
	checkpoints := []int{500, 5_000, 50_000, 500_000}
	curve := g.TypeTokenCurve(checkpoints)
	xs := make([]float64, len(curve))
	ys := make([]float64, len(curve))
	for i, p := range curve {
		xs[i] = float64(p.Tokens)
		ys[i] = float64(p.Types)
	}
	fit, err := powerlaw.FitXY(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 0.55 || fit.Alpha > 0.75 {
		t.Errorf("type-token exponent = %v, want in [0.55, 0.75] (paper: 0.64)", fit.Alpha)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %v, want ≈ 1.00", fit.R2)
	}
	// U must be far below N (the gap Figure 1 highlights).
	last := curve[len(curve)-1]
	if last.Types*10 > last.Tokens {
		t.Errorf("types %d not ≪ tokens %d", last.Types, last.Tokens)
	}
}

// TestCharVocabSaturates mirrors the paper's remark that "the number of
// unique characters becomes constant as we keep increasing the batch size".
func TestCharVocabSaturates(t *testing.T) {
	d, err := DatasetByName("ar")
	if err != nil {
		t.Fatal(err)
	}
	g := d.CharGenerator(3)
	curve := g.TypeTokenCurve([]int{1000, 10_000, 100_000})
	last := curve[len(curve)-1]
	if last.Types > d.CharVocab {
		t.Fatalf("types %d exceeds char vocab %d", last.Types, d.CharVocab)
	}
	if last.Types < d.CharVocab*9/10 {
		t.Errorf("char types %d did not saturate toward %d", last.Types, d.CharVocab)
	}
	// Saturation: second half of the curve barely grows.
	if curve[2].Types-curve[1].Types > curve[1].Types/10 {
		t.Errorf("char curve still growing: %+v", curve)
	}
}

func TestTypeTokenCurveMonotone(t *testing.T) {
	g := NewGenerator(GeneratorConfig{VocabSize: 500, ZipfExponent: 1.3, Seed: 11})
	curve := g.TypeTokenCurve([]int{10, 100, 1000, 10000})
	for i := 1; i < len(curve); i++ {
		if curve[i].Types < curve[i-1].Types || curve[i].Tokens <= curve[i-1].Tokens {
			t.Fatalf("curve not monotone: %+v", curve)
		}
	}
}

func TestCountTypes(t *testing.T) {
	if got := CountTypes([]int{1, 1, 2, 3, 3, 3}); got != 3 {
		t.Errorf("CountTypes = %d, want 3", got)
	}
	if got := CountTypes(nil); got != 0 {
		t.Errorf("CountTypes(nil) = %d, want 0", got)
	}
}

func TestSplitProportions(t *testing.T) {
	ids := make([]int, 100_000)
	for i := range ids {
		ids[i] = i
	}
	train, valid := Split(ids, 100, 100, 42)
	if len(train)+len(valid) != len(ids) {
		t.Fatalf("split lost tokens: %d + %d != %d", len(train), len(valid), len(ids))
	}
	frac := float64(len(valid)) / float64(len(ids))
	if math.Abs(frac-0.01) > 0.002 {
		t.Errorf("valid fraction = %v, want ~0.01", frac)
	}
	// No token appears in both.
	seen := make(map[int]bool, len(valid))
	for _, id := range valid {
		seen[id] = true
	}
	for _, id := range train {
		if seen[id] {
			t.Fatal("token appears in both splits")
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	ids := make([]int, 10_000)
	for i := range ids {
		ids[i] = i
	}
	t1, _ := Split(ids, 10, 50, 7)
	t2, _ := Split(ids, 10, 50, 7)
	if len(t1) != len(t2) {
		t.Fatal("split not deterministic")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSplitPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Split([]int{1}, 1, 10, 0) },
		func() { Split([]int{1}, 10, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d datasets, want 5", len(cat))
	}
	names := map[string]bool{}
	for _, d := range cat {
		names[d.Name] = true
		if d.Name != "cc" && d.Name != "tieba" && d.PaperWords == 0 {
			t.Errorf("%s missing paper word count", d.Name)
		}
	}
	for _, want := range []string{"1b", "gb", "cc", "ar", "tieba"} {
		if !names[want] {
			t.Errorf("catalog missing %q", want)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestTiebaMatchesTableI(t *testing.T) {
	d, err := DatasetByName("tieba")
	if err != nil {
		t.Fatal(err)
	}
	if d.CharVocab != 15_437 {
		t.Errorf("tieba char vocab = %d, want 15437 (§V-C)", d.CharVocab)
	}
	// 93.12 GB / 34.36 B chars ≈ 2.71 bytes per char.
	got := d.BytesPerToken()
	want := float64(d.PaperBytes) / float64(d.PaperChars)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("bytes/char = %v, want ~%v", got, want)
	}
}

// TestSplitProperty: any ratio/blockLen keeps all tokens exactly once.
func TestSplitProperty(t *testing.T) {
	f := func(nRaw, ratioRaw, blockRaw uint8) bool {
		n := int(nRaw)%500 + 10
		ratio := int(ratioRaw)%20 + 2
		block := int(blockRaw)%20 + 1
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		train, valid := Split(ids, ratio, block, 1)
		if len(train)+len(valid) != n {
			return false
		}
		all := append(append([]int{}, train...), valid...)
		seen := make(map[int]bool, n)
		for _, id := range all {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
