package corpus

import (
	"zipflm/internal/rng"
)

// MarkovConfig describes a first-order Markov corpus generator with a
// Zipfian vocabulary. Pure i.i.d. Zipf streams have no sequential structure
// — a language model can at best learn the unigram distribution, so
// training curves plateau immediately. Real text is predictable from
// context; this generator restores that property: every word has a small
// set of Zipf-weighted successor words, giving the stream an entropy rate
// far below its unigram entropy (like English's ~1 bit/char vs ~4.1 bits of
// unigram char entropy). The accuracy experiments (Figures 5, 7, 8,
// Table V) train on these streams so validation perplexity falls across
// epochs the way the paper's curves do.
type MarkovConfig struct {
	// VocabSize is the number of distinct types (ids 1..VocabSize).
	VocabSize int
	// Branching is the successor-set size per word; entropy rate grows
	// with it. Must be ≥ 1; values ≪ VocabSize give strong structure.
	Branching int
	// ZipfExponent shapes both the successor draws (so the marginal
	// stays Zipfian) and the successor weights.
	ZipfExponent float64
	// Seed fixes the transition table and the walk.
	Seed uint64
}

// MarkovGenerator emits a reproducible token stream from a random walk over
// a deterministic sparse transition table.
type MarkovGenerator struct {
	cfg   MarkovConfig
	walk  *rng.RNG
	state int
	// successors[w] lists w's Branching successor ids; built lazily but
	// deterministically from (Seed, w) so two generators with the same
	// config produce identical corpora regardless of visit order.
	successors map[int][]int
	// pick draws a successor slot with Zipfian weights.
	pick *rng.Zipf
}

// NewMarkovGenerator returns a generator for cfg.
func NewMarkovGenerator(cfg MarkovConfig) *MarkovGenerator {
	if cfg.VocabSize <= 0 {
		panic("corpus: MarkovGenerator needs positive VocabSize")
	}
	if cfg.Branching <= 0 {
		panic("corpus: MarkovGenerator needs positive Branching")
	}
	if cfg.ZipfExponent <= 0 {
		panic("corpus: MarkovGenerator needs positive ZipfExponent")
	}
	if cfg.Branching > cfg.VocabSize {
		cfg.Branching = cfg.VocabSize
	}
	walk := rng.New(cfg.Seed ^ 0xa5a5a5a5a5a5a5a5)
	return &MarkovGenerator{
		cfg:        cfg,
		walk:       walk,
		state:      1,
		successors: make(map[int][]int),
		pick:       rng.NewZipf(walk.Fork(), cfg.Branching, cfg.ZipfExponent),
	}
}

// successorsOf returns w's successor list, building it on first use from a
// generator keyed by (Seed, w).
func (m *MarkovGenerator) successorsOf(w int) []int {
	if s, ok := m.successors[w]; ok {
		return s
	}
	// Derive a per-state RNG; the multiplier spreads consecutive ids.
	r := rng.New(m.cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
	z := rng.NewZipf(r, m.cfg.VocabSize, m.cfg.ZipfExponent)
	seen := make(map[int]struct{}, m.cfg.Branching)
	s := make([]int, 0, m.cfg.Branching)
	for len(s) < m.cfg.Branching {
		cand := z.Next() + 1
		if _, dup := seen[cand]; dup {
			// Fall back to a uniform draw when the Zipf head is
			// exhausted, so the loop terminates for large Branching.
			cand = r.Intn(m.cfg.VocabSize) + 1
			if _, dup2 := seen[cand]; dup2 {
				continue
			}
		}
		seen[cand] = struct{}{}
		s = append(s, cand)
	}
	m.successors[w] = s
	return s
}

// Next returns the next token id in [1, VocabSize].
func (m *MarkovGenerator) Next() int {
	succ := m.successorsOf(m.state)
	m.state = succ[m.pick.Next()]
	return m.state
}

// Stream generates n token ids.
func (m *MarkovGenerator) Stream(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = m.Next()
	}
	return out
}

// TypeTokenCurve mirrors Generator.TypeTokenCurve for the Markov stream.
func (m *MarkovGenerator) TypeTokenCurve(checkpoints []int) []TypeTokenPoint {
	seen := make([]bool, m.cfg.VocabSize+1)
	points := make([]TypeTokenPoint, 0, len(checkpoints))
	types, n := 0, 0
	for _, cp := range checkpoints {
		for n < cp {
			id := m.Next()
			if !seen[id] {
				seen[id] = true
				types++
			}
			n++
		}
		points = append(points, TypeTokenPoint{Tokens: n, Types: types})
	}
	return points
}
