package corpus

import (
	"testing"
	"unicode"
	"unicode/utf8"
)

// FuzzTokenize feeds arbitrary (including invalid) UTF-8 through the
// tokenizer and checks its contracts: no empty tokens, all letters
// lower-cased, every letter/digit of the input preserved.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"The cat sat.", "", "   ", "白日依山尽", "a\x80b", "café ÉTÉ", "x1 2y, z!",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text)
		var letterCount int
		for _, r := range text {
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				letterCount++
			}
		}
		var gotLetters int
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if unicode.IsUpper(r) {
					t.Fatalf("upper-case rune in token %q", tok)
				}
				if unicode.IsLetter(r) || unicode.IsDigit(r) {
					gotLetters++
				}
			}
		}
		if gotLetters != letterCount {
			t.Fatalf("letter count changed: %d in, %d out", letterCount, gotLetters)
		}

		// Char tokenization must preserve rune count for valid UTF-8.
		if utf8.ValidString(text) {
			chars := CharTokens(text)
			want := 0
			for range text {
				want++
			}
			if len(chars) != want {
				t.Fatalf("CharTokens returned %d runes, want %d", len(chars), want)
			}
		}
	})
}

// FuzzVocabularyRoundTrip builds a vocabulary from arbitrary token streams
// and checks encode/word round trips.
func FuzzVocabularyRoundTrip(f *testing.F) {
	f.Add("a b a c", uint8(3))
	f.Add("x", uint8(0))
	f.Fuzz(func(t *testing.T, text string, capRaw uint8) {
		toks := Tokenize(text)
		if len(toks) == 0 {
			return
		}
		maxSize := int(capRaw % 16)
		v := BuildVocabulary(toks, maxSize)
		if v.Size() < 1 {
			t.Fatal("vocabulary lost <unk>")
		}
		ids := v.Encode(toks)
		for i, id := range ids {
			if id < 0 || id >= v.Size() {
				t.Fatalf("id %d out of range", id)
			}
			if id != UnknownID && v.Word(id) != toks[i] {
				t.Fatalf("round trip of %q failed", toks[i])
			}
		}
	})
}
