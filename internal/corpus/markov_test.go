package corpus

import (
	"math"
	"testing"
)

func TestMarkovDeterminism(t *testing.T) {
	cfg := MarkovConfig{VocabSize: 200, Branching: 8, ZipfExponent: 1.1, Seed: 5}
	a := NewMarkovGenerator(cfg).Stream(2000)
	b := NewMarkovGenerator(cfg).Stream(2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestMarkovRange(t *testing.T) {
	g := NewMarkovGenerator(MarkovConfig{VocabSize: 50, Branching: 5, ZipfExponent: 1.0, Seed: 1})
	for _, id := range g.Stream(5000) {
		if id < 1 || id > 50 {
			t.Fatalf("id %d out of range", id)
		}
	}
}

func TestMarkovBranchingRespected(t *testing.T) {
	g := NewMarkovGenerator(MarkovConfig{VocabSize: 100, Branching: 4, ZipfExponent: 1.0, Seed: 2})
	// Record observed successors per state; none may exceed Branching.
	succ := make(map[int]map[int]bool)
	prev := 0
	for _, id := range g.Stream(50_000) {
		if prev != 0 {
			m := succ[prev]
			if m == nil {
				m = map[int]bool{}
				succ[prev] = m
			}
			m[id] = true
		}
		prev = id
	}
	for state, s := range succ {
		if len(s) > 4 {
			t.Fatalf("state %d has %d successors, branching is 4", state, len(s))
		}
	}
}

// TestMarkovIsLearnable: the stream's conditional (bigram) entropy must sit
// far below its unigram entropy — the property that makes validation
// perplexity fall during training, as in the paper's figures.
func TestMarkovIsLearnable(t *testing.T) {
	g := NewMarkovGenerator(MarkovConfig{VocabSize: 300, Branching: 6, ZipfExponent: 1.1, Seed: 3})
	stream := g.Stream(300_000)

	uni := make(map[int]float64)
	bi := make(map[[2]int]float64)
	for i, id := range stream {
		uni[id]++
		if i > 0 {
			bi[[2]int{stream[i-1], id}]++
		}
	}
	n := float64(len(stream))
	var hUni float64
	for _, c := range uni {
		p := c / n
		hUni -= p * math.Log(p)
	}
	// H(X_t | X_{t-1}) = H(bigram) − H(unigram).
	var hBi float64
	for _, c := range bi {
		p := c / (n - 1)
		hBi -= p * math.Log(p)
	}
	hCond := hBi - hUni
	if hCond > hUni*0.7 {
		t.Errorf("conditional entropy %.2f not far below unigram %.2f", hCond, hUni)
	}
	// Branching 6 bounds the conditional entropy by ln 6.
	if hCond > math.Log(6)+0.05 {
		t.Errorf("conditional entropy %.2f exceeds ln(branching) %.2f", hCond, math.Log(6))
	}
}

// TestMarkovMarginalIsSkewed: the stationary distribution must stay
// head-heavy (Zipf-like), so the uniqueness optimization still has
// duplicates to exploit on Markov streams.
func TestMarkovMarginalIsSkewed(t *testing.T) {
	g := NewMarkovGenerator(MarkovConfig{VocabSize: 500, Branching: 8, ZipfExponent: 1.2, Seed: 4})
	stream := g.Stream(200_000)
	counts := make(map[int]int)
	for _, id := range stream {
		counts[id]++
	}
	// Top 10% of observed types must carry well over half the mass.
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	// Partial selection: simple sort is fine at this size.
	for i := 0; i < len(freqs); i++ {
		for j := i + 1; j < len(freqs); j++ {
			if freqs[j] > freqs[i] {
				freqs[i], freqs[j] = freqs[j], freqs[i]
			}
		}
	}
	head := len(freqs) / 10
	if head == 0 {
		head = 1
	}
	var headMass, total int
	for i, c := range freqs {
		total += c
		if i < head {
			headMass += c
		}
	}
	if float64(headMass) < 0.5*float64(total) {
		t.Errorf("head mass %.2f of total; marginal not Zipf-like", float64(headMass)/float64(total))
	}
}

func TestMarkovTypeTokenMonotone(t *testing.T) {
	g := NewMarkovGenerator(MarkovConfig{VocabSize: 400, Branching: 6, ZipfExponent: 1.1, Seed: 6})
	curve := g.TypeTokenCurve([]int{100, 1000, 10000})
	for i := 1; i < len(curve); i++ {
		if curve[i].Types < curve[i-1].Types {
			t.Fatalf("curve not monotone: %+v", curve)
		}
	}
	if curve[2].Types > 400 {
		t.Fatalf("types exceed vocabulary")
	}
}

func TestMarkovPanics(t *testing.T) {
	for _, cfg := range []MarkovConfig{
		{VocabSize: 0, Branching: 1, ZipfExponent: 1},
		{VocabSize: 10, Branching: 0, ZipfExponent: 1},
		{VocabSize: 10, Branching: 1, ZipfExponent: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewMarkovGenerator(cfg)
		}()
	}
}

func TestMarkovBranchingClampedToVocab(t *testing.T) {
	g := NewMarkovGenerator(MarkovConfig{VocabSize: 3, Branching: 10, ZipfExponent: 1, Seed: 1})
	for _, id := range g.Stream(100) {
		if id < 1 || id > 3 {
			t.Fatalf("id %d out of range", id)
		}
	}
}
