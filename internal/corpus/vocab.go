// Package corpus provides the text substrate of the reproduction: frequency
// vocabularies, tokenization, synthetic Zipfian corpus generators standing in
// for the paper's four datasets (1-Billion word, Gutenberg, Amazon Review,
// Baidu Tieba — Table I), type-token curves (Figure 1) and train/validation
// splitting (§IV-A).
//
// The paper's datasets total >140 GB and one of them (Tieba) is internal to
// Baidu, so this package substitutes seeded generators whose rank-frequency
// distribution follows Zipf's law with a configurable exponent. The type-token
// exponent the paper measures (U ∝ N^0.64) is a direct consequence of that
// distribution, so every code path the optimizations exercise — duplicate
// tokens in a batch, power-law overlap across ranks — behaves as it would on
// the real corpora.
package corpus

import (
	"fmt"
	"sort"
)

// UnknownID is the vocabulary id reserved for out-of-vocabulary tokens.
const UnknownID = 0

// unknownToken is the surface form of the OOV entry.
const unknownToken = "<unk>"

// Vocabulary maps between token strings and dense integer ids. Ids are
// assigned in descending frequency order (id 1 = most frequent token), the
// layout both the paper's log-uniform sampled softmax and its Zipf's-freq
// seeding strategy assume. Id 0 is reserved for <unk>.
type Vocabulary struct {
	words []string
	index map[string]int
	freq  []int64
}

// BuildVocabulary counts token frequencies and returns a vocabulary of the
// maxSize most frequent tokens (plus <unk> at id 0). maxSize <= 0 means
// unlimited. This mirrors §IV-A: "we use the 100,000 most frequent words …
// as the vocabulary for each corpus."
func BuildVocabulary(tokens []string, maxSize int) *Vocabulary {
	counts := make(map[string]int64, 1024)
	for _, tok := range tokens {
		counts[tok]++
	}
	return buildFromCounts(counts, maxSize)
}

func buildFromCounts(counts map[string]int64, maxSize int) *Vocabulary {
	type wc struct {
		w string
		c int64
	}
	list := make([]wc, 0, len(counts))
	for w, c := range counts {
		list = append(list, wc{w, c})
	}
	// Sort by descending count, ties broken lexically for determinism.
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].w < list[j].w
	})
	if maxSize > 0 && len(list) > maxSize {
		list = list[:maxSize]
	}
	v := &Vocabulary{
		words: make([]string, 1, len(list)+1),
		index: make(map[string]int, len(list)+1),
		freq:  make([]int64, 1, len(list)+1),
	}
	v.words[0] = unknownToken
	v.index[unknownToken] = UnknownID
	for _, e := range list {
		if e.w == unknownToken {
			v.freq[UnknownID] += e.c
			continue
		}
		v.index[e.w] = len(v.words)
		v.words = append(v.words, e.w)
		v.freq = append(v.freq, e.c)
	}
	return v
}

// SyntheticVocabulary builds a vocabulary of n synthetic word forms
// ("w0".."w<n-1>") with Zipf(1/rank) pseudo-frequencies. It is used by the
// generators, where surface forms never matter, only ids and the frequency
// ordering.
func SyntheticVocabulary(n int) *Vocabulary {
	if n <= 0 {
		panic("corpus: SyntheticVocabulary with non-positive size")
	}
	v := &Vocabulary{
		words: make([]string, n+1),
		index: make(map[string]int, n+1),
		freq:  make([]int64, n+1),
	}
	v.words[0] = unknownToken
	v.index[unknownToken] = UnknownID
	for i := 1; i <= n; i++ {
		w := fmt.Sprintf("w%d", i-1)
		v.words[i] = w
		v.index[w] = i
		v.freq[i] = int64(1_000_000_000 / i) // 1/rank pseudo-counts
	}
	return v
}

// Size returns the number of entries including <unk>.
func (v *Vocabulary) Size() int { return len(v.words) }

// ID returns the id for a token, or UnknownID when absent.
func (v *Vocabulary) ID(token string) int {
	if id, ok := v.index[token]; ok {
		return id
	}
	return UnknownID
}

// Word returns the surface form for an id. Panics on out-of-range ids.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// Freq returns the recorded frequency of an id.
func (v *Vocabulary) Freq(id int) int64 { return v.freq[id] }

// Encode maps tokens to ids, substituting UnknownID for OOV tokens.
func (v *Vocabulary) Encode(tokens []string) []int {
	out := make([]int, len(tokens))
	for i, tok := range tokens {
		out[i] = v.ID(tok)
	}
	return out
}

// CoverageOf reports the fraction of the token stream covered by in-vocab
// entries (the paper reports 99% coverage for its 100K vocabularies).
func (v *Vocabulary) CoverageOf(ids []int) float64 {
	if len(ids) == 0 {
		return 0
	}
	known := 0
	for _, id := range ids {
		if id != UnknownID {
			known++
		}
	}
	return float64(known) / float64(len(ids))
}
