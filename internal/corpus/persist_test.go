package corpus

import (
	"bytes"
	"strings"
	"testing"
)

func TestVocabularySaveLoad(t *testing.T) {
	v := BuildVocabulary([]string{"the", "cat", "the", "sat", "the", "cat"}, 0)
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != v.Size() {
		t.Fatalf("size %d, want %d", loaded.Size(), v.Size())
	}
	for id := 0; id < v.Size(); id++ {
		if loaded.Word(id) != v.Word(id) || loaded.Freq(id) != v.Freq(id) {
			t.Fatalf("id %d mismatch after round trip", id)
		}
	}
	// Index rebuilt correctly.
	if loaded.ID("the") != v.ID("the") || loaded.ID("zebra") != UnknownID {
		t.Error("index not rebuilt")
	}
}

func TestLoadVocabularyRejectsGarbage(t *testing.T) {
	if _, err := LoadVocabulary(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestFreqWeights(t *testing.T) {
	v := BuildVocabulary([]string{"a", "a", "b"}, 0)
	w := v.FreqWeights()
	if len(w) != v.Size() {
		t.Fatalf("weights length %d", len(w))
	}
	if w[1] != 2 || w[2] != 1 {
		t.Errorf("weights %v", w)
	}
	// <unk> has zero recorded frequency but must stay sampleable.
	if w[0] <= 0 {
		t.Error("<unk> weight must be positive")
	}
}

func TestSyntheticVocabularySaveLoad(t *testing.T) {
	v := SyntheticVocabulary(50)
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Word(25) != v.Word(25) {
		t.Error("synthetic vocabulary round trip failed")
	}
}
