package corpus

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases text and splits it into word tokens, treating any
// run of letters-or-digits as a token and every other rune as a separator
// (punctuation becomes its own token, as NLTK-style tokenizers do; the paper
// cites Bird et al. for "lower-casing and tokenization").
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			tokens = append(tokens, string(r))
		}
	}
	flush()
	return tokens
}

// CharTokens splits text into character tokens (runes as strings), the
// tokenization the character language model uses; the vocabulary is then
// "all alphanumeric characters and common symbols" (§IV-A).
func CharTokens(text string) []string {
	out := make([]string, 0, len(text))
	for _, r := range text {
		out = append(out, string(r))
	}
	return out
}
