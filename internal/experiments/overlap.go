package experiments

import (
	"fmt"
	"time"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func init() {
	register("overlap",
		"Overlap ablation: pooled collectives + bucketed async allreduce vs synchronous dense reduction (step wall-clock)",
		runOverlap)
}

// runOverlap measures what the communication substrate work buys on the
// training hot path: the same workload steps once with the synchronous
// per-tensor dense reduction and once with the overlapped bucketed path
// (dense ring all-reduces streaming out during backprop and running under
// the sparse embedding exchange). Replicas and wire bytes are identical by
// construction — the tests assert bit-equality — so the only thing allowed
// to change is wall-clock, which is what the table reports.
func runOverlap(opts Options) (*Report, error) {
	ranksList := []int{2, 4, 8}
	steps := 8
	mc := model.Config{
		Vocab: 4000, Dim: 96, Hidden: 192, RNN: model.KindLSTM, Sampled: 96,
	}
	batch, seqLen := 8, 20
	if opts.Quick {
		ranksList = []int{2, 4}
		steps = 3
		mc = model.Config{Vocab: 500, Dim: 32, Hidden: 48, RNN: model.KindLSTM, Sampled: 32}
		batch, seqLen = 4, 12
	}

	gen := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    mc.Vocab - 1,
		ZipfExponent: 1.1,
		Seed:         opts.Seed,
	})
	maxRanks := ranksList[len(ranksList)-1]
	perRank := (steps + 2) * batch * seqLen
	stream := gen.Stream(perRank*maxRanks + 2000)
	train, valid := corpus.Split(stream, 20, 100, opts.Seed)

	timeSteps := func(ranks int, overlap bool) (perStep time.Duration, wireBytes int64, err error) {
		cfg := trainer.Config{
			Model:        mc,
			Ranks:        ranks,
			BatchPerRank: batch,
			SeqLen:       seqLen,
			LR:           0.1,
			Exchange:     core.UniqueExchange{},
			SeedStrategy: sampling.ZipfFreq,
			BaseSeed:     opts.Seed,
			Overlap:      overlap,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			return 0, 0, err
		}
		if err := tr.Steps(1); err != nil { // warm pools, caches, samplers
			return 0, 0, err
		}
		// Difference the byte counters around the timed section so the
		// warm-up step's traffic stays out of the reported figure.
		warmBytes := tr.Comm().MaxStats().Total()
		start := time.Now()
		if err := tr.Steps(steps); err != nil {
			return 0, 0, err
		}
		return time.Since(start) / time.Duration(steps), tr.Comm().MaxStats().Total() - warmBytes, nil
	}

	tab := metrics.NewTable("Step wall-clock, synchronous vs overlapped dense reduction:",
		"ranks", "sync ms/step", "overlap ms/step", "speedup", "wire bytes/rank", "bytes identical")
	notes := []string{
		"overlap = dense gradients ring-reduce asynchronously (bucketed) during backprop and under the sparse exchange; pooled buffers on both paths",
	}
	var bestSpeedup float64
	for _, g := range ranksList {
		syncPer, syncBytes, err := timeSteps(g, false)
		if err != nil {
			return nil, err
		}
		ovPer, ovBytes, err := timeSteps(g, true)
		if err != nil {
			return nil, err
		}
		speedup := float64(syncPer) / float64(ovPer)
		if speedup > bestSpeedup {
			bestSpeedup = speedup
		}
		same := "yes"
		if syncBytes != ovBytes {
			same = fmt.Sprintf("NO (%d vs %d)", syncBytes, ovBytes)
		}
		tab.AddRow(
			fmt.Sprintf("%d", g),
			fmt.Sprintf("%.2f", float64(syncPer)/1e6),
			fmt.Sprintf("%.2f", float64(ovPer)/1e6),
			fmt.Sprintf("%.2fx", speedup),
			metrics.HumanBytes(ovBytes),
			same,
		)
		if syncBytes != ovBytes {
			notes = append(notes, fmt.Sprintf(
				"WARNING: ranks=%d wire bytes differ between modes — bucketing must not change accounting", g))
		}
	}
	notes = append(notes, fmt.Sprintf("best step speedup from overlap: %.2fx", bestSpeedup))
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}
