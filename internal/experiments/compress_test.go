package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestCompressExperiment gates the subsystem's acceptance invariants on the
// quick run: every compressed variant's measured dense wire bytes sit
// strictly below the uncompressed row, the rerun is bit-deterministic, and
// the repriced weak-scaling step improves on the baseline engine.
func TestCompressExperiment(t *testing.T) {
	rep, err := Run("compress", Options{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("expected 2 tables, got %d", len(rep.Tables))
	}

	// Table 1: the "vs FP32" column must be 1.00x for the reference row
	// and < 1 for every compressed row.
	train := rep.Tables[0]
	rows := train.Rows()
	if len(rows) != 5 {
		t.Fatalf("expected 5 compressor rows, got %d", len(rows))
	}
	for i, row := range rows {
		f, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "x"), 64)
		if err != nil {
			t.Fatalf("row %d ratio %q: %v", i, row[2], err)
		}
		if i == 0 {
			if f != 1 {
				t.Fatalf("reference row ratio %v, want 1.00x", f)
			}
			continue
		}
		if f >= 1 {
			t.Errorf("%s: wire ratio %vx not below the uncompressed row", row[0], f)
		}
	}
	// Loss deltas stay finite and modest — error feedback is working.
	for _, row := range rows {
		d, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("loss delta %q: %v", row[6], err)
		}
		if d > 0.5 || d < -0.5 {
			t.Errorf("%s: loss delta %v implausibly large", row[0], d)
		}
	}

	joined := strings.Join(rep.Notes, "\n")
	if strings.Contains(joined, "WARNING") {
		t.Fatalf("experiment raised a warning:\n%s", joined)
	}
	if !strings.Contains(joined, "deterministic: re-running the top-k configuration") {
		t.Fatalf("missing determinism assertion:\n%s", joined)
	}
	if !strings.Contains(joined, "improves the baseline engine's predicted step time") {
		t.Fatalf("missing weak-scaling improvement:\n%s", joined)
	}
	if !strings.Contains(joined, "Zipf policy") {
		t.Fatalf("missing Zipf policy note:\n%s", joined)
	}

	// Table 2: q8 step time strictly below FP32 on every running row.
	for _, row := range rep.Tables[1].Rows() {
		if strings.HasPrefix(row[1], "*") {
			continue
		}
		fp32, err1 := strconv.ParseFloat(row[1], 64)
		q8, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable step times %q %q", row[1], row[2])
		}
		if q8 > fp32 {
			t.Errorf("G=%s: q8 step %v above fp32 %v", row[0], q8, fp32)
		}
	}
}
