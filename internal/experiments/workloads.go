package experiments

import (
	"zipflm/internal/core"
	"zipflm/internal/perfmodel"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

// This file holds the paper-scale workload descriptions (§IV-B) and the
// calibration constants anchoring the perfmodel to the paper's own
// measurements. Everything G-dependent — unique-word counts, wire volumes,
// scratch memory — is *measured* by drawing real token/candidate streams
// and running them through the same unique-merge code the exchange engines
// use; only the translation of volumes into seconds uses the calibrated
// hardware model.

// wordWorkload is the §IV-B word LM: LSTM 2048 cells, projection/embedding
// D = 512, batch 32 × sequence 20 = 640 tokens per GPU, vocabulary 100K,
// sampled softmax with 1024 samples per GPU.
type scalingWorkload struct {
	Name string
	// K is tokens per rank per step.
	K int
	// D is the embedding dimension.
	D int
	// Vocab is |V|.
	Vocab int
	// Samples is sampled-softmax draws per rank (0 = full softmax).
	Samples int
	// ZipfExponent drives the synthetic token stream.
	ZipfExponent float64
	// DenseParams is the ALLREDUCE'd dense parameter count.
	DenseParams int64
	// FLOPsPerStep is per-GPU compute per iteration (§V-A: 136 GFLOP
	// word; §V-B: 2,721 GFLOP char).
	FLOPsPerStep float64
	// AchievedFrac is the measured fraction of peak (0.40 / 0.64).
	AchievedFrac float64
	// TokensPerEpoch is the dataset size in tokens.
	TokensPerEpoch int64
	// Calibration constants (documented in EXPERIMENTS.md):
	// OverheadBase + OverheadLin·G + OverheadQuad·G² is the per-step
	// framework cost anchored to the paper's "with our technique" epoch
	// hours.
	OverheadBase float64
	OverheadLin  float64
	OverheadQuad float64
	// IntraBW/InterBW are the effective collective bandwidths for this
	// workload's tensor-size mix (the word LM's many small tensors
	// sustain far less than the char LM's GB-sized buffers).
	IntraBW, InterBW float64
	// UpdateBWIntra/UpdateBWInter are the effective bandwidths of the
	// baseline's locked scatter-add update path (CPU/PCIe-staged for the
	// 100K-word embedding — and slower again once gathered gradients
	// arrive over InfiniBand; device memory for the small char
	// embedding).
	UpdateBWIntra, UpdateBWInter float64
	// DupSerialization: whether duplicate-row contention multiplies the
	// baseline update time (§II-B row locking; word LM only — the char
	// LM's tiny vocabulary saturates and the GPU coalesces instead).
	DupSerialization bool
	// BaseMemory is per-GPU model+activation+framework memory excluding
	// exchange scratch, and BaselineStaging the TF-1.4 gradient staging
	// replication factor, both calibrated to §V-A's measured GB points.
	BaseMemory      int64
	BaselineStaging float64
	BaseMemoryOurs  int64
}

// wordLM returns the Table III workload.
func wordLM() scalingWorkload {
	return scalingWorkload{
		Name:    "word-LM (1B dataset)",
		K:       32 * 20,
		D:       512,
		Vocab:   100_000,
		Samples: 1024,
		// s = 1.2 makes the synthetic batch-scale unique ratios match the
		// paper's own law (U ≈ 7.02·N^0.64 → U(10240) ≈ 2583, a 3.4–4×
		// token/type ratio at 16 GPUs, §V-A). Real text obeys both this
		// and Figure 1's large-N exponent simultaneously thanks to
		// burstiness; an i.i.d. generator needs the per-regime value.
		ZipfExponent: 1.2,
		// LSTM(512→2048): 4·2048·(512+2048) + biases ≈ 21.0 M;
		// projection 2048·512 ≈ 1.0 M.
		DenseParams:    22_000_000,
		FLOPsPerStep:   136e9,
		AchievedFrac:   0.40,
		TokensPerEpoch: 768_000_000, // 0.78 B words, ≈1% held out
		// Calibrated to Table III "with our technique": 14.6 h @ 8 GPUs,
		// 4.5 h @ 64 GPUs.
		OverheadBase: 0.2754,
		OverheadQuad: 0.0001186,
		// Small-tensor collective mix sustains well below link rate.
		IntraBW: 8e9,
		InterBW: 3e9,
		// CPU-hosted 100K×512 embedding: locked scatter-add over PCIe
		// within a node, over IB + host staging across nodes.
		UpdateBWIntra:    480e6,
		UpdateBWInter:    260e6,
		DupSerialization: true,
		// Calibrated to §V-A memory: baseline 3.9/7.1/10.3 GB at
		// 8/16/24 GPUs (OOM beyond 24); ours 1.19/1.20/1.21 GB.
		BaseMemory:      700 << 20,
		BaselineStaging: 128,
		BaseMemoryOurs:  1_180_000_000,
	}
}

// charLM returns the Table IV workload: RHN depth 10 × 1792 cells, batch
// 128 × sequence 150 = 19,200 chars per GPU, 98-char vocabulary, full
// softmax, 213 M parameters.
func charLM() scalingWorkload {
	return scalingWorkload{
		Name:           "char-LM (1B dataset)",
		K:              128 * 150,
		D:              1792,
		Vocab:          98,
		Samples:        0,
		ZipfExponent:   1.0,
		DenseParams:    213_000_000,
		FLOPsPerStep:   2_721e9,
		AchievedFrac:   0.64,
		TokensPerEpoch: 4_148_000_000, // 4.19 B chars, ≈1% held out
		// Calibrated to Table IV "with our technique": 23.2 h @ 8, 3.5 h
		// @ 64.
		OverheadBase: 2.305,
		OverheadQuad: 0.0001384,
		// GB-sized contiguous buffers sustain near link rate.
		IntraBW: 13e9,
		InterBW: 6.5e9,
		// GPU-resident 98×1792 embedding: update at device staging rate.
		UpdateBWIntra:    6.5e9,
		UpdateBWInter:    6.5e9,
		DupSerialization: false,
		// 213 M params + grads + Adam moments ≈ 3.4 GB, plus the depth-10
		// RHN's per-step gate/state activations over 19,200 tokens
		// ≈ 4.5 GB: baseline OOMs at 32 GPUs when the Θ(G·K·D) gather
		// scratch (4.4 GB) lands on top.
		BaseMemory:      8_600_000_000,
		BaselineStaging: 1,
		BaseMemoryOurs:  8_600_000_000,
	}
}

// tiebaLM returns the Table V workload: Chinese char LM, 15,437-character
// vocabulary (sampled softmax with seeding — the "demonstration of scaling
// character language model with large vocabulary"), weak scaling.
func tiebaLM() scalingWorkload {
	return scalingWorkload{
		Name:         "tieba-LM (weak scaling)",
		K:            128 * 150,
		D:            1792,
		Vocab:        15_437,
		Samples:      1024,
		ZipfExponent: 1.10,
		DenseParams:  213_000_000,
		// Calibrated to §V-C: 0.76 PFLOP/s across 192 GPUs ≈ 3.96
		// TFLOP/s per GPU at the measured ~10.5 s steps (27 h over the
		// 9,288 steps of the 6-GPU row).
		FLOPsPerStep:     40.85e12,
		AchievedFrac:     0.64,
		TokensPerEpoch:   0, // weak scaling: set per row
		OverheadBase:     0,
		OverheadLin:      0.0136,
		OverheadQuad:     0,
		IntraBW:          13e9,
		InterBW:          6.5e9,
		UpdateBWIntra:    6.5e9,
		UpdateBWInter:    6.5e9,
		DupSerialization: false,
		BaseMemory:       3_000_000_000,
		BaselineStaging:  1,
		BaseMemoryOurs:   3_000_000_000,
	}
}

// hardware returns the Table II cluster profile with this workload's
// effective collective bandwidths (message-size dependent) substituted.
func (w scalingWorkload) hardware() perfmodel.Hardware {
	hw := perfmodel.TitanX()
	hw.IntraBW = w.IntraBW
	hw.InterBW = w.InterBW
	return hw
}

// updateBW returns the baseline scatter-add path's effective bandwidth for
// a ring of g ranks (slower once gathered gradients arrive over the
// inter-node fabric).
func (w scalingWorkload) updateBW(g int) float64 {
	if g <= perfmodel.TitanX().GPUsPerNode {
		return w.UpdateBWIntra
	}
	return w.UpdateBWInter
}

// measuredUnique draws the real per-rank token streams and sampled-softmax
// candidate sets for one step at full scale and merges them exactly as the
// unique exchange does. Returns per-rank locally-unique input counts, the
// global input unique count, per-rank candidate counts, and the global
// output unique count under the given seeding strategy.
func measuredUnique(w scalingWorkload, g int, strat sampling.Strategy, seed uint64) (uiIn []int, ugIn int, candPerRank []int, ugOut int) {
	root := rng.New(seed)
	inSets := make([][]int, g)
	uiIn = make([]int, g)
	for r := 0; r < g; r++ {
		z := rng.NewZipf(root.Fork(), w.Vocab, w.ZipfExponent)
		toks := make([]int, w.K)
		for i := range toks {
			toks[i] = z.Next()
		}
		inSets[r] = toks
		uiIn[r] = countUnique(toks)
	}
	ugIn = sampling.UniqueAcross(inSets)

	if w.Samples == 0 {
		return uiIn, ugIn, nil, 0
	}
	seeds := sampling.Assign(strat, g, seed+1)
	outSets := make([][]int, g)
	candPerRank = make([]int, g)
	for r := 0; r < g; r++ {
		s := sampling.NewSampler(w.Vocab, seeds[r])
		cands := s.Sample(w.Samples, inSets[r])
		outSets[r] = cands
		candPerRank[r] = len(cands)
	}
	ugOut = sampling.UniqueAcross(outSets)
	return uiIn, ugIn, candPerRank, ugOut
}

func countUnique(xs []int) int {
	seen := make(map[int]struct{}, len(xs))
	for _, x := range xs {
		seen[x] = struct{}{}
	}
	return len(seen)
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// stackKind enumerates the cumulative optimization stacks of Figure 6.
type stackKind int

const (
	stackBaseline   stackKind = iota
	stackUnique               // +uniqueness
	stackSeeded               // +seeding
	stackCompressed           // +compression
)

func (s stackKind) String() string {
	switch s {
	case stackBaseline:
		return "baseline"
	case stackUnique:
		return "+uniqueness"
	case stackSeeded:
		return "+seeding"
	case stackCompressed:
		return "+compression"
	}
	return "?"
}

// stepCost assembles the perfmodel StepCost for one configuration. It is
// the quantitative heart of Tables III/IV/V and Figure 6.
func stepCost(w scalingWorkload, g int, stack stackKind, seed uint64) perfmodel.StepCost {
	strat := sampling.AllDifferent
	if stack >= stackSeeded && w.Samples > 0 {
		strat = sampling.ZipfFreq
	}
	uiIn, ugIn, candPerRank, ugOut := measuredUnique(w, g, strat, seed)
	fp16 := stack >= stackCompressed

	cost := perfmodel.StepCost{
		ComputeFLOPs: w.FLOPsPerStep,
		AchievedFrac: w.AchievedFrac,
		OverheadSec:  w.OverheadBase + w.OverheadLin*float64(g) + w.OverheadQuad*float64(g)*float64(g),
	}

	// Dense RNN/projection gradients: ring all-reduce every step.
	elem := int64(4)
	if fp16 {
		elem = 2
	}
	denseBytes := 2 * int64(g-1) * w.DenseParams * elem / int64(g)
	cost.WireBytes += denseBytes
	cost.WireHops += 2 * (g - 1)

	kc := maxInt(candPerRank) // output-exchange rows per rank

	if stack == stackBaseline {
		// Input embedding: ALLGATHER of dense K×D blocks.
		in := core.BaselineCost(g, w.K, w.D, fp16)
		cost.WireBytes += in.WireBytes
		cost.WireHops += g - 1
		rows := int64(g) * int64(w.K)
		if w.Samples > 0 {
			out := core.BaselineCost(g, kc, w.D, fp16)
			cost.WireBytes += out.WireBytes
			cost.WireHops += g - 1
			rows += int64(g) * int64(kc)
		}
		cost.UpdateRows = rows
		cost.UpdateDim = w.D
		if w.DupSerialization && ugIn > 0 {
			cost.UpdateSerialization = float64(int64(g)*int64(w.K)) / float64(ugIn)
		}
		// The locked scatter-add path runs at the (calibrated) staged
		// update bandwidth; fold the ratio into the serialization factor
		// so perfmodel's MemBW baseline stays uniform.
		slow := perfmodel.TitanX().MemBW / w.updateBW(g)
		if cost.UpdateSerialization < 1 {
			cost.UpdateSerialization = 1
		}
		cost.UpdateSerialization *= slow
		return cost
	}

	// Unique exchange for the input embedding.
	in := core.UniqueCost(g, w.K, maxInt(uiIn), ugIn, w.D, fp16)
	cost.WireBytes += in.WireBytes
	cost.WireHops += (g - 1) + 2*(g-1)
	rows := int64(ugIn)
	if w.Samples > 0 {
		out := core.UniqueCost(g, kc, kc, ugOut, w.D, fp16)
		cost.WireBytes += out.WireBytes
		cost.WireHops += (g - 1) + 2*(g-1)
		rows += int64(ugOut)
	}
	// Conflict-free update at full device bandwidth (§III-A).
	cost.UpdateRows = rows
	cost.UpdateDim = w.D
	cost.UpdateSerialization = 1
	return cost
}

// peakMemory models the per-GPU peak for one configuration, calibrated per
// workload (see scalingWorkload fields).
func peakMemory(w scalingWorkload, g int, stack stackKind, seed uint64) int64 {
	strat := sampling.AllDifferent
	if stack >= stackSeeded && w.Samples > 0 {
		strat = sampling.ZipfFreq
	}
	uiIn, ugIn, candPerRank, ugOut := measuredUnique(w, g, strat, seed)
	kc := maxInt(candPerRank)

	if stack == stackBaseline {
		scratch := core.BaselineCost(g, w.K, w.D, false).ScratchBytes
		if w.Samples > 0 {
			scratch += core.BaselineCost(g, kc, w.D, false).ScratchBytes
		}
		return w.BaseMemory + int64(float64(scratch)*w.BaselineStaging)
	}
	scratch := core.UniqueCost(g, w.K, maxInt(uiIn), ugIn, w.D, false).ScratchBytes
	if w.Samples > 0 {
		scratch += core.UniqueCost(g, kc, kc, ugOut, w.D, false).ScratchBytes
	}
	return w.BaseMemoryOurs + scratch
}
