// This file regenerates the paper's *strong-scaling* tables (III/IV): fixed
// dataset, growing cluster, epoch hours dropping with G. The weak-scaling
// counterpart — fixed per-rank work, the online virtual-clock experiment —
// lives in weakscale.go.
package experiments

import (
	"fmt"

	"zipflm/internal/metrics"
	"zipflm/internal/perfmodel"
)

func init() {
	register("tab3", "Table III: word-LM per-epoch hours and parallel efficiency, 8–64 GPUs", runTab3)
	register("tab4", "Table IV: char-LM per-epoch hours and parallel efficiency, 8–64 GPUs", runTab4)
}

// paperScaling holds the published Table III/IV rows for side-by-side
// reporting. A negative time means out of GPU memory ("*").
type paperScaling struct {
	gpus          []int
	baselineHours []float64
	oursHours     []float64
}

func runTab3(opts Options) (*Report, error) {
	paper := paperScaling{
		gpus:          []int{8, 16, 24, 32, 64},
		baselineHours: []float64{35.1, 41.1, 40.4, -1, -1},
		oursHours:     []float64{14.6, 8.1, 6.4, 5.4, 4.5},
	}
	return runScaling(wordLM(), paper, opts)
}

func runTab4(opts Options) (*Report, error) {
	paper := paperScaling{
		gpus:          []int{8, 16, 24, 32, 64},
		baselineHours: []float64{25.7, 14.5, 10.6, -1, -1},
		oursHours:     []float64{23.2, 12.9, 8.2, 6.8, 3.5},
	}
	return runScaling(charLM(), paper, opts)
}

// runScaling regenerates one scaling table: for each GPU count it measures
// the step's unique-word structure at full scale, assembles the cost model,
// applies the Titan X hardware profile, and checks the 12 GB memory budget
// to reproduce the baseline's OOM boundary.
func runScaling(w scalingWorkload, paper paperScaling, opts Options) (*Report, error) {
	hw := w.hardware()
	tab := metrics.NewTable(
		fmt.Sprintf("%s on %s (tokens/epoch = %.2e, K = %d/GPU):", w.Name, hw.Name, float64(w.TokensPerEpoch), w.K),
		"GPUs",
		"base hrs (paper)", "base hrs (model)", "base eff",
		"ours hrs (paper)", "ours hrs (model)", "ours eff")

	var baseRefBase, baseRefOurs float64
	notes := []string{}
	for i, g := range paper.gpus {
		// Baseline column: OOM when Θ(G·K·D) scratch exceeds the 12 GB
		// budget, exactly the "*" rows of the paper.
		baseStr, baseEff := "*(OOM)", "-"
		mem := peakMemory(w, g, stackBaseline, opts.Seed)
		var baseHours float64
		if mem <= hw.MemBytes {
			cost := stepCost(w, g, stackBaseline, opts.Seed)
			baseHours = hw.EpochTime(g, w.K, w.TokensPerEpoch, cost)
			if baseRefBase == 0 {
				baseRefBase = baseHours * float64(g)
			}
			baseStr = fmt.Sprintf("%.1f", baseHours)
			baseEff = fmt.Sprintf("%.0f%%", 100*baseRefBase/(baseHours*float64(g)))
		}

		cost := stepCost(w, g, stackCompressed, opts.Seed)
		oursHours := hw.EpochTime(g, w.K, w.TokensPerEpoch, cost)
		if baseRefOurs == 0 {
			baseRefOurs = oursHours * float64(g)
		}
		oursEff := fmt.Sprintf("%.0f%%", 100*baseRefOurs/(oursHours*float64(g)))

		paperBase := "*(OOM)"
		if paper.baselineHours[i] > 0 {
			paperBase = fmt.Sprintf("%.1f", paper.baselineHours[i])
		}
		tab.AddRow(fmt.Sprintf("%d", g),
			paperBase, baseStr, baseEff,
			fmt.Sprintf("%.1f", paper.oursHours[i]), fmt.Sprintf("%.1f", oursHours), oursEff)

		// Sanity cross-checks recorded as notes.
		if paper.baselineHours[i] < 0 && mem <= hw.MemBytes {
			notes = append(notes, fmt.Sprintf("MISMATCH: paper baseline OOMs at %d GPUs, model fits (%s)", g, metrics.HumanBytes(mem)))
		}
		if paper.baselineHours[i] > 0 && mem > hw.MemBytes {
			notes = append(notes, fmt.Sprintf("MISMATCH: model baseline OOMs at %d GPUs, paper ran", g))
		}
	}

	first, last := paper.gpus[0], paper.gpus[len(paper.gpus)-1]
	costFirst := stepCost(w, first, stackCompressed, opts.Seed)
	costLast := stepCost(w, last, stackCompressed, opts.Seed)
	speedup := perfmodel.Speedup(
		hw.EpochTime(first, w.K, w.TokensPerEpoch, costFirst),
		hw.EpochTime(last, w.K, w.TokensPerEpoch, costLast))
	notes = append(notes, fmt.Sprintf(
		"model speedup %d→%d GPUs: %.1f× (paper: %.1f× word / %.1f× char with 8× more GPUs)",
		first, last, speedup, 14.6/4.5, 23.2/3.5))

	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}
