package experiments

import (
	"fmt"

	"zipflm/internal/metrics"
)

func init() {
	register("fig6", "Figure 6: cumulative speedup of uniqueness, seeding, compression (word LM, 16 & 24 GPUs)", runFig6)
}

// runFig6 regenerates the optimization-ladder bar chart: the word-LM epoch
// time under each cumulative stack (baseline → +uniqueness → +seeding →
// +compression) at 16 and 24 GPUs, expressed as speedup over the baseline.
func runFig6(opts Options) (*Report, error) {
	w := wordLM()
	hw := w.hardware()

	// Paper's Figure 6 bars.
	paper := map[int]map[stackKind]float64{
		16: {stackBaseline: 1.0, stackUnique: 4.0, stackSeeded: 4.3, stackCompressed: 5.1},
		24: {stackBaseline: 1.0, stackUnique: 5.1, stackSeeded: 5.4, stackCompressed: 6.3},
	}

	tab := metrics.NewTable("Speedup over baseline word LM:",
		"GPUs", "stack", "speedup (paper)", "speedup (model)", "epoch hrs (model)")
	notes := []string{}
	for _, g := range []int{16, 24} {
		baseCost := stepCost(w, g, stackBaseline, opts.Seed)
		baseHours := hw.EpochTime(g, w.K, w.TokensPerEpoch, baseCost)
		prev := 0.0
		for _, stack := range []stackKind{stackBaseline, stackUnique, stackSeeded, stackCompressed} {
			cost := stepCost(w, g, stack, opts.Seed)
			hours := hw.EpochTime(g, w.K, w.TokensPerEpoch, cost)
			speedup := baseHours / hours
			tab.AddRow(fmt.Sprintf("%d", g), stack.String(),
				fmt.Sprintf("%.1f", paper[g][stack]),
				fmt.Sprintf("%.1f", speedup),
				fmt.Sprintf("%.1f", hours))
			if speedup+1e-9 < prev {
				notes = append(notes, fmt.Sprintf(
					"MISMATCH: %s at %d GPUs regressed the ladder (%.2f after %.2f)",
					stack, g, speedup, prev))
			}
			prev = speedup
		}
	}
	notes = append(notes,
		"ladder must be monotone: each technique adds on top of the previous",
		"uniqueness contributes the bulk (paper: ~4×), matching the total/unique word ratio of Figure 1",
	)
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}
