// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each experiment has an id (fig1, tab3, …), produces a
// Report whose tables print the same rows/series the paper reports, and
// annotates paper-reported values alongside measured ones.
//
// Two execution styles are used, per DESIGN.md:
//
//   - Scaling/memory experiments (tab3, tab4, tab5 time columns, fig6, mem)
//     run the *index-level* workload at full paper scale — real Zipf token
//     draws, real sampled-softmax candidate draws, real unique-merging
//     through the same code paths the exchange engines use — and evaluate
//     the D-dependent byte/FLOP volumes through the closed-form cost model
//     (validated against measured exchanges in internal/core's tests) and
//     the calibrated perfmodel hardware model.
//
//   - Accuracy experiments (fig5, fig7, fig8, tab5 perplexity column, bpc)
//     run real distributed training of scaled-down models over the
//     simulated cluster, reproducing the paper's *trends*.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"zipflm/internal/metrics"
	"zipflm/internal/telemetry"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks the training-based experiments for fast runs (tests
	// and smoke checks); the scaling experiments are always full-scale.
	Quick bool
	// Seed makes every experiment reproducible.
	Seed uint64
	// Trace, when non-nil, collects span timelines from the experiments
	// that train over the simulated cluster (the fault-injection sweep and
	// the weak-scaling sweep) — export it with
	// telemetry.Tracer.WriteChromeTrace. Purely observational; results are
	// identical with or without it.
	Trace *telemetry.Tracer
	// Flight, when non-nil, receives anomaly records (fault injections,
	// rollbacks) from the training-based experiments; dump it with
	// telemetry.Flight.Trigger or SIGQUIT. Purely observational.
	Flight *telemetry.Flight
	// Profile, when non-nil, captures a CPU profile spanning each
	// experiment (and a heap snapshot at its end when the profiler is
	// configured for heap capture), labelled with the experiment id —
	// the experiment-phase-boundary half of continuous profiling. Purely
	// observational; a nil profiler is a no-op.
	Profile *telemetry.Profiler
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Seed: 42} }

// Report is one experiment's output.
type Report struct {
	// ID is the experiment identifier (fig1, tab3, …).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Tables hold the regenerated rows.
	Tables []*metrics.Table
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// runner is one registered experiment.
type runner struct {
	title string
	fn    func(Options) (*Report, error)
}

var registry = map[string]runner{}

func register(id, title string, fn func(Options) (*Report, error)) {
	registry[id] = runner{title: title, fn: fn}
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's display title.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by id.
func Run(id string, opts Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	stopProfile := opts.Profile.StartPhase(id)
	rep, err := r.fn(opts)
	stopProfile()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	rep.ID = id
	rep.Title = r.title
	return rep, nil
}
