package experiments

import (
	"fmt"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func init() {
	register("fig5", "Figure 5: word-LM validation perplexity vs epoch at 16/32/64 GPUs (scaled ranks 2/4/8)", runFig5)
	register("fig8", "Figure 8: char-LM validation perplexity vs epoch at 16/32/64 GPUs (scaled ranks 2/4/8)", runFig8)
	register("fig7", "Figure 7: sampled-softmax seeding strategies vs accuracy (word LM)", runFig7)
	register("bpc", "§V-D: char-LM bits-per-character on the Amazon-review stand-in", runBPC)
}

// convergenceConfig holds the shared scaled-down setup of Figures 5 and 8.
type convergenceConfig struct {
	modelCfg  model.Config
	ranks     []int
	labels    []string
	epochs    int
	evals     int
	perRank   int
	lrBase    float64
	seqLen    int
	batch     int
	zipfExp   float64
	branching int
	paperNote string
}

// runConvergence trains one model per rank count on the same total corpus
// (strong scaling: global batch grows with ranks, as in the paper) and
// tabulates the validation perplexity trajectory.
func runConvergence(cc convergenceConfig, opts Options) (*Report, error) {
	if opts.Quick {
		cc.epochs = 1
		cc.perRank /= 4
		if cc.evals > 2 {
			cc.evals = 2
		}
	}
	maxRanks := cc.ranks[len(cc.ranks)-1]
	total := cc.perRank * maxRanks
	// Markov streams give the corpus sequential structure (entropy rate
	// below unigram entropy), so validation perplexity falls over epochs
	// the way the paper's curves do.
	gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize:    cc.modelCfg.Vocab - 1,
		Branching:    cc.branching,
		ZipfExponent: cc.zipfExp,
		Seed:         opts.Seed,
	})
	stream := gen.Stream(total + total/10)
	train, valid := corpus.Split(stream, 10, 100, opts.Seed)

	type trace struct {
		ranks int
		evals []trainer.EvalPoint
	}
	traces := make([]trace, 0, len(cc.ranks))
	for _, ranks := range cc.ranks {
		cfg := trainer.Config{
			Model:        cc.modelCfg,
			Ranks:        ranks,
			BatchPerRank: cc.batch,
			SeqLen:       cc.seqLen,
			// The paper uses base × ln(nodes); at paper scale an epoch
			// is ~150K steps and ln-scaling suffices. These scaled-down
			// epochs are a few hundred steps, where the larger global
			// batch needs the full linear rule (Goyal et al.) to keep
			// up within the plotted window; gradients are clipped for
			// stability at the scaled rate.
			LR:           cc.lrBase * float64(ranks) / float64(cc.ranks[0]),
			ClipNorm:     1.0,
			Exchange:     core.UniqueExchange{},
			SeedStrategy: sampling.ZipfFreq,
			BaseSeed:     opts.Seed,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run(cc.epochs, cc.evals)
		if err != nil {
			return nil, err
		}
		traces = append(traces, trace{ranks: ranks, evals: res.Evals})
	}

	headers := []string{"epoch"}
	for i, tr := range traces {
		headers = append(headers, fmt.Sprintf("ppl @%s (ranks=%d)", cc.labels[i], tr.ranks))
	}
	tab := metrics.NewTable("Validation perplexity vs training progress:", headers...)
	nPoints := len(traces[0].evals)
	for p := 0; p < nPoints; p++ {
		row := []string{fmt.Sprintf("%.2f", traces[0].evals[p].Epoch)}
		for _, tr := range traces {
			if p < len(tr.evals) {
				row = append(row, fmt.Sprintf("%.2f", tr.evals[p].Perplexity))
			} else {
				row = append(row, "-")
			}
		}
		tab.AddRow(row...)
	}

	notes := []string{cc.paperNote}
	// The paper's claim: curves converge — the final gap between the
	// smallest and largest configuration shrinks vs the initial gap.
	firstGap := relGap(traces[0].evals[0].Perplexity, traces[len(traces)-1].evals[0].Perplexity)
	lastGap := relGap(lastPPL(traces[0].evals), lastPPL(traces[len(traces)-1].evals))
	notes = append(notes, fmt.Sprintf(
		"perplexity gap smallest-vs-largest config: %.1f%% at first eval → %.1f%% at last (paper: 4–5%% at epoch 1 → ≤1%% later)",
		100*firstGap, 100*lastGap))
	if lastGap > firstGap && lastGap > 0.15 {
		notes = append(notes, "WARNING: configurations did not converge toward each other")
	}
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}

func relGap(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	d := b - a
	if d < 0 {
		d = -d
	}
	return d / a
}

func lastPPL(evals []trainer.EvalPoint) float64 {
	return evals[len(evals)-1].Perplexity
}

func runFig5(opts Options) (*Report, error) {
	return runConvergence(convergenceConfig{
		modelCfg: model.Config{
			Vocab: 800, Dim: 24, Hidden: 32, RNN: model.KindLSTM, Sampled: 48,
		},
		ranks:     []int{2, 4, 8},
		labels:    []string{"16gpu", "32gpu", "64gpu"},
		epochs:    3,
		evals:     4,
		perRank:   20_000,
		lrBase:    0.15,
		seqLen:    16,
		batch:     2,
		zipfExp:   1.2,
		branching: 16,
		paperNote: "paper (Fig 5): 1-epoch ppl 84.3/87.9/95.3 at 16/32/64 GPUs converging to 73.5/72.1/72.4 at epoch 2",
	}, opts)
}

func runFig8(opts Options) (*Report, error) {
	return runConvergence(convergenceConfig{
		modelCfg: model.Config{
			Vocab: 98, Dim: 16, Hidden: 24, RNN: model.KindRHN, RHNDepth: 2,
		},
		ranks:     []int{2, 4, 8},
		labels:    []string{"16gpu", "32gpu", "64gpu"},
		epochs:    3,
		evals:     4,
		perRank:   16_000,
		lrBase:    0.1,
		seqLen:    16,
		batch:     2,
		zipfExp:   1.0,
		branching: 8,
		paperNote: "paper (Fig 8): 16/32 GPU ppl gap 4% at epoch 1, 2% at epoch 2, 0.01% at epoch 4",
	}, opts)
}

// runFig7 trains the word LM under every §III-B seeding strategy at a fixed
// rank count and tabulates accuracy against the exchange volume the
// strategy buys, reproducing the Figure 7 trade-off.
func runFig7(opts Options) (*Report, error) {
	ranks := 8
	perRank := 16_000
	epochs := 2
	if opts.Quick {
		perRank = 4_000
		epochs = 1
	}
	gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize:    499,
		Branching:    16,
		ZipfExponent: 1.2,
		Seed:         opts.Seed,
	})
	stream := gen.Stream(perRank*ranks + perRank)
	train, valid := corpus.Split(stream, 10, 100, opts.Seed)

	strategies := append([]sampling.Strategy{}, sampling.Strategies()...)
	strategies = append(strategies, sampling.AllSame)

	tab := metrics.NewTable(
		fmt.Sprintf("Seeding strategies at %d ranks (standing in for 64 GPUs):", ranks),
		"strategy", "#seeds", "final ppl", "avg U_g (output emb)", "exchange rows vs G")
	notes := []string{
		"paper (Fig 7): G and Zipf's-freq overlap; fewer seeds destabilize accuracy (log10G worst); Zipf's-freq is pareto-optimal",
	}
	var pplG, pplZipf float64
	var ugG float64
	for _, strat := range strategies {
		cfg := trainer.Config{
			Model: model.Config{
				Vocab: 500, Dim: 20, Hidden: 28, RNN: model.KindLSTM, Sampled: 16,
			},
			Ranks:        ranks,
			BatchPerRank: 2,
			SeqLen:       12,
			LR:           0.25,
			Exchange:     core.UniqueExchange{},
			SeedStrategy: strat,
			BaseSeed:     opts.Seed,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run(epochs, 1)
		if err != nil {
			return nil, err
		}
		ppl := lastPPL(res.Evals)
		ug := res.Stats.AvgOutputUnique()
		switch strat {
		case sampling.AllDifferent:
			pplG, ugG = ppl, ug
		case sampling.ZipfFreq:
			pplZipf = ppl
		}
		ratio := "-"
		if ugG > 0 {
			ratio = fmt.Sprintf("%.2f", ug/ugG)
		}
		tab.AddRow(strat.String(),
			fmt.Sprintf("%d", strat.NumSeeds(ranks)),
			fmt.Sprintf("%.2f", ppl),
			fmt.Sprintf("%.0f", ug),
			ratio)
	}
	if pplG > 0 && pplZipf > 0 {
		notes = append(notes, fmt.Sprintf(
			"Zipf's-freq vs G perplexity: %.2f vs %.2f (%.1f%% apart; paper: 'similar perplexities')",
			pplZipf, pplG, 100*relGap(pplG, pplZipf)))
	}
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}

// runBPC trains the char LM on the Amazon-review stand-in and reports bits
// per character, the §V-D comparison metric against [21].
func runBPC(opts Options) (*Report, error) {
	perRank := 24_000
	epochs := 3
	if opts.Quick {
		perRank = 6_000
		epochs = 1
	}
	d, err := corpus.DatasetByName("ar")
	if err != nil {
		return nil, err
	}
	gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize:    d.CharVocab,
		Branching:    8,
		ZipfExponent: 1.0,
		Seed:         opts.Seed,
	})
	stream := gen.Stream(perRank*4 + perRank)
	// The paper splits ar 1000:1; at sample scale that leaves no usable
	// validation set, so the stand-in uses 10:1.
	train, valid := corpus.Split(stream, 10, 100, opts.Seed)

	cfg := trainer.Config{
		Model: model.Config{
			Vocab: d.CharVocab + 1, Dim: 16, Hidden: 24, RNN: model.KindRHN, RHNDepth: 2,
		},
		Ranks:        4,
		BatchPerRank: 2,
		SeqLen:       16,
		LR:           0.1,
		Exchange:     core.UniqueExchange{},
		BaseSeed:     opts.Seed,
	}
	tr, err := trainer.New(cfg, train, valid)
	if err != nil {
		return nil, err
	}
	res, err := tr.Run(epochs, 1)
	if err != nil {
		return nil, err
	}

	tab := metrics.NewTable("Bits per character, Amazon-review stand-in:",
		"epoch", "BPC (measured)", "BPC (paper)", "BPC ([21], V100)")
	for i, ev := range res.Evals {
		paperStr, sotaStr := "-", "-"
		if i == 0 {
			paperStr, sotaStr = "1.208", "1.218"
		}
		if i == len(res.Evals)-1 && len(res.Evals) > 1 {
			paperStr = "1.11 (3 epochs)"
		}
		tab.AddRow(fmt.Sprintf("%.1f", ev.Epoch),
			fmt.Sprintf("%.3f", metrics.BPC(ev.Loss)),
			paperStr, sotaStr)
	}
	notes := []string{
		"paper: 1.208 BPC after 1 epoch on 64 Titan X vs 1.218 in [21] on 128 V100s (41× more FLOPs), improving to 1.11 by epoch 3",
		"measured BPC is on a synthetic corpus with a scaled-down model; the reproduced claim is monotone improvement over epochs",
	}
	if len(res.Evals) > 1 && metrics.BPC(res.FinalLoss) >= metrics.BPC(res.Evals[0].Loss) {
		notes = append(notes, "WARNING: BPC did not improve over epochs")
	}
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}
