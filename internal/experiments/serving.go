package experiments

import (
	"fmt"
	"time"

	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/powerlaw"
	"zipflm/internal/sampling"
	"zipflm/internal/serve"
)

func init() {
	register("serving",
		"Closed-loop serving: dynamic batching + Zipf-aware caching vs sequential single-stream inference",
		runServing)
}

// runServing measures the serving subsystem the way the scaling experiments
// measure training: the same closed-loop Zipf workload runs against three
// server shapes — sequential single-stream (the old Generate-behind-a-CLI
// shape), dynamic batching, and batching plus the result/prefix caches —
// and the table reports what each stage buys in throughput and tail
// latency. The workload's rank-frequency histogram is fitted with
// internal/powerlaw to verify the generated load actually follows the Zipf
// law whose exploitation the caches claim credit for.
func runServing(opts Options) (*Report, error) {
	mc := model.Config{Vocab: 4000, Dim: 96, Hidden: 192, RNN: model.KindLSTM, Seed: opts.Seed}
	load := serve.LoadConfig{
		Clients:    8,
		Requests:   400,
		PromptPool: 128,
		ZipfS:      1.1,
		Tokens:     24,
		Opts:       sampling.DecodeOpts{Temperature: 0.8, TopK: 64},
		Seed:       opts.Seed,
	}
	if opts.Quick {
		mc = model.Config{Vocab: 600, Dim: 32, Hidden: 48, RNN: model.KindLSTM, Seed: opts.Seed}
		load.Requests = 120
		load.PromptPool = 48
		load.Tokens = 10
	}
	load.Vocab = mc.Vocab
	m := model.NewLM(mc)

	type shape struct {
		name string
		cfg  serve.Config
	}
	shapes := []shape{
		{"sequential", serve.Config{MaxBatch: 1, QueueDepth: load.Clients}},
		{"batched", serve.Config{MaxBatch: 16, QueueDepth: load.Clients}},
		{"batched+cache", serve.Config{MaxBatch: 16, QueueDepth: load.Clients,
			CacheEntries: 256, PrefixEntries: 128}},
	}

	tab := metrics.NewTable("Closed-loop Zipf load, one worker replica:",
		"config", "req", "tok/s", "req/s", "p50 ms", "p99 ms", "mean batch", "hit rate", "prefix hits", "shed")
	notes := []string{
		fmt.Sprintf("workload: %d requests, %d clients closed-loop, %d-rank Zipf(s=%.1f) prompt popularity, %d tokens/request",
			load.Requests, load.Clients, load.PromptPool, load.ZipfS, load.Tokens),
		"every response is bit-identical to sequential model.Generate for that request's seed (enforced by internal/serve tests)",
	}

	var seqTokS, batTokS, cacheTokS float64
	for i, sh := range shapes {
		srv := serve.New(m, sh.cfg)
		rep := serve.RunLoad(srv, load)
		snap := srv.Stats()
		srv.Close()
		if rep.Failed > 0 {
			return nil, fmt.Errorf("serving: %d requests failed under %s", rep.Failed, sh.name)
		}
		tokS := rep.TokensPerSecond()
		switch i {
		case 0:
			seqTokS = tokS
		case 1:
			batTokS = tokS
		case 2:
			cacheTokS = tokS
		}
		tab.AddRow(
			sh.name,
			fmt.Sprintf("%d", rep.Completed),
			fmt.Sprintf("%.0f", tokS),
			fmt.Sprintf("%.1f", rep.RequestsPerSecond()),
			fmt.Sprintf("%.2f", float64(snap.LatencyP50)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", float64(snap.LatencyP99)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", snap.MeanBatch),
			fmt.Sprintf("%.0f%%", 100*snap.HitRate()),
			fmt.Sprintf("%d", rep.PrefixHits),
			fmt.Sprintf("%d", rep.Shed+rep.Expired),
		)
		if sh.name == "batched+cache" {
			if snap.HitRate() == 0 {
				notes = append(notes, "WARNING: Zipf load produced zero result-cache hits — the caching layer is broken")
			}
			if rep.Shed+rep.Expired > 0 {
				notes = append(notes, fmt.Sprintf(
					"WARNING: %d requests shed under closed-loop load with queue ≥ clients", rep.Shed+rep.Expired))
			}
		}

		// Fit the issued load's rank-frequency law once (identical across
		// shapes: RunLoad pre-draws the rank sequence from the seed).
		if i == 0 {
			var xs, ys []float64
			for rank, count := range rep.PerRank {
				if count > 0 {
					xs = append(xs, float64(rank+1))
					ys = append(ys, float64(count))
				}
			}
			if fit, err := powerlaw.FitXY(xs, ys); err == nil {
				notes = append(notes, fmt.Sprintf(
					"load follows a power law: frequency ∝ rank^%.2f (R²=%.2f, %d ranks touched) — the serving-side Figure 1",
					fit.Alpha, fit.R2, fit.N))
			}
		}
	}
	if seqTokS > 0 {
		notes = append(notes, fmt.Sprintf(
			"dynamic batching: %.2fx sequential throughput; + Zipf caching: %.2fx",
			batTokS/seqTokS, cacheTokS/seqTokS))
	}
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}
