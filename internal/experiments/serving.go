package experiments

import (
	"fmt"
	"time"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/powerlaw"
	"zipflm/internal/sampling"
	"zipflm/internal/serve"
	"zipflm/internal/trainer"
)

func init() {
	register("serving",
		"Closed-loop serving: dynamic batching + Zipf-aware caching vs sequential single-stream inference",
		runServing)
}

// runServing measures the serving subsystem the way the scaling experiments
// measure training: the same closed-loop Zipf workload runs against three
// server shapes — sequential single-stream (the old Generate-behind-a-CLI
// shape), dynamic batching, and batching plus the result/prefix caches —
// and the table reports what each stage buys in throughput and tail
// latency. The workload's rank-frequency histogram is fitted with
// internal/powerlaw to verify the generated load actually follows the Zipf
// law whose exploitation the caches claim credit for.
func runServing(opts Options) (*Report, error) {
	mc := model.Config{Vocab: 4000, Dim: 96, Hidden: 192, RNN: model.KindLSTM, Seed: opts.Seed}
	load := serve.LoadConfig{
		Clients:    8,
		Requests:   400,
		PromptPool: 128,
		ZipfS:      1.1,
		Tokens:     24,
		Opts:       sampling.DecodeOpts{Temperature: 0.8, TopK: 64},
		Seed:       opts.Seed,
	}
	if opts.Quick {
		mc = model.Config{Vocab: 600, Dim: 32, Hidden: 48, RNN: model.KindLSTM, Seed: opts.Seed}
		load.Requests = 120
		load.PromptPool = 48
		load.Tokens = 10
	}
	load.Vocab = mc.Vocab
	m := model.NewLM(mc)

	type shape struct {
		name string
		cfg  serve.Config
	}
	shapes := []shape{
		{"sequential", serve.Config{MaxBatch: 1, QueueDepth: load.Clients}},
		{"batched", serve.Config{MaxBatch: 16, QueueDepth: load.Clients}},
		// The full shape also declares SLOs — generous enough that a healthy
		// run must be compliant, so a violation below flags a real
		// regression rather than noise.
		{"batched+cache", serve.Config{MaxBatch: 16, QueueDepth: load.Clients,
			CacheEntries: 256, PrefixEntries: 128,
			SLOTargetP99: 5 * time.Second, SLOAvailability: 0.99}},
	}

	tab := metrics.NewTable("Closed-loop Zipf load, one worker replica:",
		"config", "req", "throughput", "rate", "p50", "p99", "mean batch", "hit rate", "prefix hits", "shed")
	tab.SetUnits("", "", "tok/s", "req/s", "ms", "ms", "seq/step", "%", "", "")
	notes := []string{
		fmt.Sprintf("workload: %d requests, %d clients closed-loop, %d-rank Zipf(s=%.1f) prompt popularity, %d tokens/request",
			load.Requests, load.Clients, load.PromptPool, load.ZipfS, load.Tokens),
		"every response is bit-identical to sequential model.Generate for that request's seed (enforced by internal/serve tests)",
	}

	var seqTokS, batTokS, cacheTokS float64
	for i, sh := range shapes {
		srv := serve.New(m, sh.cfg)
		rep := serve.RunLoad(srv, load)
		snap := srv.Stats()
		srv.Close()
		if rep.Failed > 0 {
			return nil, fmt.Errorf("serving: %d requests failed under %s", rep.Failed, sh.name)
		}
		tokS := rep.TokensPerSecond()
		switch i {
		case 0:
			seqTokS = tokS
		case 1:
			batTokS = tokS
		case 2:
			cacheTokS = tokS
		}
		tab.AddRow(
			sh.name,
			fmt.Sprintf("%d", rep.Completed),
			fmt.Sprintf("%.0f", tokS),
			fmt.Sprintf("%.1f", rep.RequestsPerSecond()),
			fmt.Sprintf("%.2f", float64(snap.LatencyP50)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", float64(snap.LatencyP99)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", snap.MeanBatch),
			fmt.Sprintf("%.0f", 100*snap.HitRate()),
			fmt.Sprintf("%d", rep.PrefixHits),
			fmt.Sprintf("%d", rep.Shed+rep.Expired),
		)
		if sh.name == "batched+cache" {
			if snap.HitRate() == 0 {
				notes = append(notes, "WARNING: Zipf load produced zero result-cache hits — the caching layer is broken")
			}
			if rep.Shed+rep.Expired > 0 {
				notes = append(notes, fmt.Sprintf(
					"WARNING: %d requests shed under closed-loop load with queue ≥ clients", rep.Shed+rep.Expired))
			}
			if len(snap.SLO) == 0 {
				return nil, fmt.Errorf("serving: %s declared SLOs but the snapshot has none", sh.name)
			}
			for _, st := range snap.SLO {
				if !st.Compliant {
					return nil, fmt.Errorf("serving: SLO violated under healthy closed-loop load: %s", st.String())
				}
				notes = append(notes, st.String())
			}
		}

		// Fit the issued load's rank-frequency law once (identical across
		// shapes: RunLoad pre-draws the rank sequence from the seed).
		if i == 0 {
			var xs, ys []float64
			for rank, count := range rep.PerRank {
				if count > 0 {
					xs = append(xs, float64(rank+1))
					ys = append(ys, float64(count))
				}
			}
			if fit, err := powerlaw.FitXY(xs, ys); err == nil {
				notes = append(notes, fmt.Sprintf(
					"load follows a power law: frequency ∝ rank^%.2f (R²=%.2f, %d ranks touched) — the serving-side Figure 1",
					fit.Alpha, fit.R2, fit.N))
			}
		}
	}
	if seqTokS > 0 {
		notes = append(notes, fmt.Sprintf(
			"dynamic batching: %.2fx sequential throughput; + Zipf caching: %.2fx",
			batTokS/seqTokS, cacheTokS/seqTokS))
	}

	qsTab, qsNotes, err := runServingQuantSpec(opts)
	if err != nil {
		return nil, err
	}
	notes = append(notes, qsNotes...)
	return &Report{Tables: []*metrics.Table{tab, qsTab}, Notes: notes}, nil
}

// runServingQuantSpec measures the two decode-side optimizations on the
// pairing they were built for: a trained target plus a much smaller draft
// trained on the same corpus, so the draft's greedy proposals actually track
// the target (a cold random draft proposes noise and measures only the
// overhead floor — the serve benchmarks bracket that separately). The load is
// single-stream greedy with caches off: quantization and speculation both
// attack the per-token decode cost, which batching and caching would mask.
func runServingQuantSpec(opts Options) (*metrics.Table, []string, error) {
	tmc := model.Config{Vocab: 800, Dim: 32, Hidden: 48, RNN: model.KindLSTM, Sampled: 48, Seed: opts.Seed}
	dmc := model.Config{Vocab: 800, Dim: 12, Hidden: 16, RNN: model.KindRHN, RHNDepth: 2, Sampled: 48, Seed: opts.Seed + 1}
	tokens := 40_000
	epochs := 2
	load := serve.LoadConfig{
		Clients:    1,
		Requests:   48,
		PromptPool: 32,
		ZipfS:      1.1,
		Tokens:     24,
		Opts:       sampling.DecodeOpts{Temperature: 0}, // greedy: acceptance measures model agreement
		Seed:       opts.Seed,
	}
	if opts.Quick {
		tokens = 10_000
		epochs = 1
		load.Requests = 16
	}
	load.Vocab = tmc.Vocab

	// Shared corpus: low branching keeps the walk predictable enough that a
	// small draft can learn the same local structure the target does.
	gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize:    tmc.Vocab - 1,
		Branching:    4,
		ZipfExponent: 1.2,
		Seed:         opts.Seed,
	})
	stream := gen.Stream(tokens + tokens/10)
	train, valid := corpus.Split(stream, 10, 100, opts.Seed)

	trainOne := func(mc model.Config) (*model.LM, error) {
		tr, err := trainer.New(trainer.Config{
			Model:        mc,
			Ranks:        1,
			BatchPerRank: 4,
			SeqLen:       16,
			LR:           0.15,
			ClipNorm:     1.0,
			Exchange:     core.UniqueExchange{},
			SeedStrategy: sampling.ZipfFreq,
			BaseSeed:     opts.Seed,
		}, train, valid)
		if err != nil {
			return nil, err
		}
		if _, err := tr.Run(epochs, 1); err != nil {
			return nil, err
		}
		return tr.Model(0), nil
	}
	target, err := trainOne(tmc)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: training target: %w", err)
	}
	draft, err := trainOne(dmc)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: training draft: %w", err)
	}

	type leg struct {
		name string
		cfg  serve.Config
	}
	legs := []leg{
		{"fp32", serve.Config{MaxBatch: 1, QueueDepth: 4}},
		{"int8", serve.Config{MaxBatch: 1, QueueDepth: 4, Quantized: true}},
		{"fp32+spec", serve.Config{MaxBatch: 1, QueueDepth: 4, Draft: draft, DraftK: 4}},
		{"int8+spec", serve.Config{MaxBatch: 1, QueueDepth: 4, Quantized: true, Draft: draft, DraftK: 4}},
	}

	tab := metrics.NewTable("Quantized & speculative decode, single-stream greedy, trained target + draft:",
		"config", "tok/s", "vs fp32", "accept", "draft steps", "rounds")
	var fp32TokS float64
	var acceptRate float64
	for i, lg := range legs {
		srv := serve.New(target, lg.cfg)
		rep := serve.RunLoad(srv, load)
		snap := srv.Stats()
		srv.Close()
		if rep.Failed > 0 {
			return nil, nil, fmt.Errorf("serving: %d requests failed under %s", rep.Failed, lg.name)
		}
		tokS := rep.TokensPerSecond()
		if i == 0 {
			fp32TokS = tokS
		}
		speedup := "1.00x"
		if i > 0 && fp32TokS > 0 {
			speedup = fmt.Sprintf("%.2fx", tokS/fp32TokS)
		}
		accept, steps, rounds := "-", "-", "-"
		if lg.cfg.Draft != nil {
			acceptRate = snap.SpecAcceptanceRate()
			accept = fmt.Sprintf("%.0f%%", 100*acceptRate)
			steps = fmt.Sprintf("%d", snap.DraftSteps)
			rounds = fmt.Sprintf("%d", snap.SpecRounds)
		}
		tab.AddRow(lg.name, fmt.Sprintf("%.0f", tokS), speedup, accept, steps, rounds)
	}
	qsNotes := []string{
		fmt.Sprintf("quant/spec target: LSTM %d/%d/%d; draft: RHN %d/%d/%d (%.1fx fewer parameters), both trained %d epoch(s) on a shared Markov corpus",
			tmc.Vocab, tmc.Dim, tmc.Hidden, dmc.Vocab, dmc.Dim, dmc.Hidden,
			paramRatio(tmc, dmc), epochs),
		"speculative responses are bit-identical to sequential model.Generate at every temperature (enforced by internal/serve tests); int8 legs are deterministic against the quantized reference",
		"speculation trades FLOPs for steps: verifying j drafted tokens batches j rows through the target, which on a compute-bound host costs ~j sequential steps — the spec legs therefore measure acceptance honestly rather than claiming a speedup; the win appears where logits are memory-bound and a verify batch is ~free",
	}
	if acceptRate == 0 {
		qsNotes = append(qsNotes, "WARNING: trained draft achieved zero acceptance — draft/target pairing is broken")
	}
	return tab, qsNotes, nil
}

// paramRatio approximates the target:draft parameter ratio for the note.
func paramRatio(t, d model.Config) float64 {
	count := func(c model.Config) float64 {
		emb := float64(c.Vocab * c.Dim * 2)
		var rnn float64
		if c.RNN == model.KindRHN {
			rnn = float64(c.RHNDepth) * 2 * float64((c.Dim+c.Hidden)*c.Hidden)
		} else {
			rnn = 4 * float64((c.Dim+c.Hidden+1)*c.Hidden)
		}
		return emb + rnn
	}
	return count(t) / count(d)
}
