package experiments

import (
	"fmt"

	"zipflm/internal/collective"
	"zipflm/internal/compress"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/half"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/perfmodel"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func init() {
	register("compress",
		"Gradient compression: top-k + error feedback and 8-bit quant vs dense wire — measured bytes, loss delta, predicted weak scaling",
		runCompress)
}

// runCompress evaluates the adaptive gradient-compression subsystem from
// both ends:
//
// Table 1 trains a real (scaled-down, full-softmax) word LM over the
// simulated cluster once per compressor and reports what each costs and
// buys: measured dense-gradient wire bytes per rank, predicted step time on
// the Table II hardware (the virtual clock prices the compressed payloads),
// and the validation-loss delta against the uncompressed run — error
// feedback is what keeps that delta small at ratios far below 1.
//
// Table 2 prices the same compressors into the paper-scale weak-scaling
// step model on the *baseline* (§II-B allgather) engine: the dense
// all-reduce term is repriced per compressor while everything else (sparse
// gathers, compute, update, overhead) stays the Table II calibration. 8-bit
// quantization shrinks every ring chunk 4×, so its win holds at every G;
// the top-k payload all-gather grows ∝ G·k, so its edge narrows as the
// cluster grows — the same allgather-volume tradeoff DGC-style systems
// document.
func runCompress(opts Options) (*Report, error) {
	ranks := 4
	batch, seqLen := 4, 12
	epochs := 2
	mc := model.Config{Vocab: 300, Dim: 24, Hidden: 32, RNN: model.KindLSTM}
	streamLen := 60_000
	if opts.Quick {
		ranks = 2
		epochs = 1
		mc = model.Config{Vocab: 200, Dim: 16, Hidden: 24, RNN: model.KindLSTM}
		streamLen = 16_000
	}

	gen := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    mc.Vocab - 1,
		ZipfExponent: 1.1,
		Seed:         opts.Seed,
	})
	stream := gen.Stream(streamLen)
	train, valid := corpus.Split(stream, 20, 100, opts.Seed)

	// The Zipf-aware policy: tune the embedding-class top-k ratio off the
	// corpus's measured type–token law. The full-softmax output-embedding
	// gradient only has non-zero rows for the global batch's unique words,
	// so this is the ratio the data itself justifies.
	tuned := compress.Config{Method: compress.MethodTopK, Ratio: 0.05, Momentum: 0.9, MinElems: 256}
	tuneErr := tuned.ZipfTune(train, mc.Vocab, ranks*batch*seqLen)

	type variant struct {
		name string
		wire collective.Wire
		cmp  *compress.Config
	}
	topk1 := tuned
	topk1.Ratio = 0.01
	q8 := compress.Config{Method: compress.MethodQuant8, Stochastic: true, MinElems: 256}
	variants := []variant{
		{"dense FP32", nil, nil},
		{"dense FP16 (§III-C)", half.NewScaler(512), nil},
		{"q8 stochastic", nil, &q8},
		{"topk 5% + EF momentum", nil, &tuned},
		{"topk 1% + EF + FP16 vals", half.NewScaler(512), &topk1},
	}

	hw := perfmodel.TitanX()
	runOne := func(v variant) (collective.Stats, float64, float64, error) {
		cc := v.cmp
		if cc != nil {
			copied := *cc // trainers normalize their own copy
			cc = &copied
		}
		cfg := trainer.Config{
			Model:           mc,
			Ranks:           ranks,
			BatchPerRank:    batch,
			SeqLen:          seqLen,
			LR:              0.3,
			Exchange:        core.UniqueExchange{},
			SeedStrategy:    sampling.ZipfFreq,
			BaseSeed:        opts.Seed,
			Wire:            v.wire,
			Compress:        cc,
			Hardware:        &hw,
			SimFLOPsPerStep: 1e9,
			SimAchievedFrac: 0.4,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			return collective.Stats{}, 0, 0, err
		}
		res, err := tr.Run(epochs, 1)
		if err != nil {
			return collective.Stats{}, 0, 0, err
		}
		if err := tr.ReplicasInSync(); err != nil {
			return collective.Stats{}, 0, 0, err
		}
		return tr.Comm().MaxStats(), res.Stats.SimStepSeconds(), res.FinalLoss, nil
	}

	tab := metrics.NewTable(
		fmt.Sprintf("Compressed training, %d ranks, %d epochs, full-softmax word LM (unique exchange; virtual clock on %s):",
			ranks, epochs, hw.Name),
		"compressor", "dense wire/rank", "vs FP32", "total wire/rank", "sim step ms", "val loss", "Δloss")
	notes := []string{
		"dense wire/rank = measured ALLREDUCE traffic (the compressed payloads); the sparse §III-A exchange is untouched and identical across rows",
		"error feedback carries unsent gradient mass across steps, so top-k at 1-5% keeps the loss delta small instead of dropping 95-99% of the gradient",
	}
	if tuneErr != nil {
		return nil, fmt.Errorf("compress: zipf tune: %w", tuneErr)
	}
	notes = append(notes, fmt.Sprintf(
		"Zipf policy: type-token fit over the training stream sets the embedding-class top-k ratio to %.3f (rank-frequency α = %.2f)",
		tuned.EmbedRatio, tuned.RankAlpha))

	var ref struct {
		dense int64
		loss  float64
		ok    bool
	}
	var topkStats collective.Stats
	var topkLoss float64
	topkIdx := -1 // the variant the determinism rerun repeats
	for vi, v := range variants {
		st, simStep, loss, err := runOne(v)
		if err != nil {
			return nil, err
		}
		if !ref.ok {
			ref.dense, ref.loss, ref.ok = st.AllReduceBytes, loss, true
		}
		if v.cmp != nil && v.cmp.Method == compress.MethodTopK && topkIdx < 0 {
			topkStats, topkLoss, topkIdx = st, loss, vi
		}
		tab.AddRow(
			v.name,
			metrics.HumanBytes(st.AllReduceBytes),
			fmt.Sprintf("%.2fx", float64(st.AllReduceBytes)/float64(ref.dense)),
			metrics.HumanBytes(st.Total()),
			fmt.Sprintf("%.2f", simStep*1e3),
			fmt.Sprintf("%.4f", loss),
			fmt.Sprintf("%+.4f", loss-ref.loss),
		)
		if v.cmp != nil && st.AllReduceBytes >= ref.dense {
			notes = append(notes, fmt.Sprintf(
				"WARNING: %s wire bytes %d not below uncompressed %d", v.name, st.AllReduceBytes, ref.dense))
		}
	}

	// Determinism: rerun the top-k variant and demand bit-identical wire
	// bytes and loss — compression must not introduce schedule dependence.
	if topkIdx < 0 {
		return nil, fmt.Errorf("compress: no top-k variant in the sweep")
	}
	againStats, _, againLoss, err := runOne(variants[topkIdx])
	if err != nil {
		return nil, err
	}
	if againStats == topkStats && againLoss == topkLoss {
		notes = append(notes, "deterministic: re-running the top-k configuration reproduces wire bytes and validation loss bit-identically")
	} else {
		notes = append(notes, fmt.Sprintf(
			"WARNING: compressed rerun not deterministic (bytes %d vs %d, loss %v vs %v)",
			againStats.Total(), topkStats.Total(), againLoss, topkLoss))
	}

	// Part 2: paper-scale pricing — the baseline engine's weak-scaling step
	// with the dense all-reduce repriced per compressor, Table II links.
	w := wordLM()
	gpus := []int{8, 16, 32, 64, 128}
	if opts.Quick {
		w.K = 64
		w.D = 32
		w.Vocab = 2000
		w.Samples = 32
		w.DenseParams = 100_000
		w.FLOPsPerStep = 1e9
		w.TokensPerEpoch = 1_000_000
		gpus = []int{2, 4, 8}
	}
	q8w := compress.NewQuant8(0, false, 0)
	topkRatio := 0.01
	q8Price := func(link perfmodel.LinkCost, g int, elems int64) float64 {
		chunk := (int(elems) + g - 1) / g
		return link.RingAllReduceSecondsBytes(g, int64(q8w.WireBytes(chunk)))
	}
	topkPrice := func(link perfmodel.LinkCost, g int, elems int64) float64 {
		k := int(topkRatio * float64(elems))
		return link.RingAllGatherSeconds(g, int64(compress.TopKPayloadBytes(k, true)))
	}

	// Quick runs a miniature workload, so the 12 GB wall never engages;
	// the full run keeps the real capacity so the baseline's "*" rows land
	// where Table III puts them (compression shrinks wire bytes, not the
	// engine's Θ(G·K·D) gather scratch — the wall is the exchange's
	// problem, and §III-A's).
	unlimited := opts.Quick
	tab2 := metrics.NewTable(
		fmt.Sprintf("%s weak scaling, baseline engine, dense all-reduce repriced per compressor (Table II cost model):", w.Name),
		"GPUs", "step s (FP32)", "step s (q8)", "step s (topk 1%)", "q8 speedup", "topk speedup")
	improvedAt := 0
	var q8Best float64
	for _, g := range gpus {
		base, err := runWeakStepPriced(w, g, true, unlimited, opts.Seed, nil)
		if err != nil {
			return nil, err
		}
		q8Run, err := runWeakStepPriced(w, g, true, unlimited, opts.Seed, q8Price)
		if err != nil {
			return nil, err
		}
		topkRun, err := runWeakStepPriced(w, g, true, unlimited, opts.Seed, topkPrice)
		if err != nil {
			return nil, err
		}
		if base.oom || q8Run.oom || topkRun.oom {
			tab2.AddRow(fmt.Sprint(g), "*(OOM)", "*(OOM)", "*(OOM)", "-", "-")
			continue
		}
		q8Speed := base.stepSec / q8Run.stepSec
		topkSpeed := base.stepSec / topkRun.stepSec
		if q8Run.stepSec < base.stepSec {
			improvedAt = g
			q8Best = q8Speed
		}
		tab2.AddRow(
			fmt.Sprint(g),
			fmt.Sprintf("%.3f", base.stepSec),
			fmt.Sprintf("%.3f", q8Run.stepSec),
			fmt.Sprintf("%.3f", topkRun.stepSec),
			fmt.Sprintf("%.2fx", q8Speed),
			fmt.Sprintf("%.2fx", topkSpeed),
		)
	}
	if improvedAt > 0 {
		notes = append(notes, fmt.Sprintf(
			"weak scaling: 8-bit quantization improves the baseline engine's predicted step time at every running size (%.2fx at %d GPUs) — the ring chunk shrinks 4x at any G",
			q8Best, improvedAt))
	} else {
		notes = append(notes, "WARNING: no predicted step-time improvement from compression on the baseline engine")
	}
	notes = append(notes,
		"top-k travels as a payload all-gather (Θ(G·k) volume), so its predicted edge narrows as G grows — compression ratio must outpace cluster growth, exactly the DGC deployment guidance")

	return &Report{Tables: []*metrics.Table{tab, tab2}, Notes: notes}, nil
}
