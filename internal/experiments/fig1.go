package experiments

import (
	"fmt"

	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/powerlaw"
)

func init() {
	register("fig1", "Figure 1: types (unique words) vs tokens, power law U ∝ N^0.64", runFig1)
}

// runFig1 regenerates the type-token curves of Figure 1 on the synthetic
// stand-ins for the four datasets and fits the power law the paper
// annotates (y = 7.02·x^0.64, R² = 1.00, fitted on Amazon Review).
func runFig1(opts Options) (*Report, error) {
	checkpoints := []int{500, 5_000, 50_000, 500_000, 5_000_000}
	if opts.Quick {
		checkpoints = checkpoints[:4]
	}

	datasets := []string{"1b", "gb", "cc", "ar"}
	tab := metrics.NewTable("Types U at token-count checkpoints (batch line = x):",
		append([]string{"tokens (N)", "batch"}, datasets...)...)

	curves := make(map[string][]corpus.TypeTokenPoint)
	for _, name := range datasets {
		d, err := corpus.DatasetByName(name)
		if err != nil {
			return nil, err
		}
		gen := corpus.NewGenerator(corpus.GeneratorConfig{
			VocabSize:    2_000_000, // §IV-A: 2M–24M unique words in the corpora
			ZipfExponent: d.ZipfExponent,
			Seed:         opts.Seed,
		})
		curves[name] = gen.TypeTokenCurve(checkpoints)
	}

	for i, n := range checkpoints {
		row := []string{fmt.Sprintf("%.1e", float64(n)), fmt.Sprintf("%.1e", float64(n))}
		for _, name := range datasets {
			row = append(row, fmt.Sprintf("%d", curves[name][i].Types))
		}
		tab.AddRow(row...)
	}

	// Fit the power law on the Amazon Review curve, as the paper does.
	ar := curves["ar"]
	xs := make([]float64, len(ar))
	ys := make([]float64, len(ar))
	for i, p := range ar {
		xs[i] = float64(p.Tokens)
		ys[i] = float64(p.Types)
	}
	fit, err := powerlaw.FitXY(xs, ys)
	if err != nil {
		return nil, err
	}

	last := ar[len(ar)-1]
	rep := &Report{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			fmt.Sprintf("fit on ar: %s (paper: y = 7.02x^0.64, R² = 1.00)", fit),
			fmt.Sprintf("gap at N=%d: N/U = %.0f× (paper: ~100× at N = 40M)",
				last.Tokens, float64(last.Tokens)/float64(last.Types)),
		},
	}
	if fit.Alpha < 0.5 || fit.Alpha > 0.8 {
		rep.Notes = append(rep.Notes, "WARNING: fitted exponent outside the paper's band")
	}
	return rep, nil
}
