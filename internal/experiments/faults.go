package experiments

import (
	"fmt"

	"zipflm/internal/ckpt"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func init() {
	register("faults",
		"Goodput under injected rank failures: checkpoint-interval sweep vs the Young/Daly optimum, Table II hardware model",
		runFaults)
}

// This experiment is the scenario the fault-tolerance subsystem exists
// for, and one the virtual-clock layer makes possible at all: at the
// paper's scale an epoch is 14.6 h across 8 GPUs (Table III) — failures
// are the norm, and the checkpoint interval is a real knob with a real
// optimum. A laptop-sized model trains for real over the simulated
// cluster while the virtual clock charges paper-scale compute per step;
// a seeded Poisson fault plan kills ranks in simulated time; each fault
// rolls the trainer back to its last checkpoint and replays. Sweeping
// checkpoint interval × failure rate then traces the classic goodput
// curve — checkpoint too often and the write barrier dominates, too
// rarely and lost work does — and the empirically-best interval is
// compared against the Young/Daly first-order optimum τ = √(2δM).
//
// The MTBFs are accelerated so several failures land inside a few-hundred
// step horizon; the Young/Daly relation is scale-free, so the
// measured-vs-predicted comparison carries to production MTBFs unchanged
// (a note prints the realistic-cluster numbers).

// faultCell is one (MTBF, interval) sweep point.
type faultCell struct {
	mtbf     float64
	interval int
	goodput  float64
	faults   int
	lost     int
	ckpts    int
	simSec   float64
}

func runFaults(opts Options) (*Report, error) {
	w := wordLM()
	hw := w.hardware()

	ranks := 8
	committed := 400
	mtbfs := []float64{5, 12, 30}
	intervals := []int{5, 10, 20, 40, 80}
	if opts.Quick {
		ranks = 4
		committed = 120
		mtbfs = []float64{3, 8}
		intervals = []int{5, 15, 45}
	}

	// Checkpoint write cost δ at paper scale: the word LM's full state
	// (dense parameters + both embeddings, FP32) over a 1 GB/s parallel
	// file system. Restart adds failure detection and respawn on top of
	// the reload.
	const ckptBW = 1e9
	stateBytes := float64(w.DenseParams+2*int64(w.Vocab)*int64(w.D)) * 4
	delta := stateBytes / ckptBW
	restart := delta + 0.5

	gen := corpus.NewGenerator(corpus.GeneratorConfig{VocabSize: 499, ZipfExponent: 1.1, Seed: opts.Seed})
	stream := gen.Stream(4000 * ranks)
	train, valid := corpus.Split(stream, 20, 100, opts.Seed)

	baseCfg := func() trainer.Config {
		return trainer.Config{
			Model:           model.Config{Vocab: 500, Dim: 16, Hidden: 24, RNN: model.KindLSTM, Sampled: 32},
			Ranks:           ranks,
			BatchPerRank:    2,
			SeqLen:          8,
			LR:              0.1,
			Exchange:        core.UniqueExchange{},
			SeedStrategy:    sampling.ZipfFreq,
			BaseSeed:        opts.Seed,
			Hardware:        &hw,
			SimFLOPsPerStep: w.FLOPsPerStep,
			SimAchievedFrac: w.AchievedFrac,
		}
	}

	// Fault-free calibration: the ideal per-step virtual time, the
	// numerator of every goodput figure.
	cal, err := trainer.New(baseCfg(), train, valid)
	if err != nil {
		return nil, err
	}
	const calSteps = 40
	if err := cal.Steps(calSteps); err != nil {
		return nil, err
	}
	stepSec := cal.SimSeconds() / calSteps

	runCell := func(mtbf float64, interval int) (faultCell, error) {
		cfg := baseCfg()
		cfg.CheckpointEvery = interval
		cfg.SimCheckpointSeconds = delta
		cfg.SimRestartSeconds = restart
		cfg.Trace = opts.Trace
		cfg.Flight = opts.Flight
		// Horizon with slack: overheads and replays stretch the run well
		// past the ideal time; events past the actual end stay unconsumed.
		horizon := float64(committed) * stepSec * 20
		cfg.Faults = ckpt.PoissonFaultPlan(opts.Seed+uint64(1000*mtbf), ranks, mtbf, horizon)
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			return faultCell{}, err
		}
		if err := tr.Steps(committed); err != nil {
			return faultCell{}, err
		}
		fs := tr.FaultStats()
		c := faultCell{
			mtbf:     mtbf,
			interval: interval,
			faults:   fs.Faults,
			lost:     fs.LostSteps,
			ckpts:    fs.Checkpoints,
			simSec:   tr.SimSeconds(),
		}
		c.goodput = float64(committed) * stepSec / c.simSec
		return c, nil
	}

	tab := metrics.NewTable(
		fmt.Sprintf("Goodput under injected failures (%s, %d ranks, %d committed steps, ideal step %.3f s, checkpoint δ %.2f s, restart %.2f s):",
			hw.Name, ranks, committed, stepSec, delta, restart),
		"MTBF", "ckpt every", "YD τ", "ckpts", "faults", "lost steps", "sim time", "goodput")
	tab.SetUnits("s", "steps", "steps", "", "", "steps", "s", "ratio")

	notes := []string{
		"a real model trains over the simulated cluster; the virtual clock charges the paper word LM's 136 GFLOP/step at 40% of Titan X peak, checkpoint barriers at δ, and failure recoveries at the restart cost",
		"each fault rolls every replica back to the last checkpoint and replays — the trainer tests prove the replayed trajectory is bit-identical, so only wall-clock (goodput) is at stake",
		"MTBFs are accelerated to fit the horizon; Young/Daly τ = √(2δM) is scale-free, so the measured-vs-predicted comparison is unchanged at production MTBFs",
	}

	var firstCell faultCell
	for _, mtbf := range mtbfs {
		ydSteps := ckpt.YoungDaly(delta, mtbf) / stepSec
		best := faultCell{}
		for _, interval := range intervals {
			c, err := runCell(mtbf, interval)
			if err != nil {
				return nil, err
			}
			if firstCell.simSec == 0 {
				firstCell = c
			}
			if c.goodput > best.goodput {
				best = c
			}
			tab.AddRow(
				fmt.Sprintf("%.1f", mtbf),
				fmt.Sprint(interval),
				fmt.Sprintf("%.0f", ydSteps),
				fmt.Sprint(c.ckpts),
				fmt.Sprint(c.faults),
				fmt.Sprint(c.lost),
				fmt.Sprintf("%.1f", c.simSec),
				fmt.Sprintf("%.1f%%", 100*c.goodput),
			)
		}
		ratio := float64(best.interval) / ydSteps
		verdict := "within the Young/Daly ballpark"
		if ratio < 0.25 || ratio > 4 {
			verdict = "OUTSIDE the Young/Daly ballpark"
		}
		notes = append(notes, fmt.Sprintf(
			"MTBF %.1f s: empirically best interval %d steps (goodput %.1f%%) vs Young/Daly τ = %.0f steps — %s",
			mtbf, best.interval, 100*best.goodput, ydSteps, verdict))
	}

	// A realistic anchor for the accelerated sweep: the same δ at a
	// production cluster MTBF.
	const prodMTBF = 86400.0 // a failure a day across the fleet
	notes = append(notes, fmt.Sprintf(
		"at a production one-failure-per-day MTBF the same δ gives τ = %.0f s ≈ every %.0f steps (%.1f min of Table II wall-clock)",
		ckpt.YoungDaly(delta, prodMTBF), ckpt.YoungDaly(delta, prodMTBF)/stepSec, ckpt.YoungDaly(delta, prodMTBF)/60))

	// Determinism: the virtual clock and the fault plan are both seeded —
	// rerunning the first cell must reproduce its goodput bit-identically.
	again, err := runCell(mtbfs[0], intervals[0])
	if err != nil {
		return nil, err
	}
	if again.simSec == firstCell.simSec && again.lost == firstCell.lost {
		notes = append(notes, "deterministic: re-running a cell reproduces simulated time and lost work bit-identically")
	} else {
		notes = append(notes, fmt.Sprintf("WARNING: fault injection not deterministic (%.9f/%d vs %.9f/%d)",
			again.simSec, again.lost, firstCell.simSec, firstCell.lost))
	}

	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}
