package experiments

import (
	"strings"
	"testing"

	"zipflm/internal/perfmodel"
	"zipflm/internal/sampling"
)

func quickOpts() Options { return Options{Quick: true, Seed: 42} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"abl-fp16", "abl-hier", "abl-sampler", "abl-seed", "bpc", "compress", "faults", "fig1", "fig5", "fig6", "fig7", "fig8", "mem", "overlap", "serving", "tab1", "tab3", "tab4", "tab5", "weakscale"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
		if Title(want[i]) == "" {
			t.Errorf("%s has no title", want[i])
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quickOpts()); err == nil {
		t.Fatal("unknown id must error")
	}
}

// TestOverlapExperiment regenerates the overlap ablation and checks its
// invariant: the overlapped path must move exactly the bytes the
// synchronous path moves (the table flags any divergence with "NO").
func TestOverlapExperiment(t *testing.T) {
	rep, err := Run("overlap", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if strings.Contains(out, "NO (") || strings.Contains(out, "WARNING") {
		t.Errorf("wire bytes diverged between sync and overlapped reduction:\n%s", out)
	}
	if !strings.Contains(out, "speedup") {
		t.Errorf("missing speedup summary:\n%s", out)
	}
}

// TestFaultsExperiment gates the fault-injection goodput sweep: failures
// must actually be injected and cost work, the virtual clock must stay
// deterministic under rollback, and every swept MTBF's empirically-best
// checkpoint interval must land within the Young/Daly ballpark.
func TestFaultsExperiment(t *testing.T) {
	rep, err := Run("faults", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if strings.Contains(out, "WARNING") {
		t.Errorf("faults experiment lost determinism:\n%s", out)
	}
	if strings.Contains(out, "OUTSIDE the Young/Daly ballpark") {
		t.Errorf("empirically-best interval off the Young/Daly prediction:\n%s", out)
	}
	if !strings.Contains(out, "within the Young/Daly ballpark") {
		t.Errorf("missing the measured-vs-predicted comparison:\n%s", out)
	}
	if !strings.Contains(out, "goodput") {
		t.Errorf("missing goodput column:\n%s", out)
	}
	if !strings.Contains(out, "deterministic: re-running a cell") {
		t.Errorf("missing determinism check:\n%s", out)
	}
}

func TestFig1PowerLaw(t *testing.T) {
	rep, err := Run("fig1", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if strings.Contains(out, "WARNING") {
		t.Errorf("fig1 exponent out of band:\n%s", out)
	}
	if !strings.Contains(out, "R² = 1.00") && !strings.Contains(out, "R² = 0.99") {
		t.Errorf("fig1 fit not near-perfect:\n%s", out)
	}
}

func TestTab1ListsAllDatasets(t *testing.T) {
	rep, err := Run("tab1", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, name := range []string{"1b", "gb", "ar", "tieba", "93.12 GB"} {
		if !strings.Contains(out, name) {
			t.Errorf("tab1 missing %q", name)
		}
	}
}

// TestTab3ReproducesShape asserts the load-bearing claims of Table III:
// the baseline OOMs at 32+ GPUs, ours scales to 64, and the modeled hours
// track the paper's within a reasonable band.
func TestTab3ReproducesShape(t *testing.T) {
	w := wordLM()
	hw := w.hardware()

	// OOM boundary.
	for _, g := range []int{8, 16, 24} {
		if peakMemory(w, g, stackBaseline, 42) > hw.MemBytes {
			t.Errorf("baseline must fit at %d GPUs", g)
		}
	}
	for _, g := range []int{32, 64} {
		if peakMemory(w, g, stackBaseline, 42) <= hw.MemBytes {
			t.Errorf("baseline must OOM at %d GPUs", g)
		}
	}

	// Paper's "ours" hours within 15%.
	paper := map[int]float64{8: 14.6, 16: 8.1, 24: 6.4, 32: 5.4, 64: 4.5}
	for g, want := range paper {
		cost := stepCost(w, g, stackCompressed, 42)
		got := hw.EpochTime(g, w.K, w.TokensPerEpoch, cost)
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("ours at %d GPUs: model %.1f h, paper %.1f h", g, got, want)
		}
	}

	// Baseline is dramatically slower than ours at every runnable size.
	for _, g := range []int{8, 16, 24} {
		base := hw.EpochTime(g, w.K, w.TokensPerEpoch, stepCost(w, g, stackBaseline, 42))
		ours := hw.EpochTime(g, w.K, w.TokensPerEpoch, stepCost(w, g, stackCompressed, 42))
		if base < 2*ours {
			t.Errorf("at %d GPUs baseline %.1f h not well above ours %.1f h", g, base, ours)
		}
	}
}

// TestTab4ReproducesShape does the same for the char LM.
func TestTab4ReproducesShape(t *testing.T) {
	w := charLM()
	hw := w.hardware()
	for _, g := range []int{8, 16, 24} {
		if peakMemory(w, g, stackBaseline, 42) > hw.MemBytes {
			t.Errorf("char baseline must fit at %d GPUs", g)
		}
	}
	for _, g := range []int{32, 64} {
		if peakMemory(w, g, stackBaseline, 42) <= hw.MemBytes {
			t.Errorf("char baseline must OOM at %d GPUs", g)
		}
	}
	paper := map[int]float64{8: 23.2, 16: 12.9, 24: 8.2, 32: 6.8, 64: 3.5}
	for g, want := range paper {
		got := hw.EpochTime(g, w.K, w.TokensPerEpoch, stepCost(w, g, stackCompressed, 42))
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("char ours at %d GPUs: model %.1f h, paper %.1f h", g, got, want)
		}
	}
	// §V-B headline: 6.6× speedup with 8× more GPUs.
	s8 := hw.EpochTime(8, w.K, w.TokensPerEpoch, stepCost(w, 8, stackCompressed, 42))
	s64 := hw.EpochTime(64, w.K, w.TokensPerEpoch, stepCost(w, 64, stackCompressed, 42))
	if sp := s8 / s64; sp < 6.0 || sp > 7.3 {
		t.Errorf("char speedup = %.1f×, paper says 6.6×", sp)
	}
}

// TestFig6LadderMonotone asserts each cumulative optimization helps and
// uniqueness dominates, as in the paper's bars.
func TestFig6LadderMonotone(t *testing.T) {
	w := wordLM()
	hw := w.hardware()
	for _, g := range []int{16, 24} {
		var prevSpeedup float64
		base := hw.EpochTime(g, w.K, w.TokensPerEpoch, stepCost(w, g, stackBaseline, 42))
		for _, stack := range []stackKind{stackBaseline, stackUnique, stackSeeded, stackCompressed} {
			hours := hw.EpochTime(g, w.K, w.TokensPerEpoch, stepCost(w, g, stack, 42))
			speedup := base / hours
			if speedup+1e-9 < prevSpeedup {
				t.Errorf("g=%d: %v regressed (%.2f after %.2f)", g, stack, speedup, prevSpeedup)
			}
			prevSpeedup = speedup
		}
		// Uniqueness alone contributes several-fold.
		uniq := base / hw.EpochTime(g, w.K, w.TokensPerEpoch, stepCost(w, g, stackUnique, 42))
		if uniq < 3 {
			t.Errorf("g=%d: uniqueness speedup %.1f, paper says ≥4×", g, uniq)
		}
	}
	// 24-GPU total beats 16-GPU total (paper: 6.3 vs 5.1).
	s := func(g int) float64 {
		return hw.EpochTime(g, w.K, w.TokensPerEpoch, stepCost(w, g, stackBaseline, 42)) /
			hw.EpochTime(g, w.K, w.TokensPerEpoch, stepCost(w, g, stackCompressed, 42))
	}
	if s(24) <= s(16) {
		t.Errorf("total speedup must grow with G: %.1f at 16 vs %.1f at 24", s(16), s(24))
	}
}

// TestMemReproducesPaper asserts the §V-A memory points within 10% and the
// 8.6× reduction.
func TestMemReproducesPaper(t *testing.T) {
	w := wordLM()
	paper := map[int]float64{8: 3.9e9, 16: 7.1e9, 24: 10.3e9}
	for g, want := range paper {
		got := float64(peakMemory(w, g, stackBaseline, 42))
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("baseline memory at %d GPUs: %.2f GB, paper %.2f GB", g, got/1e9, want/1e9)
		}
	}
	for _, g := range []int{8, 24, 64} {
		ours := float64(peakMemory(w, g, stackCompressed, 42))
		if ours < 1.1e9 || ours > 1.35e9 {
			t.Errorf("ours memory at %d GPUs: %.2f GB, paper ~1.2 GB", g, ours/1e9)
		}
	}
	red := float64(peakMemory(w, 24, stackBaseline, 42)) / float64(peakMemory(w, 24, stackCompressed, 42))
	if red < 7.5 || red > 9.5 {
		t.Errorf("24-GPU memory reduction %.1f×, paper 8.6×", red)
	}
}

// TestTab5TimeModel asserts the weak-scaling headline: 32× more data and
// GPUs costs only ~1.25× more time.
func TestTab5TimeModel(t *testing.T) {
	w := tiebaLM()
	hw := w.hardware()
	hours := func(g int, chars float64) float64 {
		return hw.EpochTime(g, w.K, int64(chars*1e9), stepCost(w, g, stackCompressed, 42))
	}
	h6 := hours(6, 1.07)
	h24 := hours(24, 4.29)
	h192 := hours(192, 34.36)
	if h6 < 24 || h6 > 30 {
		t.Errorf("6-GPU epoch %.1f h, paper 27 h", h6)
	}
	if r := h24 / h6; r < 1.0 || r > 1.1 {
		t.Errorf("24-GPU time ratio %.2f, paper 1.04", r)
	}
	if r := h192 / h6; r < 1.15 || r > 1.35 {
		t.Errorf("192-GPU time ratio %.2f, paper 1.25", r)
	}
	// Aggregate compute throughput ≈ 0.76 PFLOP/s on 192 GPUs (the
	// paper's figure measures the kernels, not the synchronization gaps).
	computeSec := w.FLOPsPerStep / (hw.PeakFLOPS * w.AchievedFrac)
	pflops := 192 * w.FLOPsPerStep / computeSec / 1e15
	if pflops < 0.68 || pflops > 0.84 {
		t.Errorf("aggregate compute throughput %.2f PFLOP/s, paper 0.76", pflops)
	}
}

// TestTab5Training asserts the accuracy half's trend: more data at the same
// step count lowers perplexity.
func TestTab5Training(t *testing.T) {
	rep, err := Run("tab5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tab5 must produce two tables")
	}
	out := rep.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("tab5 produced NaN:\n%s", out)
	}
}

// TestSeedingMeasuredUnique checks the §III-B structural claim at full
// paper scale: ZipfFreq collapses the output-embedding unique count far
// below AllDifferent while AllSame is the floor.
func TestSeedingMeasuredUnique(t *testing.T) {
	w := wordLM()
	const g = 64
	_, _, _, ugDiff := measuredUnique(w, g, sampling.AllDifferent, 42)
	_, _, _, ugZipf := measuredUnique(w, g, sampling.ZipfFreq, 42)
	_, _, _, ugSame := measuredUnique(w, g, sampling.AllSame, 42)
	if !(ugSame < ugZipf && ugZipf < ugDiff) {
		t.Errorf("unique ordering broken: same=%d zipf=%d diff=%d", ugSame, ugZipf, ugDiff)
	}
	// ZipfFreq's 15 seeds at 64 ranks roughly halve the unique count
	// (log-uniform candidate overlap already compresses AllDifferent well
	// below G·S at a 100K vocabulary).
	if float64(ugZipf) > 0.6*float64(ugDiff) {
		t.Errorf("ZipfFreq saves too little: %d vs %d", ugZipf, ugDiff)
	}
}

func TestFig7Ordering(t *testing.T) {
	rep, err := Run("fig7", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "Zipf's-freq") || !strings.Contains(out, "log10G") {
		t.Errorf("fig7 missing strategies:\n%s", out)
	}
}

func TestFig8Converges(t *testing.T) {
	rep, err := Run("fig8", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.String(), "WARNING") {
		t.Errorf("fig8 did not converge:\n%s", rep)
	}
}

func TestBPCRuns(t *testing.T) {
	rep, err := Run("bpc", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("bpc produced NaN:\n%s", out)
	}
	if !strings.Contains(out, "1.208") {
		t.Errorf("bpc missing paper reference:\n%s", out)
	}
}

func TestFig5Runs(t *testing.T) {
	rep, err := Run("fig5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 || strings.Contains(rep.String(), "NaN") {
		t.Errorf("fig5 malformed:\n%s", rep)
	}
}

// TestV100ComparisonConstant pins the §V-D infrastructure ratio the bpc
// experiment's notes rely on.
func TestV100ComparisonConstant(t *testing.T) {
	v := perfmodel.V100()
	x := perfmodel.TitanX()
	cluster21 := 128 * v.PeakFLOPS / 1e15 // 16 PFLOP/s
	ours := 64 * x.PeakFLOPS / 1e15       // 0.39 PFLOP/s
	if cluster21 < 15.5 || cluster21 > 16.5 {
		t.Errorf("[21] cluster = %.1f PFLOP/s, paper says 16", cluster21)
	}
	if ratio := cluster21 / ours; ratio < 39 || ratio > 43 {
		t.Errorf("infrastructure ratio %.0f×, paper says 41×", ratio)
	}
}

// TestAblationsRun smoke-tests the three ablation harnesses and their key
// structural claims.
func TestAblationsRun(t *testing.T) {
	hier, err := Run("abl-hier", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hier.String(), "reduction") {
		t.Errorf("abl-hier missing reduction column:\n%s", hier)
	}

	fp16, err := Run("abl-fp16", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fp16.String(), "WARNING") {
		t.Errorf("abl-fp16 monotonicity broken:\n%s", fp16)
	}

	seed, err := Run("abl-seed", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(seed.String(), "Zipf's-freq") {
		t.Errorf("abl-seed missing strategies:\n%s", seed)
	}
}

// TestServingExperiment is the serving smoke: the closed-loop Zipf load
// must produce cache hits and shed nothing in the cached configuration —
// the experiment flags violations of either invariant with a WARNING note,
// so a clean run means the caching layer works and admission control never
// dropped a closed-loop request.
func TestServingExperiment(t *testing.T) {
	rep, err := Run("serving", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 || len(rep.Tables[0].Rows()) != 3 {
		t.Fatalf("serving report malformed:\n%s", rep)
	}
	// The quant/spec table carries the four decode legs; the trained draft
	// must achieve nonzero acceptance (a zero rate raises a WARNING note).
	if rows := rep.Tables[1].Rows(); len(rows) != 4 {
		t.Fatalf("quant/spec table has %d rows, want 4:\n%s", len(rows), rep)
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("serving invariant violated: %s", n)
		}
	}
	var sawFit bool
	for _, n := range rep.Notes {
		if strings.Contains(n, "power law") {
			sawFit = true
		}
	}
	if !sawFit {
		t.Error("serving report missing the power-law load fit")
	}
}

// TestTiebaHeroRunFits: the §V-C hero configuration (192 GPUs, 15,437-char
// vocabulary, sampled softmax with seeding) must fit the 12 GiB budget
// under the unique exchange — the run the baseline could never attempt.
func TestTiebaHeroRunFits(t *testing.T) {
	w := tiebaLM()
	hw := w.hardware()
	for _, g := range []int{6, 24, 192} {
		mem := peakMemory(w, g, stackCompressed, 42)
		if mem > hw.MemBytes {
			t.Errorf("tieba ours at %d GPUs needs %d bytes, exceeding the 12 GiB budget", g, mem)
		}
	}
	// The baseline ALLGATHER at 192 GPUs would need Θ(G·K·D) ≈ 26 GB of
	// gather scratch alone — impossible on any Table II GPU.
	base := peakMemory(w, 192, stackBaseline, 42)
	if base <= hw.MemBytes {
		t.Errorf("baseline at 192 GPUs implausibly fits: %d bytes", base)
	}
}
