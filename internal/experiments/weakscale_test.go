package experiments

import (
	"strings"
	"testing"
)

// quickWeakWorkload mirrors runWeakScale's Quick miniature for direct
// runWeakStep assertions.
func quickWeakWorkload() scalingWorkload {
	w := wordLM()
	w.K = 64
	w.D = 32
	w.Vocab = 2000
	w.Samples = 32
	w.DenseParams = 100_000
	w.FLOPsPerStep = 1e9
	return w
}

// TestWeakScaleExperiment smoke-runs the registered experiment in quick
// mode and checks the report's structural invariants.
func TestWeakScaleExperiment(t *testing.T) {
	rep, err := Run("weakscale", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if strings.Contains(out, "WARNING") {
		t.Errorf("weakscale flagged a problem:\n%s", out)
	}
	if !strings.Contains(out, "deterministic") {
		t.Errorf("missing determinism note:\n%s", out)
	}
	for _, col := range []string{"comm [ms]", "update [ms]", "epoch [hrs]", "unique+seed+fp16", "baseline-allgather"} {
		if !strings.Contains(out, col) {
			t.Errorf("report missing %q:\n%s", col, out)
		}
	}
}

// TestWeakStepQualitativeStory asserts the paper's claims on the online
// miniature: the baseline's synchronization (comm + update) grows much
// faster with G than the unique engine's, the unique engine's wire volume
// is smaller, and predicted times are bit-reproducible.
func TestWeakStepQualitativeStory(t *testing.T) {
	w := quickWeakWorkload()
	const g0, g1 = 2, 8

	syncSec := func(r weakRun) float64 { return r.commSec + r.updateSec }

	runs := map[string]map[int]weakRun{"baseline": {}, "unique": {}}
	for _, g := range []int{g0, g1} {
		for name, baseline := range map[string]bool{"baseline": true, "unique": false} {
			r, err := runWeakStep(w, g, baseline, true, 42)
			if err != nil {
				t.Fatalf("%s at G=%d: %v", name, g, err)
			}
			if r.oom {
				t.Fatalf("%s at G=%d: unexpected OOM with unlimited memory", name, g)
			}
			if r.stepSec <= 0 || syncSec(r) <= 0 {
				t.Fatalf("%s at G=%d: non-positive times %+v", name, g, r)
			}
			runs[name][g] = r
		}
	}

	// At miniature payloads the hop latency α dominates growth *rates*
	// for both engines (the paper-scale bandwidth/update-bound growth
	// separation is the full experiment's assertion); what must hold at
	// any scale is the absolute separation: the baseline synchronizes
	// slower, moves more bytes, and its locked scatter-add update dwarfs
	// the unique engine's conflict-free one.
	for _, g := range []int{g0, g1} {
		if syncSec(runs["baseline"][g]) <= syncSec(runs["unique"][g]) {
			t.Errorf("at G=%d baseline sync %.3gs must exceed unique sync %.3gs",
				g, syncSec(runs["baseline"][g]), syncSec(runs["unique"][g]))
		}
		if runs["unique"][g].sparseWire >= runs["baseline"][g].sparseWire {
			t.Errorf("at G=%d unique wire %d must undercut baseline wire %d",
				g, runs["unique"][g].sparseWire, runs["baseline"][g].sparseWire)
		}
	}
	if b, u := runs["baseline"][g1].updateSec, runs["unique"][g1].updateSec; b < 10*u {
		t.Errorf("baseline locked update %.3gs must dwarf unique conflict-free update %.3gs at G=%d",
			b, u, g1)
	}

	// Determinism: same seed, same predicted decomposition, bit for bit.
	again, err := runWeakStep(w, g1, false, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := runs["unique"][g1]
	if again.stepSec != r.stepSec || again.commSec != r.commSec ||
		again.updateSec != r.updateSec || again.ugIn != r.ugIn {
		t.Errorf("predicted step not reproducible: %+v vs %+v", again, r)
	}

	// Different seed must still run (and generally lands elsewhere).
	if _, err := runWeakStep(w, g1, false, true, 43); err != nil {
		t.Fatal(err)
	}
}

// TestWeakScaleAnchorCalibration runs the paper-scale anchor configuration
// (8-GPU word LM, unique+seed+fp16) online and demands the predicted epoch
// hours sit on Table III's 14.6 h calibration — the check the full
// experiment reports as a note, promoted to a hard test so a LinkCost or
// Hardware constant drift cannot pass the suite silently. G=8 keeps it to
// ~a second; the big-G sweep stays in the experiment itself.
func TestWeakScaleAnchorCalibration(t *testing.T) {
	w := wordLM()
	const anchor = 8
	run, err := runWeakStep(w, anchor, false, false, 42)
	if err != nil {
		t.Fatal(err)
	}
	if run.oom {
		t.Fatal("unique exchange must fit at 8 GPUs")
	}
	stepsPerEpoch := float64(w.TokensPerEpoch) / float64(int64(anchor)*int64(w.K))
	hours := stepsPerEpoch * run.stepSec / 3600
	if hours < 14.6*0.85 || hours > 14.6*1.15 {
		t.Errorf("online 8-GPU prediction %.2f h off the Table III 14.6 h calibration (step %.4f s)",
			hours, run.stepSec)
	}
}

// TestWeakStepOOMWall: with a device budget between the two engines'
// scratch needs, the baseline must abort on memory at a scale the unique
// engine sails through — the Tables III/IV "*" wall, reproduced by the live
// accountant rather than a closed-form check. Miniature sizes keep it
// test-fast; the wall's paper-scale position is the full experiment's job.
func TestWeakStepOOMWall(t *testing.T) {
	const g = 8
	w := quickWeakWorkload()
	w.Samples = 0 // single exchange keeps the scratch arithmetic simple
	// Budget between baseline Θ(G·K·D) and unique Θ(G·K + U_g·D) at G=8,
	// expressed through the calibrated memory fields runWeakStep derives
	// device capacity from: capacity = memBytes − base (staging 1).
	budget := int64(g*w.K) * int64(w.D*4+4) * 3 / 4
	memBytes := w.hardware().MemBytes
	w.BaselineStaging = 1
	w.BaseMemory = memBytes - budget
	w.BaseMemoryOurs = memBytes - budget

	base, err := runWeakStep(w, g, true, false, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !base.oom {
		t.Errorf("baseline must hit the %d-byte scratch wall at G=%d", budget, g)
	}
	uniq, err := runWeakStep(w, g, false, false, 42)
	if err != nil {
		t.Fatal(err)
	}
	if uniq.oom {
		t.Errorf("unique exchange must fit in the %d-byte budget at G=%d", budget, g)
	}
	if uniq.stepSec <= 0 {
		t.Errorf("unique run reported no time: %+v", uniq)
	}
}
