package experiments

import (
	"fmt"

	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
)

func init() {
	register("tab1", "Table I: datasets", runTab1)
}

// runTab1 prints the Table I dataset catalog (paper-scale counts) together
// with measured statistics of the synthetic stand-in generators at sample
// scale, demonstrating the generators match the catalog's shape
// (chars/word, bytes/token, vocabulary coverage).
func runTab1(opts Options) (*Report, error) {
	paper := metrics.NewTable("Table I (paper scale):",
		"Dataset", "#Characters", "#Words", "Bytes", "Language")
	for _, d := range corpus.Catalog() {
		if d.Name == "cc" {
			continue // Figure 1 only, not in Table I
		}
		words := "NA"
		if d.PaperWords > 0 {
			words = fmt.Sprintf("%.2fB", float64(d.PaperWords)/1e9)
		}
		paper.AddRow(d.Name,
			fmt.Sprintf("%.2fB", float64(d.PaperChars)/1e9),
			words,
			metrics.HumanBytes(d.PaperBytes),
			d.Language)
	}

	sampleN := 500_000
	if opts.Quick {
		sampleN = 50_000
	}
	meas := metrics.NewTable("Synthetic stand-ins (measured on a sample):",
		"Dataset", "Sample tokens", "Types", "Types/Tokens", "Est. bytes", "Vocab")
	for _, d := range corpus.Catalog() {
		gen := d.WordGenerator(opts.Seed)
		vocab := d.WordVocab
		if d.Kind != corpus.WordLevel {
			gen = d.CharGenerator(opts.Seed)
			vocab = d.CharVocab
		}
		stream := gen.Stream(sampleN)
		types := corpus.CountTypes(stream)
		bytes := int64(float64(sampleN) * d.BytesPerToken())
		meas.AddRow(d.Name,
			fmt.Sprintf("%d", sampleN),
			fmt.Sprintf("%d", types),
			fmt.Sprintf("%.4f", float64(types)/float64(sampleN)),
			metrics.HumanBytes(bytes),
			fmt.Sprintf("%d", vocab))
	}

	return &Report{
		Tables: []*metrics.Table{paper, meas},
		Notes: []string{
			"synthetic generators are scaled-down stand-ins; paper-scale byte totals come from the catalog",
			"tieba bytes/char ≈ 2.71 reproduces 93.12 GB / 34.36 B chars",
		},
	}, nil
}
