package experiments

import (
	"fmt"
	"math"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func init() {
	register("tab5", "Table V: Tieba weak scaling — 6/24/192 GPUs, 3/12/93 GB, time and perplexity", runTab5)
}

// runTab5 regenerates Table V in two halves:
//
//   - The epoch-hours column comes from the calibrated cost model under
//     weak scaling (data and GPUs grow together, so steps/epoch stays
//     constant and only communication overhead grows).
//   - The perplexity column comes from *real training* of a scaled-down
//     Chinese-style char LM on synthetic Tieba corpora whose sizes grow
//     32× across the rows, reproducing the paper's headline: more data +
//     more GPUs at nearly constant wall-clock buys a large accuracy win.
func runTab5(opts Options) (*Report, error) {
	w := tiebaLM()
	hw := w.hardware()

	type row struct {
		chars float64 // billions
		gpus  int
		batch int
		hours float64 // paper
		ppl   float64 // paper
	}
	paper := []row{
		{1.07, 6, 768, 27, 17.06},
		{4.29, 24, 3072, 28, 13.6},
		{34.36, 192, 12288, 34, 11.1},
	}

	// --- Time half (full-scale cost model). ---
	timeTab := metrics.NewTable("Table V, training time (weak scaling):",
		"Chars (B)", "Corpus", "GPUs", "Batch", "hrs (paper)", "hrs (model)", "time vs 6-GPU")
	var baseHours float64
	for _, r := range paper {
		cost := stepCost(w, r.gpus, stackCompressed, opts.Seed)
		tokens := int64(r.chars * 1e9)
		hours := hw.EpochTime(r.gpus, w.K, tokens, cost)
		if baseHours == 0 {
			baseHours = hours
		}
		timeTab.AddRow(
			fmt.Sprintf("%.2f", r.chars),
			metrics.HumanBytes(int64(r.chars*1e9*2.71)),
			fmt.Sprintf("%d", r.gpus),
			fmt.Sprintf("%d", r.batch),
			fmt.Sprintf("%.0f", r.hours),
			fmt.Sprintf("%.0f", hours),
			fmt.Sprintf("%.2f×", hours/baseHours))
	}

	// --- Accuracy half (real scaled-down training). ---
	// Ranks scale 1:4:32 like the paper's 6:24:192; the corpus scales with
	// the ranks (weak scaling), so every configuration sees the same number
	// of steps but the larger ones train on more data.
	ranksBase, perRank := 1, 24_000
	epochs := 2
	vocab := 300
	if opts.Quick {
		perRank = 6_000
		epochs = 1
		vocab = 120
	}
	d, err := corpus.DatasetByName("tieba")
	if err != nil {
		return nil, err
	}
	accTab := metrics.NewTable("Table V, accuracy (real scaled-down training; ranks 1:4:32, data grows with ranks):",
		"ranks", "train tokens", "ppl (paper)", "ppl (measured)", "improvement vs first")
	var basePPL float64
	notes := []string{}
	ratios := []int{1, 4, 32}
	if opts.Quick {
		ratios = []int{1, 4, 8}
	}
	for i, mult := range ratios {
		ranks := ranksBase * mult
		gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
			VocabSize:    vocab - 1,
			Branching:    10,
			ZipfExponent: d.ZipfExponent,
			Seed:         opts.Seed + uint64(i),
		})
		stream := gen.Stream(perRank*ranks + perRank/4)
		train, valid := corpus.Split(stream, 10, 100, opts.Seed)
		cfg := trainer.Config{
			Model: model.Config{
				Vocab: vocab, Dim: 16, Hidden: 24,
				RNN: model.KindRHN, RHNDepth: 2,
				Sampled: 32,
			},
			Ranks:        ranks,
			BatchPerRank: 2,
			SeqLen:       16,
			// Weak scaling grows the global batch with the ranks; the LR
			// follows the paper's sub-linear rule (2e-4 → 4e-4 → 5e-4
			// over 1×/4×/32×), here 1 + ln(ranks), with clipping for
			// stability at the scaled rate.
			LR:           0.15 * (1 + math.Log(float64(ranks))),
			ClipNorm:     1.0,
			Exchange:     core.UniqueExchange{},
			SeedStrategy: sampling.ZipfFreq,
			BaseSeed:     opts.Seed,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run(epochs, 1)
		if err != nil {
			return nil, err
		}
		ppl := res.Evals[len(res.Evals)-1].Perplexity
		if basePPL == 0 {
			basePPL = ppl
		}
		accTab.AddRow(
			fmt.Sprintf("%d", ranks),
			fmt.Sprintf("%d", len(train)),
			fmt.Sprintf("%.2f", paper[min(i, len(paper)-1)].ppl),
			fmt.Sprintf("%.2f", ppl),
			fmt.Sprintf("%.0f%%", 100*metrics.AccuracyImprovement(basePPL, ppl)))
	}

	notes = append(notes,
		"paper: 32× more data + GPUs costs only 1.25× more time but improves accuracy 35%",
		fmt.Sprintf("model time ratio at 32×: see last row (paper: %.2f×)", 34.0/27.0),
		"measured perplexities are from scaled-down synthetic Chinese-style corpora; the trend (more data at constant steps → lower perplexity) is the reproduced claim",
	)
	// Compression-ratio cross-check (§V-C): perplexity 11.1 at 2.71
	// bytes/char → ratio ≈ 6.3 vs [21]'s 6.8.
	bpc := model.BitsPerChar(logOf(11.1))
	cr := model.CompressionRatio(2.71, bpc)
	notes = append(notes, fmt.Sprintf("compression ratio at paper's ppl 11.1: %.1f (paper: 6.3; [21]: 6.8)", cr))

	return &Report{Tables: []*metrics.Table{timeTab, accTab}, Notes: notes}, nil
}

func logOf(x float64) float64 { return math.Log(x) }
