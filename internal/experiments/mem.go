package experiments

import (
	"fmt"

	"zipflm/internal/core"
	"zipflm/internal/metrics"
)

func init() {
	register("mem", "§V-A / §III-A: peak GPU memory — baseline grows linearly, ours stays flat", runMem)
}

// runMem regenerates the memory narrative of the paper: the measured-GB
// progression of §V-A (baseline 3.9/7.1/10.3 GB at 8/16/24 GPUs, OOM after;
// ours ~1.2 GB flat through 64 GPUs; 8.6× reduction at 24 GPUs) and the
// §III-A worked example (35.2 GB → 0.137 GB at 256 GPUs).
func runMem(opts Options) (*Report, error) {
	w := wordLM()
	hw := w.hardware()

	paperBase := map[int]float64{8: 3.9, 16: 7.1, 24: 10.3}
	paperOurs := map[int]float64{8: 1.19, 24: 1.20, 64: 1.21}

	tab := metrics.NewTable("Peak GPU memory, word LM:",
		"GPUs", "baseline (paper)", "baseline (model)", "ours (paper)", "ours (model)")
	notes := []string{}
	var red24 float64
	for _, g := range []int{8, 16, 24, 32, 64} {
		base := peakMemory(w, g, stackBaseline, opts.Seed)
		ours := peakMemory(w, g, stackCompressed, opts.Seed)
		baseStr := metrics.HumanBytes(base)
		if base > hw.MemBytes {
			baseStr += " *(OOM)"
		}
		pb, pu := "-", "-"
		if v, ok := paperBase[g]; ok {
			pb = fmt.Sprintf("%.1f GB", v)
		} else if g >= 32 {
			pb = "*(OOM)"
		}
		if v, ok := paperOurs[g]; ok {
			pu = fmt.Sprintf("%.2f GB", v)
		}
		tab.AddRow(fmt.Sprintf("%d", g), pb, baseStr, pu, metrics.HumanBytes(ours))
		if g == 24 {
			red24 = float64(base) / float64(ours)
		}
	}
	notes = append(notes, fmt.Sprintf("memory reduction at 24 GPUs: %.1f× (paper: 8.6×)", red24))

	// §III-A worked example at 256 GPUs.
	const exG, exK, exD = 256, 19200, 1792
	baseCost := core.BaselineCost(exG, exK, exD, false)
	ug := core.ExpectedUnique(exG*exK, 0.64, 1.0, 1<<40)
	uniqueGB := float64(int64(ug)*exD*4) / 1e9
	ex := metrics.NewTable("§III-A worked example (c=150 sequences ×128, K=19200, D=1792, 256 GPUs):",
		"scheme", "per-GPU memory (paper)", "per-GPU memory (model)")
	ex.AddRow("ALLGATHER", "35.2 GB", metrics.HumanBytes(baseCost.ScratchBytes))
	ex.AddRow("uniqueness", "0.137 GB", fmt.Sprintf("%.3f GB (U_g = %d)", uniqueGB, ug))
	notes = append(notes, fmt.Sprintf("example saving: %.0f× (paper: 256×)",
		float64(baseCost.ScratchBytes)/(uniqueGB*1e9)))

	return &Report{Tables: []*metrics.Table{tab, ex}, Notes: notes}, nil
}
