package experiments

import (
	"fmt"
	"math"

	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/half"
	"zipflm/internal/metrics"
	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/trainer"
)

func init() {
	register("abl-hier", "Ablation: flat vs hierarchical (node-aware) unique exchange — inter-node traffic", runAblHier)
	register("abl-fp16", "Ablation: compression-scaling factor F vs gradient fidelity (§III-C)", runAblFP16)
	register("abl-seed", "Ablation: seeding strategy vs output-embedding unique words at paper scale (§III-B)", runAblSeed)
	register("abl-sampler", "Ablation: log-uniform vs exact-unigram sampled-softmax candidates", runAblSampler)
}

// runAblHier quantifies the extension of core.HierarchicalExchange: at the
// paper's word-LM configuration, how much InfiniBand traffic does node-level
// deduplication remove compared with the flat unique ring? Unique counts are
// measured from real Zipf draws at full scale (node-level and global).
func runAblHier(opts Options) (*Report, error) {
	w := wordLM()
	const groupSize = 8 // Table II: 8 GPUs per node

	tab := metrics.NewTable(
		"Word-LM input-embedding exchange, per-step inter-node volume (D=512, K=640):",
		"GPUs", "nodes", "U_node", "U_g", "flat ring inter-node", "hier leaders inter-node", "reduction")
	notes := []string{
		"flat ring: all G ranks' ring traffic crosses each node boundary once the ring spans nodes",
		"hierarchical: only one leader per node touches the fabric, and it carries node-deduplicated rows",
	}
	for _, g := range []int{16, 32, 64, 128, 192} {
		// Measure node-level and global unique counts from real draws.
		root := rng.New(opts.Seed)
		perRank := make([][]int, g)
		for r := 0; r < g; r++ {
			z := rng.NewZipf(root.Fork(), w.Vocab, w.ZipfExponent)
			toks := make([]int, w.K)
			for i := range toks {
				toks[i] = z.Next()
			}
			perRank[r] = toks
		}
		ugGlobal := sampling.UniqueAcross(perRank)
		// Average node-unique over the nodes.
		nodes := (g + groupSize - 1) / groupSize
		uNodeSum := 0
		for n := 0; n < nodes; n++ {
			lo := n * groupSize
			hi := lo + groupSize
			if hi > g {
				hi = g
			}
			uNodeSum += sampling.UniqueAcross(perRank[lo:hi])
		}
		uNode := uNodeSum / nodes

		// Flat: the ring crosses every node boundary carrying the whole
		// reduced volume; per boundary ≈ per-rank ring volume × ranks on
		// the ring... conservatively use the per-rank wire volume times
		// the ranks per node whose traffic transits the boundary link.
		flat := core.UniqueCost(g, w.K, uNode, ugGlobal, w.D, false)
		flatBoundary := flat.WireBytes * int64(groupSize)
		_, leaderInter := core.HierarchicalCost(g, groupSize, w.K, uNode, ugGlobal, w.D, false)

		red := float64(flatBoundary) / float64(leaderInter)
		tab.AddRow(fmt.Sprint(g), fmt.Sprint(nodes),
			fmt.Sprint(uNode), fmt.Sprint(ugGlobal),
			metrics.HumanBytes(flatBoundary),
			metrics.HumanBytes(leaderInter),
			fmt.Sprintf("%.1f×", red))
	}
	notes = append(notes,
		"node-level dedup buys a further factor because U_node ≪ n·K inside every node (Zipf again)")
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}

// runAblFP16 sweeps the compression-scaling factor F over a realistic
// gradient magnitude distribution and reports the flush-to-zero rate and
// RMS relative error — the §III-C design choice (F ∈ {256, 512, 1024}).
func runAblFP16(opts Options) (*Report, error) {
	r := rng.New(opts.Seed)
	const n = 200_000
	// Log-normal gradient magnitudes centred near 3e-6 with heavy spread —
	// late-training tail-word embedding gradients, the values §III-C's
	// loss/compression scaling exists to protect (FP16 flushes below
	// ~3e-8).
	grads := make([]float32, n)
	for i := range grads {
		mag := math.Exp(r.NormFloat64()*2.5 - 12.7) // median ≈ 3e-6
		if r.Float64() < 0.5 {
			mag = -mag
		}
		grads[i] = float32(mag)
	}

	tab := metrics.NewTable("FP16 wire fidelity vs compression-scaling factor:",
		"F", "flushed to zero", "saturated", "RMS rel. error")
	type row struct {
		f       float32
		flushed float64
	}
	var rows []row
	for _, f := range []float32{1, 64, 256, 512, 1024, 4096, 65536} {
		s := half.NewScaler(f)
		buf := make([]float32, n)
		copy(buf, grads)
		s.RoundTrip(buf)
		flushed, saturated := 0, 0
		var sumSq, count float64
		for i, v := range buf {
			if v == 0 && grads[i] != 0 {
				flushed++
				continue
			}
			if v == half.MaxFinite/f || v == -half.MaxFinite/f {
				saturated++
			}
			rel := float64(v-grads[i]) / float64(grads[i])
			sumSq += rel * rel
			count++
		}
		rms := math.Sqrt(sumSq / count)
		tab.AddRow(fmt.Sprintf("%.0f", f),
			fmt.Sprintf("%.2f%%", 100*float64(flushed)/n),
			fmt.Sprintf("%.2f%%", 100*float64(saturated)/n),
			fmt.Sprintf("%.4f", rms))
		rows = append(rows, row{f: f, flushed: float64(flushed) / n})
	}

	notes := []string{
		"paper (§III-C): multiply by F (e.g. 256, 512, 1024) before the down-cast to keep small gradients out of the FP16 flush-to-zero range",
	}
	// Sanity: flushing must decrease monotonically until saturation bites.
	if rows[0].flushed <= rows[3].flushed {
		notes = append(notes, "WARNING: scaling did not reduce flush-to-zero rate")
	}
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}

// runAblSeed sweeps every §III-B strategy across cluster sizes at the
// paper's full word-LM scale, tabulating the output-embedding unique count
// the exchange will see — the structural half of Figure 7 (the accuracy
// half is experiment fig7).
func runAblSeed(opts Options) (*Report, error) {
	w := wordLM()
	strategies := append([]sampling.Strategy{}, sampling.Strategies()...)
	strategies = append(strategies, sampling.AllSame)

	headers := []string{"GPUs"}
	for _, s := range strategies {
		headers = append(headers, s.String())
	}
	tab := metrics.NewTable("Output-embedding U_g by seeding strategy (S=1024 samples/GPU, V=100K):", headers...)
	for _, g := range []int{8, 16, 64, 192} {
		row := []string{fmt.Sprint(g)}
		for _, s := range strategies {
			_, _, _, ugOut := measuredUnique(w, g, s, opts.Seed)
			row = append(row, fmt.Sprint(ugOut))
		}
		tab.AddRow(row...)
	}
	return &Report{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"U_g drives the Θ(G·S + U_g·D) cost of the output-embedding exchange (§III-B)",
			"Zipf's-freq (G^0.64 seeds) sits between the diversity of G and the overlap of a single seed — the pareto point of Figure 7",
		},
	}, nil
}

// runAblSampler trains the same word LM with the paper's log-uniform
// candidate distribution and with the exact-unigram alias sampler
// (sampling.NewUnigramSampler), comparing accuracy and the unique-candidate
// counts the exchange sees — one of the "strategies" of Chen et al. the
// paper cites.
func runAblSampler(opts Options) (*Report, error) {
	perRank := 12_000
	epochs := 2
	if opts.Quick {
		perRank = 4_000
		epochs = 1
	}
	gen := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize:    399,
		Branching:    16,
		ZipfExponent: 1.2,
		Seed:         opts.Seed,
	})
	stream := gen.Stream(perRank*4 + perRank)
	train, valid := corpus.Split(stream, 10, 100, opts.Seed)

	type variant struct {
		name string
		mk   func(vocab int, seed uint64) sampling.CandidateSampler
	}
	variants := []variant{
		{"log-uniform (paper)", nil},
		{"exact unigram (alias)", func(vocab int, seed uint64) sampling.CandidateSampler {
			return sampling.NewUnigramSampler(vocab, nil, seed)
		}},
	}
	tab := metrics.NewTable("Sampled-softmax candidate distribution, word LM, 4 ranks:",
		"sampler", "final ppl", "avg U_g (output emb)")
	for _, v := range variants {
		cfg := trainer.Config{
			Model: model.Config{
				Vocab: 400, Dim: 20, Hidden: 28, RNN: model.KindLSTM, Sampled: 24,
			},
			Ranks:        4,
			BatchPerRank: 2,
			SeqLen:       12,
			LR:           0.3,
			ClipNorm:     1.0,
			Exchange:     core.UniqueExchange{},
			SeedStrategy: sampling.ZipfFreq,
			NewSampler:   v.mk,
			BaseSeed:     opts.Seed,
		}
		tr, err := trainer.New(cfg, train, valid)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run(epochs, 1)
		if err != nil {
			return nil, err
		}
		tab.AddRow(v.name,
			fmt.Sprintf("%.2f", res.Evals[len(res.Evals)-1].Perplexity),
			fmt.Sprintf("%.0f", res.Stats.AvgOutputUnique()))
	}
	return &Report{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"log-uniform approximates the unigram law analytically; the alias table samples the exact distribution in O(1)",
			"on a frequency-sorted Zipfian vocabulary the two behave similarly — the paper's choice is the cheaper-to-correct one",
		},
	}, nil
}
