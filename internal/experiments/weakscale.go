package experiments

import (
	"errors"
	"fmt"
	"time"

	"zipflm/internal/cluster"
	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/half"
	"zipflm/internal/metrics"
	"zipflm/internal/perfmodel"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

func init() {
	register("weakscale",
		"Weak scaling (online virtual clock): baseline vs unique exchange, predicted step time and epoch hours, 8-128 GPUs",
		runWeakScale)
}

// This file is the online counterpart of the strong-scaling tables: instead
// of evaluating closed-form cost formulas, it *runs* the exchange engines on
// the simulated cluster with the virtual clock threaded through every
// collective (cost.go's α–β charging on the Table II links), sweeps the
// cluster size at fixed per-rank work (weak scaling), and reads predicted
// step time off the clocks. The paper's qualitative story emerges online:
// the baseline ALLGATHER becomes communication/update-bound and then hits
// the 12 GB memory wall, while the uniqueness exchange stays near-flat.

// weakRun is one engine's simulated synchronous step at scale G.
type weakRun struct {
	// oom is true when the exchange aborted on the device budget (the
	// paper's "*" rows).
	oom bool
	// ugIn / ugOut are the measured global unique counts.
	ugIn, ugOut int
	// sparseWire is the measured per-rank wire volume of the exchanges.
	sparseWire int64
	// commSec / computeSec / updateSec / overheadSec decompose the step;
	// stepSec is their total (the final virtual time).
	commSec, computeSec, updateSec, overheadSec, stepSec float64
}

// densePricer prices one step's dense-gradient synchronization on the ring
// link — the hook the "compress" experiment uses to swap the dense
// all-reduce's wire format (8-bit quantization, top-k payload all-gather)
// without touching the rest of the step model. nil keeps the engine
// default: FP32 for the baseline stack, FP16 for ours.
type densePricer func(link perfmodel.LinkCost, g int, elems int64) float64

// runWeakStep executes one synchronous step's synchronization at scale g
// online — sparse exchanges run for real through the cost-modeled
// collectives; dense all-reduce, compute, embedding update and framework
// overhead are charged onto the same clocks from the workload's calibrated
// constants — and returns the virtual-clock decomposition.
func runWeakStep(w scalingWorkload, g int, baseline, unlimitedMem bool, seed uint64) (weakRun, error) {
	return runWeakStepPriced(w, g, baseline, unlimitedMem, seed, nil)
}

// runWeakStepPriced is runWeakStep with a caller-supplied dense-gradient
// pricer.
func runWeakStepPriced(w scalingWorkload, g int, baseline, unlimitedMem bool, seed uint64, dense densePricer) (weakRun, error) {
	hw := w.hardware()
	var capacity int64
	switch {
	case unlimitedMem:
		capacity = 0
	case baseline:
		// The TF-1.4 baseline replicates gradient staging BaselineStaging×
		// on top of the base model/activation footprint (calibrated to
		// §V-A's measured GB points), so the budget left for one
		// exchange's raw scratch is (capacity − base) / staging.
		capacity = int64(float64(hw.MemBytes-w.BaseMemory) / w.BaselineStaging)
	default:
		capacity = hw.MemBytes - w.BaseMemoryOurs
	}
	clu := cluster.New(g, capacity)
	comm := collective.New(g)
	link := hw.RingLink(g)
	cm := &collective.CostModel{Link: link, Clocks: clu.Clocks()}
	comm.AttachCost(cm)

	// Engine stack: the baseline is the §II-B ALLGATHER with per-rank
	// sampler seeds and FP32 wire; "ours" is the full §III stack —
	// uniqueness + Zipf's-law seeding + FP16 compression.
	var ex core.Exchanger = core.BaselineAllGather{}
	strat := sampling.AllDifferent
	var wire collective.Wire
	if !baseline {
		ex = core.UniqueExchange{}
		strat = sampling.ZipfFreq
		wire = half.NewScaler(512)
	}

	// The same token/candidate draws the offline cost model measures
	// (workloads.go), so unique structure matches across experiments.
	root := rng.New(seed)
	inIdx := make([][]int, g)
	for r := 0; r < g; r++ {
		z := rng.NewZipf(root.Fork(), w.Vocab, w.ZipfExponent)
		toks := make([]int, w.K)
		for i := range toks {
			toks[i] = z.Next()
		}
		inIdx[r] = toks
	}
	var outIdx [][]int
	maxKc := 0
	if w.Samples > 0 {
		seeds := sampling.Assign(strat, g, seed+1)
		outIdx = make([][]int, g)
		for r := 0; r < g; r++ {
			s := sampling.NewSampler(w.Vocab, seeds[r])
			outIdx[r] = s.Sample(w.Samples, inIdx[r])
			if len(outIdx[r]) > maxKc {
				maxKc = len(outIdx[r])
			}
		}
	}

	// Phase: sparse exchanges, online. Gradient values are irrelevant to
	// cost, so rows stay zero; bytes, scratch and virtual time are real.
	inStats := make([]core.Stats, g)
	outStats := make([]core.Stats, g)
	err := clu.Run(func(rank int, dev *cluster.Device) error {
		ctx := &core.Ctx{Rank: rank, Comm: comm, Dev: dev, Wire: wire, WS: core.NewWorkspace()}
		_, st, err := ex.Exchange(ctx, core.SparseGrad{
			Indices: inIdx[rank],
			Rows:    tensor.NewMatrix(len(inIdx[rank]), w.D),
		})
		if err != nil {
			return err
		}
		inStats[rank] = st
		if outIdx != nil {
			// In the TF-1.4 step graph both embeddings' gathered blocks
			// are resident at once: keep the input exchange's scratch
			// accounted while the output exchange runs, with the same
			// collective abort protocol the engines use so no rank blocks
			// in a collective its peers abandoned.
			hold := inStats[rank].ScratchBytes
			allocErr := dev.Alloc(hold)
			if !comm.AgreeAllOK(rank, allocErr == nil) {
				if allocErr != nil {
					return allocErr
				}
				dev.Free(hold)
				return core.ErrPeerOOM
			}
			defer dev.Free(hold)
			stOut, err := func() (core.Stats, error) {
				_, st, err := ex.Exchange(ctx, core.SparseGrad{
					Indices: outIdx[rank],
					Rows:    tensor.NewMatrix(len(outIdx[rank]), w.D),
				})
				return st, err
			}()
			if err != nil {
				return err
			}
			outStats[rank] = stOut
		}
		return nil
	})
	if err != nil {
		var oom *cluster.ErrOutOfMemory
		if errors.As(err, &oom) || errors.Is(err, core.ErrPeerOOM) {
			return weakRun{oom: true}, nil
		}
		return weakRun{}, err
	}

	run := weakRun{ugIn: inStats[0].UniqueGlobal, ugOut: outStats[0].UniqueGlobal}
	for r := 0; r < g; r++ {
		if b := inStats[r].WireBytes + outStats[r].WireBytes; b > run.sparseWire {
			run.sparseWire = b
		}
	}

	// Phase: dense RNN/projection gradients — accounted, not materialized:
	// the ring all-reduce of DenseParams elements charges the same clocks
	// through the same link model the live collectives used.
	if dense != nil {
		cm.Charge(dense(link, g, w.DenseParams))
	} else {
		es := 4
		if wire != nil {
			es = 2
		}
		cm.Charge(link.RingAllReduceSeconds(g, int(w.DenseParams), es))
	}
	run.commSec = clu.MaxClock()

	// Phase: forward/backward compute at the workload's achieved fraction
	// of peak.
	for _, dev := range clu.Devices {
		dev.AdvanceCompute(int64(w.FLOPsPerStep), hw, w.AchievedFrac)
	}
	afterCompute := clu.MaxClock()
	run.computeSec = afterCompute - run.commSec

	// Phase: embedding update. The baseline scatter-adds all G·K (+ G·Kc)
	// token rows under §II-B row locking at the staged update bandwidth;
	// the unique engines apply one conflict-free row per unique word at
	// device bandwidth.
	var rows int64
	ser := 1.0
	if baseline {
		rows = int64(g) * int64(w.K)
		if w.Samples > 0 {
			rows += int64(g) * int64(maxKc)
		}
		if w.DupSerialization && run.ugIn > 0 {
			ser = float64(int64(g)*int64(w.K)) / float64(run.ugIn)
		}
		ser *= hw.MemBW / w.updateBW(g)
	} else {
		rows = int64(run.ugIn) + int64(run.ugOut)
	}
	updateBytes := int64(float64(2*rows*int64(w.D)*4) * ser)
	for _, dev := range clu.Devices {
		dev.AdvanceMemory(updateBytes, hw)
	}
	run.updateSec = clu.MaxClock() - afterCompute

	// Phase: fixed per-step framework overhead. The strong-scaling tables
	// calibrate an additional quadratic TF-coordination term; weak scaling
	// holds per-rank work fixed, so only the base (+ linear) overhead
	// applies here.
	run.overheadSec = w.OverheadBase + w.OverheadLin*float64(g)
	cm.Charge(run.overheadSec)

	run.stepSec = clu.MaxClock()
	return run, nil
}

func runWeakScale(opts Options) (*Report, error) {
	w := wordLM()
	gpus := []int{8, 16, 32, 64, 128}
	anchor := 8
	unlimited := false
	if opts.Quick {
		// CI-sized miniature: same code paths, no 12 GB wall (the
		// miniature scratch would never reach it anyway).
		w.K = 64
		w.D = 32
		w.Vocab = 2000
		w.Samples = 32
		w.DenseParams = 100_000
		w.FLOPsPerStep = 1e9
		w.TokensPerEpoch = 1_000_000
		gpus = []int{2, 4, 8}
		anchor = 2
		unlimited = true
	}
	hw := w.hardware()
	// Weak scaling: per-rank work fixed, data grows ∝ G, so steps/epoch is
	// pinned at the anchor configuration (the paper's Table V framing).
	stepsPerEpoch := float64(w.TokensPerEpoch) / float64(int64(anchor)*int64(w.K))

	tab := metrics.NewTable(
		fmt.Sprintf("%s weak scaling on %s (online virtual clock; K = %d tokens/GPU fixed, steps/epoch = %.0f):",
			w.Name, hw.Name, w.K, stepsPerEpoch),
		"GPUs", "engine", "U_g in", "sparse wire/rank",
		"comm", "compute", "update", "step", "epoch", "vs anchor")
	tab.SetUnits("", "", "words", "", "ms", "ms", "ms", "s", "hrs", "×")

	notes := []string{
		"engines run online over the simulated cluster: collectives advance per-rank virtual clocks by α + bytes/β on the Table II links; dense all-reduce, compute, update and overhead charge the same clocks",
		"framework overhead uses the calibrated base (+ linear) term only — the strong-scaling tables' quadratic TF-coordination term does not apply at fixed per-rank work",
	}

	var anchorStep [2]float64 // per engine
	var lastRunning [2]weakRun
	var lastRunningG [2]int
	oomWall := 0
	vcursor := 0.0 // virtual-clock cursor for the emitted trace timeline
	for _, g := range gpus {
		for ei, baseline := range []bool{true, false} {
			name := "baseline-allgather"
			if !baseline {
				name = "unique+seed+fp16"
			}
			run, err := runWeakStep(w, g, baseline, unlimited, opts.Seed)
			if err != nil {
				return nil, err
			}
			if run.oom {
				if baseline && oomWall == 0 {
					oomWall = g
				}
				tab.AddRow(fmt.Sprint(g), name, "-", "*(OOM)", "-", "-", "-", "-", "*(OOM)", "-")
				continue
			}
			if opts.Trace != nil {
				// Each non-OOM cell becomes one aggregate trace step:
				// compute, then everything synchronization-shaped (comm +
				// update + overhead). zipflm-trace analyzes aggregate-only
				// traces via the envelope path (no per-rank attribution).
				syncSec := run.commSec + run.updateSec + run.overheadSec
				opts.Trace.Span("train", "compute", 0, time.Now(), 0, vcursor, run.computeSec)
				opts.Trace.Span("train", "sync", 0, time.Now(), 0, vcursor+run.computeSec, syncSec)
				opts.Trace.Instant("train", fmt.Sprintf("weakscale %s g=%d", name, g), 0, time.Now(), vcursor)
				vcursor += run.computeSec + syncSec
			}
			if anchorStep[ei] == 0 {
				anchorStep[ei] = run.stepSec
			}
			lastRunning[ei] = run
			lastRunningG[ei] = g
			tab.AddRow(
				fmt.Sprint(g), name,
				fmt.Sprint(run.ugIn),
				metrics.HumanBytes(run.sparseWire),
				fmt.Sprintf("%.1f", run.commSec*1e3),
				fmt.Sprintf("%.1f", run.computeSec*1e3),
				fmt.Sprintf("%.1f", run.updateSec*1e3),
				fmt.Sprintf("%.3f", run.stepSec),
				fmt.Sprintf("%.1f", stepsPerEpoch*run.stepSec/3600),
				fmt.Sprintf("%.2fx", run.stepSec/anchorStep[ei]),
			)
		}
	}

	// Anchor check: the predicted epoch hours at the paper's 8-GPU word-LM
	// configuration must sit on the Table III calibration.
	if !opts.Quick && anchorStep[1] > 0 {
		hours := stepsPerEpoch * anchorStep[1] / 3600
		notes = append(notes, fmt.Sprintf(
			"anchor: predicted %d-GPU epoch = %.1f h online (Table III calibration: 14.6 h with our technique)",
			anchor, hours))
		if hours < 14.6*0.85 || hours > 14.6*1.15 {
			notes = append(notes, fmt.Sprintf(
				"MISMATCH: online 8-GPU prediction %.1f h off the 14.6 h calibration", hours))
		}
	}
	if oomWall > 0 {
		notes = append(notes, fmt.Sprintf(
			"baseline hits the %s device wall at %d GPUs (paper: \"*\" beyond 24), while the unique exchange runs the whole sweep",
			metrics.HumanBytes(hw.MemBytes), oomWall))
	}
	if lastRunningG[1] > anchor && anchorStep[1] > 0 {
		notes = append(notes, fmt.Sprintf(
			"unique exchange stays near-flat: %d→%d GPUs grows predicted step time %.2fx (ideal weak scaling = 1.0x)",
			anchor, lastRunningG[1], lastRunning[1].stepSec/anchorStep[1]))
	}
	if lastRunningG[0] > anchor && anchorStep[0] > 0 {
		notes = append(notes, fmt.Sprintf(
			"baseline grows %.2fx over %d→%d GPUs before the wall (update serialization + Θ(G·K·D) gathers)",
			lastRunning[0].stepSec/anchorStep[0], anchor, lastRunningG[0]))
	}

	// Determinism: the virtual clock must be schedule-independent — rerun
	// the anchor configuration and demand bit-identical predicted time.
	again, err := runWeakStep(w, anchor, false, unlimited, opts.Seed)
	if err != nil {
		return nil, err
	}
	if again.stepSec == anchorStep[1] {
		notes = append(notes, "deterministic: re-running the anchor configuration reproduces predicted step time bit-identically")
	} else {
		notes = append(notes, fmt.Sprintf(
			"WARNING: predicted time not deterministic (%.9f vs %.9f)", again.stepSec, anchorStep[1]))
	}
	return &Report{Tables: []*metrics.Table{tab}, Notes: notes}, nil
}
