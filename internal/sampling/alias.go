package sampling

import (
	"math"

	"zipflm/internal/rng"
)

// AliasTable samples from an arbitrary discrete distribution in O(1) per
// draw using Vose's alias method. The paper's sampled softmax uses the
// log-uniform approximation of the unigram distribution; production stacks
// (and the "strategies" of Chen et al., which the paper cites) often sample
// from the *exact* empirical unigram distribution instead — the alias table
// makes that as cheap as log-uniform regardless of vocabulary size.
type AliasTable struct {
	prob  []float64
	alias []int
	probs []float64 // normalized input distribution, for Prob()
	r     *rng.RNG
}

// NewAliasTable builds a sampler over weights (unnormalized, non-negative,
// at least one positive). Draw k has probability weights[k]/sum(weights).
func NewAliasTable(weights []float64, r *rng.RNG) *AliasTable {
	n := len(weights)
	if n == 0 {
		panic("sampling: empty alias table")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("sampling: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("sampling: all-zero weights")
	}

	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int, n),
		probs: make([]float64, n),
		r:     r,
	}
	// Scale to mean 1 and split into small/large worklists.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		p := w / sum
		t.probs[i] = p
		scaled[i] = p * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are exactly 1.
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t
}

// NewZipfAliasTable builds an alias table over the Zipf(s) distribution on
// [0, n) — the exact unigram law of a frequency-sorted vocabulary.
func NewZipfAliasTable(n int, s float64, r *rng.RNG) *AliasTable {
	if n <= 0 {
		panic("sampling: non-positive vocabulary")
	}
	w := make([]float64, n)
	for k := range w {
		w[k] = 1 / powf(float64(k+1), s)
	}
	return NewAliasTable(w, r)
}

func powf(x, y float64) float64 { return math.Pow(x, y) }

func logf(x float64) float64 { return math.Log(x) }

// Next draws one index from the distribution.
func (t *AliasTable) Next() int {
	n := len(t.prob)
	i := t.r.Intn(n)
	if t.r.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// Prob returns the exact probability of drawing k.
func (t *AliasTable) Prob(k int) float64 { return t.probs[k] }

// UnigramSampler is a drop-in alternative to Sampler that draws sampled-
// softmax candidates from an exact unigram (frequency-proportional)
// distribution instead of the log-uniform approximation.
type UnigramSampler struct {
	vocab int
	tab   *AliasTable
}

// NewUnigramSampler builds a sampler over vocabulary ids [0, vocab) with
// the given frequency weights (typically corpus counts). A nil or empty
// freq falls back to Zipf(1) pseudo-frequencies.
func NewUnigramSampler(vocab int, freq []float64, seed uint64) *UnigramSampler {
	if vocab <= 0 {
		panic("sampling: non-positive vocabulary")
	}
	r := rng.New(seed)
	var tab *AliasTable
	if len(freq) == 0 {
		tab = NewZipfAliasTable(vocab, 1.0, r)
	} else {
		if len(freq) != vocab {
			panic("sampling: freq length must equal vocab")
		}
		tab = NewAliasTable(freq, r)
	}
	return &UnigramSampler{vocab: vocab, tab: tab}
}

// Sample mirrors Sampler.Sample: targets first, then novel negatives.
func (s *UnigramSampler) Sample(n int, targets []int) []int {
	if n < 0 {
		panic("sampling: negative sample count")
	}
	seen := make(map[int]struct{}, len(targets)+n)
	out := make([]int, 0, len(targets)+n)
	for _, t := range targets {
		if t < 0 || t >= s.vocab {
			panic("sampling: target outside vocabulary")
		}
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	for i := 0; i < n; i++ {
		w := s.tab.Next()
		if _, ok := seen[w]; !ok {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	return out
}

// LogExpectedCount mirrors Sampler.LogExpectedCount with the exact unigram
// probabilities.
func (s *UnigramSampler) LogExpectedCount(n int, w int) float64 {
	return math.Log(float64(n) * s.tab.Prob(w))
}

// Interface conformance: both samplers satisfy CandidateSampler.
var (
	_ CandidateSampler = (*Sampler)(nil)
	_ CandidateSampler = (*UnigramSampler)(nil)
)
