package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNumSeedsBounds(t *testing.T) {
	for _, s := range append(Strategies(), AllSame) {
		for _, g := range []int{1, 2, 6, 8, 16, 64, 192} {
			n := s.NumSeeds(g)
			if n < 1 || n > g {
				t.Errorf("%v at G=%d: NumSeeds=%d outside [1,%d]", s, g, n, g)
			}
		}
	}
}

func TestNumSeedsKnownValues(t *testing.T) {
	cases := []struct {
		s    Strategy
		g    int
		want int
	}{
		{AllDifferent, 64, 64},
		{AllSame, 64, 1},
		{Log2G, 64, 6},
		{LogEG, 64, 5},     // ceil(ln 64) = ceil(4.16)
		{Log10G, 64, 2},    // ceil(log10 64) = ceil(1.8)
		{ZipfFreq, 64, 15}, // ceil(64^0.64) = ceil(14.3)
		{AllDifferent, 1, 1},
		{Log10G, 1, 1}, // clamped to 1
	}
	for _, c := range cases {
		if got := c.s.NumSeeds(c.g); got != c.want {
			t.Errorf("%v.NumSeeds(%d) = %d, want %d", c.s, c.g, got, c.want)
		}
	}
}

// TestSeedOrdering: the number of seeds must be ordered
// AllSame ≤ Log10G ≤ LogEG ≤ Log2G ≤ ZipfFreq ≤ AllDifferent for large G,
// mirroring the accuracy/scalability spectrum of Figure 7.
func TestSeedOrdering(t *testing.T) {
	for _, g := range []int{16, 64, 192} {
		order := []Strategy{AllSame, Log10G, LogEG, Log2G, ZipfFreq, AllDifferent}
		prev := 0
		for _, s := range order {
			n := s.NumSeeds(g)
			if n < prev {
				t.Errorf("G=%d: %v has %d seeds, fewer than predecessor's %d", g, s, n, prev)
			}
			prev = n
		}
	}
}

func TestAssignSharing(t *testing.T) {
	const g = 8
	seeds := Assign(Log2G, g, 42) // 3 distinct seeds
	if len(seeds) != g {
		t.Fatalf("len = %d", len(seeds))
	}
	distinct := map[uint64]bool{}
	for _, s := range seeds {
		distinct[s] = true
	}
	if len(distinct) != Log2G.NumSeeds(g) {
		t.Errorf("distinct seeds = %d, want %d", len(distinct), Log2G.NumSeeds(g))
	}
	// Round-robin sharing: ranks r and r+n share.
	n := Log2G.NumSeeds(g)
	for r := 0; r+n < g; r++ {
		if seeds[r] != seeds[r+n] {
			t.Errorf("ranks %d and %d should share a seed", r, r+n)
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	a := Assign(ZipfFreq, 16, 7)
	b := Assign(ZipfFreq, 16, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("assignment not deterministic")
		}
	}
	c := Assign(ZipfFreq, 16, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different base seeds produced identical assignment")
	}
}

func TestSamplerIncludesTargets(t *testing.T) {
	s := NewSampler(1000, 1)
	targets := []int{5, 700, 5, 31}
	set := s.Sample(50, targets)
	want := map[int]bool{5: true, 700: true, 31: true}
	for _, w := range set[:3] {
		if !want[w] {
			t.Errorf("targets not leading the candidate set: %v", set[:5])
		}
		delete(want, w)
	}
	if len(want) != 0 {
		t.Errorf("missing targets: %v", want)
	}
}

func TestSamplerNoDuplicates(t *testing.T) {
	s := NewSampler(100, 2)
	set := s.Sample(80, []int{1, 2, 3})
	seen := map[int]bool{}
	for _, w := range set {
		if seen[w] {
			t.Fatalf("duplicate candidate %d", w)
		}
		seen[w] = true
	}
}

func TestSamplerRangeAndPanics(t *testing.T) {
	s := NewSampler(50, 3)
	for _, w := range s.Sample(200, nil) {
		if w < 0 || w >= 50 {
			t.Fatalf("candidate %d out of range", w)
		}
	}
	for _, f := range []func(){
		func() { NewSampler(0, 1) },
		func() { s.Sample(-1, nil) },
		func() { s.Sample(1, []int{50}) },
		func() { AllDifferent.NumSeeds(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSamplerDeterministicPerSeed(t *testing.T) {
	a := NewSampler(1000, 9).Sample(20, nil)
	b := NewSampler(1000, 9).Sample(20, nil)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different draws")
		}
	}
}

// TestSharedSeedsCollapseUnique is the mechanism §III-B relies on: ranks
// sharing a seed contribute no new unique candidates.
func TestSharedSeedsCollapseUnique(t *testing.T) {
	const g, nSamples, vocab = 16, 64, 100000
	uniqueFor := func(strategy Strategy) int {
		seeds := Assign(strategy, g, 11)
		sets := make([][]int, g)
		for r := 0; r < g; r++ {
			sets[r] = NewSampler(vocab, seeds[r]).Sample(nSamples, nil)
		}
		return UniqueAcross(sets)
	}
	same := uniqueFor(AllSame)
	zipf := uniqueFor(ZipfFreq)
	diff := uniqueFor(AllDifferent)
	if !(same < zipf && zipf < diff) {
		t.Errorf("unique counts not ordered: same=%d zipf=%d diff=%d", same, zipf, diff)
	}
	if same > nSamples {
		t.Errorf("AllSame unique=%d must be ≤ %d", same, nSamples)
	}
	// AllDifferent must be near G·S (minus birthday collisions).
	if diff < nSamples*g/2 {
		t.Errorf("AllDifferent unique=%d far below G·S=%d", diff, nSamples*g)
	}
	// ZipfFreq must be near NumSeeds·S.
	wantZipf := ZipfFreq.NumSeeds(g) * nSamples
	if zipf > wantZipf {
		t.Errorf("ZipfFreq unique=%d above seeds·S=%d", zipf, wantZipf)
	}
}

func TestLogExpectedCount(t *testing.T) {
	s := NewSampler(1000, 1)
	// Q is decreasing in rank, so the correction is too.
	if s.LogExpectedCount(100, 0) <= s.LogExpectedCount(100, 500) {
		t.Error("log expected count must decrease with rank")
	}
	// exp of the correction for n draws of the head word ≈ n·Q(0).
	got := math.Exp(s.LogExpectedCount(100, 0))
	wantQ := math.Log(2) / math.Log(1001)
	if math.Abs(got-100*wantQ) > 1e-9 {
		t.Errorf("expected count = %v, want %v", got, 100*wantQ)
	}
}

func TestUniqueAcross(t *testing.T) {
	if got := UniqueAcross([][]int{{1, 2}, {2, 3}, {}}); got != 3 {
		t.Errorf("UniqueAcross = %d, want 3", got)
	}
	if got := UniqueAcross(nil); got != 0 {
		t.Errorf("UniqueAcross(nil) = %d", got)
	}
}

func TestStrategyString(t *testing.T) {
	if AllDifferent.String() != "G" || ZipfFreq.String() != "Zipf's-freq" {
		t.Error("Figure 7 labels wrong")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy must still format")
	}
}

// TestNumSeedsMonotoneInG: more ranks never means fewer seeds.
func TestNumSeedsMonotoneInG(t *testing.T) {
	f := func(gRaw uint8, sRaw uint8) bool {
		g := int(gRaw)%190 + 2
		s := Strategies()[int(sRaw)%len(Strategies())]
		return s.NumSeeds(g+1) >= s.NumSeeds(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
