// Package sampling implements the sampled-softmax candidate machinery and
// the paper's controlled-seeding technique (§III-B).
//
// Sampled softmax lets each rank score only S ≪ |V| candidate words. With
// fully independent per-rank RNG seeds the candidate sets are nearly
// disjoint, so the number of unique words touched in the output embedding
// grows as G·S and the uniqueness optimization of §III-A has nothing to
// work with. With one shared seed every rank samples the same S words —
// maximal overlap but degraded accuracy (loss of sampling diversity).
//
// The paper's middle path assigns a *subset* of distinct seeds: log2(G),
// ln(G), log10(G), or — the pareto-optimal choice — a number of seeds that
// follows the same power law as word frequency, ≈ G^0.64. Ranks sharing a
// seed draw identical candidates, so the global unique candidate count is
// ≈ NumSeeds·S and the output-embedding exchange enjoys the same
// Θ(G·S + U_g·D) complexity as the input embedding.
package sampling

import (
	"fmt"
	"math"

	"zipflm/internal/rng"
)

// Strategy selects how many distinct sampled-softmax seeds G ranks share.
type Strategy int

const (
	// AllDifferent gives every rank its own seed (paper line "G"):
	// best accuracy, no overlap, worst scalability.
	AllDifferent Strategy = iota
	// AllSame gives every rank one shared seed: best overlap, degraded
	// accuracy.
	AllSame
	// Log2G uses ceil(log2 G) distinct seeds.
	Log2G
	// LogEG uses ceil(ln G) distinct seeds.
	LogEG
	// Log10G uses ceil(log10 G) distinct seeds.
	Log10G
	// ZipfFreq uses ceil(G^0.64) distinct seeds — the paper's
	// "Zipf's-freq" line, empirically matching AllDifferent accuracy
	// while preserving the power-law overlap (§V-A, Figure 7).
	ZipfFreq
)

// ZipfSeedExponent is the empirical exponent used by the ZipfFreq strategy.
const ZipfSeedExponent = 0.64

// String implements fmt.Stringer with the paper's Figure 7 labels.
func (s Strategy) String() string {
	switch s {
	case AllDifferent:
		return "G"
	case AllSame:
		return "1"
	case Log2G:
		return "log2G"
	case LogEG:
		return "logeG"
	case Log10G:
		return "log10G"
	case ZipfFreq:
		return "Zipf's-freq"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists every policy in Figure 7 order.
func Strategies() []Strategy {
	return []Strategy{AllDifferent, ZipfFreq, Log2G, LogEG, Log10G}
}

// NumSeeds returns how many distinct seeds the strategy assigns across g
// ranks (always in [1, g]).
func (s Strategy) NumSeeds(g int) int {
	if g <= 0 {
		panic("sampling: non-positive rank count")
	}
	var n int
	switch s {
	case AllDifferent:
		n = g
	case AllSame:
		n = 1
	case Log2G:
		n = int(math.Ceil(math.Log2(float64(g))))
	case LogEG:
		n = int(math.Ceil(math.Log(float64(g))))
	case Log10G:
		n = int(math.Ceil(math.Log10(float64(g))))
	case ZipfFreq:
		n = int(math.Ceil(math.Pow(float64(g), ZipfSeedExponent)))
	default:
		panic(fmt.Sprintf("sampling: unknown strategy %d", int(s)))
	}
	if n < 1 {
		n = 1
	}
	if n > g {
		n = g
	}
	return n
}

// Assign returns the per-rank seed vector: rank r receives seed number
// r mod NumSeeds(g), each seed derived deterministically from base. Ranks
// with equal seeds draw identical candidate streams.
func Assign(s Strategy, g int, base uint64) []uint64 {
	n := s.NumSeeds(g)
	root := rng.New(base)
	distinct := make([]uint64, n)
	for i := range distinct {
		distinct[i] = root.Uint64()
	}
	out := make([]uint64, g)
	for r := range out {
		out[r] = distinct[r%n]
	}
	return out
}

// CandidateSampler abstracts a sampled-softmax candidate source: the
// log-uniform Sampler below (the paper's choice) and the exact-unigram
// UnigramSampler (alias.go) both implement it, so models can swap the
// candidate distribution without code changes.
type CandidateSampler interface {
	// Sample returns the candidate set for one step: unique ids with the
	// targets included first.
	Sample(n int, targets []int) []int
	// LogExpectedCount returns log(n·Q(w)) for the correction term.
	LogExpectedCount(n int, w int) float64
}

// Sampler draws sampled-softmax candidates from the log-uniform base
// distribution over a frequency-sorted vocabulary (§II-A: "sampled softmax
// … computes the probability over a smaller, random subset over V").
type Sampler struct {
	vocab int
	lu    *rng.LogUniform
}

// NewSampler returns a sampler over vocabulary ids [1, vocab] seeded with
// seed (id 0, <unk>, is sampled like any other id the log-uniform law
// assigns to rank 0 of the frequency table; callers using corpus ids simply
// pass vocab = v.Size()).
func NewSampler(vocab int, seed uint64) *Sampler {
	if vocab <= 0 {
		panic("sampling: non-positive vocabulary")
	}
	return &Sampler{vocab: vocab, lu: rng.NewLogUniform(rng.New(seed), vocab)}
}

// Sample returns the candidate set for one step: the union of the target
// words (always included, as the paper notes — "typically, the words in the
// input are additionally included") and n log-uniform negative draws,
// deduplicated and order-stable (targets first, then novel negatives in
// draw order). The result length is ≤ len(unique targets) + n.
func (s *Sampler) Sample(n int, targets []int) []int {
	if n < 0 {
		panic("sampling: negative sample count")
	}
	seen := make(map[int]struct{}, len(targets)+n)
	out := make([]int, 0, len(targets)+n)
	for _, t := range targets {
		if t < 0 || t >= s.vocab {
			panic(fmt.Sprintf("sampling: target %d outside vocabulary [0,%d)", t, s.vocab))
		}
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	for i := 0; i < n; i++ {
		w := s.lu.Next()
		if _, ok := seen[w]; !ok {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	return out
}

// LogExpectedCount returns log(n · Q(w)), the sampled-softmax logit
// correction for a candidate w when n negatives are drawn from the
// log-uniform distribution. Subtracting it from the raw logit makes the
// sampled loss an unbiased estimate of the full softmax loss.
func (s *Sampler) LogExpectedCount(n int, w int) float64 {
	return math.Log(float64(n) * s.lu.Prob(w))
}

// UniqueAcross counts the distinct candidates across per-rank candidate
// sets — the U_g the output-embedding exchange will see, and the quantity
// §III-B's seeding trade-off controls.
func UniqueAcross(sets [][]int) int {
	seen := make(map[int]struct{})
	for _, set := range sets {
		for _, w := range set {
			seen[w] = struct{}{}
		}
	}
	return len(seen)
}
