package sampling

import (
	"fmt"
	"math"
	"sort"

	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// DecodeOpts configures how one token is drawn from next-token logits at
// inference time. The zero value (temperature 0) is greedy argmax.
type DecodeOpts struct {
	// Temperature rescales the logits before the softmax: 1 samples the
	// model's distribution, <1 sharpens it, >1 flattens it, 0 is greedy
	// argmax. Negative values panic.
	Temperature float64
	// TopK, when positive, restricts sampling to the K most probable
	// tokens (renormalized). 0 disables the filter.
	TopK int
	// TopP, when in (0, 1), restricts sampling to the smallest set of
	// tokens whose cumulative probability reaches P (nucleus sampling,
	// renormalized). 0 and 1 disable the filter. Applied after TopK.
	TopP float64
}

// Validate reports whether the options are usable (serving front ends call
// this to reject bad requests before they reach a worker; Decoder.Sample
// panics instead, like the rest of the model hot path).
func (o DecodeOpts) Validate() error {
	if o.Temperature < 0 || math.IsNaN(o.Temperature) {
		return fmt.Errorf("sampling: invalid temperature %v", o.Temperature)
	}
	if o.TopK < 0 {
		return fmt.Errorf("sampling: negative top-k %d", o.TopK)
	}
	if o.TopP < 0 || o.TopP > 1 || math.IsNaN(o.TopP) {
		return fmt.Errorf("sampling: top-p %v outside [0, 1]", o.TopP)
	}
	return nil
}

// restricted reports whether a sorted candidate prefix is needed.
func (o DecodeOpts) restricted() bool {
	return o.TopK > 0 || (o.TopP > 0 && o.TopP < 1)
}

// Decoder draws tokens from logit vectors. It owns reusable scratch so the
// generation loop performs no per-token allocation; one Decoder serves any
// number of sequences but must not be shared between goroutines. The input
// logits are never modified (cached logit rows can be sampled repeatedly).
type Decoder struct {
	probs []float32
	idx   []int
}

// NewDecoder returns a Decoder for logit vectors of the given length.
func NewDecoder(vocab int) *Decoder {
	if vocab <= 0 {
		panic("sampling: NewDecoder needs a positive vocabulary size")
	}
	return &Decoder{probs: make([]float32, vocab), idx: make([]int, vocab)}
}

// Sample draws one token id from softmax(logits/temperature), restricted by
// the top-k/top-p filters. It is deterministic given r, draws at most one
// variate from r per call (exactly one unless temperature is 0), and leaves
// logits untouched.
func (d *Decoder) Sample(logits []float32, opts DecodeOpts, r *rng.RNG) int {
	if len(logits) != len(d.probs) {
		panic(fmt.Sprintf("sampling: Decoder sized for %d logits, got %d", len(d.probs), len(logits)))
	}
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	if opts.TopK >= len(logits) {
		opts.TopK = 0 // a cut wider than the vocabulary restricts nothing
	}
	if opts.Temperature == 0 {
		bi, bv := 0, logits[0]
		for i, v := range logits {
			if v > bv {
				bi, bv = i, v
			}
		}
		return bi
	}

	// Pure top-k never needs the full softmax or a full sort: selection on
	// raw logits is selection on probabilities (temperature scaling is
	// monotone), so a k-bounded heap scan plus a k-element softmax does it
	// in O(V log k) — the per-token cost that would otherwise dominate
	// batched serving, since sampling is per-sequence work batching cannot
	// amortize.
	if opts.TopK > 0 && opts.TopK < len(logits) && !(opts.TopP > 0 && opts.TopP < 1) {
		return d.sampleTopK(logits, opts, r)
	}

	inv := float32(1 / opts.Temperature)
	for i, v := range logits {
		d.probs[i] = v * inv
	}
	tensor.SoftmaxRow(d.probs)

	if !opts.restricted() {
		// Unrestricted: inverse-CDF walk over the full distribution.
		u := r.Float64()
		var cum float64
		for i, p := range d.probs {
			cum += float64(p)
			if u < cum {
				return i
			}
		}
		return len(d.probs) - 1 // numerical tail
	}

	// Nucleus filtering needs the cumulative mass of the full distribution:
	// rank all tokens by descending probability (ties broken by id so the
	// candidate set is deterministic), then cut by K and by nucleus mass.
	for i := range d.idx {
		d.idx[i] = i
	}
	sort.Sort((*byProb)(d))
	m := len(d.idx)
	if opts.TopK > 0 && opts.TopK < m {
		m = opts.TopK
	}
	if opts.TopP > 0 && opts.TopP < 1 {
		var cum float64
		cut := m
		for i := 0; i < m; i++ {
			cum += float64(d.probs[d.idx[i]])
			if cum >= opts.TopP {
				cut = i + 1
				break
			}
		}
		m = cut
	}

	var total float64
	for i := 0; i < m; i++ {
		total += float64(d.probs[d.idx[i]])
	}
	u := r.Float64() * total
	var cum float64
	for i := 0; i < m; i++ {
		cum += float64(d.probs[d.idx[i]])
		if u < cum {
			return d.idx[i]
		}
	}
	return d.idx[m-1] // numerical tail
}

// sampleTopK draws from the k most probable tokens: a k-bounded min-heap
// scan over the raw logits selects the candidate set (identical to the
// first k of a full (prob desc, id asc) sort — ties break toward lower
// ids), then a softmax over just those k renormalizes and one variate
// picks. The candidate order is the heap's final layout — deterministic
// given the logits, which is all reproducibility needs.
func (d *Decoder) sampleTopK(logits []float32, opts DecodeOpts, r *rng.RNG) int {
	k := opts.TopK
	idx := d.idx[:k]
	for i := range idx {
		idx[i] = i
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftWorst(idx, logits, i)
	}
	for id := k; id < len(logits); id++ {
		// Keep id if it beats the worst kept candidate (the heap root).
		if logitWorse(logits, idx[0], id) {
			idx[0] = id
			siftWorst(idx, logits, 0)
		}
	}

	probs := d.probs[:k]
	inv := float32(1 / opts.Temperature)
	for i, id := range idx {
		probs[i] = logits[id] * inv
	}
	tensor.SoftmaxRow(probs)
	u := r.Float64()
	var cum float64
	for i, p := range probs {
		cum += float64(p)
		if u < cum {
			return idx[i]
		}
	}
	return idx[k-1] // numerical tail
}

// logitWorse orders token ids for top-k selection: a is worse than b when
// its logit is smaller, with ties going against the higher id (so the kept
// set matches a (prob desc, id asc) sort prefix exactly).
func logitWorse(logits []float32, a, b int) bool {
	la, lb := logits[a], logits[b]
	if la != lb {
		return la < lb
	}
	return a > b
}

// siftWorst restores the min-heap property (worst kept candidate at the
// root) below position i.
func siftWorst(idx []int, logits []float32, i int) {
	for {
		l, rt := 2*i+1, 2*i+2
		m := i
		if l < len(idx) && logitWorse(logits, idx[l], idx[m]) {
			m = l
		}
		if rt < len(idx) && logitWorse(logits, idx[rt], idx[m]) {
			m = rt
		}
		if m == i {
			return
		}
		idx[i], idx[m] = idx[m], idx[i]
		i = m
	}
}

// byProb sorts a Decoder's idx by descending probability, ascending id on
// ties.
type byProb Decoder

func (b *byProb) Len() int { return len(b.idx) }
func (b *byProb) Less(i, j int) bool {
	pi, pj := b.probs[b.idx[i]], b.probs[b.idx[j]]
	if pi != pj {
		return pi > pj
	}
	return b.idx[i] < b.idx[j]
}
func (b *byProb) Swap(i, j int) { b.idx[i], b.idx[j] = b.idx[j], b.idx[i] }
