package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"zipflm/internal/rng"
)

func TestAliasTableMatchesDistribution(t *testing.T) {
	weights := []float64{5, 1, 3, 0, 1}
	tab := NewAliasTable(weights, rng.New(1))
	const draws = 500_000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Next()]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for k, w := range weights {
		want := w / sum * draws
		got := float64(counts[k])
		if w == 0 {
			if got != 0 {
				t.Errorf("zero-weight index %d drawn %v times", k, got)
			}
			continue
		}
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("index %d: %v draws, want ~%v", k, got, want)
		}
	}
}

func TestAliasProbsSumToOne(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		all0 := true
		for i, v := range raw {
			w[i] = float64(v)
			if v != 0 {
				all0 = false
			}
		}
		if all0 {
			return true
		}
		tab := NewAliasTable(w, rng.New(2))
		var sum float64
		for k := range w {
			sum += tab.Prob(k)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZipfAliasHeadHeavy(t *testing.T) {
	tab := NewZipfAliasTable(1000, 1.0, rng.New(3))
	if tab.Prob(0) <= tab.Prob(10) {
		t.Error("Zipf alias table not head-heavy")
	}
	// Prob(0)/Prob(1) = 2 for s=1.
	if r := tab.Prob(0) / tab.Prob(1); math.Abs(r-2) > 1e-9 {
		t.Errorf("rank-0/rank-1 ratio = %v, want 2", r)
	}
}

func TestAliasPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewAliasTable(nil, rng.New(1)) },
		func() { NewAliasTable([]float64{0, 0}, rng.New(1)) },
		func() { NewAliasTable([]float64{1, -1}, rng.New(1)) },
		func() { NewZipfAliasTable(0, 1, rng.New(1)) },
		func() { NewUnigramSampler(0, nil, 1) },
		func() { NewUnigramSampler(3, []float64{1}, 1) },
		func() { NewUnigramSampler(3, nil, 1).Sample(-1, nil) },
		func() { NewUnigramSampler(3, nil, 1).Sample(1, []int{3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestUnigramSamplerIncludesTargets(t *testing.T) {
	s := NewUnigramSampler(100, nil, 4)
	set := s.Sample(20, []int{7, 7, 93})
	if set[0] != 7 || set[1] != 93 {
		t.Errorf("targets not first: %v", set[:3])
	}
	seen := map[int]bool{}
	for _, w := range set {
		if w < 0 || w >= 100 || seen[w] {
			t.Fatalf("bad candidate set: %v", set)
		}
		seen[w] = true
	}
}

func TestUnigramSamplerCustomFrequencies(t *testing.T) {
	// All mass on ids 2 and 5: negatives can only be those.
	freq := make([]float64, 10)
	freq[2], freq[5] = 3, 1
	s := NewUnigramSampler(10, freq, 5)
	set := s.Sample(50, nil)
	for _, w := range set {
		if w != 2 && w != 5 {
			t.Fatalf("drew id %d with zero frequency", w)
		}
	}
}

func TestUnigramLogExpectedCount(t *testing.T) {
	s := NewUnigramSampler(50, nil, 6)
	// Head word has the largest correction.
	if s.LogExpectedCount(10, 0) <= s.LogExpectedCount(10, 40) {
		t.Error("correction must decrease with rank")
	}
}

// TestUnigramVsLogUniformHead: the exact unigram sampler must put *more*
// relative mass on mid-rank words than log-uniform at the same vocabulary
// (log-uniform over-weights the extreme head), which is its practical
// advantage for sampled softmax.
func TestUnigramVsLogUniformAgreeOnOrder(t *testing.T) {
	const vocab = 1000
	uni := NewUnigramSampler(vocab, nil, 7)
	lu := NewSampler(vocab, 7)
	uSet := uni.Sample(200, nil)
	lSet := lu.Sample(200, nil)
	// Both samplers produce valid, duplicate-free candidate sets whose
	// heads skew to low ranks.
	for _, set := range [][]int{uSet, lSet} {
		low := 0
		for _, w := range set {
			if w < vocab/10 {
				low++
			}
		}
		if low < len(set)/4 {
			t.Errorf("sampler not head-skewed: %d/%d in the first decile", low, len(set))
		}
	}
}

func BenchmarkAliasNext(b *testing.B) {
	tab := NewZipfAliasTable(100_000, 1.0, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Next()
	}
}
