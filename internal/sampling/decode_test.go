package sampling

import (
	"sort"
	"testing"

	"zipflm/internal/rng"
)

// TestTopKSelectionMatchesSort: the heap-based top-k candidate set must be
// exactly the first k of a (logit desc, id asc) full sort, including under
// heavy ties.
func TestTopKSelectionMatchesSort(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		v := 20 + r.Intn(200)
		logits := make([]float32, v)
		for i := range logits {
			logits[i] = float32(r.Intn(12)) * 0.25 // ties everywhere
		}
		k := 1 + r.Intn(v-1)

		d := NewDecoder(v)
		d.sampleTopK(logits, DecodeOpts{Temperature: 1, TopK: k}, rng.New(1))
		got := append([]int(nil), d.idx[:k]...)
		sort.Ints(got)

		ref := make([]int, v)
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool {
			if logits[ref[a]] != logits[ref[b]] {
				return logits[ref[a]] > logits[ref[b]]
			}
			return ref[a] < ref[b]
		})
		want := append([]int(nil), ref[:k]...)
		sort.Ints(want)

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (v=%d k=%d): heap set %v != sort prefix %v", trial, v, k, got, want)
			}
		}
	}
}

// TestSampleDeterministic: equal seeds draw equal tokens across every
// decode mode; draws stay inside the candidate restriction.
func TestSampleDeterministic(t *testing.T) {
	r := rng.New(9)
	const v = 64
	logits := make([]float32, v)
	for i := range logits {
		logits[i] = float32(r.NormFloat64())
	}
	for _, opts := range []DecodeOpts{
		{Temperature: 0},
		{Temperature: 1},
		{Temperature: 0.7, TopK: 8},
		{Temperature: 0.7, TopP: 0.6},
		{Temperature: 1.2, TopK: 16, TopP: 0.9},
	} {
		d := NewDecoder(v)
		for trial := 0; trial < 20; trial++ {
			a := d.Sample(logits, opts, rng.New(uint64(trial)))
			b := NewDecoder(v).Sample(logits, opts, rng.New(uint64(trial)))
			if a != b {
				t.Fatalf("opts %+v trial %d: %d != %d across decoders", opts, trial, a, b)
			}
			if a < 0 || a >= v {
				t.Fatalf("opts %+v drew out-of-range %d", opts, a)
			}
		}
	}
}

// TestTopKRestrictsSupport: over many draws, only the top-k ids appear.
func TestTopKRestrictsSupport(t *testing.T) {
	const v, k = 32, 4
	logits := make([]float32, v)
	for i := range logits {
		logits[i] = float32(v - i) // strictly decreasing: top-k = {0..k-1}
	}
	d := NewDecoder(v)
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		got := d.Sample(logits, DecodeOpts{Temperature: 2, TopK: k}, r)
		if got >= k {
			t.Fatalf("top-%d draw returned id %d", k, got)
		}
	}
}

// TestTopKWiderThanVocab: k ≥ |V| restricts nothing — it must behave
// exactly like unrestricted sampling (same draws from the same RNG state),
// not panic, not skew the distribution, for both the pure top-k fast path
// and the combined top-k/top-p path.
func TestTopKWiderThanVocab(t *testing.T) {
	const v = 16
	r := rng.New(21)
	logits := make([]float32, v)
	for i := range logits {
		logits[i] = float32(r.NormFloat64())
	}
	for _, k := range []int{v, v + 1, 10 * v} {
		for trial := 0; trial < 50; trial++ {
			free := NewDecoder(v).Sample(logits, DecodeOpts{Temperature: 0.8}, rng.New(uint64(trial)))
			wide := NewDecoder(v).Sample(logits, DecodeOpts{Temperature: 0.8, TopK: k}, rng.New(uint64(trial)))
			if free != wide {
				t.Fatalf("k=%d trial %d: wide top-k drew %d, unrestricted drew %d", k, trial, wide, free)
			}
			// Combined with nucleus: the oversized k must not disturb the
			// pure top-p cut either.
			p := NewDecoder(v).Sample(logits, DecodeOpts{Temperature: 0.8, TopP: 0.7}, rng.New(uint64(trial)))
			pk := NewDecoder(v).Sample(logits, DecodeOpts{Temperature: 0.8, TopK: k, TopP: 0.7}, rng.New(uint64(trial)))
			if p != pk {
				t.Fatalf("k=%d trial %d: top-p %d vs top-p+wide-k %d", k, trial, p, pk)
			}
		}
		// Greedy with an oversized k stays argmax.
		if got := NewDecoder(v).Sample(logits, DecodeOpts{TopK: k}, rng.New(1)); got != argmax(logits) {
			t.Fatalf("k=%d greedy drew %d, argmax is %d", k, got, argmax(logits))
		}
	}
}

func argmax(x []float32) int {
	bi := 0
	for i, v := range x {
		if v > x[bi] {
			bi = i
		}
	}
	return bi
}

// TestTopPRestrictsSupport: a tiny nucleus over a peaked distribution keeps
// draws at the head.
func TestTopPRestrictsSupport(t *testing.T) {
	const v = 32
	logits := make([]float32, v)
	logits[7] = 50 // ~all mass at id 7
	d := NewDecoder(v)
	r := rng.New(6)
	for trial := 0; trial < 100; trial++ {
		if got := d.Sample(logits, DecodeOpts{Temperature: 1, TopP: 0.5}, r); got != 7 {
			t.Fatalf("nucleus draw escaped the head: %d", got)
		}
	}
}
