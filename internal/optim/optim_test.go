package optim

import (
	"math"
	"testing"

	"zipflm/internal/model"
)

func makeParam(vals, grads []float32) model.Param {
	return model.Param{Name: "p", Value: vals, Grad: grads}
}

func TestSGDStep(t *testing.T) {
	p := makeParam([]float32{1, 2}, []float32{0.5, -1})
	SGD{}.Step([]model.Param{p}, 0.1)
	if math.Abs(float64(p.Value[0])-0.95) > 1e-6 || math.Abs(float64(p.Value[1])-2.1) > 1e-6 {
		t.Errorf("SGD result %v", p.Value)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)², starting at 0.
	x := []float32{0}
	g := []float32{0}
	p := makeParam(x, g)
	a := NewAdam(0)
	for i := 0; i < 2000; i++ {
		g[0] = 2 * (x[0] - 3)
		a.Step([]model.Param{p}, 0.01)
	}
	if math.Abs(float64(x[0])-3) > 0.05 {
		t.Errorf("Adam converged to %v, want 3", x[0])
	}
}

func TestAdamStateIsPerParameter(t *testing.T) {
	a := NewAdam(0)
	p1 := makeParam([]float32{0}, []float32{1})
	p2 := model.Param{Name: "q", Value: []float32{0}, Grad: []float32{-1}}
	a.Step([]model.Param{p1, p2}, 0.1)
	// Opposite gradients must move in opposite directions.
	if !(p1.Value[0] < 0 && p2.Value[0] > 0) {
		t.Errorf("values %v %v", p1.Value[0], p2.Value[0])
	}
}

func TestAdamWeightDecayShrinksWeights(t *testing.T) {
	noDecay := makeParam([]float32{1}, []float32{0})
	withDecay := model.Param{Name: "w", Value: []float32{1}, Grad: []float32{0}}
	NewAdam(0).Step([]model.Param{noDecay}, 0.1)
	NewAdam(0.1).Step([]model.Param{withDecay}, 0.1)
	if noDecay.Value[0] != 1 {
		t.Errorf("zero-gradient zero-decay step changed weight to %v", noDecay.Value[0])
	}
	if withDecay.Value[0] >= 1 {
		t.Errorf("weight decay did not shrink weight: %v", withDecay.Value[0])
	}
}

func TestScheduleMatchesPaper(t *testing.T) {
	// §V-A: base 0.2 at 8 GPUs; "e.g. 0.41 for 64 GPUs" — 0.2·ln(8) ≈ 0.416.
	s := Schedule{Base: 0.2, GPUsPerNode: 8, Decay: 0.9}
	if got := s.LR(8, 0); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("LR(8) = %v, want 0.2", got)
	}
	if got := s.LR(64, 0); math.Abs(got-0.2*math.Log(8)) > 1e-9 {
		t.Errorf("LR(64) = %v, want %v (paper: ≈0.41)", got, 0.2*math.Log(8))
	}
	// §V-B: char base 1e-3, "2.07×10⁻³ for 64 GPUs" — 1e-3·ln(8) ≈ 2.08e-3.
	c := Schedule{Base: 1e-3, GPUsPerNode: 8, Decay: 0.9}
	if got := c.LR(64, 0); math.Abs(got-2.0794e-3) > 1e-5 {
		t.Errorf("char LR(64) = %v, want ≈2.08e-3", got)
	}
}

func TestScheduleDecay(t *testing.T) {
	s := Schedule{Base: 0.2, GPUsPerNode: 8, Decay: 0.9}
	lr0 := s.LR(8, 0)
	lr2 := s.LR(8, 2)
	if math.Abs(lr2-lr0*0.81) > 1e-9 {
		t.Errorf("decayed LR = %v, want %v", lr2, lr0*0.81)
	}
}

func TestScheduleNeverScalesDown(t *testing.T) {
	s := Schedule{Base: 0.2, GPUsPerNode: 8, Decay: 0.9}
	// Fewer GPUs than one node must not shrink the base rate.
	if got := s.LR(4, 0); got < 0.2 {
		t.Errorf("LR(4) = %v shrank below base", got)
	}
}

func TestLossScalerRoundTrip(t *testing.T) {
	s := LossScaler{F: 512}
	if s.ScaleLoss(2) != 1024 {
		t.Error("ScaleLoss wrong")
	}
	p := makeParam([]float32{0}, []float32{512})
	s.UnscaleGrads([]model.Param{p})
	if p.Grad[0] != 1 {
		t.Errorf("unscaled grad = %v, want 1", p.Grad[0])
	}
}

func TestDynamicLossScalerBacksOffOnOverflow(t *testing.T) {
	d := NewDynamicLossScaler(1024)
	bad := makeParam([]float32{0}, []float32{float32(math.Inf(1))})
	if d.Update([]model.Param{bad}) {
		t.Fatal("overflow step must be skipped")
	}
	if d.F != 512 {
		t.Errorf("F = %v after overflow, want 512", d.F)
	}
	// NaN also counts as overflow.
	nan := makeParam([]float32{0}, []float32{float32(math.NaN())})
	d.Update([]model.Param{nan})
	if d.F != 256 {
		t.Errorf("F = %v, want 256", d.F)
	}
}

func TestDynamicLossScalerGrows(t *testing.T) {
	d := NewDynamicLossScaler(64)
	d.GrowthInterval = 3
	good := makeParam([]float32{0}, []float32{0.5})
	for i := 0; i < 3; i++ {
		if !d.Update([]model.Param{good}) {
			t.Fatal("clean step reported overflow")
		}
	}
	if d.F != 128 {
		t.Errorf("F = %v after growth interval, want 128", d.F)
	}
}

func TestDynamicLossScalerBounds(t *testing.T) {
	d := NewDynamicLossScaler(2)
	bad := makeParam([]float32{0}, []float32{float32(math.Inf(-1))})
	for i := 0; i < 5; i++ {
		d.Update([]model.Param{bad})
	}
	if d.F < 1 {
		t.Errorf("F fell below 1: %v", d.F)
	}
	g := NewDynamicLossScaler(32768)
	g.GrowthInterval = 1
	good := makeParam([]float32{0}, []float32{1})
	g.Update([]model.Param{good})
	if g.F > g.MaxF {
		t.Errorf("F exceeded MaxF: %v", g.F)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-positive init must panic")
			}
		}()
		NewDynamicLossScaler(0)
	}()
}
