// Package optim provides the optimizers of §IV-B: plain SGD (word LM) and
// Adam with weight decay (char LM), plus the paper's learning-rate scaling
// rule — base rate multiplied by ln(#nodes) as GPUs grow — and epoch decay.
//
// Embedding matrices are updated with SGD-style row updates applied from
// the globally exchanged core.Update (sparse rows); dense RNN/projection
// parameters go through the Optimizer interface below.
package optim

import (
	"fmt"
	"math"
	"sort"

	"zipflm/internal/model"
)

// Optimizer updates dense parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update at the given learning rate and clears
	// nothing — callers zero gradients between steps.
	Step(params []model.Param, lr float32)
}

// State is a serializable optimizer snapshot for the checkpoint subsystem.
// Moment maps are flattened into name-sorted parallel slices so identical
// optimizers always produce identical bytes (map iteration order must never
// reach an encoder). Kind guards a resume against swapping optimizers
// between the checkpointing run and the resuming one.
type State struct {
	// Kind identifies the optimizer ("sgd", "adam").
	Kind string
	// T is Adam's global step count (bias correction position).
	T int
	// Names are the parameter names, sorted; M and V are the first and
	// second moments in the same order.
	Names []string
	M, V  [][]float64
}

// Snapshotter is implemented by optimizers whose internal state must
// survive a checkpoint/resume cycle. Snapshot deep-copies, so later Steps
// cannot mutate a captured state; Restore deep-copies back, so one State
// can seed every rank's optimizer independently.
type Snapshotter interface {
	Snapshot() State
	Restore(State) error
}

// Snapshot implements Snapshotter: SGD is stateless.
func (SGD) Snapshot() State { return State{Kind: "sgd"} }

// Restore implements Snapshotter.
func (SGD) Restore(s State) error {
	if s.Kind != "sgd" {
		return fmt.Errorf("optim: resuming SGD from a %q checkpoint", s.Kind)
	}
	return nil
}

// Snapshot implements Snapshotter: the step counter plus both moment maps,
// name-sorted and deep-copied.
func (a *Adam) Snapshot() State {
	st := State{Kind: "adam", T: a.t}
	for name := range a.m {
		st.Names = append(st.Names, name)
	}
	sort.Strings(st.Names)
	for _, name := range st.Names {
		st.M = append(st.M, append([]float64(nil), a.m[name]...))
		st.V = append(st.V, append([]float64(nil), a.v[name]...))
	}
	return st
}

// Restore implements Snapshotter.
func (a *Adam) Restore(s State) error {
	if s.Kind != "adam" {
		return fmt.Errorf("optim: resuming Adam from a %q checkpoint", s.Kind)
	}
	if len(s.Names) != len(s.M) || len(s.Names) != len(s.V) {
		return fmt.Errorf("optim: Adam state has %d names but %d/%d moment slices",
			len(s.Names), len(s.M), len(s.V))
	}
	a.t = s.T
	a.m = make(map[string][]float64, len(s.Names))
	a.v = make(map[string][]float64, len(s.Names))
	for i, name := range s.Names {
		if len(s.M[i]) != len(s.V[i]) {
			return fmt.Errorf("optim: Adam state for %q has mismatched moment lengths", name)
		}
		a.m[name] = append([]float64(nil), s.M[i]...)
		a.v[name] = append([]float64(nil), s.V[i]...)
	}
	return nil
}

// SGD is stochastic gradient descent, the word-LM optimizer (§IV-B: "we
// used stochastic gradient descent (SGD) for optimizing per-sequence word
// cross-entropy loss").
type SGD struct{}

// Step implements Optimizer.
func (SGD) Step(params []model.Param, lr float32) {
	for _, p := range params {
		for i, g := range p.Grad {
			p.Value[i] -= lr * g
		}
	}
}

// Adam implements Adam with decoupled weight decay (AdamW-style), the
// char-LM optimizer (§IV-B: "we use Adam with weight decay and dropout").
type Adam struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	t int
	m map[string][]float64
	v map[string][]float64
}

// NewAdam returns an Adam optimizer with the standard moment coefficients.
func NewAdam(weightDecay float64) *Adam {
	return &Adam{
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		WeightDecay: weightDecay,
		m:           make(map[string][]float64),
		v:           make(map[string][]float64),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []model.Param, lr float32) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p.Name]
		if m == nil {
			m = make([]float64, len(p.Value))
			a.m[p.Name] = m
			a.v[p.Name] = make([]float64, len(p.Value))
		}
		v := a.v[p.Name]
		for i, g64 := range p.Grad {
			g := float64(g64)
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			upd := mHat/(math.Sqrt(vHat)+a.Eps) + a.WeightDecay*float64(p.Value[i])
			p.Value[i] -= lr * float32(upd)
		}
	}
}

// Schedule is the paper's learning-rate policy: a base rate for the 8-GPU
// (one node) configuration, multiplied by ln(#nodes) when scaling out
// (§V-A: "we use 0.2 as the base learning rate … and then used a
// multiplying factor of log_e |nodes|"), decayed per epoch by a factor in
// [0.85, 0.95].
type Schedule struct {
	// Base is the single-node learning rate (0.2 word LM, 1e-3 char LM).
	Base float64
	// GPUsPerNode converts rank counts to node counts (paper: 8).
	GPUsPerNode int
	// Decay is the per-epoch multiplicative decay (paper: 0.85–0.95).
	Decay float64
}

// LR returns the learning rate for the given cluster size and 0-based epoch.
func (s Schedule) LR(gpus int, epoch int) float64 {
	nodes := float64(gpus) / float64(s.GPUsPerNode)
	scale := 1.0
	if nodes > 1 {
		scale = math.Log(nodes)
		if scale < 1 {
			scale = 1
		}
	}
	lr := s.Base * scale
	for e := 0; e < epoch; e++ {
		lr *= s.Decay
	}
	return lr
}

// LossScaler implements mixed-precision loss scaling (§III-C): the training
// loss is multiplied by F before gradients are computed and gradients are
// divided by F before the weight update, keeping small gradient values out
// of the FP16 flush-to-zero range.
type LossScaler struct {
	// F is the scale factor (paper examples: 256, 512, 1024).
	F float32
}

// ScaleLoss returns loss·F.
func (s LossScaler) ScaleLoss(loss float64) float64 { return loss * float64(s.F) }

// UnscaleGrads divides every gradient by F in place.
func (s LossScaler) UnscaleGrads(params []model.Param) {
	inv := 1 / s.F
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= inv
		}
	}
}

// DynamicLossScaler is the production refinement of fixed loss scaling
// (used by Apex/AMP-era stacks contemporary with the paper): the factor
// grows geometrically while training is healthy and backs off sharply when
// scaled gradients overflow, so F stays near the largest safe value without
// manual tuning.
type DynamicLossScaler struct {
	// F is the current scale factor.
	F float32
	// GrowthInterval is the number of consecutive overflow-free steps
	// before F doubles.
	GrowthInterval int
	// MaxF caps growth (FP16 saturates near 65504).
	MaxF float32

	goodSteps int
}

// NewDynamicLossScaler starts at initF (e.g. 1024) with the standard
// growth/backoff policy (×2 after 200 clean steps, ÷2 on overflow).
func NewDynamicLossScaler(initF float32) *DynamicLossScaler {
	if initF <= 0 {
		panic("optim: non-positive initial loss scale")
	}
	return &DynamicLossScaler{F: initF, GrowthInterval: 200, MaxF: 32768}
}

// Update inspects the step's scaled gradients for overflow (Inf/NaN) and
// adjusts F. It returns false when the step must be skipped (overflow:
// gradients are garbage at any precision).
func (d *DynamicLossScaler) Update(params []model.Param) bool {
	overflow := false
scan:
	for _, p := range params {
		for _, g := range p.Grad {
			if math.IsInf(float64(g), 0) || math.IsNaN(float64(g)) {
				overflow = true
				break scan
			}
		}
	}
	if overflow {
		d.F /= 2
		if d.F < 1 {
			d.F = 1
		}
		d.goodSteps = 0
		return false
	}
	d.goodSteps++
	if d.goodSteps >= d.GrowthInterval && d.F < d.MaxF {
		d.F *= 2
		if d.F > d.MaxF {
			d.F = d.MaxF
		}
		d.goodSteps = 0
	}
	return true
}
