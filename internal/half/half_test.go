package half

import (
	"math"
	"testing"
	"testing/quick"

	"zipflm/internal/rng"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Float16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},            // max finite
		{6.103515625e-05, 0x0400},  // smallest normal
		{5.960464477539063e-08, 1}, // smallest subnormal
		{math.Float32frombits(0x80000000), 0x8000}, // -0.0 (Go constant -0.0 is +0)
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := c.bits.ToFloat32(); back != c.f {
			// -0.0 == 0.0 in Go comparison, so this also accepts signed zero.
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.bits, back, c.f)
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	if h := FromFloat32(70000); !h.IsInf() {
		t.Errorf("70000 should overflow to +Inf, got %#04x", h)
	}
	if h := FromFloat32(-70000); !h.IsInf() || h&f16SignMask == 0 {
		t.Errorf("-70000 should overflow to -Inf, got %#04x", h)
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("NaN did not convert to FP16 NaN: %#04x", h)
	}
	if back := h.ToFloat32(); !math.IsNaN(float64(back)) {
		t.Errorf("FP16 NaN round trip lost NaN-ness: %v", back)
	}
}

func TestInfRoundTrip(t *testing.T) {
	pos := FromFloat32(float32(math.Inf(1)))
	if !pos.IsInf() || float64(pos.ToFloat32()) != math.Inf(1) {
		t.Errorf("+Inf round trip failed: %#04x -> %v", pos, pos.ToFloat32())
	}
	neg := FromFloat32(float32(math.Inf(-1)))
	if !neg.IsInf() || float64(neg.ToFloat32()) != math.Inf(-1) {
		t.Errorf("-Inf round trip failed: %#04x -> %v", neg, neg.ToFloat32())
	}
}

func TestUnderflowToZero(t *testing.T) {
	if h := FromFloat32(1e-10); h != 0 {
		t.Errorf("1e-10 should underflow to +0, got %#04x", h)
	}
	if h := FromFloat32(-1e-10); h != 0x8000 {
		t.Errorf("-1e-10 should underflow to -0, got %#04x", h)
	}
}

// TestRoundTripPrecision: every normal-range value must round trip within
// half a ULP, i.e. relative error <= 2^-11.
func TestRoundTripPrecision(t *testing.T) {
	f := func(raw uint32) bool {
		x := math.Float32frombits(raw)
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		ax := math.Abs(float64(x))
		if ax < 6.2e-05 || ax > 65000 {
			return true // outside FP16 normal range
		}
		back := float64(FromFloat32(x).ToFloat32())
		return math.Abs(back-float64(x)) <= ax/2048+1e-30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestExactRoundTripOfFP16Values: FP32 values that are exactly representable
// in FP16 must survive unchanged (idempotency of the wire format).
func TestExactRoundTripOfFP16Values(t *testing.T) {
	for bits := 0; bits < 1<<16; bits++ {
		h := Float16(bits)
		if h.IsNaN() {
			continue
		}
		f := h.ToFloat32()
		if got := FromFloat32(f); got != h {
			t.Fatalf("FP16 %#04x -> %v -> %#04x not idempotent", h, f, got)
		}
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 sits exactly between 1.0 and the next FP16 (1+2^-10):
	// must round to even mantissa, i.e. down to 1.0.
	x := float32(1) + float32(math.Pow(2, -11))
	if got := FromFloat32(x).ToFloat32(); got != 1 {
		t.Errorf("midpoint rounding: got %v, want 1 (round to even)", got)
	}
	// 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: rounds up to even.
	y := float32(1) + 3*float32(math.Pow(2, -11))
	want := float32(1) + 2*float32(math.Pow(2, -10))
	if got := FromFloat32(y).ToFloat32(); got != want {
		t.Errorf("midpoint rounding up: got %v, want %v", got, want)
	}
}

func TestCompressDecompress(t *testing.T) {
	src := []float32{0, 1, -2.5, 1000, 1e-4}
	h := make([]Float16, len(src))
	out := make([]float32, len(src))
	Decompress(out, Compress(h, src))
	for i := range src {
		if math.Abs(float64(out[i]-src[i])) > math.Abs(float64(src[i]))/1024 {
			t.Errorf("element %d: %v -> %v", i, src[i], out[i])
		}
	}
}

func TestCompressLengthMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Compress(make([]Float16, 1), make([]float32, 2)) },
		func() { Decompress(make([]float32, 2), make([]Float16, 1)) },
		func() { NewScaler(1).CompressScaled(make([]Float16, 1), make([]float32, 2)) },
		func() { NewScaler(1).DecompressScaled(make([]float32, 1), make([]Float16, 2)) },
		func() { NewScaler(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestScalingRescuesSmallGradients is the heart of §III-C: gradients around
// 1e-7 flush to zero in raw FP16 but survive with a 1024x compression scale.
func TestScalingRescuesSmallGradients(t *testing.T) {
	// Below half the smallest FP16 subnormal (~2.98e-8) raw conversion
	// flushes to zero.
	grad := []float32{2.5e-8, -1.5e-8, 8e-9}

	raw := make([]float32, len(grad))
	copy(raw, grad)
	NewScaler(1).RoundTrip(raw)
	zeros := 0
	for _, v := range raw {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("expected unscaled FP16 to flush tiny gradients to zero")
	}

	// Scaling by 2^16 lifts them into the FP16 normal range.
	scaled := make([]float32, len(grad))
	copy(scaled, grad)
	NewScaler(65536).RoundTrip(scaled)
	for i, v := range scaled {
		if v == 0 {
			t.Errorf("element %d flushed to zero despite scaling", i)
		}
		rel := math.Abs(float64(v-grad[i])) / math.Abs(float64(grad[i]))
		if rel > 1e-3 {
			t.Errorf("element %d: relative error %v too large", i, rel)
		}
	}
}

// TestRoundTripSaturates: values that overflow after scaling clip to the max
// finite FP16 instead of becoming Inf.
func TestRoundTripSaturates(t *testing.T) {
	x := []float32{1e6, -1e6}
	NewScaler(1).RoundTrip(x)
	if x[0] != MaxFinite || x[1] != -MaxFinite {
		t.Errorf("saturation: got %v, want ±%v", x, float32(MaxFinite))
	}
}

// TestScaledRoundTripProperty: for values in the safe range, scaling by a
// power of two must not change the round-trip result materially.
func TestScaledRoundTripProperty(t *testing.T) {
	r := rng.New(7)
	s := NewScaler(512)
	for i := 0; i < 2000; i++ {
		x := float32(r.NormFloat64())
		buf := []float32{x}
		s.RoundTrip(buf)
		if math.Abs(float64(buf[0]-x)) > math.Abs(float64(x))/1024+1e-9 {
			t.Fatalf("scaled round trip of %v gave %v", x, buf[0])
		}
	}
}

func TestBytes(t *testing.T) {
	if Bytes(10) != 20 {
		t.Errorf("Bytes(10) = %d, want 20", Bytes(10))
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FromFloat32(3.14159)
	}
}

func BenchmarkCompress1K(b *testing.B) {
	src := make([]float32, 1024)
	for i := range src {
		src[i] = float32(i) * 0.001
	}
	dst := make([]Float16, 1024)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(dst, src)
	}
}
