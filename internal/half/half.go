// Package half implements IEEE-754 binary16 ("FP16") conversion in software,
// plus the compression-scaling scheme of §III-C of the paper: before
// down-casting a gradient tensor for the wire, multiply by a scale factor F
// so small magnitudes do not flush to zero in the narrower exponent range;
// divide by F after up-casting on the receiving end.
//
// The bit-exact rounding here (round-to-nearest-even, gradual underflow to
// subnormals, saturation handling for overflow) means accuracy-loss
// experiments behave like real FP16 hardware.
package half

import "math"

// Float16 is an IEEE-754 binary16 value stored in its 16-bit wire format:
// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
type Float16 uint16

// Bit-layout constants for binary16 and binary32.
const (
	f16SignMask  = 0x8000
	f16ExpMask   = 0x7c00
	f16FracMask  = 0x03ff
	f16ExpBias   = 15
	f16Infinity  = Float16(0x7c00)
	f16NaN       = Float16(0x7e00)
	f16MaxFinite = 65504.0
)

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even.
// Values above the FP16 finite range become ±Inf (matching IEEE and GPU
// behaviour); NaN maps to a quiet NaN.
func FromFloat32(f float32) Float16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & f16SignMask
	exp := int32(bits>>23) & 0xff
	frac := bits & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if frac != 0 {
			return Float16(sign) | f16NaN
		}
		return Float16(sign) | f16Infinity
	case exp == 0 && frac == 0: // signed zero
		return Float16(sign)
	}

	// Unbiased exponent.
	e := exp - 127
	switch {
	case e > 15:
		// Overflow: round to infinity.
		return Float16(sign) | f16Infinity
	case e >= -14:
		// Normal range. 23-bit fraction -> 10-bit with RNE.
		out := uint32(e+f16ExpBias)<<10 | frac>>13
		// Round: inspect the 13 discarded bits.
		rem := frac & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && out&1 == 1) {
			out++ // may carry into exponent; that is correct RNE behaviour
		}
		return Float16(sign | uint16(out))
	case e >= -25:
		// Subnormal range: shift in the implicit leading 1, then round.
		frac |= 0x800000
		shift := uint32(-e - 14 + 13) // total right shift to 10-bit subnormal
		out := frac >> shift
		rem := frac & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && out&1 == 1) {
			out++
		}
		return Float16(sign | uint16(out))
	default:
		// Underflow to signed zero.
		return Float16(sign)
	}
}

// ToFloat32 converts a binary16 back to float32 exactly (every FP16 value is
// representable in FP32).
func (h Float16) ToFloat32() float32 {
	sign := uint32(h&f16SignMask) << 16
	exp := uint32(h&f16ExpMask) >> 10
	frac := uint32(h & f16FracMask)

	switch {
	case exp == 0x1f: // Inf / NaN
		if frac != 0 {
			return math.Float32frombits(sign | 0x7f800000 | frac<<13 | 1<<22)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := int32(-14)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= f16FracMask
		return math.Float32frombits(sign | uint32(e+127)<<23 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp-f16ExpBias+127)<<23 | frac<<13)
	}
}

// IsNaN reports whether h is a NaN.
func (h Float16) IsNaN() bool {
	return h&f16ExpMask == f16ExpMask && h&f16FracMask != 0
}

// IsInf reports whether h is ±Inf.
func (h Float16) IsInf() bool {
	return h&f16ExpMask == f16ExpMask && h&f16FracMask == 0
}

// Compress converts src to FP16, writing into dst (which must be the same
// length). It returns dst for chaining. This is the down-cast half of the
// paper's compression step; communication then moves 2 bytes per element
// instead of 4.
func Compress(dst []Float16, src []float32) []Float16 {
	if len(dst) != len(src) {
		panic("half: Compress length mismatch")
	}
	for i, f := range src {
		dst[i] = FromFloat32(f)
	}
	return dst
}

// Decompress converts FP16 values back to float32 into dst (same length).
func Decompress(dst []float32, src []Float16) []float32 {
	if len(dst) != len(src) {
		panic("half: Decompress length mismatch")
	}
	for i, h := range src {
		dst[i] = h.ToFloat32()
	}
	return dst
}

// Scaler implements compression-scaling (§III-C): multiply by F before the
// down-cast, divide by F after the up-cast. F is typically a power of two
// (256, 512, 1024) so scaling is exact in binary floating point.
type Scaler struct {
	// Factor is the compression-scaling factor F.
	Factor float32
}

// NewScaler returns a Scaler with the given factor. Factor 1 disables
// scaling. Panics on non-positive factors.
func NewScaler(factor float32) *Scaler {
	if factor <= 0 {
		panic("half: non-positive scale factor")
	}
	return &Scaler{Factor: factor}
}

// CompressScaled writes FromFloat32(src[i]*Factor) into dst.
func (s *Scaler) CompressScaled(dst []Float16, src []float32) []Float16 {
	if len(dst) != len(src) {
		panic("half: CompressScaled length mismatch")
	}
	for i, f := range src {
		dst[i] = FromFloat32(f * s.Factor)
	}
	return dst
}

// DecompressScaled writes src[i].ToFloat32()/Factor into dst.
func (s *Scaler) DecompressScaled(dst []float32, src []Float16) []float32 {
	if len(dst) != len(src) {
		panic("half: DecompressScaled length mismatch")
	}
	inv := 1 / s.Factor
	for i, h := range src {
		dst[i] = h.ToFloat32() * inv
	}
	return dst
}

// RoundTrip applies compress-then-decompress in place, simulating what a
// tensor looks like after one trip over an FP16 wire. Overflow saturates to
// the FP16 finite max rather than propagating Inf, mirroring the clipping
// production loss-scaling stacks apply.
func (s *Scaler) RoundTrip(x []float32) {
	inv := 1 / s.Factor
	for i, f := range x {
		h := FromFloat32(f * s.Factor)
		if h.IsInf() {
			h = MaxFiniteWithSign(h)
		}
		x[i] = h.ToFloat32() * inv
	}
}

// MaxFiniteWithSign returns the largest finite FP16 magnitude carrying h's
// sign — the saturation value RoundTrip (and any other wire encoder)
// substitutes for overflow instead of propagating Inf.
func MaxFiniteWithSign(h Float16) Float16 {
	if h&f16SignMask != 0 {
		return Float16(f16SignMask | 0x7bff) // -max finite
	}
	return Float16(0x7bff) // +max finite
}

// WireBytes reports the wire size of n elements under this scaler — the
// collective.Wire accounting hook (FP16 occupies 2 bytes per element and
// carries no side data; the scale factor is configuration, not payload).
func (s *Scaler) WireBytes(n int) int { return Bytes(n) }

// WireName identifies this format in telemetry labels
// (collective.WireNamer).
func (s *Scaler) WireName() string { return "fp16" }

// MaxFinite is the largest finite FP16 magnitude.
const MaxFinite = f16MaxFinite

// Bytes reports the wire size of n FP16 elements.
func Bytes(n int) int { return 2 * n }
