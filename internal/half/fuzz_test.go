package half

import (
	"math"
	"testing"
)

// FuzzRoundTrip drives arbitrary float32 bit patterns through the FP16
// conversion and checks the IEEE-754 invariants hold for every input.
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range []uint32{0, 1, 0x3f800000, 0x7f800000, 0xff800000, 0x7fc00000, 0x33800000, 0x477fe000} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		h := FromFloat32(x)
		back := h.ToFloat32()

		switch {
		case math.IsNaN(float64(x)):
			if !h.IsNaN() || !math.IsNaN(float64(back)) {
				t.Fatalf("NaN not preserved: %#08x -> %#04x -> %v", bits, h, back)
			}
		case math.IsInf(float64(x), 0):
			if float64(back) != float64(x) {
				t.Fatalf("Inf not preserved: %v -> %v", x, back)
			}
		case math.Abs(float64(x)) > 65520:
			// Overflow rounds to Inf of the same sign.
			if !h.IsInf() || math.Signbit(float64(back)) != math.Signbit(float64(x)) {
				t.Fatalf("overflow of %v gave %v", x, back)
			}
		default:
			// Finite representable range: |error| ≤ max(half ULP,
			// half smallest subnormal).
			ulp := math.Abs(float64(x)) / 1024
			minStep := 5.960464477539063e-08
			tol := math.Max(ulp/2, minStep/2) * 1.0000001
			if math.Abs(float64(back)-float64(x)) > tol {
				t.Fatalf("round trip of %v gave %v (err %v > tol %v)", x, back, float64(back)-float64(x), tol)
			}
			// Idempotency: converting the result again is exact.
			if FromFloat32(back) != h {
				t.Fatalf("conversion not idempotent at %v", x)
			}
		}
	})
}
