// Package serve is the batched inference serving layer: the production
// shape behind the ROADMAP's "serve heavy traffic" goal, built on the same
// Zipf insight the paper (conf_ipps_PatwaryCJHDC19) exploits for training.
//
// Architecture:
//
//   - A bounded admission queue with backpressure: when it is full,
//     requests are shed immediately (ErrOverloaded) instead of piling up
//     goroutines; requests whose deadline passes before service are shed
//     with ErrDeadlineExceeded.
//
//   - Per-worker model replicas running a continuous dynamic batcher: each
//     worker advances up to MaxBatch sequences per forward step through a
//     model.Stepper, admitting new requests into free slots between steps
//     and retiring finished ones, so ragged prompts and different lengths
//     never stall the batch (no head-of-line blocking).
//
//   - Zipf-aware caching: an LRU result cache short-circuits repeated
//     requests entirely, and an LRU prefix cache snapshots post-prompt
//     recurrent states so repeated prompts skip prefill (see cache.go).
//
// The correctness contract, enforced by the tests: every response is
// bit-identical to what sequential model.Generate would produce for that
// request with the same per-request RNG seed, regardless of batch
// composition, scheduling, or cache hits. This falls out of the model
// layer's row-independence guarantee (model.Stepper) plus determinism of
// the per-request sampling RNG.
package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/sampling"
	"zipflm/internal/telemetry"
	"zipflm/internal/tensor"
)

var (
	// ErrOverloaded: the admission queue was full (backpressure shed).
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrDeadlineExceeded: the request's deadline passed before a worker
	// could start it.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before service")
	// ErrShutdown: the server was closed before or during the request.
	ErrShutdown = errors.New("serve: server closed")
)

// Request is one generation call.
type Request struct {
	// Prompt is the non-empty token-id prompt.
	Prompt []int
	// N is the number of tokens to generate (≥ 1).
	N int
	// Opts selects temperature / top-k / top-p decoding.
	Opts sampling.DecodeOpts
	// Seed seeds this request's private sampling RNG — the determinism
	// handle: (Prompt, N, Opts, Seed) fully determines Tokens.
	Seed uint64
	// Deadline, when non-zero, bounds the request's lifetime: it is shed
	// at admission if already past, and abandoned mid-generation at the
	// first step boundary after it passes (partial output discarded) — a
	// disconnected caller cannot wedge a batch slot.
	Deadline time.Time
}

// Result is a completed generation.
type Result struct {
	// Tokens is the generated continuation (caller-owned copy).
	Tokens []int
	// CacheHit: served from the result cache without touching a worker.
	CacheHit bool
	// PrefixHit: prefill was skipped via the prefix cache.
	PrefixHit bool
	// Latency is submit-to-completion wall time.
	Latency time.Duration
	// WeightsVersion identifies the weights generation that produced the
	// tokens (1 = the model the server started with; each Reload
	// increments it). Tokens are bit-identical to sequential
	// model.Generate on that generation's weights.
	WeightsVersion uint64
}

// Config tunes a Server.
type Config struct {
	// Workers is the number of model replicas, each with its own batcher
	// goroutine (default 1).
	Workers int
	// ComputeWorkers selects the tensor backend each replica computes with:
	// > 1 tiles every forward-step matmul across that many goroutines (one
	// shared tensor.Parallel for the whole server). 0 keeps the process
	// default (tensor.Default, which honors ZIPFLM_WORKERS); 1 forces the
	// serial reference. Responses are bit-identical at every setting — the
	// backend contract — so this is purely a latency/throughput knob.
	ComputeWorkers int
	// MaxBatch is the per-worker concurrent-sequence bound (default 8).
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue sheds
	// (default 2 × Workers × MaxBatch).
	QueueDepth int
	// CacheEntries bounds the result cache; 0 disables it.
	CacheEntries int
	// PrefixEntries bounds the prefix cache; 0 disables it.
	PrefixEntries int
	// MaxTokens caps Request.N (default 4096): a batch slot is a scarce
	// resource, so one request must not be able to hold it for an
	// unbounded generation.
	MaxTokens int
	// MaxPromptLen caps prompt length (default 4096), bounding prefill
	// work per request.
	MaxPromptLen int
	// BatchWindow, when positive, lets a worker starting a fresh batch
	// wait up to this long for more arrivals to coalesce (0: step
	// immediately with whatever is queued).
	BatchWindow time.Duration
	// Quantized converts every replica's inference path to int8 weights
	// (model.LM.QuantizeWeights) — single-token decode is memory-bound, so
	// 4× smaller weight reads raise tok/s. Responses remain deterministic
	// (bit-identical to sequential Generate on the quantized model) but
	// differ from FP32 responses by design.
	Quantized bool
	// Draft, when non-nil, enables speculative decoding: a small draft
	// model (same vocabulary; the intended pairing is a small RHN drafting
	// for the big LSTM) proposes DraftK tokens per round and the serving
	// model verifies them in one batched logits pass. Responses stay
	// bit-identical to sequential Generate at every temperature — the
	// draft changes cost per token, never tokens. The model is cloned at
	// New; the caller's copy is not retained. Drafts stay FP32 even under
	// Quantized (they are small; quantizing them would change proposals
	// for negligible bandwidth).
	Draft *model.LM
	// DraftK is the speculative lookahead (default 4, used only with
	// Draft).
	DraftK int
	// Telemetry, when non-nil, is the registry the server records into —
	// share one across subsystems to serve a single /metrics endpoint.
	// When nil the server creates a private registry, so Stats always
	// reads from registry instruments either way (Telemetry() exposes it).
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records per-request spans (queue, prefill,
	// decode) and shed/expire instants. Purely observational: responses
	// are bit-identical with tracing on or off.
	Tracer *telemetry.Tracer
	// SLOTargetP99, when positive, declares a latency objective: the p99
	// completion latency must stay at or below this. Evaluated from the
	// registry's latency histogram, surfaced in Stats().SLO and published
	// to /metrics as zipflm_slo_* gauges.
	SLOTargetP99 time.Duration
	// SLOAvailability, when in (0,1), declares an availability objective:
	// at least this fraction of requests must complete (sheds and expiries
	// are the bad events).
	SLOAvailability float64
	// Flight, when non-nil, is the structured flight recorder overload
	// anomalies are logged into: sheds and expiries record context, and a
	// queue-full shed triggers a (rate-limited) ring dump. Purely
	// observational, like Tracer.
	Flight *telemetry.Flight
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers * c.MaxBatch
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = 4096
	}
	if c.MaxPromptLen <= 0 {
		c.MaxPromptLen = 4096
	}
	if c.Draft != nil && c.DraftK <= 0 {
		c.DraftK = 4
	}
	return c
}

// task is a queued request plus its completion channel.
type task struct {
	req       Request
	prefix    bool      // served via prefix cache
	submitted time.Time // when Submit enqueued it (queue-span start)
	done      chan taskDone
}

type taskDone struct {
	tokens  []int
	version uint64 // weights generation that produced the tokens
	err     error
}

// Server is the serving subsystem: admission queue, workers, caches, stats.
type Server struct {
	cfg     Config
	vocab   int // immutable copy of the model vocabulary (Reload preserves it)
	queue   chan *task
	stop    chan struct{}
	wg      sync.WaitGroup
	mu      sync.RWMutex // guards closed + enqueue-vs-Close ordering
	closed  bool
	stats   *statsCollector
	reg     *telemetry.Registry
	tracer  *telemetry.Tracer
	slo     *telemetry.SLO
	flight  *telemetry.Flight
	results *lruCache
	prefix  *lruCache
	workers []*worker
	// backend is the shared tensor backend every replica computes with
	// (nil: leave replicas on their NewLM default). Reload replicas get it
	// too, so a reload never silently changes the compute path.
	backend tensor.Backend
	// draftSrc is the server's private copy of the speculative draft
	// weights (nil without Config.Draft); reloadMu guards it after New.
	draftSrc *model.LM
	// version is the current weights generation; reloadMu serializes
	// Reload calls so versions hand out monotonically with their replicas.
	version  atomic.Uint64
	reloads  atomic.Int64
	reloadMu sync.Mutex
}

// New builds a Server over the given model. The model is cloned into one
// replica per worker (the §II-B "replicas identical" invariant, now on the
// serving side); the caller's model is not retained and stays free for
// training or evaluation.
func New(m *model.LM, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Telemetry
	if reg == nil {
		// A private registry keeps the registry-backed stats path uniform;
		// recording is a few atomics, so the unexported default costs no
		// more than dedicated counters would.
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		vocab:   m.Cfg.Vocab,
		queue:   make(chan *task, cfg.QueueDepth),
		stop:    make(chan struct{}),
		stats:   newStatsCollector(cfg.MaxBatch, reg),
		reg:     reg,
		tracer:  cfg.Tracer,
		flight:  cfg.Flight,
		results: newLRUCache(cfg.CacheEntries),
		prefix:  newLRUCache(cfg.PrefixEntries),
	}
	s.version.Store(1)
	// Cache counters live in the LRUs and the queue depth in the channel;
	// fold them into the registry at scrape time rather than on every
	// operation.
	var (
		qDepth    = reg.Gauge("zipflm_serve_queue_depth")
		rHits     = reg.Gauge("zipflm_serve_result_cache_hits")
		rMisses   = reg.Gauge("zipflm_serve_result_cache_misses")
		rEvicted  = reg.Gauge("zipflm_serve_result_cache_evicted")
		rEntries  = reg.Gauge("zipflm_serve_result_cache_entries")
		pHits     = reg.Gauge("zipflm_serve_prefix_cache_hits")
		pMisses   = reg.Gauge("zipflm_serve_prefix_cache_misses")
		pEvicted  = reg.Gauge("zipflm_serve_prefix_cache_evicted")
		pEntries  = reg.Gauge("zipflm_serve_prefix_cache_entries")
		weightVer = reg.Gauge("zipflm_serve_weights_version")
	)
	reg.OnCollect(func() {
		qDepth.SetInt(int64(len(s.queue)))
		h, miss, ev, n := s.results.counters()
		rHits.SetInt(int64(h))
		rMisses.SetInt(int64(miss))
		rEvicted.SetInt(int64(ev))
		rEntries.SetInt(int64(n))
		h, miss, ev, n = s.prefix.counters()
		pHits.SetInt(int64(h))
		pMisses.SetInt(int64(miss))
		pEvicted.SetInt(int64(ev))
		pEntries.SetInt(int64(n))
		weightVer.SetInt(int64(s.version.Load()))
	})
	if cfg.SLOTargetP99 > 0 || (cfg.SLOAvailability > 0 && cfg.SLOAvailability < 1) {
		s.slo = telemetry.NewSLO()
		if cfg.SLOTargetP99 > 0 {
			s.slo.Add(telemetry.Objective{
				Name:          "latency_p99",
				Hist:          s.stats.lat,
				Quantile:      0.99,
				TargetSeconds: cfg.SLOTargetP99.Seconds(),
			})
		}
		if cfg.SLOAvailability > 0 && cfg.SLOAvailability < 1 {
			s.slo.Add(telemetry.Objective{
				Name:   "availability",
				Good:   []*telemetry.Counter{s.stats.completed},
				Bad:    []*telemetry.Counter{s.stats.shed, s.stats.expired},
				Target: cfg.SLOAvailability,
			})
		}
		s.slo.Publish(reg)
	}
	if cfg.ComputeWorkers > 0 {
		s.backend = tensor.New(cfg.ComputeWorkers)
	}
	if cfg.Draft != nil {
		if cfg.Draft.Cfg.Vocab != m.Cfg.Vocab {
			panic(fmt.Sprintf("serve: draft vocab %d does not match model vocab %d", cfg.Draft.Cfg.Vocab, m.Cfg.Vocab))
		}
		s.draftSrc = model.NewLM(cfg.Draft.Cfg)
		s.draftSrc.CopyWeightsFrom(cfg.Draft)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := newWorker(s, s.buildReplica(m), s.buildDraftReplica())
		w.id = i
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.loop()
		}()
	}
	return s
}

// buildReplica clones m into a serving replica: shared backend, quantized
// inference path when configured.
func (s *Server) buildReplica(m *model.LM) *model.LM {
	replica := model.NewLM(m.Cfg)
	if s.backend != nil {
		replica.SetBackend(s.backend)
	}
	replica.CopyWeightsFrom(m)
	if s.cfg.Quantized {
		replica.QuantizeWeights()
	}
	return replica
}

// buildDraftReplica clones the current draft weights into a per-worker
// replica (nil when speculative decoding is off). Callers hold reloadMu or
// run before the workers start.
func (s *Server) buildDraftReplica() *model.LM {
	if s.draftSrc == nil {
		return nil
	}
	d := model.NewLM(s.draftSrc.Cfg)
	if s.backend != nil {
		d.SetBackend(s.backend)
	}
	d.CopyWeightsFrom(s.draftSrc)
	return d
}

// Reload swaps the serving weights with zero downtime: each worker keeps
// generating with its current replica until every in-flight sequence it
// holds has retired, then installs the new weights at a step boundary and
// resumes admitting. In-flight sequences therefore finish on the weights
// that admitted them, new admissions get the new ones, and nothing is
// dropped. Both caches are versioned, so entries produced by older weights
// can never answer newer requests. The new weights generation number is
// returned; Result.WeightsVersion reports which generation served each
// request.
//
// The architecture must match the serving model's (same replica shapes) —
// a reload is a weights update, not a model swap. On a speculative server
// the current draft weights are re-cloned alongside the new target so the
// pair swaps atomically; ReloadWithDraft updates the draft too.
func (s *Server) Reload(m *model.LM) (uint64, error) {
	return s.ReloadWithDraft(m, nil)
}

// ReloadWithDraft is Reload plus a draft-weights update: target and draft
// install at the same step boundary, so no sequence ever runs a verify round
// with a mismatched pair. A nil draft keeps the current draft weights. Like
// the target, the draft must match the architecture the server started with.
func (s *Server) ReloadWithDraft(m, draft *model.LM) (uint64, error) {
	cur := s.workers[0].arch // immutable after New
	got := m.Cfg
	if got.Vocab != cur.Vocab || got.Dim != cur.Dim || got.Hidden != cur.Hidden ||
		got.RNN != cur.RNN || got.RHNDepth != cur.RHNDepth {
		return 0, fmt.Errorf("serve: reload architecture %+v does not match serving %+v", got, cur)
	}
	if draft != nil {
		if s.draftSrc == nil {
			return 0, errors.New("serve: draft reload on a server without speculative decoding")
		}
		dc, dn := s.draftSrc.Cfg, draft.Cfg
		if dn.Vocab != dc.Vocab || dn.Dim != dc.Dim || dn.Hidden != dc.Hidden ||
			dn.RNN != dc.RNN || dn.RHNDepth != dc.RHNDepth {
			return 0, fmt.Errorf("serve: reload draft architecture %+v does not match serving draft %+v", dn, dc)
		}
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if draft != nil {
		s.draftSrc = model.NewLM(draft.Cfg)
		s.draftSrc.CopyWeightsFrom(draft)
	}
	v := s.version.Add(1)
	for _, w := range s.workers {
		w.pending.Store(&pendingModel{m: s.buildReplica(m), draft: s.buildDraftReplica(), version: v})
	}
	// Drop the old weights' cached work eagerly; the per-entry version
	// tags are what guarantee correctness for anything that races in.
	s.results.reset()
	s.prefix.reset()
	s.reloads.Add(1)
	return v, nil
}

// validate rejects malformed requests before they cost anything.
func (s *Server) validate(req Request, vocab int) error {
	if len(req.Prompt) == 0 {
		return errors.New("serve: empty prompt")
	}
	if len(req.Prompt) > s.cfg.MaxPromptLen {
		return fmt.Errorf("serve: prompt length %d exceeds limit %d", len(req.Prompt), s.cfg.MaxPromptLen)
	}
	if req.N <= 0 {
		return fmt.Errorf("serve: n must be positive, got %d", req.N)
	}
	if req.N > s.cfg.MaxTokens {
		return fmt.Errorf("serve: n %d exceeds limit %d", req.N, s.cfg.MaxTokens)
	}
	for _, id := range req.Prompt {
		if id < 0 || id >= vocab {
			return fmt.Errorf("serve: prompt token %d outside vocabulary %d", id, vocab)
		}
	}
	return req.Opts.Validate()
}

// Submit runs one request to completion (closed-loop callers block here).
// It returns ErrOverloaded when the admission queue is full,
// ErrDeadlineExceeded when the deadline passed before service, ErrShutdown
// when the server closes mid-request, and validation errors verbatim.
func (s *Server) Submit(req Request) (*Result, error) {
	start := time.Now()
	if err := s.validate(req, s.vocab); err != nil {
		return nil, err
	}
	// An already-expired deadline is shed before anything else — including
	// the result cache, so callers see the same outcome for an expired
	// request whether or not it happens to be hot.
	if !req.Deadline.IsZero() && start.After(req.Deadline) {
		s.stats.onShed(true)
		s.tracer.Instant("serve", "expired", 0, start, 0)
		s.flight.Record(slog.LevelWarn, "request expired at admission",
			"deadline_ago", start.Sub(req.Deadline).String(), "n", req.N, "prompt_len", len(req.Prompt))
		return nil, ErrDeadlineExceeded
	}

	// Result-cache fast path: a hot request never touches a worker. With
	// the cache disabled, skip the key construction too — the uncached
	// configurations must not pay for bookkeeping they never use. Entries
	// are tagged with the weights generation that produced them: a stale
	// entry (pre-reload weights) is a miss, never a wrong answer.
	var key string
	if s.results != nil {
		key = resultKey(req.Prompt, req.N, req.Opts, req.Seed)
		cur := s.version.Load()
		if val, ok := s.results.getIf(key, func(v any) bool {
			return v.(*resultEntry).version == cur
		}); ok {
			entry := val.(*resultEntry)
			tokens := append([]int(nil), entry.tokens...)
			lat := time.Since(start)
			s.stats.onComplete(len(tokens), lat)
			return &Result{Tokens: tokens, CacheHit: true, Latency: lat, WeightsVersion: entry.version}, nil
		}
	}

	t := &task{req: req, submitted: start, done: make(chan taskDone, 1)}

	// Enqueue under the read lock so Close (write lock) can guarantee no
	// task lands in the queue after the final drain.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrShutdown
	}
	select {
	case s.queue <- t:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.stats.onShed(false)
		s.tracer.Instant("serve", "shed", 0, time.Now(), 0)
		s.flight.Record(slog.LevelWarn, "request shed: queue full",
			"queue_depth", s.cfg.QueueDepth, "n", req.N, "prompt_len", len(req.Prompt))
		s.flight.Trigger("overload-shed")
		return nil, ErrOverloaded
	}

	d := <-t.done
	if d.err != nil {
		return nil, d.err
	}
	lat := time.Since(start)
	s.stats.onComplete(len(d.tokens), lat)
	if s.results != nil {
		s.results.put(key, &resultEntry{version: d.version, tokens: d.tokens})
	}
	res := &Result{Tokens: append([]int(nil), d.tokens...), PrefixHit: t.prefix, Latency: lat, WeightsVersion: d.version}
	return res, nil
}

// Telemetry returns the registry the server records into — the one passed
// via Config.Telemetry, or the private registry the server created. Serve
// it with telemetry.Handler to expose /metrics.
func (s *Server) Telemetry() *telemetry.Registry { return s.reg }

// Stats returns current serving telemetry, including the evaluation of any
// declared SLOs (Snapshot.SLO).
func (s *Server) Stats() Snapshot {
	snap := s.stats.snapshot()
	if s.slo != nil {
		now := time.Now()
		s.slo.Tick(now)
		snap.SLO = s.slo.Evaluate(now)
	}
	snap.ResultHits, snap.ResultMisses, snap.ResultEvicted, snap.ResultEntries = s.results.counters()
	snap.PrefixHits, snap.PrefixMisses, snap.PrefixEvicted, snap.PrefixEntries = s.prefix.counters()
	snap.WeightsVersion = s.version.Load()
	snap.Reloads = s.reloads.Load()
	snap.Quantized = s.cfg.Quantized
	if s.draftSrc != nil {
		snap.DraftK = s.cfg.DraftK
	}
	return snap
}

// Close stops the workers and fails any queued or in-flight request with
// ErrShutdown. It is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	close(s.stop)
	s.wg.Wait()
	// No Submit can be enqueueing now (closed was set under the write
	// lock), so one final drain sheds everything that raced in.
	for {
		select {
		case t := <-s.queue:
			t.done <- taskDone{err: ErrShutdown}
		default:
			return
		}
	}
}
