// Package serve is the batched inference serving layer: the production
// shape behind the ROADMAP's "serve heavy traffic" goal, built on the same
// Zipf insight the paper (conf_ipps_PatwaryCJHDC19) exploits for training.
//
// Architecture:
//
//   - A bounded admission queue with backpressure: when it is full,
//     requests are shed immediately (ErrOverloaded) instead of piling up
//     goroutines; requests whose deadline passes before service are shed
//     with ErrDeadlineExceeded.
//
//   - Per-worker model replicas running a continuous dynamic batcher: each
//     worker advances up to MaxBatch sequences per forward step through a
//     model.Stepper, admitting new requests into free slots between steps
//     and retiring finished ones, so ragged prompts and different lengths
//     never stall the batch (no head-of-line blocking).
//
//   - Zipf-aware caching: an LRU result cache short-circuits repeated
//     requests entirely, and an LRU prefix cache snapshots post-prompt
//     recurrent states so repeated prompts skip prefill (see cache.go).
//
// The correctness contract, enforced by the tests: every response is
// bit-identical to what sequential model.Generate would produce for that
// request with the same per-request RNG seed, regardless of batch
// composition, scheduling, or cache hits. This falls out of the model
// layer's row-independence guarantee (model.Stepper) plus determinism of
// the per-request sampling RNG.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/sampling"
)

var (
	// ErrOverloaded: the admission queue was full (backpressure shed).
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrDeadlineExceeded: the request's deadline passed before a worker
	// could start it.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before service")
	// ErrShutdown: the server was closed before or during the request.
	ErrShutdown = errors.New("serve: server closed")
)

// Request is one generation call.
type Request struct {
	// Prompt is the non-empty token-id prompt.
	Prompt []int
	// N is the number of tokens to generate (≥ 1).
	N int
	// Opts selects temperature / top-k / top-p decoding.
	Opts sampling.DecodeOpts
	// Seed seeds this request's private sampling RNG — the determinism
	// handle: (Prompt, N, Opts, Seed) fully determines Tokens.
	Seed uint64
	// Deadline, when non-zero, bounds the request's lifetime: it is shed
	// at admission if already past, and abandoned mid-generation at the
	// first step boundary after it passes (partial output discarded) — a
	// disconnected caller cannot wedge a batch slot.
	Deadline time.Time
}

// Result is a completed generation.
type Result struct {
	// Tokens is the generated continuation (caller-owned copy).
	Tokens []int
	// CacheHit: served from the result cache without touching a worker.
	CacheHit bool
	// PrefixHit: prefill was skipped via the prefix cache.
	PrefixHit bool
	// Latency is submit-to-completion wall time.
	Latency time.Duration
}

// Config tunes a Server.
type Config struct {
	// Workers is the number of model replicas, each with its own batcher
	// goroutine (default 1).
	Workers int
	// MaxBatch is the per-worker concurrent-sequence bound (default 8).
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue sheds
	// (default 2 × Workers × MaxBatch).
	QueueDepth int
	// CacheEntries bounds the result cache; 0 disables it.
	CacheEntries int
	// PrefixEntries bounds the prefix cache; 0 disables it.
	PrefixEntries int
	// MaxTokens caps Request.N (default 4096): a batch slot is a scarce
	// resource, so one request must not be able to hold it for an
	// unbounded generation.
	MaxTokens int
	// MaxPromptLen caps prompt length (default 4096), bounding prefill
	// work per request.
	MaxPromptLen int
	// BatchWindow, when positive, lets a worker starting a fresh batch
	// wait up to this long for more arrivals to coalesce (0: step
	// immediately with whatever is queued).
	BatchWindow time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers * c.MaxBatch
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = 4096
	}
	if c.MaxPromptLen <= 0 {
		c.MaxPromptLen = 4096
	}
	return c
}

// task is a queued request plus its completion channel.
type task struct {
	req    Request
	prefix bool // served via prefix cache
	done   chan taskDone
}

type taskDone struct {
	tokens []int
	err    error
}

// Server is the serving subsystem: admission queue, workers, caches, stats.
type Server struct {
	cfg     Config
	queue   chan *task
	stop    chan struct{}
	wg      sync.WaitGroup
	mu      sync.RWMutex // guards closed + enqueue-vs-Close ordering
	closed  bool
	stats   *statsCollector
	results *lruCache
	prefix  *lruCache
	workers []*worker
}

// New builds a Server over the given model. The model is cloned into one
// replica per worker (the §II-B "replicas identical" invariant, now on the
// serving side); the caller's model is not retained and stays free for
// training or evaluation.
func New(m *model.LM, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *task, cfg.QueueDepth),
		stop:    make(chan struct{}),
		stats:   newStatsCollector(cfg.MaxBatch),
		results: newLRUCache(cfg.CacheEntries),
		prefix:  newLRUCache(cfg.PrefixEntries),
	}
	for i := 0; i < cfg.Workers; i++ {
		replica := model.NewLM(m.Cfg)
		replica.CopyWeightsFrom(m)
		w := newWorker(s, replica)
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.loop()
		}()
	}
	return s
}

// validate rejects malformed requests before they cost anything.
func (s *Server) validate(req Request, vocab int) error {
	if len(req.Prompt) == 0 {
		return errors.New("serve: empty prompt")
	}
	if len(req.Prompt) > s.cfg.MaxPromptLen {
		return fmt.Errorf("serve: prompt length %d exceeds limit %d", len(req.Prompt), s.cfg.MaxPromptLen)
	}
	if req.N <= 0 {
		return fmt.Errorf("serve: n must be positive, got %d", req.N)
	}
	if req.N > s.cfg.MaxTokens {
		return fmt.Errorf("serve: n %d exceeds limit %d", req.N, s.cfg.MaxTokens)
	}
	for _, id := range req.Prompt {
		if id < 0 || id >= vocab {
			return fmt.Errorf("serve: prompt token %d outside vocabulary %d", id, vocab)
		}
	}
	return req.Opts.Validate()
}

// Submit runs one request to completion (closed-loop callers block here).
// It returns ErrOverloaded when the admission queue is full,
// ErrDeadlineExceeded when the deadline passed before service, ErrShutdown
// when the server closes mid-request, and validation errors verbatim.
func (s *Server) Submit(req Request) (*Result, error) {
	start := time.Now()
	if err := s.validate(req, s.workers[0].m.Cfg.Vocab); err != nil {
		return nil, err
	}
	// An already-expired deadline is shed before anything else — including
	// the result cache, so callers see the same outcome for an expired
	// request whether or not it happens to be hot.
	if !req.Deadline.IsZero() && start.After(req.Deadline) {
		s.stats.onShed(true)
		return nil, ErrDeadlineExceeded
	}

	// Result-cache fast path: a hot request never touches a worker. With
	// the cache disabled, skip the key construction too — the uncached
	// configurations must not pay for bookkeeping they never use.
	var key string
	if s.results != nil {
		key = resultKey(req.Prompt, req.N, req.Opts, req.Seed)
		if val, ok := s.results.get(key); ok {
			tokens := append([]int(nil), val.([]int)...)
			lat := time.Since(start)
			s.stats.onComplete(len(tokens), lat)
			return &Result{Tokens: tokens, CacheHit: true, Latency: lat}, nil
		}
	}

	t := &task{req: req, done: make(chan taskDone, 1)}

	// Enqueue under the read lock so Close (write lock) can guarantee no
	// task lands in the queue after the final drain.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrShutdown
	}
	select {
	case s.queue <- t:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.stats.onShed(false)
		return nil, ErrOverloaded
	}

	d := <-t.done
	if d.err != nil {
		return nil, d.err
	}
	lat := time.Since(start)
	s.stats.onComplete(len(d.tokens), lat)
	if s.results != nil {
		s.results.put(key, d.tokens)
	}
	res := &Result{Tokens: append([]int(nil), d.tokens...), PrefixHit: t.prefix, Latency: lat}
	return res, nil
}

// Stats returns current serving telemetry.
func (s *Server) Stats() Snapshot {
	snap := s.stats.snapshot()
	snap.ResultHits, snap.ResultMisses, snap.ResultEvicted, snap.ResultEntries = s.results.counters()
	snap.PrefixHits, snap.PrefixMisses, snap.PrefixEvicted, snap.PrefixEntries = s.prefix.counters()
	return snap
}

// Close stops the workers and fails any queued or in-flight request with
// ErrShutdown. It is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	close(s.stop)
	s.wg.Wait()
	// No Submit can be enqueueing now (closed was set under the write
	// lock), so one final drain sheds everything that raced in.
	for {
		select {
		case t := <-s.queue:
			t.done <- taskDone{err: ErrShutdown}
		default:
			return
		}
	}
}
