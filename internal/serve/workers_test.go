package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

// TestComputeWorkersBitIdentical extends the serving acceptance contract to
// the tiled backend: with ComputeWorkers > 1 every response must still be
// exactly what sequential model.Generate produces, across architectures and
// reloads (the reload replicas inherit the server's backend).
func TestComputeWorkersBitIdentical(t *testing.T) {
	for name, m := range map[string]*model.LM{"lstm": lstmModel(), "rhn": rhnModel()} {
		for _, computeWorkers := range []int{2, 4} {
			s := New(m, Config{MaxBatch: 4, ComputeWorkers: computeWorkers, QueueDepth: 64, PrefixEntries: 8})

			var reqs []Request
			r := rng.New(55)
			for i := 0; i < 16; i++ {
				prompt := make([]int, 1+r.Intn(5))
				for j := range prompt {
					prompt[j] = r.Intn(m.Cfg.Vocab)
				}
				opts := sampling.DecodeOpts{}
				if i%2 == 1 {
					opts.Temperature = 0.9
				}
				reqs = append(reqs, Request{Prompt: prompt, N: 1 + r.Intn(8), Opts: opts, Seed: uint64(i) + 1})
			}

			var wg sync.WaitGroup
			errs := make([]error, len(reqs))
			got := make([][]int, len(reqs))
			for i, req := range reqs {
				wg.Add(1)
				go func(i int, req Request) {
					defer wg.Done()
					res, err := s.Submit(req)
					if err != nil {
						errs[i] = err
						return
					}
					got[i] = res.Tokens
				}(i, req)
			}
			wg.Wait()

			check := func(stage string) {
				for i, req := range reqs {
					if errs[i] != nil {
						t.Fatalf("%s compute=%d %s req %d failed: %v", name, computeWorkers, stage, i, errs[i])
					}
					want := reference(m, req)
					if len(got[i]) != len(want) {
						t.Fatalf("%s compute=%d %s req %d: %d tokens, want %d", name, computeWorkers, stage, i, len(got[i]), len(want))
					}
					for j := range want {
						if got[i][j] != want[j] {
							t.Fatalf("%s compute=%d %s req %d token %d: served %d != sequential %d",
								name, computeWorkers, stage, i, j, got[i][j], want[j])
						}
					}
				}
			}
			check("initial")

			// After a reload the fresh replicas must compute through the
			// same backend — same weights here, so same expected tokens.
			if _, err := s.Reload(m); err != nil {
				t.Fatal(err)
			}
			for i, req := range reqs {
				res, err := s.Submit(req)
				errs[i] = err
				if err == nil {
					got[i] = res.Tokens
				}
			}
			check("post-reload")
			s.Close()
		}
	}
}

// TestExpiredInFlightStats pins the telemetry split: a deadline that passes
// mid-generation counts as ExpiredInFlight with its partial output in
// DiscardedTokens, while a deadline that was already past at submission
// counts as Expired only.
func TestExpiredInFlightStats(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxBatch: 2, MaxTokens: 1 << 20})
	defer s.Close()

	// Pre-service expiry: no forward pass, no in-flight count.
	pre := Request{Prompt: []int{1}, N: 4, Seed: 1, Deadline: time.Now().Add(-time.Second)}
	if _, err := s.Submit(pre); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want ErrDeadlineExceeded", err)
	}
	snap := s.Stats()
	if snap.Expired != 1 || snap.ExpiredInFlight != 0 || snap.DiscardedTokens != 0 {
		t.Fatalf("pre-service expiry: Expired=%d ExpiredInFlight=%d DiscardedTokens=%d, want 1/0/0",
			snap.Expired, snap.ExpiredInFlight, snap.DiscardedTokens)
	}

	// In-flight expiry: a generation far too long to finish before its
	// deadline, which is itself comfortably past admission. Steps on this
	// model take microseconds, so by the 50ms mark the sequence has
	// generated (and must discard) many tokens without nearing N.
	mid := Request{Prompt: []int{1}, N: 1 << 20, Seed: 2, Deadline: time.Now().Add(50 * time.Millisecond)}
	if _, err := s.Submit(mid); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("mid-flight deadline returned %v, want ErrDeadlineExceeded", err)
	}
	snap = s.Stats()
	if snap.Expired != 2 {
		t.Fatalf("Expired = %d, want 2", snap.Expired)
	}
	if snap.ExpiredInFlight != 1 {
		t.Fatalf("ExpiredInFlight = %d, want 1", snap.ExpiredInFlight)
	}
	if snap.DiscardedTokens == 0 {
		t.Fatal("DiscardedTokens = 0, want the abandoned partial output counted")
	}
}

// TestCoalesceLingerHonorsDeadline guards the linger fix: a worker waiting
// out BatchWindow for more arrivals must still shed an admitted sequence
// the moment its deadline passes, not BatchWindow later.
func TestCoalesceLingerHonorsDeadline(t *testing.T) {
	m := lstmModel()
	const window = 2 * time.Second
	s := New(m, Config{MaxBatch: 4, BatchWindow: window})
	defer s.Close()

	start := time.Now()
	req := Request{Prompt: []int{1}, N: 8, Seed: 3, Deadline: start.Add(30 * time.Millisecond)}
	_, err := s.Submit(req)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("lingering expired request returned %v, want ErrDeadlineExceeded", err)
	}
	if elapsed >= window {
		t.Fatalf("expiry took %v — the worker sat out the whole %v batch window", elapsed, window)
	}
	if snap := s.Stats(); snap.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", snap.Expired)
	}
}
