package serve

import (
	"sync"
	"testing"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

// reloadModels returns two same-architecture models with different
// weights — the "before" and "after" of a checkpoint reload.
func reloadModels() (v1, v2 *model.LM) {
	cfg := model.Config{Vocab: 120, Dim: 12, Hidden: 18, RNN: model.KindLSTM, Seed: 21}
	v1 = model.NewLM(cfg)
	cfg2 := cfg
	cfg2.Seed = 77
	v2 = model.NewLM(cfg2)
	v2.Cfg.Seed = cfg.Seed // same architecture identity, different weights
	return v1, v2
}

// TestReloadBitIdenticalAcrossBoundary is the hot-reload acceptance
// contract: requests issued concurrently with a Reload must each be
// bit-identical to sequential generation on whichever weights generation
// admitted them (reported in Result.WeightsVersion), with zero sheds
// attributable to the reload. Run under -race in CI, this also proves the
// swap is properly synchronized with the batchers.
func TestReloadBitIdenticalAcrossBoundary(t *testing.T) {
	m1, m2 := reloadModels()
	s := New(m1, Config{Workers: 2, MaxBatch: 4, QueueDepth: 256, CacheEntries: 64, PrefixEntries: 32})
	defer s.Close()

	makeReqs := func(n int, seedBase uint64) []Request {
		r := rng.New(seedBase)
		reqs := make([]Request, n)
		for i := range reqs {
			prompt := make([]int, 1+r.Intn(5))
			for j := range prompt {
				prompt[j] = r.Intn(m1.Cfg.Vocab)
			}
			opts := sampling.DecodeOpts{}
			if i%3 == 1 {
				opts.Temperature = 0.9
			}
			reqs[i] = Request{Prompt: prompt, N: 2 + r.Intn(8), Opts: opts, Seed: seedBase + uint64(i)}
		}
		return reqs
	}

	check := func(t *testing.T, req Request, res *Result) {
		t.Helper()
		var ref []int
		switch res.WeightsVersion {
		case 1:
			ref = m1.GenerateOpts(req.Prompt, req.N, req.Opts, rng.New(req.Seed))
		case 2:
			ref = m2.GenerateOpts(req.Prompt, req.N, req.Opts, rng.New(req.Seed))
		default:
			t.Errorf("unknown weights version %d", res.WeightsVersion)
			return
		}
		if len(res.Tokens) != len(ref) {
			t.Errorf("v%d: got %d tokens, want %d", res.WeightsVersion, len(res.Tokens), len(ref))
			return
		}
		for i := range ref {
			if res.Tokens[i] != ref[i] {
				t.Errorf("v%d: token %d differs from sequential generation", res.WeightsVersion, i)
				return
			}
		}
	}

	// Wave 1 races with the Reload: each response may legitimately land on
	// either generation and must match that generation exactly.
	wave1 := makeReqs(48, 1000)
	var wg sync.WaitGroup
	results1 := make([]*Result, len(wave1))
	for i, req := range wave1 {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			res, err := s.Submit(req)
			if err != nil {
				t.Errorf("wave1 request %d shed: %v", i, err)
				return
			}
			results1[i] = res
		}(i, req)
	}
	time.Sleep(time.Millisecond)
	v, err := s.Reload(m2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("reload returned version %d", v)
	}
	wg.Wait()
	for i, res := range results1 {
		if res != nil {
			check(t, wave1[i], res)
		}
	}

	// Wave 2 is submitted strictly after Reload returned: a worker never
	// admits on old weights once its pending swap is set, so every
	// response must carry version 2 — including repeats of wave-1
	// requests, which must not be served from the stale result cache.
	wave2 := append(makeReqs(24, 2000), wave1[:8]...)
	results2 := make([]*Result, len(wave2))
	for i, req := range wave2 {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			res, err := s.Submit(req)
			if err != nil {
				t.Errorf("wave2 request %d shed: %v", i, err)
				return
			}
			results2[i] = res
		}(i, req)
	}
	wg.Wait()
	for i, res := range results2 {
		if res == nil {
			continue
		}
		if res.WeightsVersion != 2 {
			t.Errorf("wave2 request %d served by weights v%d after reload", i, res.WeightsVersion)
		}
		check(t, wave2[i], res)
	}

	snap := s.Stats()
	if snap.Shed != 0 || snap.Expired != 0 {
		t.Errorf("reload shed traffic: %d shed, %d expired", snap.Shed, snap.Expired)
	}
	if snap.WeightsVersion != 2 || snap.Reloads != 1 {
		t.Errorf("stats report version %d after %d reloads", snap.WeightsVersion, snap.Reloads)
	}
}

// TestReloadInvalidatesCaches: a request answered from cache before a
// reload must be regenerated on the new weights afterwards — both the
// result cache and the prefix cache are generation-tagged.
func TestReloadInvalidatesCaches(t *testing.T) {
	m1, m2 := reloadModels()
	s := New(m1, Config{MaxBatch: 2, QueueDepth: 16, CacheEntries: 16, PrefixEntries: 8})
	defer s.Close()

	req := Request{Prompt: []int{3, 1, 4}, N: 6, Opts: sampling.DecodeOpts{Temperature: 0.8}, Seed: 5}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Same request again: hot, and on v1.
	again, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.WeightsVersion != 1 {
		t.Fatalf("expected a v1 cache hit, got %+v", again)
	}
	if _, err := s.Reload(m2); err != nil {
		t.Fatal(err)
	}
	after, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("post-reload request served from the stale result cache")
	}
	if after.WeightsVersion != 2 {
		t.Fatalf("post-reload request served by v%d", after.WeightsVersion)
	}
	want := m2.GenerateOpts(req.Prompt, req.N, req.Opts, rng.New(req.Seed))
	for i := range want {
		if after.Tokens[i] != want[i] {
			t.Fatal("post-reload response not bit-identical to the new weights (stale prefix state?)")
		}
	}
	_ = first
}

// TestReloadRejectsMismatchedArchitecture: a reload is a weights update,
// not a model swap.
func TestReloadRejectsMismatchedArchitecture(t *testing.T) {
	m1, _ := reloadModels()
	s := New(m1, Config{})
	defer s.Close()
	other := model.NewLM(model.Config{Vocab: 120, Dim: 12, Hidden: 20, RNN: model.KindLSTM, Seed: 1})
	if _, err := s.Reload(other); err == nil {
		t.Fatal("mismatched hidden size must be rejected")
	}
	otherV := model.NewLM(model.Config{Vocab: 90, Dim: 12, Hidden: 18, RNN: model.KindLSTM, Seed: 1})
	if _, err := s.Reload(otherV); err == nil {
		t.Fatal("mismatched vocabulary must be rejected")
	}
}
