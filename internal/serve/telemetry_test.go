package serve

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"zipflm/internal/sampling"
	"zipflm/internal/telemetry"
)

// TestTelemetryRegistryParity: Snapshot reads from the telemetry registry,
// so every Snapshot counter must equal the corresponding registry
// instrument — one source of truth for /v1/stats and /metrics — and
// responses must stay bit-identical to the uninstrumented sequential path.
func TestTelemetryRegistryParity(t *testing.T) {
	m := lstmModel()
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)
	s := New(m, Config{Workers: 1, MaxBatch: 4, CacheEntries: 8, Telemetry: reg, Tracer: tracer})
	defer s.Close()

	req := Request{Prompt: []int{3, 1, 4}, N: 6, Opts: sampling.DecodeOpts{Temperature: 0.8, TopK: 12}, Seed: 42}
	want := reference(m, req)
	for i := 0; i < 3; i++ { // first generates, rest hit the result cache
		res, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		for j, tok := range res.Tokens {
			if tok != want[j] {
				t.Fatalf("submit %d: token %d = %d, want %d (telemetry perturbed generation)", i, j, tok, want[j])
			}
		}
	}

	snap := s.Stats()
	checks := []struct {
		name string
		reg  int64
		snap uint64
	}{
		{"zipflm_serve_accepted_total", reg.Counter("zipflm_serve_accepted_total").Value(), snap.Accepted},
		{"zipflm_serve_completed_total", reg.Counter("zipflm_serve_completed_total").Value(), snap.Completed},
		{"zipflm_serve_tokens_total", reg.Counter("zipflm_serve_tokens_total").Value(), snap.Tokens},
		{"zipflm_serve_shed_total", reg.Counter("zipflm_serve_shed_total").Value(), snap.Shed},
		{"zipflm_serve_expired_total", reg.Counter("zipflm_serve_expired_total").Value(), snap.Expired},
	}
	for _, c := range checks {
		if c.reg != int64(c.snap) {
			t.Errorf("%s: registry %d != snapshot %d", c.name, c.reg, c.snap)
		}
	}
	if snap.Completed != 3 || snap.Accepted != 1 {
		t.Fatalf("want 3 completed / 1 accepted (2 cache hits), got %d/%d", snap.Completed, snap.Accepted)
	}
	if snap.Tokens != 18 {
		t.Fatalf("want 18 tokens, got %d", snap.Tokens)
	}
	if got := reg.Duration("zipflm_serve_latency_seconds").Count(); got != 3 {
		t.Fatalf("latency histogram has %d observations, want 3", got)
	}
	if snap.LatencyP50 <= 0 || snap.LatencyMean <= 0 {
		t.Fatalf("latency quantiles not populated: p50=%v mean=%v", snap.LatencyP50, snap.LatencyMean)
	}

	// The private-registry default behaves identically: Stats still works
	// and Telemetry() exposes the registry.
	s2 := New(m, Config{Workers: 1})
	defer s2.Close()
	if s2.Telemetry() == nil {
		t.Fatal("server without Config.Telemetry must own a private registry")
	}
	if _, err := s2.Submit(req); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Completed; got != 1 {
		t.Fatalf("private-registry server: completed = %d, want 1", got)
	}
}

// TestTelemetryPrometheusExposition: the shared registry serves the cache /
// queue gauges (folded in at collect time) and the serve counters in
// Prometheus text format.
func TestTelemetryPrometheusExposition(t *testing.T) {
	m := lstmModel()
	reg := telemetry.NewRegistry()
	s := New(m, Config{Workers: 1, CacheEntries: 4, Telemetry: reg})
	defer s.Close()
	req := Request{Prompt: []int{5, 9}, N: 3, Seed: 7}
	if _, err := s.Submit(req); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req); err != nil { // result-cache hit
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"zipflm_serve_completed_total 2",
		"zipflm_serve_result_cache_hits 1",
		"zipflm_serve_result_cache_entries 1",
		"zipflm_serve_queue_depth 0",
		"zipflm_serve_weights_version 1",
		"zipflm_serve_latency_seconds_count 2",
		`zipflm_serve_batch_steps_total{batch="1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTelemetryRequestSpans: every generated (non-cache-hit) completion
// leaves a queue + prefill + decode span triple; expiries leave instants.
func TestTelemetryRequestSpans(t *testing.T) {
	m := lstmModel()
	tracer := telemetry.NewTracer(0)
	s := New(m, Config{Workers: 1, Tracer: tracer})
	for i := 0; i < 4; i++ {
		req := Request{Prompt: []int{i + 1, i + 2}, N: 3, Seed: uint64(i)}
		if _, err := s.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	// An expired deadline at submission leaves an instant, not spans.
	_, err := s.Submit(Request{Prompt: []int{1}, N: 1, Seed: 1, Deadline: time.Now().Add(-time.Second)})
	if err != ErrDeadlineExceeded {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	s.Close()

	byName := map[string]int{}
	for _, e := range tracer.Events() {
		if e.Cat == "serve" {
			byName[e.Name]++
		}
		if e.Phase == 'X' && e.Dur < 0 {
			t.Errorf("span %s has negative duration %v", e.Name, e.Dur)
		}
	}
	for _, name := range []string{"queue", "prefill", "decode"} {
		if byName[name] != 4 {
			t.Errorf("span %q recorded %d times, want 4", name, byName[name])
		}
	}
	if byName["expired"] != 1 {
		t.Errorf("expired instant recorded %d times, want 1", byName["expired"])
	}
}

// TestSLOAndFlightBitIdentity: with SLOs, flight recording, and tracing
// all enabled the served tokens stay bit-identical to the sequential
// reference, the SLO block appears in Stats, and overload anomalies land
// in the flight ring — observation never perturbs.
func TestSLOAndFlightBitIdentity(t *testing.T) {
	m := lstmModel()
	flight := telemetry.NewFlight(32)
	var dump strings.Builder
	flight.SetSink(&dump)
	s := New(m, Config{
		Workers:         1,
		Tracer:          telemetry.NewTracer(0),
		Flight:          flight,
		SLOTargetP99:    2 * time.Second,
		SLOAvailability: 0.5,
	})
	defer s.Close()

	req := Request{Prompt: []int{3, 1, 4}, N: 6, Opts: sampling.DecodeOpts{Temperature: 0.8, TopK: 12}, Seed: 42}
	want := reference(m, req)
	res, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for j, tok := range res.Tokens {
		if tok != want[j] {
			t.Fatalf("token %d = %d, want %d (SLO/flight perturbed generation)", j, tok, want[j])
		}
	}

	// The SLO block evaluates both objectives, in declaration order.
	snap := s.Stats()
	if len(snap.SLO) != 2 {
		t.Fatalf("SLO statuses = %+v, want 2", snap.SLO)
	}
	if snap.SLO[0].Name != "latency_p99" || snap.SLO[1].Name != "availability" {
		t.Fatalf("SLO order = %s, %s", snap.SLO[0].Name, snap.SLO[1].Name)
	}
	for _, st := range snap.SLO {
		if !st.Compliant {
			t.Errorf("one healthy request should not violate %s: %s", st.Name, st.String())
		}
	}
	// And /metrics publishes the gauges.
	var b strings.Builder
	if err := s.Telemetry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `zipflm_slo_compliant{slo="latency_p99"} 1`) {
		t.Errorf("/metrics missing SLO gauges:\n%s", b.String())
	}

	// An admission-expired request records into the flight ring.
	_, err = s.Submit(Request{Prompt: []int{1}, N: 1, Seed: 1, Deadline: time.Now().Add(-time.Second)})
	if err != ErrDeadlineExceeded {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if flight.Recorded() == 0 {
		t.Fatal("expiry did not record into the flight ring")
	}
}

// TestSnapshotFieldParity pins the exported Snapshot field set: the /v1/stats
// JSON is built from these fields, so removing or renaming one is a
// backward-compatibility break that must be deliberate.
func TestSnapshotFieldParity(t *testing.T) {
	want := []string{
		"Uptime", "Accepted", "Completed", "Shed", "Expired",
		"ExpiredInFlight", "DiscardedTokens", "Tokens",
		"LatencyP50", "LatencyP99", "LatencyMean",
		"MeanBatch", "BatchDist",
		"ResultHits", "ResultMisses", "ResultEvicted", "ResultEntries",
		"PrefixHits", "PrefixMisses", "PrefixEvicted", "PrefixEntries",
		"WeightsVersion", "Reloads", "Quantized", "DraftK",
		"SpecRounds", "DraftProposed", "DraftAccepted", "DraftSteps",
		"SLO",
	}
	typ := reflect.TypeOf(Snapshot{})
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		got = append(got, typ.Field(i).Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot fields changed:\n got %v\nwant %v", got, want)
	}
}

// TestObservatoryBitIdentity: the performance-observatory acceptance
// contract — with metrics-history sampling AND continuous profiling both
// running over the serving registry, generated tokens stay bit-identical
// to the sequential reference, and both observers actually captured the
// run.
func TestObservatoryBitIdentity(t *testing.T) {
	m := lstmModel()
	reg := telemetry.NewRegistry()
	s := New(m, Config{Workers: 1, MaxBatch: 4, CacheEntries: 8, Telemetry: reg})
	defer s.Close()

	hist := telemetry.NewHistory(reg, telemetry.HistoryConfig{Capacity: 64, Interval: time.Millisecond})
	stopHist := hist.Start()
	prof, err := telemetry.NewProfiler(telemetry.ProfilerConfig{Dir: t.TempDir(), Heap: true})
	if err != nil {
		t.Fatal(err)
	}
	stopPhase := prof.StartPhase("serve-bitident")

	req := Request{Prompt: []int{3, 1, 4}, N: 6, Opts: sampling.DecodeOpts{Temperature: 0.8, TopK: 12}, Seed: 42}
	want := reference(m, req)
	for i := 0; i < 3; i++ { // generate once, then hit the result cache
		res, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		for j, tok := range res.Tokens {
			if tok != want[j] {
				t.Fatalf("submit %d: token %d = %d, want %d (observatory perturbed generation)", i, j, tok, want[j])
			}
		}
	}

	stopPhase()
	stopHist()
	prof.Stop()

	// Both observers saw the run: the history holds samples whose counters
	// reflect the submissions, and the profiler indexed its captures.
	samples := hist.Samples()
	if len(samples) == 0 {
		t.Fatal("history sampled nothing")
	}
	last := samples[len(samples)-1]
	if last.Counters["zipflm_serve_completed_total"] != 3 {
		t.Fatalf("final history sample completed=%d, want 3", last.Counters["zipflm_serve_completed_total"])
	}
	entries := prof.Manifest()
	if len(entries) != 2 {
		t.Fatalf("profiler manifest has %d entries, want cpu+heap: %+v", len(entries), entries)
	}
}
