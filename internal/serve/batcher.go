package serve

import (
	"runtime"
	"sync/atomic"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

// seq is one request in flight on a worker: its explicit recurrent state,
// its private sampling RNG, and its progress. The feeding schedule mirrors
// sequential model.Generate exactly — tokens fed are prompt[0..P-1] then
// out[0..N-2], and one RNG variate is drawn per emitted token — so the
// token stream is bit-identical to the sequential path by construction.
type seq struct {
	t     *task
	state *model.GenState
	r     *rng.RNG
	fed   int   // tokens fed so far (prompt first, then own output)
	out   []int // generated tokens
}

// nextInput returns the token this sequence feeds on the next step.
func (q *seq) nextInput() int {
	if q.fed < len(q.t.req.Prompt) {
		return q.t.req.Prompt[q.fed]
	}
	return q.out[q.fed-len(q.t.req.Prompt)]
}

// pendingModel is a reload in flight: the worker installs it at the next
// step boundary where it holds no in-flight sequences.
type pendingModel struct {
	m       *model.LM
	version uint64
}

// worker owns one model replica and runs the continuous batching loop:
// admit into free slots, step the whole batch one token, sample and retire,
// repeat. Sequences join and leave at any step boundary, so a long request
// never blocks a short one and fresh arrivals start mid-flight.
//
// A Reload parks a replacement replica in pending. The worker then stops
// admitting (in-flight sequences keep stepping on the current weights,
// retiring normally), and the moment its batch is empty it swaps model,
// stepper, and version and resumes admitting — so every sequence runs
// start-to-finish on one weights generation, and nothing is shed.
type worker struct {
	s       *Server
	m       *model.LM
	arch    model.Config // immutable architecture, read by Reload for validation
	version uint64       // weights generation of w.m (worker-goroutine owned)
	pending atomic.Pointer[pendingModel]
	stepper *model.Stepper
	dec     *sampling.Decoder
	active  []*seq
	ids     []int
	states  []*model.GenState
}

func newWorker(s *Server, m *model.LM) *worker {
	return &worker{
		s:       s,
		m:       m,
		arch:    m.Cfg,
		version: 1,
		stepper: m.NewStepper(s.cfg.MaxBatch),
		dec:     sampling.NewDecoder(m.Cfg.Vocab),
		ids:     make([]int, s.cfg.MaxBatch),
		states:  make([]*model.GenState, s.cfg.MaxBatch),
	}
}

// maybeSwap installs a pending reload. Callers guarantee the batch is
// empty, so no in-flight sequence ever crosses a weights boundary.
func (w *worker) maybeSwap() {
	p := w.pending.Swap(nil)
	if p == nil {
		return
	}
	w.m = p.m
	w.stepper = p.m.NewStepper(w.s.cfg.MaxBatch)
	w.version = p.version
}

func (w *worker) loop() {
	for {
		if len(w.active) == 0 {
			w.maybeSwap()
			// Idle: block for work or shutdown.
			select {
			case t := <-w.s.queue:
				// A reload may have landed while blocked; install it before
				// admitting so this request gets the new weights.
				w.maybeSwap()
				w.admit(t)
				w.coalesce()
			case <-w.s.stop:
				w.drain()
				return
			}
		} else {
			// Busy: top up free slots without blocking the batch. The
			// explicit yield matters on few cores — steps are microseconds,
			// so without it the batcher can starve the very submitters
			// whose requests would fill the batch, and coalescing never
			// happens.
			runtime.Gosched()
			select {
			case <-w.s.stop:
				w.drain()
				return
			default:
			}
			if w.pending.Load() == nil {
				// With a reload pending, stop admitting and let the batch
				// drain on the current weights.
				w.fill()
			}
		}
		if len(w.active) > 0 {
			w.step()
		}
	}
}

// fill admits queued tasks into free slots without waiting.
func (w *worker) fill() {
	for len(w.active) < w.s.cfg.MaxBatch {
		select {
		case t := <-w.s.queue:
			w.admit(t)
		default:
			return
		}
	}
}

// coalesce optionally lingers up to BatchWindow after starting a fresh
// batch, trading first-token latency for batch occupancy. A reload arriving
// mid-linger ends it: the sooner the batch drains, the sooner the new
// weights install. Deadlines are honored during the linger too — the
// worker wakes at the soonest in-flight deadline and sheds it there,
// rather than letting an expired sequence wait out the window only to be
// discarded at the first step.
func (w *worker) coalesce() {
	if w.s.cfg.BatchWindow <= 0 {
		w.fill()
		return
	}
	window := time.NewTimer(w.s.cfg.BatchWindow)
	defer window.Stop()
	for len(w.active) < w.s.cfg.MaxBatch && w.pending.Load() == nil {
		var (
			expiry   <-chan time.Time
			expTimer *time.Timer
		)
		if d, ok := w.soonestDeadline(); ok {
			expTimer = time.NewTimer(time.Until(d))
			expiry = expTimer.C
		}
		select {
		case t := <-w.s.queue:
			w.admit(t)
		case <-expiry:
			w.expire(time.Now())
			if len(w.active) == 0 {
				return
			}
		case <-window.C:
			if expTimer != nil {
				expTimer.Stop()
			}
			return
		case <-w.s.stop:
			if expTimer != nil {
				expTimer.Stop()
			}
			return
		}
		if expTimer != nil {
			expTimer.Stop()
		}
	}
}

// soonestDeadline returns the earliest deadline among active sequences.
func (w *worker) soonestDeadline() (time.Time, bool) {
	var min time.Time
	for _, q := range w.active {
		if d := q.t.req.Deadline; !d.IsZero() && (min.IsZero() || d.Before(min)) {
			min = d
		}
	}
	return min, !min.IsZero()
}

// admit turns a task into an active sequence — unless its deadline already
// passed (deadline shedding) or the prefix cache lets it skip prefill (and
// possibly complete instantly for N == 1).
func (w *worker) admit(t *task) {
	req := t.req
	if !req.Deadline.IsZero() && time.Now().After(req.Deadline) {
		w.s.stats.onShed(true)
		t.done <- taskDone{err: ErrDeadlineExceeded}
		return
	}
	w.s.stats.onAccept()

	q := &seq{t: t, r: rng.New(req.Seed), out: make([]int, 0, req.N)}

	if val, ok := w.prefixLookup(req.Prompt); ok {
		// Hot prompt: restore the post-prompt state and draw the first
		// token from the cached logits, exactly as the sequential path
		// would after consuming the prompt.
		pe := val.(*prefixEntry)
		q.state = pe.state.Clone()
		q.fed = len(req.Prompt)
		t.prefix = true
		q.out = append(q.out, w.dec.Sample(pe.logits, req.Opts, q.r))
		if len(q.out) == req.N {
			t.done <- taskDone{tokens: q.out, version: w.version}
			return
		}
	} else {
		q.state = w.m.NewGenState()
	}
	w.active = append(w.active, q)
}

// prefixLookup consults the prefix cache, skipping even the key build when
// the cache is disabled (uncached configurations must not pay for cache
// bookkeeping). Entries snapshotted by a different weights generation are
// misses: an old-weights state must never seed a new-weights generation.
func (w *worker) prefixLookup(prompt []int) (any, bool) {
	if w.s.prefix == nil {
		return nil, false
	}
	return w.s.prefix.getIf(prefixKey(prompt), func(v any) bool {
		return v.(*prefixEntry).version == w.version
	})
}

// step advances every active sequence one token: one batched forward, then
// per-sequence sampling and retirement. Sequences whose deadline passed are
// abandoned first — a dead caller must not keep occupying a batch slot.
func (w *worker) step() {
	w.expire(time.Now())
	if len(w.active) == 0 {
		return
	}
	b := len(w.active)
	for i, q := range w.active {
		w.ids[i] = q.nextInput()
		w.states[i] = q.state
	}
	lg := w.stepper.Step(w.ids[:b], w.states[:b])
	w.s.stats.onBatchStep(b)

	n := 0
	for i := 0; i < b; i++ {
		q := w.active[i]
		q.fed++
		p := len(q.t.req.Prompt)
		if q.fed >= p {
			row := lg.Row(i)
			if q.fed == p {
				// Prompt just finished: snapshot for future requests
				// sharing it (state and logits are copied, so later
				// mutation of the live sequence cannot corrupt it).
				if w.s.prefix != nil {
					w.s.prefix.put(prefixKey(q.t.req.Prompt), &prefixEntry{
						state:   q.state.Clone(),
						logits:  append([]float32(nil), row...),
						version: w.version,
					})
				}
			}
			q.out = append(q.out, w.dec.Sample(row, q.t.req.Opts, q.r))
			if len(q.out) == q.t.req.N {
				q.t.done <- taskDone{tokens: q.out, version: w.version}
				continue // retire
			}
		}
		w.active[n] = q
		n++
	}
	for i := n; i < b; i++ {
		w.active[i] = nil
	}
	w.active = w.active[:n]
}

// expire sheds active sequences whose deadline has passed (partial output
// discarded, and counted: ExpiredInFlight / DiscardedTokens separate the
// sequences that wasted forward passes from the ones shed before service).
func (w *worker) expire(now time.Time) {
	n := 0
	for _, q := range w.active {
		if d := q.t.req.Deadline; !d.IsZero() && now.After(d) {
			w.s.stats.onExpire(len(q.out))
			q.t.done <- taskDone{err: ErrDeadlineExceeded}
			continue
		}
		w.active[n] = q
		n++
	}
	for i := n; i < len(w.active); i++ {
		w.active[i] = nil
	}
	w.active = w.active[:n]
}

// drain fails everything this worker still holds; the server drains the
// shared queue after all workers exit.
func (w *worker) drain() {
	for _, q := range w.active {
		q.t.done <- taskDone{err: ErrShutdown}
	}
	w.active = w.active[:0]
}
