package serve

import (
	"log/slog"
	"runtime"
	"sync/atomic"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
	"zipflm/internal/tensor"
)

// seq is one request in flight on a worker: its explicit recurrent state,
// its private sampling RNG, and its progress. The feeding schedule mirrors
// sequential model.Generate exactly — tokens fed are prompt[0..P-1] then
// out[0..N-2], and one RNG variate is drawn per emitted token — so the
// token stream is bit-identical to the sequential path by construction.
type seq struct {
	t     *task
	state *model.GenState
	// dstate is the draft model's state for this sequence (speculative
	// servers only), kept in lockstep with state: both have always consumed
	// exactly the same tokens.
	dstate *model.GenState
	r      *rng.RNG
	fed    int   // tokens fed so far (prompt first, then own output)
	out    []int // generated tokens
	// Trace timestamps, populated only when the server has a tracer:
	// admitted ends the queue span; prefillEnd splits prefill from decode.
	admitted   time.Time
	prefillEnd time.Time
}

// nextInput returns the token this sequence feeds on the next step.
func (q *seq) nextInput() int {
	if q.fed < len(q.t.req.Prompt) {
		return q.t.req.Prompt[q.fed]
	}
	return q.out[q.fed-len(q.t.req.Prompt)]
}

// pendingModel is a reload in flight: the worker installs it at the next
// step boundary where it holds no in-flight sequences. On a speculative
// server it carries the draft replica too, so target and draft always swap
// as a pair.
type pendingModel struct {
	m       *model.LM
	draft   *model.LM // nil unless speculative decoding is configured
	version uint64
}

// worker owns one model replica and runs the continuous batching loop:
// admit into free slots, step the whole batch one token, sample and retire,
// repeat. Sequences join and leave at any step boundary, so a long request
// never blocks a short one and fresh arrivals start mid-flight.
//
// A Reload parks a replacement replica in pending. The worker then stops
// admitting (in-flight sequences keep stepping on the current weights,
// retiring normally), and the moment its batch is empty it swaps model,
// stepper, and version and resumes admitting — so every sequence runs
// start-to-finish on one weights generation, and nothing is shed.
type worker struct {
	s       *Server
	id      int // worker index, the trace tid for this replica's spans
	m       *model.LM
	arch    model.Config // immutable architecture, read by Reload for validation
	version uint64       // weights generation of w.m (worker-goroutine owned)
	pending atomic.Pointer[pendingModel]
	stepper *model.Stepper
	dec     *sampling.Decoder
	active  []*seq
	ids     []int
	states  []*model.GenState

	// Speculative decoding machinery (nil/empty without Config.Draft).
	// Layout per verify round: sequence i claims rows bases[i] ..
	// bases[i]+jBuf[i]-1 of hStack, row bases[i]+t holding the target
	// hidden state after feeds[i][0..t]; one batched LogitsFor over all
	// those rows replaces up to MaxBatch·(DraftK+1) sequential logits
	// products. tSnaps[i][t]/dSnaps[i][t] snapshot both models after
	// feeds[i][0..t] so a rejected proposal rolls back without re-running
	// anything.
	draft        *model.LM
	draftStepper *model.Stepper
	hStack       *tensor.Matrix
	dh           *tensor.Matrix // draft StepCells sink (hidden rows unused)
	dstates      []*model.GenState
	tSnaps       [][]*model.GenState
	dSnaps       [][]*model.GenState
	feeds        [][]int
	jBuf, bases  []int
	rowsBuf      []int
	oneID        []int
	oneState     []*model.GenState
}

func newWorker(s *Server, m, draft *model.LM) *worker {
	stMax := s.cfg.MaxBatch
	if draft != nil {
		// The verify pass batches every sequence's whole lookahead window
		// into one logits product.
		stMax = s.cfg.MaxBatch * (s.cfg.DraftK + 1)
	}
	w := &worker{
		s:       s,
		m:       m,
		arch:    m.Cfg,
		version: 1,
		stepper: m.NewStepper(stMax),
		dec:     sampling.NewDecoder(m.Cfg.Vocab),
		ids:     make([]int, s.cfg.MaxBatch),
		states:  make([]*model.GenState, s.cfg.MaxBatch),
	}
	if draft != nil {
		k := s.cfg.DraftK
		w.draft = draft
		w.draftStepper = draft.NewStepper(s.cfg.MaxBatch)
		w.hStack = tensor.NewMatrix(stMax, m.Cfg.Hidden)
		w.dh = tensor.NewMatrix(s.cfg.MaxBatch, draft.Cfg.Hidden)
		w.dstates = make([]*model.GenState, s.cfg.MaxBatch)
		w.jBuf = make([]int, s.cfg.MaxBatch)
		w.bases = make([]int, s.cfg.MaxBatch)
		w.rowsBuf = make([]int, s.cfg.MaxBatch)
		w.oneID = make([]int, 1)
		w.oneState = make([]*model.GenState, 1)
		for i := 0; i < s.cfg.MaxBatch; i++ {
			ts := make([]*model.GenState, k+1)
			ds := make([]*model.GenState, k+1)
			for t := range ts {
				ts[t] = m.NewGenState()
				ds[t] = draft.NewGenState()
			}
			w.tSnaps = append(w.tSnaps, ts)
			w.dSnaps = append(w.dSnaps, ds)
			w.feeds = append(w.feeds, make([]int, k+1))
		}
	}
	return w
}

// maybeSwap installs a pending reload. Callers guarantee the batch is
// empty, so no in-flight sequence ever crosses a weights boundary.
func (w *worker) maybeSwap() {
	p := w.pending.Swap(nil)
	if p == nil {
		return
	}
	stMax := w.s.cfg.MaxBatch
	if p.draft != nil {
		stMax = w.s.cfg.MaxBatch * (w.s.cfg.DraftK + 1)
	}
	w.m = p.m
	w.stepper = p.m.NewStepper(stMax)
	if p.draft != nil {
		// Same architecture (Reload validates), so the snapshot and
		// scratch pools carry over; only the replicas and steppers swap.
		w.draft = p.draft
		w.draftStepper = p.draft.NewStepper(w.s.cfg.MaxBatch)
	}
	w.version = p.version
}

func (w *worker) loop() {
	for {
		if len(w.active) == 0 {
			w.maybeSwap()
			// Idle: block for work or shutdown.
			select {
			case t := <-w.s.queue:
				// A reload may have landed while blocked; install it before
				// admitting so this request gets the new weights.
				w.maybeSwap()
				w.admit(t)
				w.coalesce()
			case <-w.s.stop:
				w.drain()
				return
			}
		} else {
			// Busy: top up free slots without blocking the batch. The
			// explicit yield matters on few cores — steps are microseconds,
			// so without it the batcher can starve the very submitters
			// whose requests would fill the batch, and coalescing never
			// happens.
			runtime.Gosched()
			select {
			case <-w.s.stop:
				w.drain()
				return
			default:
			}
			if w.pending.Load() == nil {
				// With a reload pending, stop admitting and let the batch
				// drain on the current weights.
				w.fill()
			}
		}
		if len(w.active) > 0 {
			if w.specReady() {
				w.stepSpec()
			} else {
				w.step()
			}
		}
	}
}

// specReady reports whether a speculative round can run: every active
// sequence must be past prefill with at least one emitted token (the round
// invariant "both models have consumed prompt plus all output but the last
// token" holds exactly then). Mixed batches — some sequences still
// prefilling — run normal steps, which keep target and draft in lockstep,
// until everyone is ready.
func (w *worker) specReady() bool {
	if w.draft == nil {
		return false
	}
	for _, q := range w.active {
		if len(q.out) == 0 {
			return false
		}
	}
	return true
}

// fill admits queued tasks into free slots without waiting.
func (w *worker) fill() {
	for len(w.active) < w.s.cfg.MaxBatch {
		select {
		case t := <-w.s.queue:
			w.admit(t)
		default:
			return
		}
	}
}

// coalesce optionally lingers up to BatchWindow after starting a fresh
// batch, trading first-token latency for batch occupancy. A reload arriving
// mid-linger ends it: the sooner the batch drains, the sooner the new
// weights install. Deadlines are honored during the linger too — the
// worker wakes at the soonest in-flight deadline and sheds it there,
// rather than letting an expired sequence wait out the window only to be
// discarded at the first step.
func (w *worker) coalesce() {
	if w.s.cfg.BatchWindow <= 0 {
		w.fill()
		return
	}
	window := time.NewTimer(w.s.cfg.BatchWindow)
	defer window.Stop()
	for len(w.active) < w.s.cfg.MaxBatch && w.pending.Load() == nil {
		var (
			expiry   <-chan time.Time
			expTimer *time.Timer
		)
		if d, ok := w.soonestDeadline(); ok {
			expTimer = time.NewTimer(time.Until(d))
			expiry = expTimer.C
		}
		select {
		case t := <-w.s.queue:
			w.admit(t)
		case <-expiry:
			w.expire(time.Now())
			if len(w.active) == 0 {
				return
			}
		case <-window.C:
			if expTimer != nil {
				expTimer.Stop()
			}
			return
		case <-w.s.stop:
			if expTimer != nil {
				expTimer.Stop()
			}
			return
		}
		if expTimer != nil {
			expTimer.Stop()
		}
	}
}

// soonestDeadline returns the earliest deadline among active sequences.
func (w *worker) soonestDeadline() (time.Time, bool) {
	var min time.Time
	for _, q := range w.active {
		if d := q.t.req.Deadline; !d.IsZero() && (min.IsZero() || d.Before(min)) {
			min = d
		}
	}
	return min, !min.IsZero()
}

// admit turns a task into an active sequence — unless its deadline already
// passed (deadline shedding) or the prefix cache lets it skip prefill (and
// possibly complete instantly for N == 1).
func (w *worker) admit(t *task) {
	req := t.req
	if !req.Deadline.IsZero() && time.Now().After(req.Deadline) {
		w.s.stats.onShed(true)
		w.s.tracer.Instant("serve", "expired", w.id, time.Now(), 0)
		t.done <- taskDone{err: ErrDeadlineExceeded}
		return
	}
	w.s.stats.onAccept()

	q := &seq{t: t, r: rng.New(req.Seed), out: make([]int, 0, req.N)}
	if w.s.tracer != nil {
		q.admitted = time.Now()
		w.s.tracer.Span("serve", "queue", w.id, t.submitted, q.admitted.Sub(t.submitted), 0, 0)
	}

	if val, ok := w.prefixLookup(req.Prompt); ok {
		// Hot prompt: restore the post-prompt state and draw the first
		// token from the cached logits, exactly as the sequential path
		// would after consuming the prompt.
		pe := val.(*prefixEntry)
		q.state = pe.state.Clone()
		q.fed = len(req.Prompt)
		t.prefix = true
		q.prefillEnd = q.admitted // prefill skipped via the prefix cache
		q.out = append(q.out, w.dec.Sample(pe.logits, req.Opts, q.r))
		if len(q.out) == req.N {
			w.traceRetire(q)
			t.done <- taskDone{tokens: q.out, version: w.version}
			return
		}
		if w.draft != nil {
			// The prefix cache stores only the target state; replay the
			// prompt through the small draft so the lockstep invariant
			// holds from the first step. Still far cheaper than target
			// prefill, which the hit just skipped.
			q.dstate = w.draft.NewGenState()
			w.oneState[0] = q.dstate
			for _, tok := range req.Prompt {
				w.oneID[0] = tok
				w.draftStepper.StepCells(w.oneID, w.oneState, w.dh, 0)
			}
			w.s.stats.onDraftSteps(len(req.Prompt))
		}
	} else {
		q.state = w.m.NewGenState()
		if w.draft != nil {
			q.dstate = w.draft.NewGenState()
		}
	}
	w.active = append(w.active, q)
}

// traceRetire closes out a completed sequence's spans: prefill (admission
// to end of prompt consumption) and decode (the rest). No-op without a
// tracer.
func (w *worker) traceRetire(q *seq) {
	tr := w.s.tracer
	if tr == nil {
		return
	}
	now := time.Now()
	pe := q.prefillEnd
	if pe.IsZero() {
		// Retired before the prompt finished (cannot happen today, but a
		// span must not run backwards if it ever does).
		pe = now
	}
	tr.Span("serve", "prefill", w.id, q.admitted, pe.Sub(q.admitted), 0, 0)
	tr.Span("serve", "decode", w.id, pe, now.Sub(pe), 0, 0)
}

// prefixLookup consults the prefix cache, skipping even the key build when
// the cache is disabled (uncached configurations must not pay for cache
// bookkeeping). Entries snapshotted by a different weights generation are
// misses: an old-weights state must never seed a new-weights generation.
func (w *worker) prefixLookup(prompt []int) (any, bool) {
	if w.s.prefix == nil {
		return nil, false
	}
	return w.s.prefix.getIf(prefixKey(prompt), func(v any) bool {
		return v.(*prefixEntry).version == w.version
	})
}

// step advances every active sequence one token: one batched forward, then
// per-sequence sampling and retirement. Sequences whose deadline passed are
// abandoned first — a dead caller must not keep occupying a batch slot.
func (w *worker) step() {
	w.expire(time.Now())
	if len(w.active) == 0 {
		return
	}
	b := len(w.active)
	for i, q := range w.active {
		w.ids[i] = q.nextInput()
		w.states[i] = q.state
	}
	lg := w.stepper.Step(w.ids[:b], w.states[:b])
	w.s.stats.onBatchStep(b)
	if w.draft != nil {
		// Advance the draft on the same tokens so both models have always
		// consumed identical prefixes — the invariant stepSpec starts from.
		for i := 0; i < b; i++ {
			w.dstates[i] = w.active[i].dstate
		}
		w.draftStepper.StepCells(w.ids[:b], w.dstates[:b], w.dh, 0)
		w.s.stats.onDraftSteps(b)
	}

	n := 0
	for i := 0; i < b; i++ {
		q := w.active[i]
		q.fed++
		p := len(q.t.req.Prompt)
		if q.fed >= p {
			row := lg.Row(i)
			if q.fed == p {
				if w.s.tracer != nil {
					q.prefillEnd = time.Now()
				}
				// Prompt just finished: snapshot for future requests
				// sharing it (state and logits are copied, so later
				// mutation of the live sequence cannot corrupt it).
				if w.s.prefix != nil {
					w.s.prefix.put(prefixKey(q.t.req.Prompt), &prefixEntry{
						state:   q.state.Clone(),
						logits:  append([]float32(nil), row...),
						version: w.version,
					})
				}
			}
			q.out = append(q.out, w.dec.Sample(row, q.t.req.Opts, q.r))
			if len(q.out) == q.t.req.N {
				w.traceRetire(q)
				q.t.done <- taskDone{tokens: q.out, version: w.version}
				continue // retire
			}
		}
		w.active[n] = q
		n++
	}
	for i := n; i < b; i++ {
		w.active[i] = nil
	}
	w.active = w.active[:n]
}

// argmaxSpec returns the index of the largest logit, first index winning
// ties — sampling.Decoder's greedy rule, and RNG-free, so draft proposals
// never disturb a request's private variate schedule.
func argmaxSpec(lg []float32) int {
	bi, bv := 0, lg[0]
	for i, v := range lg {
		if v > bv {
			bi, bv = i, v
		}
	}
	return bi
}

// stepSpec advances every active sequence up to DraftK+1 tokens in one
// speculative round: the draft proposes per-sequence lookaheads (batched
// across sequences), the target runs the cheap serial cell steps per
// position, and ONE batched logits product verifies every position of every
// sequence at once. Emission per sequence mirrors sequential Generate
// exactly — one Decoder.Sample per emitted token from true-prefix logits —
// and stops at the first draw that contradicts the next proposal, rolling
// both models back to the snapshot at that point. Output is therefore
// bit-identical to the normal path at every temperature; only the number of
// V×D products per token changes.
func (w *worker) stepSpec() {
	w.expire(time.Now())
	b := len(w.active)
	if b == 0 {
		return
	}
	k := w.s.cfg.DraftK

	// Lookahead windows and verify-row bases.
	rows, maxJ := 0, 0
	for i, q := range w.active {
		j := q.t.req.N - len(q.out)
		if j > k+1 {
			j = k + 1
		}
		w.jBuf[i] = j
		w.bases[i] = rows
		rows += j
		if j > maxJ {
			maxJ = j
		}
		w.feeds[i][0] = q.nextInput()
	}

	// Draft phase: propose by argmax, batched across the sequences still
	// looking ahead, snapshotting the draft after each consumed token.
	for t := 1; t < maxJ; t++ {
		n := 0
		for i, q := range w.active {
			if w.jBuf[i] > t {
				w.ids[n] = w.feeds[i][t-1]
				w.states[n] = q.dstate
				w.rowsBuf[n] = i
				n++
			}
		}
		if n == 0 {
			break
		}
		dlg := w.draftStepper.Step(w.ids[:n], w.states[:n])
		for bi := 0; bi < n; bi++ {
			i := w.rowsBuf[bi]
			w.dSnaps[i][t-1].CopyFrom(w.active[i].dstate)
			w.feeds[i][t] = argmaxSpec(dlg.Row(bi))
		}
		w.s.stats.onDraftSteps(n)
	}

	// Verify phase: serial target cell steps (the recurrence allows no
	// other order), then the single batched logits product they exist to
	// amortize.
	w.hStack.Rows = rows
	w.hStack.Data = w.hStack.Data[:rows*w.hStack.Cols]
	for i, q := range w.active {
		w.oneState[0] = q.state
		for t := 0; t < w.jBuf[i]; t++ {
			w.oneID[0] = w.feeds[i][t]
			w.stepper.StepCells(w.oneID, w.oneState, w.hStack, w.bases[i]+t)
			w.tSnaps[i][t].CopyFrom(q.state)
		}
	}
	lg := w.stepper.LogitsFor(w.hStack)
	w.hStack.Rows = w.s.cfg.MaxBatch * (k + 1)
	w.hStack.Data = w.hStack.Data[:w.hStack.Rows*w.hStack.Cols]
	w.s.stats.onBatchStep(b)

	// Emission: accept until the target's own draw disagrees.
	proposed, accepted := 0, 0
	n := 0
	for i := 0; i < b; i++ {
		q := w.active[i]
		j := w.jBuf[i]
		mismatch, emitted := -1, 0
		for t := 0; t < j; t++ {
			next := w.dec.Sample(lg.Row(w.bases[i]+t), q.t.req.Opts, q.r)
			q.out = append(q.out, next)
			emitted++
			if t+1 < j && next != w.feeds[i][t+1] {
				mismatch = t
				break
			}
		}
		proposed += j - 1
		accepted += emitted - 1
		if len(q.out) == q.t.req.N {
			w.traceRetire(q)
			q.t.done <- taskDone{tokens: q.out, version: w.version}
			continue // retire
		}
		if mismatch >= 0 {
			q.state.CopyFrom(w.tSnaps[i][mismatch])
			q.dstate.CopyFrom(w.dSnaps[i][mismatch])
		} else {
			// Full accept: the draft never consumed the round's final fed
			// token; advance it so the lockstep invariant holds.
			w.oneID[0] = w.feeds[i][j-1]
			w.oneState[0] = q.dstate
			w.draftStepper.StepCells(w.oneID, w.oneState, w.dh, 0)
			w.s.stats.onDraftSteps(1)
		}
		q.fed = len(q.t.req.Prompt) + len(q.out) - 1
		w.active[n] = q
		n++
	}
	for i := n; i < b; i++ {
		w.active[i] = nil
	}
	w.active = w.active[:n]
	w.s.stats.onSpecRound(proposed, accepted)
}

// expire sheds active sequences whose deadline has passed (partial output
// discarded, and counted: ExpiredInFlight / DiscardedTokens separate the
// sequences that wasted forward passes from the ones shed before service).
func (w *worker) expire(now time.Time) {
	n := 0
	for _, q := range w.active {
		if d := q.t.req.Deadline; !d.IsZero() && now.After(d) {
			w.s.stats.onExpire(len(q.out))
			w.s.tracer.Instant("serve", "expired", w.id, now, 0)
			w.s.flight.Record(slog.LevelWarn, "in-flight request expired",
				"worker", w.id, "discarded_tokens", len(q.out), "n", q.t.req.N)
			q.t.done <- taskDone{err: ErrDeadlineExceeded}
			continue
		}
		w.active[n] = q
		n++
	}
	for i := n; i < len(w.active); i++ {
		w.active[i] = nil
	}
	w.active = w.active[:n]
}

// drain fails everything this worker still holds; the server drains the
// shared queue after all workers exit.
func (w *worker) drain() {
	for _, q := range w.active {
		q.t.done <- taskDone{err: ErrShutdown}
	}
	w.active = w.active[:0]
}
