package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/powerlaw"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

func lstmModel() *model.LM {
	return model.NewLM(model.Config{Vocab: 150, Dim: 16, Hidden: 24, RNN: model.KindLSTM, Seed: 9})
}

func rhnModel() *model.LM {
	return model.NewLM(model.Config{Vocab: 110, Dim: 12, Hidden: 20, RNN: model.KindRHN, RHNDepth: 2, Seed: 10})
}

// reference computes what the serving layer must return: the sequential
// single-stream generation with the request's own RNG.
func reference(m *model.LM, req Request) []int {
	return m.GenerateOpts(req.Prompt, req.N, req.Opts, rng.New(req.Seed))
}

// TestServeBitIdenticalToSequential is the subsystem's acceptance contract:
// many concurrent requests — ragged prompts, mixed temperatures and
// filters, both architectures, several batch bounds — each answered exactly
// as sequential model.Generate would answer it.
func TestServeBitIdenticalToSequential(t *testing.T) {
	for name, m := range map[string]*model.LM{"lstm": lstmModel(), "rhn": rhnModel()} {
		for _, maxBatch := range []int{1, 3, 8} {
			s := New(m, Config{MaxBatch: maxBatch, QueueDepth: 64, CacheEntries: 32, PrefixEntries: 16})

			var reqs []Request
			r := rng.New(77)
			for i := 0; i < 24; i++ {
				plen := 1 + r.Intn(6)
				prompt := make([]int, plen)
				for j := range prompt {
					prompt[j] = r.Intn(m.Cfg.Vocab)
				}
				opts := sampling.DecodeOpts{}
				switch i % 4 {
				case 1:
					opts.Temperature = 0.9
				case 2:
					opts.Temperature = 1.1
					opts.TopK = 10
				case 3:
					opts.Temperature = 0.8
					opts.TopP = 0.9
				}
				reqs = append(reqs, Request{Prompt: prompt, N: 1 + r.Intn(10), Opts: opts, Seed: uint64(i) + 1})
			}

			var wg sync.WaitGroup
			errs := make([]error, len(reqs))
			got := make([][]int, len(reqs))
			for i, req := range reqs {
				wg.Add(1)
				go func(i int, req Request) {
					defer wg.Done()
					res, err := s.Submit(req)
					if err != nil {
						errs[i] = err
						return
					}
					got[i] = res.Tokens
				}(i, req)
			}
			wg.Wait()
			s.Close()

			for i, req := range reqs {
				if errs[i] != nil {
					t.Fatalf("%s maxBatch=%d req %d failed: %v", name, maxBatch, i, errs[i])
				}
				want := reference(m, req)
				if len(got[i]) != len(want) {
					t.Fatalf("%s maxBatch=%d req %d: %d tokens, want %d", name, maxBatch, i, len(got[i]), len(want))
				}
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("%s maxBatch=%d req %d token %d: served %d != sequential %d",
							name, maxBatch, i, j, got[i][j], want[j])
					}
				}
			}
		}
	}
}

// TestResultCache: an exact repeat is a hit, returns identical tokens, and
// the LRU stays bounded.
func TestResultCache(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxBatch: 4, CacheEntries: 2})
	defer s.Close()

	req := Request{Prompt: []int{5, 6, 7}, N: 6, Opts: sampling.DecodeOpts{Temperature: 0.9}, Seed: 3}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first submission cannot be a cache hit")
	}
	second, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("exact repeat must hit the result cache")
	}
	for i := range first.Tokens {
		if first.Tokens[i] != second.Tokens[i] {
			t.Fatalf("cache returned different tokens at %d", i)
		}
	}

	// Mutating the returned slice must not poison the cache.
	second.Tokens[0] = -999
	third, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Tokens[0] != first.Tokens[0] {
		t.Fatal("caller mutation leaked into the cache")
	}

	// Capacity 2: three distinct keys evict the oldest.
	for seed := uint64(10); seed < 13; seed++ {
		r := req
		r.Seed = seed
		if _, err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Stats()
	if snap.ResultEntries > 2 {
		t.Fatalf("result cache holds %d entries, capacity 2", snap.ResultEntries)
	}
	if snap.ResultEvicted == 0 {
		t.Fatal("expected evictions past capacity")
	}
}

// TestPrefixCache: a repeated prompt with a different seed skips prefill
// (PrefixHit) and still matches the sequential reference bit for bit —
// including the N == 1 instant-completion path.
func TestPrefixCache(t *testing.T) {
	m := rhnModel()
	s := New(m, Config{MaxBatch: 4, PrefixEntries: 8})
	defer s.Close()

	prompt := []int{9, 3, 14, 2}
	warm := Request{Prompt: prompt, N: 5, Opts: sampling.DecodeOpts{Temperature: 0.7}, Seed: 1}
	if _, err := s.Submit(warm); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 7} {
		req := Request{Prompt: prompt, N: n, Opts: sampling.DecodeOpts{Temperature: 0.7}, Seed: 42}
		res, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PrefixHit {
			t.Fatalf("N=%d: repeated prompt should hit the prefix cache", n)
		}
		want := reference(m, req)
		for i := range want {
			if res.Tokens[i] != want[i] {
				t.Fatalf("N=%d token %d: prefix-cached %d != sequential %d", n, i, res.Tokens[i], want[i])
			}
		}
	}
}

// TestAdmissionBackpressure: with a tiny queue and slow service, a flood of
// concurrent submissions must shed cleanly — every request gets exactly one
// outcome, nothing hangs, and accounting adds up.
func TestAdmissionBackpressure(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxBatch: 1, QueueDepth: 1})
	defer s.Close()

	const flood = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed, shed := 0, 0
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(Request{Prompt: []int{1, 2}, N: 20, Seed: uint64(i)})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if completed+shed != flood {
		t.Fatalf("outcomes %d+%d != %d submitted", completed, shed, flood)
	}
	if completed == 0 {
		t.Fatal("nothing completed")
	}
	snap := s.Stats()
	if snap.Shed != uint64(shed) {
		t.Fatalf("stats count %d shed, loaders saw %d", snap.Shed, shed)
	}
}

// TestDeadlineShedding: an already-expired deadline is refused with
// ErrDeadlineExceeded and counted.
func TestDeadlineShedding(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxBatch: 2})
	defer s.Close()

	req := Request{Prompt: []int{1}, N: 4, Seed: 1, Deadline: time.Now().Add(-time.Second)}
	if _, err := s.Submit(req); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want ErrDeadlineExceeded", err)
	}
	if snap := s.Stats(); snap.Expired != 1 {
		t.Fatalf("stats count %d expired, want 1", snap.Expired)
	}
}

// TestDeadlineBeatsCache: an expired request is shed even when its answer
// sits in the result cache — the outcome must not depend on cache state.
func TestDeadlineBeatsCache(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxBatch: 2, CacheEntries: 8})
	defer s.Close()

	req := Request{Prompt: []int{2, 3}, N: 5, Seed: 4}
	if _, err := s.Submit(req); err != nil {
		t.Fatal(err)
	}
	hot := req
	hot.Deadline = time.Now().Add(-time.Second)
	if _, err := s.Submit(hot); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired hot request returned %v, want ErrDeadlineExceeded", err)
	}
}

// TestDeadlineMidFlight: a deadline that passes during generation abandons
// the sequence at a step boundary instead of letting it wedge a batch slot;
// the submitter gets ErrDeadlineExceeded either way (admission or
// mid-flight, depending on timing).
func TestDeadlineMidFlight(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxBatch: 2})
	defer s.Close()

	req := Request{Prompt: []int{1}, N: 4096, Seed: 1, Deadline: time.Now().Add(time.Millisecond)}
	if _, err := s.Submit(req); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("mid-flight deadline returned %v, want ErrDeadlineExceeded", err)
	}
	if snap := s.Stats(); snap.Expired != 1 {
		t.Fatalf("stats count %d expired, want 1", snap.Expired)
	}
	// The slot must be free again: a normal request still completes.
	if _, err := s.Submit(Request{Prompt: []int{1}, N: 4, Seed: 2}); err != nil {
		t.Fatalf("request after expiry failed: %v", err)
	}
}

// TestRequestCaps: the per-request resource bounds reject oversized work at
// validation.
func TestRequestCaps(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxTokens: 8, MaxPromptLen: 3})
	defer s.Close()
	if _, err := s.Submit(Request{Prompt: []int{1}, N: 9}); err == nil {
		t.Error("n above MaxTokens accepted")
	}
	if _, err := s.Submit(Request{Prompt: []int{1, 2, 3, 4}, N: 2}); err == nil {
		t.Error("prompt above MaxPromptLen accepted")
	}
	if _, err := s.Submit(Request{Prompt: []int{1, 2, 3}, N: 8}); err != nil {
		t.Errorf("request at the caps rejected: %v", err)
	}
}

// TestLoadDeterministicHistogram: the issued rank histogram must not depend
// on goroutine scheduling — same seed, same PerRank, run to run.
func TestLoadDeterministicHistogram(t *testing.T) {
	m := lstmModel()
	cfg := LoadConfig{Clients: 6, Requests: 80, Vocab: m.Cfg.Vocab, Tokens: 3, Seed: 21}
	var prev []int
	for run := 0; run < 2; run++ {
		s := New(m, Config{MaxBatch: 4, QueueDepth: 8})
		rep := RunLoad(s, cfg)
		s.Close()
		if prev != nil {
			for r := range prev {
				if prev[r] != rep.PerRank[r] {
					t.Fatalf("rank %d issued %d times, then %d — load not deterministic", r, prev[r], rep.PerRank[r])
				}
			}
		}
		prev = rep.PerRank
	}
}

// TestValidation: malformed requests are rejected before costing anything.
func TestValidation(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{})
	defer s.Close()
	for _, req := range []Request{
		{Prompt: nil, N: 4},
		{Prompt: []int{1}, N: 0},
		{Prompt: []int{-1}, N: 4},
		{Prompt: []int{m.Cfg.Vocab}, N: 4},
		{Prompt: []int{1}, N: 4, Opts: sampling.DecodeOpts{Temperature: -1}},
		{Prompt: []int{1}, N: 4, Opts: sampling.DecodeOpts{TopP: 1.5}},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("request %+v accepted, want validation error", req)
		}
	}
}

// TestCloseUnblocksSubmitters: Close while requests are queued or in flight
// fails them with ErrShutdown instead of hanging them, and later Submits
// are refused immediately.
func TestCloseUnblocksSubmitters(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxBatch: 1, QueueDepth: 8})

	var wg sync.WaitGroup
	outcome := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(Request{Prompt: []int{3}, N: 50, Seed: uint64(i)})
			outcome <- err
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let some requests start
	s.Close()
	wg.Wait()
	close(outcome)
	for err := range outcome {
		if err != nil && !errors.Is(err, ErrShutdown) && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("unexpected outcome at shutdown: %v", err)
		}
	}
	if _, err := s.Submit(Request{Prompt: []int{3}, N: 1, Seed: 1}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-close Submit returned %v, want ErrShutdown", err)
	}
	s.Close() // idempotent
}

// TestClosedLoopLoad runs the Zipf load generator end to end (the CI race
// target): multiple workers, caches on, every outcome accounted for, the
// hot ranks hitting the cache, and the issued load actually following a
// power law (the serving-side mirror of the paper's Figure 1 fit).
func TestClosedLoopLoad(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{Workers: 2, MaxBatch: 4, QueueDepth: 16, CacheEntries: 128, PrefixEntries: 64})
	defer s.Close()

	cfg := LoadConfig{
		Clients:  8,
		Requests: 160,
		Vocab:    m.Cfg.Vocab,
		Tokens:   6,
		Opts:     sampling.DecodeOpts{Temperature: 0.8},
		Seed:     5,
	}
	rep := RunLoad(s, cfg)
	if rep.Issued != cfg.Requests {
		t.Fatalf("issued %d != %d requested", rep.Issued, cfg.Requests)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d requests failed unexpectedly", rep.Failed)
	}
	if rep.Completed+rep.Shed+rep.Expired != rep.Issued {
		t.Fatalf("outcomes %d+%d+%d != %d issued", rep.Completed, rep.Shed, rep.Expired, rep.Issued)
	}
	if rep.Shed != 0 {
		t.Fatalf("closed-loop load with queue ≥ clients must not shed, got %d", rep.Shed)
	}
	if rep.CacheHits == 0 {
		t.Fatal("Zipf load produced zero cache hits")
	}

	// Spot-check correctness through the cache: the hottest rank must
	// still answer bit-identically.
	req := Request{Prompt: cfg.PromptForRank(0), N: cfg.Tokens, Opts: cfg.Opts, Seed: cfg.SeedForRank(0)}
	res, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(m, req)
	for i := range want {
		if res.Tokens[i] != want[i] {
			t.Fatalf("hot-rank token %d: %d != sequential %d", i, res.Tokens[i], want[i])
		}
	}

	// The load's rank-frequency histogram should fit a power law with an
	// exponent near -ZipfS (same verification the corpus generators get).
	var xs, ys []float64
	for rank, count := range rep.PerRank {
		if count > 0 {
			xs = append(xs, float64(rank+1))
			ys = append(ys, float64(count))
		}
	}
	fit, err := powerlaw.FitXY(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha > -0.5 || fit.Alpha < -2.0 {
		t.Errorf("load rank-frequency exponent %.2f implausible for Zipf s=%.1f", fit.Alpha, cfg.ZipfS)
	}
}

// TestBatchingActuallyBatches: under concurrent closed-loop load a
// MaxBatch=8 server must execute steps at batch size > 1 (the whole point
// of the subsystem).
func TestBatchingActuallyBatches(t *testing.T) {
	m := lstmModel()
	s := New(m, Config{MaxBatch: 8, QueueDepth: 32})
	defer s.Close()
	RunLoad(s, LoadConfig{Clients: 8, Requests: 64, Vocab: m.Cfg.Vocab, Tokens: 12, PromptPool: 64, Seed: 2,
		Opts: sampling.DecodeOpts{Temperature: 0.9}})
	snap := s.Stats()
	if snap.MeanBatch <= 1.05 {
		t.Fatalf("mean batch %.2f — batcher never coalesced concurrent requests", snap.MeanBatch)
	}
}
