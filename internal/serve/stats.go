package serve

import (
	"sort"
	"sync"
	"time"
)

// latRingSize bounds the latency reservoir so a long-running server's
// quantiles stay O(1) memory; recent samples overwrite the oldest.
const latRingSize = 8192

// statsCollector accumulates serving telemetry. All methods are safe for
// concurrent use.
type statsCollector struct {
	mu        sync.Mutex
	start     time.Time
	accepted  uint64
	completed uint64
	shed      uint64 // admission-queue overflow
	expired   uint64 // deadline expiries, before or during service
	// expiredInFlight counts the subset of expired that had already started
	// generating when the deadline passed; discardedTokens is the partial
	// output those sequences threw away — wasted compute made visible.
	expiredInFlight uint64
	discardedTokens uint64
	tokens          uint64
	batches         []uint64 // batches[b] = steps executed at batch size b
	batchSum        uint64   // Σ b·batches[b] (sequence-steps)
	stepCount       uint64
	// Speculative-decoding counters (zero on non-speculative servers).
	specRounds    uint64
	draftProposed uint64
	draftAccepted uint64
	draftSteps    uint64
	lat           [latRingSize]time.Duration
	latCount      uint64 // total recorded (ring wraps)
	latSum        time.Duration
}

func newStatsCollector(maxBatch int) *statsCollector {
	return &statsCollector{start: time.Now(), batches: make([]uint64, maxBatch+1)}
}

func (s *statsCollector) onAccept() {
	s.mu.Lock()
	s.accepted++
	s.mu.Unlock()
}

func (s *statsCollector) onShed(deadline bool) {
	s.mu.Lock()
	if deadline {
		s.expired++
	} else {
		s.shed++
	}
	s.mu.Unlock()
}

// onExpire records an in-flight deadline expiry: a sequence that was
// already generating when its deadline passed, discarding the tokens it
// had produced. (Pre-service expiries go through onShed(true) — they
// never cost a forward pass.)
func (s *statsCollector) onExpire(discarded int) {
	s.mu.Lock()
	s.expired++
	s.expiredInFlight++
	s.discardedTokens += uint64(discarded)
	s.mu.Unlock()
}

func (s *statsCollector) onComplete(tokens int, latency time.Duration) {
	s.mu.Lock()
	s.completed++
	s.tokens += uint64(tokens)
	s.lat[s.latCount%latRingSize] = latency
	s.latCount++
	s.latSum += latency
	s.mu.Unlock()
}

// onSpecRound records one speculative verify round: how many draft
// proposals were offered and how many the target accepted.
func (s *statsCollector) onSpecRound(proposed, accepted int) {
	s.mu.Lock()
	s.specRounds++
	s.draftProposed += uint64(proposed)
	s.draftAccepted += uint64(accepted)
	s.mu.Unlock()
}

// onDraftSteps records n draft model forward steps (proposals, lockstep
// tracking, and prefix replays all count — the full overhead the draft
// adds).
func (s *statsCollector) onDraftSteps(n int) {
	s.mu.Lock()
	s.draftSteps += uint64(n)
	s.mu.Unlock()
}

func (s *statsCollector) onBatchStep(b int) {
	s.mu.Lock()
	s.batches[b]++
	s.batchSum += uint64(b)
	s.stepCount++
	s.mu.Unlock()
}

// Snapshot is a point-in-time view of serving telemetry.
type Snapshot struct {
	// Uptime since the server started.
	Uptime time.Duration
	// Accepted counts requests admitted past the queue (cache hits served
	// directly are Completed without being Accepted).
	Accepted uint64
	// Completed counts requests answered with tokens (including cache
	// hits); Shed were refused at admission (queue full), Expired had
	// their deadline pass before or during service.
	Completed, Shed, Expired uint64
	// ExpiredInFlight is the subset of Expired that had already started
	// generating (abandoned at a step boundary or mid-linger);
	// DiscardedTokens is the partial output those sequences discarded —
	// the compute wasted on callers that stopped waiting.
	ExpiredInFlight, DiscardedTokens uint64
	// Tokens is the total tokens delivered (cache hits count: they
	// displaced generation work).
	Tokens uint64
	// LatencyP50/P99 are quantiles over the most recent window of
	// completions (a bounded ring); LatencyMean averages every completion
	// since the server started.
	LatencyP50, LatencyP99, LatencyMean time.Duration
	// MeanBatch is sequence-steps per model step — the batching factor
	// actually achieved; BatchDist[b] is how many steps ran at batch b.
	MeanBatch float64
	BatchDist []uint64
	// Cache telemetry (zero when the respective cache is disabled).
	ResultHits, ResultMisses, ResultEvicted uint64
	ResultEntries                           int
	PrefixHits, PrefixMisses, PrefixEvicted uint64
	PrefixEntries                           int
	// WeightsVersion is the current weights generation (1 at start; each
	// Reload increments it); Reloads counts completed Reload calls.
	WeightsVersion uint64
	Reloads        int64
	// Quantized reports whether replicas serve on int8 weights; DraftK is
	// the speculative lookahead (0 when speculative decoding is off).
	Quantized bool
	DraftK    int
	// SpecRounds counts speculative verify rounds; DraftProposed/
	// DraftAccepted are the proposals offered and accepted across them
	// (their ratio is the acceptance rate the Zipf skew is supposed to
	// buy); DraftSteps is every draft model forward step, the overhead
	// side of the trade.
	SpecRounds    uint64
	DraftProposed uint64
	DraftAccepted uint64
	DraftSteps    uint64
}

// SpecAcceptanceRate returns DraftAccepted/DraftProposed, 0 before any
// proposal.
func (s Snapshot) SpecAcceptanceRate() float64 {
	if s.DraftProposed == 0 {
		return 0
	}
	return float64(s.DraftAccepted) / float64(s.DraftProposed)
}

// HitRate returns result-cache hits / lookups, 0 when no lookups happened.
func (s Snapshot) HitRate() float64 {
	total := s.ResultHits + s.ResultMisses
	if total == 0 {
		return 0
	}
	return float64(s.ResultHits) / float64(total)
}

// snapshot assembles the exported view (cache counters are merged in by the
// server, which owns the caches).
func (s *statsCollector) snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{
		Uptime:          time.Since(s.start),
		Accepted:        s.accepted,
		Completed:       s.completed,
		Shed:            s.shed,
		Expired:         s.expired,
		ExpiredInFlight: s.expiredInFlight,
		DiscardedTokens: s.discardedTokens,
		Tokens:          s.tokens,
		BatchDist:       append([]uint64(nil), s.batches...),
		SpecRounds:      s.specRounds,
		DraftProposed:   s.draftProposed,
		DraftAccepted:   s.draftAccepted,
		DraftSteps:      s.draftSteps,
	}
	if s.stepCount > 0 {
		out.MeanBatch = float64(s.batchSum) / float64(s.stepCount)
	}
	n := int(s.latCount)
	if n > latRingSize {
		n = latRingSize
	}
	if n > 0 {
		window := make([]time.Duration, n)
		copy(window, s.lat[:n])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		out.LatencyP50 = window[quantileIndex(n, 0.50)]
		out.LatencyP99 = window[quantileIndex(n, 0.99)]
		out.LatencyMean = s.latSum / time.Duration(s.latCount)
	}
	return out
}

// quantileIndex maps a quantile to a sorted-sample index (nearest-rank).
func quantileIndex(n int, q float64) int {
	i := int(q*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
