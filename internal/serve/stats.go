package serve

import (
	"strconv"
	"time"

	"zipflm/internal/telemetry"
)

// statsCollector accumulates serving telemetry on a telemetry.Registry —
// the single source of truth: Snapshot (and the /v1/stats JSON built from
// it) and the Prometheus /metrics endpoint read the same instruments. The
// server always owns a registry (a private one when Config.Telemetry is
// nil), so the collector's instruments are never nil; recording is a few
// atomic operations, cheaper than the mutex ring it replaced. All methods
// are safe for concurrent use.
type statsCollector struct {
	start time.Time
	reg   *telemetry.Registry

	accepted        *telemetry.Counter
	completed       *telemetry.Counter
	shed            *telemetry.Counter
	expired         *telemetry.Counter
	expiredInFlight *telemetry.Counter
	discardedTokens *telemetry.Counter
	tokens          *telemetry.Counter
	stepCount       *telemetry.Counter
	batchSum        *telemetry.Counter
	specRounds      *telemetry.Counter
	draftProposed   *telemetry.Counter
	draftAccepted   *telemetry.Counter
	draftSteps      *telemetry.Counter
	lat             *telemetry.Histogram
	occupancy       *telemetry.Gauge
	// batches[b] counts steps executed at batch size b
	// (zipflm_serve_batch_steps_total{batch="b"}).
	batches []*telemetry.Counter
}

func newStatsCollector(maxBatch int, reg *telemetry.Registry) *statsCollector {
	s := &statsCollector{
		start:           time.Now(),
		reg:             reg,
		accepted:        reg.Counter("zipflm_serve_accepted_total"),
		completed:       reg.Counter("zipflm_serve_completed_total"),
		shed:            reg.Counter("zipflm_serve_shed_total"),
		expired:         reg.Counter("zipflm_serve_expired_total"),
		expiredInFlight: reg.Counter("zipflm_serve_expired_in_flight_total"),
		discardedTokens: reg.Counter("zipflm_serve_discarded_tokens_total"),
		tokens:          reg.Counter("zipflm_serve_tokens_total"),
		stepCount:       reg.Counter("zipflm_serve_steps_total"),
		batchSum:        reg.Counter("zipflm_serve_seq_steps_total"),
		specRounds:      reg.Counter("zipflm_serve_spec_rounds_total"),
		draftProposed:   reg.Counter("zipflm_serve_draft_proposed_total"),
		draftAccepted:   reg.Counter("zipflm_serve_draft_accepted_total"),
		draftSteps:      reg.Counter("zipflm_serve_draft_steps_total"),
		lat:             reg.Duration("zipflm_serve_latency_seconds"),
		occupancy:       reg.Gauge("zipflm_serve_batch_occupancy"),
		batches:         make([]*telemetry.Counter, maxBatch+1),
	}
	for b := range s.batches {
		s.batches[b] = reg.Counter(telemetry.Label("zipflm_serve_batch_steps_total", "batch", strconv.Itoa(b)))
	}
	return s
}

func (s *statsCollector) onAccept() { s.accepted.Inc() }

func (s *statsCollector) onShed(deadline bool) {
	if deadline {
		s.expired.Inc()
	} else {
		s.shed.Inc()
	}
}

// onExpire records an in-flight deadline expiry: a sequence that was
// already generating when its deadline passed, discarding the tokens it
// had produced. (Pre-service expiries go through onShed(true) — they
// never cost a forward pass.)
func (s *statsCollector) onExpire(discarded int) {
	s.expired.Inc()
	s.expiredInFlight.Inc()
	s.discardedTokens.Add(int64(discarded))
}

func (s *statsCollector) onComplete(tokens int, latency time.Duration) {
	s.completed.Inc()
	s.tokens.Add(int64(tokens))
	s.lat.Observe(latency)
}

// onSpecRound records one speculative verify round: how many draft
// proposals were offered and how many the target accepted.
func (s *statsCollector) onSpecRound(proposed, accepted int) {
	s.specRounds.Inc()
	s.draftProposed.Add(int64(proposed))
	s.draftAccepted.Add(int64(accepted))
}

// onDraftSteps records n draft model forward steps (proposals, lockstep
// tracking, and prefix replays all count — the full overhead the draft
// adds).
func (s *statsCollector) onDraftSteps(n int) { s.draftSteps.Add(int64(n)) }

func (s *statsCollector) onBatchStep(b int) {
	if b >= 0 && b < len(s.batches) {
		s.batches[b].Inc()
	}
	s.batchSum.Add(int64(b))
	s.stepCount.Inc()
	s.occupancy.SetInt(int64(b))
}

// Snapshot is a point-in-time view of serving telemetry.
type Snapshot struct {
	// Uptime since the server started.
	Uptime time.Duration
	// Accepted counts requests admitted past the queue (cache hits served
	// directly are Completed without being Accepted).
	Accepted uint64
	// Completed counts requests answered with tokens (including cache
	// hits); Shed were refused at admission (queue full), Expired had
	// their deadline pass before or during service.
	Completed, Shed, Expired uint64
	// ExpiredInFlight is the subset of Expired that had already started
	// generating (abandoned at a step boundary or mid-linger);
	// DiscardedTokens is the partial output those sequences discarded —
	// the compute wasted on callers that stopped waiting.
	ExpiredInFlight, DiscardedTokens uint64
	// Tokens is the total tokens delivered (cache hits count: they
	// displaced generation work).
	Tokens uint64
	// LatencyP50/P99 are quantiles over every completion, read from the
	// registry's log-bucket latency histogram (within ±1.6% relative
	// error); LatencyMean averages every completion since the server
	// started.
	LatencyP50, LatencyP99, LatencyMean time.Duration
	// MeanBatch is sequence-steps per model step — the batching factor
	// actually achieved; BatchDist[b] is how many steps ran at batch b.
	MeanBatch float64
	BatchDist []uint64
	// Cache telemetry (zero when the respective cache is disabled).
	ResultHits, ResultMisses, ResultEvicted uint64
	ResultEntries                           int
	PrefixHits, PrefixMisses, PrefixEvicted uint64
	PrefixEntries                           int
	// WeightsVersion is the current weights generation (1 at start; each
	// Reload increments it); Reloads counts completed Reload calls.
	WeightsVersion uint64
	Reloads        int64
	// Quantized reports whether replicas serve on int8 weights; DraftK is
	// the speculative lookahead (0 when speculative decoding is off).
	Quantized bool
	DraftK    int
	// SpecRounds counts speculative verify rounds; DraftProposed/
	// DraftAccepted are the proposals offered and accepted across them
	// (their ratio is the acceptance rate the Zipf skew is supposed to
	// buy); DraftSteps is every draft model forward step, the overhead
	// side of the trade.
	SpecRounds    uint64
	DraftProposed uint64
	DraftAccepted uint64
	DraftSteps    uint64
	// SLO holds the evaluation of every declared objective (nil when the
	// server was configured without SLOs).
	SLO []telemetry.Status
}

// SpecAcceptanceRate returns DraftAccepted/DraftProposed, 0 before any
// proposal.
func (s Snapshot) SpecAcceptanceRate() float64 {
	if s.DraftProposed == 0 {
		return 0
	}
	return float64(s.DraftAccepted) / float64(s.DraftProposed)
}

// HitRate returns result-cache hits / lookups, 0 when no lookups happened.
func (s Snapshot) HitRate() float64 {
	total := s.ResultHits + s.ResultMisses
	if total == 0 {
		return 0
	}
	return float64(s.ResultHits) / float64(total)
}

// snapshot assembles the exported view from the registry instruments
// (cache counters are merged in by the server, which owns the caches).
func (s *statsCollector) snapshot() Snapshot {
	out := Snapshot{
		Uptime:          time.Since(s.start),
		Accepted:        uint64(s.accepted.Value()),
		Completed:       uint64(s.completed.Value()),
		Shed:            uint64(s.shed.Value()),
		Expired:         uint64(s.expired.Value()),
		ExpiredInFlight: uint64(s.expiredInFlight.Value()),
		DiscardedTokens: uint64(s.discardedTokens.Value()),
		Tokens:          uint64(s.tokens.Value()),
		BatchDist:       make([]uint64, len(s.batches)),
		SpecRounds:      uint64(s.specRounds.Value()),
		DraftProposed:   uint64(s.draftProposed.Value()),
		DraftAccepted:   uint64(s.draftAccepted.Value()),
		DraftSteps:      uint64(s.draftSteps.Value()),
	}
	for b, c := range s.batches {
		out.BatchDist[b] = uint64(c.Value())
	}
	if steps := s.stepCount.Value(); steps > 0 {
		out.MeanBatch = float64(s.batchSum.Value()) / float64(steps)
	}
	if n := s.lat.Count(); n > 0 {
		out.LatencyP50 = time.Duration(s.lat.P50())
		out.LatencyP99 = time.Duration(s.lat.P99())
		out.LatencyMean = time.Duration(s.lat.Sum() / n)
	}
	return out
}
