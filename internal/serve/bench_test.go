package serve

import (
	"runtime"
	"testing"

	"zipflm/internal/model"
	"zipflm/internal/sampling"
)

// The acceptance benchmark pair: the same model, the same closed-loop
// workload, caches off — only the batch bound changes. Batched serving must
// beat sequential single-stream tokens/s because every step streams the
// V×D output embedding (and the recurrent weights) once for the whole
// batch instead of once per sequence (tensor.MatMulABTStream).

func benchModel() *model.LM {
	return model.NewLM(model.Config{Vocab: 2000, Dim: 64, Hidden: 96, RNN: model.KindLSTM, Seed: 4})
}

func runServeBench(b *testing.B, maxBatch, clients int) {
	runServeBenchCompute(b, maxBatch, clients, 0)
}

// runServeBenchCompute additionally tiles each forward step's matmuls
// across computeWorkers goroutines (0: serial). Responses are bit-identical
// either way — the variants differ only in wall-clock, and on a
// single-core runner (GOMAXPROCS=1, the -N suffix in the benchmark name)
// they measure dispatch overhead rather than speedup.
func runServeBenchCompute(b *testing.B, maxBatch, clients, computeWorkers int) {
	m := benchModel()
	s := New(m, Config{MaxBatch: maxBatch, ComputeWorkers: computeWorkers, QueueDepth: 2 * clients})
	defer s.Close()
	b.ResetTimer()
	rep := RunLoad(s, LoadConfig{
		Clients:    clients,
		Requests:   b.N,
		PromptPool: 1 << 20, // effectively no repeats: measure generation, not caching
		Vocab:      m.Cfg.Vocab,
		Tokens:     16,
		Opts:       sampling.DecodeOpts{Temperature: 0.8},
		Seed:       1,
	})
	b.StopTimer()
	if rep.Completed != b.N {
		b.Fatalf("completed %d of %d", rep.Completed, b.N)
	}
	b.ReportMetric(float64(rep.TokensOut)/b.Elapsed().Seconds(), "tok/s")
	b.ReportMetric(s.Stats().MeanBatch, "batch")
}

// BenchmarkServeSequential is the single-stream baseline: one client, batch
// bound 1 — exactly the old model.Generate serving shape.
func BenchmarkServeSequential(b *testing.B) { runServeBench(b, 1, 1) }

// BenchmarkServeBatched8 coalesces 8 closed-loop clients into batches of up
// to 8.
func BenchmarkServeBatched8(b *testing.B) { runServeBench(b, 8, 8) }

// BenchmarkServeBatched16 doubles the pressure.
func BenchmarkServeBatched16(b *testing.B) { runServeBench(b, 16, 16) }

// BenchmarkServeBatched8Compute2 runs the batch-8 workload with each step's
// matmuls tiled across 2 goroutines.
func BenchmarkServeBatched8Compute2(b *testing.B) { runServeBenchCompute(b, 8, 8, 2) }

// BenchmarkServeBatched8Compute4 tiles across 4.
func BenchmarkServeBatched8Compute4(b *testing.B) { runServeBenchCompute(b, 8, 8, 4) }

// BenchmarkServeBatched8ComputeMax tiles across GOMAXPROCS.
func BenchmarkServeBatched8ComputeMax(b *testing.B) {
	runServeBenchCompute(b, 8, 8, runtime.GOMAXPROCS(0))
}
