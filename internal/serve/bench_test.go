package serve

import (
	"runtime"
	"testing"

	"zipflm/internal/model"
	"zipflm/internal/sampling"
)

// The acceptance benchmark pair: the same model, the same closed-loop
// workload, caches off — only the batch bound changes. Batched serving must
// beat sequential single-stream tokens/s because every step streams the
// V×D output embedding (and the recurrent weights) once for the whole
// batch instead of once per sequence (tensor.MatMulABTStream).

func benchModel() *model.LM {
	return model.NewLM(model.Config{Vocab: 2000, Dim: 64, Hidden: 96, RNN: model.KindLSTM, Seed: 4})
}

func runServeBench(b *testing.B, maxBatch, clients int) {
	runServeBenchCompute(b, maxBatch, clients, 0)
}

// runServeBenchCompute additionally tiles each forward step's matmuls
// across computeWorkers goroutines (0: serial). Responses are bit-identical
// either way — the variants differ only in wall-clock, and on a
// single-core runner (GOMAXPROCS=1, the -N suffix in the benchmark name)
// they measure dispatch overhead rather than speedup.
func runServeBenchCompute(b *testing.B, maxBatch, clients, computeWorkers int) {
	m := benchModel()
	s := New(m, Config{MaxBatch: maxBatch, ComputeWorkers: computeWorkers, QueueDepth: 2 * clients})
	defer s.Close()
	b.ResetTimer()
	rep := RunLoad(s, LoadConfig{
		Clients:    clients,
		Requests:   b.N,
		PromptPool: 1 << 20, // effectively no repeats: measure generation, not caching
		Vocab:      m.Cfg.Vocab,
		Tokens:     16,
		Opts:       sampling.DecodeOpts{Temperature: 0.8},
		Seed:       1,
	})
	b.StopTimer()
	if rep.Completed != b.N {
		b.Fatalf("completed %d of %d", rep.Completed, b.N)
	}
	b.ReportMetric(float64(rep.TokensOut)/b.Elapsed().Seconds(), "tok/s")
	b.ReportMetric(s.Stats().MeanBatch, "batch")
}

// BenchmarkServeSequential is the single-stream baseline: one client, batch
// bound 1 — exactly the old model.Generate serving shape.
func BenchmarkServeSequential(b *testing.B) { runServeBench(b, 1, 1) }

// BenchmarkServeBatched8 coalesces 8 closed-loop clients into batches of up
// to 8.
func BenchmarkServeBatched8(b *testing.B) { runServeBench(b, 8, 8) }

// BenchmarkServeBatched16 doubles the pressure.
func BenchmarkServeBatched16(b *testing.B) { runServeBench(b, 16, 16) }

// BenchmarkServeBatched8Compute2 runs the batch-8 workload with each step's
// matmuls tiled across 2 goroutines.
func BenchmarkServeBatched8Compute2(b *testing.B) { runServeBenchCompute(b, 8, 8, 2) }

// BenchmarkServeBatched8Compute4 tiles across 4.
func BenchmarkServeBatched8Compute4(b *testing.B) { runServeBenchCompute(b, 8, 8, 4) }

// BenchmarkServeBatched8ComputeMax tiles across GOMAXPROCS.
func BenchmarkServeBatched8ComputeMax(b *testing.B) {
	runServeBenchCompute(b, 8, 8, runtime.GOMAXPROCS(0))
}

// --- Quantized serving ---
//
// The quantized acceptance pair: a model big enough that single-token decode
// is genuinely memory-bound (the V×D output embedding dominates, and its
// FP32 form far exceeds L2), served FP32 vs int8. Reading 4× fewer weight
// bytes per step must raise single-sequence tok/s — that is the whole case
// for Config.Quantized.

func quantBenchModel() *model.LM {
	return model.NewLM(model.Config{Vocab: 8000, Dim: 128, Hidden: 128, RNN: model.KindLSTM, Seed: 4})
}

func runQuantBench(b *testing.B, quantized bool, maxBatch, clients int) {
	m := quantBenchModel()
	s := New(m, Config{Quantized: quantized, MaxBatch: maxBatch, QueueDepth: 2 * clients})
	defer s.Close()
	b.ResetTimer()
	rep := RunLoad(s, LoadConfig{
		Clients:    clients,
		Requests:   b.N,
		PromptPool: 1 << 20,
		Vocab:      m.Cfg.Vocab,
		Tokens:     16,
		Opts:       sampling.DecodeOpts{Temperature: 0.8},
		Seed:       1,
	})
	b.StopTimer()
	if rep.Completed != b.N {
		b.Fatalf("completed %d of %d", rep.Completed, b.N)
	}
	b.ReportMetric(float64(rep.TokensOut)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkServeQuantFP32Sequential is the FP32 single-sequence baseline on
// the memory-bound model.
func BenchmarkServeQuantFP32Sequential(b *testing.B) { runQuantBench(b, false, 1, 1) }

// BenchmarkServeQuantQ8Sequential serves the same workload on int8 weights —
// the leg that must win.
func BenchmarkServeQuantQ8Sequential(b *testing.B) { runQuantBench(b, true, 1, 1) }

// BenchmarkServeQuantFP32Batched8 / Q8Batched8: batching already amortizes
// the weight stream across sequences, so the q8 edge narrows — both views
// matter when sizing a deployment.
func BenchmarkServeQuantFP32Batched8(b *testing.B) { runQuantBench(b, false, 8, 8) }
func BenchmarkServeQuantQ8Batched8(b *testing.B)   { runQuantBench(b, true, 8, 8) }

// --- Speculative decoding ---
//
// Three legs bracket the speculative trade on the same memory-bound model,
// greedy decoding, single stream: no draft (baseline), a same-weights draft
// (acceptance exactly 1 — the mechanism's accounting ceiling, not a speedup
// claim, since this draft costs as much as the target), and a small cold
// draft (acceptance ≈ 0 — the overhead floor). A trained small-draft
// pairing, which is where the win lives, is measured in the serving
// experiment (zipflm-bench -exp serving).

func runSpecBench(b *testing.B, draft *model.LM, k int, quantized bool) {
	m := quantBenchModel()
	s := New(m, Config{Quantized: quantized, Draft: draft, DraftK: k, MaxBatch: 1, QueueDepth: 4})
	defer s.Close()
	b.ResetTimer()
	rep := RunLoad(s, LoadConfig{
		Clients:    1,
		Requests:   b.N,
		PromptPool: 1 << 20,
		Vocab:      m.Cfg.Vocab,
		Tokens:     16,
		Seed:       1, // zero Opts: greedy — acceptance is deterministic
	})
	b.StopTimer()
	if rep.Completed != b.N {
		b.Fatalf("completed %d of %d", rep.Completed, b.N)
	}
	b.ReportMetric(float64(rep.TokensOut)/b.Elapsed().Seconds(), "tok/s")
	if draft != nil {
		b.ReportMetric(s.Stats().SpecAcceptanceRate(), "accept")
	}
}

// BenchmarkSpecDecodeOff is the no-draft baseline.
func BenchmarkSpecDecodeOff(b *testing.B) { runSpecBench(b, nil, 0, false) }

// BenchmarkSpecDecodeAccept100 uses a same-weights draft: every proposal is
// the target's own argmax, acceptance is exactly 1.
func BenchmarkSpecDecodeAccept100(b *testing.B) {
	m := quantBenchModel()
	d := model.NewLM(m.Cfg)
	d.CopyWeightsFrom(m)
	runSpecBench(b, d, 4, false)
}

// BenchmarkSpecDecodeColdDraft pays for a small draft that is never right —
// the worst-case overhead of speculation.
func BenchmarkSpecDecodeColdDraft(b *testing.B) {
	m := quantBenchModel()
	d := model.NewLM(model.Config{Vocab: m.Cfg.Vocab, Dim: 16, Hidden: 24,
		RNN: model.KindRHN, RHNDepth: 2, Seed: 33})
	runSpecBench(b, d, 4, false)
}

// BenchmarkSpecDecodeQuantColdDraft stacks both features: q8 target weights
// under speculative decoding.
func BenchmarkSpecDecodeQuantColdDraft(b *testing.B) {
	m := quantBenchModel()
	d := model.NewLM(model.Config{Vocab: m.Cfg.Vocab, Dim: 16, Hidden: 24,
		RNN: model.KindRHN, RHNDepth: 2, Seed: 33})
	runSpecBench(b, d, 4, true)
}
