package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"zipflm/internal/model"
	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

// draftFor returns a small RHN draft sharing m's vocabulary — the intended
// speculative pairing (tiny proposer, big verifier).
func draftFor(m *model.LM, seed uint64) *model.LM {
	return model.NewLM(model.Config{
		Vocab: m.Cfg.Vocab, Dim: 8, Hidden: 12,
		RNN: model.KindRHN, RHNDepth: 2, Seed: seed,
	})
}

// raggedRequests builds a mixed workload: ragged prompt lengths, varied N,
// every decoding mode.
func raggedRequests(vocab, n int, seedBase uint64) []Request {
	r := rng.New(seedBase)
	reqs := make([]Request, n)
	for i := range reqs {
		prompt := make([]int, 1+r.Intn(6))
		for j := range prompt {
			prompt[j] = r.Intn(vocab)
		}
		opts := sampling.DecodeOpts{}
		switch i % 4 {
		case 1:
			opts.Temperature = 0.9
		case 2:
			opts.Temperature = 1.1
			opts.TopK = 10
		case 3:
			opts.Temperature = 0.8
			opts.TopP = 0.9
		}
		reqs[i] = Request{Prompt: prompt, N: 1 + r.Intn(10), Opts: opts, Seed: seedBase + uint64(i)}
	}
	return reqs
}

// submitAll runs every request concurrently and checks each response
// bit-for-bit against ref.
func submitAll(t *testing.T, s *Server, ref *model.LM, reqs []Request, tag string) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(reqs))
	got := make([][]int, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			res, err := s.Submit(req)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.Tokens
		}(i, req)
	}
	wg.Wait()
	for i, req := range reqs {
		if errs[i] != nil {
			t.Fatalf("%s req %d failed: %v", tag, i, errs[i])
		}
		want := reference(ref, req)
		if len(got[i]) != len(want) {
			t.Fatalf("%s req %d: %d tokens, want %d", tag, i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("%s req %d token %d: served %d != sequential %d", tag, i, j, got[i][j], want[j])
			}
		}
	}
}

// TestServeQuantizedBitIdentical: a Quantized server answers every request
// exactly as sequential generation on the quantized model would — the q8
// serving path inherits the full bit-identity contract, with the quantized
// model (not the FP32 source) as the reference.
func TestServeQuantizedBitIdentical(t *testing.T) {
	for name, m := range map[string]*model.LM{"lstm": lstmModel(), "rhn": rhnModel()} {
		ref := m.Quantize()
		for _, maxBatch := range []int{1, 4} {
			s := New(m, Config{Quantized: true, MaxBatch: maxBatch, QueueDepth: 64,
				CacheEntries: 16, PrefixEntries: 8})
			submitAll(t, s, ref, raggedRequests(m.Cfg.Vocab, 20, 100), name)
			if !s.Stats().Quantized {
				t.Fatalf("%s: snapshot does not report quantized serving", name)
			}
			s.Close()
		}
	}
}

// TestServeSpeculativeBitIdentical is the speculative-serving acceptance
// contract: with a cold draft proposing (plenty of rejections), concurrent
// ragged traffic at several batch bounds — FP32 and quantized targets — every
// response is still bit-identical to sequential generation on the target.
// The draft may only ever change the cost per token, never a token.
func TestServeSpeculativeBitIdentical(t *testing.T) {
	for name, m := range map[string]*model.LM{"lstm": lstmModel(), "rhn": rhnModel()} {
		for _, quantized := range []bool{false, true} {
			ref := m
			if quantized {
				ref = m.Quantize()
			}
			for _, maxBatch := range []int{1, 4} {
				s := New(m, Config{Quantized: quantized, Draft: draftFor(m, 33), DraftK: 3,
					MaxBatch: maxBatch, QueueDepth: 64, CacheEntries: 16, PrefixEntries: 8})
				tag := name
				if quantized {
					tag += "+q8"
				}
				submitAll(t, s, ref, raggedRequests(m.Cfg.Vocab, 24, 300), tag)
				snap := s.Stats()
				s.Close()
				if snap.DraftK != 3 {
					t.Fatalf("%s: snapshot DraftK = %d, want 3", tag, snap.DraftK)
				}
				if snap.SpecRounds == 0 || snap.DraftSteps == 0 {
					t.Fatalf("%s: speculative path never ran: %+v", tag, snap)
				}
				if snap.DraftAccepted > snap.DraftProposed {
					t.Fatalf("%s: accepted %d > proposed %d", tag, snap.DraftAccepted, snap.DraftProposed)
				}
				if r := snap.SpecAcceptanceRate(); r < 0 || r > 1 {
					t.Fatalf("%s: acceptance rate %v outside [0,1]", tag, r)
				}
			}
		}
	}
}

// TestServeSpeculativeFullAcceptance: with the draft sharing the target's
// weights and greedy requests, every proposal matches the target's own argmax
// — serving-side acceptance must be total.
func TestServeSpeculativeFullAcceptance(t *testing.T) {
	m := lstmModel()
	d := model.NewLM(m.Cfg)
	d.CopyWeightsFrom(m)
	s := New(m, Config{Draft: d, DraftK: 4, MaxBatch: 2})
	defer s.Close()
	for seed := uint64(1); seed <= 4; seed++ {
		req := Request{Prompt: []int{3, 1, 4}, N: 12, Seed: seed}
		res, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		want := reference(m, req)
		for i := range want {
			if res.Tokens[i] != want[i] {
				t.Fatalf("seed %d token %d: %d != %d", seed, i, res.Tokens[i], want[i])
			}
		}
	}
	snap := s.Stats()
	if snap.DraftProposed == 0 || snap.DraftAccepted != snap.DraftProposed {
		t.Fatalf("identical draft rejected: accepted %d of %d", snap.DraftAccepted, snap.DraftProposed)
	}
	if snap.SpecAcceptanceRate() != 1 {
		t.Fatalf("acceptance rate %v, want 1", snap.SpecAcceptanceRate())
	}
}

// TestServeSpeculativePrefixCache: the prefix cache and the draft compose —
// a repeated prompt skips target prefill (the draft replays it cheaply) and
// the response stays bit-identical.
func TestServeSpeculativePrefixCache(t *testing.T) {
	m := rhnModel()
	s := New(m, Config{Draft: draftFor(m, 33), DraftK: 3, MaxBatch: 2, PrefixEntries: 8})
	defer s.Close()

	prompt := []int{9, 3, 14, 2}
	if _, err := s.Submit(Request{Prompt: prompt, N: 5, Opts: sampling.DecodeOpts{Temperature: 0.7}, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	req := Request{Prompt: prompt, N: 8, Opts: sampling.DecodeOpts{Temperature: 0.7}, Seed: 42}
	res, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PrefixHit {
		t.Fatal("repeated prompt should hit the prefix cache on a speculative server")
	}
	want := reference(m, req)
	for i := range want {
		if res.Tokens[i] != want[i] {
			t.Fatalf("token %d: prefix-cached speculative %d != sequential %d", i, res.Tokens[i], want[i])
		}
	}
}

// TestReloadWithDraft: target and draft swap as a pair with zero downtime,
// post-reload responses are bit-identical to the new target, and the draft
// change shows up only as cost (never tokens).
func TestReloadWithDraft(t *testing.T) {
	m1, m2 := reloadModels()
	d1 := draftFor(m1, 33)
	d2 := draftFor(m1, 55)
	d2.Cfg.Seed = d1.Cfg.Seed // same architecture identity, different weights
	s := New(m1, Config{Draft: d1, DraftK: 3, MaxBatch: 4, QueueDepth: 256})
	defer s.Close()

	reqs := raggedRequests(m1.Cfg.Vocab, 32, 500)
	var wg sync.WaitGroup
	results := make([]*Result, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			res, err := s.Submit(req)
			if err != nil {
				t.Errorf("req %d shed during draft reload: %v", i, err)
				return
			}
			results[i] = res
		}(i, req)
	}
	time.Sleep(time.Millisecond)
	v, err := s.ReloadWithDraft(m2, d2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("reload returned version %d", v)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			continue
		}
		ref := m1
		if res.WeightsVersion == 2 {
			ref = m2
		}
		want := reference(ref, reqs[i])
		for j := range want {
			if res.Tokens[j] != want[j] {
				t.Fatalf("req %d (v%d) token %d differs from sequential", i, res.WeightsVersion, j)
			}
		}
	}

	// Strictly after the reload: new target, new draft, still bit-identical.
	after := Request{Prompt: []int{7, 7, 7}, N: 10, Seed: 9}
	res, err := s.Submit(after)
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightsVersion != 2 {
		t.Fatalf("post-reload request served by v%d", res.WeightsVersion)
	}
	want := reference(m2, after)
	for j := range want {
		if res.Tokens[j] != want[j] {
			t.Fatal("post-reload speculative response not bit-identical to new target")
		}
	}
}

// TestReloadWithDraftValidation: draft reloads are rejected on non-speculative
// servers and on architecture mismatch; New panics on a vocabulary mismatch.
func TestReloadWithDraftValidation(t *testing.T) {
	m1, m2 := reloadModels()

	plain := New(m1, Config{})
	if _, err := plain.ReloadWithDraft(m2, draftFor(m1, 33)); err == nil ||
		!strings.Contains(err.Error(), "without speculative decoding") {
		t.Fatalf("draft reload on plain server returned %v", err)
	}
	plain.Close()

	spec := New(m1, Config{Draft: draftFor(m1, 33), DraftK: 2})
	defer spec.Close()
	wrong := model.NewLM(model.Config{Vocab: m1.Cfg.Vocab, Dim: 8, Hidden: 16,
		RNN: model.KindRHN, RHNDepth: 2, Seed: 33})
	if _, err := spec.ReloadWithDraft(m2, wrong); err == nil {
		t.Fatal("mismatched draft architecture accepted")
	}
	// Target-only reload on a speculative server keeps working.
	if _, err := spec.Reload(m2); err != nil {
		t.Fatal(err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("vocabulary-mismatched draft must panic at New")
		}
	}()
	bad := model.NewLM(model.Config{Vocab: m1.Cfg.Vocab + 1, Dim: 8, Hidden: 12,
		RNN: model.KindRHN, RHNDepth: 2, Seed: 33})
	New(m1, Config{Draft: bad})
}
