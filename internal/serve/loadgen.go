package serve

import (
	"sync"
	"time"

	"zipflm/internal/rng"
	"zipflm/internal/sampling"
)

// Closed-loop load generator: C concurrent clients, each submitting its
// next request only after the previous one completes — the canonical
// serving-benchmark harness (offered load adapts to service rate, so the
// system is measured at its own saturation point, not at an arbitrary open-
// loop arrival rate).
//
// Request popularity follows a Zipf law over a pool of distinct prompts,
// mirroring the paper's traffic model: rank r is requested with probability
// ∝ 1/(r+1)^s. Every request for rank r is byte-identical (same prompt,
// same seed derived from r), so the result cache's hit rate directly
// measures how much of a power-law workload a bounded cache absorbs — the
// serving-side mirror of the paper's unique-words argument, and PerRank
// lets internal/powerlaw verify the generated load really follows the law
// it claims.

// LoadConfig tunes a load run.
type LoadConfig struct {
	// Clients is the closed-loop concurrency (default 4).
	Clients int
	// Requests is the total request count across all clients.
	Requests int
	// PromptPool is the number of distinct prompts (Zipf ranks).
	PromptPool int
	// ZipfS is the popularity exponent (default 1.1, the corpus
	// generators' default).
	ZipfS float64
	// Vocab bounds the synthesized prompt tokens; must match the model.
	Vocab int
	// MinPromptLen/MaxPromptLen bound the ragged prompt lengths
	// (defaults 2 and 8).
	MinPromptLen, MaxPromptLen int
	// Tokens is N per request (default 16).
	Tokens int
	// Opts is the decode configuration every request uses.
	Opts sampling.DecodeOpts
	// Deadline, when positive, is attached to every request as
	// now.Add(Deadline).
	Deadline time.Duration
	// Seed makes the whole load deterministic.
	Seed uint64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.PromptPool <= 0 {
		c.PromptPool = 64
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.MinPromptLen <= 0 {
		c.MinPromptLen = 2
	}
	if c.MaxPromptLen < c.MinPromptLen {
		c.MaxPromptLen = c.MinPromptLen + 6
	}
	if c.Tokens <= 0 {
		c.Tokens = 16
	}
	return c
}

// PromptForRank synthesizes rank r's prompt deterministically: length and
// tokens depend only on (cfg.Seed, r), so replays of a rank are exact
// repeats — the property that makes the result cache effective.
func (c LoadConfig) PromptForRank(rank int) []int {
	c = c.withDefaults()
	if c.Vocab <= 0 {
		panic("serve: LoadConfig.Vocab must be set to the model's vocabulary size")
	}
	r := rng.New(c.Seed ^ (0x9e3779b97f4a7c15 * uint64(rank+1)))
	n := c.MinPromptLen + r.Intn(c.MaxPromptLen-c.MinPromptLen+1)
	p := make([]int, n)
	for i := range p {
		p[i] = r.Intn(c.Vocab)
	}
	return p
}

// SeedForRank derives rank r's request seed (any fixed function of r works;
// it just has to repeat).
func (c LoadConfig) SeedForRank(rank int) uint64 {
	return c.Seed*0x100000001b3 + uint64(rank)*2654435761 + 1
}

// LoadReport summarizes one closed-loop run.
type LoadReport struct {
	// Wall is the whole run's duration; Issued the requests submitted.
	Wall   time.Duration
	Issued int
	// Completed / Shed / Expired partition the outcomes; Failed counts
	// unexpected errors (should be zero).
	Completed, Shed, Expired, Failed int
	// TokensOut sums delivered tokens (cache hits included).
	TokensOut int
	// CacheHits / PrefixHits count per-request flags on completions.
	CacheHits, PrefixHits int
	// PerRank[r] is how many requests drew rank r — the empirical
	// popularity histogram for the power-law fit.
	PerRank []int
}

// TokensPerSecond is delivered-token throughput over the run.
func (r LoadReport) TokensPerSecond() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.TokensOut) / r.Wall.Seconds()
}

// RequestsPerSecond is completed-request throughput over the run.
func (r LoadReport) RequestsPerSecond() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Wall.Seconds()
}

// RunLoad drives the server with cfg.Requests closed-loop requests and
// returns the aggregate report. The rank sequence is drawn up front from a
// single Zipf stream, so the issued workload — PerRank, and with it the
// power-law fit and the cache's hit opportunity — is deterministic given
// cfg.Seed no matter how the scheduler interleaves clients. Which client
// issues which request, and therefore exact timings, still vary; response
// bytes never do.
func RunLoad(s *Server, cfg LoadConfig) LoadReport {
	cfg = cfg.withDefaults()
	if cfg.Vocab <= 0 {
		// Fail in the caller's goroutine, not inside a client goroutine
		// where the panic would be unrecoverable for the caller.
		panic("serve: LoadConfig.Vocab must be set to the model's vocabulary size")
	}
	zipf := rng.NewZipf(rng.New(cfg.Seed+13), cfg.PromptPool, cfg.ZipfS)
	ranks := make([]int, cfg.Requests)
	for i := range ranks {
		ranks[i] = zipf.Next()
	}
	var (
		mu     sync.Mutex
		report = LoadReport{PerRank: make([]int, cfg.PromptPool)}
		next   int // requests handed out
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= cfg.Requests {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				rank := ranks[i]
				req := Request{
					Prompt: cfg.PromptForRank(rank),
					N:      cfg.Tokens,
					Opts:   cfg.Opts,
					Seed:   cfg.SeedForRank(rank),
				}
				if cfg.Deadline > 0 {
					req.Deadline = time.Now().Add(cfg.Deadline)
				}
				res, err := s.Submit(req)

				mu.Lock()
				report.Issued++
				report.PerRank[rank]++
				switch {
				case err == nil:
					report.Completed++
					report.TokensOut += len(res.Tokens)
					if res.CacheHit {
						report.CacheHits++
					}
					if res.PrefixHit {
						report.PrefixHits++
					}
				case err == ErrOverloaded:
					report.Shed++
				case err == ErrDeadlineExceeded:
					report.Expired++
				default:
					report.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	report.Wall = time.Since(start)
	return report
}
