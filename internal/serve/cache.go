package serve

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"zipflm/internal/model"
	"zipflm/internal/sampling"
)

// The serving-side mirror of the paper's unique-word argument: request
// popularity is Zipf-distributed, so a small LRU over request keys absorbs
// most of the traffic the way a small set of hot embedding rows absorbs
// most of the gradient updates. Two caches exploit it at different depths:
//
//   - the result cache keys the full request (prompt, n, decode options,
//     seed) and returns finished token sequences without touching a worker;
//   - the prefix cache keys the prompt alone and snapshots the post-prompt
//     recurrent state plus logits, so a request that misses the result
//     cache but repeats a hot prompt skips prefill entirely (correct for
//     any seed/temperature: the post-prompt state is deterministic).

// lruCache is a mutex-guarded LRU with hit/miss accounting. Values are
// treated as immutable by convention; callers copy on the way in and out as
// needed.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	items   map[string]*list.Element
	hits    uint64
	misses  uint64
	evicted uint64
}

type lruEntry struct {
	key string
	val any
}

// newLRUCache returns a cache bounded to capacity entries; capacity <= 0
// returns nil (callers treat a nil cache as disabled).
func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	return c.getIf(key, nil)
}

// getIf is get with a validity predicate: an entry that fails it is
// dropped and counted as a miss — the hit counters must only report work
// the cache actually served (a version-stale entry after a weights reload
// is a miss, not a hit).
func (c *lruCache) getIf(key string, valid func(any) bool) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	val := el.Value.(*lruEntry).val
	if valid != nil && !valid(val) {
		c.misses++
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return val, true
}

// put inserts or refreshes a key, evicting the least recently used entry
// when full.
func (c *lruCache) put(key string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evicted++
	}
}

// reset drops every entry (hit/miss counters keep accumulating) — used by
// Reload to release the old weights' cached work promptly. Per-entry
// version tags, not this reset, are what guarantee correctness: a stale
// entry that races back in is rejected at lookup.
func (c *lruCache) reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.cap)
}

// counters returns (hits, misses, evicted, len).
func (c *lruCache) counters() (uint64, uint64, uint64, int) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted, c.ll.Len()
}

// prefixEntry is a post-prompt snapshot: the recurrent state after the last
// prompt token and the logits that token produced. Both are immutable once
// cached — samplers copy logits into their own scratch, and states are
// cloned on the way out. The version tags the weights generation that
// computed the snapshot; a worker on different weights treats it as a miss.
type prefixEntry struct {
	state   *model.GenState
	logits  []float32
	version uint64
}

// resultEntry is a finished token sequence tagged with the weights
// generation that produced it; Submit serves it only while that generation
// is still current.
type resultEntry struct {
	version uint64
	tokens  []int
}

// resultKey encodes the full request identity. Any field that can change
// the output token sequence must appear here.
func resultKey(prompt []int, n int, opts sampling.DecodeOpts, seed uint64) string {
	var b strings.Builder
	b.Grow(8*len(prompt) + 64)
	for _, id := range prompt {
		b.WriteString(strconv.Itoa(id))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(n))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(opts.Temperature, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(opts.TopK))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(opts.TopP, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(seed, 10))
	return b.String()
}

// prefixKey encodes the prompt alone: the post-prompt state depends on
// nothing else.
func prefixKey(prompt []int) string {
	var b strings.Builder
	b.Grow(8 * len(prompt))
	for _, id := range prompt {
		b.WriteString(strconv.Itoa(id))
		b.WriteByte(',')
	}
	return b.String()
}
