package core

import (
	"sync"
	"testing"

	"zipflm/internal/cluster"
	"zipflm/internal/collective"
	"zipflm/internal/perfmodel"
	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// simExchange runs one exchange across g ranks with the virtual clock
// attached and returns each rank's Stats. mkEx builds the engine once the
// cluster (and so the clock set) exists, so hierarchical engines can attach
// their topology-aware costs.
func simExchange(t *testing.T, mkEx func(clu *cluster.Cluster) Exchanger, g, k, d, vocab int, seed uint64) []Stats {
	t.Helper()
	clu := cluster.New(g, 0)
	comm := collective.New(g)
	hw := perfmodel.TitanX()
	comm.AttachCost(&collective.CostModel{Link: hw.RingLink(g), Clocks: clu.Clocks()})
	ex := mkEx(clu)

	grads := make([]SparseGrad, g)
	root := rng.New(seed)
	for r := 0; r < g; r++ {
		rr := root.Fork()
		z := rng.NewZipf(rr, vocab, 1.2)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = z.Next()
		}
		rows := tensor.NewMatrix(k, d)
		rows.RandomizeNormal(rr, 1)
		grads[r] = SparseGrad{Indices: idx, Rows: rows}
	}

	stats := make([]Stats, g)
	var wg sync.WaitGroup
	errs := make([]error, g)
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := &Ctx{Rank: rank, Comm: comm, Dev: clu.Devices[rank]}
			_, st, err := ex.Exchange(ctx, grads[rank])
			stats[rank] = st
			errs[rank] = err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return stats
}

// TestExchangeSimSeconds: with a cost model attached, every engine reports
// a positive simulated duration, identical on every rank (the collectives
// max-synchronize), reproducible across runs, and matching the device
// clock.
func TestExchangeSimSeconds(t *testing.T) {
	const g, k, d, vocab = 4, 64, 16, 500
	hw := perfmodel.TitanX()
	flat := func(ex Exchanger) func(*cluster.Cluster) Exchanger {
		return func(*cluster.Cluster) Exchanger { return ex }
	}
	hier := func(clu *cluster.Cluster) Exchanger {
		h := collective.NewHierarchy(g, 2)
		h.AttachCost(hw.IntraLink(), hw.InterLink(), clu.Clocks())
		return HierarchicalExchange{Hier: h}
	}
	for name, mk := range map[string]func(*cluster.Cluster) Exchanger{
		"baseline":     flat(BaselineAllGather{}),
		"unique":       flat(UniqueExchange{}),
		"hierarchical": hier,
	} {
		a := simExchange(t, mk, g, k, d, vocab, 7)
		if a[0].SimSeconds <= 0 {
			t.Errorf("%s: SimSeconds = %v, want > 0", name, a[0].SimSeconds)
		}
		b := simExchange(t, mk, g, k, d, vocab, 7)
		for r := range a {
			if a[r].SimSeconds != b[r].SimSeconds {
				t.Errorf("%s: rank %d sim time not reproducible: %v vs %v",
					name, r, a[r].SimSeconds, b[r].SimSeconds)
			}
		}
	}
	// The flat engines end max-synchronized (equal SimSeconds on all
	// ranks); the hierarchical engine's closing broadcast syncs groups,
	// not the cluster, so only the flat engines get this assertion.
	for _, ex := range []Exchanger{BaselineAllGather{}, UniqueExchange{}} {
		st := simExchange(t, flat(ex), g, k, d, vocab, 11)
		for r := 1; r < g; r++ {
			if st[r].SimSeconds != st[0].SimSeconds {
				t.Errorf("%s: rank %d sim %v != rank 0 %v", ex.Name(), r, st[r].SimSeconds, st[0].SimSeconds)
			}
		}
	}
}

// TestExchangeSimZeroWithoutClock: no cost model, no device → SimSeconds
// stays zero and nothing else changes.
func TestExchangeSimZeroWithoutClock(t *testing.T) {
	const g, k, d = 2, 8, 4
	comm := collective.New(g)
	grads := make([]SparseGrad, g)
	for r := range grads {
		rows := tensor.NewMatrix(k, d)
		idx := make([]int, k)
		grads[r] = SparseGrad{Indices: idx, Rows: rows}
	}
	var wg sync.WaitGroup
	stats := make([]Stats, g)
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := &Ctx{Rank: rank, Comm: comm}
			_, st, err := UniqueExchange{}.Exchange(ctx, grads[rank])
			if err != nil {
				t.Error(err)
			}
			stats[rank] = st
		}(r)
	}
	wg.Wait()
	for r, st := range stats {
		if st.SimSeconds != 0 {
			t.Errorf("rank %d: SimSeconds = %v without a clock", r, st.SimSeconds)
		}
	}
}
