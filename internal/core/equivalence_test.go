package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"zipflm/internal/collective"
	"zipflm/internal/half"
	"zipflm/internal/rng"
)

// runExchangeWS is runExchange with per-rank workspaces that persist across
// calls, exercising the pooled-scratch path the trainer uses. Passing the
// same wss into consecutive calls reuses warm scratch, which is exactly
// where stale-state bugs would surface.
func runExchangeWS(t *testing.T, ex Exchanger, grads []SparseGrad, wire collective.Wire, wss []*Workspace) []Update {
	t.Helper()
	g := len(grads)
	comm := collective.New(g)
	updates := make([]Update, g)
	errs := make([]error, g)
	var wg sync.WaitGroup
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := &Ctx{Rank: rank, Comm: comm, Wire: wire, WS: wss[rank]}
			updates[rank], _, errs[rank] = ex.Exchange(ctx, grads[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return updates
}

// maxAbsRef returns the largest-magnitude reference accumulation, the scale
// FP16 tolerances are relative to.
func maxAbsRef(ref map[int][]float64) float64 {
	m := 1.0
	for _, row := range ref {
		for _, v := range row {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	}
	return m
}

// TestCrossEngineEquivalenceProperty is the randomized, seeded, table-driven
// version of the paper's §V-A equivalence claim, extended to all three
// engines and the FP16 wire: for arbitrary (G, K, D, vocab, FP16) the
// baseline, unique, and hierarchical exchanges must produce the same sorted
// unique index set, per-engine bit-identical updates on every rank, and
// rows that agree with the serial float64 reference within the precision of
// the wire. Engines run twice on persistent per-rank workspaces so warm
// (reused) scratch is what's actually tested.
func TestCrossEngineEquivalenceProperty(t *testing.T) {
	r := rng.New(20260728)
	type shape struct {
		g, k, d, vocab, group int
		fp16                  bool
	}
	shapes := []shape{
		// Pinned corner cases: single rank, single token, one column,
		// tiny vocab (maximum duplication), group size 1 (every rank a
		// leader) and group size g (one node).
		{g: 1, k: 5, d: 3, vocab: 10, group: 1},
		{g: 4, k: 1, d: 1, vocab: 2, group: 2},
		{g: 5, k: 30, d: 4, vocab: 3, group: 5, fp16: true},
		{g: 6, k: 16, d: 2, vocab: 40, group: 1},
	}
	for len(shapes) < 24 {
		g := int(r.Uint64()%6) + 1
		shapes = append(shapes, shape{
			g:     g,
			k:     int(r.Uint64()%40) + 1,
			d:     int(r.Uint64()%8) + 1,
			vocab: int(r.Uint64()%50) + 2,
			group: int(r.Uint64()%uint64(g)) + 1,
			fp16:  r.Uint64()%2 == 0,
		})
	}
	for i, s := range shapes {
		s := s
		t.Run(fmt.Sprintf("case%02d_g%d_k%d_d%d_v%d_fp16%v", i, s.g, s.k, s.d, s.vocab, s.fp16), func(t *testing.T) {
			var wire collective.Wire
			if s.fp16 {
				wire = half.NewScaler(256)
			}
			engines := []Exchanger{
				BaselineAllGather{},
				UniqueExchange{},
				HierarchicalExchange{Hier: collective.NewHierarchy(s.g, s.group)},
			}
			// Persistent workspaces; warm them on a different shape first.
			wss := make([]*Workspace, s.g)
			for r := range wss {
				wss[r] = NewWorkspace()
			}
			warm := makeGrads(s.g, s.k/2+1, s.d+1, s.vocab, uint64(i)+99)
			for _, ex := range engines {
				runExchangeWS(t, ex, warm, nil, wss)
			}

			grads := makeGrads(s.g, s.k, s.d, s.vocab, uint64(i)+1)
			ref := referenceUpdate(grads)
			tol := 1e-3
			if s.fp16 {
				// Per-hop FP16 rounding compounds over ring steps; scale
				// the tolerance to the largest accumulated magnitude.
				tol = 0.05 * maxAbsRef(ref)
			}
			results := make([][]Update, len(engines))
			for ei, ex := range engines {
				updates := runExchangeWS(t, ex, grads, wire, wss)
				results[ei] = updates
				// Every rank of one engine must agree bit for bit — the
				// §II-B invariant that keeps replicas in sync.
				for r := 1; r < s.g; r++ {
					if len(updates[r].Indices) != len(updates[0].Indices) {
						t.Fatalf("%s: rank %d index count differs", ex.Name(), r)
					}
					for j := range updates[0].Indices {
						if updates[r].Indices[j] != updates[0].Indices[j] {
							t.Fatalf("%s: rank %d index %d differs", ex.Name(), r, j)
						}
					}
					for j := range updates[0].Rows.Data {
						if updates[r].Rows.Data[j] != updates[0].Rows.Data[j] {
							t.Fatalf("%s: rank %d row data %d not bit-identical", ex.Name(), r, j)
						}
					}
				}
				checkAgainstReference(t, ex.Name(), updates[0], ref, tol)
			}
			// Cross-engine: identical index sets (exact), rows already
			// pinned to the shared reference above.
			for ei := 1; ei < len(engines); ei++ {
				a, b := results[0][0], results[ei][0]
				if len(a.Indices) != len(b.Indices) {
					t.Fatalf("%s vs %s: unique sets differ in size", engines[0].Name(), engines[ei].Name())
				}
				for j := range a.Indices {
					if a.Indices[j] != b.Indices[j] {
						t.Fatalf("%s vs %s: index %d differs", engines[0].Name(), engines[ei].Name(), j)
					}
				}
			}
		})
	}
}
