package core_test

import (
	"fmt"
	"sync"

	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/tensor"
)

// ExampleUniqueExchange shows the §III-A exchange on two ranks whose
// batches overlap on word 7: both ranks end up with the identical global
// update, with one row per unique word.
func ExampleUniqueExchange() {
	comm := collective.New(2)
	grads := []core.SparseGrad{
		{ // rank 0 saw tokens [7, 3, 7]
			Indices: []int{7, 3, 7},
			Rows: tensor.NewMatrixFrom(3, 2, []float32{
				1, 1,
				2, 2,
				10, 10,
			}),
		},
		{ // rank 1 saw tokens [7, 5]
			Indices: []int{7, 5},
			Rows: tensor.NewMatrixFrom(2, 2, []float32{
				100, 100,
				3, 3,
			}),
		},
	}

	updates := make([]core.Update, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := &core.Ctx{Rank: rank, Comm: comm}
			updates[rank], _, _ = core.UniqueExchange{}.Exchange(ctx, grads[rank])
		}(rank)
	}
	wg.Wait()

	u := updates[0]
	for i, w := range u.Indices {
		fmt.Printf("word %d: %v\n", w, u.Rows.Row(i))
	}
	// Output:
	// word 3: [2 2]
	// word 5: [3 3]
	// word 7: [111 111]
}

// ExampleBaselineCost contrasts the closed-form per-GPU costs of the two
// engines at the paper's §III-A worked example (256 GPUs, K=19200, D=1792).
func ExampleBaselineCost() {
	base := core.BaselineCost(256, 19200, 1792, false)
	ug := core.ExpectedUnique(256*19200, 0.64, 1.0, 1<<40)
	uniq := core.UniqueCost(256, 19200, 19200, ug, 1792, false)
	fmt.Printf("baseline scratch: %.1f GB\n", float64(base.ScratchBytes)/1e9)
	fmt.Printf("unique scratch:   %.3f GB\n", float64(uniq.ScratchBytes)/1e9)
	// Output:
	// baseline scratch: 35.3 GB
	// unique scratch:   0.295 GB
}
