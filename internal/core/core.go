// Package core implements the paper's primary contribution (§III): scalable
// synchronization of embedding-layer gradients across data-parallel ranks.
//
// Background (§II-B): dense RNN gradients are synchronized with an
// ALLREDUCE, but embedding gradients cannot be — row i of the local gradient
// matrix Δ corresponds to a *different word* on every rank, so
// state-of-the-art implementations ALLGATHER all G dense K×D gradient
// blocks and scatter-add them locally: Θ(G·K·D) memory and wire volume per
// GPU, which exhausts a 12 GB GPU beyond ~24 ranks and makes training
// communication-bound.
//
// The fix (§III-A) exploits Zipf's law. A global batch of G·K tokens
// contains only U_g ≪ G·K unique words (empirically U_g ∝ (GK)^0.64), so:
//
//  1. each rank locally reduces duplicate rows (Δ → Δ̂, U_i×D),
//  2. ranks ALLGATHER only the K word indices — Θ(G·K) integers,
//  3. every rank independently computes the same sorted unique index set Î,
//  4. local gradients scatter into a shared U_g×D layout M,
//  5. one ALLREDUCE over M — Θ(U_g·D) — yields the global update,
//  6. which applies without duplicate-row conflicts.
//
// Total: Θ(G·K + U_g·D) versus Θ(G·K·D). Both engines below expose
// identical semantics (the same Update), so the equivalence the paper claims
// — "uniqueness only changes the flow of computation" — is testable and
// tested.
//
// FP16 wire compression (§III-C) is a field on the exchange context and
// composes with either engine.
package core

import (
	"errors"
	"fmt"
	"sort"

	"zipflm/internal/cluster"
	"zipflm/internal/collective"
	"zipflm/internal/half"
	"zipflm/internal/tensor"
)

// ErrPeerOOM is returned by an exchange when another rank ran out of
// memory: the whole collective aborts together so no rank blocks in a data
// collective its peers abandoned.
var ErrPeerOOM = errors.New("core: a peer rank ran out of memory during the exchange")

// SparseGrad is an embedding-layer gradient in the form backpropagation
// produces it (§II-A): one D-dimensional row per *token*, plus the word
// index each row maps back to. Multiple rows may carry the same index.
type SparseGrad struct {
	// Indices[i] is the vocabulary id of token i.
	Indices []int
	// Rows is the len(Indices) × D gradient matrix Δ.
	Rows *tensor.Matrix
}

// Validate checks internal consistency.
func (g SparseGrad) Validate() error {
	if g.Rows == nil {
		return fmt.Errorf("core: SparseGrad with nil rows")
	}
	if len(g.Indices) != g.Rows.Rows {
		return fmt.Errorf("core: %d indices but %d gradient rows", len(g.Indices), g.Rows.Rows)
	}
	return nil
}

// Update is the globally accumulated embedding update every rank must apply:
// one row per unique word, indices sorted ascending and identical on all
// ranks. Applying it is conflict-free — the "no serialization bottleneck"
// property of §III-A.
type Update struct {
	// Indices are the unique word ids (ascending).
	Indices []int
	// Rows is the len(Indices) × D globally summed gradient.
	Rows *tensor.Matrix
}

// Apply adds the update into the embedding matrix: emb.Row(Indices[i]) +=
// scale * Rows.Row(i).
func (u Update) Apply(emb *tensor.Matrix, scale float32) {
	for i, w := range u.Indices {
		tensor.Axpy(scale, emb.Row(w), u.Rows.Row(i))
	}
}

// Stats reports what one exchange cost on this rank.
type Stats struct {
	// Tokens is K, the local token count.
	Tokens int
	// UniqueLocal is U_i, unique words on this rank.
	UniqueLocal int
	// UniqueGlobal is U_g, unique words across all ranks this step.
	UniqueGlobal int
	// WireBytes is the per-rank communication volume of this exchange.
	WireBytes int64
	// ScratchBytes is the peak scratch memory the exchange allocated.
	ScratchBytes int64
}

// Ctx carries the per-rank execution environment of an exchange.
type Ctx struct {
	// Rank of the calling goroutine.
	Rank int
	// Comm is the communicator shared by all ranks.
	Comm *collective.Comm
	// Dev, when non-nil, accounts scratch memory (and triggers OOM).
	Dev *cluster.Device
	// Wire, when non-nil, applies FP16 compression-scaling to gradient
	// payloads (§III-C). Index payloads always travel as int32.
	Wire *half.Scaler
}

// Exchanger synchronizes one embedding-gradient step across ranks.
// Implementations must be callable concurrently from all ranks of ctx.Comm.
type Exchanger interface {
	// Name identifies the strategy in reports.
	Name() string
	// Exchange combines grad with every other rank's gradient and returns
	// the identical global Update on every rank.
	Exchange(ctx *Ctx, grad SparseGrad) (Update, Stats, error)
}

// alloc charges the device (if any) and returns a release func.
func alloc(dev *cluster.Device, n int64) (func(), error) {
	if dev == nil || n == 0 {
		return func() {}, nil
	}
	if err := dev.Alloc(n); err != nil {
		return nil, err
	}
	return func() { dev.Free(n) }, nil
}

// agreeAlloc runs the collective abort protocol around a local allocation
// outcome: every rank reports success, and if any rank failed all ranks
// abandon the exchange together. Returns the caller's own error, ErrPeerOOM
// for a peer failure, or nil when all ranks allocated.
func agreeAlloc(ctx *Ctx, localErr error, release func()) error {
	ok := ctx.Comm.AgreeAllOK(ctx.Rank, localErr == nil)
	if ok {
		return nil
	}
	if localErr == nil && release != nil {
		release()
	}
	if localErr != nil {
		return localErr
	}
	return ErrPeerOOM
}

// localReduce performs steps 1–2 of §III-A: collapse duplicate-word rows of
// the token-level gradient into one row per locally unique word. The
// returned indices are sorted ascending; rows align with indices.
func localReduce(grad SparseGrad) (idx []int, rows *tensor.Matrix) {
	d := grad.Rows.Cols
	pos := make(map[int]int, len(grad.Indices))
	idx = make([]int, 0, len(grad.Indices))
	for _, w := range grad.Indices {
		if _, ok := pos[w]; !ok {
			pos[w] = 0
			idx = append(idx, w)
		}
	}
	sort.Ints(idx)
	for i, w := range idx {
		pos[w] = i
	}
	rows = tensor.NewMatrix(len(idx), d)
	for i, w := range grad.Indices {
		tensor.AddInPlace(rows.Row(pos[w]), grad.Rows.Row(i))
	}
	return idx, rows
}

// globalUnique performs step 4: merge all ranks' index vectors into the
// sorted duplicate-free Î. Every rank computes this independently from the
// same gathered input, so the result is consistent cluster-wide.
func globalUnique(gathered [][]int) []int {
	seen := make(map[int]struct{})
	for _, ranks := range gathered {
		for _, w := range ranks {
			seen[w] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}
