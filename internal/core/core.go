// Package core implements the paper's primary contribution (§III): scalable
// synchronization of embedding-layer gradients across data-parallel ranks.
//
// Background (§II-B): dense RNN gradients are synchronized with an
// ALLREDUCE, but embedding gradients cannot be — row i of the local gradient
// matrix Δ corresponds to a *different word* on every rank, so
// state-of-the-art implementations ALLGATHER all G dense K×D gradient
// blocks and scatter-add them locally: Θ(G·K·D) memory and wire volume per
// GPU, which exhausts a 12 GB GPU beyond ~24 ranks and makes training
// communication-bound.
//
// The fix (§III-A) exploits Zipf's law. A global batch of G·K tokens
// contains only U_g ≪ G·K unique words (empirically U_g ∝ (GK)^0.64), so:
//
//  1. each rank locally reduces duplicate rows (Δ → Δ̂, U_i×D),
//  2. ranks ALLGATHER only the K word indices — Θ(G·K) integers,
//  3. every rank independently computes the same sorted unique index set Î,
//  4. local gradients scatter into a shared U_g×D layout M,
//  5. one ALLREDUCE over M — Θ(U_g·D) — yields the global update,
//  6. which applies without duplicate-row conflicts.
//
// Total: Θ(G·K + U_g·D) versus Θ(G·K·D). Both engines below expose
// identical semantics (the same Update), so the equivalence the paper claims
// — "uniqueness only changes the flow of computation" — is testable and
// tested.
//
// FP16 wire compression (§III-C) is a field on the exchange context and
// composes with either engine.
package core

import (
	"errors"
	"fmt"
	"sort"

	"zipflm/internal/cluster"
	"zipflm/internal/collective"
	"zipflm/internal/tensor"
)

// ErrPeerOOM is returned by an exchange when another rank ran out of
// memory: the whole collective aborts together so no rank blocks in a data
// collective its peers abandoned.
var ErrPeerOOM = errors.New("core: a peer rank ran out of memory during the exchange")

// SparseGrad is an embedding-layer gradient in the form backpropagation
// produces it (§II-A): one D-dimensional row per *token*, plus the word
// index each row maps back to. Multiple rows may carry the same index.
type SparseGrad struct {
	// Indices[i] is the vocabulary id of token i.
	Indices []int
	// Rows is the len(Indices) × D gradient matrix Δ.
	Rows *tensor.Matrix
}

// Validate checks internal consistency.
func (g SparseGrad) Validate() error {
	if g.Rows == nil {
		return fmt.Errorf("core: SparseGrad with nil rows")
	}
	if len(g.Indices) != g.Rows.Rows {
		return fmt.Errorf("core: %d indices but %d gradient rows", len(g.Indices), g.Rows.Rows)
	}
	return nil
}

// Update is the globally accumulated embedding update every rank must apply:
// one row per unique word, indices sorted ascending and identical on all
// ranks. Applying it is conflict-free — the "no serialization bottleneck"
// property of §III-A.
type Update struct {
	// Indices are the unique word ids (ascending).
	Indices []int
	// Rows is the len(Indices) × D globally summed gradient.
	Rows *tensor.Matrix
}

// Apply adds the update into the embedding matrix: emb.Row(Indices[i]) +=
// scale * Rows.Row(i).
func (u Update) Apply(emb *tensor.Matrix, scale float32) {
	for i, w := range u.Indices {
		tensor.Axpy(scale, emb.Row(w), u.Rows.Row(i))
	}
}

// Stats reports what one exchange cost on this rank.
type Stats struct {
	// Tokens is K, the local token count.
	Tokens int
	// UniqueLocal is U_i, unique words on this rank.
	UniqueLocal int
	// UniqueGlobal is U_g, unique words across all ranks this step.
	UniqueGlobal int
	// WireBytes is the per-rank communication volume of this exchange.
	WireBytes int64
	// ScratchBytes is the peak scratch memory the exchange allocated.
	ScratchBytes int64
	// SimSeconds is the simulated duration of the exchange on this rank's
	// virtual clock: the time the collectives (priced by the
	// communicator's CostModel) advanced it while the exchange ran. Zero
	// when no device/cost model is attached.
	SimSeconds float64
}

// Ctx carries the per-rank execution environment of an exchange.
type Ctx struct {
	// Rank of the calling goroutine.
	Rank int
	// Comm is the communicator shared by all ranks.
	Comm *collective.Comm
	// Dev, when non-nil, accounts scratch memory (and triggers OOM).
	Dev *cluster.Device
	// Wire, when non-nil, applies lossy wire compression to gradient
	// payloads — FP16 compression-scaling (§III-C, half.Scaler) or 8-bit
	// quantization (compress.Quant8). Index payloads always travel as
	// int32.
	Wire collective.Wire
	// WS, when non-nil, supplies reusable per-rank scratch (maps, index
	// and row buffers) so steady-state exchanges stop churning the
	// allocator. A Workspace belongs to exactly one rank and must not be
	// shared.
	WS *Workspace
}

// Workspace is reusable per-rank scratch for the exchange engines: the
// duplicate-detection and row-mapping hash maps plus the locally reduced
// index/row buffers, all of which are rebuilt every step with
// near-identical sizes. Engines treat a nil *Workspace as "allocate
// fresh", so the scratch path is purely an optimization and cannot change
// results. Buffers handed out by a Workspace are only valid until the next
// request for the same buffer; nothing returned to the exchange's caller
// (Update indices/rows) ever aliases workspace memory.
type Workspace struct {
	posMap map[int]int
	rowMap map[int]int
	idx    []int
	rows   []float32
}

// NewWorkspace returns an empty workspace; buffers grow on first use and
// are reused afterwards.
func NewWorkspace() *Workspace {
	return &Workspace{posMap: make(map[int]int), rowMap: make(map[int]int)}
}

// scratchPosMap returns the cleared duplicate-detection map (fresh when the
// workspace is nil). Lifetime: until the next scratchPosMap call on the
// same workspace.
func (w *Workspace) scratchPosMap() map[int]int {
	if w == nil {
		return make(map[int]int)
	}
	clear(w.posMap)
	return w.posMap
}

// scratchRowMap is the row-mapping counterpart of scratchPosMap.
func (w *Workspace) scratchRowMap() map[int]int {
	if w == nil {
		return make(map[int]int)
	}
	clear(w.rowMap)
	return w.rowMap
}

// scratchInts returns an empty int slice with capacity ≥ n backed by the
// workspace (fresh when nil). Lifetime: until the next scratchInts call.
func (w *Workspace) scratchInts(n int) []int {
	if w == nil {
		return make([]int, 0, n)
	}
	if cap(w.idx) < n {
		w.idx = make([]int, 0, n)
	}
	return w.idx[:0]
}

// scratchMatrix returns a zeroed r×c matrix backed by the workspace (fresh
// when nil). Lifetime: until the next scratchMatrix call.
func (w *Workspace) scratchMatrix(r, c int) *tensor.Matrix {
	if w == nil {
		return tensor.NewMatrix(r, c)
	}
	n := r * c
	if cap(w.rows) < n {
		w.rows = make([]float32, n)
	}
	s := w.rows[:n]
	clear(s)
	return tensor.NewMatrixFrom(r, c, s)
}

// Exchanger synchronizes one embedding-gradient step across ranks.
// Implementations must be callable concurrently from all ranks of ctx.Comm.
type Exchanger interface {
	// Name identifies the strategy in reports.
	Name() string
	// Exchange combines grad with every other rank's gradient and returns
	// the identical global Update on every rank.
	Exchange(ctx *Ctx, grad SparseGrad) (Update, Stats, error)
}

// simNow returns the rank's current virtual time, or 0 when the context has
// no device clock. Engines difference it around their collectives to fill
// Stats.SimSeconds.
func (ctx *Ctx) simNow() float64 {
	if ctx.Dev == nil || ctx.Dev.Clock == nil {
		return 0
	}
	return ctx.Dev.Clock.Now()
}

// alloc charges the device (if any) and returns a release func.
func alloc(dev *cluster.Device, n int64) (func(), error) {
	if dev == nil || n == 0 {
		return func() {}, nil
	}
	if err := dev.Alloc(n); err != nil {
		return nil, err
	}
	return func() { dev.Free(n) }, nil
}

// agreeAlloc runs the collective abort protocol around a local allocation
// outcome: every rank reports success, and if any rank failed all ranks
// abandon the exchange together. Returns the caller's own error, ErrPeerOOM
// for a peer failure, or nil when all ranks allocated.
func agreeAlloc(ctx *Ctx, localErr error, release func()) error {
	ok := ctx.Comm.AgreeAllOK(ctx.Rank, localErr == nil)
	if ok {
		return nil
	}
	if localErr == nil && release != nil {
		release()
	}
	if localErr != nil {
		return localErr
	}
	return ErrPeerOOM
}

// localReduce performs steps 1–2 of §III-A: collapse duplicate-word rows of
// the token-level gradient into one row per locally unique word. The
// returned indices are sorted ascending; rows align with indices. With a
// non-nil workspace, the returned idx and rows are workspace scratch —
// valid until the engine's next localReduce — and must not escape into the
// returned Update.
func localReduce(ws *Workspace, grad SparseGrad) (idx []int, rows *tensor.Matrix) {
	d := grad.Rows.Cols
	pos := ws.scratchPosMap()
	idx = ws.scratchInts(len(grad.Indices))
	for _, w := range grad.Indices {
		if _, ok := pos[w]; !ok {
			pos[w] = 0
			idx = append(idx, w)
		}
	}
	sort.Ints(idx)
	for i, w := range idx {
		pos[w] = i
	}
	rows = ws.scratchMatrix(len(idx), d)
	for i, w := range grad.Indices {
		tensor.AddInPlace(rows.Row(pos[w]), grad.Rows.Row(i))
	}
	return idx, rows
}

// globalUnique performs step 4: merge all ranks' index vectors into the
// sorted duplicate-free Î. Every rank computes this independently from the
// same gathered input, so the result is consistent cluster-wide. The
// returned slice is always freshly allocated (it becomes Update.Indices and
// escapes to the caller); only the dedup map draws on the workspace.
func globalUnique(ws *Workspace, gathered [][]int) []int {
	seen := ws.scratchPosMap()
	for _, ranks := range gathered {
		for _, w := range ranks {
			seen[w] = 0
		}
	}
	out := make([]int, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}
