package core

import (
	"fmt"

	"zipflm/internal/collective"
	"zipflm/internal/tensor"
)

// HierarchicalExchange is an extension beyond the paper: a node-aware,
// two-level variant of the uniqueness technique matched to the paper's own
// cluster topology (8 GPUs per node on 32 GB/s PCIe, nodes joined by
// 15 GB/s FDR InfiniBand — Table II).
//
// The flat UniqueExchange runs one global ring: every rank, on every node,
// moves Θ(G·K + U_g·D) bytes, and once G exceeds one node the whole volume
// crosses the InfiniBand boundary. But Zipf's law applies *within a node*
// too: the 8·K tokens of one node already collapse to U_node ≪ 8·K unique
// words. The hierarchical exchange exploits that:
//
//  1. intra-node: ranks of each node gather indices, build the node-unique
//     set, scatter-reduce their gradients into a U_node×D layout and
//     ALLREDUCE it over PCIe;
//  2. inter-node: only node leaders exchange — indices then a U_g×D
//     ALLREDUCE — so the InfiniBand fabric carries one rank's volume per
//     node instead of eight;
//  3. intra-node: leaders broadcast the merged (Î, M̂) back over PCIe.
//
// Every rank still applies the identical global Update, so the engine is
// exchange-equivalent to UniqueExchange and BaselineAllGather (tested).
type HierarchicalExchange struct {
	// Hier supplies the topology. The caller builds one per cluster
	// (collective.NewHierarchy) and shares it across ranks.
	Hier *collective.Hierarchy
}

// Name implements Exchanger.
func (h HierarchicalExchange) Name() string { return "hierarchical-unique" }

// Exchange implements Exchanger.
func (h HierarchicalExchange) Exchange(ctx *Ctx, grad SparseGrad) (Update, Stats, error) {
	if h.Hier == nil {
		return Update{}, Stats{}, fmt.Errorf("core: HierarchicalExchange needs a Hierarchy")
	}
	if err := grad.Validate(); err != nil {
		return Update{}, Stats{}, err
	}
	d := grad.Rows.Cols
	stats := Stats{Tokens: len(grad.Indices)}
	simBefore := ctx.simNow()

	group := h.Hier.Group(ctx.Rank)
	_, groupRank := h.Hier.GroupOf(ctx.Rank)
	leaders := h.Hier.Leaders()
	groupID, _ := h.Hier.GroupOf(ctx.Rank)

	before := group.SyncStats(groupRank)
	beforeLead := collective.Stats{}
	if h.Hier.IsLeader(ctx.Rank) {
		beforeLead = leaders.SyncStats(groupID)
	}

	// Phase 1 — intra-node unique reduce (steps 1–6 of §III-A at node
	// scope). mNode cannot come from the workspace: localRows (workspace
	// scratch) is still being read while mNode is filled.
	localIdx, localRows := localReduce(ctx.WS, grad)
	stats.UniqueLocal = len(localIdx)
	gathered := group.AllGatherInts(groupRank, grad.Indices)
	nodeIdx := globalUnique(ctx.WS, gathered)
	nodeRow := ctx.WS.scratchRowMap()
	for i, w := range nodeIdx {
		nodeRow[w] = i
	}
	mNode := tensor.NewMatrix(len(nodeIdx), d)
	for i, w := range localIdx {
		copy(mNode.Row(nodeRow[w]), localRows.Row(i))
	}
	group.AllReduce(groupRank, mNode.Data, ctx.Wire)

	// Phase 2 — inter-node exchange among leaders only.
	var globalIdx []int
	var mGlobal *tensor.Matrix
	if h.Hier.IsLeader(ctx.Rank) {
		gatheredNodes := leaders.AllGatherInts(groupID, nodeIdx)
		// scratchRowMap recycles nodeRow's map, which is dead by now.
		globalIdx = globalUnique(ctx.WS, gatheredNodes)
		row := ctx.WS.scratchRowMap()
		for i, w := range globalIdx {
			row[w] = i
		}
		mGlobal = tensor.NewMatrix(len(globalIdx), d)
		for i, w := range nodeIdx {
			copy(mGlobal.Row(row[w]), mNode.Row(i))
		}
		leaders.AllReduce(groupID, mGlobal.Data, ctx.Wire)
	}

	// Phase 3 — leaders broadcast the merged result inside the node.
	var idxPayload []int
	var rowPayload []float32
	if h.Hier.IsLeader(ctx.Rank) {
		idxPayload = globalIdx
		rowPayload = mGlobal.Data
	}
	globalIdx = group.BroadcastInts(groupRank, 0, idxPayload)
	rowPayload = group.BroadcastFloatsVar(groupRank, 0, rowPayload)
	mOut := tensor.NewMatrixFrom(len(globalIdx), d, rowPayload)

	stats.UniqueGlobal = len(globalIdx)
	wire := group.SyncStats(groupRank).Sub(before).Total()
	if h.Hier.IsLeader(ctx.Rank) {
		wire += leaders.SyncStats(groupID).Sub(beforeLead).Total()
	}
	stats.WireBytes = wire
	stats.SimSeconds = ctx.simNow() - simBefore
	stats.ScratchBytes = int64(len(localIdx))*int64(d)*4 +
		int64(group.Size())*int64(len(grad.Indices))*4 +
		int64(len(nodeIdx))*int64(d)*4 +
		int64(len(globalIdx))*int64(d)*4
	return Update{Indices: globalIdx, Rows: mOut}, stats, nil
}

// HierarchicalCost estimates the per-rank and inter-node wire volumes for G
// ranks in groups of size n with uNode unique words per node and uGlobal
// across the cluster. Non-leader ranks never touch the inter-node fabric.
func HierarchicalCost(g, n, k, uNode, uGlobal, d int, fp16 bool) (memberWire, leaderInterWire int64) {
	e := elemBytes(fp16)
	ni := int64(n)
	// Intra-node: index gather + node all-reduce + result broadcast.
	memberWire = (ni-1)*int64(k)*4 +
		2*(ni-1)*int64(uNode)*int64(d)*e/ni +
		int64(uGlobal)*int64(d)*4
	nodes := int64((g + n - 1) / n)
	if nodes > 1 {
		leaderInterWire = (nodes-1)*int64(uNode)*4 +
			2*(nodes-1)*int64(uGlobal)*int64(d)*e/nodes
	}
	return memberWire, leaderInterWire
}
