package core

import "zipflm/internal/tensor"

// UniqueExchange is the paper's uniqueness technique (§III-A, Figure 4):
// convert the expensive ALLGATHER over dense gradients into an ALLGATHER
// over word *indices* followed by an ALLREDUCE over one gradient row per
// globally unique word. Per-rank scratch and wire volume drop from
// Θ(G·K·D) to Θ(G·K + U_g·D), and because the final update has one row per
// word, applying it needs no duplicate-row locking.
type UniqueExchange struct{}

// Name implements Exchanger.
func (UniqueExchange) Name() string { return "unique-exchange" }

// Exchange implements Exchanger, following the seven numbered steps of
// §III-A.
func (UniqueExchange) Exchange(ctx *Ctx, grad SparseGrad) (Update, Stats, error) {
	if err := grad.Validate(); err != nil {
		return Update{}, Stats{}, err
	}
	g := ctx.Comm.Size()
	k := len(grad.Indices)
	d := grad.Rows.Cols
	stats := Stats{Tokens: k}
	before := ctx.Comm.SyncStats(ctx.Rank)
	simBefore := ctx.simNow()

	// Steps 1–2: locally unique indices Ĵ and locally reduced gradients Δ̂
	// (U_i × D). Both live in per-rank workspace scratch when available.
	localIdx, localRows := localReduce(ctx.WS, grad)
	stats.UniqueLocal = len(localIdx)

	// Scratch for Δ̂ and the gathered indices, agreed collectively so an
	// OOM on any rank aborts the exchange on every rank.
	preBytes := int64(len(localIdx))*int64(d)*4 + int64(g)*int64(k)*4
	relPre, allocErr := alloc(ctx.Dev, preBytes)
	if err := agreeAlloc(ctx, allocErr, relPre); err != nil {
		return Update{}, Stats{}, err
	}
	defer relPre()

	// Step 3: ALLGATHER the K-long index vectors J — Θ(G·K) integers, no
	// D factor.
	gathered := ctx.Comm.AllGatherInts(ctx.Rank, grad.Indices)

	// Step 4: filter to the globally unique, totally ordered Î. Every rank
	// computes the same Î from the same gathered indices, giving the
	// cluster-wide consistent row mapping the ALLREDUCE needs.
	globalIdx := globalUnique(ctx.WS, gathered)
	ug := len(globalIdx)
	stats.UniqueGlobal = ug
	rowOf := ctx.WS.scratchRowMap()
	for i, w := range globalIdx {
		rowOf[w] = i
	}

	// Step 5: scatter Δ̂ (U_i×D) into the shared U_g×D layout M; absent
	// words stay zero. U_g is only known post-gather, so this allocation
	// gets its own collective agreement.
	relM, allocErr := alloc(ctx.Dev, int64(ug)*int64(d)*4)
	if err := agreeAlloc(ctx, allocErr, relM); err != nil {
		return Update{}, Stats{}, err
	}
	defer relM()
	m := tensor.NewMatrix(ug, d)
	for i, w := range localIdx {
		copy(m.Row(rowOf[w]), localRows.Row(i))
	}

	// Step 6: ALLREDUCE over M — Θ(U_g·D), optionally FP16 on the wire.
	ctx.Comm.AllReduce(ctx.Rank, m.Data, ctx.Wire)

	// Step 7 is the caller's Update.Apply: conflict-free, one row per word.
	stats.WireBytes = ctx.Comm.SyncStats(ctx.Rank).Sub(before).Total()
	stats.SimSeconds = ctx.simNow() - simBefore
	// Peak scratch: local reduced + gathered indices + M, all live at the
	// ALLREDUCE.
	stats.ScratchBytes = int64(len(localIdx))*int64(d)*4 + int64(g)*int64(k)*4 + int64(ug)*int64(d)*4
	return Update{Indices: globalIdx, Rows: m}, stats, nil
}
