package core

import "math"

// This file provides closed-form per-rank cost formulas for both exchange
// engines. The formulas are the ones §II-B and §III-A derive; the unit tests
// verify them against the *measured* wire/scratch numbers of real small-scale
// exchanges, which licenses using them at paper scale (where the baseline
// would need tens of GB per rank) without materializing the buffers.

// Cost is a per-rank resource estimate for one exchange.
type Cost struct {
	// WireBytes is communication volume per rank.
	WireBytes int64
	// ScratchBytes is peak scratch memory per rank.
	ScratchBytes int64
}

// elemBytes returns the per-element payload width on the wire.
func elemBytes(fp16 bool) int64 {
	if fp16 {
		return 2
	}
	return 4
}

// BaselineCost returns the per-rank cost of BaselineAllGather for G ranks,
// K local tokens and embedding dimension D: Θ(G·K·D) in both wire volume
// and scratch.
func BaselineCost(g, k, d int, fp16 bool) Cost {
	e := elemBytes(fp16)
	gi, ki, di := int64(g), int64(k), int64(d)
	return Cost{
		// Ring all-gather of G blocks of K·D elements plus the K int32
		// indices: (G−1)/G of the total payload leaves each rank.
		WireBytes: (gi - 1) * ki * (di*e + 4),
		// All G dense blocks and index vectors are resident locally
		// (decompressed to FP32) during the scatter-add.
		ScratchBytes: gi*ki*di*4 + gi*ki*4,
	}
}

// UniqueCost returns the per-rank cost of UniqueExchange for G ranks, K
// local tokens, U_i locally unique and U_g globally unique words:
// Θ(G·K + U_g·D).
func UniqueCost(g, k, ui, ug, d int, fp16 bool) Cost {
	e := elemBytes(fp16)
	gi, ki, di := int64(g), int64(k), int64(d)
	return Cost{
		// Index all-gather (always int32) + ring all-reduce of the
		// U_g×D matrix at 2·(G−1)/G of its size.
		WireBytes: (gi-1)*ki*4 + 2*(gi-1)*int64(ug)*di*e/gi,
		// Δ̂ (U_i×D) + gathered indices (G·K) + M (U_g×D).
		ScratchBytes: int64(ui)*di*4 + gi*ki*4 + int64(ug)*di*4,
	}
}

// ExpectedUnique estimates U_g for a global batch of n tokens under the
// paper's empirical type–token law U ∝ N^alpha (Figure 1; alpha = 0.64,
// prefactor c), saturating at the vocabulary size.
func ExpectedUnique(n int, alpha, c float64, vocab int) int {
	u := int(math.Round(c * math.Pow(float64(n), alpha)))
	if u > vocab {
		u = vocab
	}
	if u > n {
		u = n
	}
	if u < 1 && n > 0 {
		u = 1
	}
	return u
}

// MemoryReduction reports the baseline/unique scratch ratio at a
// configuration — the "8.6× memory reduction" style numbers of §V-A.
func MemoryReduction(g, k, ui, ug, d int) float64 {
	b := BaselineCost(g, k, d, false)
	u := UniqueCost(g, k, ui, ug, d, false)
	return float64(b.ScratchBytes) / float64(u.ScratchBytes)
}
