package core

import (
	"errors"
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"zipflm/internal/cluster"
	"zipflm/internal/collective"
	"zipflm/internal/half"
	"zipflm/internal/rng"
	"zipflm/internal/tensor"
)

// makeGrads builds one Zipf-distributed sparse gradient per rank.
func makeGrads(g, k, d, vocab int, seed uint64) []SparseGrad {
	grads := make([]SparseGrad, g)
	root := rng.New(seed)
	for r := 0; r < g; r++ {
		rr := root.Fork()
		z := rng.NewZipf(rr, vocab, 1.1)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = z.Next()
		}
		rows := tensor.NewMatrix(k, d)
		rows.RandomizeNormal(rr, 1)
		grads[r] = SparseGrad{Indices: idx, Rows: rows}
	}
	return grads
}

// runExchange executes ex on all ranks concurrently and returns per-rank
// results.
func runExchange(t *testing.T, ex Exchanger, grads []SparseGrad, wire collective.Wire, devs []*cluster.Device) ([]Update, []Stats) {
	t.Helper()
	g := len(grads)
	comm := collective.New(g)
	updates := make([]Update, g)
	stats := make([]Stats, g)
	errs := make([]error, g)
	var wg sync.WaitGroup
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var dev *cluster.Device
			if devs != nil {
				dev = devs[rank]
			}
			ctx := &Ctx{Rank: rank, Comm: comm, Dev: dev, Wire: wire}
			updates[rank], stats[rank], errs[rank] = ex.Exchange(ctx, grads[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return updates, stats
}

// referenceUpdate computes the ground-truth global accumulation serially.
func referenceUpdate(grads []SparseGrad) map[int][]float64 {
	d := grads[0].Rows.Cols
	acc := make(map[int][]float64)
	for _, g := range grads {
		for i, w := range g.Indices {
			row := acc[w]
			if row == nil {
				row = make([]float64, d)
				acc[w] = row
			}
			for c, v := range g.Rows.Row(i) {
				row[c] += float64(v)
			}
		}
	}
	return acc
}

func checkAgainstReference(t *testing.T, name string, upd Update, ref map[int][]float64, tol float64) {
	t.Helper()
	if len(upd.Indices) != len(ref) {
		t.Fatalf("%s: %d unique indices, want %d", name, len(upd.Indices), len(ref))
	}
	if !sort.IntsAreSorted(upd.Indices) {
		t.Fatalf("%s: indices not sorted", name)
	}
	for i, w := range upd.Indices {
		want, ok := ref[w]
		if !ok {
			t.Fatalf("%s: unexpected index %d", name, w)
		}
		for c, v := range upd.Rows.Row(i) {
			if math.Abs(float64(v)-want[c]) > tol {
				t.Fatalf("%s: word %d col %d: got %v, want %v", name, w, c, v, want[c])
			}
		}
	}
}

func TestBaselineMatchesReference(t *testing.T) {
	grads := makeGrads(4, 50, 8, 100, 1)
	updates, stats := runExchange(t, BaselineAllGather{}, grads, nil, nil)
	ref := referenceUpdate(grads)
	for r, u := range updates {
		checkAgainstReference(t, "baseline", u, ref, 1e-4)
		if stats[r].Tokens != 50 {
			t.Errorf("rank %d tokens = %d", r, stats[r].Tokens)
		}
	}
}

func TestUniqueMatchesReference(t *testing.T) {
	grads := makeGrads(4, 50, 8, 100, 2)
	updates, _ := runExchange(t, UniqueExchange{}, grads, nil, nil)
	ref := referenceUpdate(grads)
	for _, u := range updates {
		checkAgainstReference(t, "unique", u, ref, 1e-3)
	}
}

// TestEngineEquivalence is the paper's core correctness claim (§V-A: "the
// uniqueness technique only changes the flow of computation … and hence
// produces the same accuracy as the baseline"): both engines yield the same
// global update, up to float reassociation.
func TestEngineEquivalence(t *testing.T) {
	for _, g := range []int{1, 2, 3, 8} {
		grads := makeGrads(g, 40, 6, 64, uint64(g))
		base, _ := runExchange(t, BaselineAllGather{}, grads, nil, nil)
		uniq, _ := runExchange(t, UniqueExchange{}, grads, nil, nil)
		if len(base[0].Indices) != len(uniq[0].Indices) {
			t.Fatalf("g=%d: index sets differ in size", g)
		}
		for i := range base[0].Indices {
			if base[0].Indices[i] != uniq[0].Indices[i] {
				t.Fatalf("g=%d: index %d differs", g, i)
			}
			for c := 0; c < 6; c++ {
				a, b := base[0].Rows.At(i, c), uniq[0].Rows.At(i, c)
				if math.Abs(float64(a-b)) > 1e-3 {
					t.Fatalf("g=%d: row %d col %d: baseline %v vs unique %v", g, i, c, a, b)
				}
			}
		}
	}
}

// TestEngineEquivalenceProperty drives the same claim through testing/quick
// with arbitrary small shapes.
func TestEngineEquivalenceProperty(t *testing.T) {
	f := func(gRaw, kRaw, dRaw, vRaw, seed uint16) bool {
		g := int(gRaw)%4 + 1
		k := int(kRaw)%20 + 1
		d := int(dRaw)%6 + 1
		vocab := int(vRaw)%30 + 2
		grads := makeGrads(g, k, d, vocab, uint64(seed))
		ref := referenceUpdate(grads)

		comm := collective.New(g)
		updates := make([]Update, g)
		var wg sync.WaitGroup
		for r := 0; r < g; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ctx := &Ctx{Rank: rank, Comm: comm}
				updates[rank], _, _ = UniqueExchange{}.Exchange(ctx, grads[rank])
			}(r)
		}
		wg.Wait()

		u := updates[0]
		if len(u.Indices) != len(ref) {
			return false
		}
		for i, w := range u.Indices {
			want := ref[w]
			for c, v := range u.Rows.Row(i) {
				if math.Abs(float64(v)-want[c]) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUpdateApply(t *testing.T) {
	emb := tensor.NewMatrix(10, 2)
	emb.Fill(1)
	u := Update{
		Indices: []int{2, 7},
		Rows:    tensor.NewMatrixFrom(2, 2, []float32{1, 2, 3, 4}),
	}
	u.Apply(emb, -0.5)
	if emb.At(2, 0) != 0.5 || emb.At(2, 1) != 0 {
		t.Errorf("row 2 = (%v,%v)", emb.At(2, 0), emb.At(2, 1))
	}
	if emb.At(7, 0) != -0.5 || emb.At(7, 1) != -1 {
		t.Errorf("row 7 = (%v,%v)", emb.At(7, 0), emb.At(7, 1))
	}
	if emb.At(0, 0) != 1 {
		t.Error("untouched row changed")
	}
}

// TestUniqueWireVolumeBelowBaseline verifies the headline asymptotic win on
// a Zipf-heavy workload.
func TestUniqueWireVolumeBelowBaseline(t *testing.T) {
	grads := makeGrads(8, 100, 16, 50, 3) // small vocab → heavy duplication
	_, bStats := runExchange(t, BaselineAllGather{}, grads, nil, nil)
	_, uStats := runExchange(t, UniqueExchange{}, grads, nil, nil)
	if uStats[0].WireBytes*2 > bStats[0].WireBytes {
		t.Errorf("unique wire %d not well below baseline %d", uStats[0].WireBytes, bStats[0].WireBytes)
	}
	if uStats[0].ScratchBytes*2 > bStats[0].ScratchBytes {
		t.Errorf("unique scratch %d not well below baseline %d", uStats[0].ScratchBytes, bStats[0].ScratchBytes)
	}
	if uStats[0].UniqueGlobal != bStats[0].UniqueGlobal {
		t.Errorf("engines disagree on U_g: %d vs %d", uStats[0].UniqueGlobal, bStats[0].UniqueGlobal)
	}
	if uStats[0].UniqueGlobal > 50 {
		t.Errorf("U_g %d exceeds vocabulary", uStats[0].UniqueGlobal)
	}
}

// TestMeasuredCostMatchesFormula validates the closed-form cost model
// against measured numbers — the license for using formulas at paper scale.
func TestMeasuredCostMatchesFormula(t *testing.T) {
	const g, k, d, vocab = 4, 64, 8, 40
	grads := makeGrads(g, k, d, vocab, 9)

	_, bStats := runExchange(t, BaselineAllGather{}, grads, nil, nil)
	bCost := BaselineCost(g, k, d, false)
	if bStats[0].WireBytes != bCost.WireBytes {
		t.Errorf("baseline wire: measured %d, formula %d", bStats[0].WireBytes, bCost.WireBytes)
	}
	if bStats[0].ScratchBytes != bCost.ScratchBytes {
		t.Errorf("baseline scratch: measured %d, formula %d", bStats[0].ScratchBytes, bCost.ScratchBytes)
	}

	_, uStats := runExchange(t, UniqueExchange{}, grads, nil, nil)
	ui, ug := uStats[0].UniqueLocal, uStats[0].UniqueGlobal
	uCost := UniqueCost(g, k, ui, ug, d, false)
	// Ring chunking rounds to ±(g−1) elements per phase when U_g·D is not
	// divisible by G.
	slack := int64(2 * (g - 1) * 4)
	if diff := uStats[0].WireBytes - uCost.WireBytes; diff < -slack || diff > slack {
		t.Errorf("unique wire: measured %d, formula %d", uStats[0].WireBytes, uCost.WireBytes)
	}
	if uStats[0].ScratchBytes != uCost.ScratchBytes {
		t.Errorf("unique scratch: measured %d, formula %d", uStats[0].ScratchBytes, uCost.ScratchBytes)
	}
}

// TestPaperMemoryExample reproduces the §III-A worked example: 256 GPUs,
// K=19,200 tokens, D=1792 — baseline ALLGATHER needs 35.2 GB while the
// uniqueness scheme needs ~0.137 GB.
func TestPaperMemoryExample(t *testing.T) {
	const g, k, d = 256, 19200, 1792
	b := BaselineCost(g, k, d, false)
	gb := float64(b.ScratchBytes) / 1e9
	if math.Abs(gb-35.2) > 0.5 {
		t.Errorf("baseline scratch = %.2f GB, paper says 35.2 GB", gb)
	}
	ug := ExpectedUnique(g*k, 0.64, 1.0, 1<<40)
	// The paper's 0.137 GB figure counts the U_g×D ALLREDUCE buffer.
	mGB := float64(int64(ug)*d*4) / 1e9
	if math.Abs(mGB-0.137) > 0.02 {
		t.Errorf("unique M buffer = %.3f GB, paper says 0.137 GB (U_g=%d)", mGB, ug)
	}
}

func TestFP16WireHalvesGradVolume(t *testing.T) {
	grads := makeGrads(4, 64, 16, 1000, 4) // large vocab → low duplication
	_, fp32 := runExchange(t, UniqueExchange{}, grads, nil, nil)
	_, fp16 := runExchange(t, UniqueExchange{}, grads, half.NewScaler(512), nil)
	// Index traffic is uncompressed; gradient traffic halves.
	idxBytes := int64(3 * 64 * 4) // (G−1)·K·4
	grad32 := fp32[0].WireBytes - idxBytes
	grad16 := fp16[0].WireBytes - idxBytes
	ratio := float64(grad16) / float64(grad32)
	if math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("FP16 gradient wire ratio = %v, want 0.5", ratio)
	}
}

func TestFP16AccuracyClose(t *testing.T) {
	grads := makeGrads(4, 30, 8, 60, 5)
	ref := referenceUpdate(grads)
	updates, _ := runExchange(t, UniqueExchange{}, grads, half.NewScaler(512), nil)
	// Tolerance reflects FP16 rounding at ~1e-2 relative for |sum| up to ~10.
	checkAgainstReference(t, "unique-fp16", updates[0], ref, 0.15)
}

// TestBaselineOOM: with a device capacity below the Θ(G·K·D) requirement
// the baseline fails with ErrOutOfMemory while unique succeeds — the "*"
// rows of Tables III/IV in miniature.
func TestBaselineOOM(t *testing.T) {
	const g, k, d, vocab = 8, 128, 32, 64
	grads := makeGrads(g, k, d, vocab, 6)
	// Budget sits between unique's need and baseline's need.
	bNeed := BaselineCost(g, k, d, false).ScratchBytes
	capacity := bNeed / 2

	makeDevs := func() []*cluster.Device {
		devs := make([]*cluster.Device, g)
		for i := range devs {
			devs[i] = cluster.NewDevice(i, capacity)
		}
		return devs
	}

	// Baseline must OOM.
	comm := collective.New(g)
	devs := makeDevs()
	errs := make([]error, g)
	var wg sync.WaitGroup
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := &Ctx{Rank: rank, Comm: comm, Dev: devs[rank]}
			_, _, errs[rank] = BaselineAllGather{}.Exchange(ctx, grads[rank])
		}(r)
	}
	wg.Wait()
	oom := false
	for _, err := range errs {
		if _, ok := err.(*cluster.ErrOutOfMemory); ok {
			oom = true
		}
	}
	if !oom {
		t.Fatal("baseline did not OOM under restricted capacity")
	}

	// Unique must fit.
	updates, _ := runExchange2(t, UniqueExchange{}, grads, makeDevs())
	checkAgainstReference(t, "unique-under-budget", updates[0], referenceUpdate(grads), 1e-3)
}

// runExchange2 is runExchange with devices but no wire (avoids signature
// churn in the OOM test).
func runExchange2(t *testing.T, ex Exchanger, grads []SparseGrad, devs []*cluster.Device) ([]Update, []Stats) {
	t.Helper()
	return runExchange(t, ex, grads, nil, devs)
}

// TestAsymmetricOOMDoesNotDeadlock: when only SOME ranks can allocate,
// the exchange must abort on every rank (ErrPeerOOM on survivors) instead
// of deadlocking the collective.
func TestAsymmetricOOMDoesNotDeadlock(t *testing.T) {
	const g, k, d, vocab = 4, 64, 16, 80
	grads := makeGrads(g, k, d, vocab, 12)
	devs := make([]*cluster.Device, g)
	for i := range devs {
		capacity := int64(1 << 30)
		if i == 2 {
			capacity = 1 // rank 2 cannot allocate anything
		}
		devs[i] = cluster.NewDevice(i, capacity)
	}
	for _, ex := range []Exchanger{UniqueExchange{}, BaselineAllGather{}} {
		comm := collective.New(g)
		errs := make([]error, g)
		done := make(chan struct{})
		go func() {
			var wg sync.WaitGroup
			for r := 0; r < g; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					ctx := &Ctx{Rank: rank, Comm: comm, Dev: devs[rank]}
					_, _, errs[rank] = ex.Exchange(ctx, grads[rank])
				}(r)
			}
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-timeAfter():
			t.Fatalf("%s deadlocked under asymmetric OOM", ex.Name())
		}
		for rank, err := range errs {
			if err == nil {
				t.Errorf("%s rank %d: expected an error", ex.Name(), rank)
				continue
			}
			var oom *cluster.ErrOutOfMemory
			if rank == 2 {
				if !errors.As(err, &oom) {
					t.Errorf("%s rank 2: got %v, want OOM", ex.Name(), err)
				}
			} else if !errors.Is(err, ErrPeerOOM) {
				t.Errorf("%s rank %d: got %v, want ErrPeerOOM", ex.Name(), rank, err)
			}
		}
		// No leaked allocations after abort.
		for i, dev := range devs {
			if dev.Live() != 0 {
				t.Errorf("%s device %d leaked %d bytes", ex.Name(), i, dev.Live())
			}
		}
	}
}

func timeAfter() <-chan time.Time { return time.After(10 * time.Second) }

func TestValidateRejectsMalformed(t *testing.T) {
	bad := SparseGrad{Indices: []int{1, 2}, Rows: tensor.NewMatrix(3, 4)}
	if bad.Validate() == nil {
		t.Error("mismatched SparseGrad must fail validation")
	}
	var nilRows SparseGrad
	if nilRows.Validate() == nil {
		t.Error("nil-rows SparseGrad must fail validation")
	}
	comm := collective.New(1)
	ctx := &Ctx{Rank: 0, Comm: comm}
	if _, _, err := (UniqueExchange{}).Exchange(ctx, bad); err == nil {
		t.Error("exchange must reject malformed gradient")
	}
	if _, _, err := (BaselineAllGather{}).Exchange(ctx, bad); err == nil {
		t.Error("baseline must reject malformed gradient")
	}
}

func TestExpectedUnique(t *testing.T) {
	// Saturation at vocab.
	if got := ExpectedUnique(1_000_000, 0.64, 7.02, 100); got != 100 {
		t.Errorf("saturated U = %d, want 100", got)
	}
	// Never above N.
	if got := ExpectedUnique(3, 0.64, 7.02, 1000); got > 3 {
		t.Errorf("U = %d exceeds N = 3", got)
	}
	// Paper's Figure 1 point: N = 40M tokens → U ~100× smaller.
	u := ExpectedUnique(40_000_000, 0.64, 7.02, 1<<40)
	ratio := 40_000_000.0 / float64(u)
	if ratio < 50 || ratio > 200 {
		t.Errorf("N/U = %v, paper says ~100×", ratio)
	}
}

func TestMemoryReductionGrowsWithG(t *testing.T) {
	const k, d = 640, 512
	prev := 0.0
	for _, g := range []int{8, 16, 24} {
		ug := ExpectedUnique(g*k, 0.64, 7.02, 100_000)
		red := MemoryReduction(g, k, min(k, ug), ug, d)
		if red <= prev {
			t.Errorf("memory reduction not increasing: %v at G=%d after %v", red, g, prev)
		}
		prev = red
	}
	// The exchange-scratch-only ratio at this small config is ~3.8×; the
	// paper's 8.6× headline additionally counts model/activation memory,
	// which the experiments package models on top of these formulas.
	if prev < 2.5 {
		t.Errorf("memory reduction at 24 GPUs = %v, expected several-fold", prev)
	}
}

func TestLocalReduce(t *testing.T) {
	grad := SparseGrad{
		Indices: []int{5, 3, 5, 9, 3},
		Rows: tensor.NewMatrixFrom(5, 2, []float32{
			1, 1,
			2, 2,
			10, 10,
			4, 4,
			20, 20,
		}),
	}
	idx, rows := localReduce(NewWorkspace(), grad)
	if len(idx) != 3 || idx[0] != 3 || idx[1] != 5 || idx[2] != 9 {
		t.Fatalf("idx = %v", idx)
	}
	if rows.At(0, 0) != 22 || rows.At(1, 0) != 11 || rows.At(2, 0) != 4 {
		t.Errorf("rows = %v", rows.Data)
	}
}

func TestGlobalUnique(t *testing.T) {
	got := globalUnique(nil, [][]int{{3, 1, 3}, {2, 1}, {}})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
