package core

import (
	"math"
	"sync"
	"testing"

	"zipflm/internal/collective"
)

// runHierarchical executes the hierarchical exchange on all ranks.
func runHierarchical(t *testing.T, grads []SparseGrad, groupSize int) ([]Update, []Stats, *collective.Hierarchy) {
	t.Helper()
	g := len(grads)
	hier := collective.NewHierarchy(g, groupSize)
	ex := HierarchicalExchange{Hier: hier}
	updates := make([]Update, g)
	stats := make([]Stats, g)
	errs := make([]error, g)
	var wg sync.WaitGroup
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := &Ctx{Rank: rank, Comm: collective.New(1)} // global comm unused
			updates[rank], stats[rank], errs[rank] = ex.Exchange(ctx, grads[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return updates, stats, hier
}

// TestHierarchicalMatchesReference: the two-level exchange must produce the
// same global accumulation as the serial reference on every rank.
func TestHierarchicalMatchesReference(t *testing.T) {
	for _, tc := range []struct{ g, groupSize int }{
		{8, 4}, {8, 8}, {6, 4}, {9, 3}, {4, 1}, {5, 2},
	} {
		grads := makeGrads(tc.g, 40, 6, 80, uint64(tc.g*10+tc.groupSize))
		updates, _, _ := runHierarchical(t, grads, tc.groupSize)
		ref := referenceUpdate(grads)
		for rank, u := range updates {
			if len(u.Indices) != len(ref) {
				t.Fatalf("g=%d n=%d rank=%d: %d unique, want %d",
					tc.g, tc.groupSize, rank, len(u.Indices), len(ref))
			}
			for i, w := range u.Indices {
				want := ref[w]
				for c, v := range u.Rows.Row(i) {
					if math.Abs(float64(v)-want[c]) > 1e-3 {
						t.Fatalf("g=%d n=%d rank=%d word=%d col=%d: %v vs %v",
							tc.g, tc.groupSize, rank, w, c, v, want[c])
					}
				}
			}
		}
	}
}

// TestHierarchicalEquivalentToFlat: hierarchical and flat unique exchanges
// agree with each other (both match the reference; this checks the index
// ordering contract too).
func TestHierarchicalEquivalentToFlat(t *testing.T) {
	grads := makeGrads(8, 30, 5, 50, 77)
	hUpd, _, _ := runHierarchical(t, grads, 4)
	fUpd, _ := runExchange(t, UniqueExchange{}, grads, nil, nil)
	if len(hUpd[0].Indices) != len(fUpd[0].Indices) {
		t.Fatalf("index counts differ: %d vs %d", len(hUpd[0].Indices), len(fUpd[0].Indices))
	}
	for i := range hUpd[0].Indices {
		if hUpd[0].Indices[i] != fUpd[0].Indices[i] {
			t.Fatal("index sets differ")
		}
		for c := 0; c < 5; c++ {
			a, b := hUpd[0].Rows.At(i, c), fUpd[0].Rows.At(i, c)
			if math.Abs(float64(a-b)) > 1e-3 {
				t.Fatalf("row %d col %d: %v vs %v", i, c, a, b)
			}
		}
	}
}

// TestHierarchicalReducesInterNodeTraffic is the point of the extension:
// only leaders appear on the inter-node fabric, and the volume they move is
// far below what G flat-ring ranks would move across the boundary.
func TestHierarchicalReducesInterNodeTraffic(t *testing.T) {
	const g, groupSize, k, d, vocab = 8, 4, 200, 16, 60
	grads := makeGrads(g, k, d, vocab, 5)
	_, _, hier := runHierarchical(t, grads, groupSize)

	inter := hier.InterNodeBytes()
	if inter <= 0 {
		t.Fatal("no inter-node traffic recorded")
	}
	// Flat unique exchange: every rank's full volume rides the ring across
	// the node boundary.
	_, fStats := runExchange(t, UniqueExchange{}, grads, nil, nil)
	flatPerRank := fStats[0].WireBytes
	// 2 nodes × 4 ranks: flat puts 8 ranks' ring traffic on the fabric;
	// hierarchical puts 2 leaders' worth. Compare per-participant volume.
	if inter >= flatPerRank {
		t.Errorf("leader inter-node bytes %d not below flat per-rank %d", inter, flatPerRank)
	}
	if hier.IntraNodeBytes() == 0 {
		t.Error("no intra-node traffic recorded")
	}
}

func TestHierarchicalNeedsHierarchy(t *testing.T) {
	ex := HierarchicalExchange{}
	ctx := &Ctx{Rank: 0, Comm: collective.New(1)}
	grads := makeGrads(1, 4, 2, 10, 1)
	if _, _, err := ex.Exchange(ctx, grads[0]); err == nil {
		t.Fatal("nil hierarchy must error")
	}
	if _, _, err := (HierarchicalExchange{Hier: collective.NewHierarchy(1, 1)}).Exchange(ctx, SparseGrad{}); err == nil {
		t.Fatal("malformed gradient must error")
	}
}

func TestHierarchyTopology(t *testing.T) {
	h := collective.NewHierarchy(10, 4) // groups of 4,4,2
	if h.NumGroups() != 3 {
		t.Fatalf("groups = %d, want 3", h.NumGroups())
	}
	if g, r := h.GroupOf(5); g != 1 || r != 1 {
		t.Errorf("GroupOf(5) = (%d,%d), want (1,1)", g, r)
	}
	if !h.IsLeader(8) || h.IsLeader(9) {
		t.Error("leader detection wrong for last group")
	}
	if h.Group(9).Size() != 2 {
		t.Errorf("last group size = %d, want 2", h.Group(9).Size())
	}
	if h.Leaders().Size() != 3 {
		t.Errorf("leaders size = %d, want 3", h.Leaders().Size())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range rank must panic")
			}
		}()
		h.GroupOf(10)
	}()
}

func TestHierarchicalCostFormula(t *testing.T) {
	member, leader := HierarchicalCost(64, 8, 640, 2000, 6300, 512, false)
	if member <= 0 || leader <= 0 {
		t.Fatal("costs must be positive")
	}
	// FP16 halves only the gradient part of the leader volume.
	_, leader16 := HierarchicalCost(64, 8, 640, 2000, 6300, 512, true)
	if leader16 >= leader {
		t.Error("FP16 must shrink inter-node volume")
	}
	// Single node → no inter-node traffic.
	if _, l := HierarchicalCost(8, 8, 640, 2000, 6300, 512, false); l != 0 {
		t.Errorf("single-node leader volume = %d, want 0", l)
	}
}
