package core

import (
	"sort"

	"zipflm/internal/tensor"
)

// BaselineAllGather is the state-of-the-art exchange the paper scales
// against (§II-B): every rank gathers every other rank's dense K×D gradient
// block plus its K token indices, then scatter-adds all G·K rows into the
// embedding locally. Per-rank scratch memory and wire volume are both
// Θ(G·K·D); at the paper's word-LM configuration this exceeds the 12 GB
// Titan X beyond 24 GPUs (the "*" rows of Table III).
type BaselineAllGather struct{}

// Name implements Exchanger.
func (BaselineAllGather) Name() string { return "baseline-allgather" }

// Exchange implements Exchanger.
func (BaselineAllGather) Exchange(ctx *Ctx, grad SparseGrad) (Update, Stats, error) {
	if err := grad.Validate(); err != nil {
		return Update{}, Stats{}, err
	}
	g := ctx.Comm.Size()
	k := len(grad.Indices)
	d := grad.Rows.Cols

	stats := Stats{Tokens: k}
	before := ctx.Comm.SyncStats(ctx.Rank)
	simBefore := ctx.simNow()

	// Scratch: G dense gradient blocks land on this rank (§II-B: "the
	// ALLGATHER operation requires Θ(G×K×D) local memory to hold G
	// number of Δ matrices") plus the G index vectors.
	elem := int64(4)
	scratch := int64(g)*int64(k)*int64(d)*elem + int64(g)*int64(k)*4
	release, allocErr := alloc(ctx.Dev, scratch)
	if err := agreeAlloc(ctx, allocErr, release); err != nil {
		return Update{}, Stats{}, err
	}
	defer release()
	stats.ScratchBytes = scratch

	allIdx := ctx.Comm.AllGatherInts(ctx.Rank, grad.Indices)
	allRows := ctx.Comm.AllGatherFloats(ctx.Rank, grad.Rows.Data, ctx.Wire)

	// Local scatter-add of all G·K token rows. Duplicate words collide on
	// the same accumulator row — the very serialization §III-A eliminates.
	pos := ctx.WS.scratchRowMap()
	var order []int
	for _, idxs := range allIdx {
		for _, w := range idxs {
			if _, ok := pos[w]; !ok {
				pos[w] = 0
				order = append(order, w)
			}
		}
	}
	sort.Ints(order)
	for i, w := range order {
		pos[w] = i
	}
	acc := tensor.NewMatrix(len(order), d)
	for r, idxs := range allIdx {
		block := tensor.NewMatrixFrom(len(idxs), d, allRows[r])
		for i, w := range idxs {
			tensor.AddInPlace(acc.Row(pos[w]), block.Row(i))
		}
	}

	stats.UniqueLocal = countUnique(grad.Indices)
	stats.UniqueGlobal = len(order)
	stats.WireBytes = ctx.Comm.SyncStats(ctx.Rank).Sub(before).Total()
	stats.SimSeconds = ctx.simNow() - simBefore
	return Update{Indices: order, Rows: acc}, stats, nil
}

func countUnique(idx []int) int {
	seen := make(map[int]struct{}, len(idx))
	for _, w := range idx {
		seen[w] = struct{}{}
	}
	return len(seen)
}
