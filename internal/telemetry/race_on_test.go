//go:build race

package telemetry

// raceEnabled reports that this test binary was built with -race, whose
// runtime instrumentation itself allocates — allocation guards are
// meaningless there and skip themselves.
const raceEnabled = true
