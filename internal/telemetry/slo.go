package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file is the SLO engine: service-level objectives declared over
// instruments the registry already owns, evaluated SRE-style — every
// objective reduces to a good/bad event pair, budget burn is the bad
// fraction divided by the error budget (1 − target), and burn rates are
// computed over multiple trailing windows from periodically sampled
// cumulative counts (the classic multi-window multi-burn-rate alerting
// shape). Evaluation only reads instruments; like the rest of the
// package, an SLO observes and never perturbs.

// Objective declares one service-level objective. Exactly one of the two
// kinds is set:
//
//   - Latency: Hist + Quantile + TargetSeconds — "the Quantile-th latency
//     quantile stays at or below TargetSeconds". Observations above the
//     threshold are the bad events (Histogram.CountAbove), everything
//     recorded is an event.
//
//   - Availability: Good + Bad counter sets + Target — "at least Target of
//     all events are good". Shed, expired or errored requests land in Bad.
type Objective struct {
	// Name identifies the objective in Status, /v1/stats and /metrics
	// labels (e.g. "latency_p99", "availability").
	Name string

	// Latency objective.
	Hist          *Histogram
	Quantile      float64 // e.g. 0.99
	TargetSeconds float64 // threshold in the histogram's exported unit

	// Availability objective.
	Good   []*Counter
	Bad    []*Counter
	Target float64 // availability target in (0,1), e.g. 0.999
}

// latency reports which kind this objective is.
func (o *Objective) latency() bool { return o.Hist != nil }

// budgetFraction returns the error budget 1 − target (fraction of events
// allowed to be bad).
func (o *Objective) budgetFraction() float64 {
	t := o.Target
	if o.latency() {
		t = o.Quantile
	}
	if t <= 0 || t >= 1 {
		return 1
	}
	return 1 - t
}

// counts returns cumulative (events, bad) for the objective.
func (o *Objective) counts() (events, bad int64) {
	if o.latency() {
		f := o.Hist.Factor()
		if f <= 0 {
			f = 1
		}
		raw := int64(o.TargetSeconds / f)
		return o.Hist.Count(), o.Hist.CountAbove(raw)
	}
	for _, c := range o.Good {
		events += c.Value()
	}
	for _, c := range o.Bad {
		b := c.Value()
		events += b
		bad += b
	}
	return events, bad
}

// WindowBurn is the burn rate over one trailing window: the rate at which
// the error budget was consumed, normalized so 1.0 means "exactly on
// budget" (burning the whole budget if sustained) and >1 means burning
// faster than the objective allows. 0 when the window saw no events.
type WindowBurn struct {
	Window time.Duration `json:"window"`
	Rate   float64       `json:"rate"`
}

// Status is one objective's evaluation.
type Status struct {
	Name string `json:"name"`
	// Kind is "latency" or "availability".
	Kind      string `json:"kind"`
	Compliant bool   `json:"compliant"`
	// Current is the lifetime observed value: the latency quantile in
	// seconds for latency objectives, the availability fraction otherwise.
	Current float64 `json:"current"`
	// Target mirrors the declared objective: TargetSeconds or Target.
	Target float64 `json:"target"`
	// Events and BadEvents are lifetime cumulative counts.
	Events    int64 `json:"events"`
	BadEvents int64 `json:"bad_events"`
	// BudgetUsed is the lifetime budget consumption: bad/(events·budget).
	// 1.0 means the whole lifetime error budget is spent.
	BudgetUsed float64 `json:"budget_used"`
	// Burn holds the multi-window burn rates (empty until Tick has
	// sampled at least once and traffic arrived).
	Burn []WindowBurn `json:"burn,omitempty"`
}

// String renders a status one-line, for notes and logs.
func (s Status) String() string {
	cur := fmt.Sprintf("%.4f", s.Current)
	tgt := fmt.Sprintf("%.4f", s.Target)
	if s.Kind == "latency" {
		cur = fmt.Sprintf("%.6fs", s.Current)
		tgt = fmt.Sprintf("%.6fs", s.Target)
	}
	verdict := "MET"
	if !s.Compliant {
		verdict = "VIOLATED"
	}
	return fmt.Sprintf("SLO %s (%s): %s — current %s vs target %s, budget used %.1f%% over %d events",
		s.Name, s.Kind, verdict, cur, tgt, 100*s.BudgetUsed, s.Events)
}

// sample is one Tick's cumulative counts for every objective.
type sample struct {
	at     time.Time
	events []int64
	bad    []int64
}

// SLO evaluates a set of objectives with multi-window burn rates. Create
// with NewSLO, declare objectives with Add, call Tick periodically (the
// registry's OnCollect hook via Publish does this on every scrape), and
// read Evaluate. All methods are nil-receiver safe.
type SLO struct {
	mu      sync.Mutex
	objs    []Objective
	windows []time.Duration
	samples []sample // time-ordered ring, oldest first
}

// DefaultBurnWindows are the trailing windows burn rates are computed over
// when NewSLO is given none.
var DefaultBurnWindows = []time.Duration{time.Minute, 10 * time.Minute}

// NewSLO returns an engine computing burn rates over the given trailing
// windows (DefaultBurnWindows when none).
func NewSLO(windows ...time.Duration) *SLO {
	if len(windows) == 0 {
		windows = append([]time.Duration(nil), DefaultBurnWindows...)
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	return &SLO{windows: append([]time.Duration(nil), windows...)}
}

// Add declares an objective. Objectives with a nil instrument source are
// ignored.
func (s *SLO) Add(o Objective) {
	if s == nil {
		return
	}
	if o.Hist == nil && len(o.Good) == 0 && len(o.Bad) == 0 {
		return
	}
	s.mu.Lock()
	s.objs = append(s.objs, o)
	s.samples = nil // counts-per-objective shape changed; restart sampling
	s.mu.Unlock()
}

// Windows returns the configured burn windows.
func (s *SLO) Windows() []time.Duration {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.windows...)
}

// Tick samples every objective's cumulative counts at now, retaining just
// enough history to cover the longest burn window. Call it on a timer or
// from a scrape hook; irregular cadence is fine (burn rates interpolate
// nothing — they use the oldest sample inside each window).
func (s *SLO) Tick(now time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sm := sample{at: now, events: make([]int64, len(s.objs)), bad: make([]int64, len(s.objs))}
	for i := range s.objs {
		sm.events[i], sm.bad[i] = s.objs[i].counts()
	}
	s.samples = append(s.samples, sm)
	// Trim samples older than the longest window, always keeping one
	// sample at or beyond the horizon so the widest window has a base.
	horizon := now.Add(-s.windows[len(s.windows)-1])
	cut := 0
	for cut+1 < len(s.samples) && !s.samples[cut+1].at.After(horizon) {
		cut++
	}
	if cut > 0 {
		s.samples = append(s.samples[:0], s.samples[cut:]...)
	}
}

// Evaluate returns every objective's status as of now, in declaration
// order. Burn rates need at least one prior Tick; lifetime fields are
// always fresh.
func (s *SLO) Evaluate(now time.Time) []Status {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, len(s.objs))
	for i := range s.objs {
		o := &s.objs[i]
		events, bad := o.counts()
		st := Status{Name: o.Name, Kind: "availability", Events: events, BadEvents: bad}
		if o.latency() {
			st.Kind = "latency"
		}
		budget := o.budgetFraction()
		if events > 0 {
			st.BudgetUsed = float64(bad) / (float64(events) * budget)
		}
		if o.latency() {
			st.Current = float64(o.Hist.Quantile(o.Quantile)) * o.Hist.Factor()
			st.Target = o.TargetSeconds
			st.Compliant = events == 0 || st.Current <= o.TargetSeconds
		} else {
			st.Current = 1
			if events > 0 {
				st.Current = float64(events-bad) / float64(events)
			}
			st.Target = o.Target
			st.Compliant = events == 0 || st.Current >= o.Target
		}
		for _, w := range s.windows {
			base, ok := s.oldestWithin(now, w, i)
			if !ok {
				continue
			}
			dEvents := events - base.events[i]
			dBad := bad - base.bad[i]
			rate := 0.0
			if dEvents > 0 {
				rate = (float64(dBad) / float64(dEvents)) / budget
			}
			st.Burn = append(st.Burn, WindowBurn{Window: w, Rate: rate})
		}
		out[i] = st
	}
	return out
}

// oldestWithin returns the oldest sample no older than now−w that has
// counts for objective i. Callers hold s.mu.
func (s *SLO) oldestWithin(now time.Time, w time.Duration, i int) (sample, bool) {
	horizon := now.Add(-w)
	for _, sm := range s.samples {
		if !sm.at.Before(horizon) && i < len(sm.events) {
			return sm, true
		}
	}
	return sample{}, false
}

// Publish wires the SLO into a registry: every scrape ticks the engine and
// refreshes per-objective gauges —
//
//	zipflm_slo_compliant{slo="…"}            1 or 0
//	zipflm_slo_current{slo="…"}              observed quantile / availability
//	zipflm_slo_target{slo="…"}               declared target
//	zipflm_slo_budget_used{slo="…"}          lifetime budget fraction spent
//	zipflm_slo_burn_rate{slo="…",window="…"} multi-window burn rates
//
// — so dashboards and alerts consume objectives the same way they consume
// any other family.
func (s *SLO) Publish(r *Registry) {
	if s == nil || r == nil {
		return
	}
	r.OnCollect(func() {
		now := time.Now()
		s.Tick(now)
		for _, st := range s.Evaluate(now) {
			compliant := 0.0
			if st.Compliant {
				compliant = 1
			}
			r.Gauge(Label("zipflm_slo_compliant", "slo", st.Name)).Set(compliant)
			r.Gauge(Label("zipflm_slo_current", "slo", st.Name)).Set(st.Current)
			r.Gauge(Label("zipflm_slo_target", "slo", st.Name)).Set(st.Target)
			r.Gauge(Label("zipflm_slo_budget_used", "slo", st.Name)).Set(st.BudgetUsed)
			for _, b := range st.Burn {
				name := Label(Label("zipflm_slo_burn_rate", "slo", st.Name), "window", b.Window.String())
				r.Gauge(name).Set(b.Rate)
			}
		}
	})
}
