package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Duration("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All record/read paths must be no-ops, never panics.
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	g.SetInt(2)
	h.Record(10)
	h.Observe(time.Millisecond)
	h.Start().Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	r.OnCollect(func() { t.Fatal("collector must not run on nil registry") })
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistrySharesInstruments(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return the same counter")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("same name must return the same gauge")
	}
	if r.Histogram("z", "s", 1e-9) != r.Duration("z") {
		t.Fatal("same name must return the same histogram")
	}
}

func TestLabel(t *testing.T) {
	if got := Label("m", "wire", "fp16"); got != `m{wire="fp16"}` {
		t.Fatalf("Label = %q", got)
	}
	if got := Label(Label("m", "a", "1"), "b", "2"); got != `m{a="1",b="2"}` {
		t.Fatalf("composed Label = %q", got)
	}
	fam, labels := splitName(`m{a="1",b="2"}`)
	if fam != "m" || labels != `a="1",b="2"` {
		t.Fatalf("splitName = %q, %q", fam, labels)
	}
	fam, labels = splitName("plain")
	if fam != "plain" || labels != "" {
		t.Fatalf("splitName plain = %q, %q", fam, labels)
	}
}

// promLine matches a valid Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("zipflm_requests_total").Add(7)
	r.Counter(Label("zipflm_bytes_total", "wire", "fp16")).Add(1024)
	r.Counter(Label("zipflm_bytes_total", "wire", "q8")).Add(256)
	r.Gauge("zipflm_queue_depth").SetInt(3)
	h := r.Duration("zipflm_latency_seconds")
	h.Record(int64(5 * time.Millisecond))
	h.Record(int64(20 * time.Millisecond))
	return r
}

func TestWritePrometheusFormat(t *testing.T) {
	r := buildTestRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	typeLines := 0
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typeLines++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid sample line: %q", line)
		}
	}
	// Families: requests_total, bytes_total (once, despite two labelled
	// series), queue_depth, latency_seconds, plus the scrape meta-metrics
	// every exposition carries (telemetry_scrapes_total,
	// telemetry_scrape_seconds).
	if typeLines != 6 {
		t.Errorf("got %d TYPE lines, want 6 (one per family):\n%s", typeLines, text)
	}
	if !strings.Contains(text, "zipflm_telemetry_scrapes_total 1\n") {
		t.Errorf("first scrape must report itself in the meta-counter:\n%s", text)
	}
	if strings.Count(text, "# TYPE zipflm_bytes_total counter") != 1 {
		t.Errorf("labelled family must emit exactly one TYPE line:\n%s", text)
	}
	for _, want := range []string{
		"zipflm_requests_total 7\n",
		`zipflm_bytes_total{wire="fp16"} 1024` + "\n",
		`zipflm_bytes_total{wire="q8"} 256` + "\n",
		"zipflm_queue_depth 3\n",
		`zipflm_latency_seconds_bucket{le="+Inf"} 2` + "\n",
		"zipflm_latency_seconds_count 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Histogram sum is exported in seconds.
	if !strings.Contains(text, "zipflm_latency_seconds_sum 0.025\n") {
		t.Errorf("histogram sum must be scaled to seconds:\n%s", text)
	}
	// Cumulative bucket counts never decrease.
	var last int64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "zipflm_latency_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := buildTestRegistry()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["zipflm_requests_total"] != 7 {
		t.Errorf("counter in snapshot = %d, want 7", snap.Counters["zipflm_requests_total"])
	}
	if snap.Gauges["zipflm_queue_depth"] != 3 {
		t.Errorf("gauge in snapshot = %g, want 3", snap.Gauges["zipflm_queue_depth"])
	}
	h := snap.Histograms["zipflm_latency_seconds"]
	if h.Count != 2 || h.Unit != "s" {
		t.Errorf("histogram snapshot = %+v", h)
	}
	if h.Sum != 0.025 {
		t.Errorf("histogram sum = %g, want 0.025 (seconds)", h.Sum)
	}
	if h.P50 <= 0 || h.P99 < h.P50 {
		t.Errorf("quantiles disordered: %+v", h)
	}
}

func TestOnCollect(t *testing.T) {
	r := NewRegistry()
	backing := int64(41)
	r.OnCollect(func() { r.Gauge("derived").SetInt(backing) })
	backing = 42
	snap := r.Snapshot()
	if snap.Gauges["derived"] != 42 {
		t.Fatalf("collector must run at export time: got %g", snap.Gauges["derived"])
	}
}

func TestHandler(t *testing.T) {
	r := buildTestRegistry()
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "zipflm_requests_total 7") {
		t.Errorf("text body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON body: %v", err)
	}
}

// TestHandlerContentNegotiation: one endpoint, two formats — the Accept
// header selects JSON, anything else gets Prometheus text, and the
// ?format=json alias keeps working (and beats Accept when both appear).
func TestHandlerContentNegotiation(t *testing.T) {
	r := buildTestRegistry()
	h := Handler(r)

	cases := []struct {
		name, query, accept string
		wantJSON            bool
	}{
		{"bare GET is text", "", "", false},
		{"accept json", "", "application/json", true},
		{"accept json with params", "", "application/json; q=0.9", true},
		{"accept list", "", "text/html, application/json", true},
		{"accept other", "", "text/plain", false},
		{"format alias", "?format=json", "", true},
		{"format text beats accept", "?format=prometheus", "application/json", false},
		{"format json beats accept", "?format=json", "text/plain", true},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", "/metrics"+tc.query, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		ct := rec.Header().Get("Content-Type")
		if tc.wantJSON {
			if ct != "application/json" {
				t.Errorf("%s: Content-Type = %q, want application/json", tc.name, ct)
				continue
			}
			var snap Snapshot
			if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
				t.Errorf("%s: body not a JSON snapshot: %v", tc.name, err)
			}
		} else if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Errorf("%s: Content-Type = %q, want Prometheus text", tc.name, ct)
		}
	}
}

func TestPublishBuildInfo(t *testing.T) {
	r := NewRegistry()
	info := PublishBuildInfo(r)
	if info.Go == "" || info.GOMAXPROCS < 1 || info.NumCPU < 1 {
		t.Fatalf("implausible build info: %+v", info)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `zipflm_build_info{version=`) || !strings.Contains(text, `go="`+info.Go+`"`) {
		t.Errorf("exposition missing build info gauge:\n%s", text)
	}
	if !strings.Contains(text, "zipflm_gomaxprocs ") || !strings.Contains(text, "zipflm_numcpu ") {
		t.Errorf("exposition missing host-shape gauges:\n%s", text)
	}
	// Nil registry still reports the info (callers embed it in JSON).
	if got := PublishBuildInfo(nil); got.Go != info.Go {
		t.Fatalf("nil-registry PublishBuildInfo: %+v", got)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Duration("d")
	tm := h.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	if h.Count() != 1 {
		t.Fatalf("timer recorded %d observations, want 1", h.Count())
	}
	if h.Sum() < int64(time.Millisecond) {
		t.Fatalf("timer recorded %v, want >= 1ms", time.Duration(h.Sum()))
	}
}
