package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSLOLatencyObjective(t *testing.T) {
	h := NewHistogram("s", 1e-9) // duration histogram: nanos in, seconds out
	s := NewSLO()
	s.Add(Objective{Name: "latency_p99", Hist: h, Quantile: 0.99, TargetSeconds: 0.5})

	// 99 fast requests, 1 slow: p99 lands in the fast mass, objective met.
	for i := 0; i < 99; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(2 * time.Second)

	now := time.Unix(1000, 0)
	sts := s.Evaluate(now)
	if len(sts) != 1 {
		t.Fatalf("statuses = %v", sts)
	}
	st := sts[0]
	if st.Kind != "latency" || st.Name != "latency_p99" {
		t.Fatalf("status = %+v", st)
	}
	if !st.Compliant {
		t.Fatalf("p99 ≈ 10ms should meet a 500ms target: %+v", st)
	}
	if st.Events != 100 || st.BadEvents != 1 {
		t.Fatalf("events=%d bad=%d, want 100/1", st.Events, st.BadEvents)
	}
	// Budget: 1 bad out of 100 events against a 1% budget — fully used
	// (tolerance: the budget fraction 1−0.99 is not exact in float64).
	if st.BudgetUsed < 0.999 || st.BudgetUsed > 1.001 {
		t.Fatalf("budget used = %v, want ≈1.0", st.BudgetUsed)
	}

	// Shift the distribution: now most requests are slow, p99 blows past
	// the target and the objective is violated.
	for i := 0; i < 300; i++ {
		h.Observe(2 * time.Second)
	}
	st = s.Evaluate(now)[0]
	if st.Compliant {
		t.Fatalf("p99 ≈ 2s should violate a 500ms target: %+v", st)
	}
	if got := st.String(); !strings.Contains(got, "VIOLATED") || !strings.Contains(got, "latency") {
		t.Fatalf("String() = %q", got)
	}
}

func TestSLOAvailabilityObjective(t *testing.T) {
	reg := NewRegistry()
	good := reg.Counter("good_total")
	bad := reg.Counter("bad_total")
	s := NewSLO()
	s.Add(Objective{Name: "availability", Good: []*Counter{good}, Bad: []*Counter{bad}, Target: 0.99})

	// No traffic: vacuously compliant, availability reads 1.
	st := s.Evaluate(time.Unix(0, 0))[0]
	if !st.Compliant || st.Current != 1 || st.Kind != "availability" {
		t.Fatalf("empty status = %+v", st)
	}

	// 99.5% good against a 99% target: met, half the budget spent.
	good.Add(995)
	bad.Add(5)
	st = s.Evaluate(time.Unix(0, 0))[0]
	if st.Current != 0.995 || !st.Compliant {
		t.Fatalf("99.5%% vs 99%% target: %+v", st)
	}
	if st.BudgetUsed < 0.499 || st.BudgetUsed > 0.501 {
		t.Fatalf("budget used = %v, want ≈0.5", st.BudgetUsed)
	}

	// More failures drive availability below target: violated, budget over.
	bad.Add(15) // 980 good / 1015 total ≈ 0.9803
	st = s.Evaluate(time.Unix(0, 0))[0]
	if st.Compliant {
		t.Fatalf("98%% vs 99%% target should violate: %+v", st)
	}
	if st.BudgetUsed <= 1 {
		t.Fatalf("budget used = %v, want > 1", st.BudgetUsed)
	}
	if got := st.String(); !strings.Contains(got, "VIOLATED") {
		t.Fatalf("String() = %q", got)
	}
}

func TestSLOBurnRates(t *testing.T) {
	reg := NewRegistry()
	good := reg.Counter("good_total")
	bad := reg.Counter("bad_total")
	s := NewSLO(time.Minute, 10*time.Minute)
	s.Add(Objective{Name: "avail", Good: []*Counter{good}, Bad: []*Counter{bad}, Target: 0.99})

	t0 := time.Unix(10_000, 0)
	good.Add(100)
	s.Tick(t0)

	// Over the next minute, 100 more events arrive and 2 are bad: a 2% bad
	// fraction against a 1% budget is a burn rate of exactly 2.
	good.Add(98)
	bad.Add(2)
	t1 := t0.Add(time.Minute)
	s.Tick(t1)
	st := s.Evaluate(t1)[0]
	if len(st.Burn) != 2 {
		t.Fatalf("burn windows = %v", st.Burn)
	}
	for _, b := range st.Burn {
		if b.Rate < 1.999 || b.Rate > 2.001 {
			t.Fatalf("burn over %v = %v, want ≈2.0", b.Window, b.Rate)
		}
	}

	// A quiet hour later the 1-minute window has no base sample inside it
	// (all samples are old), so only windows with an in-range base report.
	t2 := t1.Add(time.Hour)
	st = s.Evaluate(t2)[0]
	for _, b := range st.Burn {
		t.Fatalf("no sample within any window, got burn %v", b)
	}
}

func TestSLOPublish(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram("s", 1e-9)
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := NewSLO(time.Minute)
	s.Add(Objective{Name: "p99", Hist: h, Quantile: 0.99, TargetSeconds: 1})
	s.Publish(r)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`zipflm_slo_compliant{slo="p99"} 1`,
		`zipflm_slo_target{slo="p99"} 1`,
		`zipflm_slo_budget_used{slo="p99"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Second scrape: the first Tick seeded a sample, so burn gauges appear.
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `zipflm_slo_burn_rate{slo="p99",window="1m0s"} 0`) {
		t.Errorf("missing burn gauge in:\n%s", buf.String())
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.Add(Objective{})
	s.Tick(time.Now())
	if got := s.Evaluate(time.Now()); got != nil {
		t.Fatalf("nil SLO evaluated to %v", got)
	}
	if s.Windows() != nil {
		t.Fatal("nil SLO has windows")
	}
	s.Publish(NewRegistry())

	// Objectives without instrument sources are ignored.
	s2 := NewSLO()
	s2.Add(Objective{Name: "empty"})
	if got := s2.Evaluate(time.Now()); len(got) != 0 {
		t.Fatalf("sourceless objective evaluated: %v", got)
	}
}

func TestHistogramCountAbove(t *testing.T) {
	h := NewHistogram("", 1)
	for _, v := range []int64{0, 1, 5, 10, 31, 100, 1000} {
		h.Record(v)
	}
	cases := []struct {
		v    int64
		want int64
	}{
		{0, 7},    // everything
		{1, 6},    // all but the 0
		{11, 3},   // 31, 100, 1000 (11 is an exact unit bucket bound)
		{2000, 0}, // above everything
	}
	for _, c := range cases {
		if got := h.CountAbove(c.v); got != c.want {
			t.Errorf("CountAbove(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// A threshold inside a log bucket excludes that bucket entirely:
	// the result is a lower bound, never an overcount of strictly-above.
	if got := h.CountAbove(33); got > 3 {
		t.Errorf("CountAbove(33) = %d overcounts", got)
	}
	var nilH *Histogram
	if nilH.CountAbove(0) != 0 {
		t.Fatal("nil histogram counted")
	}
}
