//go:build !race

package telemetry

// raceEnabled: see race_on_test.go.
const raceEnabled = false
