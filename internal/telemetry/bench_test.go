package telemetry

import (
	"testing"
	"time"
)

// TestHotPathZeroAlloc is the hard guard behind the package contract: the
// record methods — live and nil (telemetry off) — must never allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Duration("h")
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	var nilT *Tracer
	now := time.Now()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Histogram.Record", func() { h.Record(12345) }},
		{"Histogram.Observe", func() { h.Observe(time.Millisecond) }},
		{"nil Counter.Add", func() { nilC.Add(1) }},
		{"nil Gauge.Set", func() { nilG.Set(1.5) }},
		{"nil Histogram.Record", func() { nilH.Record(12345) }},
		{"nil Tracer.Span", func() { nilT.Span("c", "n", 0, now, time.Millisecond, 0, 0) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %g allocs/op, want 0", tc.name, allocs)
		}
	}
}

// BenchmarkTelemetryRecord measures the per-observation cost of each hot
// instrument, plus the nil (telemetry off) cost of the same call sites.
func BenchmarkTelemetryRecord(b *testing.B) {
	r := NewRegistry()
	b.Run("counter", func(b *testing.B) {
		c := r.Counter("bench_c")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("gauge", func(b *testing.B) {
		g := r.Gauge("bench_g")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		h := r.Duration("bench_h")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(int64(i))
		}
	})
	b.Run("histogram-off", func(b *testing.B) {
		var h *Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(int64(i))
		}
	})
}

// BenchmarkTracerSpan measures span recording (mutex + append; not a
// per-token path, but cheap enough for per-step and per-request use).
func BenchmarkTracerSpan(b *testing.B) {
	tr := NewTracer(b.N + 1)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Span("bench", "span", 0, now, time.Microsecond, 0, 0)
	}
}
