package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func readManifest(t *testing.T, dir string) []ProfileEntry {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var entries []ProfileEntry
	if err := json.Unmarshal(buf, &entries); err != nil {
		t.Fatalf("manifest not decodable: %v", err)
	}
	return entries
}

func TestProfilerPhaseCaptures(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{Dir: dir, Heap: true})
	if err != nil {
		t.Fatal(err)
	}
	stop := p.StartPhase("weakscale")
	// Burn a little CPU so the profile has samples to write.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i) * 1.0000001
	}
	_ = x
	stop()
	p.Stop()

	entries := readManifest(t, dir)
	if len(entries) != 2 {
		t.Fatalf("manifest has %d entries, want 2 (cpu + heap): %+v", len(entries), entries)
	}
	kinds := map[string]bool{}
	for _, e := range entries {
		kinds[e.Kind] = true
		if e.Label != "weakscale" {
			t.Errorf("entry label %q, want weakscale", e.Label)
		}
		fi, err := os.Stat(filepath.Join(dir, e.File))
		if err != nil {
			t.Errorf("indexed file missing: %v", err)
		} else if fi.Size() == 0 {
			t.Errorf("profile %s is empty", e.File)
		}
	}
	if !kinds["cpu"] || !kinds["heap"] {
		t.Fatalf("manifest kinds = %v, want cpu and heap", kinds)
	}
	if m := p.Manifest(); len(m) != 2 {
		t.Fatalf("Manifest() = %d entries, want 2", len(m))
	}
}

func TestProfilerSchedule(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{
		Dir:         dir,
		Interval:    5 * time.Millisecond,
		CPUDuration: 5 * time.Millisecond,
		Heap:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	time.Sleep(60 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent

	entries := readManifest(t, dir)
	var cpus, heaps int
	for _, e := range entries {
		switch e.Kind {
		case "cpu":
			cpus++
			if e.DurationS <= 0 {
				t.Errorf("cpu capture with zero duration: %+v", e)
			}
		case "heap":
			heaps++
		}
		if e.Label != "scheduled" {
			t.Errorf("scheduled entry label %q", e.Label)
		}
	}
	if cpus == 0 || heaps == 0 {
		t.Fatalf("schedule captured %d cpu / %d heap profiles, want at least one each", cpus, heaps)
	}
}

// TestProfilerCPUExclusion: a second CPU capture while one runs is
// skipped, not fatal, and indexes nothing.
func TestProfilerCPUExclusion(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	stop1 := p.StartCPU("outer")
	stop2 := p.StartCPU("inner") // must be skipped
	stop2()
	stop1()
	p.Stop()

	entries := readManifest(t, dir)
	if len(entries) != 1 || entries[0].Label != "outer" {
		t.Fatalf("manifest = %+v, want exactly the outer capture", entries)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.Start()
	p.StartCPU("x")()
	p.StartPhase("y")()
	if _, err := p.CaptureHeap("z"); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	if p.Manifest() != nil || p.Dir() != "" {
		t.Fatal("nil Profiler not inert")
	}
	if _, err := NewProfiler(ProfilerConfig{}); err == nil {
		t.Fatal("NewProfiler without a directory must error")
	}
}
