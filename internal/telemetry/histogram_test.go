package telemetry

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// oracleQuantile is the sorted-slice nearest-rank reference, using the
// same rank rule Histogram.Quantile applies, so the two disagree only by
// bucket resolution, never by rank convention.
func oracleQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// xorshift is a tiny deterministic generator so the adversarial
// distributions reproduce bit-identically.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// quantileDistributions are the adversarial shapes: a point mass (every
// observation identical — quantiles must be exact), a far-separated
// bimodal mix (quantiles jump across empty octaves), a Zipf-like power
// law (the repository's home turf: heavy head, long tail), and small
// exact-range values (sub-bucket region must be exact).
func quantileDistributions() map[string][]int64 {
	out := make(map[string][]int64)

	point := make([]int64, 5000)
	for i := range point {
		point[i] = 1_234_567
	}
	out["point-mass"] = point

	var r xorshift = 99
	bimodal := make([]int64, 6000)
	for i := range bimodal {
		if r.next()%10 < 7 {
			bimodal[i] = 1_000 + int64(r.next()%64)
		} else {
			bimodal[i] = 50_000_000 + int64(r.next()%4096)
		}
	}
	out["bimodal"] = bimodal

	r = 7
	zipf := make([]int64, 8000)
	for i := range zipf {
		// v ∝ 1/u: a crude but genuinely heavy-tailed power law spanning
		// six orders of magnitude.
		u := float64(r.next()%1_000_000)/1_000_000 + 1e-6
		zipf[i] = int64(100 / u)
	}
	out["zipf"] = zipf

	r = 3
	small := make([]int64, 4000)
	for i := range small {
		small[i] = int64(r.next() % subCount)
	}
	out["small-exact"] = small

	return out
}

func TestQuantileErrorBounds(t *testing.T) {
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, values := range quantileDistributions() {
		h := NewHistogram("", 1)
		for _, v := range values {
			h.Record(v)
		}
		sorted := append([]int64(nil), values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		for _, q := range qs {
			want := oracleQuantile(sorted, q)
			got := h.Quantile(q)
			// The bucket-midpoint guarantee: exact below subCount, else
			// within half a bucket width — ≤ 1/(2·subCount) relative.
			if want < subCount {
				if got != want {
					t.Errorf("%s q=%g: got %d, oracle %d (sub-bucket region must be exact)", name, q, got, want)
				}
				continue
			}
			relErr := math.Abs(float64(got)-float64(want)) / float64(want)
			if relErr > 1.0/subCount {
				t.Errorf("%s q=%g: got %d, oracle %d, relative error %.4f > %.4f",
					name, q, got, want, relErr, 1.0/subCount)
			}
		}
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	h := NewHistogram("", 1)
	var sum int64
	for v := int64(0); v < 1000; v++ {
		h.Record(v)
		sum += v
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	if h.Sum() != sum {
		t.Fatalf("sum %d, want %d", h.Sum(), sum)
	}
	if want := float64(sum) / 1000; h.Mean() != want {
		t.Fatalf("mean %g, want %g", h.Mean(), want)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram("", 1)
	if h.Quantile(0.5) != 0 || h.P99() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-50) // clamps to 0
	if h.Quantile(0.5) != 0 {
		t.Fatalf("negative observation should clamp to bucket 0, p50 = %d", h.Quantile(0.5))
	}
	if h.Count() != 1 {
		t.Fatalf("count %d, want 1", h.Count())
	}
}

func TestBucketIndexBoundsRoundTrip(t *testing.T) {
	// Every representative value must map back into its own bucket, and
	// bucket bounds must tile the axis without gaps.
	for i := 0; i < nBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo < 0 || hi <= lo {
			t.Fatalf("bucket %d: degenerate bounds [%d, %d)", i, lo, hi)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucket %d: lower bound %d maps to bucket %d", i, lo, got)
		}
		if hi-1 >= 0 {
			if got := bucketIndex(hi - 1); got != i {
				t.Fatalf("bucket %d: last value %d maps to bucket %d", i, hi-1, got)
			}
		}
		if i > 0 {
			_, prevHi := bucketBounds(i - 1)
			if prevHi != lo {
				t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", i-1, prevHi, i, lo)
			}
		}
	}
	// The extremes must not panic or escape the array.
	if got := bucketIndex(math.MaxInt64); got >= nBuckets {
		t.Fatalf("MaxInt64 maps to bucket %d, beyond %d", got, nBuckets)
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines; totals must balance exactly. Runs in the -race matrix.
func TestHistogramConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 10_000
	h := NewHistogram("", 1)
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xorshift(seed + 1)
			for i := 0; i < perWriter; i++ {
				h.Record(int64(r.next() % 1_000_000))
			}
		}(uint64(wtr))
	}
	wg.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("count %d, want %d", h.Count(), writers*perWriter)
	}
	counts, total := h.snapshot()
	if total != writers*perWriter {
		t.Fatalf("bucket total %d, want %d", total, writers*perWriter)
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != total {
		t.Fatalf("bucket sum %d != total %d", sum, total)
	}
}
