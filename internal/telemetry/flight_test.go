package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"testing"
)

func TestFlightRecordAndDump(t *testing.T) {
	f := NewFlight(8)
	f.SetSink(io.Discard)
	for i := 0; i < 3; i++ {
		f.Record(slog.LevelInfo, "event", "i", i)
	}
	if f.Len() != 3 || f.Recorded() != 3 {
		t.Fatalf("len=%d recorded=%d", f.Len(), f.Recorded())
	}

	var buf bytes.Buffer
	if n := f.Dump(&buf); n != 3 {
		t.Fatalf("dumped %d lines", n)
	}
	// Every line is valid JSON with msg and the structured attr, in record
	// order.
	sc := bufio.NewScanner(&buf)
	for i := 0; sc.Scan(); i++ {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", i, err, sc.Text())
		}
		if m["msg"] != "event" || m["i"] != float64(i) {
			t.Fatalf("line %d = %v", i, m)
		}
	}
}

func TestFlightRingBound(t *testing.T) {
	f := NewFlight(4)
	f.SetSink(io.Discard)
	for i := 0; i < 10; i++ {
		f.Record(slog.LevelInfo, fmt.Sprintf("e%d", i))
	}
	if f.Len() != 4 || f.Recorded() != 10 {
		t.Fatalf("len=%d recorded=%d, want 4/10", f.Len(), f.Recorded())
	}
	var buf bytes.Buffer
	f.Dump(&buf)
	out := buf.String()
	// Only the newest 4 survive, oldest-first.
	for _, gone := range []string{"e0", "e5"} {
		if strings.Contains(out, `"`+gone+`"`) {
			t.Fatalf("overwritten event %s still present:\n%s", gone, out)
		}
	}
	for _, kept := range []string{"e6", "e7", "e8", "e9"} {
		if !strings.Contains(out, `"msg":"`+kept+`"`) {
			t.Fatalf("missing %s:\n%s", kept, out)
		}
	}
	if strings.Index(out, "e6") > strings.Index(out, "e9") {
		t.Fatalf("dump not oldest-first:\n%s", out)
	}
}

func TestFlightTriggerDumpsAndRateLimits(t *testing.T) {
	f := NewFlight(8)
	var sink bytes.Buffer
	f.SetSink(&sink)
	f.Record(slog.LevelWarn, "anomaly", "step", 7)

	f.Trigger("fault-rollback")
	if f.Triggers() != 1 {
		t.Fatalf("triggers = %d", f.Triggers())
	}
	out := sink.String()
	if !strings.Contains(out, "flight-recorder dump") || !strings.Contains(out, `"reason":"fault-rollback"`) {
		t.Fatalf("dump header missing:\n%s", out)
	}
	if !strings.Contains(out, `"msg":"anomaly"`) {
		t.Fatalf("ring contents missing:\n%s", out)
	}

	// A second trigger inside the rate-limit window is swallowed.
	sink.Reset()
	f.Trigger("storm")
	if f.Triggers() != 1 || sink.Len() != 0 {
		t.Fatalf("rate limit failed: triggers=%d sink=%q", f.Triggers(), sink.String())
	}
}

func TestFlightLogger(t *testing.T) {
	f := NewFlight(8)
	f.SetSink(io.Discard)
	lg := f.Logger().With("rank", 3).WithGroup("ckpt").With("step", 12)
	lg.Info("rolled back")
	var buf bytes.Buffer
	f.Dump(&buf)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("%v: %s", err, buf.String())
	}
	if m["msg"] != "rolled back" {
		t.Fatalf("line = %v", m)
	}
	// With-attrs survive the handler chain (grouping layout is slog's
	// concern; presence is ours).
	if !strings.Contains(buf.String(), `"rank":3`) || !strings.Contains(buf.String(), `"step":12`) {
		t.Fatalf("attrs lost: %s", buf.String())
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	f.Record(slog.LevelError, "ignored")
	f.Trigger("ignored")
	f.SetSink(io.Discard)
	if f.Len() != 0 || f.Recorded() != 0 || f.Triggers() != 0 {
		t.Fatal("nil flight recorded something")
	}
	if n := f.Dump(io.Discard); n != 0 {
		t.Fatalf("nil flight dumped %d", n)
	}
	lg := f.Logger()
	lg.Info("also ignored") // must not panic
	cancel := f.ArmSIGQUIT()
	cancel()
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := "he said \"hi\\there\"\nand left"
	r.Counter(Label("zipflm_hostile_total", "msg", hostile)).Add(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	want := `zipflm_hostile_total{msg="he said \"hi\\there\"\nand left"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("escaped series missing; exposition:\n%s", text)
	}
	// No raw newline may survive inside any sample line.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.Contains(line, "and left") && !strings.Contains(line, `\n`) {
			t.Fatalf("raw newline leaked into exposition: %q", line)
		}
	}
	// Clean values are returned without copying (no observable change).
	if got := Label("base", "k", "clean_value"); got != `base{k="clean_value"}` {
		t.Fatalf("clean label = %q", got)
	}
}

func TestTelemetrySelfObservability(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(2)
	r.ObserveTracer(tr)
	tr.Instant("t", "a", 0, tr.Start(), 0)
	tr.Instant("t", "b", 0, tr.Start(), 0)
	tr.Instant("t", "dropped", 0, tr.Start(), 0)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"zipflm_trace_events 2\n",
		"zipflm_trace_dropped_events 1\n",
		"zipflm_telemetry_scrapes_total 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// The scrape-duration histogram observes completed scrapes: after the
	// first exposition it has one observation.
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "zipflm_telemetry_scrape_seconds_count 1\n") {
		t.Errorf("scrape histogram not observing:\n%s", buf.String())
	}
}
