package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Span("cat", "name", 0, time.Now(), time.Millisecond, 0, 0)
	tr.Instant("cat", "mark", 0, time.Now(), 0)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must ignore everything")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
}

func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer(0)
	t0 := tr.Start()
	tr.Span("train", "compute", 1, t0.Add(time.Millisecond), 2*time.Millisecond, 1.5, 0.25)
	tr.Span("train", "sync", 1, t0.Add(3*time.Millisecond), time.Millisecond, 1.75, 0.125)
	tr.Instant("train", "rollback", 1, t0.Add(4*time.Millisecond), 2.0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			S    string  `json:"s"`
			Args struct {
				VClockS    float64 `json:"vclock_s"`
				VClockDurS float64 `json:"vclock_dur_s"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(out.TraceEvents))
	}
	e := out.TraceEvents[0]
	if e.Name != "compute" || e.Cat != "train" || e.Ph != "X" || e.Tid != 1 {
		t.Errorf("span fields wrong: %+v", e)
	}
	if e.TS != 1000 || e.Dur != 2000 { // microseconds
		t.Errorf("span timing: ts=%g dur=%g, want 1000/2000 us", e.TS, e.Dur)
	}
	if e.Args.VClockS != 1.5 || e.Args.VClockDurS != 0.25 {
		t.Errorf("virtual-clock args: %+v", e.Args)
	}
	inst := out.TraceEvents[2]
	if inst.Ph != "i" || inst.S != "t" || inst.Args.VClockS != 2.0 {
		t.Errorf("instant fields wrong: %+v", inst)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
}

func TestTracerBoundedBuffer(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant("c", "e", 0, tr.Start(), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("buffered %d events, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d events, want 6", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if d, ok := out["zipflmDroppedEvents"].(float64); !ok || d != 6 {
		t.Fatalf("drop count missing from export: %v", out["zipflmDroppedEvents"])
	}
}
