package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..subCount-1 land in exact unit-width
// buckets; larger values land in log-scale buckets with subCount
// sub-buckets per power of two, so every bucket's width is at most
// 1/subCount of its lower bound. Quantile estimates (bucket midpoint) are
// therefore exact below subCount and within ±1/(2·subCount) ≈ 1.6%
// relative error above it — tight enough that p50/p99/p999 read as exact
// at any plotting resolution, from fixed storage, with O(1) lock-free
// recording.
const (
	subBits  = 5
	subCount = 1 << subBits // 32 sub-buckets per octave
	// maxShift covers the full non-negative int64 range: the top bucket
	// group holds values with 63 significant bits (Len64 = 63, so the
	// largest shift bucketIndex produces is 63 - subBits - 1).
	maxShift = 63 - subBits - 1
	nBuckets = subCount * (maxShift + 2) // exact group + shifts 0..maxShift
)

// Histogram is a fixed-bucket log-scale histogram over non-negative int64
// observations (negative values clamp to 0). Recording is lock-free and
// allocation-free: one atomic add each to count, sum, and the bucket.
// A nil Histogram ignores observations.
//
// Unit and Factor describe how raw observations scale to the exported
// unit: duration histograms store nanoseconds with Unit "s", Factor 1e-9.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [nBuckets]atomic.Int64

	unit   string
	factor float64
}

// NewHistogram returns a histogram whose exported values are raw
// observations multiplied by factor, labelled with unit. factor <= 0 means
// 1 (raw values exported as-is).
func NewHistogram(unit string, factor float64) *Histogram {
	if factor <= 0 {
		factor = 1
	}
	return &Histogram{unit: unit, factor: factor}
}

// Unit returns the exported unit label ("" for dimensionless).
func (h *Histogram) Unit() string {
	if h == nil {
		return ""
	}
	return h.unit
}

// Factor returns the raw-to-exported multiplier.
func (h *Histogram) Factor() float64 {
	if h == nil {
		return 1
	}
	return h.factor
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	shift := bits.Len64(u) - subBits - 1
	mant := u >> uint(shift) // in [subCount, 2·subCount)
	return (shift+1)*subCount + int(mant) - subCount
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < subCount {
		return int64(i), int64(i) + 1
	}
	shift := i/subCount - 1
	mant := int64(subCount + i%subCount)
	lo = mant << uint(shift)
	hi = lo + (1 << uint(shift))
	if hi < lo { // the top bucket's upper bound would be 2^63
		hi = math.MaxInt64
	}
	return lo, hi
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Observe records a time.Duration (for histograms created via
// Registry.Duration).
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the raw observation sum.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the raw mean observation (0 before any observation).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// snapshot copies the bucket counts and their total. Loads are not
// mutually atomic; under concurrent writers the snapshot is a consistent
// recent view, which is all a quantile needs.
func (h *Histogram) snapshot() (counts [nBuckets]int64, total int64) {
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return
}

// Quantile returns the raw-valued q-quantile (0 ≤ q ≤ 1) by nearest rank
// over the bucket counts: exact for values below subCount, within
// ±1/(2·subCount) relative error above. Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(i)
			if i < subCount {
				return lo
			}
			return lo + (hi-lo)/2
		}
	}
	return 0 // unreachable: total > 0
}

// CountAbove returns how many observations landed in buckets whose lower
// bound is at least v — the "bad event" count an SLO latency objective
// burns budget with. The answer is exact when v is a bucket boundary;
// otherwise observations sharing v's bucket are excluded, so the count is
// within one bucket (≤1/subCount ≈ 3% relative) of the true value.
func (h *Histogram) CountAbove(v int64) int64 {
	if h == nil {
		return 0
	}
	first := bucketIndex(v)
	if lo, _ := bucketBounds(first); lo < v {
		first++ // v splits its bucket: count only buckets entirely ≥ v
	}
	var n int64
	for i := first; i < nBuckets; i++ {
		n += h.buckets[i].Load()
	}
	return n
}

// P50, P99 and P999 are the latency quantiles every dashboard wants.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// HistCum is a cumulative point-in-time snapshot of a histogram: total
// count, raw sum, and the nonzero buckets in sparse form (BucketIdx[i]
// holds BucketN[i] observations), ordered by bucket index. Two snapshots
// of the same histogram subtract into a HistDelta — the observations
// recorded between them — which is what gives a fixed-storage histogram a
// time axis: windowed quantiles come from the delta, not the lifetime
// distribution.
type HistCum struct {
	Count     int64   `json:"count"`
	Sum       int64   `json:"sum"`
	BucketIdx []int32 `json:"bucket_idx,omitempty"`
	BucketN   []int64 `json:"bucket_n,omitempty"`
}

// CumSnapshot captures the histogram's cumulative state. Like snapshot,
// the loads are not mutually atomic under concurrent writers; because
// buckets only ever grow, any snapshot taken strictly after another is
// per-bucket greater-or-equal, so deltas between ordered snapshots are
// always non-negative.
func (h *Histogram) CumSnapshot() HistCum {
	if h == nil {
		return HistCum{}
	}
	var c HistCum
	c.Count = h.count.Load()
	c.Sum = h.sum.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			c.BucketIdx = append(c.BucketIdx, int32(i))
			c.BucketN = append(c.BucketN, n)
		}
	}
	return c
}

// HistDelta is the distribution of observations recorded between two
// cumulative snapshots: a windowed view of a histogram.
type HistDelta struct {
	// Count and Sum are the observation count and raw-value sum in the
	// window.
	Count int64
	Sum   int64
	idx   []int32
	n     []int64
}

// Sub returns the delta later − earlier. Snapshots must come from the same
// histogram with later taken after earlier; any per-bucket decrease (a
// reset, or snapshots from different instruments) clamps to zero rather
// than producing negative counts.
func (later HistCum) Sub(earlier HistCum) HistDelta {
	d := HistDelta{Count: later.Count - earlier.Count, Sum: later.Sum - earlier.Sum}
	if d.Count < 0 {
		d.Count = 0
	}
	// Merge two index-sorted sparse bucket lists.
	j := 0
	for i, idx := range later.BucketIdx {
		for j < len(earlier.BucketIdx) && earlier.BucketIdx[j] < idx {
			j++
		}
		n := later.BucketN[i]
		if j < len(earlier.BucketIdx) && earlier.BucketIdx[j] == idx {
			n -= earlier.BucketN[j]
		}
		if n > 0 {
			d.idx = append(d.idx, idx)
			d.n = append(d.n, n)
		}
	}
	return d
}

// Mean returns the raw mean observation in the window (0 when empty).
func (d HistDelta) Mean() float64 {
	if d.Count <= 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Quantile returns the raw-valued q-quantile of the windowed observations,
// by nearest rank over the bucket deltas — the same estimate (and error
// bound) Histogram.Quantile gives the lifetime distribution. Returns 0
// when the window saw nothing.
func (d HistDelta) Quantile(q float64) int64 {
	var total int64
	for _, n := range d.n {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range d.n {
		seen += n
		if seen >= rank {
			lo, hi := bucketBounds(int(d.idx[i]))
			if int(d.idx[i]) < subCount {
				return lo
			}
			return lo + (hi-lo)/2
		}
	}
	return 0 // unreachable: total > 0
}

// P50 and P99 are the windowed quantiles the dashboard trends.
func (d HistDelta) P50() int64 { return d.Quantile(0.50) }
func (d HistDelta) P99() int64 { return d.Quantile(0.99) }
