package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// This file is the continuous-profiling hook: a Profiler captures CPU and
// heap pprof profiles on a schedule and at explicit phase boundaries
// (experiments.Options.Profile marks each experiment as a phase), writing
// timestamped .pprof files into one directory with a JSON index manifest
// so a run's profiles are navigable without guessing at filenames.
// Profiling is observational: it changes nothing about what the code
// computes, only samples where the time and memory went — the bit-identity
// suites run with it enabled.

// ProfilerConfig tunes a Profiler.
type ProfilerConfig struct {
	// Dir receives the profile files and the manifest (created if needed).
	Dir string
	// Interval is the background capture period for Start (0 disables the
	// schedule; explicit captures still work).
	Interval time.Duration
	// CPUDuration is how long each scheduled CPU capture samples
	// (DefaultCPUProfileDuration when 0). Explicit phase captures span
	// their whole phase instead.
	CPUDuration time.Duration
	// Heap, when true, adds a heap profile to every scheduled capture and
	// phase boundary.
	Heap bool
}

// DefaultCPUProfileDuration bounds a scheduled CPU capture.
const DefaultCPUProfileDuration = 2 * time.Second

// ManifestName is the index file written into the profile directory.
const ManifestName = "profiles.json"

// ProfileEntry is one captured profile in the manifest.
type ProfileEntry struct {
	// File is the profile's filename within the directory.
	File string `json:"file"`
	// Kind is "cpu" or "heap".
	Kind string `json:"kind"`
	// Label names what was profiled: "scheduled", a phase name, or a
	// caller-chosen tag.
	Label string `json:"label"`
	// Start is the capture start; DurationS how long a CPU capture
	// sampled (0 for heap snapshots).
	Start     time.Time `json:"start"`
	DurationS float64   `json:"duration_s"`
}

// Profiler captures pprof profiles into a directory. Create with
// NewProfiler; all methods are safe for concurrent use and nil-receiver
// safe (the profiling-off switch). Only one CPU profile can run per
// process — overlapping CPU captures (including an outside
// pprof.StartCPUProfile) are skipped, never fatal.
type Profiler struct {
	cfg ProfilerConfig

	mu      sync.Mutex
	seq     int
	entries []ProfileEntry
	cpuBusy bool

	startOnce sync.Once
	stopOnce  sync.Once
	scheduled bool
	done      chan struct{}
	finished  chan struct{}
}

// NewProfiler returns a profiler writing into cfg.Dir, creating the
// directory if needed.
func NewProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("telemetry: profiler needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = DefaultCPUProfileDuration
	}
	return &Profiler{cfg: cfg, done: make(chan struct{}), finished: make(chan struct{})}, nil
}

// filename builds a collision-free profile name: kind, label (sanitized),
// unix-nano timestamp, and a per-profiler sequence number.
func (p *Profiler) filename(kind, label string, at time.Time) string {
	clean := make([]byte, 0, len(label))
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	p.seq++
	return fmt.Sprintf("%s_%s_%d_%04d.pprof", kind, clean, at.UnixNano(), p.seq)
}

// record appends a manifest entry and rewrites the manifest file, so the
// index is valid after every capture (a crashed run keeps its profiles
// indexed).
func (p *Profiler) record(e ProfileEntry) {
	p.entries = append(p.entries, e)
	p.writeManifestLocked()
}

func (p *Profiler) writeManifestLocked() {
	entries := p.entries
	if entries == nil {
		entries = []ProfileEntry{} // a capture-free run still leaves a valid (empty) index
	}
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	tmp := filepath.Join(p.cfg.Dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return
	}
	os.Rename(tmp, filepath.Join(p.cfg.Dir, ManifestName))
}

// CaptureHeap writes a heap profile (after a GC, so live objects are
// accurate) and returns its path.
func (p *Profiler) CaptureHeap(label string) (string, error) {
	if p == nil {
		return "", nil
	}
	now := time.Now()
	p.mu.Lock()
	name := p.filename("heap", label, now)
	p.mu.Unlock()
	path := filepath.Join(p.cfg.Dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	runtime.GC()
	err = pprof.Lookup("heap").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", err
	}
	p.mu.Lock()
	p.record(ProfileEntry{File: name, Kind: "heap", Label: label, Start: now})
	p.mu.Unlock()
	return path, nil
}

// StartCPU begins a CPU capture and returns a stop function that ends it
// and indexes the file. When another CPU profile is already running (this
// profiler's or the process's), the capture is skipped and stop is a
// no-op — scheduled and phase captures may overlap freely.
func (p *Profiler) StartCPU(label string) (stop func()) {
	if p == nil {
		return func() {}
	}
	now := time.Now()
	p.mu.Lock()
	if p.cpuBusy {
		p.mu.Unlock()
		return func() {}
	}
	p.cpuBusy = true
	name := p.filename("cpu", label, now)
	p.mu.Unlock()

	path := filepath.Join(p.cfg.Dir, name)
	f, err := os.Create(path)
	if err == nil {
		if serr := pprof.StartCPUProfile(f); serr != nil {
			// Someone outside this profiler is profiling; back off.
			f.Close()
			os.Remove(path)
			err = serr
		}
	}
	if err != nil {
		p.mu.Lock()
		p.cpuBusy = false
		p.mu.Unlock()
		return func() {}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			pprof.StopCPUProfile()
			f.Close()
			p.mu.Lock()
			p.cpuBusy = false
			p.record(ProfileEntry{File: name, Kind: "cpu", Label: label,
				Start: now, DurationS: time.Since(now).Seconds()})
			p.mu.Unlock()
		})
	}
}

// StartPhase marks a phase boundary (an experiment, an epoch): a CPU
// capture spans the phase, and with Heap configured a heap profile lands
// at the phase's end. The returned function closes the phase.
func (p *Profiler) StartPhase(label string) (stop func()) {
	if p == nil {
		return func() {}
	}
	stopCPU := p.StartCPU(label)
	return func() {
		stopCPU()
		if p.cfg.Heap {
			p.CaptureHeap(label)
		}
	}
}

// Start launches the background schedule: every Interval, a CPUDuration
// CPU capture plus (with Heap) a heap profile, labelled "scheduled".
// Returns immediately; Stop ends the schedule. Without an Interval this
// is a no-op.
func (p *Profiler) Start() {
	if p == nil || p.cfg.Interval <= 0 {
		return
	}
	p.startOnce.Do(func() {
		p.mu.Lock()
		p.scheduled = true
		p.mu.Unlock()
		go func() {
			defer close(p.finished)
			t := time.NewTicker(p.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-p.done:
					return
				case <-t.C:
					stop := p.StartCPU("scheduled")
					select {
					case <-p.done:
						stop()
						return
					case <-time.After(p.cfg.CPUDuration):
					}
					stop()
					if p.cfg.Heap {
						p.CaptureHeap("scheduled")
					}
				}
			}
		}()
	})
}

// Stop ends the background schedule (if any) and rewrites the manifest a
// final time. Safe to call without Start and more than once.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.done) })
	p.mu.Lock()
	wait := p.scheduled
	p.mu.Unlock()
	if wait {
		<-p.finished
	}
	p.mu.Lock()
	p.writeManifestLocked()
	p.mu.Unlock()
}

// Manifest returns the indexed captures so far, in capture order.
func (p *Profiler) Manifest() []ProfileEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]ProfileEntry(nil), p.entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Dir returns the profile directory.
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.cfg.Dir
}
