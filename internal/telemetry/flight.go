package telemetry

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Flight is a structured flight recorder: a bounded lock-free ring of
// pre-rendered log/slog JSON lines that costs nothing until an anomaly
// asks for it. Subsystems log structured events into the ring as they run
// (fault rollbacks, sheds, reloads); the ring keeps only the last N, and a
// trigger event — a fault, an overload storm, SIGQUIT — dumps the whole
// ring to the sink, so every anomaly ships the black-box context that
// preceded it without the cost or volume of always-on logging.
//
// Recording is wait-free for writers: one atomic counter claims a slot,
// one atomic pointer store publishes the rendered line. Readers (Dump)
// snapshot the slots and order by sequence number. A nil *Flight ignores
// everything — the recorder-off switch, same contract as the rest of the
// package.
type Flight struct {
	slots []atomic.Pointer[flightEntry]
	next  atomic.Uint64

	sinkMu sync.Mutex
	sink   io.Writer

	lastTrigger atomic.Int64 // unix nanos of the last accepted trigger
	minGap      int64        // nanos between accepted triggers
	triggers    atomic.Int64 // accepted trigger count
	recorded    atomic.Int64 // total events ever recorded
}

// flightEntry is one recorded line plus its claim sequence.
type flightEntry struct {
	seq  uint64
	line []byte
}

// DefaultFlightEvents is the ring capacity when NewFlight is given none.
const DefaultFlightEvents = 256

// NewFlight returns a recorder holding the last capacity events
// (DefaultFlightEvents when <= 0), dumping to stderr until SetSink.
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &Flight{
		slots:  make([]atomic.Pointer[flightEntry], capacity),
		sink:   os.Stderr,
		minGap: int64(time.Second),
	}
}

// SetSink redirects trigger dumps (default os.Stderr). nil disables dumps
// while recording continues.
func (f *Flight) SetSink(w io.Writer) {
	if f == nil {
		return
	}
	f.sinkMu.Lock()
	f.sink = w
	f.sinkMu.Unlock()
}

// Record logs one structured event into the ring: a message plus slog
// key/value pairs, rendered to a JSON line immediately so the ring holds
// finished bytes. Intended for anomaly-path events (rollback, shed,
// reload), not per-step logging.
func (f *Flight) Record(level slog.Level, msg string, args ...any) {
	if f == nil {
		return
	}
	r := slog.NewRecord(time.Now(), level, msg, 0)
	r.Add(args...)
	f.handle(r)
}

// Logger returns a *slog.Logger writing into the ring, for call sites that
// prefer the standard API. On a nil Flight the logger discards everything.
func (f *Flight) Logger() *slog.Logger {
	return slog.New(flightHandler{f: f})
}

// handle renders the record and publishes it into the ring.
func (f *Flight) handle(r slog.Record) {
	var buf bytes.Buffer
	if err := slog.NewJSONHandler(&buf, nil).Handle(context.Background(), r); err != nil {
		return
	}
	f.publish(buf.Bytes())
}

// publish claims the next slot and stores the line.
func (f *Flight) publish(line []byte) {
	e := &flightEntry{line: append([]byte(nil), line...)}
	e.seq = f.next.Add(1) - 1
	f.recorded.Add(1)
	f.slots[e.seq%uint64(len(f.slots))].Store(e)
}

// Len returns how many events the ring currently holds.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	n := 0
	for i := range f.slots {
		if f.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Recorded returns the total number of events ever recorded (including
// those the ring has since overwritten).
func (f *Flight) Recorded() int64 {
	if f == nil {
		return 0
	}
	return f.recorded.Load()
}

// Triggers returns how many trigger dumps were accepted.
func (f *Flight) Triggers() int64 {
	if f == nil {
		return 0
	}
	return f.triggers.Load()
}

// Dump writes the ring's events to w in record order (oldest first) and
// returns how many lines it wrote. The ring is not cleared: a later
// trigger re-dumps the same context plus whatever followed.
func (f *Flight) Dump(w io.Writer) int {
	if f == nil || w == nil {
		return 0
	}
	entries := make([]*flightEntry, 0, len(f.slots))
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	n := 0
	for _, e := range entries {
		if _, err := w.Write(e.line); err != nil {
			break
		}
		n++
	}
	return n
}

// Trigger dumps the ring to the sink, prefixed with a one-line header
// naming the reason. Triggers are rate-limited (at most one per second)
// so a shed storm that triggers per-request cannot flood the sink; the
// ring itself keeps recording regardless.
func (f *Flight) Trigger(reason string) {
	if f == nil {
		return
	}
	now := time.Now().UnixNano()
	for {
		last := f.lastTrigger.Load()
		if now-last < f.minGap {
			return
		}
		if f.lastTrigger.CompareAndSwap(last, now) {
			break
		}
	}
	f.triggers.Add(1)
	f.sinkMu.Lock()
	defer f.sinkMu.Unlock()
	if f.sink == nil {
		return
	}
	var hdr bytes.Buffer
	r := slog.NewRecord(time.Now(), slog.LevelWarn, "flight-recorder dump", 0)
	r.Add("reason", reason, "events", f.Len(), "recorded", f.Recorded())
	if err := slog.NewJSONHandler(&hdr, nil).Handle(context.Background(), r); err == nil {
		f.sink.Write(hdr.Bytes())
	}
	f.Dump(f.sink)
}

// ArmSIGQUIT dumps the ring when the process receives SIGQUIT (the
// conventional "tell me what you were doing" signal), returning a cancel
// function that detaches the handler. The signal is not consumed
// exclusively: Go's default SIGQUIT stack dump still fires for unhandled
// cases only if no Notify is registered, so daemons arming this keep
// running after the dump.
func (f *Flight) ArmSIGQUIT() (cancel func()) {
	if f == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				f.Trigger("SIGQUIT")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// flightHandler adapts a Flight to slog.Handler. Attrs and groups from
// With… wrappers are carried into each record.
type flightHandler struct {
	f     *Flight
	attrs []slog.Attr
	group string
}

// Enabled reports whether the handler records at level (always, when the
// recorder exists — filtering belongs to the caller).
func (h flightHandler) Enabled(context.Context, slog.Level) bool { return h.f != nil }

// Handle renders the record into the ring.
func (h flightHandler) Handle(_ context.Context, r slog.Record) error {
	if h.f == nil {
		return nil
	}
	if len(h.attrs) > 0 {
		attrs := h.attrs
		if h.group != "" {
			attrs = []slog.Attr{slog.Attr{Key: h.group, Value: slog.GroupValue(h.attrs...)}}
		}
		r = r.Clone()
		r.AddAttrs(attrs...)
	}
	h.f.handle(r)
	return nil
}

// WithAttrs returns a handler carrying additional attrs.
func (h flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return h
}

// WithGroup returns a handler nesting subsequent attrs under name.
func (h flightHandler) WithGroup(name string) slog.Handler {
	h.group = name
	return h
}
