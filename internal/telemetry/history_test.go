package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestHistCumDeltaMatchesFreshHistogram is the delta-snapshot contract:
// subtracting two cumulative snapshots yields exactly the distribution of
// the observations recorded between them — same count, same sum, same
// quantile estimates as a fresh histogram fed only those observations.
func TestHistCumDeltaMatchesFreshHistogram(t *testing.T) {
	h := NewHistogram("", 0)
	for _, v := range []int64{1, 5, 17, 900, 3} {
		h.Record(v)
	}
	before := h.CumSnapshot()

	window := []int64{2, 2, 64, 1000, 1000000, 7, 31, 31, 500}
	fresh := NewHistogram("", 0)
	var sum int64
	for _, v := range window {
		h.Record(v)
		fresh.Record(v)
		sum += v
	}
	d := h.CumSnapshot().Sub(before)

	if d.Count != int64(len(window)) {
		t.Fatalf("delta count = %d, want %d", d.Count, len(window))
	}
	if d.Sum != sum {
		t.Fatalf("delta sum = %d, want %d", d.Sum, sum)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := d.Quantile(q), fresh.Quantile(q); got != want {
			t.Errorf("delta quantile(%g) = %d, want %d (fresh histogram)", q, got, want)
		}
	}
	if d.Mean() != fresh.Mean() {
		t.Errorf("delta mean = %g, want %g", d.Mean(), fresh.Mean())
	}
}

func TestHistDeltaEmptyWindow(t *testing.T) {
	h := NewHistogram("", 0)
	h.Record(42)
	snap := h.CumSnapshot()
	d := snap.Sub(snap)
	if d.Count != 0 || d.Sum != 0 || d.Quantile(0.5) != 0 || d.Mean() != 0 {
		t.Fatalf("self-delta not empty: %+v", d)
	}
	// A reversed subtraction (caller error) clamps rather than going
	// negative.
	h.Record(7)
	if d := snap.Sub(h.CumSnapshot()); d.Count != 0 {
		t.Fatalf("reversed delta count = %d, want 0", d.Count)
	}
	if got := (HistCum{}).Sub(HistCum{}); got.Count != 0 {
		t.Fatalf("zero-value delta count = %d", got.Count)
	}
}

// TestHistoryRingWraparound fills a small ring far past capacity and
// checks the ring retains exactly the newest samples, oldest first, with
// sequence numbers that expose how much history fell off.
func TestHistoryRingWraparound(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zipflm_test_total")
	h := NewHistory(reg, HistoryConfig{Capacity: 4})

	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		c.Add(1)
		h.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	if h.Len() != 4 || h.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", h.Len(), h.Cap())
	}
	samples := h.Samples()
	for i, s := range samples {
		wantSeq := uint64(6 + i)
		if s.Seq != wantSeq {
			t.Errorf("sample %d seq = %d, want %d", i, s.Seq, wantSeq)
		}
		if got, want := s.Counters["zipflm_test_total"], int64(7+i); got != want {
			t.Errorf("sample %d counter = %d, want %d", i, got, want)
		}
	}
}

func TestHistoryRateAndWindow(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zipflm_tokens_total")
	lat := reg.Duration("zipflm_latency_seconds")
	reg.Gauge("zipflm_depth").SetInt(3)
	h := NewHistory(reg, HistoryConfig{Capacity: 16})

	t0 := time.Unix(2000, 0)
	lat.Record(int64(100 * time.Millisecond)) // before the window
	h.Sample(t0)

	c.Add(100)
	lat.Record(int64(10 * time.Millisecond))
	lat.Record(int64(12 * time.Millisecond))
	h.Sample(t0.Add(2 * time.Second))

	rate, ok := h.Rate("zipflm_tokens_total", 10*time.Second)
	if !ok || rate != 50 {
		t.Fatalf("Rate = %g ok=%v, want 50 true", rate, ok)
	}
	if _, ok := h.Rate("zipflm_missing_total", 10*time.Second); ok {
		t.Fatal("Rate of an absent counter reported ok")
	}

	d, ok := h.Window("zipflm_latency_seconds", 10*time.Second)
	if !ok {
		t.Fatal("Window not ok")
	}
	if d.Count != 2 {
		t.Fatalf("windowed count = %d, want 2 (the 100ms pre-window record must be excluded)", d.Count)
	}
	p99 := time.Duration(d.P99())
	if p99 < 10*time.Millisecond || p99 > 13*time.Millisecond {
		t.Fatalf("windowed p99 = %v, want ≈12ms (not the lifetime 100ms)", p99)
	}
	if g := h.Samples()[0].Gauges["zipflm_depth"]; g != 3 {
		t.Fatalf("gauge in sample = %g, want 3", g)
	}

	// A window narrower than the sample spacing has no base sample.
	if _, ok := h.Rate("zipflm_tokens_total", time.Second); ok {
		t.Fatal("1s window over 2s-spaced samples reported ok")
	}
}

func TestHistoryVirtualClock(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zipflm_steps_total")
	var vnow float64
	h := NewHistory(reg, HistoryConfig{Capacity: 8, VClock: func() float64 { return vnow }})

	t0 := time.Unix(3000, 0)
	h.Sample(t0)
	vnow = 4.0
	c.Add(8)
	h.Sample(t0.Add(time.Second))

	if got := h.Samples()[1].VClock; got != 4.0 {
		t.Fatalf("vclock stamp = %g, want 4", got)
	}
	vr, ok := h.VRate("zipflm_steps_total", time.Minute)
	if !ok || vr != 2 {
		t.Fatalf("VRate = %g ok=%v, want 2 true (8 steps / 4 virtual seconds)", vr, ok)
	}
	wr, ok := h.Rate("zipflm_steps_total", time.Minute)
	if !ok || wr != 8 {
		t.Fatalf("Rate = %g ok=%v, want 8 true (8 steps / 1 wall second)", wr, ok)
	}
}

// TestHistoryConcurrentRecording drives counters and histograms from many
// goroutines while a sampler wraps the ring, then checks every invariant
// the ring promises: per-sample monotone counters, non-negative histogram
// deltas, strictly increasing sequence numbers. Runs under -race in CI.
func TestHistoryConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	h := NewHistory(reg, HistoryConfig{Capacity: 8})
	c := reg.Counter("zipflm_ops_total")
	lat := reg.Duration("zipflm_op_seconds")

	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				lat.Record(int64(w*100 + i%50))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		h.Sample(time.Now())
	}
	close(stop)
	wg.Wait()
	h.Sample(time.Now())

	samples := h.Samples()
	if len(samples) != 8 {
		t.Fatalf("ring holds %d samples, want 8", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		if cur.Seq != prev.Seq+1 {
			t.Fatalf("sample %d seq %d follows %d", i, cur.Seq, prev.Seq)
		}
		if cur.Counters["zipflm_ops_total"] < prev.Counters["zipflm_ops_total"] {
			t.Fatalf("counter went backwards: %d after %d",
				cur.Counters["zipflm_ops_total"], prev.Counters["zipflm_ops_total"])
		}
		d := cur.Hists["zipflm_op_seconds"].Sub(prev.Hists["zipflm_op_seconds"])
		if d.Count < 0 || d.Sum < 0 {
			t.Fatalf("negative histogram delta between adjacent samples: %+v", d)
		}
		if d.Quantile(0.5) < 0 {
			t.Fatalf("negative windowed quantile")
		}
	}
}

func TestHistoryStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zipflm_x_total").Add(5)
	h := NewHistory(reg, HistoryConfig{Capacity: 32, Interval: time.Millisecond})
	stop := h.Start()
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	n := h.Len()
	if n == 0 {
		t.Fatal("background sampler recorded nothing")
	}
	time.Sleep(5 * time.Millisecond)
	if h.Len() != n {
		t.Fatal("sampler still running after stop")
	}
}

func TestHistoryJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zipflm_a_total").Add(7)
	reg.Gauge("zipflm_b").Set(1.5)
	reg.Duration("zipflm_c_seconds").Record(1234)
	h := NewHistory(reg, HistoryConfig{Capacity: 4, VClock: func() float64 { return 9 }})
	h.Sample(time.Unix(5000, 0).UTC())

	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Capacity  int             `json:"capacity"`
		IntervalS float64         `json:"interval_s"`
		Samples   []HistorySample `json:"samples"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("export not decodable: %v", err)
	}
	if dump.Capacity != 4 || len(dump.Samples) != 1 {
		t.Fatalf("dump shape: capacity %d, %d samples", dump.Capacity, len(dump.Samples))
	}
	s := dump.Samples[0]
	if s.Counters["zipflm_a_total"] != 7 || s.Gauges["zipflm_b"] != 1.5 || s.VClock != 9 {
		t.Fatalf("sample round-trip mismatch: %+v", s)
	}
	if s.Hists["zipflm_c_seconds"].Count != 1 {
		t.Fatalf("histogram snapshot missing: %+v", s.Hists)
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *History
	h.Sample(time.Now())
	h.Start()()
	if h.Len() != 0 || h.Cap() != 0 || h.Samples() != nil {
		t.Fatal("nil History not inert")
	}
	if _, ok := h.Rate("x", time.Second); ok {
		t.Fatal("nil Rate ok")
	}
	if _, ok := h.VRate("x", time.Second); ok {
		t.Fatal("nil VRate ok")
	}
	if _, ok := h.Window("x", time.Second); ok {
		t.Fatal("nil Window ok")
	}
	if err := h.WriteJSON(nil); err != nil {
		t.Fatal(err)
	}
	if NewHistory(nil, HistoryConfig{}) != nil {
		t.Fatal("NewHistory(nil) must be nil")
	}
}
