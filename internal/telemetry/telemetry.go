// Package telemetry is the unified observability layer: a metrics registry
// of atomic counters, gauges and log-scale histograms, two exporters
// (Prometheus text exposition and a JSON snapshot), and a span tracer that
// stamps events with both wall time and the simulator's virtual clock
// (trace.go), exporting Chrome trace_event JSON.
//
// The design contract mirrors the repository's exact-bits discipline:
//
//   - Observation never perturbs computation. Instruments only ever read
//     or count; no code path consults a metric to make a decision, so
//     every bit-identity suite holds with telemetry on or off.
//
//   - Telemetry off costs nothing measurable. Every record method is
//     nil-receiver safe, and a nil *Registry hands out nil instruments,
//     so an uninstrumented subsystem pays one predictable branch per
//     call site — the same gating pattern collective.CostModel uses.
//
//   - The hot path never allocates. Counter.Add, Gauge.Set and
//     Histogram.Record are a handful of atomic operations on fixed
//     storage (testing.AllocsPerRun guards them); registry lookups happen
//     once at wiring time, never per record.
//
// On top of the point-in-time instruments sits the performance
// observatory: History (history.go) samples the registry into a bounded
// ring on both the wall and virtual clocks, storing histograms as sparse
// cumulative snapshots so any two samples subtract into an exact windowed
// distribution; Profiler (profiler.go) captures CPU/heap pprof files on a
// schedule and at experiment-phase boundaries under an
// atomically-rewritten manifest; and PublishBuildInfo (buildinfo.go)
// exposes the binary's provenance as a zipflm_build_info gauge. All of it
// obeys the same contract — sampling and profiling only read, so the
// bit-identity suites hold with the whole observatory running.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores updates (telemetry off).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically-set float64 value (queue depth, batch occupancy,
// goodput). The zero value is ready; a nil Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(n int64) { g.Set(float64(n)) }

// Value returns the current value (0 on a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry owns a process's instruments by name. Instruments are created
// on first request and shared thereafter; names follow Prometheus
// conventions and may carry a label set in braces
// (`zipflm_x_total{wire="fp16"}`), which the exporters group into one
// metric family per base name. A nil *Registry hands out nil instruments,
// which record nothing — the telemetry-off switch.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given unit
// and export factor if needed (see NewHistogram). An existing histogram's
// unit/factor are not altered.
func (r *Registry) Histogram(name, unit string, factor float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(unit, factor)
		r.hists[name] = h
	}
	return h
}

// Duration returns the named histogram configured for time.Duration
// observations: nanosecond storage exported in seconds.
func (r *Registry) Duration(name string) *Histogram {
	return r.Histogram(name, "s", 1e-9)
}

// OnCollect registers a callback run before every export, for metrics
// derived from state the registry does not own (cache counters, queue
// length). Callbacks must only read and set instruments.
func (r *Registry) OnCollect(f func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// collect runs the registered collectors and returns name-sorted views of
// each instrument class.
func (r *Registry) collect() (counters, gauges, hists []string) {
	r.mu.Lock()
	cbs := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, f := range cbs {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// Label appends one label pair to a metric name, composing with any labels
// already present: Label(`m{a="1"}`, "b", "2") == `m{a="1",b="2"}`. The
// value is escaped per the Prometheus text-format rules (backslash, double
// quote, newline) at build time, since the label body is stored inside the
// instrument name and never re-parsed by the exporters.
func Label(name, key, value string) string {
	value = escapeLabelValue(value)
	if n := len(name); n > 0 && name[n-1] == '}' {
		return name[:n-1] + `,` + key + `="` + value + `"}`
	}
	return name + `{` + key + `="` + value + `"}`
}

// escapeLabelValue escapes a label value for text exposition: `\` → `\\`,
// `"` → `\"`, newline → `\n`. Values without special characters are
// returned unchanged (no allocation).
func escapeLabelValue(v string) string {
	clean := true
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c == '\n' {
			clean = false
			break
		}
	}
	if clean {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// splitName separates a possibly-labelled metric name into its family and
// the raw label body (without braces, empty when unlabelled).
func splitName(name string) (family, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i+1 : len(name)-1]
		}
	}
	return name, ""
}

// Timer is a convenience for timing a code region into a duration
// histogram: h.Start() … defer/explicit Stop. Nil-safe like everything
// else.
type Timer struct {
	h  *Histogram
	t0 time.Time
}

// Start begins timing into h. On a nil histogram the returned Timer is
// inert (Stop costs one branch, no clock read happens).
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, t0: time.Now()}
}

// Stop records the elapsed time since Start.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Record(int64(time.Since(t.t0)))
}
