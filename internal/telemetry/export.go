package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// cumulative `_bucket{le=…}` series (empty buckets elided, `+Inf` always
// present) plus `_sum` and `_count`. Labelled instruments sharing a family
// emit one TYPE line per family, as the format requires. Registered
// collectors run first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	defer r.observeScrape()()
	counters, gauges, hists := r.collect()

	typed := make(map[string]bool)
	emitType := func(family, kind string) error {
		if typed[family] {
			return nil
		}
		typed[family] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		return err
	}

	for _, name := range counters {
		family, _ := splitName(name)
		if err := emitType(family, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		family, _ := splitName(name)
		if err := emitType(family, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(r.Gauge(name).Value())); err != nil {
			return err
		}
	}
	for _, name := range hists {
		h := r.hists[name]
		family, labels := splitName(name)
		if err := emitType(family, "histogram"); err != nil {
			return err
		}
		counts, total := h.snapshot()
		var cum int64
		for i, c := range counts {
			cum += c
			if c == 0 {
				continue
			}
			_, hi := bucketBounds(i)
			le := formatFloat(float64(hi) * h.factor)
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", family, labelPrefix(labels), le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", family, labelPrefix(labels), total); err != nil {
			return err
		}
		sumName, countName := family+"_sum", family+"_count"
		if labels != "" {
			sumName += "{" + labels + "}"
			countName += "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", sumName, formatFloat(float64(h.Sum())*h.factor)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", countName, total); err != nil {
			return err
		}
	}
	return nil
}

// observeScrape counts an export and times it into the registry's own
// meta-metrics, so scrape cost and cadence are visible in the exposition
// they produce. The count increments before the instrument lists are
// collected (the current scrape includes itself); the duration lands when
// the export finishes, visible from the next scrape on.
func (r *Registry) observeScrape() func() {
	r.Counter("zipflm_telemetry_scrapes_total").Inc()
	h := r.Duration("zipflm_telemetry_scrape_seconds")
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0)) }
}

// labelPrefix renders a raw label body as the prefix of a larger label
// set ("" or `a="1",`).
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// formatFloat renders a float the compact way Prometheus clients expect.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistSnapshot is one histogram in the JSON snapshot.
type HistSnapshot struct {
	Unit  string  `json:"unit,omitempty"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is the exported JSON view of a registry: every counter, gauge
// and histogram by name, histograms reduced to count/sum/mean and the
// standard quantiles, all in exported units.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current values (collectors run first).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	defer r.observeScrape()()
	counters, gauges, hists := r.collect()
	for _, name := range counters {
		snap.Counters[name] = r.Counter(name).Value()
	}
	for _, name := range gauges {
		snap.Gauges[name] = r.Gauge(name).Value()
	}
	for _, name := range hists {
		h := r.hists[name]
		f := h.factor
		snap.Histograms[name] = HistSnapshot{
			Unit:  h.unit,
			Count: h.Count(),
			Sum:   float64(h.Sum()) * f,
			Mean:  h.Mean() * f,
			P50:   float64(h.P50()) * f,
			P99:   float64(h.P99()) * f,
			P999:  float64(h.P999()) * f,
		}
	}
	return snap
}

// WriteJSON writes the Snapshot as indented JSON (map keys sort, so the
// output is deterministic for fixed values).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry from one endpoint with content negotiation:
// Prometheus text format by default, the JSON snapshot when the request
// asks for JSON — either `Accept: application/json` or the ?format=json
// query parameter (the original split-path alias, kept working). An
// explicit ?format always wins over the Accept header.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// wantsJSON decides the exposition format for one request. The Accept
// check is deliberately simple — a scrape client either names
// application/json outright or it gets the text format; relative quality
// factors between the two are not worth parsing here.
func wantsJSON(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "json":
		return true
	case "prometheus", "text":
		return false
	}
	for _, accept := range req.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
			if strings.TrimSpace(mediaType) == "application/json" {
				return true
			}
		}
	}
	return false
}
