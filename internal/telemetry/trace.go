package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one recorded trace event. TS/Dur are wall time relative to the
// tracer's start; VTS/VDur are the virtual-clock position and duration in
// simulated seconds (zero when the producing subsystem runs without a
// cost model). Phase "X" is a complete span, "i" an instant.
type Event struct {
	Name  string
	Cat   string
	Phase byte
	Tid   int
	TS    time.Duration
	Dur   time.Duration
	VTS   float64
	VDur  float64
}

// Tracer records spans and instants from any number of goroutines and
// exports them as Chrome trace_event JSON, viewable in chrome://tracing or
// Perfetto. Storage is bounded: past MaxEvents the tracer drops new events
// and counts them, so a long run cannot grow without bound. A nil Tracer
// ignores everything — the tracing-off switch.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	events  []Event
	max     int
	dropped int64
}

// DefaultMaxEvents bounds a tracer's buffer unless overridden.
const DefaultMaxEvents = 1 << 20

// NewTracer returns a tracer anchored at the current wall time. maxEvents
// <= 0 takes DefaultMaxEvents.
func NewTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{start: time.Now(), max: maxEvents}
}

// Start returns the tracer's wall-clock anchor.
func (t *Tracer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Span records a complete span: [start, start+dur) on the wall timeline,
// [vts, vts+vdur) on the virtual one (pass zeros when unclocked).
func (t *Tracer) Span(cat, name string, tid int, start time.Time, dur time.Duration, vts, vdur float64) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: 'X', Tid: tid, TS: start.Sub(t.start), Dur: dur, VTS: vts, VDur: vdur})
}

// Instant records a zero-duration marker (a fault, a rollback, a shed).
func (t *Tracer) Instant(cat, name string, tid int, at time.Time, vts float64) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: 'i', Tid: tid, TS: at.Sub(t.start), VTS: vts})
}

func (t *Tracer) add(e Event) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the buffer bound discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// ObserveTracer publishes a tracer's buffer occupancy and drop count as
// gauges on the registry (zipflm_trace_events, zipflm_trace_dropped_events),
// refreshed on every scrape — so a trace buffer silently hitting its bound
// shows up in /metrics instead of only in the written trace file.
func (r *Registry) ObserveTracer(t *Tracer) {
	if r == nil || t == nil {
		return
	}
	events := r.Gauge("zipflm_trace_events")
	dropped := r.Gauge("zipflm_trace_dropped_events")
	r.OnCollect(func() {
		events.SetInt(int64(t.Len()))
		dropped.SetInt(t.Dropped())
	})
}

// chromeEvent is the trace_event JSON shape ("JSON Object Format", the
// {"traceEvents": […]} envelope below).
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	TS   float64         `json:"ts"`            // microseconds
	Dur  float64         `json:"dur,omitempty"` // microseconds
	S    string          `json:"s,omitempty"`   // instant scope
	Args chromeEventArgs `json:"args"`
}

type chromeEventArgs struct {
	VClockS    float64 `json:"vclock_s"`
	VClockDurS float64 `json:"vclock_dur_s"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Dropped         int64         `json:"zipflmDroppedEvents,omitempty"`
}

// WriteChromeTrace writes the buffered events as Chrome trace_event JSON.
// Wall time is the timeline (microseconds since the tracer's start); the
// virtual-clock stamps ride in every event's args as vclock_s /
// vclock_dur_s, so a cost-modeled run carries its predicted timeline next
// to the measured one.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()

	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		Dropped:         dropped,
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(e.Phase),
			Tid:  e.Tid,
			TS:   float64(e.TS) / float64(time.Microsecond),
			Dur:  float64(e.Dur) / float64(time.Microsecond),
			Args: chromeEventArgs{VClockS: e.VTS, VClockDurS: e.VDur},
		}
		if e.Phase == 'i' {
			ce.S = "t" // thread-scoped instant
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
