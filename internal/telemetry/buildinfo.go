package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary and its host — the metadata that
// makes performance numbers comparable across machines and commits. It
// rides on /metrics as the zipflm_build_info gauge, in /v1/stats, in
// zipflm-bench -json reports, and in zipflm-perf baselines.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Commit is the VCS revision the binary was built from ("unknown"
	// when the build carried no VCS stamp, e.g. `go test` binaries).
	Commit string `json:"commit"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// Go is the toolchain version; GOOS/GOARCH the target platform.
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// GOMAXPROCS and NumCPU describe the host's effective and physical
	// parallelism at collection time.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
}

// CollectBuildInfo reads the binary's build metadata and the host shape.
func CollectBuildInfo() BuildInfo {
	info := BuildInfo{
		Version:    "(devel)",
		Commit:     "unknown",
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Commit = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// PublishBuildInfo exposes the build metadata on the registry as the
// conventional info-style gauge
//
//	zipflm_build_info{version="…",commit="…",go="…",goos="…",goarch="…"} 1
//
// plus zipflm_gomaxprocs and zipflm_numcpu gauges, so every scrape
// records which binary on which host produced the numbers around it.
func PublishBuildInfo(r *Registry) BuildInfo {
	info := CollectBuildInfo()
	if r == nil {
		return info
	}
	name := "zipflm_build_info"
	name = Label(name, "version", info.Version)
	name = Label(name, "commit", info.Commit)
	name = Label(name, "go", info.Go)
	name = Label(name, "goos", info.GOOS)
	name = Label(name, "goarch", info.GOARCH)
	r.Gauge(name).Set(1)
	r.Gauge("zipflm_gomaxprocs").SetInt(int64(info.GOMAXPROCS))
	r.Gauge("zipflm_numcpu").SetInt(int64(info.NumCPU))
	return info
}
