package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// This file is the time dimension of the telemetry layer. A Registry holds
// the *current* value of every instrument; History retains a bounded ring
// of periodic registry samples so any metric becomes a series: counters
// gain windowed rates, histograms gain delta snapshots (windowed p50/p99
// over just the observations inside the window), and every sample is
// stamped with both the wall clock and — when a reader is configured —
// the simulator's virtual clock, mirroring the dual timeline the Tracer
// records. Sampling only ever reads instruments, so the package contract
// holds: observation never perturbs, and every bit-identity suite passes
// with sampling on.

// HistoryConfig tunes a History.
type HistoryConfig struct {
	// Capacity is how many samples the ring retains (DefaultHistorySamples
	// when <= 0). Memory is bounded: old samples fall off the far end.
	Capacity int
	// Interval is Start's sampling period (DefaultHistoryInterval when 0).
	Interval time.Duration
	// VClock, when non-nil, is read at each sample and stamped on it —
	// typically cluster.MaxClock or a registry gauge reader — giving every
	// series a virtual-time axis next to the wall-time one.
	VClock func() float64
}

// Defaults for HistoryConfig zero values.
const (
	DefaultHistorySamples  = 512
	DefaultHistoryInterval = time.Second
)

// HistorySample is one periodic capture of a registry: every counter,
// gauge and histogram by name, the latter in cumulative sparse form so
// adjacent samples subtract into windowed distributions.
type HistorySample struct {
	// Seq numbers samples from 0; after wraparound it still increases, so
	// consumers can detect how much history fell off the ring.
	Seq uint64 `json:"seq"`
	// Wall is the sample's wall-clock stamp; VClock the virtual-clock
	// stamp (0 when no reader is configured).
	Wall     time.Time          `json:"wall"`
	VClock   float64            `json:"vclock_s"`
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
	Hists    map[string]HistCum `json:"histograms"`
}

// History is a fixed-size ring of registry samples. Create with
// NewHistory, then either call Sample on your own cadence or Start a
// background sampler. All methods are safe for concurrent use and
// nil-receiver safe (the history-off switch).
type History struct {
	reg *Registry
	cfg HistoryConfig

	mu   sync.Mutex
	ring []HistorySample
	next uint64 // sequence number of the next sample
}

// NewHistory returns a history sampling reg. A nil registry yields a nil
// History (sampling off).
func NewHistory(reg *Registry, cfg HistoryConfig) *History {
	if reg == nil {
		return nil
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultHistorySamples
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHistoryInterval
	}
	return &History{reg: reg, cfg: cfg, ring: make([]HistorySample, 0, cfg.Capacity)}
}

// Cap returns the ring capacity.
func (h *History) Cap() int {
	if h == nil {
		return 0
	}
	return h.cfg.Capacity
}

// Len returns how many samples the ring currently holds.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ring)
}

// Sample captures the registry once, stamped at now. Registered collectors
// run first (exactly as an exporter scrape would), so derived gauges are
// fresh in the sample.
func (h *History) Sample(now time.Time) {
	if h == nil {
		return
	}
	counters, gauges, hists := h.reg.collect()
	s := HistorySample{
		Wall:     now,
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]float64, len(gauges)),
		Hists:    make(map[string]HistCum, len(hists)),
	}
	if h.cfg.VClock != nil {
		s.VClock = h.cfg.VClock()
	}
	h.reg.mu.Lock()
	cs := make([]*Counter, len(counters))
	for i, name := range counters {
		cs[i] = h.reg.counters[name]
	}
	gs := make([]*Gauge, len(gauges))
	for i, name := range gauges {
		gs[i] = h.reg.gauges[name]
	}
	hs := make([]*Histogram, len(hists))
	for i, name := range hists {
		hs[i] = h.reg.hists[name]
	}
	h.reg.mu.Unlock()
	for i, name := range counters {
		s.Counters[name] = cs[i].Value()
	}
	for i, name := range gauges {
		s.Gauges[name] = gs[i].Value()
	}
	for i, name := range hists {
		s.Hists[name] = hs[i].CumSnapshot()
	}

	h.mu.Lock()
	s.Seq = h.next
	h.next++
	if len(h.ring) < h.cfg.Capacity {
		h.ring = append(h.ring, s)
	} else {
		h.ring[int(s.Seq)%h.cfg.Capacity] = s
	}
	h.mu.Unlock()
}

// Start launches a background sampler at the configured interval and
// returns its stop function, which takes one final sample before
// returning so short runs still record an endpoint. Safe on a nil
// History (returns a no-op stop).
func (h *History) Start() (stop func()) {
	if h == nil {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(h.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				h.Sample(now)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			h.Sample(time.Now())
		})
	}
}

// Samples returns the retained samples, oldest first. The sample maps are
// immutable after capture; callers must not modify them.
func (h *History) Samples() []HistorySample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistorySample, 0, len(h.ring))
	if len(h.ring) < h.cfg.Capacity {
		out = append(out, h.ring...)
		return out
	}
	// Full ring: the oldest sample sits at next % capacity.
	start := int(h.next) % h.cfg.Capacity
	out = append(out, h.ring[start:]...)
	out = append(out, h.ring[:start]...)
	return out
}

// window returns the newest sample and the oldest sample within window of
// it (by wall clock). ok is false with fewer than two samples in range.
func (h *History) window(window time.Duration) (oldest, newest HistorySample, ok bool) {
	samples := h.Samples()
	if len(samples) < 2 {
		return HistorySample{}, HistorySample{}, false
	}
	newest = samples[len(samples)-1]
	horizon := newest.Wall.Add(-window)
	for _, s := range samples[:len(samples)-1] {
		if !s.Wall.Before(horizon) {
			if s.Wall.Equal(newest.Wall) {
				break // zero-width window: no rate to compute
			}
			return s, newest, true
		}
	}
	return HistorySample{}, HistorySample{}, false
}

// Rate returns the named counter's windowed rate per wall-clock second:
// the value delta between the newest sample and the oldest sample within
// window of it, divided by the elapsed wall time. ok is false when fewer
// than two samples cover the window or the counter is absent from either.
func (h *History) Rate(name string, window time.Duration) (perSec float64, ok bool) {
	if h == nil {
		return 0, false
	}
	o, n, ok := h.window(window)
	if !ok {
		return 0, false
	}
	ov, okO := o.Counters[name]
	nv, okN := n.Counters[name]
	if !okO || !okN {
		return 0, false
	}
	dt := n.Wall.Sub(o.Wall).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return float64(nv-ov) / dt, true
}

// VRate is Rate on the virtual-clock axis: counter delta divided by
// virtual seconds elapsed between the same pair of samples. ok is false
// when the virtual clock did not advance (no reader configured, or the
// simulation is idle).
func (h *History) VRate(name string, window time.Duration) (perVSec float64, ok bool) {
	if h == nil {
		return 0, false
	}
	o, n, ok := h.window(window)
	if !ok {
		return 0, false
	}
	ov, okO := o.Counters[name]
	nv, okN := n.Counters[name]
	if !okO || !okN {
		return 0, false
	}
	dv := n.VClock - o.VClock
	if dv <= 0 {
		return 0, false
	}
	return float64(nv-ov) / dv, true
}

// Window returns the named histogram's delta distribution over the
// window: only the observations recorded between the two bracketing
// samples, with windowed Mean/P50/P99. ok is false when the window lacks
// two samples carrying the histogram.
func (h *History) Window(name string, window time.Duration) (HistDelta, bool) {
	if h == nil {
		return HistDelta{}, false
	}
	o, n, ok := h.window(window)
	if !ok {
		return HistDelta{}, false
	}
	oc, okO := o.Hists[name]
	nc, okN := n.Hists[name]
	if !okO || !okN {
		return HistDelta{}, false
	}
	return nc.Sub(oc), true
}

// historyDump is the JSON export envelope.
type historyDump struct {
	Capacity  int             `json:"capacity"`
	IntervalS float64         `json:"interval_s"`
	Samples   []HistorySample `json:"samples"`
}

// WriteJSON exports the retained samples (oldest first) with the ring
// configuration, as indented deterministic JSON — the machine-readable
// metric history of a run.
func (h *History) WriteJSON(w io.Writer) error {
	if h == nil {
		return nil
	}
	d := historyDump{
		Capacity:  h.cfg.Capacity,
		IntervalS: h.cfg.Interval.Seconds(),
		Samples:   h.Samples(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
