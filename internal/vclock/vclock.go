// Package vclock provides the deterministic per-rank virtual clocks the
// simulator threads through compute, memory and collective operations.
//
// A Clock measures simulated seconds, not wall time. Ranks advance their own
// clock for local work (FLOPs ÷ achieved FLOP/s, bytes ÷ memory bandwidth);
// collective operations synchronize the participating clocks to their
// maximum and then advance them together by the operation's α–β cost — the
// standard trace/cost-model treatment of bulk-synchronous programs. Because
// every cross-clock operation is a max-then-advance applied at a barrier
// where all participants are quiesced, the resulting times are independent
// of goroutine scheduling: repeated runs with the same seed produce
// bit-identical virtual times.
package vclock

import "sync"

// Clock is one rank's virtual clock, in seconds. The zero value is a clock
// at time zero, ready to use. Methods are safe for concurrent use; the
// simulator's determinism comes from only touching a clock at points where
// the owning rank is quiesced (its own goroutine, or a collective barrier).
type Clock struct {
	mu sync.Mutex
	t  float64
}

// Now returns the clock's current virtual time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d seconds (negative d panics — virtual
// time never rewinds) and returns the new time.
func (c *Clock) Advance(d float64) float64 {
	if d < 0 {
		panic("vclock: negative advance")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += d
	return c.t
}

// AdvanceTo moves the clock forward to time t if t is ahead of it; a t in
// the clock's past is a no-op (max semantics, used by barrier
// synchronization).
func (c *Clock) AdvanceTo(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.t {
		c.t = t
	}
}

// Reset sets the clock back to zero. Only for reuse across independent
// simulations; never during one.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = 0
}

// MaxNow returns the latest time across the given clocks (0 for none).
func MaxNow(clocks []*Clock) float64 {
	var m float64
	for _, c := range clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}

// SyncAdvance implements the collective cost step: synchronize every clock
// to the group maximum, then advance all of them together by d seconds.
// The caller must have all owning ranks quiesced (at a barrier).
func SyncAdvance(clocks []*Clock, d float64) {
	t := MaxNow(clocks) + d
	for _, c := range clocks {
		c.AdvanceTo(t)
	}
}
