package vclock

import (
	"sync"
	"testing"
)

func TestAdvanceAndNow(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
	if got := c.Advance(1.5); got != 1.5 {
		t.Fatalf("Advance returned %v", got)
	}
	c.Advance(0.5)
	if c.Now() != 2.0 {
		t.Fatalf("clock at %v, want 2.0", c.Now())
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance must panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestAdvanceToIsMax(t *testing.T) {
	var c Clock
	c.Advance(3)
	c.AdvanceTo(2) // in the past: no-op
	if c.Now() != 3 {
		t.Fatalf("AdvanceTo rewound the clock to %v", c.Now())
	}
	c.AdvanceTo(5)
	if c.Now() != 5 {
		t.Fatalf("AdvanceTo(5) left clock at %v", c.Now())
	}
}

func TestSyncAdvance(t *testing.T) {
	clocks := []*Clock{{}, {}, {}}
	clocks[0].Advance(1)
	clocks[1].Advance(4)
	SyncAdvance(clocks, 2)
	for i, c := range clocks {
		if c.Now() != 6 {
			t.Errorf("clock %d at %v, want 6 (max 4 + 2)", i, c.Now())
		}
	}
	if MaxNow(clocks) != 6 {
		t.Errorf("MaxNow = %v", MaxNow(clocks))
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(7)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %v", c.Now())
	}
}

// TestConcurrentAdvance exercises the mutex under the race detector: total
// time must equal the sum of all advances.
func TestConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(0.001)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got < 7.99 || got > 8.01 {
		t.Fatalf("concurrent advances lost time: %v", got)
	}
}
