// Package traceview analyzes the Chrome trace_event JSON timelines the
// telemetry.Tracer writes: it reconstructs per-step structure from the
// trainer's aggregate spans, attributes each step's virtual-clock time to
// compute vs wire vs sync-wait per rank from the per-rank spans, finds the
// straggler, and aggregates per-collective-op traffic — the analysis layer
// that turns a raw timeline into the paper's "who was the bottleneck"
// story. cmd/zipflm-trace is the CLI over this package.
//
// The analysis is deterministic: it is a pure function of the parsed
// floats (ties broken by rank), so the same trace always produces the
// same attribution, and the envelope totals — the sums of the aggregate
// "train" compute/sync span durations — equal the trainer's
// SimComputeSeconds/SimSyncSeconds bitwise (encoding/json round-trips
// float64 exactly, and the sums accumulate the identical values in the
// identical order the trainer did).
package traceview

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Span is one parsed trace event. TS/Dur are wall microseconds relative to
// the tracer start; VTS/VDur are virtual-clock seconds.
type Span struct {
	Name  string
	Cat   string
	Phase string
	Tid   int
	TS    float64
	Dur   float64
	VTS   float64
	VDur  float64
}

// Trace is a parsed trace file: every event in record order, plus the
// dropped-event count the tracer recorded when its buffer bound hit.
type Trace struct {
	Spans   []Span
	Dropped int64
}

// fileEvent / fileTrace mirror telemetry's chromeEvent JSON shape.
type fileEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Tid  int     `json:"tid"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		VClockS    float64 `json:"vclock_s"`
		VClockDurS float64 `json:"vclock_dur_s"`
	} `json:"args"`
}

type fileTrace struct {
	TraceEvents []fileEvent `json:"traceEvents"`
	Dropped     int64       `json:"zipflmDroppedEvents"`
}

// Parse reads a Chrome trace_event JSON document.
func Parse(r io.Reader) (*Trace, error) {
	var ft fileTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ft); err != nil {
		return nil, fmt.Errorf("traceview: parsing trace: %w", err)
	}
	tr := &Trace{Dropped: ft.Dropped, Spans: make([]Span, 0, len(ft.TraceEvents))}
	for _, e := range ft.TraceEvents {
		tr.Spans = append(tr.Spans, Span{
			Name: e.Name, Cat: e.Cat, Phase: e.Ph, Tid: e.Tid,
			TS: e.TS, Dur: e.Dur, VTS: e.Args.VClockS, VDur: e.Args.VClockDurS,
		})
	}
	return tr, nil
}

// ParseFile reads and parses one trace file.
func ParseFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traceview: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// RankPhase is one rank's virtual-clock attribution for one step.
type RankPhase struct {
	// Compute is the rank's own compute span.
	Compute float64
	// Exchange is the rank's exchange-phase span — wire time plus however
	// long it waited for stragglers at the collective barriers.
	Exchange float64
	// Update is the rank's optimizer/memory update span.
	Update float64
	// Wait is the sync-wait share: Exchange minus the step's wire floor
	// (the minimum exchange across ranks — the rank that never waited).
	Wait float64
}

// Step is one training step's critical-path decomposition. Compute and
// Sync are the aggregate envelope (bitwise the trainer's accounting);
// the remaining fields attribute the envelope using per-rank spans and
// are zero/-1 when the trace carries no per-rank detail.
type Step struct {
	Index   int
	Compute float64
	Sync    float64
	// Straggler is the rank whose compute finished last (ties to the
	// lowest rank), -1 without per-rank spans.
	Straggler int
	// Wire is the step's wire floor: the minimum exchange time across
	// ranks — communication no rank could avoid.
	Wire float64
	// UpdateMax is the slowest rank's update span.
	UpdateMax float64
	// Other is the envelope residual: Sync − Wire − UpdateMax (optimizer
	// step, barrier skew; may be slightly negative from clock skew at
	// phase entry).
	Other float64
	// MaxWait is the largest sync-wait any rank spent this step.
	MaxWait float64
	// Ranks holds per-rank attribution aligned with Analysis.Ranks.
	Ranks []RankPhase
}

// OpTotal aggregates one collective operation across the trace. VDur and
// Wall are rank-seconds (each rank's span counted; divide by ranks for
// per-rank means).
type OpTotal struct {
	Name  string
	Count int
	VDur  float64
	Wall  float64 // seconds, from wall-clock span durations
}

// Analysis is the full report computed from one trace.
type Analysis struct {
	Events  int
	Dropped int64
	// Truncated is set when the tracer dropped events or the per-rank
	// streams disagree in length — attribution then covers only the
	// complete prefix.
	Truncated bool
	// EnvelopeDerived is set when the trace carries no aggregate trainer
	// spans and the envelope was reconstructed from per-rank maxima
	// (then NOT bitwise the trainer's accounting).
	EnvelopeDerived bool
	// Ranks lists the rank tids seen in per-rank spans, ascending.
	Ranks []int
	Steps []Step
	// TotalCompute/TotalSync sum the aggregate envelope spans in record
	// order — bitwise equal to the trainer's SimComputeSeconds /
	// SimSyncSeconds when the trace came from a trainer run.
	TotalCompute    float64
	TotalSync       float64
	TotalCheckpoint float64
	// RankBusy/RankWait are per-rank totals aligned with Ranks: busy is
	// compute + wire share + update; wait is barrier time lost to
	// stragglers.
	RankBusy []float64
	RankWait []float64
	// Collectives aggregates cat="collective" spans per op name.
	Collectives []OpTotal
	// Instants counts instant events by name (fault-rollback, shed, …).
	Instants map[string]int
}

// streamKey identifies one sequential span stream: spans sharing
// (cat, tid, name) are emitted in order by a single goroutine, so the i-th
// occurrence belongs to step i regardless of cross-goroutine interleaving
// in the record order.
type streamKey struct {
	cat  string
	tid  int
	name string
}

// Analyze computes the critical-path report for a parsed trace.
func Analyze(tr *Trace) *Analysis {
	a := &Analysis{
		Events:   len(tr.Spans),
		Dropped:  tr.Dropped,
		Instants: map[string]int{},
	}
	if tr.Dropped > 0 {
		a.Truncated = true
	}

	streams := map[streamKey][]Span{}
	rankSet := map[int]bool{}
	opTotals := map[string]*OpTotal{}
	for _, s := range tr.Spans {
		if s.Phase == "i" {
			a.Instants[s.Name]++
			continue
		}
		if s.Phase != "X" {
			continue
		}
		switch s.Cat {
		case "train":
			switch s.Name {
			case "compute":
				a.TotalCompute += s.VDur
			case "sync":
				a.TotalSync += s.VDur
			case "checkpoint":
				a.TotalCheckpoint += s.VDur
			}
		case "rank":
			rankSet[s.Tid] = true
		case "collective":
			ot := opTotals[s.Name]
			if ot == nil {
				ot = &OpTotal{Name: s.Name}
				opTotals[s.Name] = ot
			}
			ot.Count++
			ot.VDur += s.VDur
			ot.Wall += s.Dur / 1e6
		}
		k := streamKey{cat: s.Cat, tid: s.Tid, name: s.Name}
		streams[k] = append(streams[k], s)
	}
	for r := range rankSet {
		a.Ranks = append(a.Ranks, r)
	}
	sort.Ints(a.Ranks)
	for _, ot := range opTotals {
		a.Collectives = append(a.Collectives, *ot)
	}
	sort.Slice(a.Collectives, func(i, j int) bool { return a.Collectives[i].Name < a.Collectives[j].Name })

	aggCompute := streams[streamKey{cat: "train", tid: 0, name: "compute"}]
	aggSync := streams[streamKey{cat: "train", tid: 0, name: "sync"}]

	// Step count: the aggregate streams define it; without them, fall
	// back to the shortest per-rank compute stream (weak-scaling traces
	// carry only cat="train" spans; hand-rolled traces may carry only
	// per-rank ones).
	steps := min(len(aggCompute), len(aggSync))
	if len(aggCompute) != len(aggSync) {
		a.Truncated = true
	}
	if len(aggCompute) == 0 && len(a.Ranks) > 0 {
		a.EnvelopeDerived = true
		steps = -1
		for _, r := range a.Ranks {
			n := len(streams[streamKey{cat: "rank", tid: r, name: "compute"}])
			if steps < 0 || n < steps {
				steps = n
			}
		}
		if steps < 0 {
			steps = 0
		}
	}

	// Per-rank streams must cover every step; a shorter stream marks
	// truncation and bounds the attributed prefix.
	rankSteps := steps
	if len(a.Ranks) > 0 {
		for _, r := range a.Ranks {
			for _, name := range []string{"compute", "exchange", "update"} {
				n := len(streams[streamKey{cat: "rank", tid: r, name: name}])
				if n < rankSteps {
					rankSteps = n
					a.Truncated = true
				}
			}
		}
	} else {
		rankSteps = 0
	}

	a.RankBusy = make([]float64, len(a.Ranks))
	a.RankWait = make([]float64, len(a.Ranks))
	for i := 0; i < steps; i++ {
		st := Step{Index: i, Straggler: -1}
		if i < len(aggCompute) {
			st.Compute = aggCompute[i].VDur
			st.Sync = aggSync[i].VDur
		}
		if i < rankSteps {
			st.Ranks = make([]RankPhase, len(a.Ranks))
			wire := -1.0
			var stragglerEnd float64
			var maxCompute, maxExchange, maxUpdate float64
			for ri, r := range a.Ranks {
				c := streams[streamKey{cat: "rank", tid: r, name: "compute"}][i]
				e := streams[streamKey{cat: "rank", tid: r, name: "exchange"}][i]
				u := streams[streamKey{cat: "rank", tid: r, name: "update"}][i]
				st.Ranks[ri] = RankPhase{Compute: c.VDur, Exchange: e.VDur, Update: u.VDur}
				if end := c.VTS + c.VDur; st.Straggler < 0 || end > stragglerEnd {
					st.Straggler = r
					stragglerEnd = end
				}
				if wire < 0 || e.VDur < wire {
					wire = e.VDur
				}
				maxCompute = max(maxCompute, c.VDur)
				maxExchange = max(maxExchange, e.VDur)
				maxUpdate = max(maxUpdate, u.VDur)
			}
			st.Wire = wire
			st.UpdateMax = maxUpdate
			st.MaxWait = maxExchange - wire
			if a.EnvelopeDerived {
				st.Compute = maxCompute
				st.Sync = maxExchange + maxUpdate
			}
			st.Other = st.Sync - st.Wire - st.UpdateMax
			for ri := range st.Ranks {
				rp := &st.Ranks[ri]
				rp.Wait = rp.Exchange - wire
				a.RankBusy[ri] += rp.Compute + wire + rp.Update
				a.RankWait[ri] += rp.Wait
			}
		}
		a.Steps = append(a.Steps, st)
	}
	if a.EnvelopeDerived {
		a.TotalCompute, a.TotalSync = 0, 0
		for _, st := range a.Steps {
			a.TotalCompute += st.Compute
			a.TotalSync += st.Sync
		}
	}
	return a
}

// AnalyzeFile parses and analyzes one trace file.
func AnalyzeFile(path string) (*Analysis, error) {
	tr, err := ParseFile(path)
	if err != nil {
		return nil, err
	}
	return Analyze(tr), nil
}

// TotalEnvelope is the critical-path total: the virtual-clock seconds the
// cluster spent across all steps (compute + sync + checkpoint).
func (a *Analysis) TotalEnvelope() float64 {
	return a.TotalCompute + a.TotalSync + a.TotalCheckpoint
}

// StragglerCounts returns how many steps each rank (aligned with Ranks)
// was the straggler.
func (a *Analysis) StragglerCounts() []int {
	idx := make(map[int]int, len(a.Ranks))
	for i, r := range a.Ranks {
		idx[r] = i
	}
	out := make([]int, len(a.Ranks))
	for _, st := range a.Steps {
		if i, ok := idx[st.Straggler]; ok {
			out[i]++
		}
	}
	return out
}
