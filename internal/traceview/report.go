package traceview

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// SummaryOptions tunes WriteSummary.
type SummaryOptions struct {
	// TopN bounds the top-spans-by-virtual-duration table (0: 10).
	TopN int
	// MaxSteps bounds the per-step table (0: 12; negative: all).
	MaxSteps int
}

// v renders a virtual-clock duration with full float precision, so equal
// inputs render equal and regressions of any size are visible.
func v(x float64) string { return fmt.Sprintf("%.9g", x) }

// WriteSummary renders the analysis as the zipflm-trace report: totals,
// the per-step critical path, per-rank utilization, collective-op
// attribution and the top spans.
func WriteSummary(w io.Writer, tr *Trace, a *Analysis, opts SummaryOptions) {
	topN := opts.TopN
	if topN == 0 {
		topN = 10
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 12
	}

	fmt.Fprintf(w, "trace: %d events, %d steps, %d ranks", a.Events, len(a.Steps), len(a.Ranks))
	if a.Dropped > 0 {
		fmt.Fprintf(w, ", %d DROPPED (buffer bound hit — analysis covers the recorded prefix)", a.Dropped)
	}
	fmt.Fprintln(w)
	if a.Truncated && a.Dropped == 0 {
		fmt.Fprintln(w, "warning: span streams have unequal lengths; attribution covers the complete prefix only")
	}

	fmt.Fprintf(w, "critical path (vclock): total %s s = compute %s s + sync %s s",
		v(a.TotalEnvelope()), v(a.TotalCompute), v(a.TotalSync))
	if a.TotalCheckpoint > 0 {
		fmt.Fprintf(w, " + checkpoint %s s", v(a.TotalCheckpoint))
	}
	if a.EnvelopeDerived {
		fmt.Fprint(w, " (derived from per-rank spans)")
	}
	fmt.Fprintln(w)
	if len(a.Instants) > 0 {
		fmt.Fprint(w, "instants:")
		for _, kv := range sortedInstants(a.Instants) {
			fmt.Fprintf(w, " %s×%d", kv.name, kv.n)
		}
		fmt.Fprintln(w)
	}

	if len(a.Steps) > 0 {
		fmt.Fprintln(w, "\nper-step critical path:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "step\tcompute_s\tsync_s\twire_s\tupdate_s\tmax_wait_s\tstraggler")
		shown := len(a.Steps)
		if maxSteps > 0 && shown > maxSteps {
			shown = maxSteps
		}
		for _, st := range a.Steps[:shown] {
			straggler := "-"
			if st.Straggler >= 0 {
				straggler = fmt.Sprintf("rank %d", st.Straggler)
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
				st.Index, v(st.Compute), v(st.Sync), v(st.Wire), v(st.UpdateMax), v(st.MaxWait), straggler)
		}
		tw.Flush()
		if shown < len(a.Steps) {
			fmt.Fprintf(w, "… %d more steps (-steps N to widen)\n", len(a.Steps)-shown)
		}
	}

	if len(a.Ranks) > 0 {
		fmt.Fprintln(w, "\nper-rank utilization (vclock):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "rank\tbusy_s\twait_s\tutil\tstraggler_steps")
		total := a.TotalEnvelope()
		sc := a.StragglerCounts()
		for i, r := range a.Ranks {
			util := 0.0
			if total > 0 {
				util = a.RankBusy[i] / total
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f%%\t%d\n", r, v(a.RankBusy[i]), v(a.RankWait[i]), 100*util, sc[i])
		}
		tw.Flush()
	}

	if len(a.Collectives) > 0 {
		fmt.Fprintln(w, "\ncollective ops (rank-seconds across all ranks):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "op\tcalls\tvclock_s\twall_s")
		for _, ot := range a.Collectives {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%.6f\n", ot.Name, ot.Count, v(ot.VDur), ot.Wall)
		}
		tw.Flush()
	}

	if topN > 0 && tr != nil {
		spans := topSpans(tr, topN)
		if len(spans) > 0 {
			fmt.Fprintf(w, "\ntop %d spans by vclock duration:\n", len(spans))
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "cat\tname\ttid\tvclock_at_s\tvclock_dur_s")
			for _, s := range spans {
				fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\n", s.Cat, s.Name, s.Tid, v(s.VTS), v(s.VDur))
			}
			tw.Flush()
		}
	}
}

// topSpans returns the topN complete spans by virtual duration, ties
// broken by (VTS, cat, name, tid) so the order is a pure function of the
// trace contents.
func topSpans(tr *Trace, topN int) []Span {
	spans := make([]Span, 0, len(tr.Spans))
	for _, s := range tr.Spans {
		if s.Phase == "X" && s.VDur > 0 {
			spans = append(spans, s)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.VDur != b.VDur {
			return a.VDur > b.VDur
		}
		if a.VTS != b.VTS {
			return a.VTS < b.VTS
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Tid < b.Tid
	})
	if len(spans) > topN {
		spans = spans[:topN]
	}
	return spans
}

type instantCount struct {
	name string
	n    int
}

func sortedInstants(m map[string]int) []instantCount {
	out := make([]instantCount, 0, len(m))
	for k, n := range m {
		out = append(out, instantCount{k, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WriteDiff compares two analyses (A = baseline, B = candidate) on the
// virtual clock and reports per-total and per-step deltas. Two runs of the
// same seed produce bitwise-identical virtual clocks, so the diff of a
// true re-run is exactly zero — any nonzero delta is a real behavioral
// change, not noise. Returns true when B regresses (its critical-path
// total grew).
func WriteDiff(w io.Writer, a, b *Analysis) (regressed bool) {
	fmt.Fprintf(w, "A: %d steps, compute %s s, sync %s s, total %s s\n",
		len(a.Steps), v(a.TotalCompute), v(a.TotalSync), v(a.TotalEnvelope()))
	fmt.Fprintf(w, "B: %d steps, compute %s s, sync %s s, total %s s\n",
		len(b.Steps), v(b.TotalCompute), v(b.TotalSync), v(b.TotalEnvelope()))

	dTotal := b.TotalEnvelope() - a.TotalEnvelope()
	fmt.Fprintf(w, "delta: compute %+.9g s, sync %+.9g s, total %+.9g s\n",
		b.TotalCompute-a.TotalCompute, b.TotalSync-a.TotalSync, dTotal)

	n := min(len(a.Steps), len(b.Steps))
	var worstStep int
	var worstDelta float64
	stragglerMoves := 0
	for i := 0; i < n; i++ {
		d := (b.Steps[i].Compute + b.Steps[i].Sync) - (a.Steps[i].Compute + a.Steps[i].Sync)
		if ad := abs(d); ad > abs(worstDelta) {
			worstDelta = d
			worstStep = i
		}
		if a.Steps[i].Straggler != b.Steps[i].Straggler {
			stragglerMoves++
		}
	}
	if len(a.Steps) != len(b.Steps) {
		fmt.Fprintf(w, "step count changed: %d → %d (comparing first %d)\n", len(a.Steps), len(b.Steps), n)
	}
	if n > 0 {
		fmt.Fprintf(w, "worst step delta: step %d %+.9g s; straggler changed on %d/%d steps\n",
			worstStep, worstDelta, stragglerMoves, n)
	}

	identical := dTotal == 0 && b.TotalCompute == a.TotalCompute && b.TotalSync == a.TotalSync &&
		len(a.Steps) == len(b.Steps) && worstDelta == 0 && stragglerMoves == 0
	switch {
	case identical:
		fmt.Fprintln(w, "verdict: identical on the virtual clock — no regression")
	case dTotal > 0:
		fmt.Fprintf(w, "verdict: REGRESSION — critical path grew %.9g s (%.2f%%)\n",
			dTotal, 100*dTotal/a.TotalEnvelope())
	default:
		fmt.Fprintf(w, "verdict: improved or neutral — critical path changed %.9g s\n", dTotal)
	}
	return dTotal > 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
