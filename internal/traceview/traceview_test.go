package traceview

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func parseTestdata(t *testing.T, name string) *Trace {
	t.Helper()
	tr, err := ParseFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestAnalyzeSmallTrace checks every analyzer output against hand-computed
// values for the checked-in two-rank, two-step trace. All virtual durations
// in the testdata are binary-exact (multiples of 0.25), so the expected
// values are exact float64 comparisons, not tolerances.
func TestAnalyzeSmallTrace(t *testing.T) {
	tr := parseTestdata(t, "small.json")
	a := Analyze(tr)

	if a.Events != 21 || a.Dropped != 0 || a.Truncated || a.EnvelopeDerived {
		t.Fatalf("header mismatch: events=%d dropped=%d truncated=%v derived=%v",
			a.Events, a.Dropped, a.Truncated, a.EnvelopeDerived)
	}
	if len(a.Ranks) != 2 || a.Ranks[0] != 0 || a.Ranks[1] != 1 {
		t.Fatalf("ranks = %v, want [0 1]", a.Ranks)
	}
	if a.TotalCompute != 3.5 || a.TotalSync != 1.25 || a.TotalEnvelope() != 4.75 {
		t.Fatalf("totals: compute=%v sync=%v total=%v", a.TotalCompute, a.TotalSync, a.TotalEnvelope())
	}
	if len(a.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(a.Steps))
	}

	s0 := a.Steps[0]
	if s0.Compute != 1.5 || s0.Sync != 0.5 || s0.Straggler != 1 ||
		s0.Wire != 0.25 || s0.UpdateMax != 0.25 || s0.MaxWait != 0.5 || s0.Other != 0 {
		t.Fatalf("step 0 = %+v", s0)
	}
	if s0.Ranks[0].Wait != 0.5 || s0.Ranks[1].Wait != 0 {
		t.Fatalf("step 0 waits = %v / %v", s0.Ranks[0].Wait, s0.Ranks[1].Wait)
	}
	s1 := a.Steps[1]
	if s1.Compute != 2.0 || s1.Sync != 0.75 || s1.Straggler != 0 ||
		s1.Wire != 0.5 || s1.UpdateMax != 0.25 || s1.MaxWait != 1.0 || s1.Other != 0 {
		t.Fatalf("step 1 = %+v", s1)
	}

	if a.RankBusy[0] != 4.25 || a.RankBusy[1] != 3.75 {
		t.Fatalf("rank busy = %v", a.RankBusy)
	}
	if a.RankWait[0] != 0.5 || a.RankWait[1] != 1.0 {
		t.Fatalf("rank wait = %v", a.RankWait)
	}

	if len(a.Collectives) != 1 {
		t.Fatalf("collectives = %v", a.Collectives)
	}
	ar := a.Collectives[0]
	if ar.Name != "allreduce" || ar.Count != 4 || ar.VDur != 3.0 {
		t.Fatalf("allreduce total = %+v", ar)
	}
	if a.Instants["fault-rollback"] != 1 {
		t.Fatalf("instants = %v", a.Instants)
	}
	sc := a.StragglerCounts()
	if sc[0] != 1 || sc[1] != 1 {
		t.Fatalf("straggler counts = %v", sc)
	}
}

// TestSummaryGolden locks the zipflm-trace report format against a golden
// file. Regenerate with: go test ./internal/traceview -run Golden -update
func TestSummaryGolden(t *testing.T) {
	tr := parseTestdata(t, "small.json")
	a := Analyze(tr)
	var buf bytes.Buffer
	WriteSummary(&buf, tr, a, SummaryOptions{})

	golden := filepath.Join("testdata", "small.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary drifted from golden (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestDiffIdentical: diffing a trace against itself reports no regression
// and says so in the exact no-regression phrasing CI greps for.
func TestDiffIdentical(t *testing.T) {
	a := Analyze(parseTestdata(t, "small.json"))
	b := Analyze(parseTestdata(t, "small.json"))
	var buf bytes.Buffer
	if WriteDiff(&buf, a, b) {
		t.Fatal("identical analyses reported a regression")
	}
	if !strings.Contains(buf.String(), "identical on the virtual clock — no regression") {
		t.Fatalf("diff output missing no-regression verdict:\n%s", buf.String())
	}
}

// TestDiffRegression: a candidate with a longer critical path is flagged.
func TestDiffRegression(t *testing.T) {
	a := Analyze(parseTestdata(t, "small.json"))
	b := Analyze(parseTestdata(t, "small.json"))
	b.TotalSync += 0.5
	b.Steps[1].Sync += 0.5
	var buf bytes.Buffer
	if !WriteDiff(&buf, a, b) {
		t.Fatal("regressed candidate not flagged")
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("diff output missing REGRESSION verdict:\n%s", buf.String())
	}
}

// TestAnalyzeEmptyTrace: an empty trace analyzes to zeros and the summary
// renders without panicking.
func TestAnalyzeEmptyTrace(t *testing.T) {
	tr, err := Parse(strings.NewReader(`{"traceEvents":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr)
	if a.Events != 0 || len(a.Steps) != 0 || len(a.Ranks) != 0 || a.TotalEnvelope() != 0 {
		t.Fatalf("empty trace analysis = %+v", a)
	}
	var buf bytes.Buffer
	WriteSummary(&buf, tr, a, SummaryOptions{})
	if !strings.Contains(buf.String(), "0 events, 0 steps, 0 ranks") {
		t.Fatalf("empty summary:\n%s", buf.String())
	}
}

// TestAnalyzeSingleRank: with one rank the wire floor is that rank's own
// exchange, so no step has any sync wait.
func TestAnalyzeSingleRank(t *testing.T) {
	const trace = `{"traceEvents":[
{"name":"compute","cat":"train","ph":"X","tid":0,"ts":0,"dur":10,"args":{"vclock_s":0,"vclock_dur_s":2}},
{"name":"compute","cat":"rank","ph":"X","tid":0,"ts":0,"dur":10,"args":{"vclock_s":0,"vclock_dur_s":2}},
{"name":"exchange","cat":"rank","ph":"X","tid":0,"ts":10,"dur":5,"args":{"vclock_s":2,"vclock_dur_s":0.5}},
{"name":"update","cat":"rank","ph":"X","tid":0,"ts":15,"dur":2,"args":{"vclock_s":2.5,"vclock_dur_s":0.25}},
{"name":"sync","cat":"train","ph":"X","tid":0,"ts":17,"dur":7,"args":{"vclock_s":2,"vclock_dur_s":0.75}}
]}`
	tr, err := Parse(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr)
	if len(a.Ranks) != 1 || len(a.Steps) != 1 {
		t.Fatalf("ranks=%v steps=%d", a.Ranks, len(a.Steps))
	}
	st := a.Steps[0]
	if st.Straggler != 0 || st.Wire != 0.5 || st.MaxWait != 0 || st.Other != 0 {
		t.Fatalf("single-rank step = %+v", st)
	}
	if a.RankWait[0] != 0 {
		t.Fatalf("single rank waited %v", a.RankWait[0])
	}
}

// TestAnalyzeTruncated: a dropped-event count or unequal span streams mark
// the analysis truncated, and attribution is bounded by the shortest
// per-rank stream instead of reading out of range.
func TestAnalyzeTruncated(t *testing.T) {
	// Rank 1's exchange/update for step 1 were dropped: streams are uneven.
	const trace = `{"traceEvents":[
{"name":"compute","cat":"train","ph":"X","tid":0,"ts":0,"dur":1,"args":{"vclock_s":0,"vclock_dur_s":1}},
{"name":"compute","cat":"rank","ph":"X","tid":0,"ts":0,"dur":1,"args":{"vclock_s":0,"vclock_dur_s":1}},
{"name":"compute","cat":"rank","ph":"X","tid":1,"ts":0,"dur":1,"args":{"vclock_s":0,"vclock_dur_s":1}},
{"name":"exchange","cat":"rank","ph":"X","tid":0,"ts":1,"dur":1,"args":{"vclock_s":1,"vclock_dur_s":0.5}},
{"name":"exchange","cat":"rank","ph":"X","tid":1,"ts":1,"dur":1,"args":{"vclock_s":1,"vclock_dur_s":0.5}},
{"name":"update","cat":"rank","ph":"X","tid":0,"ts":2,"dur":1,"args":{"vclock_s":1.5,"vclock_dur_s":0.25}},
{"name":"update","cat":"rank","ph":"X","tid":1,"ts":2,"dur":1,"args":{"vclock_s":1.5,"vclock_dur_s":0.25}},
{"name":"sync","cat":"train","ph":"X","tid":0,"ts":3,"dur":1,"args":{"vclock_s":1,"vclock_dur_s":0.75}},
{"name":"compute","cat":"train","ph":"X","tid":0,"ts":4,"dur":1,"args":{"vclock_s":1.75,"vclock_dur_s":1}},
{"name":"compute","cat":"rank","ph":"X","tid":0,"ts":4,"dur":1,"args":{"vclock_s":1.75,"vclock_dur_s":1}},
{"name":"compute","cat":"rank","ph":"X","tid":1,"ts":4,"dur":1,"args":{"vclock_s":1.75,"vclock_dur_s":1}},
{"name":"exchange","cat":"rank","ph":"X","tid":0,"ts":5,"dur":1,"args":{"vclock_s":2.75,"vclock_dur_s":0.5}},
{"name":"update","cat":"rank","ph":"X","tid":0,"ts":6,"dur":1,"args":{"vclock_s":3.25,"vclock_dur_s":0.25}},
{"name":"sync","cat":"train","ph":"X","tid":0,"ts":7,"dur":1,"args":{"vclock_s":2.75,"vclock_dur_s":0.75}}
],"zipflmDroppedEvents":2}`
	tr, err := Parse(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr)
	if !a.Truncated {
		t.Fatal("dropped events did not mark the analysis truncated")
	}
	if a.Dropped != 2 {
		t.Fatalf("dropped = %d", a.Dropped)
	}
	// Both aggregate steps survive (envelope totals intact) …
	if len(a.Steps) != 2 || a.TotalCompute != 2.0 || a.TotalSync != 1.5 {
		t.Fatalf("steps=%d compute=%v sync=%v", len(a.Steps), a.TotalCompute, a.TotalSync)
	}
	// … but attribution stops at the complete prefix: step 1 has no ranks.
	if a.Steps[0].Straggler < 0 {
		t.Fatal("step 0 lost its attribution")
	}
	if a.Steps[1].Straggler != -1 || a.Steps[1].Ranks != nil {
		t.Fatalf("step 1 attributed beyond the complete prefix: %+v", a.Steps[1])
	}
	var buf bytes.Buffer
	WriteSummary(&buf, tr, a, SummaryOptions{})
	if !strings.Contains(buf.String(), "DROPPED") {
		t.Fatalf("summary does not flag dropped events:\n%s", buf.String())
	}
}

// TestAnalyzeEnvelopeDerived: a trace with only aggregate trainer spans
// (the weak-scaling benchmark shape) still yields steps and totals; a trace
// with only per-rank spans derives the envelope from the rank maxima.
func TestAnalyzeEnvelopeDerived(t *testing.T) {
	// Aggregate-only (weakscale): steps exist, no rank attribution.
	const aggOnly = `{"traceEvents":[
{"name":"compute","cat":"train","ph":"X","tid":0,"ts":0,"dur":1,"args":{"vclock_s":0,"vclock_dur_s":2}},
{"name":"sync","cat":"train","ph":"X","tid":0,"ts":1,"dur":1,"args":{"vclock_s":2,"vclock_dur_s":1}}
]}`
	tr, err := Parse(strings.NewReader(aggOnly))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr)
	if a.EnvelopeDerived || len(a.Steps) != 1 || a.Steps[0].Straggler != -1 ||
		a.TotalCompute != 2 || a.TotalSync != 1 {
		t.Fatalf("aggregate-only analysis = %+v", a)
	}

	// Rank-only: envelope derived from per-rank maxima.
	const rankOnly = `{"traceEvents":[
{"name":"compute","cat":"rank","ph":"X","tid":0,"ts":0,"dur":1,"args":{"vclock_s":0,"vclock_dur_s":1}},
{"name":"compute","cat":"rank","ph":"X","tid":1,"ts":0,"dur":1,"args":{"vclock_s":0,"vclock_dur_s":2}},
{"name":"exchange","cat":"rank","ph":"X","tid":0,"ts":1,"dur":1,"args":{"vclock_s":1,"vclock_dur_s":1.5}},
{"name":"exchange","cat":"rank","ph":"X","tid":1,"ts":1,"dur":1,"args":{"vclock_s":2,"vclock_dur_s":0.5}},
{"name":"update","cat":"rank","ph":"X","tid":0,"ts":2,"dur":1,"args":{"vclock_s":2.5,"vclock_dur_s":0.25}},
{"name":"update","cat":"rank","ph":"X","tid":1,"ts":2,"dur":1,"args":{"vclock_s":2.5,"vclock_dur_s":0.25}}
]}`
	tr2, err := Parse(strings.NewReader(rankOnly))
	if err != nil {
		t.Fatal(err)
	}
	b := Analyze(tr2)
	if !b.EnvelopeDerived || len(b.Steps) != 1 {
		t.Fatalf("rank-only analysis = %+v", b)
	}
	st := b.Steps[0]
	if st.Compute != 2 || st.Sync != 1.75 || st.Straggler != 1 || st.Wire != 0.5 {
		t.Fatalf("derived step = %+v", st)
	}
	if b.TotalCompute != 2 || b.TotalSync != 1.75 {
		t.Fatalf("derived totals = %v / %v", b.TotalCompute, b.TotalSync)
	}
}
