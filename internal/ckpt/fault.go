package ckpt

import (
	"fmt"
	"math"
	"sort"

	"zipflm/internal/rng"
)

// Failure injection for the virtual-clock simulator. A FaultPlan is a
// deterministic, seeded schedule of rank deaths in simulated time: the
// trainer consumes it after every step, and a consumed fault rolls the run
// back to its last checkpoint. Because the plan and the clock are both
// deterministic, a faulty run is exactly reproducible — the property the
// goodput experiment's determinism check asserts.

// Fault is one rank failure at a simulated time.
type Fault struct {
	// Time is the failure instant in virtual seconds.
	Time float64
	// Rank is the dying rank.
	Rank int
}

// FaultPlan is an ordered schedule of failures with a consumption cursor.
type FaultPlan struct {
	events []Fault
	next   int
}

// NewFaultPlan builds a plan from explicit events (copied, sorted by time).
func NewFaultPlan(events []Fault) *FaultPlan {
	ev := append([]Fault(nil), events...)
	sort.Slice(ev, func(i, j int) bool { return ev[i].Time < ev[j].Time })
	return &FaultPlan{events: ev}
}

// PoissonFaultPlan draws failure arrivals as a Poisson process with the
// given cluster-wide MTBF (exponential inter-arrival times, mean mtbf
// seconds) over [0, horizon), assigning each failure a uniform rank — the
// memoryless model Young/Daly interval analysis assumes. The plan is fully
// determined by the seed.
func PoissonFaultPlan(seed uint64, ranks int, mtbf, horizon float64) *FaultPlan {
	if ranks <= 0 || mtbf <= 0 {
		panic(fmt.Sprintf("ckpt: PoissonFaultPlan needs positive ranks (%d) and mtbf (%g)", ranks, mtbf))
	}
	r := rng.New(seed)
	var events []Fault
	t := 0.0
	for {
		// Exponential inter-arrival: −M·ln(1−u), u ∈ [0,1).
		t += -mtbf * math.Log(1-r.Float64())
		if t >= horizon {
			break
		}
		events = append(events, Fault{Time: t, Rank: r.Intn(ranks)})
	}
	return &FaultPlan{events: events}
}

// Next consumes and returns the earliest unconsumed fault with Time ≤ now.
// It returns ok=false when no due fault remains (later faults stay queued
// for future calls with a larger now).
func (p *FaultPlan) Next(now float64) (Fault, bool) {
	if p == nil || p.next >= len(p.events) || p.events[p.next].Time > now {
		return Fault{}, false
	}
	f := p.events[p.next]
	p.next++
	return f, true
}

// Injected returns how many faults have been consumed.
func (p *FaultPlan) Injected() int { return p.next }

// Len returns the total number of scheduled faults.
func (p *FaultPlan) Len() int { return len(p.events) }

// Reset rewinds the consumption cursor so the same plan can replay another
// run.
func (p *FaultPlan) Reset() { p.next = 0 }

// YoungDaly returns the classic optimal checkpoint interval
// τ = √(2·δ·M) for checkpoint write cost δ and mean time between failures
// M, both in seconds (the first-order optimum of periodic-checkpoint
// goodput; Young 1974, Daly 2006). Non-positive inputs return 0.
func YoungDaly(writeSeconds, mtbfSeconds float64) float64 {
	if writeSeconds <= 0 || mtbfSeconds <= 0 {
		return 0
	}
	return math.Sqrt(2 * writeSeconds * mtbfSeconds)
}
