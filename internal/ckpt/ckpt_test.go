package ckpt

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"zipflm/internal/model"
	"zipflm/internal/optim"
)

// testState builds a representative full state: a real model, Adam-style
// optimizer moments, per-rank RNG streams and carried RNN state.
func testState(t *testing.T, step int) *State {
	t.Helper()
	m := model.NewLM(model.Config{Vocab: 40, Dim: 6, Hidden: 8, RNN: model.KindLSTM, Seed: 3})
	var mb bytes.Buffer
	if err := m.Save(&mb); err != nil {
		t.Fatal(err)
	}
	return &State{
		Step:       step,
		LR:         0.173,
		NextDecay:  200,
		Ranks:      2,
		ModelBytes: mb.Bytes(),
		Opt: optim.State{
			Kind:  "adam",
			T:     step,
			Names: []string{"a", "b"},
			M:     [][]float64{{0.1, 0.2}, {0.3}},
			V:     [][]float64{{0.4, 0.5}, {0.6}},
		},
		RNG: [][4]uint64{{1, 2, 3, 4}, {5, 6, 7, 8}},
		RNN: []model.CarriedState{
			{H: []float32{1, 2, 3, 4}, C: []float32{5, 6, 7, 8}, Rows: 1, Cols: 4},
			{H: []float32{9, 10, 11, 12}, C: []float32{13, 14, 15, 16}, Rows: 1, Cols: 4},
		},
	}
}

func encode(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := testState(t, 42)
	got, err := Decode(bytes.NewReader(encode(t, st)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != st.Step || got.LR != st.LR || got.NextDecay != st.NextDecay || got.Ranks != st.Ranks {
		t.Fatalf("scalar fields differ: %+v vs %+v", got, st)
	}
	if !bytes.Equal(got.ModelBytes, st.ModelBytes) {
		t.Error("model bytes differ")
	}
	if got.Opt.Kind != "adam" || got.Opt.T != 42 || got.Opt.M[1][0] != 0.3 {
		t.Errorf("optimizer state differs: %+v", got.Opt)
	}
	if got.RNG[1] != st.RNG[1] {
		t.Errorf("RNG streams differ: %v vs %v", got.RNG, st.RNG)
	}
	if got.RNN[1].C[3] != 16 {
		t.Errorf("carried state differs: %+v", got.RNN)
	}
	lm, err := got.LM()
	if err != nil {
		t.Fatal(err)
	}
	if lm.Cfg.Vocab != 40 {
		t.Errorf("embedded model decodes to vocab %d", lm.Cfg.Vocab)
	}
}

// TestDeterministicBytes is the content-addressability contract: encoding
// the same state twice — and encoding a separately-constructed identical
// state — must produce identical bytes. This is what the sorted
// dense-parameter fix in model.Save exists for.
func TestDeterministicBytes(t *testing.T) {
	a := encode(t, testState(t, 7))
	b := encode(t, testState(t, 7))
	if !bytes.Equal(a, b) {
		t.Fatal("identical states encode to different bytes")
	}
}

// TestOpenRejectsCorruptInputs is the fuzz-style table over damaged files:
// bit flips anywhere in the file, truncations at every region boundary (and
// odd offsets), version skew, and foreign content must all produce an
// error — never a panic, never a partially-valid State.
func TestOpenRejectsCorruptInputs(t *testing.T) {
	good := encode(t, testState(t, 9))
	dir := t.TempDir()

	check := func(name string, raw []byte) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Open panicked: %v", name, r)
			}
		}()
		st, err := Open(path)
		if err == nil {
			t.Errorf("%s: Open accepted damaged input", name)
		}
		if st != nil {
			t.Errorf("%s: Open returned a non-nil state with an error", name)
		}
	}

	// Bit flips: every region of the file (magic, version, length, payload
	// start/middle/end, CRC), one flipped bit each.
	for _, off := range []int{0, 9, 13, 21, len(good) / 2, len(good) - 5, len(good) - 1} {
		raw := append([]byte(nil), good...)
		raw[off] ^= 0x10
		check("bitflip", raw)
	}
	// Truncations: empty, header-only, mid-payload, missing CRC tail.
	for _, n := range []int{0, 4, 8, 12, 20, len(good) / 3, len(good) - 4, len(good) - 1} {
		check("truncated", append([]byte(nil), good[:n]...))
	}
	// Extra trailing bytes break the length/CRC framing too.
	check("padded", append(append([]byte(nil), good...), 0xAA))
	// Version skew: a well-formed file from a future format version.
	{
		raw := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(raw[8:12], Version+1)
		check("future-version", raw)
	}
	// Foreign content: a bare model.Save file is not a full checkpoint.
	{
		m := model.NewLM(model.Config{Vocab: 10, Dim: 4, Hidden: 4, RNN: model.KindLSTM, Seed: 1})
		var mb bytes.Buffer
		if err := m.Save(&mb); err != nil {
			t.Fatal(err)
		}
		check("model-file", mb.Bytes())
	}
	check("garbage", []byte("definitely not a checkpoint, much too short to be"))
}

func TestOpenReportsNotCheckpointForForeignMagic(t *testing.T) {
	raw := bytes.Repeat([]byte{'x'}, 64)
	_, err := Decode(bytes.NewReader(raw))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("bad magic")) {
		t.Fatalf("want ErrNotCheckpoint, got %v", err)
	}
}

func TestWriteFileIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	if err := WriteFile(path, testState(t, 1)); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different state: the new content must land whole.
	if err := WriteFile(path, testState(t, 2)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 2 {
		t.Fatalf("got step %d after overwrite", st.Step)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestDirSaveLoadAndRetention(t *testing.T) {
	d, err := NewDir(t.TempDir(), 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{10, 20, 30, 40, 50, 60} {
		st := testState(t, step)
		if _, err := d.Save(st); err != nil {
			t.Fatal(err)
		}
	}
	steps, err := d.Steps()
	if err != nil {
		t.Fatal(err)
	}
	// Keep-last-2 keeps {50, 60}; keep-every-40 archives {40}.
	want := []int{40, 50, 60}
	if len(steps) != len(want) {
		t.Fatalf("retained %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("retained %v, want %v", steps, want)
		}
	}
	st, err := d.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 60 {
		t.Fatalf("latest is step %d", st.Step)
	}
	if _, err := d.Load(40); err != nil {
		t.Fatalf("archived checkpoint unloadable: %v", err)
	}
}

func TestDirLatestEmpty(t *testing.T) {
	d, err := NewDir(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Latest(); err == nil {
		t.Fatal("Latest on an empty directory must error")
	}
}

func TestPoissonFaultPlanDeterministicAndSpaced(t *testing.T) {
	a := PoissonFaultPlan(11, 8, 100, 10_000)
	b := PoissonFaultPlan(11, 8, 100, 10_000)
	if a.Len() == 0 {
		t.Fatal("no faults drawn over 100 MTBFs")
	}
	if a.Len() != b.Len() {
		t.Fatalf("same seed drew %d vs %d faults", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		fa, _ := a.Next(math.Inf(1))
		fb, _ := b.Next(math.Inf(1))
		if fa != fb {
			t.Fatalf("event %d differs: %+v vs %+v", i, fa, fb)
		}
		if fa.Time < 0 || fa.Time >= 10_000 || fa.Rank < 0 || fa.Rank >= 8 {
			t.Fatalf("event out of range: %+v", fa)
		}
	}
	// Mean inter-arrival within 3σ of the MTBF (σ ≈ M/√n for exponentials).
	mean := 10_000 / float64(a.Len())
	if mean < 60 || mean > 160 {
		t.Errorf("mean inter-arrival %.1f far from MTBF 100", mean)
	}
}

func TestFaultPlanCursor(t *testing.T) {
	p := NewFaultPlan([]Fault{{Time: 5, Rank: 1}, {Time: 2, Rank: 0}, {Time: 9, Rank: 2}})
	if _, ok := p.Next(1.9); ok {
		t.Fatal("no fault due before t=2")
	}
	f, ok := p.Next(6)
	if !ok || f.Time != 2 {
		t.Fatalf("want the t=2 fault first (sorted), got %+v ok=%v", f, ok)
	}
	f, ok = p.Next(6)
	if !ok || f.Time != 5 {
		t.Fatalf("want the t=5 fault next, got %+v ok=%v", f, ok)
	}
	if _, ok := p.Next(6); ok {
		t.Fatal("t=9 fault must stay queued")
	}
	if p.Injected() != 2 {
		t.Fatalf("injected %d", p.Injected())
	}
	p.Reset()
	if p.Injected() != 0 {
		t.Fatal("Reset must rewind the cursor")
	}
}

func TestYoungDaly(t *testing.T) {
	// δ = 2 s, M = 100 s → τ = √400 = 20 s.
	if got := YoungDaly(2, 100); math.Abs(got-20) > 1e-12 {
		t.Fatalf("YoungDaly(2,100) = %v", got)
	}
	if YoungDaly(0, 100) != 0 || YoungDaly(2, 0) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}
