package ckpt

import (
	"bytes"
	"testing"

	"zipflm/internal/compress"
)

// FuzzDecode hammers the checkpoint frame parser with arbitrary bytes plus
// mutations of real encodings. The contract under fuzzing is the one the
// package documents: Decode never panics, and anything it does accept
// re-encodes and re-decodes to an equivalent state (no partially validated
// state escapes). CI runs this with a short -fuzztime on every push; the
// seed corpus below also runs as a plain test.
func FuzzDecode(f *testing.F) {
	// Seeds: a real checkpoint (with compression state, the newest part of
	// the format), its truncations, a header-only prefix, and junk.
	st := fuzzSeedState(f)
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-1])
	f.Add(full[:len(full)/2])
	f.Add(full[:20])
	f.Add([]byte{})
	f.Add([]byte("ZLMCKPT\x00garbage"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected — that's a pass; not panicking is the point
		}
		// Accepted inputs must re-encode and decode back losslessly.
		var again bytes.Buffer
		if err := Encode(&again, st); err != nil {
			t.Fatalf("accepted state fails to re-encode: %v", err)
		}
		st2, err := Decode(bytes.NewReader(again.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded state fails to decode: %v", err)
		}
		if st2.Step != st.Step || st2.Ranks != st.Ranks ||
			len(st2.RNG) != len(st.RNG) || len(st2.Compress) != len(st.Compress) {
			t.Fatalf("round trip changed the state: %+v vs %+v", st2, st)
		}
	})
}

// fuzzSeedState is testState trimmed to what the fuzzer needs, with
// compression carry-over included so the v2 field is in the corpus.
func fuzzSeedState(f *testing.F) *State {
	f.Helper()
	return &State{
		Step:       17,
		LR:         0.1,
		NextDecay:  40,
		Ranks:      2,
		ModelBytes: []byte{1, 2, 3},
		RNG:        [][4]uint64{{1, 2, 3, 4}, {5, 6, 7, 8}},
		Compress: []compress.EngineState{
			{Q8RNG: [4]uint64{9, 9, 9, 9}, Tensors: []compress.TensorState{
				{Name: "lstm.Wx", Residual: []float32{0.5, -0.25}},
			}},
			{Tensors: []compress.TensorState{
				{Name: "lstm.Wx", Residual: []float32{0, 1}, Momentum: []float32{2, 3}},
			}},
		},
	}
}
