// Package ckpt is the fault-tolerance subsystem: full-state training
// checkpoints, a retention-managed on-disk store, and deterministic failure
// injection for the virtual-clock simulator.
//
// At the paper's scale an epoch is tens of hours across up to 128 GPUs —
// rank failures are the norm, and restart-from-scratch is the difference
// between 14.6 h and never finishing. A checkpoint here captures the whole
// training state, not just weights: model parameters (via the model
// package's deterministic sorted encoding), optimizer moments, the global
// step and LR-schedule position, per-rank RNG stream states, and per-rank
// carried recurrent state. Restoring one therefore makes a resumed run
// bit-identical to an uninterrupted one — the correctness contract the
// trainer tests enforce.
//
// The file format is framed for production storage: a magic + version
// header, a length-prefixed payload, and a trailing CRC-32C over
// everything before it, so bit rot, truncation, and version skew are all
// detected on Open (never a panic, never a half-initialized state). Files
// are written atomically (tmp + rename) by WriteFile and the Dir store.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"zipflm/internal/compress"
	"zipflm/internal/model"
	"zipflm/internal/optim"
)

// Version guards the checkpoint file format. Version 2 added the per-rank
// gradient-compression state (error-feedback residuals, momentum
// velocities, quantizer RNG streams); version-1 files — written before
// compression existed — still decode, with no compression state.
const Version = 2

// magic identifies a zipflm full-state checkpoint file.
var magic = [8]byte{'Z', 'L', 'M', 'C', 'K', 'P', 'T', 0}

// crcTable is CRC-32C (Castagnoli), the polynomial storage systems use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNotCheckpoint is returned by Open/Decode when the input does not start
// with the checkpoint magic — callers that accept both full-state
// checkpoints and bare model.Save files key their fallback on it.
var ErrNotCheckpoint = errors.New("ckpt: not a checkpoint file (bad magic)")

// State is the complete training state at a global-step boundary.
// Replicas and optimizer state are identical across ranks between steps
// (the §II-B invariant the trainer asserts), so one copy of each is
// stored; RNG streams and carried recurrent state are per rank.
type State struct {
	// Step is the global training step the state was captured at.
	Step int
	// LR and NextDecay are the LR-decay schedule position.
	LR        float64
	NextDecay int
	// Ranks is the cluster size G of the checkpointing run.
	Ranks int
	// ModelBytes is the model.Save encoding of the (identical) replicas —
	// deterministic bytes thanks to the sorted dense-parameter format.
	ModelBytes []byte
	// Opt is the dense-optimizer state (Adam moments + step counter;
	// empty Kind means the optimizer declared no state).
	Opt optim.State
	// RNG holds each rank's model RNG stream (dropout masks), in rank
	// order.
	RNG [][4]uint64
	// RNN holds each rank's carried recurrent state for stateful
	// (truncated-BPTT) runs; nil for stateless runs.
	RNN []model.CarriedState
	// Compress holds each rank's gradient-compression carry-over
	// (error-feedback residuals, momentum velocities, quantizer streams),
	// in rank order; nil when the run trains uncompressed. Unlike weights
	// and optimizer moments, this state diverges across ranks — each rank
	// withholds different gradient mass — so all G copies are stored.
	Compress []compress.EngineState
}

// LM decodes the embedded model into a fresh replica.
func (s *State) LM() (*model.LM, error) {
	return model.Load(bytes.NewReader(s.ModelBytes))
}

// Encode writes st to w in the framed format:
//
//	magic[8] | version u32 | payloadLen u64 | payload | crc32c u32
//
// The payload is a gob encoding of State; every field is a slice or
// scalar (no maps), so identical states produce identical bytes.
func Encode(w io.Writer, st *State) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("ckpt: encode: %w", err)
	}
	var head bytes.Buffer
	head.Write(magic[:])
	binary.Write(&head, binary.LittleEndian, uint32(Version))
	binary.Write(&head, binary.LittleEndian, uint64(payload.Len()))

	crc := crc32.New(crcTable)
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(head.Bytes()); err != nil {
		return fmt.Errorf("ckpt: write: %w", err)
	}
	if _, err := mw.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("ckpt: write: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("ckpt: write: %w", err)
	}
	return nil
}

// Decode reads a checkpoint written by Encode, verifying magic, version,
// length, and CRC before any of the payload is interpreted. Corrupt
// (bit-flipped), truncated, and future-version inputs return errors.
func Decode(r io.Reader) (*State, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read: %w", err)
	}
	const headLen = 8 + 4 + 8
	if len(raw) < headLen+4 {
		return nil, fmt.Errorf("ckpt: truncated: %d bytes is shorter than the smallest checkpoint", len(raw))
	}
	if !bytes.Equal(raw[:8], magic[:]) {
		return nil, ErrNotCheckpoint
	}
	version := binary.LittleEndian.Uint32(raw[8:12])
	if version < 1 || version > Version {
		return nil, fmt.Errorf("ckpt: version %d, this build reads 1..%d", version, Version)
	}
	payloadLen := binary.LittleEndian.Uint64(raw[12:headLen])
	if payloadLen != uint64(len(raw)-headLen-4) {
		return nil, fmt.Errorf("ckpt: truncated or padded: header claims %d payload bytes, file carries %d",
			payloadLen, len(raw)-headLen-4)
	}
	body := raw[:len(raw)-4]
	wantCRC := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.Checksum(body, crcTable); got != wantCRC {
		return nil, fmt.Errorf("ckpt: CRC mismatch (stored %08x, computed %08x): checkpoint is corrupt", wantCRC, got)
	}
	st := &State{}
	if err := gob.NewDecoder(bytes.NewReader(raw[headLen : len(raw)-4])).Decode(st); err != nil {
		return nil, fmt.Errorf("ckpt: decode payload: %w", err)
	}
	if st.Ranks <= 0 || st.Step < 0 {
		return nil, fmt.Errorf("ckpt: invalid state (ranks %d, step %d)", st.Ranks, st.Step)
	}
	if len(st.RNG) != 0 && len(st.RNG) != st.Ranks {
		return nil, fmt.Errorf("ckpt: %d RNG streams for %d ranks", len(st.RNG), st.Ranks)
	}
	if len(st.RNN) != 0 && len(st.RNN) != st.Ranks {
		return nil, fmt.Errorf("ckpt: %d carried states for %d ranks", len(st.RNN), st.Ranks)
	}
	if len(st.Compress) != 0 && len(st.Compress) != st.Ranks {
		return nil, fmt.Errorf("ckpt: %d compression states for %d ranks", len(st.Compress), st.Ranks)
	}
	return st, nil
}

// WriteFile writes st to path atomically: the bytes land in a temporary
// file in the same directory, are synced, and are renamed into place, so a
// crash mid-write can never leave a half-written checkpoint under the
// final name.
func WriteFile(path string, st *State) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Encode(tmp, st); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: rename into place: %w", err)
	}
	return nil
}

// Open reads and validates the checkpoint at path.
func Open(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	st, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return st, nil
}
