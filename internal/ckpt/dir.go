package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"zipflm/internal/telemetry"
)

// ErrEmpty is returned by Latest when the directory holds no checkpoints.
var ErrEmpty = errors.New("ckpt: no checkpoints in directory")

// Dir is an on-disk checkpoint store: one file per checkpointed step,
// written atomically, with a retention policy applied after every save.
//
// Retention follows the production convention: keep the most recent
// KeepLast checkpoints for rollback, and additionally keep every
// checkpoint whose step is a multiple of KeepEvery as a permanent archive
// (0 disables archiving). Everything else is deleted.
type Dir struct {
	path      string
	keepLast  int
	keepEvery int

	// Telemetry instruments, nil (no-op) until Instrument is called.
	saveDur  *telemetry.Histogram
	loadDur  *telemetry.Histogram
	saves    *telemetry.Counter
	loads    *telemetry.Counter
	savedLen *telemetry.Histogram
}

// Instrument wires the store's save/restore paths into reg
// (zipflm_ckpt_save_seconds, zipflm_ckpt_load_seconds,
// zipflm_ckpt_saves_total, zipflm_ckpt_loads_total,
// zipflm_ckpt_save_bytes). A nil reg leaves the store uninstrumented.
func (d *Dir) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	d.saveDur = reg.Duration("zipflm_ckpt_save_seconds")
	d.loadDur = reg.Duration("zipflm_ckpt_load_seconds")
	d.saves = reg.Counter("zipflm_ckpt_saves_total")
	d.loads = reg.Counter("zipflm_ckpt_loads_total")
	d.savedLen = reg.Histogram("zipflm_ckpt_save_bytes", "bytes", 1)
}

// NewDir opens (creating if needed) a checkpoint directory. keepLast ≤ 0
// defaults to 3; keepEvery 0 disables the archive tier.
func NewDir(path string, keepLast, keepEvery int) (*Dir, error) {
	if keepLast <= 0 {
		keepLast = 3
	}
	if keepEvery < 0 {
		return nil, fmt.Errorf("ckpt: negative KeepEvery %d", keepEvery)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Dir{path: path, keepLast: keepLast, keepEvery: keepEvery}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// fileFor returns the canonical file name for a step.
func (d *Dir) fileFor(step int) string {
	return filepath.Join(d.path, fmt.Sprintf("step-%012d.ckpt", step))
}

// Save writes st under its step's canonical name (atomically, replacing
// any previous checkpoint of the same step) and applies retention. It
// returns the written path.
func (d *Dir) Save(st *State) (string, error) {
	tm := d.saveDur.Start()
	path := d.fileFor(st.Step)
	if err := WriteFile(path, st); err != nil {
		return "", err
	}
	if err := d.retain(); err != nil {
		return "", err
	}
	tm.Stop()
	d.saves.Inc()
	if d.savedLen != nil {
		if fi, err := os.Stat(path); err == nil {
			d.savedLen.Record(fi.Size())
		}
	}
	return path, nil
}

// Steps lists the checkpointed steps in ascending order. Only canonical
// file names count: Sscanf-style loose matching would list stray files
// ("step-5.ckpt" unpadded, "….ckpt.bak" backups) as steps that Load could
// never open — and retention could then delete real checkpoints while
// counting phantoms.
func (d *Dir) Steps() ([]int, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var steps []int
	for _, e := range entries {
		step, ok := parseStepName(e.Name())
		if ok {
			steps = append(steps, step)
		}
	}
	sort.Ints(steps)
	return steps, nil
}

// parseStepName inverts fileFor exactly.
func parseStepName(name string) (int, bool) {
	const prefix, suffix = "step-", ".ckpt"
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	// %012d pads to at least 12 digits (more only for absurdly large steps).
	if len(name) != len(prefix)+len(digits)+len(suffix) || len(digits) < 12 {
		return 0, false
	}
	step := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		step = step*10 + int(c-'0')
	}
	return step, true
}

// Load opens the checkpoint for a specific step.
func (d *Dir) Load(step int) (*State, error) {
	tm := d.loadDur.Start()
	st, err := Open(d.fileFor(step))
	if err != nil {
		return nil, err
	}
	tm.Stop()
	d.loads.Inc()
	return st, nil
}

// Latest opens the newest checkpoint, or ErrEmpty when there is none.
func (d *Dir) Latest() (*State, error) {
	steps, err := d.Steps()
	if err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("%w (%s)", ErrEmpty, d.path)
	}
	return d.Load(steps[len(steps)-1])
}

// retain deletes checkpoints that are neither among the KeepLast most
// recent nor on the KeepEvery archive grid.
func (d *Dir) retain() error {
	steps, err := d.Steps()
	if err != nil {
		return err
	}
	if len(steps) <= d.keepLast {
		return nil
	}
	for _, step := range steps[:len(steps)-d.keepLast] {
		if d.keepEvery > 0 && step%d.keepEvery == 0 {
			continue
		}
		if err := os.Remove(d.fileFor(step)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("ckpt: retention: %w", err)
		}
	}
	return nil
}
