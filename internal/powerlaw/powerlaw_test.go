package powerlaw

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"zipflm/internal/rng"
)

func TestExactPowerLawRecovered(t *testing.T) {
	// y = 7.02 * x^0.64, the exact annotation of Figure 1.
	xs := []float64{5e2, 5e3, 5e4, 5e5, 5e6, 5e7}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 7.02 * math.Pow(x, 0.64)
	}
	fit, err := FitXY(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-0.64) > 1e-9 {
		t.Errorf("alpha = %v, want 0.64", fit.Alpha)
	}
	if math.Abs(fit.C-7.02) > 1e-6 {
		t.Errorf("C = %v, want 7.02", fit.C)
	}
	if fit.R2 < 1-1e-12 {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
}

func TestNoisyFitApproximate(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = math.Pow(10, 2+float64(i)*0.1)
		ys[i] = 3 * math.Pow(xs[i], 0.7) * math.Exp(r.NormFloat64()*0.05)
	}
	fit, err := FitXY(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-0.7) > 0.03 {
		t.Errorf("alpha = %v, want ~0.7", fit.Alpha)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R² = %v, want > 0.98 for mild noise", fit.R2)
	}
}

func TestSkipsNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 10, 100, 1000}
	ys := []float64{5, 5, 2, 4, 8}
	fit, err := FitXY(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 {
		t.Errorf("used %d points, want 3", fit.N)
	}
	// y doubles per decade => alpha = log10(2).
	if math.Abs(fit.Alpha-math.Log10(2)) > 1e-9 {
		t.Errorf("alpha = %v, want %v", fit.Alpha, math.Log10(2))
	}
}

func TestErrors(t *testing.T) {
	if _, err := FitXY([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := FitXY([]float64{1}, []float64{1}); err != ErrInsufficientData {
		t.Errorf("single point: got %v, want ErrInsufficientData", err)
	}
	if _, err := FitXY([]float64{5, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x must error")
	}
}

func TestFitRankFrequencyZipf(t *testing.T) {
	// A synthetic corpus with frequency ∝ 1/rank must recover α ≈ −1.
	var tokens []int
	const types = 200
	for w := 0; w < types; w++ {
		n := 2000 / (w + 1)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			tokens = append(tokens, w)
		}
	}
	fit, err := FitRankFrequency(tokens)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-(-1)) > 0.05 {
		t.Errorf("alpha = %v, want ≈ -1", fit.Alpha)
	}
	if fit.N != types {
		t.Errorf("used %d rank points, want %d", fit.N, types)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R² = %v, want near 1 for exact Zipf", fit.R2)
	}
}

// TestFitRankFrequencyDegenerate covers the corpora a fit cannot exist for:
// an empty stream and a single-word-type stream both leave fewer than two
// rank points, and must report ErrInsufficientData instead of fitting
// garbage or panicking.
func TestFitRankFrequencyDegenerate(t *testing.T) {
	cases := map[string][]int{
		"empty corpus":        nil,
		"zero-length slice":   {},
		"single-token corpus": {3},
		"one word type":       {5, 5, 5, 5, 5, 5},
	}
	for name, tokens := range cases {
		if _, err := FitRankFrequency(tokens); err != ErrInsufficientData {
			t.Errorf("%s: got %v, want ErrInsufficientData", name, err)
		}
	}
}

// TestFitRankFrequencyTwoTypes is the smallest fittable corpus.
func TestFitRankFrequencyTwoTypes(t *testing.T) {
	fit, err := FitRankFrequency([]int{1, 1, 1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 2 {
		t.Fatalf("used %d points, want 2", fit.N)
	}
	// freq(1)=4 at rank 1, freq(2)=2 at rank 2: alpha = log(2/4)/log(2) = -1.
	if math.Abs(fit.Alpha-(-1)) > 1e-9 {
		t.Errorf("alpha = %v, want -1", fit.Alpha)
	}
}

func TestPredictInverse(t *testing.T) {
	fit := Fit{Alpha: 0.64, C: 7.02}
	if got := fit.Predict(1); math.Abs(got-7.02) > 1e-12 {
		t.Errorf("Predict(1) = %v", got)
	}
	x := 4e7
	want := 7.02 * math.Pow(x, 0.64)
	if got := fit.Predict(x); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Predict(%v) = %v, want %v", x, got, want)
	}
}

func TestStringFormat(t *testing.T) {
	fit := Fit{Alpha: 0.64, C: 7.02, R2: 0.999}
	s := fit.String()
	if !strings.Contains(s, "7.02") || !strings.Contains(s, "0.64") {
		t.Errorf("String() = %q", s)
	}
}

// TestFitRecoveryProperty: for any (alpha, C) in a reasonable band, a
// noiseless fit must recover the parameters.
func TestFitRecoveryProperty(t *testing.T) {
	f := func(aRaw, cRaw uint16) bool {
		alpha := 0.1 + float64(aRaw%150)/100 // 0.1 .. 1.59
		c := 0.5 + float64(cRaw%100)/10      // 0.5 .. 10.4
		xs := []float64{10, 100, 1e3, 1e4, 1e5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c * math.Pow(x, alpha)
		}
		fit, err := FitXY(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Alpha-alpha) < 1e-6 && math.Abs(fit.C-c)/c < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
