// Package powerlaw fits y = C * x^alpha relations by least squares in
// log-log space. The paper's central empirical observation — Figure 1's
// type-token law U ∝ N^0.64 with R² = 1.00 — is produced by exactly this
// fit, and the asymptotic complexity claims of §III-A plug the fitted
// exponent alpha into Θ((GK)^alpha · ((GK)^(1-alpha) + D)).
package powerlaw

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Fit is the result of a power-law regression y = C * x^Alpha.
type Fit struct {
	// Alpha is the fitted exponent (slope in log-log space).
	Alpha float64
	// C is the fitted prefactor (exp of the log-log intercept).
	C float64
	// R2 is the coefficient of determination in log-log space.
	R2 float64
	// N is the number of points used.
	N int
}

// ErrInsufficientData is returned when fewer than two usable points exist.
var ErrInsufficientData = errors.New("powerlaw: need at least 2 positive points")

// FitXY fits y = C*x^alpha to the given points. Points with non-positive x
// or y are skipped (logs are undefined there). Returns
// ErrInsufficientData when fewer than two usable points remain.
func FitXY(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("powerlaw: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy, syy float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		syy += ly * ly
		n++
	}
	if n < 2 {
		return Fit{}, ErrInsufficientData
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return Fit{}, errors.New("powerlaw: degenerate x values")
	}
	alpha := (fn*sxy - sx*sy) / den
	intercept := (sy - alpha*sx) / fn

	// R² = 1 - SS_res/SS_tot in log space.
	meanY := sy / fn
	ssTot := syy - fn*meanY*meanY
	// SS_res = sum((ly - (alpha*lx + b))^2); expand using accumulated sums.
	ssRes := syy - 2*alpha*sxy - 2*intercept*sy + alpha*alpha*sxx + 2*alpha*intercept*sx + fn*intercept*intercept
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
		if r2 < 0 {
			r2 = 0
		}
	}
	return Fit{Alpha: alpha, C: math.Exp(intercept), R2: r2, N: n}, nil
}

// FitRankFrequency fits Zipf's law to a token stream: word frequencies are
// counted, ranked descending (ties broken by word id so the ranking is
// deterministic), and frequency = C·rank^Alpha is fitted in log-log space —
// Alpha near −1 is the classic Zipf shape the paper's techniques exploit.
// Degenerate streams (empty, or a single word type, leaving fewer than two
// rank points) return ErrInsufficientData.
func FitRankFrequency(tokens []int) (Fit, error) {
	counts := make(map[int]int, len(tokens))
	for _, w := range tokens {
		counts[w]++
	}
	if len(counts) < 2 {
		return Fit{}, ErrInsufficientData
	}
	type wc struct{ word, n int }
	freq := make([]wc, 0, len(counts))
	for w, n := range counts {
		freq = append(freq, wc{w, n})
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].n != freq[j].n {
			return freq[i].n > freq[j].n
		}
		return freq[i].word < freq[j].word
	})
	xs := make([]float64, len(freq))
	ys := make([]float64, len(freq))
	for i, f := range freq {
		xs[i] = float64(i + 1)
		ys[i] = float64(f.n)
	}
	return FitXY(xs, ys)
}

// Predict evaluates the fitted law at x.
func (f Fit) Predict(x float64) float64 {
	return f.C * math.Pow(x, f.Alpha)
}

// String formats the fit the way the paper annotates Figure 1
// ("y = 7.02x^0.64, R² = 1.00").
func (f Fit) String() string {
	return fmt.Sprintf("y = %.2fx^%.2f, R² = %.2f", f.C, f.Alpha, f.R2)
}
