// Package cluster simulates the paper's GPU cluster: a set of devices, one
// goroutine per rank, each with a byte-accurate memory accountant and a FLOP
// counter. The paper's Table II hardware (GeForce GTX Titan X, 12 GB HBM2,
// 6.1 TFLOP/s peak) is the default device profile.
//
// The accountant is what lets the reproduction show the paper's central
// scaling failure honestly: the baseline ALLGATHER exchange allocates
// Θ(G·K·D) scratch per GPU and runs out of the 12 GB budget beyond 24 GPUs
// (Tables III and IV), while the uniqueness exchange stays near-flat.
package cluster

import (
	"fmt"
	"sync"

	"zipflm/internal/perfmodel"
	"zipflm/internal/vclock"
)

// Titan X profile from Table II.
const (
	// TitanXMemoryBytes is the usable device memory (12 GB HBM2).
	TitanXMemoryBytes = 12 << 30
	// TitanXPeakFLOPS is the FP32 peak (6.1 TFLOP/s).
	TitanXPeakFLOPS = 6.1e12
)

// ErrOutOfMemory is returned when an allocation exceeds device capacity.
// It mirrors the "*" entries (out of GPU memory) in Tables III and IV.
type ErrOutOfMemory struct {
	Device   int
	Want     int64
	Live     int64
	Capacity int64
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("cluster: device %d out of memory (want %d, live %d, capacity %d)",
		e.Device, e.Want, e.Live, e.Capacity)
}

// Device is one simulated GPU: a memory accountant, a FLOP counter, and a
// virtual clock. Methods are safe for use from the device's own rank
// goroutine; the simulator gives each rank exclusive ownership of its
// device.
//
// The clock is pay-for-what-you-use: it exists on every device but only
// moves when something charges it — compute via AdvanceCompute, memory
// traffic via AdvanceMemory, collectives via the communicator's CostModel
// (which shares these same clocks). Runs that never charge it behave
// exactly as before.
type Device struct {
	// ID is the rank of this device in the cluster.
	ID int
	// Capacity is the memory budget in bytes (0 = unlimited).
	Capacity int64
	// Clock is the device's virtual clock in simulated seconds.
	Clock *vclock.Clock

	mu    sync.Mutex
	live  int64
	peak  int64
	flops int64
}

// NewDevice returns a device with the given memory capacity in bytes;
// capacity 0 disables the OOM check (useful in unit tests).
func NewDevice(id int, capacity int64) *Device {
	return &Device{ID: id, Capacity: capacity, Clock: new(vclock.Clock)}
}

// AdvanceCompute charges n floating-point operations to both the FLOP
// counter and the virtual clock, at the hardware profile's achieved
// fraction of peak (frac ≤ 0 means peak).
func (d *Device) AdvanceCompute(n int64, hw perfmodel.Hardware, frac float64) {
	d.AddFLOPs(n)
	d.Clock.Advance(hw.ComputeSeconds(float64(n), frac))
}

// AdvanceMemory charges n bytes of device-memory traffic (e.g. the
// embedding scatter-add's read-modify-write volume) to the virtual clock at
// the profile's memory bandwidth.
func (d *Device) AdvanceMemory(n int64, hw perfmodel.Hardware) {
	d.Clock.Advance(hw.MemorySeconds(n))
}

// Alloc records an allocation of n bytes, returning ErrOutOfMemory when the
// budget would be exceeded. The bytes are logical — callers may or may not
// materialize a real Go slice of that size (full-paper-scale experiments
// account tens of GB without allocating them).
func (d *Device) Alloc(n int64) error {
	if n < 0 {
		panic("cluster: negative allocation")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Capacity > 0 && d.live+n > d.Capacity {
		return &ErrOutOfMemory{Device: d.ID, Want: n, Live: d.live, Capacity: d.Capacity}
	}
	d.live += n
	if d.live > d.peak {
		d.peak = d.live
	}
	return nil
}

// Free releases n previously allocated bytes.
func (d *Device) Free(n int64) {
	if n < 0 {
		panic("cluster: negative free")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.live -= n
	if d.live < 0 {
		panic(fmt.Sprintf("cluster: device %d freed more than allocated", d.ID))
	}
}

// Live returns the bytes currently allocated.
func (d *Device) Live() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.live
}

// Peak returns the high-water mark of allocated bytes.
func (d *Device) Peak() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// ResetPeak sets the high-water mark back to the current live bytes.
func (d *Device) ResetPeak() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peak = d.live
}

// AddFLOPs accumulates n floating-point operations on this device.
func (d *Device) AddFLOPs(n int64) {
	if n < 0 {
		panic("cluster: negative FLOPs")
	}
	d.mu.Lock()
	d.flops += n
	d.mu.Unlock()
}

// FLOPs returns the accumulated operation count.
func (d *Device) FLOPs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flops
}

// Cluster is a fixed set of devices executed as one goroutine per rank.
type Cluster struct {
	Devices []*Device
}

// New returns a cluster of g devices each with the given memory capacity.
func New(g int, capacity int64) *Cluster {
	if g <= 0 {
		panic("cluster: need at least one device")
	}
	c := &Cluster{Devices: make([]*Device, g)}
	for i := range c.Devices {
		c.Devices[i] = NewDevice(i, capacity)
	}
	return c
}

// Size returns the number of devices.
func (c *Cluster) Size() int { return len(c.Devices) }

// Run executes fn concurrently on every rank and waits for all to finish.
// The first non-nil error (by rank order) is returned; other ranks still run
// to completion so collective operations they participate in do not deadlock.
func (c *Cluster) Run(fn func(rank int, dev *Device) error) error {
	errs := make([]error, len(c.Devices))
	var wg sync.WaitGroup
	for r, d := range c.Devices {
		wg.Add(1)
		go func(rank int, dev *Device) {
			defer wg.Done()
			errs[rank] = fn(rank, dev)
		}(r, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Clocks returns every device's virtual clock in rank order — the slice a
// collective.CostModel is attached with.
func (c *Cluster) Clocks() []*vclock.Clock {
	out := make([]*vclock.Clock, len(c.Devices))
	for i, d := range c.Devices {
		out[i] = d.Clock
	}
	return out
}

// MaxClock returns the latest virtual time across the cluster — the
// simulated wall-clock of a bulk-synchronous run (all ranks finish when the
// slowest does).
func (c *Cluster) MaxClock() float64 {
	return vclock.MaxNow(c.Clocks())
}

// MaxPeak returns the largest per-device peak across the cluster, i.e. the
// "peak GPU memory in use" number §V-A reports.
func (c *Cluster) MaxPeak() int64 {
	var m int64
	for _, d := range c.Devices {
		if p := d.Peak(); p > m {
			m = p
		}
	}
	return m
}

// TotalFLOPs sums the FLOP counters across devices.
func (c *Cluster) TotalFLOPs() int64 {
	var t int64
	for _, d := range c.Devices {
		t += d.FLOPs()
	}
	return t
}
