package cluster

import (
	"errors"
	"sync"
	"testing"

	"zipflm/internal/perfmodel"
)

func TestAllocFreePeak(t *testing.T) {
	d := NewDevice(0, 1000)
	if err := d.Alloc(400); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(500); err != nil {
		t.Fatal(err)
	}
	if d.Live() != 900 || d.Peak() != 900 {
		t.Fatalf("live=%d peak=%d, want 900/900", d.Live(), d.Peak())
	}
	d.Free(500)
	if d.Live() != 400 || d.Peak() != 900 {
		t.Fatalf("after free: live=%d peak=%d, want 400/900", d.Live(), d.Peak())
	}
	d.ResetPeak()
	if d.Peak() != 400 {
		t.Fatalf("ResetPeak: peak=%d, want 400", d.Peak())
	}
}

func TestOOM(t *testing.T) {
	d := NewDevice(3, 100)
	if err := d.Alloc(100); err != nil {
		t.Fatal(err)
	}
	err := d.Alloc(1)
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	if oom.Device != 3 || oom.Want != 1 || oom.Live != 100 || oom.Capacity != 100 {
		t.Errorf("OOM fields: %+v", oom)
	}
	if oom.Error() == "" {
		t.Error("empty error string")
	}
	// Failed alloc must not change accounting.
	if d.Live() != 100 {
		t.Errorf("failed alloc changed live to %d", d.Live())
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	d := NewDevice(0, 0)
	if err := d.Alloc(1 << 50); err != nil {
		t.Fatalf("unlimited device refused allocation: %v", err)
	}
}

func TestFreeUnderflowPanics(t *testing.T) {
	d := NewDevice(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("over-free did not panic")
		}
	}()
	d.Free(1)
}

func TestNegativePanics(t *testing.T) {
	d := NewDevice(0, 0)
	for _, f := range []func(){
		func() { d.Alloc(-1) },
		func() { d.Free(-1) },
		func() { d.AddFLOPs(-1) },
		func() { New(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFLOPCounter(t *testing.T) {
	d := NewDevice(0, 0)
	d.AddFLOPs(100)
	d.AddFLOPs(23)
	if d.FLOPs() != 123 {
		t.Errorf("FLOPs = %d, want 123", d.FLOPs())
	}
}

func TestClusterRunAllRanks(t *testing.T) {
	c := New(8, 0)
	var mu sync.Mutex
	seen := make(map[int]bool)
	err := c.Run(func(rank int, dev *Device) error {
		mu.Lock()
		seen[rank] = true
		mu.Unlock()
		dev.AddFLOPs(int64(rank))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("ran %d ranks, want 8", len(seen))
	}
	if c.TotalFLOPs() != 0+1+2+3+4+5+6+7 {
		t.Errorf("TotalFLOPs = %d", c.TotalFLOPs())
	}
}

func TestClusterRunErrorPropagates(t *testing.T) {
	c := New(4, 0)
	sentinel := errors.New("boom")
	err := c.Run(func(rank int, dev *Device) error {
		if rank == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestMaxPeak(t *testing.T) {
	c := New(3, 0)
	_ = c.Devices[0].Alloc(10)
	_ = c.Devices[1].Alloc(500)
	_ = c.Devices[2].Alloc(300)
	if got := c.MaxPeak(); got != 500 {
		t.Errorf("MaxPeak = %d, want 500", got)
	}
}

func TestTitanXProfile(t *testing.T) {
	if TitanXMemoryBytes != 12<<30 {
		t.Error("Titan X memory must be 12 GB (Table II)")
	}
	if TitanXPeakFLOPS != 6.1e12 {
		t.Error("Titan X peak must be 6.1 TFLOP/s (Table II)")
	}
}

func TestDeviceClock(t *testing.T) {
	hw := perfmodel.TitanX()
	c := New(2, 0)
	if c.MaxClock() != 0 {
		t.Fatalf("fresh cluster clock at %v", c.MaxClock())
	}
	// 6.1e12 FLOPs at half efficiency: 2 simulated seconds, and the FLOP
	// counter moves with the clock.
	c.Devices[0].AdvanceCompute(int64(hw.PeakFLOPS), hw, 0.5)
	if got := c.Devices[0].Clock.Now(); got < 1.999 || got > 2.001 {
		t.Errorf("compute advanced clock to %v, want 2", got)
	}
	if c.Devices[0].FLOPs() != int64(hw.PeakFLOPS) {
		t.Errorf("FLOP counter at %d", c.Devices[0].FLOPs())
	}
	// MemBW bytes: one simulated second on device 1.
	c.Devices[1].AdvanceMemory(int64(hw.MemBW), hw)
	if got := c.Devices[1].Clock.Now(); got < 0.999 || got > 1.001 {
		t.Errorf("memory advanced clock to %v, want 1", got)
	}
	if got := c.MaxClock(); got < 1.999 || got > 2.001 {
		t.Errorf("MaxClock = %v, want 2", got)
	}
	if len(c.Clocks()) != 2 || c.Clocks()[0] != c.Devices[0].Clock {
		t.Error("Clocks() must expose the devices' clocks in rank order")
	}
}
