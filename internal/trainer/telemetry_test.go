package trainer

import (
	"bytes"
	"io"
	"testing"
	"time"

	"zipflm/internal/core"
	"zipflm/internal/perfmodel"
	"zipflm/internal/telemetry"
	"zipflm/internal/traceview"
)

// TestTelemetryBitIdentity: the same run with telemetry, tracing, and the
// flight recorder on must produce bit-identical weights and losses to the
// uninstrumented run — observation never perturbs computation.
func TestTelemetryBitIdentity(t *testing.T) {
	train, valid := smallData(60, 8000, 1)
	run := func(reg *telemetry.Registry, tr *telemetry.Tracer, fl *telemetry.Flight) (Result, *Trainer) {
		cfg := smallConfig(2, core.UniqueExchange{})
		cfg.Telemetry = reg
		cfg.Trace = tr
		cfg.Flight = fl
		// In-memory checkpoints every few steps so the flight recorder has
		// something to log; identical in both legs, so bit-identity still
		// proves observation changed nothing.
		cfg.CheckpointEvery = 5
		trn, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		res, err := trn.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res, trn
	}

	plainRes, plainTr := run(nil, nil, nil)
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)
	flight := telemetry.NewFlight(64)
	flight.SetSink(io.Discard)
	obsRes, obsTr := run(reg, tracer, flight)

	if plainRes.FinalLoss != obsRes.FinalLoss {
		t.Fatalf("final loss diverged: %v (off) != %v (on)", plainRes.FinalLoss, obsRes.FinalLoss)
	}
	a, b := plainTr.Model(0), obsTr.Model(0)
	pa, pb := a.DenseParams(), b.DenseParams()
	for i := range pa {
		for j := range pa[i].Value {
			if pa[i].Value[j] != pb[i].Value[j] {
				t.Fatalf("weight %s[%d] diverged with telemetry on", pa[i].Name, j)
			}
		}
	}

	// And the instruments actually observed the run.
	steps := reg.Counter("zipflm_train_steps_total").Value()
	if steps != int64(obsRes.Stats.Steps) {
		t.Fatalf("steps counter %d != result steps %d", steps, obsRes.Stats.Steps)
	}
	if got := reg.Duration("zipflm_train_compute_seconds").Count(); got != steps {
		t.Fatalf("compute histogram has %d observations, want %d", got, steps)
	}
	arName := telemetry.Label(telemetry.Label("zipflm_collective_calls_total", "op", "allreduce"), "wire", "fp32")
	if reg.Counter(arName).Value() == 0 {
		t.Fatal("communicator telemetry not attached: no all-reduce calls recorded")
	}
	if tracer.Len() == 0 {
		t.Fatal("tracer recorded no spans")
	}
	if flight.Recorded() == 0 {
		t.Fatal("flight recorder saw no events (checkpoints should log)")
	}
}

// TestTraceVirtualDurationsSumToStepStats: the acceptance contract — the
// trace's per-phase virtual durations, summed in record order, reproduce
// the trainer's SimComputeSeconds / SimSyncSeconds bitwise (Run accumulates
// the identical float64 values in the identical order).
func TestTraceVirtualDurationsSumToStepStats(t *testing.T) {
	hw := perfmodel.TitanX()
	cfg, train, valid := simConfig(&hw)
	tracer := telemetry.NewTracer(0)
	cfg.Trace = tracer
	cfg.Telemetry = telemetry.NewRegistry()
	trn, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trn.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SimComputeSeconds <= 0 || res.Stats.SimSyncSeconds <= 0 {
		t.Fatalf("expected positive virtual phase times, got %v/%v",
			res.Stats.SimComputeSeconds, res.Stats.SimSyncSeconds)
	}

	// Sum the aggregate (cat "train") spans only: per-rank spans reuse the
	// name "compute" under cat "rank" and would double-count.
	var vCompute, vSync float64
	for _, e := range tracer.Events() {
		if e.Cat != "train" {
			continue
		}
		switch e.Name {
		case "compute":
			vCompute += e.VDur
		case "sync":
			vSync += e.VDur
		}
	}
	if vCompute != res.Stats.SimComputeSeconds {
		t.Errorf("trace compute vdur sum %v != SimComputeSeconds %v (must be bitwise equal)",
			vCompute, res.Stats.SimComputeSeconds)
	}
	if vSync != res.Stats.SimSyncSeconds {
		t.Errorf("trace sync vdur sum %v != SimSyncSeconds %v (must be bitwise equal)",
			vSync, res.Stats.SimSyncSeconds)
	}
}

// TestTraceviewReconcilesThroughFile: the full acceptance pipeline — run a
// priced training job, write the Chrome trace to JSON, parse and analyze it
// with traceview, and require the analyzer's critical-path totals to equal
// the trainer's own SimComputeSeconds / SimSyncSeconds bitwise.
// encoding/json round-trips float64 exactly, and Analyze sums the aggregate
// spans in record order (a single tid-0 stream, so record order is step
// order) — the same order Run accumulated them in.
func TestTraceviewReconcilesThroughFile(t *testing.T) {
	hw := perfmodel.TitanX()
	cfg, train, valid := simConfig(&hw)
	tracer := telemetry.NewTracer(0)
	cfg.Trace = tracer
	trn, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trn.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	tr, err := traceview.Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	a := traceview.Analyze(tr)

	if a.TotalCompute != res.Stats.SimComputeSeconds {
		t.Errorf("analyzer compute %v != SimComputeSeconds %v (must be bitwise equal)",
			a.TotalCompute, res.Stats.SimComputeSeconds)
	}
	if a.TotalSync != res.Stats.SimSyncSeconds {
		t.Errorf("analyzer sync %v != SimSyncSeconds %v (must be bitwise equal)",
			a.TotalSync, res.Stats.SimSyncSeconds)
	}
	if len(a.Steps) != res.Stats.Steps {
		t.Errorf("analyzer found %d steps, trainer ran %d", len(a.Steps), res.Stats.Steps)
	}
	for i, st := range a.Steps {
		if st.Straggler < 0 {
			t.Fatalf("step %d has no straggler attribution (per-rank spans missing?)", i)
		}
	}

	// Determinism of the analysis itself: analyzing the same trace twice
	// (fresh parse each time) yields identical attribution.
	tr2, err := traceview.Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	b := traceview.Analyze(tr2)
	if b.TotalCompute != a.TotalCompute || b.TotalSync != a.TotalSync || len(b.Steps) != len(a.Steps) {
		t.Fatal("re-analysis of the same trace diverged")
	}
	for i := range a.Steps {
		if a.Steps[i].Straggler != b.Steps[i].Straggler || a.Steps[i].Wire != b.Steps[i].Wire ||
			a.Steps[i].MaxWait != b.Steps[i].MaxWait {
			t.Fatalf("step %d attribution diverged between identical analyses", i)
		}
	}
}

// TestObservatoryBitIdentity: the same run with metrics-history sampling
// AND continuous profiling running concurrently must produce bit-identical
// weights and losses to the uninstrumented run — the performance
// observatory extends the observation-never-perturbs contract.
func TestObservatoryBitIdentity(t *testing.T) {
	train, valid := smallData(60, 8000, 1)
	run := func(observed bool) (Result, *Trainer, *telemetry.History, *telemetry.Profiler) {
		cfg := smallConfig(2, core.UniqueExchange{})
		var hist *telemetry.History
		var prof *telemetry.Profiler
		var stopPhase func()
		if observed {
			cfg.Telemetry = telemetry.NewRegistry()
			sim := cfg.Telemetry.Gauge("zipflm_train_sim_seconds")
			hist = telemetry.NewHistory(cfg.Telemetry, telemetry.HistoryConfig{
				Capacity: 64,
				Interval: time.Millisecond,
				VClock:   sim.Value,
			})
			defer hist.Start()()
			var err error
			prof, err = telemetry.NewProfiler(telemetry.ProfilerConfig{Dir: t.TempDir(), Heap: true})
			if err != nil {
				t.Fatal(err)
			}
			stopPhase = prof.StartPhase("train-bitident")
		}
		trn, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		res, err := trn.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if observed {
			stopPhase()
			prof.Stop()
		}
		return res, trn, hist, prof
	}

	plainRes, plainTr, _, _ := run(false)
	obsRes, obsTr, hist, prof := run(true)

	if plainRes.FinalLoss != obsRes.FinalLoss {
		t.Fatalf("final loss diverged: %v (off) != %v (on)", plainRes.FinalLoss, obsRes.FinalLoss)
	}
	pa, pb := plainTr.Model(0).DenseParams(), obsTr.Model(0).DenseParams()
	for i := range pa {
		for j := range pa[i].Value {
			if pa[i].Value[j] != pb[i].Value[j] {
				t.Fatalf("weight %s[%d] diverged with the observatory on", pa[i].Name, j)
			}
		}
	}

	// The observers saw the run: a final history sample carries the step
	// counter, and the profiler indexed its phase captures.
	samples := hist.Samples()
	if len(samples) == 0 {
		t.Fatal("history sampled nothing")
	}
	last := samples[len(samples)-1]
	if last.Counters["zipflm_train_steps_total"] != int64(obsRes.Stats.Steps) {
		t.Fatalf("final history sample steps=%d, want %d",
			last.Counters["zipflm_train_steps_total"], obsRes.Stats.Steps)
	}
	if len(prof.Manifest()) != 2 {
		t.Fatalf("profiler manifest has %d entries, want cpu+heap", len(prof.Manifest()))
	}
}
