package trainer

import (
	"testing"

	"zipflm/internal/core"
	"zipflm/internal/perfmodel"
	"zipflm/internal/telemetry"
)

// TestTelemetryBitIdentity: the same run with telemetry and tracing on must
// produce bit-identical weights and losses to the uninstrumented run —
// observation never perturbs computation.
func TestTelemetryBitIdentity(t *testing.T) {
	train, valid := smallData(60, 8000, 1)
	run := func(reg *telemetry.Registry, tr *telemetry.Tracer) (Result, *Trainer) {
		cfg := smallConfig(2, core.UniqueExchange{})
		cfg.Telemetry = reg
		cfg.Trace = tr
		trn, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		res, err := trn.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res, trn
	}

	plainRes, plainTr := run(nil, nil)
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)
	obsRes, obsTr := run(reg, tracer)

	if plainRes.FinalLoss != obsRes.FinalLoss {
		t.Fatalf("final loss diverged: %v (off) != %v (on)", plainRes.FinalLoss, obsRes.FinalLoss)
	}
	a, b := plainTr.Model(0), obsTr.Model(0)
	pa, pb := a.DenseParams(), b.DenseParams()
	for i := range pa {
		for j := range pa[i].Value {
			if pa[i].Value[j] != pb[i].Value[j] {
				t.Fatalf("weight %s[%d] diverged with telemetry on", pa[i].Name, j)
			}
		}
	}

	// And the instruments actually observed the run.
	steps := reg.Counter("zipflm_train_steps_total").Value()
	if steps != int64(obsRes.Stats.Steps) {
		t.Fatalf("steps counter %d != result steps %d", steps, obsRes.Stats.Steps)
	}
	if got := reg.Duration("zipflm_train_compute_seconds").Count(); got != steps {
		t.Fatalf("compute histogram has %d observations, want %d", got, steps)
	}
	arName := telemetry.Label(telemetry.Label("zipflm_collective_calls_total", "op", "allreduce"), "wire", "fp32")
	if reg.Counter(arName).Value() == 0 {
		t.Fatal("communicator telemetry not attached: no all-reduce calls recorded")
	}
	if tracer.Len() == 0 {
		t.Fatal("tracer recorded no spans")
	}
}

// TestTraceVirtualDurationsSumToStepStats: the acceptance contract — the
// trace's per-phase virtual durations, summed in record order, reproduce
// the trainer's SimComputeSeconds / SimSyncSeconds bitwise (Run accumulates
// the identical float64 values in the identical order).
func TestTraceVirtualDurationsSumToStepStats(t *testing.T) {
	hw := perfmodel.TitanX()
	cfg, train, valid := simConfig(&hw)
	tracer := telemetry.NewTracer(0)
	cfg.Trace = tracer
	cfg.Telemetry = telemetry.NewRegistry()
	trn, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trn.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SimComputeSeconds <= 0 || res.Stats.SimSyncSeconds <= 0 {
		t.Fatalf("expected positive virtual phase times, got %v/%v",
			res.Stats.SimComputeSeconds, res.Stats.SimSyncSeconds)
	}

	var vCompute, vSync float64
	for _, e := range tracer.Events() {
		switch e.Name {
		case "compute":
			vCompute += e.VDur
		case "sync":
			vSync += e.VDur
		}
	}
	if vCompute != res.Stats.SimComputeSeconds {
		t.Errorf("trace compute vdur sum %v != SimComputeSeconds %v (must be bitwise equal)",
			vCompute, res.Stats.SimComputeSeconds)
	}
	if vSync != res.Stats.SimSyncSeconds {
		t.Errorf("trace sync vdur sum %v != SimSyncSeconds %v (must be bitwise equal)",
			vSync, res.Stats.SimSyncSeconds)
	}
}
