package trainer

import (
	"fmt"
	"testing"

	"zipflm/internal/ckpt"
	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/half"
	"zipflm/internal/optim"
	"zipflm/internal/perfmodel"
	"zipflm/internal/sampling"
)

// sumRankStats adds per-rank traffic counters across trainers — the resumed
// run's counters start at zero, so uninterrupted == first-leg + second-leg
// is the wire-byte half of the resume contract.
func addStats(a, b collective.Stats) collective.Stats {
	a.Add(b)
	return a
}

// TestResumeBitIdentical is the tentpole's hard correctness contract:
// train k steps → checkpoint → resume in a fresh trainer → k more steps
// must be bit-identical to an uninterrupted 2k-step run — replicas, every
// rank's wire-byte counters, and validation loss — across the full
// {SGD, Adam} × {baseline, unique, hierarchical} × {FP32, FP16} ×
// {sync, overlap} matrix.
func TestResumeBitIdentical(t *testing.T) {
	// Small stream so the 2k steps cross an epoch boundary: the LR-decay
	// position (lr, nextDecay) then has to survive the checkpoint too.
	train, valid := smallData(60, 800, 9)
	const leg = 10

	for _, opt := range []string{"sgd", "adam"} {
		for _, eng := range []string{"baseline", "unique", "hierarchical"} {
			for _, fp16 := range []bool{false, true} {
				for _, overlap := range []bool{false, true} {
					name := fmt.Sprintf("%s-%s-fp32-sync", opt, eng)
					if fp16 {
						name = fmt.Sprintf("%s-%s-fp16", opt, eng)
					} else {
						name = fmt.Sprintf("%s-%s-fp32", opt, eng)
					}
					if overlap {
						name += "-overlap"
					} else {
						name += "-sync"
					}
					t.Run(name, func(t *testing.T) {
						cfg := smallConfig(4, nil)
						cfg.Model.Sampled = 12
						cfg.LRDecay = 0.9
						cfg.SeedStrategy = sampling.ZipfFreq
						cfg.Overlap = overlap
						switch eng {
						case "baseline":
							cfg.Exchange = core.BaselineAllGather{}
						case "unique":
							cfg.Exchange = core.UniqueExchange{}
						case "hierarchical":
							cfg.Exchange = core.HierarchicalExchange{Hier: collective.NewHierarchy(4, 2)}
						}
						if fp16 {
							cfg.Wire = half.NewScaler(512)
						}
						if opt == "adam" {
							cfg.NewOptimizer = func() optim.Optimizer { return optim.NewAdam(1e-5) }
						}
						assertResumeBitIdentical(t, cfg, train, valid, leg)
					})
				}
			}
		}
	}
}

// assertResumeBitIdentical runs the uninterrupted twin and the
// checkpoint/resume pair and compares them exactly.
func assertResumeBitIdentical(t *testing.T, cfg Config, train, valid []int, leg int) {
	t.Helper()

	full, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Steps(2 * leg); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfgCk := cfg
	cfgCk.CheckpointEvery = leg
	cfgCk.CheckpointDir = dir
	first, err := New(cfgCk, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Steps(leg); err != nil {
		t.Fatal(err)
	}
	if first.FaultStats().Checkpoints != 1 {
		t.Fatalf("expected 1 checkpoint after %d steps, got %d", leg, first.FaultStats().Checkpoints)
	}

	// The "crash": first is abandoned; a fresh process resumes from disk.
	resumed, err := Resume(cfgCk, dir, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Step() != leg {
		t.Fatalf("resumed at step %d, want %d", resumed.Step(), leg)
	}
	if err := resumed.Steps(leg); err != nil {
		t.Fatal(err)
	}

	if err := resumed.ReplicasInSync(); err != nil {
		t.Fatalf("resumed replicas diverged: %v", err)
	}
	requireIdenticalModels(t, "resume", full.Model(0), resumed.Model(0))
	if lf, lr := full.Validate(), resumed.Validate(); lf != lr {
		t.Fatalf("validation loss differs: uninterrupted %v vs resumed %v", lf, lr)
	}
	for r := 0; r < cfg.Ranks; r++ {
		want := full.Comm().RankStats(r)
		got := addStats(first.Comm().RankStats(r), resumed.Comm().RankStats(r))
		if want != got {
			t.Fatalf("rank %d wire stats diverge:\n uninterrupted %+v\n legs sum      %+v", r, want, got)
		}
	}
}

// TestResumeWithDropoutAndStatefulRNN covers the per-rank state the
// checkpoint carries beyond weights: the dropout RNG streams and the
// truncated-BPTT carried recurrent state must both survive the
// checkpoint/resume cycle for the trajectory to stay bit-identical.
func TestResumeWithDropoutAndStatefulRNN(t *testing.T) {
	train, valid := smallData(60, 800, 5)
	cfg := smallConfig(2, core.UniqueExchange{})
	cfg.Model.Sampled = 10
	cfg.Model.Dropout = 0.25
	cfg.Model.Stateful = true
	cfg.SeedStrategy = sampling.AllSame
	cfg.NewOptimizer = func() optim.Optimizer { return optim.NewAdam(1e-5) }
	assertResumeBitIdentical(t, cfg, train, valid, 7)
}

// TestResumeRejectsMismatchedConfig: a checkpoint must refuse to restore
// into a trainer whose model or cluster shape differs.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	train, valid := smallData(60, 1200, 3)
	cfg := smallConfig(2, core.UniqueExchange{})
	cfg.CheckpointEvery = 2
	cfg.CheckpointDir = t.TempDir()
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Steps(2); err != nil {
		t.Fatal(err)
	}

	wrongRanks := cfg
	wrongRanks.Ranks = 4
	if _, err := Resume(wrongRanks, cfg.CheckpointDir, train, valid); err == nil {
		t.Fatal("resume with a different rank count must fail")
	}
	wrongModel := cfg
	wrongModel.Model.Hidden += 2
	if _, err := Resume(wrongModel, cfg.CheckpointDir, train, valid); err == nil {
		t.Fatal("resume with a different architecture must fail")
	}
	wrongOpt := cfg
	wrongOpt.NewOptimizer = func() optim.Optimizer { return optim.NewAdam(0) }
	if _, err := Resume(wrongOpt, cfg.CheckpointDir, train, valid); err == nil {
		t.Fatal("resume swapping SGD for Adam must fail")
	}
	if _, err := Resume(cfg, t.TempDir(), train, valid); err == nil {
		t.Fatal("resume from an empty directory must fail")
	}
}

// TestFaultRollbackReplaysToBitIdentity: an injected rank failure must
// roll the run back to its last checkpoint and replay to the same final
// state a fault-free run reaches — at the cost of lost steps and recovery
// time on the virtual clock, which is exactly what the goodput experiment
// measures.
func TestFaultRollbackReplaysToBitIdentity(t *testing.T) {
	train, valid := smallData(60, 1600, 11)
	hw := perfmodel.TitanX()
	base := smallConfig(2, core.UniqueExchange{})
	base.Model.Sampled = 10
	base.SeedStrategy = sampling.ZipfFreq
	base.Hardware = &hw
	base.SimFLOPsPerStep = 1e9
	base.SimAchievedFrac = 0.4

	clean, err := New(base, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Steps(20); err != nil {
		t.Fatal(err)
	}
	cleanSim := clean.SimSeconds()

	faulty := base
	faulty.CheckpointEvery = 5
	// Costs proportionate to the ~0.7 ms simulated step so faults land
	// mid-interval rather than being leapt over by a checkpoint barrier.
	faulty.SimCheckpointSeconds = 0.0002
	faulty.SimRestartSeconds = 0.0005
	// Two failures placed inside the 20-step horizon (the clean run's
	// virtual clock tells us where steps land).
	faulty.Faults = ckpt.NewFaultPlan([]ckpt.Fault{
		{Time: cleanSim * 0.35, Rank: 1},
		{Time: cleanSim * 0.70, Rank: 0},
	})
	tr, err := New(faulty, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Steps(20); err != nil {
		t.Fatal(err)
	}

	fs := tr.FaultStats()
	if fs.Faults != 2 {
		t.Fatalf("injected %d faults, want 2", fs.Faults)
	}
	if fs.LostSteps <= 0 {
		t.Fatalf("faults mid-interval must lose steps, got %d", fs.LostSteps)
	}
	if fs.Checkpoints < 4 {
		t.Fatalf("expected ≥4 checkpoints over 20 steps at interval 5, got %d", fs.Checkpoints)
	}
	if tr.Step() != 20 {
		t.Fatalf("committed %d steps, want 20", tr.Step())
	}
	if tr.SimSeconds() <= cleanSim {
		t.Fatalf("faulty run predicted %.6fs, must exceed clean %.6fs (lost work + recovery)",
			tr.SimSeconds(), cleanSim)
	}
	if err := tr.ReplicasInSync(); err != nil {
		t.Fatal(err)
	}
	// The final state must be exactly the clean run's: rollback + replay
	// changes wall-clock, never arithmetic.
	requireIdenticalModels(t, "faulty-vs-clean", clean.Model(0), tr.Model(0))
	if lc, lf := clean.Validate(), tr.Validate(); lc != lf {
		t.Fatalf("validation loss differs after replay: %v vs %v", lc, lf)
	}

	// Determinism: the same plan replayed in a fresh trainer produces the
	// identical virtual-clock total.
	faulty.Faults.Reset()
	tr2, err := New(faulty, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Steps(20); err != nil {
		t.Fatal(err)
	}
	if tr2.SimSeconds() != tr.SimSeconds() {
		t.Fatalf("faulty run not deterministic: %.9f vs %.9f", tr2.SimSeconds(), tr.SimSeconds())
	}
}

// TestFaultsRequireHardware: failure times live on the virtual clock.
func TestFaultsRequireHardware(t *testing.T) {
	train, valid := smallData(60, 1200, 2)
	cfg := smallConfig(2, core.UniqueExchange{})
	cfg.Faults = ckpt.NewFaultPlan([]ckpt.Fault{{Time: 1, Rank: 0}})
	if _, err := New(cfg, train, valid); err == nil {
		t.Fatal("Faults without Hardware must be rejected")
	}
}
