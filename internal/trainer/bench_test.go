package trainer

import (
	"runtime"
	"testing"

	"zipflm/internal/core"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
)

// runStepBench measures full training steps (forward, backward, exchange,
// optimizer) with the replicas' kernels tiled across the given worker
// count. The model is sized so the softmax and recurrent matmuls clear the
// backend's serial cutoff — small enough to stay a benchmark, big enough
// that tiling is what's measured. The bit-identity suite guarantees every
// worker count computes the same bits, so these benches differ only in
// wall-clock; on a single-core runner (GOMAXPROCS=1, visible in the
// benchmark name's -N suffix) the tiled counts measure dispatch overhead
// rather than speedup.
func runStepBench(b *testing.B, workers int) {
	train, valid := smallData(1000, 30000, 21)
	cfg := Config{
		Model:        model.Config{Vocab: 1000, Dim: 64, Hidden: 96, RNN: model.KindLSTM},
		Ranks:        1,
		BatchPerRank: 4,
		SeqLen:       12,
		LR:           0.1,
		Exchange:     core.UniqueExchange{},
		SeedStrategy: sampling.AllDifferent,
		BaseSeed:     3,
		Workers:      workers,
	}
	tr, err := New(cfg, train, valid)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := tr.Steps(b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	tokens := float64(b.N) * float64(cfg.Ranks*cfg.BatchPerRank*cfg.SeqLen)
	b.ReportMetric(tokens/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkStepWorkers1 is the serial reference every tiled count is
// compared against.
func BenchmarkStepWorkers1(b *testing.B) { runStepBench(b, 1) }

// BenchmarkStepWorkers2 tiles each matmul across 2 goroutines.
func BenchmarkStepWorkers2(b *testing.B) { runStepBench(b, 2) }

// BenchmarkStepWorkers4 tiles each matmul across 4 goroutines.
func BenchmarkStepWorkers4(b *testing.B) { runStepBench(b, 4) }

// BenchmarkStepWorkersMax tiles across GOMAXPROCS goroutines — the widest
// split the runner can execute in parallel.
func BenchmarkStepWorkersMax(b *testing.B) { runStepBench(b, runtime.GOMAXPROCS(0)) }
