package trainer

import (
	"time"

	"zipflm/internal/telemetry"
)

// trainerTelemetry is the trainer's instrument set, resolved once in New so
// the per-step cost is a few atomic operations. nil (telemetry off) keeps
// every step on the exact uninstrumented path.
type trainerTelemetry struct {
	steps       *telemetry.Counter   // zipflm_train_steps_total (committed)
	tokens      *telemetry.Counter   // zipflm_train_tokens_total (global)
	checkpoints *telemetry.Counter   // zipflm_train_checkpoints_total
	faults      *telemetry.Counter   // zipflm_train_faults_total
	lostSteps   *telemetry.Counter   // zipflm_train_lost_steps_total
	computeDur  *telemetry.Histogram // zipflm_train_compute_seconds
	syncDur     *telemetry.Histogram // zipflm_train_sync_seconds
	goodput     *telemetry.Gauge     // zipflm_train_goodput_ratio
	simClock    *telemetry.Gauge     // zipflm_train_sim_seconds
}

func newTrainerTelemetry(reg *telemetry.Registry) *trainerTelemetry {
	if reg == nil {
		return nil
	}
	return &trainerTelemetry{
		steps:       reg.Counter("zipflm_train_steps_total"),
		tokens:      reg.Counter("zipflm_train_tokens_total"),
		checkpoints: reg.Counter("zipflm_train_checkpoints_total"),
		faults:      reg.Counter("zipflm_train_faults_total"),
		lostSteps:   reg.Counter("zipflm_train_lost_steps_total"),
		computeDur:  reg.Duration("zipflm_train_compute_seconds"),
		syncDur:     reg.Duration("zipflm_train_sync_seconds"),
		goodput:     reg.Gauge("zipflm_train_goodput_ratio"),
		simClock:    reg.Gauge("zipflm_train_sim_seconds"),
	}
}

// observeStep posts one executed step's phase breakdown to the registry and
// the tracer. Called for every executed step — including steps later lost
// to a rollback — so summing the trace's per-phase virtual durations
// reproduces StepStats.SimComputeSeconds / SimSyncSeconds exactly (Run
// accumulates the same float64 values in the same order).
func (t *Trainer) observeStep(computeStart, syncStart time.Time, agg stepStats) {
	if tel := t.tel; tel != nil {
		tel.steps.Inc()
		tel.tokens.Add(int64(t.cfg.Ranks) * int64(t.cfg.BatchPerRank) * int64(t.cfg.SeqLen))
		tel.computeDur.Observe(agg.computeTime)
		tel.syncDur.Observe(agg.syncTime)
		tel.simClock.Set(t.clu.MaxClock())
		tel.goodput.Set(t.goodputRatio())
	}
	if tr := t.cfg.Trace; tr != nil {
		tr.Span("train", "compute", 0, computeStart, agg.computeTime, agg.simStart, agg.simCompute)
		tr.Span("train", "sync", 0, syncStart, agg.syncTime, agg.simAfterCompute, agg.simSync)
	}
}

// goodputRatio is the fraction of executed steps that stayed committed:
// 1 − lost/(committed + lost). 1.0 before any step or without faults.
func (t *Trainer) goodputRatio() float64 {
	executed := t.step + t.ftStats.LostSteps
	if executed <= 0 {
		return 1
	}
	return float64(t.step) / float64(executed)
}
