package trainer

import (
	"math"
	"testing"

	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/sampling"
)

// markovData builds a learnable train/valid pair.
func markovData(vocab, n int, seed uint64) (train, valid []int) {
	g := corpus.NewMarkovGenerator(corpus.MarkovConfig{
		VocabSize:    vocab - 1,
		Branching:    8,
		ZipfExponent: 1.1,
		Seed:         seed,
	})
	return corpus.Split(g.Stream(n), 10, 50, seed)
}

func TestStatefulTrainingConvergesAndSyncs(t *testing.T) {
	train, valid := markovData(80, 10_000, 1)
	cfg := smallConfig(2, core.UniqueExchange{})
	cfg.Model.Vocab = 80
	cfg.Model.Stateful = true
	cfg.ClipNorm = 1.0
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Evals[0].Loss {
		t.Errorf("stateful training did not improve: %v -> %v", res.Evals[0].Loss, res.FinalLoss)
	}
	if err := tr.ReplicasInSync(); err != nil {
		t.Error(err)
	}
}

// TestStatefulBeatsStatelessOnStructuredData: on a Markov corpus with
// context value, carrying state across batches should not hurt and usually
// helps. We assert the weaker invariant (within 10% or better) to avoid
// flaky strictness.
func TestStatefulVsStateless(t *testing.T) {
	train, valid := markovData(80, 12_000, 2)
	run := func(stateful bool) float64 {
		cfg := smallConfig(2, core.UniqueExchange{})
		cfg.Model.Vocab = 80
		cfg.Model.Stateful = stateful
		cfg.ClipNorm = 1.0
		tr, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalLoss
	}
	withState := run(true)
	without := run(false)
	if withState > without*1.1 {
		t.Errorf("stateful loss %v much worse than stateless %v", withState, without)
	}
}

func TestDropoutTrainingSyncs(t *testing.T) {
	train, valid := markovData(80, 8_000, 3)
	cfg := smallConfig(3, core.UniqueExchange{})
	cfg.Model.Vocab = 80
	cfg.Model.Dropout = 0.2
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalLoss) {
		t.Fatal("dropout training produced NaN")
	}
	// The §II-B invariant must survive dropout: masks are seeded
	// identically on every replica.
	if err := tr.ReplicasInSync(); err != nil {
		t.Error(err)
	}
}

func TestUnigramSamplerTraining(t *testing.T) {
	train, valid := markovData(100, 9_000, 4)
	cfg := smallConfig(2, core.UniqueExchange{})
	cfg.Model.Vocab = 100
	cfg.Model.Sampled = 16
	cfg.SeedStrategy = sampling.ZipfFreq
	cfg.NewSampler = func(vocab int, seed uint64) sampling.CandidateSampler {
		return sampling.NewUnigramSampler(vocab, nil, seed)
	}
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Evals[0].Loss {
		t.Errorf("unigram-sampled training did not improve: %v -> %v",
			res.Evals[0].Loss, res.FinalLoss)
	}
	if err := tr.ReplicasInSync(); err != nil {
		t.Error(err)
	}
}

// TestHierarchicalExchangeTraining runs the node-aware exchange end to end
// through the trainer and checks it reaches the same weights as the flat
// unique exchange.
func TestHierarchicalExchangeTraining(t *testing.T) {
	train, valid := markovData(80, 8_000, 5)
	run := func(ex core.Exchanger) *Trainer {
		cfg := smallConfig(4, ex)
		cfg.Model.Vocab = 80
		tr, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(1, 1); err != nil {
			t.Fatal(err)
		}
		if err := tr.ReplicasInSync(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	hier := collective.NewHierarchy(4, 2)
	a := run(core.HierarchicalExchange{Hier: hier})
	b := run(core.UniqueExchange{})
	var maxDiff float64
	for i := range a.Model(0).InEmb.Data {
		d := math.Abs(float64(a.Model(0).InEmb.Data[i] - b.Model(0).InEmb.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("hierarchical and flat training diverged by %v", maxDiff)
	}
}
