package trainer

import (
	"testing"

	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/corpus"
	"zipflm/internal/model"
	"zipflm/internal/perfmodel"
	"zipflm/internal/sampling"
)

// simConfig builds a small distributed run with the virtual clock threaded
// through it.
func simConfig(hw *perfmodel.Hardware) (Config, []int, []int) {
	gen := corpus.NewGenerator(corpus.GeneratorConfig{
		VocabSize:    499,
		ZipfExponent: 1.1,
		Seed:         3,
	})
	stream := gen.Stream(9000)
	train, valid := corpus.Split(stream, 20, 100, 3)
	cfg := Config{
		Model:           model.Config{Vocab: 500, Dim: 16, Hidden: 24, RNN: model.KindLSTM, Sampled: 32},
		Ranks:           4,
		BatchPerRank:    2,
		SeqLen:          8,
		LR:              0.1,
		Exchange:        core.UniqueExchange{},
		SeedStrategy:    sampling.ZipfFreq,
		BaseSeed:        3,
		Hardware:        hw,
		SimFLOPsPerStep: 1e9,
		SimAchievedFrac: 0.4,
	}
	return cfg, train, valid
}

// TestSimulatedStepTime: with Config.Hardware set, a run reports a positive
// compute/sync virtual-time split, the trainer's clock equals their sum,
// and the prediction is bit-reproducible across identical runs.
func TestSimulatedStepTime(t *testing.T) {
	hw := perfmodel.TitanX()
	run := func() (Result, float64) {
		cfg, train, valid := simConfig(&hw)
		tr, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.ReplicasInSync(); err != nil {
			t.Fatal(err)
		}
		return res, tr.SimSeconds()
	}
	res, total := run()
	if res.Stats.SimComputeSeconds <= 0 {
		t.Errorf("SimComputeSeconds = %v, want > 0", res.Stats.SimComputeSeconds)
	}
	if res.Stats.SimSyncSeconds <= 0 {
		t.Errorf("SimSyncSeconds = %v, want > 0", res.Stats.SimSyncSeconds)
	}
	if res.Stats.SimStepSeconds() <= 0 {
		t.Errorf("SimStepSeconds = %v, want > 0", res.Stats.SimStepSeconds())
	}
	sum := res.Stats.SimComputeSeconds + res.Stats.SimSyncSeconds
	if diff := total - sum; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("trainer clock %v != compute %v + sync %v",
			total, res.Stats.SimComputeSeconds, res.Stats.SimSyncSeconds)
	}
	// The compute charge is exact: steps × FLOPs ÷ (peak × frac).
	wantCompute := float64(res.Stats.Steps) * hw.ComputeSeconds(1e9, 0.4)
	if diff := res.Stats.SimComputeSeconds - wantCompute; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("SimComputeSeconds = %v, want %v", res.Stats.SimComputeSeconds, wantCompute)
	}

	res2, total2 := run()
	if total != total2 ||
		res.Stats.SimComputeSeconds != res2.Stats.SimComputeSeconds ||
		res.Stats.SimSyncSeconds != res2.Stats.SimSyncSeconds {
		t.Errorf("virtual time not reproducible: (%v, %v, %v) vs (%v, %v, %v)",
			total, res.Stats.SimComputeSeconds, res.Stats.SimSyncSeconds,
			total2, res2.Stats.SimComputeSeconds, res2.Stats.SimSyncSeconds)
	}
}

// TestSimHierarchicalExchangePriced: with a hierarchical exchange, the
// hierarchy's group/leaders communicators must be cost-attached too, so
// the sparse exchange's traffic shows up in predicted sync time instead of
// silently reading as free.
func TestSimHierarchicalExchangePriced(t *testing.T) {
	hw := perfmodel.TitanX()
	cfg, train, valid := simConfig(&hw)
	hier := collective.NewHierarchy(cfg.Ranks, 2)
	cfg.Exchange = core.HierarchicalExchange{Hier: hier}
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if hier.Group(0).Cost() == nil || hier.Leaders().Cost() == nil {
		t.Fatal("hierarchy communicators not cost-attached")
	}
	res, err := tr.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ReplicasInSync(); err != nil {
		t.Fatal(err)
	}
	// The flat run's sync time is dominated by the same dense reductions;
	// the hierarchical run must report comparable (non-trivial) sync
	// time, not a near-zero one.
	if res.Stats.SimSyncSeconds <= 0 {
		t.Errorf("hierarchical exchange reported no predicted sync time")
	}
	flatCfg, ftrain, fvalid := simConfig(&hw)
	ftr, err := New(flatCfg, ftrain, fvalid)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := ftr.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SimSyncSeconds < fres.Stats.SimSyncSeconds/2 {
		t.Errorf("hierarchical predicted sync %.3g implausibly below flat %.3g",
			res.Stats.SimSyncSeconds, fres.Stats.SimSyncSeconds)
	}
}

// TestSimRejectsOverlap: the virtual clock cannot price async buckets, so
// the combination must be refused rather than reporting dense
// communication as free.
func TestSimRejectsOverlap(t *testing.T) {
	hw := perfmodel.TitanX()
	cfg, train, valid := simConfig(&hw)
	cfg.Overlap = true
	if _, err := New(cfg, train, valid); err == nil {
		t.Fatal("New must reject Hardware + Overlap")
	}
}

// TestSimOffLeavesZeroes: the default configuration must not touch the
// virtual clock (pay-for-what-you-use).
func TestSimOffLeavesZeroes(t *testing.T) {
	cfg, train, valid := simConfig(nil)
	cfg.SimFLOPsPerStep = 0
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SimComputeSeconds != 0 || res.Stats.SimSyncSeconds != 0 || tr.SimSeconds() != 0 {
		t.Errorf("clock moved without Hardware: compute %v sync %v total %v",
			res.Stats.SimComputeSeconds, res.Stats.SimSyncSeconds, tr.SimSeconds())
	}
	if tr.Comm().Cost() != nil {
		t.Error("cost model attached without Hardware")
	}
}
