package trainer

import (
	"bytes"
	"strings"
	"testing"

	"zipflm/internal/ckpt"
	"zipflm/internal/collective"
	"zipflm/internal/compress"
	"zipflm/internal/core"
	"zipflm/internal/half"
)

// compressConfig is smallConfig with dense-gradient compression engaged on
// every tensor (the test model's tensors sit below the production MinElems
// floor, so the floor is dropped to exercise the compressed paths).
func compressConfig(ranks int, method compress.Method, ratio, momentum float64, stochastic bool, wire collective.Wire) Config {
	cfg := smallConfig(ranks, core.UniqueExchange{})
	cfg.Wire = wire
	cfg.Compress = &compress.Config{
		Method:     method,
		Ratio:      ratio,
		Momentum:   momentum,
		MinElems:   1,
		Stochastic: stochastic,
	}
	return cfg
}

func TestCompressRejectsOverlap(t *testing.T) {
	train, valid := smallData(60, 2000, 3)
	cfg := compressConfig(2, compress.MethodTopK, 0.05, 0, false, nil)
	cfg.Overlap = true
	if _, err := New(cfg, train, valid); err == nil {
		t.Fatal("Compress+Overlap accepted; async buckets bypass the compressed path")
	} else if !strings.Contains(err.Error(), "Overlap") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestCompressRejectsBadConfig(t *testing.T) {
	train, valid := smallData(60, 2000, 3)
	cfg := compressConfig(2, compress.MethodTopK, 0, 0, false, nil) // ratio 0
	if _, err := New(cfg, train, valid); err == nil {
		t.Fatal("zero top-k ratio accepted")
	}
}

// TestCompressedTrainingSyncsAndConverges: with every dense gradient going
// through a lossy compressor, replicas must still end bit-identical every
// step (the §II-B invariant — compression changes what is summed, never
// who sums what), and error feedback must keep the run learning.
func TestCompressedTrainingSyncsAndConverges(t *testing.T) {
	train, valid := smallData(60, 8000, 1)
	cases := map[string]Config{
		"topk":          compressConfig(2, compress.MethodTopK, 0.05, 0, false, nil),
		"topk-momentum": compressConfig(2, compress.MethodTopK, 0.05, 0.9, false, nil),
		"topk-fp16":     compressConfig(2, compress.MethodTopK, 0.05, 0, false, half.NewScaler(256)),
		"q8-stochastic": compressConfig(2, compress.MethodQuant8, 0, 0, true, nil),
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			tr, err := New(cfg, train, valid)
			if err != nil {
				t.Fatal(err)
			}
			before := tr.Validate()
			res, err := tr.Run(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.ReplicasInSync(); err != nil {
				t.Fatalf("replicas diverged under compression: %v", err)
			}
			if !(res.FinalLoss < before) {
				t.Fatalf("no learning: loss %v -> %v", before, res.FinalLoss)
			}
		})
	}
}

// TestCompressedWireBytesBelowDense is the acceptance gate on the byte
// accounting: at ratio ≪ 1 the dense-gradient traffic (and the total) must
// come in strictly below the uncompressed run's.
func TestCompressedWireBytesBelowDense(t *testing.T) {
	train, valid := smallData(60, 4000, 2)
	run := func(cfg Config) collective.Stats {
		tr, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Steps(6); err != nil {
			t.Fatal(err)
		}
		return tr.Comm().MaxStats()
	}
	dense := run(smallConfig(2, core.UniqueExchange{}))
	topk := run(compressConfig(2, compress.MethodTopK, 0.02, 0, false, nil))
	q8 := run(compressConfig(2, compress.MethodQuant8, 0, 0, true, nil))

	if topk.AllReduceBytes >= dense.AllReduceBytes {
		t.Fatalf("top-k dense traffic %d not below uncompressed %d", topk.AllReduceBytes, dense.AllReduceBytes)
	}
	if q8.AllReduceBytes >= dense.AllReduceBytes {
		t.Fatalf("q8 dense traffic %d not below uncompressed %d", q8.AllReduceBytes, dense.AllReduceBytes)
	}
	if topk.Total() >= dense.Total() {
		t.Fatalf("top-k total %d not below uncompressed %d", topk.Total(), dense.Total())
	}
	// The sparse exchange is untouched by dense compression.
	if topk.AllGatherBytes != dense.AllGatherBytes {
		t.Fatalf("sparse exchange traffic changed: %d vs %d", topk.AllGatherBytes, dense.AllGatherBytes)
	}
}

// TestCompressedDeterministicRerun: same seed, same bytes — replica
// weights, wire counters, validation loss.
func TestCompressedDeterministicRerun(t *testing.T) {
	train, valid := smallData(60, 4000, 5)
	run := func() (*Trainer, float64) {
		cfg := compressConfig(2, compress.MethodTopK, 0.03, 0.9, false, half.NewScaler(256))
		cfg.Compress.Stochastic = true
		cfg.Compress.Method = compress.MethodTopK
		tr, err := New(cfg, train, valid)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Steps(8); err != nil {
			t.Fatal(err)
		}
		return tr, tr.Validate()
	}
	a, lossA := run()
	b, lossB := run()
	requireIdenticalModels(t, "rerun", a.Model(0), b.Model(0))
	if lossA != lossB {
		t.Fatalf("validation loss differs across reruns: %v vs %v", lossA, lossB)
	}
	for r := 0; r < 2; r++ {
		if a.Comm().RankStats(r) != b.Comm().RankStats(r) {
			t.Fatalf("rank %d wire stats differ across reruns", r)
		}
	}
}

// TestResumeWithCompressionBitIdentical extends the fault-tolerance
// contract to the compression state: train k → checkpoint → resume → k
// must equal uninterrupted 2k bit-identically, which can only hold if the
// per-rank error-feedback residuals, momentum velocities and quantizer
// streams all survive the checkpoint.
func TestResumeWithCompressionBitIdentical(t *testing.T) {
	train, valid := smallData(60, 800, 9)
	const leg = 10
	cases := map[string]Config{
		"topk-momentum-fp16": compressConfig(4, compress.MethodTopK, 0.05, 0.9, false, half.NewScaler(512)),
		"q8-stochastic":      compressConfig(4, compress.MethodQuant8, 0, 0, true, nil),
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			cfg.Model.Sampled = 12
			cfg.LRDecay = 0.9
			assertResumeBitIdentical(t, cfg, train, valid, leg)
		})
	}
}

// TestCompressedCheckpointCarriesResiduals peeks at the capture itself: a
// compressed run's checkpoint must store one engine state per rank, with
// live (non-zero) residual mass, and restoring it into a mismatched
// trainer must fail loudly.
func TestCompressedCheckpointCarriesResiduals(t *testing.T) {
	train, valid := smallData(60, 2000, 7)
	cfg := compressConfig(2, compress.MethodTopK, 0.02, 0, false, nil)
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Steps(3); err != nil {
		t.Fatal(err)
	}
	st, err := tr.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Compress) != 2 {
		t.Fatalf("checkpoint carries %d compression states, want 2", len(st.Compress))
	}
	live := false
	for _, es := range st.Compress {
		for _, ts := range es.Tensors {
			for _, v := range ts.Residual {
				if v != 0 {
					live = true
				}
			}
		}
	}
	if !live {
		t.Fatal("all residuals zero after 3 steps of 2% top-k — error feedback is not carrying")
	}

	// Round-trip through the framed encoding: the gob path must preserve
	// the compression state exactly.
	var buf bytes.Buffer
	if err := ckpt.Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := ckpt.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for r := range st.Compress {
		if len(back.Compress[r].Tensors) != len(st.Compress[r].Tensors) {
			t.Fatalf("rank %d: tensor count changed across encode/decode", r)
		}
		for ti, ts := range st.Compress[r].Tensors {
			bt := back.Compress[r].Tensors[ti]
			if bt.Name != ts.Name || len(bt.Residual) != len(ts.Residual) {
				t.Fatalf("rank %d tensor %d reshaped across encode/decode", r, ti)
			}
			for i, v := range ts.Residual {
				if bt.Residual[i] != v {
					t.Fatalf("rank %d %s residual %d changed across encode/decode", r, ts.Name, i)
				}
			}
		}
	}

	// A trainer without Compress must refuse the stateful checkpoint.
	plain, err := New(smallConfig(2, core.UniqueExchange{}), train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.RestoreState(st); err == nil {
		t.Fatal("uncompressed trainer accepted a checkpoint with compression state")
	}
}
