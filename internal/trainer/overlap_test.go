package trainer

import (
	"testing"

	"zipflm/internal/collective"
	"zipflm/internal/core"
	"zipflm/internal/half"
	"zipflm/internal/model"
	"zipflm/internal/sampling"
)

// runPair trains the same workload twice — synchronous dense reduction vs
// the overlapped bucketed path — and returns both trainers after identical
// step counts.
func runPair(t *testing.T, cfg Config, train, valid []int, steps int) (syncTr, overlapTr *Trainer) {
	t.Helper()
	cfgSync := cfg
	cfgSync.Overlap = false
	cfgOv := cfg
	cfgOv.Overlap = true
	syncTr, err := New(cfgSync, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	overlapTr, err = New(cfgOv, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := syncTr.Steps(steps); err != nil {
		t.Fatal(err)
	}
	if err := overlapTr.Steps(steps); err != nil {
		t.Fatal(err)
	}
	return syncTr, overlapTr
}

// requireIdenticalModels asserts every parameter of both rank-0 replicas is
// bit-identical.
func requireIdenticalModels(t *testing.T, tag string, a, b *model.LM) {
	t.Helper()
	for i := range a.InEmb.Data {
		if a.InEmb.Data[i] != b.InEmb.Data[i] {
			t.Fatalf("%s: input embedding differs at %d: %v vs %v", tag, i, a.InEmb.Data[i], b.InEmb.Data[i])
		}
	}
	for i := range a.OutEmb.Data {
		if a.OutEmb.Data[i] != b.OutEmb.Data[i] {
			t.Fatalf("%s: output embedding differs at %d: %v vs %v", tag, i, a.OutEmb.Data[i], b.OutEmb.Data[i])
		}
	}
	ap, bp := a.DenseParams(), b.DenseParams()
	for pi := range ap {
		for i := range ap[pi].Value {
			if ap[pi].Value[i] != bp[pi].Value[i] {
				t.Fatalf("%s: %s differs at %d: %v vs %v", tag, ap[pi].Name, i, ap[pi].Value[i], bp[pi].Value[i])
			}
		}
	}
}

// TestOverlapBitIdenticalToSync is the acceptance test of the overlap
// tentpole: the bucketed asynchronous dense reduction must change nothing
// but wall-clock. Across cluster sizes, softmax modes, FP16 wire, and
// exchange engines, the overlapped run produces bit-identical model
// replicas (every rank in sync, and rank 0 equal to the synchronous run's
// rank 0) and bit-identical per-rank wire-byte counters.
func TestOverlapBitIdenticalToSync(t *testing.T) {
	train, valid := smallData(60, 12000, 9)
	cases := []struct {
		name    string
		ranks   int
		sampled int
		fp16    bool
		bucket  int64
		ex      core.Exchanger
	}{
		{name: "g2-full-softmax", ranks: 2},
		{name: "g3-sampled", ranks: 3, sampled: 12},
		{name: "g4-sampled-fp16", ranks: 4, sampled: 12, fp16: true},
		{name: "g4-full-fp16-tinybuckets", ranks: 4, fp16: true, bucket: 256},
		{name: "g2-baseline-engine", ranks: 2, sampled: 12, ex: core.BaselineAllGather{}},
		{name: "g4-hier-engine", ranks: 4, sampled: 12},
		{name: "g1-degenerate", ranks: 1, sampled: 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(tc.ranks, tc.ex)
			cfg.Model.Sampled = tc.sampled
			cfg.BucketBytes = tc.bucket
			if tc.fp16 {
				cfg.Wire = half.NewScaler(512)
			}
			if tc.name == "g4-hier-engine" {
				cfg.Exchange = core.HierarchicalExchange{Hier: collective.NewHierarchy(tc.ranks, 2)}
			}
			syncTr, overlapTr := runPair(t, cfg, train, valid, 4)
			if err := overlapTr.ReplicasInSync(); err != nil {
				t.Fatalf("overlap replicas diverged: %v", err)
			}
			if err := syncTr.ReplicasInSync(); err != nil {
				t.Fatalf("sync replicas diverged: %v", err)
			}
			requireIdenticalModels(t, tc.name, syncTr.Model(0), overlapTr.Model(0))
			for r := 0; r < tc.ranks; r++ {
				ss, os := syncTr.Comm().RankStats(r), overlapTr.Comm().RankStats(r)
				if ss != os {
					t.Fatalf("rank %d wire stats diverge:\n sync    %+v\n overlap %+v", r, ss, os)
				}
			}
		})
	}
}

// TestOverlapConverges sanity-checks that the overlapped path actually
// trains (loss falls), not just that it matches a broken twin.
func TestOverlapConverges(t *testing.T) {
	train, valid := smallData(60, 8000, 4)
	cfg := smallConfig(2, core.UniqueExchange{})
	cfg.Overlap = true
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) < 2 || !(res.FinalLoss < res.Evals[0].Loss) {
		t.Errorf("overlapped training did not improve: %+v", res.Evals)
	}
}

// TestOverlapOOMAbortDrainsAsync: when the sparse exchange aborts (peer
// OOM), the overlap path must still drain its async handles before the
// step returns — otherwise bucket runners would keep reading the model's
// gradient tensors (zero-copy aliases) behind the aborted step. The
// -race CI job is what gives this test its teeth; functionally the step
// must fail cleanly and keep failing, not hang or corrupt.
func TestOverlapOOMAbortDrainsAsync(t *testing.T) {
	train, valid := smallData(60, 8000, 6)
	cfg := smallConfig(3, core.BaselineAllGather{})
	cfg.Model.Sampled = 10
	cfg.Overlap = true
	cfg.DeviceCapacity = 600 // below the baseline's Θ(G·K·D) scratch
	tr, err := New(cfg, train, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Steps(1); err == nil {
		t.Fatal("expected an OOM abort from the baseline exchange")
	}
	// A second attempt on the same trainer must fail the same way — no
	// deadlock against leftover bucket state, no corrupted queue.
	if err := tr.Steps(1); err == nil {
		t.Fatal("expected the retry to abort as well")
	}
}

// TestOverlapWithOptimizersAndClip covers the post-reduction pipeline
// (averaging, clipping, Adam state) staying bit-identical under overlap.
func TestOverlapWithOptimizersAndClip(t *testing.T) {
	train, valid := smallData(60, 10000, 5)
	cfg := smallConfig(3, core.UniqueExchange{})
	cfg.Model.Sampled = 10
	cfg.ClipNorm = 0.5
	cfg.SeedStrategy = sampling.AllSame
	syncTr, overlapTr := runPair(t, cfg, train, valid, 5)
	requireIdenticalModels(t, "clip", syncTr.Model(0), overlapTr.Model(0))
	if err := overlapTr.ReplicasInSync(); err != nil {
		t.Fatal(err)
	}
}
